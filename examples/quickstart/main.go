// Quickstart: run a real distributed conjugate-gradient solve on eight
// simulated MPI processes with blocking coordinated checkpointing (the
// paper's Pcl protocol) and print what the fault-tolerance machinery did.
package main

import (
	"fmt"
	"log"
	"time"

	"ftckpt"
)

func main() {
	rep, err := ftckpt.Run(ftckpt.Options{
		Workload: "cg-real", // an actual CG solve, not a model
		NP:       8,         // eight MPI processes
		Protocol: "pcl",     // blocking coordinated checkpointing
		Interval: 5 * time.Millisecond,
		Servers:  2, // two checkpoint servers
		Seed:     1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("conjugate gradient under blocking coordinated checkpointing")
	fmt.Printf("  completed in        %v (virtual time)\n", rep.Completion)
	fmt.Printf("  final residual      %g\n", rep.Checksum)
	fmt.Printf("  checkpoint waves    %d committed\n", rep.Waves)
	fmt.Printf("  local checkpoints   %d (%.2f MB shipped to servers)\n",
		rep.LocalCheckpoints, rep.CheckpointMB)
	fmt.Printf("  messages on wire    %d (%.2f MB payload)\n", rep.Messages, rep.PayloadMB)
}
