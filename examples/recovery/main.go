// Recovery: kill a process mid-run and show that rollback recovery from
// the last committed checkpoint wave reproduces the failure-free result
// exactly — for both the blocking (Pcl) and non-blocking (Vcl) protocols.
//
// This is the core guarantee of coordinated checkpointing: the wave is a
// consistent global state, so the restarted computation is a legal
// continuation and a deterministic application reaches the same answer.
package main

import (
	"fmt"
	"log"
	"time"

	"ftckpt"
)

func main() {
	base := ftckpt.Options{
		Workload: "cg-real",
		NP:       8,
		Servers:  2,
		Seed:     42,
	}

	// Reference: failure-free, no checkpointing.
	ref, err := ftckpt.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free run:  completion %v, residual %g\n\n", ref.Completion, ref.Checksum)

	for _, proto := range []ftckpt.Protocol{ftckpt.Pcl, ftckpt.Vcl, ftckpt.Mlog} {
		o := base
		o.Protocol = proto
		o.Interval = 5 * time.Millisecond
		// Kill rank 3 roughly mid-run; the dispatcher detects the broken
		// connection, stops the job and restarts every process from the
		// last committed wave.
		o.Failures = []ftckpt.Failure{ftckpt.KillRank(ref.Completion/2, 3)}

		rep, err := ftckpt.Run(o)
		if err != nil {
			log.Fatal(err)
		}
		ok := "IDENTICAL to failure-free run"
		if rep.Checksum != ref.Checksum {
			ok = fmt.Sprintf("MISMATCH (%g)", rep.Checksum)
		}
		fmt.Printf("%s with failure:\n", proto)
		fmt.Printf("  completion   %v (%.1fx failure-free)\n",
			rep.Completion, float64(rep.Completion)/float64(ref.Completion))
		fmt.Printf("  waves        %d committed, %d restart(s)\n", rep.Waves, rep.Restarts)
		if proto == ftckpt.Vcl {
			fmt.Printf("  channel log  %d in-transit messages captured (%.2f MB)\n",
				rep.LoggedMessages, rep.LoggedMB)
		}
		if proto == ftckpt.Mlog {
			fmt.Printf("  note         single-process recovery: only rank 3 rolled back;\n")
			fmt.Printf("               %d messages were logged pessimistically\n", rep.LoggedMessages)
		}
		fmt.Printf("  residual     %s\n\n", ok)
	}
}
