// Tuning: explore the checkpoint-interval trade-off under random failures
// — the paper's closing observation that "the best value for the
// checkpoint wave frequency is close to the MTTF".
//
// Too-frequent waves waste time synchronizing and shipping images;
// too-rare waves lose large amounts of work at each rollback.  This
// example sweeps the interval for a fixed failure rate with
// ftckpt.Sweep — the points are independent simulations, so they run
// concurrently and still come back in input order — and prints the
// resulting completion times.
package main

import (
	"fmt"
	"log"
	"time"

	"ftckpt"
)

func main() {
	const mttf = 600 * time.Millisecond

	base := ftckpt.Options{
		Workload: "cg",
		Class:    "A",
		NP:       8,
		Protocol: "pcl",
		Servers:  2,
		MTTF:     mttf,
		Seed:     5,
	}

	intervals := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 800 * time.Millisecond, 1600 * time.Millisecond,
	}
	points := make([]ftckpt.Options, len(intervals))
	for i, iv := range intervals {
		points[i] = base
		points[i].Interval = iv
	}

	reps, err := ftckpt.Sweep(points, ftckpt.SweepOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CG class A under random failures (MTTF %v), blocking checkpointing\n\n", mttf)
	fmt.Printf("%-10s %14s %7s %9s\n", "interval", "completion", "waves", "restarts")

	best := time.Duration(0)
	var bestIv time.Duration
	for i, rep := range reps {
		iv := intervals[i]
		fmt.Printf("%-10v %14v %7d %9d\n", iv, rep.Completion, rep.Waves, rep.Restarts)
		if best == 0 || rep.Completion < best {
			best, bestIv = rep.Completion, iv
		}
	}
	fmt.Printf("\nbest interval in this sweep: %v (completion %v)\n", bestIv, best)
}
