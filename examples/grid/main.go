// Grid: run the paper's grid stress test — the NAS BT model spread over
// the six-cluster Grid'5000 topology — and compare no checkpointing,
// blocking (Pcl) and non-blocking (Vcl) coordinated checkpointing at the
// same wave interval.
//
// Each process stores its image on a checkpoint server inside its own
// cluster (the paper's machinefile mapping); inter-cluster links have two
// orders of magnitude more latency and ~20x less per-stream bandwidth
// than intra-cluster ones.
package main

import (
	"fmt"
	"log"
	"time"

	"ftckpt"
)

func main() {
	const np = 256 // 16x16 BT process grid, two processes per node
	base := ftckpt.Options{
		Workload:     "bt",
		Class:        "B",
		NP:           np,
		ProcsPerNode: 2,
		Platform:     ftckpt.PlatformGrid,
		Seed:         7,
	}

	fmt.Printf("BT class B, %d processes over the six-cluster grid\n\n", np)
	fmt.Printf("%-8s %12s %8s %14s\n", "protocol", "completion", "waves", "ckpt data (MB)")
	for _, proto := range []ftckpt.Protocol{ftckpt.ProtocolNone, ftckpt.Pcl, ftckpt.Vcl} {
		o := base
		if proto != ftckpt.ProtocolNone {
			o.Protocol = proto
			o.Interval = 6 * time.Second
		}
		rep, err := ftckpt.Run(o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12v %8d %14.1f\n", proto, rep.Completion, rep.Waves, rep.CheckpointMB)
	}
	fmt.Println("\nNote: Vcl runs here because 256 < the ~300-process select() limit of")
	fmt.Println("its dispatcher; at the paper's 400..529-process scales only Pcl runs.")
}
