package ftckpt

// Table tests for buildConfig: the typed facade must accept every
// supported enum value (and the legacy string literals, which still
// compile through the string-backed types), reject unknown values with an
// error naming the Options field, forward the Replication/Heartbeat
// specs, and reject Storage conflicts with an error naming both sides.

import (
	"strings"
	"testing"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
	"ftckpt/internal/sim"
)

func TestBuildConfigMatrix(t *testing.T) {
	platforms := []Platform{PlatformEthernet, PlatformMyrinetGM, PlatformMyrinetTCP, PlatformGrid}
	protocols := []Protocol{ProtocolNone, Pcl, Vcl, Mlog}
	for _, pl := range platforms {
		for _, pr := range protocols {
			o := Options{
				Workload: WorkloadBT, Class: ClassA,
				NP: 16, ProcsPerNode: 2,
				Protocol: pr, Interval: time.Second,
				Platform: pl, Seed: 1,
			}
			cfg, err := buildConfig(o)
			if err != nil {
				t.Fatalf("platform %q protocol %q: %v", pl, pr, err)
			}
			if got, want := cfg.Protocol, ftpm.Proto(pr); got != want {
				t.Errorf("platform %q protocol %q: cfg.Protocol = %q, want %q", pl, pr, got, want)
			}
			if pr != ProtocolNone && pl != PlatformGrid && cfg.Servers != 1 {
				t.Errorf("platform %q protocol %q: default Servers = %d, want 1", pl, pr, cfg.Servers)
			}
		}
	}
}

func TestBuildConfigWorkloads(t *testing.T) {
	for _, w := range []Workload{WorkloadBT, WorkloadCG, WorkloadMG, WorkloadLU, WorkloadCGReal, WorkloadEP, WorkloadJacobi} {
		o := Options{Workload: w, Class: ClassA, NP: 16, Seed: 1}
		if _, err := buildConfig(o); err != nil {
			t.Errorf("workload %q: %v", w, err)
		}
	}
	// The zero value defaults to BT / class B.
	if _, err := buildConfig(Options{NP: 16}); err != nil {
		t.Errorf("zero-value workload: %v", err)
	}
}

// TestBuildConfigLegacyLiterals pins the compatibility contract: the
// pre-facade string literals still compile and validate, because the enum
// types are string-backed.
func TestBuildConfigLegacyLiterals(t *testing.T) {
	o := Options{
		Workload: "cg", Class: "A", NP: 16, ProcsPerNode: 2,
		Protocol: "pcl", Interval: time.Second, Platform: "myrinet-tcp",
	}
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatalf("legacy literals: %v", err)
	}
	if cfg.Protocol != ftpm.ProtoPcl {
		t.Errorf("cfg.Protocol = %q, want %q", cfg.Protocol, ftpm.ProtoPcl)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string // substring the error must contain (the field name)
	}{
		{"np", Options{}, "Options.NP"},
		{"protocol", Options{NP: 4, Protocol: "tcp"}, "Options.Protocol"},
		{"platform", Options{NP: 4, Platform: "atm"}, "Options.Platform"},
		{"workload", Options{NP: 4, Workload: "ft"}, "Options.Workload"},
		{"class", Options{NP: 4, Workload: WorkloadBT, Class: "Z"}, "Options.Class"},
		{"failure kind", Options{NP: 4, Failures: []Failure{{At: time.Second, Kind: "rack"}}}, "Options.Failures"},
		{"servers vs storage", Options{NP: 4, Protocol: Pcl, Interval: time.Second, Servers: 2,
			Storage: &StorageSpec{Levels: []LevelSpec{{Kind: LevelServers, Servers: 2}}}},
			"Options.Servers conflicts with Options.Storage"},
		{"replication vs storage", Options{NP: 4, Protocol: Pcl, Interval: time.Second,
			Replication: &ReplicationSpec{Replicas: 2},
			Storage:     &StorageSpec{Levels: []LevelSpec{{Kind: LevelServers, Servers: 2}}}},
			"Options.Replication conflicts with Options.Storage"},
		{"storage on grid", Options{NP: 4, Protocol: Pcl, Interval: time.Second, Platform: PlatformGrid,
			Storage: &StorageSpec{Levels: []LevelSpec{{Kind: LevelServers, Servers: 2}}}},
			"Options.Storage"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildConfig(tc.o)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

// TestBuildConfigSpecConversion pins the conversion contract left behind
// by the deleted flat fields: a Replication/Heartbeat spec sets exactly
// the ftpm fields the flat form used to, and a one-level Storage spec is
// the same job again with the knobs on the servers level.
func TestBuildConfigSpecConversion(t *testing.T) {
	want := func(name string, cfg ftpm.Config) {
		t.Helper()
		if cfg.Replicas != 2 || cfg.WriteQuorum != 1 || cfg.StoreRetries != 5 ||
			cfg.RetryBackoff != time.Millisecond {
			t.Errorf("%s: replication knobs not forwarded: %+v", name, cfg)
		}
	}
	cfg, err := buildConfig(Options{
		NP: 4, Protocol: Pcl, Interval: time.Second, Servers: 3,
		Replication: &ReplicationSpec{Replicas: 2, WriteQuorum: 1, StoreRetries: 5, RetryBackoff: time.Millisecond},
		Heartbeat:   &HeartbeatSpec{Period: 10 * time.Millisecond, Timeout: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("specs: %v", err)
	}
	if cfg.Servers != 3 {
		t.Errorf("Servers = %d, want 3", cfg.Servers)
	}
	want("flat specs", cfg)
	if cfg.HeartbeatPeriod != 10*time.Millisecond || cfg.HeartbeatTimeout != 50*time.Millisecond {
		t.Errorf("heartbeat spec not forwarded: %+v", cfg)
	}

	// The same replication expressed as a one-level storage hierarchy
	// folds onto the identical flat runtime fields after validation.
	cfg, err = buildConfig(Options{
		NP: 4, Protocol: Pcl, Interval: time.Second,
		Storage: &StorageSpec{Levels: []LevelSpec{{
			Kind: LevelServers, Servers: 3,
			Replicas: 2, WriteQuorum: 1, StoreRetries: 5, RetryBackoff: time.Millisecond,
		}}},
	})
	if err != nil {
		t.Fatalf("storage spec: %v", err)
	}
	if cfg.Storage == nil || len(cfg.Storage.Levels) != 1 {
		t.Fatalf("Storage not converted: %+v", cfg.Storage)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("storage spec validation: %v", err)
	}
	if cfg.Servers != 3 {
		t.Errorf("Servers folded = %d, want 3", cfg.Servers)
	}
	want("storage spec", cfg)
}

// TestBuildConfigStorageHierarchy checks the multi-level conversion:
// facade durations become sim times, the PFS targets widen the topology,
// and the planner knobs ride along.
func TestBuildConfigStorageHierarchy(t *testing.T) {
	cfg, err := buildConfig(Options{
		NP: 8, ProcsPerNode: 2, Protocol: Pcl, Interval: time.Second,
		Storage: &StorageSpec{
			Levels: []LevelSpec{
				{Kind: LevelBuffer, Bandwidth: 3e9, Latency: 100 * time.Microsecond, Capacity: 1 << 30, Retention: 2},
				{Kind: LevelServers, Servers: 2, Replicas: 2},
				{Kind: LevelPFS, Targets: 3, Stripes: 2, Bandwidth: 5e8},
			},
			Incremental: true, FullEvery: 3,
			Compress: true, CompressRatio: 0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	sp := cfg.Storage
	if sp == nil || len(sp.Levels) != 3 {
		t.Fatalf("Storage = %+v", sp)
	}
	if !sp.Incremental || sp.FullEvery != 3 || !sp.Compress || sp.CompressRatio != 0.5 {
		t.Errorf("planner knobs lost: %+v", sp)
	}
	if got := sp.Levels[0].Latency; got != sim.Time(100*time.Microsecond) {
		t.Errorf("buffer latency = %v", got)
	}
	// Topology must fit compute + servers + service + PFS target nodes.
	computeNodes := 4
	need := computeNodes + 2 + 1 + 3
	if cfg.Topology.TotalNodes() < need {
		t.Errorf("topology has %d nodes, need %d with the PFS targets", cfg.Topology.TotalNodes(), need)
	}
}

func TestBuildConfigFailureConstructors(t *testing.T) {
	cfg, err := buildConfig(Options{
		NP: 8, Protocol: Pcl, Interval: time.Second,
		Failures: []Failure{
			KillRank(time.Second, 3),
			KillNode(2*time.Second, 1),
			KillServer(3*time.Second, 0),
			KillBuffer(4*time.Second, 2),
			KillPFS(5*time.Second, 1),
		},
	})
	if err != nil {
		t.Fatalf("constructors: %v", err)
	}
	if len(cfg.Failures) != 5 {
		t.Fatalf("got %d failure events, want 5", len(cfg.Failures))
	}
	if ev := cfg.Failures[0]; ev.Kind != failure.KindRank || ev.Rank != 3 || ev.At != time.Second {
		t.Errorf("KillRank event = %+v", ev)
	}
	if ev := cfg.Failures[1]; ev.Kind != failure.KindNode || ev.Node != 1 {
		t.Errorf("KillNode event = %+v", ev)
	}
	if ev := cfg.Failures[2]; ev.Kind != failure.KindServer || ev.Server != 0 {
		t.Errorf("KillServer event = %+v", ev)
	}
	if ev := cfg.Failures[3]; ev.Kind != failure.KindBuffer || ev.Node != 2 {
		t.Errorf("KillBuffer event = %+v", ev)
	}
	if ev := cfg.Failures[4]; ev.Kind != failure.KindPFS || ev.Server != 1 {
		t.Errorf("KillPFS event = %+v", ev)
	}
}

func TestBuildConfigVclProcessLimit(t *testing.T) {
	cfg, err := buildConfig(Options{NP: 8, Protocol: Vcl, Interval: time.Second, VclProcessLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.VclProcessLimit != -1 {
		t.Errorf("VclProcessLimit = %d, want -1", cfg.VclProcessLimit)
	}
}
