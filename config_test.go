package ftckpt

// Table tests for buildConfig: the typed facade must accept every
// supported enum value (and the legacy string literals, which still
// compile through the string-backed types), reject unknown values with an
// error naming the Options field, honour the deprecated flat
// replication/heartbeat shims, and reject flat-vs-spec conflicts with an
// error naming both sides.

import (
	"strings"
	"testing"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
)

func TestBuildConfigMatrix(t *testing.T) {
	platforms := []Platform{PlatformEthernet, PlatformMyrinetGM, PlatformMyrinetTCP, PlatformGrid}
	protocols := []Protocol{ProtocolNone, Pcl, Vcl, Mlog}
	for _, pl := range platforms {
		for _, pr := range protocols {
			o := Options{
				Workload: WorkloadBT, Class: ClassA,
				NP: 16, ProcsPerNode: 2,
				Protocol: pr, Interval: time.Second,
				Platform: pl, Seed: 1,
			}
			cfg, err := buildConfig(o)
			if err != nil {
				t.Fatalf("platform %q protocol %q: %v", pl, pr, err)
			}
			if got, want := cfg.Protocol, ftpm.Proto(pr); got != want {
				t.Errorf("platform %q protocol %q: cfg.Protocol = %q, want %q", pl, pr, got, want)
			}
			if pr != ProtocolNone && pl != PlatformGrid && cfg.Servers != 1 {
				t.Errorf("platform %q protocol %q: default Servers = %d, want 1", pl, pr, cfg.Servers)
			}
		}
	}
}

func TestBuildConfigWorkloads(t *testing.T) {
	for _, w := range []Workload{WorkloadBT, WorkloadCG, WorkloadMG, WorkloadLU, WorkloadCGReal, WorkloadEP, WorkloadJacobi} {
		o := Options{Workload: w, Class: ClassA, NP: 16, Seed: 1}
		if _, err := buildConfig(o); err != nil {
			t.Errorf("workload %q: %v", w, err)
		}
	}
	// The zero value defaults to BT / class B.
	if _, err := buildConfig(Options{NP: 16}); err != nil {
		t.Errorf("zero-value workload: %v", err)
	}
}

// TestBuildConfigLegacyLiterals pins the compatibility contract: the
// pre-facade string literals still compile and validate, because the enum
// types are string-backed.
func TestBuildConfigLegacyLiterals(t *testing.T) {
	o := Options{
		Workload: "cg", Class: "A", NP: 16, ProcsPerNode: 2,
		Protocol: "pcl", Interval: time.Second, Platform: "myrinet-tcp",
	}
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatalf("legacy literals: %v", err)
	}
	if cfg.Protocol != ftpm.ProtoPcl {
		t.Errorf("cfg.Protocol = %q, want %q", cfg.Protocol, ftpm.ProtoPcl)
	}
}

func TestBuildConfigErrors(t *testing.T) {
	cases := []struct {
		name string
		o    Options
		want string // substring the error must contain (the field name)
	}{
		{"np", Options{}, "Options.NP"},
		{"protocol", Options{NP: 4, Protocol: "tcp"}, "Options.Protocol"},
		{"platform", Options{NP: 4, Platform: "atm"}, "Options.Platform"},
		{"workload", Options{NP: 4, Workload: "ft"}, "Options.Workload"},
		{"class", Options{NP: 4, Workload: WorkloadBT, Class: "Z"}, "Options.Class"},
		{"failure kind", Options{NP: 4, Failures: []Failure{{At: time.Second, Kind: "rack"}}}, "Options.Failures"},
		{"replicas conflict", Options{NP: 4, Replicas: 2,
			Replication: &ReplicationSpec{Replicas: 3}}, "Options.Replicas (2) conflicts"},
		{"quorum conflict", Options{NP: 4, WriteQuorum: 1,
			Replication: &ReplicationSpec{Replicas: 3, WriteQuorum: 2}}, "Options.WriteQuorum (1) conflicts"},
		{"retries conflict", Options{NP: 4, StoreRetries: 1,
			Replication: &ReplicationSpec{StoreRetries: 4}}, "Options.StoreRetries (1) conflicts"},
		{"backoff conflict", Options{NP: 4, RetryBackoff: time.Second,
			Replication: &ReplicationSpec{RetryBackoff: time.Minute}}, "Options.RetryBackoff (1s) conflicts"},
		{"heartbeat period conflict", Options{NP: 4, HeartbeatPeriod: time.Second,
			Heartbeat: &HeartbeatSpec{Period: time.Minute}}, "Options.HeartbeatPeriod (1s) conflicts"},
		{"heartbeat timeout conflict", Options{NP: 4, HeartbeatTimeout: time.Second,
			Heartbeat: &HeartbeatSpec{Period: time.Second, Timeout: time.Minute}}, "Options.HeartbeatTimeout (1s) conflicts"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := buildConfig(tc.o)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestBuildConfigReplicationShims(t *testing.T) {
	// Deprecated flat fields alone still configure replication.
	cfg, err := buildConfig(Options{
		NP: 4, Protocol: Pcl, Interval: time.Second, Servers: 3,
		Replicas: 2, WriteQuorum: 1, StoreRetries: 5, RetryBackoff: time.Millisecond,
		HeartbeatPeriod: 10 * time.Millisecond, HeartbeatTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("flat shims: %v", err)
	}
	if cfg.Replicas != 2 || cfg.WriteQuorum != 1 || cfg.StoreRetries != 5 ||
		cfg.RetryBackoff != time.Millisecond ||
		cfg.HeartbeatPeriod != 10*time.Millisecond || cfg.HeartbeatTimeout != 50*time.Millisecond {
		t.Errorf("flat shims not forwarded: %+v", cfg)
	}

	// The grouped specs forward the same way.
	cfg, err = buildConfig(Options{
		NP: 4, Protocol: Pcl, Interval: time.Second, Servers: 3,
		Replication: &ReplicationSpec{Replicas: 2, WriteQuorum: 1, StoreRetries: 5, RetryBackoff: time.Millisecond},
		Heartbeat:   &HeartbeatSpec{Period: 10 * time.Millisecond, Timeout: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("specs: %v", err)
	}
	if cfg.Replicas != 2 || cfg.WriteQuorum != 1 || cfg.StoreRetries != 5 ||
		cfg.RetryBackoff != time.Millisecond ||
		cfg.HeartbeatPeriod != 10*time.Millisecond || cfg.HeartbeatTimeout != 50*time.Millisecond {
		t.Errorf("specs not forwarded: %+v", cfg)
	}

	// Agreeing flat + spec values are not a conflict.
	if _, err := buildConfig(Options{
		NP: 4, Replicas: 2, Replication: &ReplicationSpec{Replicas: 2},
	}); err != nil {
		t.Errorf("agreeing values rejected: %v", err)
	}
}

func TestBuildConfigFailureConstructors(t *testing.T) {
	cfg, err := buildConfig(Options{
		NP: 8, Protocol: Pcl, Interval: time.Second,
		Failures: []Failure{
			KillRank(time.Second, 3),
			KillNode(2*time.Second, 1),
			KillServer(3*time.Second, 0),
		},
	})
	if err != nil {
		t.Fatalf("constructors: %v", err)
	}
	if len(cfg.Failures) != 3 {
		t.Fatalf("got %d failure events, want 3", len(cfg.Failures))
	}
	if ev := cfg.Failures[0]; ev.Kind != failure.KindRank || ev.Rank != 3 || ev.At != time.Second {
		t.Errorf("KillRank event = %+v", ev)
	}
	if ev := cfg.Failures[1]; ev.Kind != failure.KindNode || ev.Node != 1 {
		t.Errorf("KillNode event = %+v", ev)
	}
	if ev := cfg.Failures[2]; ev.Kind != failure.KindServer || ev.Server != 0 {
		t.Errorf("KillServer event = %+v", ev)
	}
}

func TestBuildConfigVclProcessLimit(t *testing.T) {
	cfg, err := buildConfig(Options{NP: 8, Protocol: Vcl, Interval: time.Second, VclProcessLimit: -1})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.VclProcessLimit != -1 {
		t.Errorf("VclProcessLimit = %d, want -1", cfg.VclProcessLimit)
	}
}
