package ftckpt

// Benchmarks regenerating the paper's evaluation: one benchmark per figure
// (Figs. 5–10) plus the NetPIPE characterization and ablation studies of
// the design choices called out in DESIGN.md.
//
// Each benchmark iteration performs the figure's full simulation sweep and
// reports the headline quantities as custom metrics (virtual seconds,
// committed waves), so `go test -bench . -benchmem` both exercises and
// summarizes the reproduction.  Under `-short`, the Quick harnesses run
// (~10x smaller workloads, same shapes).

import (
	"fmt"
	"runtime"
	"testing"
	"time"

	"ftckpt/internal/expt"
	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
	"ftckpt/internal/platform"
)

func benchOpts(b *testing.B) expt.Options {
	return expt.Options{Quick: testing.Short(), Seed: 1}
}

// BenchmarkNetpipePlatform regenerates the §5.4 NetPIPE characterization.
func BenchmarkNetpipePlatform(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Netpipe(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.IntraBW, "intraMB/s")
		b.ReportMetric(last.InterBW, "interMB/s")
		b.ReportMetric(float64(rows[0].InterRTT)/float64(rows[0].IntraRTT), "latencyRatio")
	}
}

// BenchmarkFig5CheckpointServers regenerates Fig. 5 (BT.B/64, server sweep).
func BenchmarkFig5CheckpointServers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig5(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		first, last := rows[0], rows[len(rows)-1]
		b.ReportMetric(first.PclTime.Seconds(), "pcl1srv-s")
		b.ReportMetric(last.PclTime.Seconds(), "pcl8srv-s")
		b.ReportMetric(float64(last.VclWaves), "vcl8srv-waves")
	}
}

// BenchmarkFig6Scalability regenerates Fig. 6 (BT.B size/frequency sweep).
func BenchmarkFig6Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig6(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		// Report the overhead gap between the fastest and slowest
		// checkpoint frequency at the largest size.
		var fast, slow expt.Fig6Row
		for _, r := range rows {
			if r.NP == rows[len(rows)-1].NP {
				if fast.NP == 0 || r.Interval < fast.Interval {
					fast = r
				}
				if slow.NP == 0 || r.Interval > slow.Interval {
					slow = r
				}
			}
		}
		b.ReportMetric(float64(fast.Pcl-fast.None)/float64(fast.None)*100, "pclOvFast%")
		b.ReportMetric(float64(slow.Pcl-slow.None)/float64(slow.None)*100, "pclOvSlow%")
	}
}

// BenchmarkFig7HighSpeed regenerates Fig. 7 (CG.C/64 on Myrinet, 3 stacks).
func BenchmarkFig7HighSpeed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig7(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		base := map[string]expt.Fig7Row{}
		for _, r := range rows {
			if r.Interval == 0 {
				base[r.Stack] = r
			}
		}
		b.ReportMetric(base["pcl-nemesis"].Time.Seconds(), "nemesis-s")
		b.ReportMetric(base["pcl-sock"].Time.Seconds(), "sock-s")
		b.ReportMetric(base["vcl"].Time.Seconds(), "vcl-s")
	}
}

// BenchmarkFig8WaveScaling regenerates Fig. 8 (CG.C size sweep, Nemesis).
func BenchmarkFig8WaveScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig8(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		waves := 0
		for _, r := range rows {
			waves += r.Waves
		}
		b.ReportMetric(float64(waves), "totalWaves")
	}
}

// BenchmarkFig9GridFrequency regenerates Fig. 9 (BT.B/400 on the grid).
func BenchmarkFig9GridFrequency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig9(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.Time.Seconds(), "fastestIv-s")
		b.ReportMetric(float64(last.Waves), "fastestIv-waves")
	}
}

// BenchmarkFig10GridScale regenerates Fig. 10 (grid size sweep).
func BenchmarkFig10GridScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expt.Fig10(benchOpts(b))
		if err != nil {
			b.Fatal(err)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.NoCkpt.Seconds(), "largestNone-s")
		b.ReportMetric(last.Ckpt60.Seconds(), "largestCkpt-s")
	}
}

// BenchmarkSweepJobs measures the parallel sweep executor against the
// sequential baseline on the Fig. 6 grid (the widest sweep: intervals ×
// sizes × three protocols).  The jobs=1 case is the classic sequential
// sweep; jobs=N fans the points over runtime.NumCPU() workers.  Output
// is byte-identical either way, so the delta is pure wall-clock.
func BenchmarkSweepJobs(b *testing.B) {
	for _, jobs := range []int{1, runtime.NumCPU()} {
		jobs := jobs
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := benchOpts(b)
				o.Jobs = jobs
				if _, err := expt.Fig6(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkProtocolFamilies contrasts the two fault-tolerance families in
// one failure-free run (§2's comparison): coordinated checkpointing
// (blocking and non-blocking) pays per wave, pessimistic message logging
// pays on every message.
func BenchmarkProtocolFamilies(b *testing.B) {
	class := nas.CGClassA
	mk := func(rank, size int) mpi.Program { return nas.NewCGModel(class, rank, size) }
	base := func() ftpm.Config {
		return ftpm.Config{
			NP:           16,
			ProcsPerNode: 2,
			Servers:      2,
			Topology:     platform.EthernetCluster(16),
			Profile:      platform.PclSock,
			NewProgram:   mk,
			Seed:         1,
		}
	}
	for i := 0; i < b.N; i++ {
		cfg := base()
		none, err := ftpm.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg = base()
		cfg.Protocol = ftpm.ProtoPcl
		cfg.Interval = none.Completion / 4
		pcl, err := ftpm.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg = base()
		cfg.Protocol = ftpm.ProtoVcl
		cfg.Profile = platform.Vcl
		cfg.Interval = none.Completion / 4
		vcl, err := ftpm.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg = base()
		cfg.Protocol = ftpm.ProtoMlog
		cfg.Profile = platform.Vcl
		cfg.Interval = none.Completion / 4
		mlog, err := ftpm.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(none.Completion.Seconds(), "none-s")
		b.ReportMetric(pcl.Completion.Seconds(), "pcl-s")
		b.ReportMetric(vcl.Completion.Seconds(), "vcl-s")
		b.ReportMetric(mlog.Completion.Seconds(), "mlog-s")
	}
}

// --- ablations -----------------------------------------------------------

// ablationBase is a mid-size BT run used by the ablation benchmarks.
func ablationBase(interval time.Duration) ftpm.Config {
	class := nas.BTClassA
	if testing.Short() {
		class.Iters = 40
	}
	return ftpm.Config{
		NP:           16,
		ProcsPerNode: 2,
		Protocol:     ftpm.ProtoPcl,
		Interval:     interval,
		Servers:      2,
		Topology:     platform.EthernetCluster(16),
		Profile:      platform.PclSock,
		NewProgram:   func(rank, size int) mpi.Program { return nas.NewBTModel(class, rank, size) },
		Seed:         1,
	}
}

// cgAblationCfg is a latency-bound CG-model run, where per-message costs
// actually matter.
func cgAblationCfg() ftpm.Config {
	class := nas.CGClassB
	if testing.Short() {
		class.Iters = 15
	}
	return ftpm.Config{
		NP:           16,
		ProcsPerNode: 2,
		Servers:      2,
		Topology:     platform.EthernetCluster(16),
		Profile:      platform.PclSock,
		NewProgram:   func(rank, size int) mpi.Program { return nas.NewCGModel(class, rank, size) },
		Seed:         1,
	}
}

// BenchmarkAblationDaemonOverhead isolates the Vcl daemon's per-message
// cost (DESIGN.md §5.3) on the latency-bound CG benchmark: the same
// failure-free run through the daemon path and through a hypothetical
// daemon-free non-blocking stack.
func BenchmarkAblationDaemonOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := cgAblationCfg()
		with.Profile = platform.Vcl
		rw, err := ftpm.Run(with)
		if err != nil {
			b.Fatal(err)
		}
		without := cgAblationCfg()
		prof := platform.Vcl
		prof.DaemonLatency = 0
		prof.DaemonCopyBW = 0
		without.Profile = prof
		ro, err := ftpm.Run(without)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rw.Completion.Seconds(), "daemon-s")
		b.ReportMetric(ro.Completion.Seconds(), "noDaemon-s")
		b.ReportMetric((float64(rw.Completion)/float64(ro.Completion)-1)*100, "daemonCost%")
	}
}

// BenchmarkAblationMarkerHandling isolates the progress-engine asymmetry:
// Pcl handles markers only inside MPI calls (synchronous profile), so the
// channel flush straggles while processes compute; handling markers
// asynchronously (as Vcl's daemon architecture does) completes waves much
// faster.  On a compute-heavy BT step the asynchronous variant commits
// ~1.6x more checkpoints, trading a few percent of completion time (each
// extra wave steals transfer CPU) for far better protection — the
// architectural trait the paper credits to MPICH-V's daemon.
func BenchmarkAblationMarkerHandling(b *testing.B) {
	class := nas.BTClassC
	class.Iters = 30
	if testing.Short() {
		class.Iters = 10
	}
	mk := func(rank, size int) mpi.Program { return nas.NewBTModel(class, rank, size) }
	for i := 0; i < b.N; i++ {
		syncCfg := ablationBase(20 * time.Second)
		syncCfg.NewProgram = mk
		rs, err := ftpm.Run(syncCfg)
		if err != nil {
			b.Fatal(err)
		}
		asyncCfg := ablationBase(20 * time.Second)
		asyncCfg.NewProgram = mk
		prof := asyncCfg.Profile
		prof.Async = true
		asyncCfg.Profile = prof
		ra, err := ftpm.Run(asyncCfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rs.Completion.Seconds(), "inCall-s")
		b.ReportMetric(ra.Completion.Seconds(), "async-s")
		b.ReportMetric(float64(rs.WavesCommitted), "inCall-waves")
		b.ReportMetric(float64(ra.WavesCommitted), "async-waves")
	}
}

// BenchmarkAblationRestartCost measures rollback/recovery cost as a
// function of image size: the restart fetches every image from the
// checkpoint servers.
func BenchmarkAblationRestartCost(b *testing.B) {
	for _, mb := range []int64{1, 16, 64} {
		mb := mb
		b.Run(map[int64]string{1: "img1MB", 16: "img16MB", 64: "img64MB"}[mb], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				class := nas.BTClassA
				class.Iters = 60
				class.BytesPerCell = mb << 20 * int64(16) / (int64(class.Grid) * int64(class.Grid) * int64(class.Grid))
				cfg := ablationBase(2 * time.Second)
				cfg.NewProgram = func(rank, size int) mpi.Program { return nas.NewBTModel(class, rank, size) }
				base, err := ftpm.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				cfg = ablationBase(2 * time.Second)
				cfg.NewProgram = func(rank, size int) mpi.Program { return nas.NewBTModel(class, rank, size) }
				cfg.Failures = failure.KillAt(base.Completion/2, 3)
				res, err := ftpm.Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric((res.Completion - base.Completion).Seconds(), "recoveryCost-s")
			}
		})
	}
}
