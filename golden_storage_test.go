package ftckpt

// Golden determinism tests for the multi-level storage hierarchy: a
// two-level (buffer + replicated servers) job with incremental,
// compressed images, through a staging-buffer kill and a rank kill, must
// produce byte-identical artifacts across repeats, be bit-for-bit equal
// on the sharded kernel, and hold every chaos invariant under a
// buffer-kill-heavy random schedule.

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"ftckpt/internal/chaos"
	"ftckpt/internal/failure"
)

// storageGolden is the hierarchy scenario of the golden suite: staged
// commits, async drains, a buffer loss between two waves and a rank
// kill whose restore falls through the dead buffer to the servers.
func storageGolden() Options {
	return Options{
		Workload:     WorkloadCGReal,
		NP:           8,
		ProcsPerNode: 2,
		Protocol:     Pcl,
		Interval:     5 * time.Millisecond,
		Storage: &StorageSpec{
			Levels: []LevelSpec{
				{Kind: LevelBuffer},
				{Kind: LevelServers, Servers: 2, Replicas: 2, WriteQuorum: 1,
					StoreRetries: 2, RetryBackoff: time.Millisecond},
			},
			Incremental: true,
			Compress:    true,
		},
		Heartbeat: &HeartbeatSpec{Period: 2 * time.Millisecond},
		Seed:      7,
		Failures: []Failure{
			KillBuffer(9*time.Millisecond, 1),
			KillRank(17*time.Millisecond, 3),
		},
	}
}

// TestGoldenDeterminismStorage pins the hierarchy recovery path and its
// reproducibility: the run must actually checkpoint, restart once, and
// repeat byte for byte.
func TestGoldenDeterminismStorage(t *testing.T) {
	o := storageGolden()
	rep, _, _ := goldenArtifacts(t, o)
	if rep.Waves == 0 || rep.Restarts == 0 {
		t.Fatalf("hierarchy scenario exercised no recovery: %+v", rep)
	}
	base, err := Run(Options{Workload: WorkloadCGReal, NP: 8, ProcsPerNode: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checksum != base.Checksum {
		t.Fatalf("recovered checksum %v != failure-free %v", rep.Checksum, base.Checksum)
	}
	checkGolden(t, o)
}

// TestGoldenShardStorage requires the staged drains — which run
// concurrently with compute on the sharded kernel — to produce the same
// bytes as the sequential kernel at Shards 1 and 4.
func TestGoldenShardStorage(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	o := storageGolden()
	o.Attribution = true
	checkShardEquivalence(t, o, 1, 4)
}

// TestGoldenStorageChaos runs the two-level hierarchy under a seeded
// random schedule biased toward staging-buffer kills and requires a
// schedule that really contains one, every recovery invariant to hold,
// and the full report to be identical across two executions.
func TestGoldenStorageChaos(t *testing.T) {
	o := storageGolden()
	o.Failures = nil
	sp := ChaosSpec{Kills: 3, BufferFrac: 0.5,
		From: 6 * time.Millisecond, Until: 16 * time.Millisecond}
	// Deterministically scan for a schedule with a buffer kill followed
	// by a rank kill: the staged-copy loss must be exercised, not just
	// scheduled.
	cfg, err := buildConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for seed := int64(1); seed <= 200; seed++ {
		sp.Seed = seed
		plan, err := chaos.Schedule(chaos.Spec{
			Seed: sp.Seed, Kills: sp.Kills, BufferFrac: sp.BufferFrac,
			From: sp.From, Until: sp.Until,
		}, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var bufAt time.Duration
		ranksAfter := 0
		for _, ev := range plan {
			if ev.Kind == failure.KindBuffer {
				bufAt = ev.At
			}
		}
		for _, ev := range plan {
			if ev.Kind == failure.KindRank && bufAt > 0 && ev.At > bufAt {
				ranksAfter++
			}
		}
		if bufAt > 0 && ranksAfter >= 1 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no schedule with a buffer kill + later rank kill in seeds 1..200")
	}

	run := func() ChaosReport {
		rep, err := Chaos(o, sp)
		if err != nil {
			t.Fatalf("seed %d: %v", sp.Seed, err)
		}
		rep.Report.Metrics = nil
		return rep
	}
	r1 := run()
	if !r1.OK() {
		t.Fatalf("seed %d violations: %v", sp.Seed, r1.Violations)
	}
	if r1.Degraded == nil {
		if r1.Checksum == 0 || r1.Checksum != r1.Reference {
			t.Fatalf("seed %d: checksum %v, reference %v", sp.Seed, r1.Checksum, r1.Reference)
		}
	}
	r2 := run()
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("chaos report differs across identical runs:\n  first  %+v\n  second %+v", r1, r2)
	}
}
