package ftckpt

// Sharded-kernel equivalence tests: Options.Shards parallelizes event
// staging inside the kernel, and the contract is absolute — every
// artifact a run produces (Report, workload checksum, metrics export,
// Chrome trace, per-phase attribution JSON) must be byte-identical to
// the sequential kernel for the same seed, for every protocol, through
// failures, replication, heartbeats and chaos sweeps.  GOMAXPROCS is
// pinned above 1 so that under -race the shard workers really run in
// parallel rather than degenerating into cooperative scheduling.

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"
)

// shardArtifacts executes one run and returns its comparable Report
// (registry and attribution pointers stripped) plus the serialized
// metrics, Chrome trace and attribution documents.
func shardArtifacts(t *testing.T, o Options) (Report, []byte, []byte, []byte) {
	t.Helper()
	col := NewCollector()
	o.Sink = col
	rep, err := Run(o)
	if err != nil {
		t.Fatalf("Run (shards=%d): %v", o.Shards, err)
	}
	var met, trace bytes.Buffer
	if err := rep.Metrics.WriteJSON(&met); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := col.WriteChromeTrace(&trace); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var attr []byte
	if rep.Attribution != nil {
		attr = attribJSON(t, rep.Attribution)
	}
	rep.Metrics = nil
	rep.Attribution = nil
	return rep, met.Bytes(), trace.Bytes(), attr
}

// checkShardEquivalence runs o sequentially and at each shard count and
// requires byte-identical artifacts throughout.
func checkShardEquivalence(t *testing.T, o Options, shardCounts ...int) {
	t.Helper()
	o.Shards = 0
	seqRep, seqMet, seqTrace, seqAttr := shardArtifacts(t, o)
	for _, n := range shardCounts {
		so := o
		so.Shards = n
		rep, met, trace, attr := shardArtifacts(t, so)
		if rep != seqRep {
			t.Errorf("shards=%d: Report differs from sequential:\n  seq     %+v\n  sharded %+v", n, seqRep, rep)
		}
		if rep.Checksum != seqRep.Checksum {
			t.Errorf("shards=%d: checksum differs: %v vs %v", n, seqRep.Checksum, rep.Checksum)
		}
		if !bytes.Equal(met, seqMet) {
			t.Errorf("shards=%d: metrics JSON differs from sequential (%d vs %d bytes)", n, len(seqMet), len(met))
		}
		if !bytes.Equal(trace, seqTrace) {
			t.Errorf("shards=%d: Chrome trace differs from sequential (%d vs %d bytes)", n, len(seqTrace), len(trace))
		}
		if !bytes.Equal(attr, seqAttr) {
			t.Errorf("shards=%d: attribution JSON differs from sequential (%d vs %d bytes)", n, len(seqAttr), len(attr))
		}
	}
}

// TestGoldenShardEquivalence pins the tentpole contract per protocol:
// a failure-and-recovery run on the sharded kernel (Shards=1 and
// Shards=4) produces the same bytes as the sequential kernel — report,
// checksum, metrics, trace and the -explain attribution document.
func TestGoldenShardEquivalence(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	for _, proto := range []Protocol{Pcl, Vcl, Mlog} {
		t.Run(string(proto), func(t *testing.T) {
			checkShardEquivalence(t, Options{
				Workload:     WorkloadBT,
				Class:        ClassA,
				NP:           16,
				ProcsPerNode: 2,
				Protocol:     proto,
				Interval:     2 * time.Second,
				Servers:      2,
				Seed:         42,
				Attribution:  true,
				Failures:     []Failure{KillRank(3*time.Second, 5)},
			}, 1, 4)
		})
	}
}

// TestGoldenShardReplicated covers replication, heartbeats and failover
// on the sharded kernel: retry timers and fetch ordering must survive
// parallel staging bit-for-bit.
func TestGoldenShardReplicated(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	checkShardEquivalence(t, Options{
		Workload:     WorkloadCGReal,
		NP:           8,
		ProcsPerNode: 2,
		Protocol:     Pcl,
		Interval:     5 * time.Millisecond,
		Servers:      3,
		Replication:  &ReplicationSpec{Replicas: 2, WriteQuorum: 1, StoreRetries: 2, RetryBackoff: time.Millisecond},
		Heartbeat:    &HeartbeatSpec{Period: 2 * time.Millisecond},
		Seed:         7,
		Attribution:  true,
		Failures: []Failure{
			KillServer(11*time.Millisecond, 1),
			KillRank(17*time.Millisecond, 3),
		},
	}, 1, 4)
}

// TestGoldenShardGrid covers the multi-cluster topology, where the
// lookahead is derived from LAN latencies but cross-cluster flows pay
// the WAN — the window logic must not let a WAN delivery slip a window.
func TestGoldenShardGrid(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	checkShardEquivalence(t, Options{
		Workload:     WorkloadBT,
		Class:        ClassA,
		NP:           16,
		ProcsPerNode: 2,
		Protocol:     Vcl,
		Interval:     2 * time.Second,
		Platform:     PlatformGrid,
		Seed:         9,
	}, 4)
}

// TestGoldenShardULFM covers the in-job recovery path on the sharded
// kernel: revoke-shrink-agree-splice onto a spare rank, through a node
// loss, must produce the same bytes as the sequential kernel — the
// repair agreement rounds and the replacement rank's replay are all
// ordinary simulated traffic, so sharding must not reorder them.
func TestGoldenShardULFM(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	o := ulfmGolden()
	o.Attribution = true
	o.Failures = []Failure{KillNode(40*time.Millisecond, 3)}
	checkShardEquivalence(t, o, 1, 4)
}

// TestGoldenShardChaosSweep replicates the heartbeat-chaos sweep of
// TestGoldenDeterminismChaosSweep with every point on a 4-shard kernel
// and requires the full artifact set — reports, the deterministically
// merged metrics registry, per-point Chrome traces and the serialized
// progress log — to match the sequential sweep byte for byte.  Sweep
// workers (Jobs=4) and shard workers compose here: two layers of real
// parallelism, one output.
func TestGoldenShardChaosSweep(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	repl := &ReplicationSpec{Replicas: 2, WriteQuorum: 1, StoreRetries: 2, RetryBackoff: time.Millisecond}
	hb := &HeartbeatSpec{Period: 2 * time.Millisecond}
	base := []Options{
		{Protocol: Pcl, Seed: 7, Failures: []Failure{
			KillServer(11*time.Millisecond, 1), KillRank(17*time.Millisecond, 3)}},
		{Protocol: Vcl, Seed: 11, Failures: []Failure{
			KillRank(13*time.Millisecond, 2), KillNode(23*time.Millisecond, 1)}},
		{Protocol: Mlog, Seed: 13, Failures: []Failure{
			KillServer(9*time.Millisecond, 0)}},
		{Protocol: Pcl, Seed: 21, Failures: []Failure{
			KillNode(15*time.Millisecond, 2)}},
	}
	for i := range base {
		base[i].Workload = WorkloadCGReal
		base[i].NP = 8
		base[i].ProcsPerNode = 2
		base[i].Interval = 5 * time.Millisecond
		base[i].Servers = 3
		base[i].Replication = repl
		base[i].Heartbeat = hb
	}

	runOnce := func(shards int) ([]Report, []byte, [][]byte, []byte) {
		pts := make([]Options, len(base))
		cols := make([]*Collector, len(base))
		for i := range base {
			pts[i] = base[i]
			pts[i].Shards = shards
			cols[i] = NewCollector()
			pts[i].Sink = cols[i]
			pts[i].Verbose = func(string, ...any) {}
		}
		met := NewMetrics()
		var traceLog bytes.Buffer
		reps, err := Sweep(pts, SweepOptions{
			Jobs:    4,
			Metrics: met,
			Trace:   func(format string, args ...any) { fmt.Fprintf(&traceLog, format+"\n", args...) },
		})
		if err != nil {
			t.Fatalf("Sweep (shards=%d): %v", shards, err)
		}
		var metJSON bytes.Buffer
		if err := met.WriteJSON(&metJSON); err != nil {
			t.Fatalf("WriteJSON: %v", err)
		}
		chromes := make([][]byte, len(cols))
		for i, col := range cols {
			var b bytes.Buffer
			if err := col.WriteChromeTrace(&b); err != nil {
				t.Fatalf("WriteChromeTrace: %v", err)
			}
			chromes[i] = b.Bytes()
		}
		for i := range reps {
			reps[i].Metrics = nil
		}
		return reps, metJSON.Bytes(), chromes, traceLog.Bytes()
	}

	r1, m1, c1, l1 := runOnce(0)
	r2, m2, c2, l2 := runOnce(4)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("point %d: Report differs between sequential and sharded sweep:\n  seq     %+v\n  sharded %+v", i, r1[i], r2[i])
		}
		if !bytes.Equal(c1[i], c2[i]) {
			t.Errorf("point %d: Chrome trace differs between sequential and sharded sweep (%d vs %d bytes)", i, len(c1[i]), len(c2[i]))
		}
	}
	if !bytes.Equal(m1, m2) {
		t.Errorf("merged metrics JSON differs between sequential and sharded sweep (%d vs %d bytes)", len(m1), len(m2))
	}
	if !bytes.Equal(l1, l2) {
		t.Errorf("serialized trace log differs between sequential and sharded sweep (%d vs %d bytes)", len(l1), len(l2))
	}
}
