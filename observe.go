package ftckpt

import (
	"io"

	"ftckpt/internal/obs"
	"ftckpt/internal/span"
)

// Observability surface.  The simulator publishes a structured event for
// every protocol action worth seeing — marker sends and receipts, channel
// freezes, logged in-transit messages, checkpoint-image transfers, wave
// commits, failures and restarts — all stamped with virtual time.  Attach
// a Sink through Options.Sink to receive the stream; a Collector gathers
// it for export as a Chrome trace_event timeline (chrome://tracing or
// https://ui.perfetto.dev), and every Report carries the run's Metrics
// registry of counters and virtual-time histograms.

// Sink receives structured observability events.
type Sink = obs.Sink

// Event is one structured observability event.
type Event = obs.Event

// EventType identifies the kind of an Event.
type EventType = obs.EventType

// Collector is a Sink that retains every event in order, for inspection
// or timeline export via its WriteChromeTrace method.
type Collector = obs.Collector

// Metrics is a registry of counters, gauges and virtual-time histograms.
type Metrics = obs.Metrics

// Event types, re-exported from the internal observability package.
const (
	EvMarkerSent       = obs.EvMarkerSent
	EvMarkerRecv       = obs.EvMarkerRecv
	EvChannelBlocked   = obs.EvChannelBlocked
	EvChannelUnblocked = obs.EvChannelUnblocked
	EvSendDelayed      = obs.EvSendDelayed
	EvRecvDelayed      = obs.EvRecvDelayed
	EvMessageLogged    = obs.EvMessageLogged
	EvLocalCkptBegin   = obs.EvLocalCkptBegin
	EvLocalCkptEnd     = obs.EvLocalCkptEnd
	EvImageStoreBegin  = obs.EvImageStoreBegin
	EvImageStoreEnd    = obs.EvImageStoreEnd
	EvLogShipBegin     = obs.EvLogShipBegin
	EvLogShipEnd       = obs.EvLogShipEnd
	EvWaveCommit       = obs.EvWaveCommit
	EvRankKilled       = obs.EvRankKilled
	EvNodeLost         = obs.EvNodeLost
	EvRestartBegin     = obs.EvRestartBegin
	EvRestartEnd       = obs.EvRestartEnd
	EvJobComplete      = obs.EvJobComplete
	EvServerKilled     = obs.EvServerKilled
	EvHeartbeatTimeout = obs.EvHeartbeatTimeout
	EvReplicaFailover  = obs.EvReplicaFailover
	EvStoreRetry       = obs.EvStoreRetry
	EvQuorumLost       = obs.EvQuorumLost
	EvMessageReplayed  = obs.EvMessageReplayed
	EvDegraded         = obs.EvDegraded
	EvComponentDead    = obs.EvComponentDead
	EvRankDone         = obs.EvRankDone
	EvCounterSample    = obs.EvCounterSample
	EvProcFailed       = obs.EvProcFailed
	EvRevoked          = obs.EvRevoked
	EvRepairBegin      = obs.EvRepairBegin
	EvRepairEnd        = obs.EvRepairEnd
	EvRepairAbort      = obs.EvRepairAbort
	EvAppCkpt          = obs.EvAppCkpt
	EvAppRestore       = obs.EvAppRestore
	EvDrainBegin       = obs.EvDrainBegin
	EvDrainEnd         = obs.EvDrainEnd
	EvBufferKilled     = obs.EvBufferKilled
	EvPFSKilled        = obs.EvPFSKilled
	EvLevelEvict       = obs.EvLevelEvict
)

// Attribution is a conservation-checked per-phase breakdown of a run's
// virtual completion time — compute, coordination, freeze, logging, image
// transfer, quorum wait, drain, detection, rollback, replay — per rank, in
// aggregate, and along the run's critical path.  Produced on
// Report.Attribution when Options.Attribution is set; its Check method
// re-verifies the conservation invariant, WriteJSON emits the
// byte-deterministic report and WriteTable a human-readable summary.
type Attribution = span.Attribution

// Breakdown is one phase decomposition of a time interval (one rank, the
// aggregate, or the critical path) inside an Attribution.
type Breakdown = span.Breakdown

// ChromeStreamSink streams a Chrome trace_event document to a writer as
// the run progresses, holding O(ranks+servers) memory instead of the full
// event history a Collector would retain.  Call Close after the run to
// finish the JSON document.
type ChromeStreamSink = obs.ChromeStreamSink

// NewChromeStreamSink starts a streaming trace document on w; attach the
// sink through Options.Sink and Close it when the run returns.
func NewChromeStreamSink(w io.Writer) *ChromeStreamSink { return obs.NewChromeStreamSink(w) }

// NewCollector returns an empty event Collector.
func NewCollector() *Collector { return obs.NewCollector() }

// NewMetrics returns an empty metrics registry, for sharing one registry
// across several runs (aggregated studies).
func NewMetrics() *Metrics { return obs.NewMetrics() }
