package ftckpt

import "ftckpt/internal/obs"

// Observability surface.  The simulator publishes a structured event for
// every protocol action worth seeing — marker sends and receipts, channel
// freezes, logged in-transit messages, checkpoint-image transfers, wave
// commits, failures and restarts — all stamped with virtual time.  Attach
// a Sink through Options.Sink to receive the stream; a Collector gathers
// it for export as a Chrome trace_event timeline (chrome://tracing or
// https://ui.perfetto.dev), and every Report carries the run's Metrics
// registry of counters and virtual-time histograms.

// Sink receives structured observability events.
type Sink = obs.Sink

// Event is one structured observability event.
type Event = obs.Event

// EventType identifies the kind of an Event.
type EventType = obs.EventType

// Collector is a Sink that retains every event in order, for inspection
// or timeline export via its WriteChromeTrace method.
type Collector = obs.Collector

// Metrics is a registry of counters, gauges and virtual-time histograms.
type Metrics = obs.Metrics

// Event types, re-exported from the internal observability package.
const (
	EvMarkerSent       = obs.EvMarkerSent
	EvMarkerRecv       = obs.EvMarkerRecv
	EvChannelBlocked   = obs.EvChannelBlocked
	EvChannelUnblocked = obs.EvChannelUnblocked
	EvSendDelayed      = obs.EvSendDelayed
	EvRecvDelayed      = obs.EvRecvDelayed
	EvMessageLogged    = obs.EvMessageLogged
	EvLocalCkptBegin   = obs.EvLocalCkptBegin
	EvLocalCkptEnd     = obs.EvLocalCkptEnd
	EvImageStoreBegin  = obs.EvImageStoreBegin
	EvImageStoreEnd    = obs.EvImageStoreEnd
	EvLogShipBegin     = obs.EvLogShipBegin
	EvLogShipEnd       = obs.EvLogShipEnd
	EvWaveCommit       = obs.EvWaveCommit
	EvRankKilled       = obs.EvRankKilled
	EvNodeLost         = obs.EvNodeLost
	EvRestartBegin     = obs.EvRestartBegin
	EvRestartEnd       = obs.EvRestartEnd
	EvJobComplete      = obs.EvJobComplete
	EvServerKilled     = obs.EvServerKilled
	EvHeartbeatTimeout = obs.EvHeartbeatTimeout
	EvReplicaFailover  = obs.EvReplicaFailover
	EvStoreRetry       = obs.EvStoreRetry
	EvQuorumLost       = obs.EvQuorumLost
	EvMessageReplayed  = obs.EvMessageReplayed
	EvDegraded         = obs.EvDegraded
)

// NewCollector returns an empty event Collector.
func NewCollector() *Collector { return obs.NewCollector() }

// NewMetrics returns an empty metrics registry, for sharing one registry
// across several runs (aggregated studies).
func NewMetrics() *Metrics { return obs.NewMetrics() }
