package ftckpt

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// TestChromeTraceDeterministic runs the same seeded job twice with a
// Collector attached and requires the exported Chrome timeline and metrics
// dump to be byte-identical — the reproducibility contract of the
// simulator extended to its observability artifacts.
func TestChromeTraceDeterministic(t *testing.T) {
	runOnce := func() ([]byte, []byte) {
		col := NewCollector()
		o := Options{
			Workload: "jacobi",
			NP:       8,
			Protocol: "pcl",
			Interval: 40 * time.Millisecond,
			Seed:     7,
			Failures: []Failure{{At: 60 * time.Millisecond, Rank: 3}},
			Sink:     col,
		}
		rep, err := Run(o)
		if err != nil {
			t.Fatal(err)
		}
		var trace, met bytes.Buffer
		if err := col.WriteChromeTrace(&trace); err != nil {
			t.Fatal(err)
		}
		if err := rep.Metrics.WriteJSON(&met); err != nil {
			t.Fatal(err)
		}
		return trace.Bytes(), met.Bytes()
	}
	t1, m1 := runOnce()
	t2, m2 := runOnce()
	if !bytes.Equal(t1, t2) {
		t.Fatal("chrome trace differs between identical seeded runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Fatal("metrics dump differs between identical seeded runs")
	}

	// The trace must be well-formed and non-trivial: valid JSON, rank
	// tracks named, blocked-send spans present (pcl), a restart span from
	// the injected failure.
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(t1, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var blockedSpans, restartSpans int
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		switch {
		case len(ev.Name) >= 7 && ev.Name[:7] == "blocked":
			blockedSpans++
			if ev.Dur < 0 {
				t.Fatalf("negative span duration: %+v", ev)
			}
		case len(ev.Name) >= 7 && ev.Name[:7] == "restart":
			restartSpans++
		}
	}
	if blockedSpans == 0 {
		t.Fatal("no per-rank blocked-send spans in a pcl trace")
	}
	if restartSpans == 0 {
		t.Fatal("no restart span despite an injected failure")
	}
}

// TestReportMetrics checks the facade surfaces the metrics registry and
// that the core schema keys are populated.
func TestReportMetrics(t *testing.T) {
	rep, err := Run(Options{
		Workload: "jacobi", NP: 4, Protocol: "vcl",
		Interval: 40 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m == nil {
		t.Fatal("Report.Metrics nil")
	}
	if m.Counter("waves.committed") == 0 || m.Counter("markers.sent") == 0 {
		t.Fatal("wave counters empty")
	}
	if int(m.Counter("log.msgs")) != rep.LoggedMessages {
		t.Fatalf("log.msgs %d, report says %d", m.Counter("log.msgs"), rep.LoggedMessages)
	}
	if h := m.Hist("wave.cycle"); h == nil || h.Count == 0 {
		t.Fatal("wave.cycle histogram empty")
	}
}
