package ckpt

import (
	"testing"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// hierSetup builds a three-level hierarchy on a five-node network:
// node 0 computes, nodes 1-2 host the replicated servers, nodes 3-4 the
// PFS targets.
func hierSetup(k *sim.Kernel) (*Hierarchy, []*Server) {
	net := simnet.New(k, simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "c", Nodes: 5, NICBW: 100e6, Latency: 50 * time.Microsecond,
	}}})
	pool := []*Server{NewServer(net, 0, 1), NewServer(net, 1, 2)}
	g := NewGroup(net, pool, 2, 2, nil)
	spec := (&Spec{Levels: []LevelSpec{
		{Kind: LevelBuffer},
		{Kind: LevelServers, Servers: 2, Replicas: 2, WriteQuorum: 2},
		{Kind: LevelPFS, Targets: 2, Stripes: 2},
	}}).Normalize()
	return NewHierarchy(net, *spec, g, []int{3, 4}), pool
}

// TestHierarchyCommitAtBufferSpeed pins the staging contract: with a
// buffer level the commit gate fires at local-device speed, orders of
// magnitude before a network store could finish, and the drains then
// populate the lower levels on their own.
func TestHierarchyCommitAtBufferSpeed(t *testing.T) {
	k := sim.New(1)
	h, pool := hierSetup(k)
	var committedAt sim.Time
	k.Go("rank", func(p *sim.Proc) {
		h.Store(testImage(0, 1), 0, 0, func() { committedAt = k.Now() },
			func() { t.Error("store failed with every level alive") })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1MB at the default 2GB/s buffer plus 200µs setup ≈ 0.7ms; the same
	// image over the 100MB/s NIC would take ≥10ms.
	if committedAt == 0 || committedAt > 2*time.Millisecond {
		t.Fatalf("commit gate fired at %v, want local-buffer speed", committedAt)
	}
	// By quiescence the drains have copied the wave everywhere.
	if !pool[0].Has(0, 1) || !pool[1].Has(0, 1) {
		t.Fatal("drain did not reach the server replicas")
	}
	if h.pfs.readable(imgKey{0, 1}) == nil {
		t.Fatal("drain did not reach the PFS")
	}
}

// TestHierarchyRestoreFallsThroughToPFS kills the staging buffer and
// every server replica after the drains finish: the restore must fall
// through both dead levels and come back from the PFS stripes, counted
// as failovers.
func TestHierarchyRestoreFallsThroughToPFS(t *testing.T) {
	k := sim.New(1)
	h, pool := hierSetup(k)
	k.Go("rank", func(p *sim.Proc) {
		h.Store(testImage(0, 1), 0, 0, nil, func() { t.Error("store failed") })
	})
	var fetched *Image
	k.After(500*time.Millisecond, func() {
		if !h.KillBuffer(0) {
			t.Error("buffer kill refused")
		}
		pool[0].Kill()
		pool[1].Kill()
		if !h.HasCommitted(0, 1, 0) {
			t.Error("PFS copy should still serve the wave")
		}
		h.Fetch(0, 1, 0, false, func(img *Image, logs []*mpi.Packet) { fetched = img },
			func(err error) { t.Errorf("fetch failed with a live PFS copy: %v", err) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fetched == nil || fetched.Rank != 0 || fetched.Wave != 1 {
		t.Fatalf("fetched %+v", fetched)
	}
	if h.Failovers() == 0 {
		t.Error("fall-through to the PFS not counted as a failover")
	}
}

// TestHierarchyPFSStripeLoss kills one stripe target on top of the upper
// levels: the wave becomes unrecoverable and the fetch must fail.
func TestHierarchyPFSStripeLoss(t *testing.T) {
	k := sim.New(1)
	h, pool := hierSetup(k)
	k.Go("rank", func(p *sim.Proc) {
		h.Store(testImage(0, 1), 0, 0, nil, func() { t.Error("store failed") })
	})
	var failErr error
	k.After(500*time.Millisecond, func() {
		h.KillBuffer(0)
		pool[0].Kill()
		pool[1].Kill()
		if !h.KillPFSTarget(0) {
			t.Error("PFS target kill refused")
		}
		if h.HasCommitted(0, 1, 0) {
			t.Error("wave readable with a stripe target dead")
		}
		h.Fetch(0, 1, 0, false,
			func(img *Image, logs []*mpi.Packet) { t.Error("fetch succeeded with a stripe lost") },
			func(err error) { failErr = err })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if failErr == nil {
		t.Fatal("fetch did not fail")
	}
}

// TestHierarchyBufferEviction pins the deterministic oldest-first
// eviction: a capacity that holds two images drops the oldest wave when
// the third arrives, and the just-written image is never the victim.
func TestHierarchyBufferEviction(t *testing.T) {
	k := sim.New(1)
	net := simnet.New(k, simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "c", Nodes: 3, NICBW: 100e6, Latency: 50 * time.Microsecond,
	}}})
	pool := []*Server{NewServer(net, 0, 1)}
	g := NewGroup(net, pool, 1, 1, nil)
	img := testImage(0, 1)
	spec := (&Spec{Levels: []LevelSpec{
		{Kind: LevelBuffer, Capacity: 2 * img.Bytes()},
		{Kind: LevelServers, Servers: 1},
	}}).Normalize()
	h := NewHierarchy(net, *spec, g, nil)
	k.Go("rank", func(p *sim.Proc) {
		for wave := 1; wave <= 3; wave++ {
			wave := wave
			k.After(sim.Time(wave)*sim.Time(10*time.Millisecond), func() {
				h.Store(testImage(0, wave), 0, 0, nil, nil)
			})
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	buf := h.buffers[0]
	if buf == nil {
		t.Fatal("no buffer created")
	}
	if buf.images[imgKey{0, 1}] != nil {
		t.Error("oldest wave not evicted at capacity")
	}
	if buf.images[imgKey{0, 2}] == nil || buf.images[imgKey{0, 3}] == nil {
		t.Error("capacity eviction dropped the wrong waves")
	}
}
