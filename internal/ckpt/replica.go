package ckpt

import (
	"fmt"
	"sort"

	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// Group is a replicated checkpoint store over a pool of servers.  Each
// rank's images and logs go to a replica set of Replicas servers starting
// at PrimaryOf(rank) and wrapping around the pool; a store counts as
// durable once Quorum replicas acknowledge, and fetches fail over to the
// next live replica when one is dead or incomplete.  With Replicas = 1
// and Quorum = 1 the Group degenerates to the paper's single-copy model.
//
// The quorum argument: a wave only commits once Quorum image (and, for
// logging protocols, log) copies are on stable storage, so recovery needs
// any one of them.  Stores that were in flight when a replica died are
// retried with backoff (bounded by MaxRetries); if enough replicas die
// that the quorum is unreachable the wave simply never commits — the
// previous recovery line still protects the job.
type Group struct {
	servers []*Server
	net     *simnet.Network

	// Replicas is the copies kept per image/log set; Quorum is how many
	// must acknowledge before a store reports durable (1 ≤ Quorum ≤
	// Replicas).
	Replicas int
	Quorum   int
	// PrimaryOf maps a rank to its primary replica's server index.
	PrimaryOf func(rank int) int
	// MaxRetries bounds re-shipping attempts per replica after an aborted
	// store; Backoff is the delay before each retry.
	MaxRetries int
	Backoff    sim.Time

	// Failovers counts fetches that fell over to a surviving replica.
	Failovers int

	obs *obs.Hub
}

// NewGroup builds a replicated store over servers.  replicas is clamped
// to the pool size, quorum to [1, replicas].  primaryOf nil means
// rank % len(servers).
func NewGroup(net *simnet.Network, servers []*Server, replicas, quorum int, primaryOf func(int) int) *Group {
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(servers) {
		replicas = len(servers)
	}
	if quorum < 1 {
		quorum = 1
	}
	if quorum > replicas {
		quorum = replicas
	}
	if primaryOf == nil {
		n := len(servers)
		primaryOf = func(rank int) int { return rank % n }
	}
	return &Group{
		servers:   servers,
		net:       net,
		Replicas:  replicas,
		Quorum:    quorum,
		PrimaryOf: primaryOf,
	}
}

// SetObs attaches the hub failover/retry/quorum-lost events go to.
func (g *Group) SetObs(h *obs.Hub) { g.obs = h }

func (g *Group) emit(t obs.EventType, rank, wave, server int) {
	if t == obs.EvReplicaFailover {
		g.Failovers++
	}
	g.obs.Emit(obs.Event{Type: t, T: g.net.Kernel().Now(), Rank: rank, Wave: wave,
		Channel: -1, Node: -1, Server: server, Span: g.obs.NextSpan()})
}

// Servers returns the underlying pool (shared slice; do not mutate).
func (g *Group) Servers() []*Server { return g.servers }

// ReplicaSet returns the rank's replica servers, primary first.
func (g *Group) ReplicaSet(rank int) []*Server {
	out := make([]*Server, g.Replicas)
	p := g.PrimaryOf(rank)
	for i := range out {
		out[i] = g.servers[(p+i)%len(g.servers)]
	}
	return out
}

// Has reports whether any live replica holds the image for (rank, wave).
func (g *Group) Has(rank, wave int) bool {
	for _, srv := range g.ReplicaSet(rank) {
		if srv.Alive() && srv.Has(rank, wave) {
			return true
		}
	}
	return false
}

// GC garbage-collects waves older than wave on every server in the pool.
func (g *Group) GC(wave int) {
	for _, srv := range g.servers {
		srv.GC(wave)
	}
}

// GCRank garbage-collects one rank's data older than wave on its
// replica set.
func (g *Group) GCRank(rank, wave int) {
	for _, srv := range g.ReplicaSet(rank) {
		srv.GCRank(rank, wave)
	}
}

// StoreOp is one replicated store in progress.  It satisfies the same
// cancellation contract as a single flow: Cancel aborts every replica
// transfer and pending retry (copies already stored stay stored; GC
// reclaims them).
type StoreOp struct {
	g          *Group
	rank, wave int
	replicas   []*Server
	ship       func(srv *Server, onStored, onAbort func()) *simnet.Flow
	onQuorum   func()
	onFailed   func()

	flows     []*simnet.Flow // per-replica current attempt (nil when idle)
	timers    []sim.EventID  // per-replica pending retry (0 when none)
	retries   []int          // per-replica retries left
	acks      int
	failed    int
	quorumHit bool
	lost      bool
	cancelled bool
}

// Store replicates img from srcNode across the rank's replica set,
// calling onQuorum once Quorum copies are durable.  If replica deaths
// make the quorum unreachable (after bounded retries), onFailed runs
// instead — the wave will not commit, which is the graceful-degradation
// path: the job continues under its previous recovery line.
func (g *Group) Store(img *Image, srcNode int, cap simnet.Rate, onQuorum, onFailed func()) *StoreOp {
	return g.start(img.Rank, img.Wave, onQuorum, onFailed,
		func(srv *Server, onStored, onAbort func()) *simnet.Flow {
			return srv.ReceiveCappedAbort(img, srcNode, cap, onStored, onAbort)
		})
}

// StoreLogs replicates a log set (Vcl channel state for a wave, or one
// mlog pessimistic log record) with the same quorum semantics as Store.
func (g *Group) StoreLogs(rank, wave int, pkts []*mpi.Packet, srcNode int, onQuorum, onFailed func()) *StoreOp {
	return g.start(rank, wave, onQuorum, onFailed,
		func(srv *Server, onStored, onAbort func()) *simnet.Flow {
			return srv.ReceiveLogsAbort(rank, wave, pkts, srcNode, onStored, onAbort)
		})
}

func (g *Group) start(rank, wave int, onQuorum, onFailed func(), ship func(*Server, func(), func()) *simnet.Flow) *StoreOp {
	op := &StoreOp{
		g: g, rank: rank, wave: wave,
		replicas: g.ReplicaSet(rank),
		ship:     ship,
		onQuorum: onQuorum,
		onFailed: onFailed,
	}
	op.flows = make([]*simnet.Flow, len(op.replicas))
	op.timers = make([]sim.EventID, len(op.replicas))
	op.retries = make([]int, len(op.replicas))
	for i := range op.retries {
		op.retries[i] = g.MaxRetries
	}
	for i := range op.replicas {
		op.attempt(i)
	}
	return op
}

// attempt ships to replica i (current attempt).
func (op *StoreOp) attempt(i int) {
	if op.cancelled {
		return
	}
	srv := op.replicas[i]
	op.flows[i] = op.ship(srv,
		func() { // stored
			op.flows[i] = nil
			op.acks++
			if !op.quorumHit && op.acks >= op.g.Quorum {
				op.quorumHit = true
				if op.onQuorum != nil {
					op.onQuorum()
				}
			}
		},
		func() { // aborted: replica died (before or during the transfer)
			op.flows[i] = nil
			op.retry(i)
		})
}

// retry re-schedules replica i's attempt after the backoff, or marks it
// failed once retries are exhausted.
func (op *StoreOp) retry(i int) {
	if op.cancelled {
		return
	}
	if op.retries[i] <= 0 {
		op.replicaFailed()
		return
	}
	op.retries[i]--
	op.g.emit(obs.EvStoreRetry, op.rank, op.wave, op.replicas[i].Index)
	k := op.g.net.Kernel()
	op.timers[i] = k.After(op.g.Backoff, func() {
		op.timers[i] = 0
		op.attempt(i)
	})
}

func (op *StoreOp) replicaFailed() {
	op.failed++
	if !op.quorumHit && !op.lost && len(op.replicas)-op.failed < op.g.Quorum {
		op.lost = true
		op.g.emit(obs.EvQuorumLost, op.rank, op.wave, -1)
		if op.onFailed != nil {
			op.onFailed()
		}
	}
}

// Cancel aborts the store: live transfers are cancelled, pending retries
// dropped, no further callbacks run.  Used when the sender itself dies.
func (op *StoreOp) Cancel() {
	if op.cancelled {
		return
	}
	op.cancelled = true
	k := op.g.net.Kernel()
	for i := range op.replicas {
		if op.flows[i] != nil {
			op.flows[i].Cancel()
			op.flows[i] = nil
		}
		if op.timers[i] != 0 {
			k.Cancel(op.timers[i])
			op.timers[i] = 0
		}
	}
}

// FetchOp is one replicated fetch in progress (image plus, when the
// protocol needs them, logs — sourced independently, since image and log
// transfers land on replicas separately).
type FetchOp struct {
	g          *Group
	rank, wave int
	dstNode    int
	onDone     func(*Image, []*mpi.Packet)
	onFail     func(error)

	replicas  []*Server
	img       *Image
	logs      []*mpi.Packet
	union     bool // logs are a multi-replica union: sort + dedup at the end
	remaining int
	failedErr error
	cancelled bool
	flows     []*simnet.Flow
}

// Fetch recovers (rank, wave) onto dstNode from the replica set: the
// image from the first live replica holding it, the wave's channel-state
// logs (needLogs, i.e. Vcl) independently from the first live replica
// holding those.  A replica dying mid-transfer triggers failover to the
// next copy (EvReplicaFailover); when no live replica holds a needed
// part, onFail receives an error wrapping ErrNoImage naming the rank and
// wave — the caller decides between retrying (copies may still be in
// flight to live replicas) and a degraded stop.
func (g *Group) Fetch(rank, wave, dstNode int, needLogs bool, onDone func(*Image, []*mpi.Packet), onFail func(error)) *FetchOp {
	op := &FetchOp{
		g: g, rank: rank, wave: wave, dstNode: dstNode,
		onDone: onDone, onFail: onFail,
		replicas:  g.ReplicaSet(rank),
		remaining: 1,
	}
	if needLogs {
		op.remaining++
		op.fetchLogs(0, false)
	}
	op.fetchImage(0)
	return op
}

// FetchSince recovers (rank, wave) with message-logging semantics: the
// image fails over like Fetch; the reception history is the union of
// LogsSince across every live replica, deduplicated by (Src, PSeq).  The
// union is safe — only quorum-acknowledged log records must survive, and
// any message whose log died un-acknowledged is regenerated by its
// (never rolled back) sender and deduplicated by the receiver's PSeq
// filter on delivery.
func (g *Group) FetchSince(rank, wave, dstNode int, onDone func(*Image, []*mpi.Packet), onFail func(error)) *FetchOp {
	op := &FetchOp{
		g: g, rank: rank, wave: wave, dstNode: dstNode,
		onDone: onDone, onFail: onFail,
		replicas:  g.ReplicaSet(rank),
		remaining: 1,
		union:     true,
	}
	// One log transfer per live replica; deaths mid-transfer just shrink
	// the union.
	var live []*Server
	for _, srv := range op.replicas {
		if srv.Alive() {
			live = append(live, srv)
		}
	}
	op.remaining += len(live)
	for _, srv := range live {
		part := func(pkts []*mpi.Packet) {
			if op.cancelled {
				return
			}
			op.logs = append(op.logs, pkts...)
			op.partDone()
		}
		skip := func() {
			if op.cancelled {
				return
			}
			op.partDone()
		}
		if fl, err := srv.FetchLogs(rank, wave, dstNode, true, part, skip); err == nil {
			op.flows = append(op.flows, fl)
		} else {
			op.partDone()
		}
	}
	op.fetchImage(0)
	return op
}

// fetchImage tries replica i onwards for the image.
func (op *FetchOp) fetchImage(i int) {
	if op.cancelled {
		return
	}
	for ; i < len(op.replicas); i++ {
		srv := op.replicas[i]
		if !srv.Alive() || !srv.Has(op.rank, op.wave) {
			continue
		}
		next := i + 1
		fl, err := srv.FetchImage(op.rank, op.wave, op.dstNode,
			func(img *Image) {
				if op.cancelled {
					return
				}
				op.img = img
				op.partDone()
			},
			func() { // replica died mid-transfer: fail over
				if op.cancelled {
					return
				}
				op.g.emit(obs.EvReplicaFailover, op.rank, op.wave, srv.Index)
				op.fetchImage(next)
			})
		if err != nil {
			continue
		}
		if i > 0 {
			op.g.emit(obs.EvReplicaFailover, op.rank, op.wave, srv.Index)
		}
		op.flows = append(op.flows, fl)
		return
	}
	op.fail(fmt.Errorf("ckpt: no live replica holds image for rank %d wave %d: %w",
		op.rank, op.wave, ErrNoImage))
}

// fetchLogs tries replica i onwards for the committed wave's log set.
func (op *FetchOp) fetchLogs(i int, failover bool) {
	if op.cancelled {
		return
	}
	for ; i < len(op.replicas); i++ {
		srv := op.replicas[i]
		if !srv.Alive() || !srv.HasLogs(op.rank, op.wave) {
			continue
		}
		next := i + 1
		fl, err := srv.FetchLogs(op.rank, op.wave, op.dstNode, false,
			func(pkts []*mpi.Packet) {
				if op.cancelled {
					return
				}
				op.logs = pkts
				op.partDone()
			},
			func() {
				if op.cancelled {
					return
				}
				op.g.emit(obs.EvReplicaFailover, op.rank, op.wave, srv.Index)
				op.fetchLogs(next, true)
			})
		if err != nil {
			continue
		}
		if i > 0 || failover {
			op.g.emit(obs.EvReplicaFailover, op.rank, op.wave, srv.Index)
		}
		op.flows = append(op.flows, fl)
		return
	}
	op.fail(fmt.Errorf("ckpt: no live replica holds logs for rank %d wave %d: %w",
		op.rank, op.wave, ErrNoImage))
}

func (op *FetchOp) partDone() {
	op.remaining--
	if op.remaining == 0 && op.failedErr == nil {
		if op.union {
			// mlog union: order by (Src, PSeq) — per-channel FIFO is what
			// replay needs; cross-channel order is immaterial (the engine
			// matches receives by source) and sorting makes the merged
			// union deterministic regardless of which replicas
			// contributed — then drop the copies several replicas logged.
			sortLogs(op.logs)
			op.logs = DedupLogs(op.logs)
		}
		if op.onDone != nil {
			op.onDone(op.img, op.logs)
		}
	}
}

func (op *FetchOp) fail(err error) {
	if op.failedErr != nil || op.cancelled {
		return
	}
	op.failedErr = err
	for _, fl := range op.flows {
		fl.Cancel()
	}
	op.flows = nil
	if op.onFail != nil {
		op.onFail(err)
	}
}

// Cancel aborts the fetch; no further callbacks run.
func (op *FetchOp) Cancel() {
	if op.cancelled {
		return
	}
	op.cancelled = true
	for _, fl := range op.flows {
		fl.Cancel()
	}
	op.flows = nil
}

// FetchLogsOnly recovers just (rank, wave)'s committed channel-state logs
// onto dstNode, with the same per-replica failover as Fetch.  The storage
// hierarchy uses it when the image itself came from a different level (the
// node-local buffer or the PFS): logs are only ever kept on the server
// level, so a restore sourcing its image elsewhere still fetches the wave's
// logs here.
func (g *Group) FetchLogsOnly(rank, wave, dstNode int, onDone func([]*mpi.Packet), onFail func(error)) *FetchOp {
	op := &FetchOp{
		g: g, rank: rank, wave: wave, dstNode: dstNode,
		onDone: func(_ *Image, logs []*mpi.Packet) {
			if onDone != nil {
				onDone(logs)
			}
		},
		onFail:    onFail,
		replicas:  g.ReplicaSet(rank),
		remaining: 1,
	}
	op.fetchLogs(0, false)
	return op
}

// LogsSinceUnion returns the deduplicated union of LogsSince across the
// rank's live replicas, ordered by (Src, PSeq) — the synchronous
// (no-transfer) variant used when recovery already runs next to the data.
func (g *Group) LogsSinceUnion(rank, wave int) []*mpi.Packet {
	var out []*mpi.Packet
	for _, srv := range g.ReplicaSet(rank) {
		if srv.Alive() {
			out = append(out, srv.LogsSince(rank, wave)...)
		}
	}
	sortLogs(out)
	return DedupLogs(out)
}

// sortLogs orders by (Src, PSeq).  The key is total over the surviving
// records: duplicates (the same sender's packet logged on several
// replicas) compare equal, but they are identical records and DedupLogs
// keeps exactly one, so replica enumeration order cannot leak into the
// replayed stream.
func sortLogs(logs []*mpi.Packet) {
	sort.SliceStable(logs, func(i, j int) bool {
		if logs[i].Src != logs[j].Src {
			return logs[i].Src < logs[j].Src
		}
		return logs[i].PSeq < logs[j].PSeq
	})
}

// DedupLogs removes consecutive (Src, PSeq) duplicates from a sorted
// union (records the same sender logged on several replicas).
func DedupLogs(logs []*mpi.Packet) []*mpi.Packet {
	out := logs[:0]
	for i, p := range logs {
		if i > 0 && p.Src == logs[i-1].Src && p.PSeq == logs[i-1].PSeq {
			continue
		}
		out = append(out, p)
	}
	return out
}
