package ckpt

import (
	"encoding/gob"
	"testing"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// toyProgram is a minimal gob-serializable Program for image tests.
type toyProgram struct {
	Phase int
	X     []float64
	Mem   int64
}

func (t *toyProgram) Step(e *mpi.Engine) bool { t.Phase++; return t.Phase > 3 }
func (t *toyProgram) Footprint() int64        { return t.Mem }

func init() { gob.Register(&toyProgram{}) }

func testNet(k *sim.Kernel) *simnet.Network {
	return simnet.New(k, simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "c", Nodes: 4, NICBW: 100e6, Latency: 50 * time.Microsecond,
	}}})
}

func TestProgramCodecRoundTrip(t *testing.T) {
	p := &toyProgram{Phase: 2, X: []float64{1.5, -3}, Mem: 1 << 20}
	b, err := EncodeProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := DecodeProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	tp, ok := q.(*toyProgram)
	if !ok {
		t.Fatalf("decoded %T", q)
	}
	if tp.Phase != 2 || len(tp.X) != 2 || tp.X[1] != -3 || tp.Mem != 1<<20 {
		t.Fatalf("round trip lost state: %+v", tp)
	}
}

func TestImageBytesDominatedByFootprint(t *testing.T) {
	im := &Image{Rank: 1, Wave: 3, Footprint: 30 << 20, App: make([]byte, 100)}
	if im.Bytes() < 30<<20 || im.Bytes() > 31<<20 {
		t.Fatalf("Bytes() = %d", im.Bytes())
	}
}

func TestServerStoreFetch(t *testing.T) {
	k := sim.New(1)
	net := testNet(k)
	srv := NewServer(net, 0, 3)
	app, _ := EncodeProgram(&toyProgram{Phase: 7, Mem: 1 << 20})
	img := &Image{Rank: 2, Wave: 1, App: app, Footprint: 1 << 20}

	var storedAt sim.Time
	var fetched *Image
	k.Go("proc", func(p *sim.Proc) {
		srv.Receive(img, 0, func() {
			storedAt = k.Now()
			if !srv.Has(2, 1) {
				t.Error("image not stored at onStored time")
			}
			srv.Fetch(2, 1, 1, func(im *Image, logs []*mpi.Packet) {
				fetched = im
				if len(logs) != 0 {
					t.Errorf("unexpected logs: %d", len(logs))
				}
			})
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 1MB at 100MB/s ≈ 10.5ms.
	if storedAt < 10*time.Millisecond || storedAt > 12*time.Millisecond {
		t.Fatalf("stored at %v", storedAt)
	}
	if fetched == nil || fetched.Rank != 2 || fetched.Wave != 1 {
		t.Fatalf("fetched %+v", fetched)
	}
	p, err := DecodeProgram(fetched.App)
	if err != nil {
		t.Fatal(err)
	}
	if p.(*toyProgram).Phase != 7 {
		t.Fatal("fetched image has wrong program state")
	}
}

func TestServerImageIsolation(t *testing.T) {
	k := sim.New(1)
	net := testNet(k)
	srv := NewServer(net, 0, 1)
	img := &Image{Rank: 0, Wave: 1, App: []byte{1, 2, 3}, Footprint: 10}
	srv.Receive(img, 0, nil)
	img.App[0] = 99 // sender mutates its buffer mid-transfer
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	stored, err := srv.Image(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := stored.App[0]; got != 1 {
		t.Fatalf("server shares sender memory: %d", got)
	}
}

func TestServerLogsAccumulate(t *testing.T) {
	k := sim.New(1)
	net := testNet(k)
	srv := NewServer(net, 0, 1)
	srv.Receive(&Image{Rank: 0, Wave: 2, Footprint: 100}, 0, nil)
	srv.ReceiveLogs(0, 2, []*mpi.Packet{
		{Src: 1, Dst: 0, Kind: mpi.KindPayload, Tag: 5, Data: []byte("a")},
	}, 0, nil)
	srv.ReceiveLogs(0, 2, []*mpi.Packet{
		{Src: 2, Dst: 0, Kind: mpi.KindPayload, Tag: 5, Data: []byte("b")},
	}, 0, nil)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	logs := srv.Logs(0, 2)
	if len(logs) != 2 || string(logs[0].Data) != "a" || string(logs[1].Data) != "b" {
		t.Fatalf("logs %v", logs)
	}
}

func TestServerGC(t *testing.T) {
	k := sim.New(1)
	net := testNet(k)
	srv := NewServer(net, 0, 1)
	for wave := 1; wave <= 3; wave++ {
		srv.Receive(&Image{Rank: 0, Wave: wave, Footprint: 10}, 0, nil)
		srv.ReceiveLogs(0, wave, []*mpi.Packet{{Kind: mpi.KindPayload}}, 0, nil)
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	srv.GC(3)
	if srv.Has(0, 1) || srv.Has(0, 2) {
		t.Fatal("GC kept superseded waves")
	}
	if !srv.Has(0, 3) {
		t.Fatal("GC dropped the committed wave")
	}
	if len(srv.Logs(0, 2)) != 0 || len(srv.Logs(0, 3)) != 1 {
		t.Fatal("GC mishandled logs")
	}
}

func TestReceiveCancelled(t *testing.T) {
	k := sim.New(1)
	net := testNet(k)
	srv := NewServer(net, 0, 1)
	f := srv.Receive(&Image{Rank: 0, Wave: 1, Footprint: 100 << 20}, 0, func() {
		t.Error("cancelled transfer stored")
	})
	k.After(time.Millisecond, f.Cancel)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Has(0, 1) {
		t.Fatal("image stored despite cancel")
	}
}

func TestTransfersCompeteForServerNIC(t *testing.T) {
	k := sim.New(1)
	net := testNet(k)
	srv := NewServer(net, 0, 3)
	var t1, t2 sim.Time
	srv.Receive(&Image{Rank: 0, Wave: 1, Footprint: 50e6}, 0, func() { t1 = k.Now() })
	srv.Receive(&Image{Rank: 1, Wave: 1, Footprint: 50e6}, 1, func() { t2 = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two 50MB images into one 100MB/s rx NIC: ~1s each, not ~0.5s.
	if t1 < 900*time.Millisecond || t2 < 900*time.Millisecond {
		t.Fatalf("server NIC not shared: %v %v", t1, t2)
	}
}
