package ckpt

import (
	"errors"
	"fmt"
	"sort"

	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/simnet"
)

// Sentinel errors for fetch failures.  Callers (the replica Group, the
// process manager) match them with errors.Is to decide between failover
// and degraded stop.
var (
	// ErrServerDown: the checkpoint server was killed; its stored images
	// and logs are lost.
	ErrServerDown = errors.New("ckpt: server is down")
	// ErrNoImage: the server holds no image for the requested (rank, wave).
	ErrNoImage = errors.New("ckpt: no stored image")
)

// Server is one checkpoint server: it stores the local checkpoints of the
// compute processes assigned to it, receiving each image as a pipelined
// network flow (the paper's data connection) and, for Vcl, each channel-
// state log as a separate transfer (the message connection).  Servers are
// event-driven objects placed on a node of the simulated platform.
type Server struct {
	Index int
	Node  int
	net   *simnet.Network

	images map[imgKey]*Image
	logs   map[imgKey][]*mpi.Packet

	// obs receives image-store and log-ship begin/end events (nil-safe).
	obs *obs.Hub

	// dead is set by Kill: the server stops serving and its data is gone.
	dead bool
	// inflight tracks transfers in progress so Kill can cancel them and
	// notify their owners, in start order (deterministic).
	inflight []*transfer

	// BytesReceived and ImagesStored accumulate statistics.
	BytesReceived int64
	ImagesStored  int
}

// transfer is one in-progress flow with its abort notification.
type transfer struct {
	flow    *simnet.Flow
	onAbort func()
}

type imgKey struct{ rank, wave int }

// NewServer places checkpoint server index on node of net.
func NewServer(net *simnet.Network, index, node int) *Server {
	return &Server{
		Index:  index,
		Node:   node,
		net:    net,
		images: make(map[imgKey]*Image),
		logs:   make(map[imgKey][]*mpi.Packet),
	}
}

// Receive starts the transfer of img from srcNode to the server.  The
// returned flow may be cancelled if the sender dies.  onStored runs when
// the image is fully stored.  The server keeps its own copy, so later
// mutation of img by the sender is invisible.
func (s *Server) Receive(img *Image, srcNode int, onStored func()) *simnet.Flow {
	return s.ReceiveCapped(img, srcNode, 0, onStored)
}

// SetObs attaches the observability hub the server's transfer events go
// to (nil disables).
func (s *Server) SetObs(h *obs.Hub) { s.obs = h }

func (s *Server) emit(t obs.EventType, rank, wave int, bytes int64, span uint64) {
	s.obs.Emit(obs.Event{Type: t, T: s.net.Kernel().Now(), Rank: rank, Wave: wave,
		Channel: -1, Node: -1, Server: s.Index, Bytes: bytes, Span: span})
}

// Alive reports whether the server is serving (not killed).
func (s *Server) Alive() bool { return !s.dead }

// Kill fails the server: every stored image and log is lost, every
// transfer in progress is cancelled (its onAbort, if any, runs so the
// other end can fail over), and future stores and fetches are refused.
// Abort callbacks run in transfer-start order, deterministically.
func (s *Server) Kill() {
	if s.dead {
		return
	}
	s.dead = true
	s.images = make(map[imgKey]*Image)
	s.logs = make(map[imgKey][]*mpi.Packet)
	pending := s.inflight
	s.inflight = nil
	for _, tr := range pending {
		tr.flow.Cancel()
		if tr.onAbort != nil {
			tr.onAbort()
		}
	}
}

// track registers an in-progress flow for cancellation on Kill.  The
// returned func unregisters it; completion callbacks must call it first.
func (s *Server) track(tr *transfer) func() {
	s.inflight = append(s.inflight, tr)
	return func() {
		for i, t := range s.inflight {
			if t == tr {
				s.inflight = append(s.inflight[:i], s.inflight[i+1:]...)
				break
			}
		}
	}
}

// ReceiveCapped is Receive with a sender-side rate ceiling (0 = none),
// modelling transfers paced by a single-threaded daemon.
func (s *Server) ReceiveCapped(img *Image, srcNode int, cap simnet.Rate, onStored func()) *simnet.Flow {
	return s.ReceiveCappedAbort(img, srcNode, cap, onStored, nil)
}

// ReceiveCappedAbort is ReceiveCapped with an abort notification: if the
// server dies while the transfer is in flight, onAbort runs instead of
// onStored (the replica Group retries elsewhere).  A dead server refuses
// the transfer outright: nil flow, immediate onAbort.
func (s *Server) ReceiveCappedAbort(img *Image, srcNode int, cap simnet.Rate, onStored, onAbort func()) *simnet.Flow {
	if s.dead {
		if onAbort != nil {
			onAbort()
		}
		return nil
	}
	stored := img.Clone()
	// One span per replica transfer, closed by the matching end event (or
	// left open if the server dies mid-flight).
	sp := s.obs.NextSpan()
	s.emit(obs.EvImageStoreBegin, stored.Rank, stored.Wave, stored.StoredBytes(), sp)
	tr := &transfer{onAbort: onAbort}
	done := s.track(tr)
	tr.flow = s.net.StartFlowCapped(srcNode, s.Node, img.StoredBytes(), cap, func() {
		done()
		s.images[imgKey{stored.Rank, stored.Wave}] = stored
		s.BytesReceived += stored.StoredBytes()
		s.ImagesStored++
		s.emit(obs.EvImageStoreEnd, stored.Rank, stored.Wave, stored.StoredBytes(), sp)
		if onStored != nil {
			onStored()
		}
	})
	return tr.flow
}

// ReceiveLogs transfers a set of logged in-transit messages (Vcl channel
// state) for (rank, wave).  Logs from several channels may arrive in
// separate calls; they accumulate in arrival order, which preserves
// per-channel FIFO since each channel's log is shipped in one piece.
func (s *Server) ReceiveLogs(rank, wave int, pkts []*mpi.Packet, srcNode int, onStored func()) *simnet.Flow {
	return s.ReceiveLogsAbort(rank, wave, pkts, srcNode, onStored, nil)
}

// ReceiveLogsAbort is ReceiveLogs with the same abort semantics as
// ReceiveCappedAbort.
func (s *Server) ReceiveLogsAbort(rank, wave int, pkts []*mpi.Packet, srcNode int, onStored, onAbort func()) *simnet.Flow {
	if s.dead {
		if onAbort != nil {
			onAbort()
		}
		return nil
	}
	cp := make([]*mpi.Packet, len(pkts))
	var bytes int64
	for i, p := range pkts {
		cp[i] = p.Clone()
		bytes += p.WireSize()
	}
	sp := s.obs.NextSpan()
	s.emit(obs.EvLogShipBegin, rank, wave, bytes, sp)
	tr := &transfer{onAbort: onAbort}
	done := s.track(tr)
	tr.flow = s.net.StartFlow(srcNode, s.Node, bytes, func() {
		done()
		k := imgKey{rank, wave}
		s.logs[k] = append(s.logs[k], cp...)
		s.BytesReceived += bytes
		s.emit(obs.EvLogShipEnd, rank, wave, bytes, sp)
		if onStored != nil {
			onStored()
		}
	})
	return tr.flow
}

// Image returns the stored image for (rank, wave).  It errors instead of
// returning nil: ErrServerDown after a kill, ErrNoImage when the transfer
// never completed or the wave was garbage-collected.
func (s *Server) Image(rank, wave int) (*Image, error) {
	if s.dead {
		return nil, fmt.Errorf("ckpt: server %d, image rank %d wave %d: %w",
			s.Index, rank, wave, ErrServerDown)
	}
	img, ok := s.images[imgKey{rank, wave}]
	if !ok {
		return nil, fmt.Errorf("ckpt: server %d, image rank %d wave %d: %w",
			s.Index, rank, wave, ErrNoImage)
	}
	return img, nil
}

// Logs returns the stored channel-state messages for (rank, wave).
func (s *Server) Logs(rank, wave int) []*mpi.Packet { return s.logs[imgKey{rank, wave}] }

// Has reports whether a complete image for (rank, wave) is stored.
func (s *Server) Has(rank, wave int) bool {
	_, ok := s.images[imgKey{rank, wave}]
	return ok
}

// HasLogs reports whether a log set for (rank, wave) is stored.  Key
// presence is meaningful on its own: Vcl ships a wave's whole channel
// state in one transfer (possibly empty), so the key existing means the
// log set is complete, not partial.
func (s *Server) HasLogs(rank, wave int) bool {
	_, ok := s.logs[imgKey{rank, wave}]
	return ok
}

// GC discards every image and log from waves strictly older than wave —
// the paper's "simple garbage collection reduces the size needed to store
// the checkpoints" once a wave is fully committed.
func (s *Server) GC(wave int) {
	for k := range s.images {
		if k.wave < wave {
			delete(s.images, k)
		}
	}
	for k := range s.logs {
		if k.wave < wave {
			delete(s.logs, k)
		}
	}
}

// GCRank discards one rank's images and logs older than wave —
// uncoordinated checkpointing garbage-collects per process, since each
// rank's recovery line advances independently.
func (s *Server) GCRank(rank, wave int) {
	for k := range s.images {
		if k.rank == rank && k.wave < wave {
			delete(s.images, k)
		}
	}
	for k := range s.logs {
		if k.rank == rank && k.wave < wave {
			delete(s.logs, k)
		}
	}
}

// LogsSince returns every stored log for the rank from waves >= wave, in
// chronological order (wave tags only ever increase, so ascending-wave
// concatenation preserves arrival order).  This is the reception history a
// message-logging recovery replays: messages delivered after snapshot
// `wave`, including any logged under a later, never-committed checkpoint.
func (s *Server) LogsSince(rank, wave int) []*mpi.Packet {
	var tags []int
	for k := range s.logs {
		if k.rank == rank && k.wave >= wave {
			tags = append(tags, k.wave)
		}
	}
	sort.Ints(tags)
	var out []*mpi.Packet
	for _, w := range tags {
		out = append(out, s.logs[imgKey{rank, w}]...)
	}
	return out
}

// Fetch starts the transfer of the stored image (and logs) for
// (rank, wave) from the server to dstNode, calling onDone with them when
// the transfer completes.  Coordinated recovery replays exactly the
// committed wave's channel state (later, aborted waves' logs describe
// messages the rolled-back senders will regenerate); allLogsSince selects
// the message-logging semantics instead, where peers do not roll back and
// the whole reception history since the image is replayed.  A missing
// image or a dead server is an error (ErrNoImage / ErrServerDown), never
// a panic: with replication the caller fails over, without it the job
// stops in degraded mode.
func (s *Server) Fetch(rank, wave, dstNode int, onDone func(*Image, []*mpi.Packet)) (*simnet.Flow, error) {
	return s.fetch(rank, wave, dstNode, false, onDone)
}

// FetchSince is Fetch with the message-logging log semantics.
func (s *Server) FetchSince(rank, wave, dstNode int, onDone func(*Image, []*mpi.Packet)) (*simnet.Flow, error) {
	return s.fetch(rank, wave, dstNode, true, onDone)
}

func (s *Server) fetch(rank, wave, dstNode int, allSince bool, onDone func(*Image, []*mpi.Packet)) (*simnet.Flow, error) {
	img, err := s.Image(rank, wave)
	if err != nil {
		return nil, err
	}
	var logs []*mpi.Packet
	if allSince {
		logs = s.LogsSince(rank, wave)
	} else {
		logs = s.Logs(rank, wave)
	}
	size := img.RestoreBytes()
	for _, p := range logs {
		size += p.WireSize()
	}
	tr := &transfer{}
	done := s.track(tr)
	tr.flow = s.net.StartFlow(s.Node, dstNode, size, func() {
		done()
		onDone(img.Clone(), logs)
	})
	return tr.flow, nil
}

// FetchImage transfers just the stored image for (rank, wave) to
// dstNode.  onAbort runs if the server dies mid-transfer, so a replica
// Group can fail over to the next copy.
func (s *Server) FetchImage(rank, wave, dstNode int, onDone func(*Image), onAbort func()) (*simnet.Flow, error) {
	img, err := s.Image(rank, wave)
	if err != nil {
		return nil, err
	}
	tr := &transfer{onAbort: onAbort}
	done := s.track(tr)
	tr.flow = s.net.StartFlow(s.Node, dstNode, img.RestoreBytes(), func() {
		done()
		onDone(img.Clone())
	})
	return tr.flow, nil
}

// FetchLogs transfers the stored logs for (rank, wave) — the committed
// wave's channel state (allSince false) or the whole reception history
// from the wave on (allSince true) — to dstNode.  The server must be
// alive; a replica holding the image but not the logs is possible (the
// two are separate transfers), which is why the Group picks image and
// log sources independently.
func (s *Server) FetchLogs(rank, wave, dstNode int, allSince bool, onDone func([]*mpi.Packet), onAbort func()) (*simnet.Flow, error) {
	if s.dead {
		return nil, fmt.Errorf("ckpt: server %d, logs rank %d wave %d: %w",
			s.Index, rank, wave, ErrServerDown)
	}
	var logs []*mpi.Packet
	if allSince {
		logs = s.LogsSince(rank, wave)
	} else {
		logs = s.Logs(rank, wave)
	}
	var size int64
	for _, p := range logs {
		size += p.WireSize()
	}
	tr := &transfer{onAbort: onAbort}
	done := s.track(tr)
	tr.flow = s.net.StartFlow(s.Node, dstNode, size, func() {
		done()
		onDone(logs)
	})
	return tr.flow, nil
}
