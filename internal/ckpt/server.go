package ckpt

import (
	"fmt"
	"sort"

	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/simnet"
)

// Server is one checkpoint server: it stores the local checkpoints of the
// compute processes assigned to it, receiving each image as a pipelined
// network flow (the paper's data connection) and, for Vcl, each channel-
// state log as a separate transfer (the message connection).  Servers are
// event-driven objects placed on a node of the simulated platform.
type Server struct {
	Index int
	Node  int
	net   *simnet.Network

	images map[imgKey]*Image
	logs   map[imgKey][]*mpi.Packet

	// obs receives image-store and log-ship begin/end events (nil-safe).
	obs *obs.Hub

	// BytesReceived and ImagesStored accumulate statistics.
	BytesReceived int64
	ImagesStored  int
}

type imgKey struct{ rank, wave int }

// NewServer places checkpoint server index on node of net.
func NewServer(net *simnet.Network, index, node int) *Server {
	return &Server{
		Index:  index,
		Node:   node,
		net:    net,
		images: make(map[imgKey]*Image),
		logs:   make(map[imgKey][]*mpi.Packet),
	}
}

// Receive starts the transfer of img from srcNode to the server.  The
// returned flow may be cancelled if the sender dies.  onStored runs when
// the image is fully stored.  The server keeps its own copy, so later
// mutation of img by the sender is invisible.
func (s *Server) Receive(img *Image, srcNode int, onStored func()) *simnet.Flow {
	return s.ReceiveCapped(img, srcNode, 0, onStored)
}

// SetObs attaches the observability hub the server's transfer events go
// to (nil disables).
func (s *Server) SetObs(h *obs.Hub) { s.obs = h }

func (s *Server) emit(t obs.EventType, rank, wave int, bytes int64) {
	s.obs.Emit(obs.Event{Type: t, T: s.net.Kernel().Now(), Rank: rank, Wave: wave,
		Channel: -1, Node: -1, Server: s.Index, Bytes: bytes})
}

// ReceiveCapped is Receive with a sender-side rate ceiling (0 = none),
// modelling transfers paced by a single-threaded daemon.
func (s *Server) ReceiveCapped(img *Image, srcNode int, cap simnet.Rate, onStored func()) *simnet.Flow {
	stored := img.Clone()
	s.emit(obs.EvImageStoreBegin, stored.Rank, stored.Wave, stored.Bytes())
	return s.net.StartFlowCapped(srcNode, s.Node, img.Bytes(), cap, func() {
		s.images[imgKey{stored.Rank, stored.Wave}] = stored
		s.BytesReceived += stored.Bytes()
		s.ImagesStored++
		s.emit(obs.EvImageStoreEnd, stored.Rank, stored.Wave, stored.Bytes())
		if onStored != nil {
			onStored()
		}
	})
}

// ReceiveLogs transfers a set of logged in-transit messages (Vcl channel
// state) for (rank, wave).  Logs from several channels may arrive in
// separate calls; they accumulate in arrival order, which preserves
// per-channel FIFO since each channel's log is shipped in one piece.
func (s *Server) ReceiveLogs(rank, wave int, pkts []*mpi.Packet, srcNode int, onStored func()) *simnet.Flow {
	cp := make([]*mpi.Packet, len(pkts))
	var bytes int64
	for i, p := range pkts {
		cp[i] = p.Clone()
		bytes += p.WireSize()
	}
	s.emit(obs.EvLogShipBegin, rank, wave, bytes)
	return s.net.StartFlow(srcNode, s.Node, bytes, func() {
		k := imgKey{rank, wave}
		s.logs[k] = append(s.logs[k], cp...)
		s.BytesReceived += bytes
		s.emit(obs.EvLogShipEnd, rank, wave, bytes)
		if onStored != nil {
			onStored()
		}
	})
}

// Image returns the stored image for (rank, wave), or nil.
func (s *Server) Image(rank, wave int) *Image { return s.images[imgKey{rank, wave}] }

// Logs returns the stored channel-state messages for (rank, wave).
func (s *Server) Logs(rank, wave int) []*mpi.Packet { return s.logs[imgKey{rank, wave}] }

// Has reports whether a complete image for (rank, wave) is stored.
func (s *Server) Has(rank, wave int) bool {
	_, ok := s.images[imgKey{rank, wave}]
	return ok
}

// GC discards every image and log from waves strictly older than wave —
// the paper's "simple garbage collection reduces the size needed to store
// the checkpoints" once a wave is fully committed.
func (s *Server) GC(wave int) {
	for k := range s.images {
		if k.wave < wave {
			delete(s.images, k)
		}
	}
	for k := range s.logs {
		if k.wave < wave {
			delete(s.logs, k)
		}
	}
}

// GCRank discards one rank's images and logs older than wave —
// uncoordinated checkpointing garbage-collects per process, since each
// rank's recovery line advances independently.
func (s *Server) GCRank(rank, wave int) {
	for k := range s.images {
		if k.rank == rank && k.wave < wave {
			delete(s.images, k)
		}
	}
	for k := range s.logs {
		if k.rank == rank && k.wave < wave {
			delete(s.logs, k)
		}
	}
}

// LogsSince returns every stored log for the rank from waves >= wave, in
// chronological order (wave tags only ever increase, so ascending-wave
// concatenation preserves arrival order).  This is the reception history a
// message-logging recovery replays: messages delivered after snapshot
// `wave`, including any logged under a later, never-committed checkpoint.
func (s *Server) LogsSince(rank, wave int) []*mpi.Packet {
	var tags []int
	for k := range s.logs {
		if k.rank == rank && k.wave >= wave {
			tags = append(tags, k.wave)
		}
	}
	sort.Ints(tags)
	var out []*mpi.Packet
	for _, w := range tags {
		out = append(out, s.logs[imgKey{rank, w}]...)
	}
	return out
}

// Fetch starts the transfer of the stored image (and logs) for
// (rank, wave) from the server to dstNode, calling onDone with them when
// the transfer completes.  Coordinated recovery replays exactly the
// committed wave's channel state (later, aborted waves' logs describe
// messages the rolled-back senders will regenerate); allLogsSince selects
// the message-logging semantics instead, where peers do not roll back and
// the whole reception history since the image is replayed.  Fetching a
// missing image panics: a committed wave always has a full image set
// (tested invariant).
func (s *Server) Fetch(rank, wave, dstNode int, onDone func(*Image, []*mpi.Packet)) *simnet.Flow {
	return s.fetch(rank, wave, dstNode, false, onDone)
}

// FetchSince is Fetch with the message-logging log semantics.
func (s *Server) FetchSince(rank, wave, dstNode int, onDone func(*Image, []*mpi.Packet)) *simnet.Flow {
	return s.fetch(rank, wave, dstNode, true, onDone)
}

func (s *Server) fetch(rank, wave, dstNode int, allSince bool, onDone func(*Image, []*mpi.Packet)) *simnet.Flow {
	img := s.Image(rank, wave)
	if img == nil {
		panic(fmt.Sprintf("ckpt: server %d has no image for rank %d wave %d", s.Index, rank, wave))
	}
	var logs []*mpi.Packet
	if allSince {
		logs = s.LogsSince(rank, wave)
	} else {
		logs = s.Logs(rank, wave)
	}
	size := img.Bytes()
	for _, p := range logs {
		size += p.WireSize()
	}
	return s.net.StartFlow(s.Node, dstNode, size, func() {
		onDone(img.Clone(), logs)
	})
}
