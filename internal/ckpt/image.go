// Package ckpt provides process checkpoint images and checkpoint servers.
//
// It is the analogue of the paper's unified checkpointing mechanism (one
// API over Condor, libckpt and BLCR) plus the checkpoint-server component
// shared by MPICH-Vcl and MPICH2-Pcl: servers collect local checkpoints,
// the image transfer is pipelined over the network while computation
// continues (the paper's fork-then-send), and a completed wave's images
// supersede older ones.
//
// A system-level checkpoint saves the whole process memory, so image size
// is dominated by the application's resident set: Image.Bytes() charges
// the Program's declared Footprint plus the serialized engine/protocol
// state actually needed to restore.
package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ftckpt/internal/mpi"
)

// Image is one process's local checkpoint for one wave.
type Image struct {
	Rank int
	Wave int
	// App is the gob-encoded Program.
	App []byte
	// Engine is the communication-engine state (unconsumed messages,
	// in-flight collective progress).
	Engine *mpi.EngineImage
	// Device is protocol-private state (e.g. Pcl's delayed send queue).
	Device []byte
	// Footprint is the modelled resident memory of the process.
	Footprint int64
	// Done records that the program had already completed when the image
	// was taken (the restarted process only finalizes).
	Done bool
	// Delta marks an incremental image: only the regions dirtied since the
	// full image of wave Base were captured.  The image still carries the
	// complete restorable state (App/Engine/Device are always full); Delta,
	// Stored and Restore only reshape the modelled byte costs.
	Delta bool
	// Base is the wave of the full image this delta chains off (Delta only).
	Base int
	// Stored overrides the modelled bytes shipped and kept per copy when
	// > 0: the dirty-region payload of a delta, and/or the compressed
	// size.  0 means Bytes() (the legacy full-image cost).
	Stored int64
	// Restore overrides the modelled bytes read back at recovery when > 0:
	// a delta restore reads its full base plus the delta chain.  0 means
	// Bytes().
	Restore int64
}

// Bytes returns the modelled size of the image on the wire and on the
// server: the process footprint plus live engine/device state.
func (im *Image) Bytes() int64 {
	n := im.Footprint + int64(len(im.App)) + int64(len(im.Device)) + 256
	if im.Engine != nil {
		n += im.Engine.StateBytes()
	}
	return n
}

// StoredBytes returns the modelled bytes shipped to and kept on each copy
// of the image: the incremental/compressed payload when the hierarchy's
// image planner set one, the full Bytes() otherwise.
func (im *Image) StoredBytes() int64 {
	if im.Stored > 0 {
		return im.Stored
	}
	return im.Bytes()
}

// RestoreBytes returns the modelled bytes a recovery fetch reads back: a
// delta chain's base-plus-deltas cost when set, the full Bytes() otherwise.
func (im *Image) RestoreBytes() int64 {
	if im.Restore > 0 {
		return im.Restore
	}
	return im.Bytes()
}

// EncodeProgram serializes a Program for an image.  The concrete type must
// be gob-registered.
func EncodeProgram(p mpi.Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, fmt.Errorf("ckpt: encoding program: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeProgram reverses EncodeProgram.
func DecodeProgram(b []byte) (mpi.Program, error) {
	var p mpi.Program
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("ckpt: decoding program: %w", err)
	}
	return p, nil
}

// Clone returns a deep copy of the image (servers keep their own copy, as
// a real server holds the bytes it received).
func (im *Image) Clone() *Image {
	c := *im
	c.App = append([]byte(nil), im.App...)
	c.Device = append([]byte(nil), im.Device...)
	if im.Engine != nil {
		c.Engine = im.Engine.Clone()
	}
	return &c
}
