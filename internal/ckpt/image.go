// Package ckpt provides process checkpoint images and checkpoint servers.
//
// It is the analogue of the paper's unified checkpointing mechanism (one
// API over Condor, libckpt and BLCR) plus the checkpoint-server component
// shared by MPICH-Vcl and MPICH2-Pcl: servers collect local checkpoints,
// the image transfer is pipelined over the network while computation
// continues (the paper's fork-then-send), and a completed wave's images
// supersede older ones.
//
// A system-level checkpoint saves the whole process memory, so image size
// is dominated by the application's resident set: Image.Bytes() charges
// the Program's declared Footprint plus the serialized engine/protocol
// state actually needed to restore.
package ckpt

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ftckpt/internal/mpi"
)

// Image is one process's local checkpoint for one wave.
type Image struct {
	Rank int
	Wave int
	// App is the gob-encoded Program.
	App []byte
	// Engine is the communication-engine state (unconsumed messages,
	// in-flight collective progress).
	Engine *mpi.EngineImage
	// Device is protocol-private state (e.g. Pcl's delayed send queue).
	Device []byte
	// Footprint is the modelled resident memory of the process.
	Footprint int64
	// Done records that the program had already completed when the image
	// was taken (the restarted process only finalizes).
	Done bool
}

// Bytes returns the modelled size of the image on the wire and on the
// server: the process footprint plus live engine/device state.
func (im *Image) Bytes() int64 {
	n := im.Footprint + int64(len(im.App)) + int64(len(im.Device)) + 256
	if im.Engine != nil {
		n += im.Engine.StateBytes()
	}
	return n
}

// EncodeProgram serializes a Program for an image.  The concrete type must
// be gob-registered.
func EncodeProgram(p mpi.Program) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, fmt.Errorf("ckpt: encoding program: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeProgram reverses EncodeProgram.
func DecodeProgram(b []byte) (mpi.Program, error) {
	var p mpi.Program
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&p); err != nil {
		return nil, fmt.Errorf("ckpt: decoding program: %w", err)
	}
	return p, nil
}

// Clone returns a deep copy of the image (servers keep their own copy, as
// a real server holds the bytes it received).
func (im *Image) Clone() *Image {
	c := *im
	c.App = append([]byte(nil), im.App...)
	c.Device = append([]byte(nil), im.Device...)
	if im.Engine != nil {
		c.Engine = im.Engine.Clone()
	}
	return &c
}
