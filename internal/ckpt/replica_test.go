package ckpt

import (
	"errors"
	"testing"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

func testGroup(k *sim.Kernel, servers, replicas, quorum int) (*Group, []*Server) {
	net := simnet.New(k, simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "c", Nodes: servers + 2, NICBW: 100e6, Latency: 50 * time.Microsecond,
	}}})
	pool := make([]*Server, servers)
	for i := range pool {
		pool[i] = NewServer(net, i, i+2)
	}
	g := NewGroup(net, pool, replicas, quorum, nil)
	return g, pool
}

func testImage(rank, wave int) *Image {
	app, _ := EncodeProgram(&toyProgram{Phase: 1, Mem: 1 << 20})
	return &Image{Rank: rank, Wave: wave, App: app, Footprint: 1 << 20}
}

func TestGroupStoreQuorum(t *testing.T) {
	k := sim.New(1)
	g, pool := testGroup(k, 3, 2, 1)
	var quorumAt sim.Time
	k.Go("w", func(p *sim.Proc) {
		g.Store(testImage(0, 1), 0, 0, func() { quorumAt = k.Now() }, func() {
			t.Error("quorum reported lost with every server alive")
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if quorumAt == 0 {
		t.Fatal("quorum never reached")
	}
	// Replicas 2 with primary rank%3=0: copies land on servers 0 and 1.
	if !pool[0].Has(0, 1) || !pool[1].Has(0, 1) {
		t.Fatal("replica set incomplete after run")
	}
	if pool[2].Has(0, 1) {
		t.Fatal("image leaked past the replica set")
	}
}

func TestGroupFetchFailover(t *testing.T) {
	k := sim.New(1)
	g, pool := testGroup(k, 2, 2, 2)
	var fetched *Image
	k.Go("w", func(p *sim.Proc) {
		g.Store(testImage(0, 1), 0, 0, func() {
			pool[0].Kill() // primary dies after the wave is durable
			g.Fetch(0, 1, 0, false, func(img *Image, logs []*mpi.Packet) {
				fetched = img
			}, func(err error) {
				t.Errorf("fetch failed despite a live replica: %v", err)
			})
		}, nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fetched == nil || fetched.Rank != 0 || fetched.Wave != 1 {
		t.Fatalf("fetched %+v", fetched)
	}
	if g.Failovers == 0 {
		t.Fatal("failover not counted")
	}
}

func TestGroupFetchAllReplicasDead(t *testing.T) {
	k := sim.New(1)
	g, pool := testGroup(k, 2, 2, 2)
	var failErr error
	k.Go("w", func(p *sim.Proc) {
		g.Store(testImage(0, 1), 0, 0, func() {
			pool[0].Kill()
			pool[1].Kill()
			g.Fetch(0, 1, 0, false, func(img *Image, logs []*mpi.Packet) {
				t.Error("fetch succeeded with every replica dead")
			}, func(err error) { failErr = err })
		}, nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !errors.Is(failErr, ErrNoImage) {
		t.Fatalf("want ErrNoImage, got %v", failErr)
	}
}

func TestGroupKillMidTransferAborts(t *testing.T) {
	// A server killed while a store is in flight cancels the transfer;
	// with no retries left the quorum is immediately lost.
	k := sim.New(1)
	g, pool := testGroup(k, 1, 1, 1)
	lost := false
	k.Go("w", func(p *sim.Proc) {
		g.Store(testImage(0, 1), 0, 0, func() {
			t.Error("store acknowledged on a killed server")
		}, func() { lost = true })
	})
	k.After(time.Millisecond, func() { pool[0].Kill() }) // 1MB at 100MB/s ≈ 10ms
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !lost {
		t.Fatal("quorum loss not reported")
	}
	if pool[0].Has(0, 1) {
		t.Fatal("killed server retained the partial image")
	}
}

func TestGroupStoreRetryAfterBackoff(t *testing.T) {
	// Retries re-ship to the replica; against a permanently dead server
	// they burn out and the quorum is lost — but each attempt is counted.
	k := sim.New(1)
	g, pool := testGroup(k, 1, 1, 1)
	g.MaxRetries = 2
	g.Backoff = 5 * time.Millisecond
	lost := false
	var lostAt sim.Time
	k.Go("w", func(p *sim.Proc) {
		pool[0].Kill()
		g.Store(testImage(0, 1), 0, 0, nil, func() {
			lost = true
			lostAt = k.Now()
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !lost {
		t.Fatal("quorum loss not reported")
	}
	if lostAt < 10*time.Millisecond {
		t.Fatalf("quorum lost at %v, want after two 5ms backoffs", lostAt)
	}
}

func TestGroupLogsSinceUnion(t *testing.T) {
	// Each replica holds an overlapping slice of the reception history;
	// the union deduplicates by (Src, PSeq) and orders per sender.
	k := sim.New(1)
	g, pool := testGroup(k, 2, 2, 1)
	pkt := func(src int, pseq uint64) *mpi.Packet {
		return &mpi.Packet{Src: src, Dst: 0, Kind: mpi.KindPayload, PSeq: pseq, Data: []byte{byte(pseq)}}
	}
	k.Go("w", func(p *sim.Proc) {
		pool[0].ReceiveLogs(0, 1, []*mpi.Packet{pkt(1, 1), pkt(1, 2), pkt(2, 1)}, 0, nil)
		pool[1].ReceiveLogs(0, 1, []*mpi.Packet{pkt(1, 2), pkt(1, 3), pkt(2, 1)}, 0, nil)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	got := g.LogsSinceUnion(0, 0)
	want := []struct {
		src  int
		pseq uint64
	}{{1, 1}, {1, 2}, {1, 3}, {2, 1}}
	if len(got) != len(want) {
		t.Fatalf("union has %d records, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Src != w.src || got[i].PSeq != w.pseq {
			t.Fatalf("union[%d] = src %d pseq %d, want %d %d", i, got[i].Src, got[i].PSeq, w.src, w.pseq)
		}
	}
	// A dead replica contributes nothing.
	pool[0].Kill()
	if n := len(g.LogsSinceUnion(0, 0)); n != 3 {
		t.Fatalf("union after kill has %d records, want 3", n)
	}
}

func TestServerFetchErrors(t *testing.T) {
	k := sim.New(1)
	_, pool := testGroup(k, 1, 1, 1)
	srv := pool[0]
	if _, err := srv.Fetch(0, 9, 0, nil); !errors.Is(err, ErrNoImage) {
		t.Fatalf("missing image: %v", err)
	}
	srv.Kill()
	if _, err := srv.Fetch(0, 9, 0, nil); !errors.Is(err, ErrServerDown) {
		t.Fatalf("dead server: %v", err)
	}
	if _, err := srv.Image(0, 9); !errors.Is(err, ErrServerDown) {
		t.Fatalf("dead server image: %v", err)
	}
}
