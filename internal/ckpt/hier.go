// Multi-level checkpoint storage hierarchy.
//
// Real large-scale checkpointing systems (FTI, SCR) stage images through
// a hierarchy of storage levels: a node-local buffer (RAM disk / SSD)
// absorbs the checkpoint at memory speed so the job resumes computing,
// then an asynchronous drain pushes copies down to replicated checkpoint
// servers and finally to the parallel file system.  Each level trades
// bandwidth for reliability: the buffer is fastest but dies with its
// medium, the PFS is slowest but survives everything short of losing a
// stripe target.
//
// Hierarchy wraps the replicated Group with that staging model.  A spec
// with only the servers level degenerates to pure delegation, so runs
// configured through the flat replication fields are byte-identical to
// the pre-hierarchy code.  Recovery searches top-down: the node-local
// buffer (free restore), then the server group, then the PFS stripes —
// falling through dead levels and counting each fall-through as a
// failover.
package ckpt

import (
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// LevelKind names a storage-hierarchy level class.
type LevelKind string

const (
	// LevelBuffer is a node-local staging buffer (RAM disk / SSD): one
	// per compute node, written at local-device speed, lost with the
	// device.  Must be the first level when present.
	LevelBuffer LevelKind = "buffer"
	// LevelServers is the replicated checkpoint-server group — the
	// paper's checkpoint servers.  Exactly one servers level is
	// mandatory; a spec with only this level reproduces the flat model.
	LevelServers LevelKind = "servers"
	// LevelPFS is a striped parallel file system over dedicated target
	// nodes: cheapest per byte, most reliable, slowest.  Must be the
	// last level when present.
	LevelPFS LevelKind = "pfs"
)

// LevelSpec configures one level of the hierarchy.  Which fields apply
// depends on Kind; Spec.Normalize fills model defaults for the rest.
type LevelSpec struct {
	Kind LevelKind

	// Servers-level fields (mirror the flat ftpm config).
	Servers      int
	Replicas     int
	WriteQuorum  int
	StoreRetries int
	RetryBackoff sim.Time

	// Bandwidth is the level's per-target bandwidth in bytes/second:
	// local-device write/read speed for the buffer, the per-stripe flow
	// cap for the PFS.  Unused for the servers level (the network model
	// owns it).
	Bandwidth float64
	// Latency is the fixed per-operation setup cost (buffer only; the
	// network model carries latency for the other levels).
	Latency sim.Time

	// Capacity bounds a node buffer in bytes; 0 = unbounded.  When an
	// insert would overflow, the oldest staged images are evicted first.
	Capacity int64
	// Retention bounds how many waves per rank a buffer keeps; 0 = all
	// until GC.
	Retention int

	// Targets is the PFS target-node count; Stripes is how many targets
	// one image is striped across.
	Targets int
	Stripes int
}

// Spec is the full storage-hierarchy configuration: the ordered levels
// (top first) plus the image-planning knobs shared by all levels.
type Spec struct {
	// Levels, top (fastest, least reliable) to bottom.  Exactly one
	// LevelServers entry is required; LevelBuffer must be first and
	// LevelPFS last when present.
	Levels []LevelSpec

	// Incremental captures dirty-region deltas between full images.
	Incremental bool
	// FullEvery forces a full image every n-th checkpoint per rank when
	// Incremental (bounding delta-chain length); default 4.
	FullEvery int
	// DirtyFraction is the fraction of the full image dirtied per
	// checkpoint interval; a delta d intervals past its base stores
	// min(1, d·DirtyFraction) of the full size.  Default 0.35.
	DirtyFraction float64

	// Compress models checkpoint compression: stored and restored bytes
	// shrink by CompressRatio (default 0.6).
	Compress      bool
	CompressRatio float64
}

// Normalize fills model defaults in place and returns the spec.
func (sp *Spec) Normalize() *Spec {
	if sp.FullEvery <= 0 {
		sp.FullEvery = 4
	}
	if sp.DirtyFraction <= 0 {
		sp.DirtyFraction = 0.35
	}
	if sp.CompressRatio <= 0 {
		sp.CompressRatio = 0.6
	}
	for i := range sp.Levels {
		l := &sp.Levels[i]
		switch l.Kind {
		case LevelBuffer:
			if l.Bandwidth <= 0 {
				l.Bandwidth = 2e9 // local SSD/RAM-disk class
			}
			if l.Latency <= 0 {
				l.Latency = 200 * sim.Time(1000) // 200µs setup
			}
		case LevelPFS:
			if l.Targets <= 0 {
				l.Targets = 4
			}
			if l.Stripes <= 0 {
				l.Stripes = 2
			}
			if l.Stripes > l.Targets {
				l.Stripes = l.Targets
			}
			if l.Bandwidth <= 0 {
				l.Bandwidth = 1e9 // per-stripe PFS target
			}
		}
	}
	return sp
}

// Level returns the index of the first level of the given kind, -1 if
// absent.
func (sp *Spec) Level(kind LevelKind) int {
	for i := range sp.Levels {
		if sp.Levels[i].Kind == kind {
			return i
		}
	}
	return -1
}

// ServersLevel returns the servers level, which validation guarantees
// exists; nil on a malformed spec.
func (sp *Spec) ServersLevel() *LevelSpec {
	if i := sp.Level(LevelServers); i >= 0 {
		return &sp.Levels[i]
	}
	return nil
}

// WithoutStaging returns a copy of the spec keeping only the servers
// level.  Message-logging recovery fetches per-rank image+log unions
// from the server group as soon as a failure is detected, which is
// incompatible with asynchronously draining staged copies — so mlog
// jobs run the degenerate hierarchy (the planner knobs still apply).
func (sp *Spec) WithoutStaging() *Spec {
	out := *sp
	out.Levels = nil
	for _, l := range sp.Levels {
		if l.Kind == LevelServers {
			out.Levels = append(out.Levels, l)
		}
	}
	return &out
}

// nodeBuffer is one node's staging buffer.  Insertion order doubles as
// the deterministic eviction order.
type nodeBuffer struct {
	node   int
	dead   bool
	used   int64
	order  []imgKey
	images map[imgKey]*Image
	drains []*StoreOp
}

func (b *nodeBuffer) evictAt(i int) *Image {
	k := b.order[i]
	img := b.images[k]
	b.order = append(b.order[:i], b.order[i+1:]...)
	delete(b.images, k)
	if img != nil {
		b.used -= img.StoredBytes()
	}
	return img
}

// pfsStore is the striped logical store over the PFS target nodes.  An
// image is readable only while every target holding one of its stripes
// is still alive.
type pfsStore struct {
	spec    LevelSpec
	nodes   []int // target index → machine
	dead    []bool
	images  map[imgKey]*pfsImage
	staging map[imgKey]bool
}

type pfsImage struct {
	img     *Image
	targets []int
}

func (p *pfsStore) readable(k imgKey) *Image {
	ent := p.images[k]
	if ent == nil {
		return nil
	}
	for _, t := range ent.targets {
		if p.dead[t] {
			return nil
		}
	}
	return ent.img
}

// liveTargets returns up to want live target indices starting the scan
// at rank%Targets, so stripes spread across targets deterministically.
func (p *pfsStore) liveTargets(rank, want int) []int {
	n := len(p.nodes)
	var out []int
	for i := 0; i < n && len(out) < want; i++ {
		t := (rank + i) % n
		if !p.dead[t] {
			out = append(out, t)
		}
	}
	return out
}

// chainState tracks one rank's incremental-image chain.
type chainState struct {
	haveFull     bool
	fullWave     int
	sinceFull    int
	chainRestore int64 // uncompressed base + delta payloads so far
}

// Hierarchy is the multi-level store the protocol engine writes
// checkpoints through.  All methods must be called from the simulation
// kernel (no locking).
type Hierarchy struct {
	k     *sim.Kernel
	net   *simnet.Network
	spec  Spec
	group *Group

	bufIdx, srvIdx, pfsIdx int

	buffers  map[int]*nodeBuffer
	bufNodes []int // creation order, for deterministic GC sweeps
	pfs      *pfsStore

	chains map[int]*chainState

	// failovers counts recovery fall-throughs between hierarchy levels
	// (buffer→servers, servers→PFS); the group counts its own.
	failovers int

	hub *obs.Hub
}

// Op is the cancellation handle shared by every store/fetch the
// hierarchy starts; Cancel aborts whatever leg is in flight.
type Op interface{ Cancel() }

// NewHierarchy builds the hierarchy over an existing server group.  The
// spec must already be validated (exactly one servers level, buffer
// first, pfs last) and normalized.  pfsNodes maps PFS target index to
// machine; required iff the spec has a PFS level.
func NewHierarchy(net *simnet.Network, spec Spec, group *Group, pfsNodes []int) *Hierarchy {
	h := &Hierarchy{
		k:      net.Kernel(),
		net:    net,
		spec:   spec,
		group:  group,
		bufIdx: spec.Level(LevelBuffer),
		srvIdx: spec.Level(LevelServers),
		pfsIdx: spec.Level(LevelPFS),
		chains: make(map[int]*chainState),
	}
	if h.bufIdx >= 0 {
		h.buffers = make(map[int]*nodeBuffer)
	}
	if h.pfsIdx >= 0 {
		l := spec.Levels[h.pfsIdx]
		h.pfs = &pfsStore{
			spec:    l,
			nodes:   pfsNodes,
			dead:    make([]bool, len(pfsNodes)),
			images:  make(map[imgKey]*pfsImage),
			staging: make(map[imgKey]bool),
		}
	}
	return h
}

// SetObs attaches the hub hierarchy events go to.
func (h *Hierarchy) SetObs(hub *obs.Hub) { h.hub = hub; h.group.SetObs(hub) }

// Group exposes the wrapped server group (log shipping and per-rank
// mlog fetches talk to it directly).
func (h *Hierarchy) Group() *Group { return h.group }

// Staged reports whether the hierarchy has a level above the servers.
func (h *Hierarchy) Staged() bool { return h.bufIdx >= 0 }

// Failovers returns recovery fall-throughs at every level.
func (h *Hierarchy) Failovers() int { return h.failovers + h.group.Failovers }

func (h *Hierarchy) emit(ev obs.Event) {
	ev.T = h.k.Now()
	h.hub.Emit(ev)
}

// bwTime is the modelled transfer time of n bytes at bw bytes/second.
func bwTime(n int64, bw float64) sim.Time {
	return sim.Time(float64(n) / bw * 1e9)
}

func (h *Hierarchy) buffer(node int) *nodeBuffer {
	b := h.buffers[node]
	if b == nil {
		b = &nodeBuffer{node: node, images: make(map[imgKey]*Image)}
		h.buffers[node] = b
		h.bufNodes = append(h.bufNodes, node)
	}
	return b
}

// PlanImage annotates the image with its modelled stored/restore costs
// under the spec's incremental and compression knobs, advancing the
// rank's delta chain.  Call exactly once per taken checkpoint, in rank
// order within a wave (the chain is per-rank, so order across ranks
// does not matter — but determinism is free this way).
func (h *Hierarchy) PlanImage(img *Image) {
	if !h.spec.Incremental && !h.spec.Compress {
		return
	}
	full := img.Bytes()
	stored, restore := full, full
	if h.spec.Incremental {
		ch := h.chains[img.Rank]
		if ch == nil {
			ch = &chainState{}
			h.chains[img.Rank] = ch
		}
		if ch.haveFull && ch.sinceFull < h.spec.FullEvery-1 {
			ch.sinceFull++
			frac := h.spec.DirtyFraction * float64(ch.sinceFull)
			if frac > 1 {
				frac = 1
			}
			payload := int64(float64(full) * frac)
			if payload < 1 {
				payload = 1
			}
			img.Delta = true
			img.Base = ch.fullWave
			stored = payload
			ch.chainRestore += payload
			restore = ch.chainRestore
		} else {
			ch.haveFull = true
			ch.fullWave = img.Wave
			ch.sinceFull = 0
			ch.chainRestore = full
		}
	}
	if h.spec.Compress {
		stored = int64(float64(stored) * h.spec.CompressRatio)
		restore = int64(float64(restore) * h.spec.CompressRatio)
		if stored < 1 {
			stored = 1
		}
		if restore < 1 {
			restore = 1
		}
	}
	img.Stored, img.Restore = stored, restore
}

// ResetChains forces the next image of every rank to be full.  Called
// after a rollback: the restarted address space diverges from the old
// base, so chaining a delta off it would be meaningless.
func (h *Hierarchy) ResetChains() {
	h.chains = make(map[int]*chainState)
}

// ResetChain forces the next image of one rank to be full (per-rank
// mlog restarts).
func (h *Hierarchy) ResetChain(rank int) {
	delete(h.chains, rank)
}

// hierStoreOp is a store staged through the node buffer.
type hierStoreOp struct {
	h         *Hierarchy
	timer     sim.EventID
	inner     *StoreOp
	cancelled bool
}

func (op *hierStoreOp) Cancel() {
	if op.cancelled {
		return
	}
	op.cancelled = true
	if op.timer != 0 {
		op.h.k.Cancel(op.timer)
		op.timer = 0
	}
	if op.inner != nil {
		op.inner.Cancel()
		op.inner = nil
	}
}

// Store writes img through the hierarchy.  With a buffer level the
// commit gate (onQuorum) fires when the node-local write completes —
// that is the point the image is recoverable if the process dies — and
// an asynchronous drain then pushes copies to the server group and the
// PFS.  Without a buffer the group's quorum is the gate, as before.
// Cancel aborts the leg the dying process still owns; drains belong to
// the buffer and survive rank death.
func (h *Hierarchy) Store(img *Image, srcNode int, cap simnet.Rate, onQuorum, onFailed func()) Op {
	if h.bufIdx < 0 {
		return h.group.Store(img, srcNode, cap, func() {
			if onQuorum != nil {
				onQuorum()
			}
			h.drainToPFS(img, cap)
		}, onFailed)
	}
	buf := h.buffer(srcNode)
	if buf.dead {
		// The node's staging device is gone; fall through to the
		// servers so the job keeps checkpointing, just slower.
		return h.group.Store(img, srcNode, cap, func() {
			if onQuorum != nil {
				onQuorum()
			}
			h.drainToPFS(img, cap)
		}, onFailed)
	}
	op := &hierStoreOp{h: h}
	lvl := &h.spec.Levels[h.bufIdx]
	stored := img.StoredBytes()
	span := h.hub.NextSpan()
	h.emit(obs.Event{Type: obs.EvImageStoreBegin, Rank: img.Rank, Wave: img.Wave,
		Channel: -1, Node: srcNode, Server: -1, Level: h.bufIdx, Bytes: stored, Span: span})
	op.timer = h.k.After(lvl.Latency+bwTime(stored, lvl.Bandwidth), func() {
		op.timer = 0
		if buf.dead {
			// Device died mid-write: the local copy is lost, retry
			// against the servers.
			op.inner = h.group.Store(img, srcNode, cap, func() {
				if onQuorum != nil {
					onQuorum()
				}
				h.drainToPFS(img, cap)
			}, onFailed)
			return
		}
		keep := img.Clone()
		h.insert(buf, lvl, keep)
		h.emit(obs.Event{Type: obs.EvImageStoreEnd, Rank: img.Rank, Wave: img.Wave,
			Channel: -1, Node: srcNode, Server: -1, Level: h.bufIdx, Bytes: stored, Span: span})
		if onQuorum != nil {
			onQuorum()
		}
		h.drainFromBuffer(buf, keep, cap)
	})
	return op
}

// insert stages an image in the buffer, evicting oldest-first to honor
// capacity and per-rank retention.
func (h *Hierarchy) insert(buf *nodeBuffer, lvl *LevelSpec, img *Image) {
	k := imgKey{img.Rank, img.Wave}
	if old := buf.images[k]; old != nil {
		buf.used -= old.StoredBytes()
	} else {
		buf.order = append(buf.order, k)
	}
	buf.images[k] = img
	buf.used += img.StoredBytes()
	for lvl.Capacity > 0 && buf.used > lvl.Capacity {
		i := 0
		for i < len(buf.order) && buf.order[i] == k {
			i++
		}
		if i >= len(buf.order) {
			break // only the just-written image left; never evict it
		}
		h.evict(buf, i)
	}
	if lvl.Retention > 0 {
		kept := 0
		for i := len(buf.order) - 1; i >= 0; i-- {
			if buf.order[i].rank != img.Rank || buf.order[i] == k {
				continue
			}
			kept++
			if kept >= lvl.Retention {
				h.evict(buf, i)
			}
		}
	}
}

func (h *Hierarchy) evict(buf *nodeBuffer, i int) {
	victim := buf.evictAt(i)
	if victim != nil {
		h.emit(obs.Event{Type: obs.EvLevelEvict, Rank: victim.Rank, Wave: victim.Wave,
			Channel: -1, Node: buf.node, Server: -1, Level: h.bufIdx,
			Bytes: victim.StoredBytes()})
	}
}

// drainFromBuffer asynchronously pushes a staged image down to the
// server group (and onward to the PFS).  The drain is owned by the
// buffer, not the writing process: rank death leaves it running, buffer
// death cancels it.
func (h *Hierarchy) drainFromBuffer(buf *nodeBuffer, img *Image, cap simnet.Rate) {
	span := h.hub.NextSpan()
	h.emit(obs.Event{Type: obs.EvDrainBegin, Rank: img.Rank, Wave: img.Wave,
		Channel: -1, Node: buf.node, Server: -1, Level: h.srvIdx,
		Bytes: img.StoredBytes(), Span: span})
	var op *StoreOp
	op = h.group.Store(img, buf.node, cap, func() {
		buf.dropDrain(op)
		h.emit(obs.Event{Type: obs.EvDrainEnd, Rank: img.Rank, Wave: img.Wave,
			Channel: -1, Node: buf.node, Server: -1, Level: h.srvIdx,
			Bytes: img.StoredBytes(), Span: span})
		h.drainToPFS(img, cap)
	}, func() {
		// Quorum unreachable at the server level (EvQuorumLost already
		// emitted by the group): the image stays buffer-only.
		buf.dropDrain(op)
	})
	buf.drains = append(buf.drains, op)
}

func (b *nodeBuffer) dropDrain(op *StoreOp) {
	for i, d := range b.drains {
		if d == op {
			b.drains = append(b.drains[:i], b.drains[i+1:]...)
			return
		}
	}
}

// drainToPFS stripes an image from its primary surviving replica server
// onto the PFS targets.  Fully asynchronous; a failed or impossible
// drain is silent (the upper levels still protect the wave).
func (h *Hierarchy) drainToPFS(img *Image, cap simnet.Rate) {
	if h.pfs == nil {
		return
	}
	k := imgKey{img.Rank, img.Wave}
	if h.pfs.images[k] != nil || h.pfs.staging[k] {
		return
	}
	var src *Server
	for _, srv := range h.group.ReplicaSet(img.Rank) {
		if srv.Alive() && srv.Has(img.Rank, img.Wave) {
			src = srv
			break
		}
	}
	if src == nil {
		return
	}
	targets := h.pfs.liveTargets(img.Rank, h.pfs.spec.Stripes)
	if len(targets) == 0 {
		return
	}
	h.pfs.staging[k] = true
	span := h.hub.NextSpan()
	h.emit(obs.Event{Type: obs.EvDrainBegin, Rank: img.Rank, Wave: img.Wave,
		Channel: -1, Node: src.Node, Server: -1, Level: h.pfsIdx,
		Bytes: img.StoredBytes(), Span: span})
	stored := img.StoredBytes()
	stripe := stored / int64(len(targets))
	if stripe < 1 {
		stripe = 1
	}
	remaining := len(targets)
	done := func() {
		remaining--
		if remaining > 0 {
			return
		}
		delete(h.pfs.staging, k)
		h.pfs.images[k] = &pfsImage{img: img, targets: targets}
		h.emit(obs.Event{Type: obs.EvDrainEnd, Rank: img.Rank, Wave: img.Wave,
			Channel: -1, Node: src.Node, Server: -1, Level: h.pfsIdx,
			Bytes: stored, Span: span})
	}
	for i, t := range targets {
		sz := stripe
		if i == len(targets)-1 {
			sz = stored - stripe*int64(len(targets)-1)
			if sz < 1 {
				sz = 1
			}
		}
		h.net.StartFlowCapped(src.Node, h.pfs.nodes[t], sz, simnet.Rate(h.pfs.spec.Bandwidth), done)
	}
}

// hierFetchOp is a restore fetch walking down the hierarchy.
type hierFetchOp struct {
	h         *Hierarchy
	timer     sim.EventID
	inner     Op
	flows     []*simnet.Flow
	cancelled bool
}

func (op *hierFetchOp) Cancel() {
	if op.cancelled {
		return
	}
	op.cancelled = true
	if op.timer != 0 {
		op.h.k.Cancel(op.timer)
		op.timer = 0
	}
	if op.inner != nil {
		op.inner.Cancel()
		op.inner = nil
	}
	for _, f := range op.flows {
		f.Cancel()
	}
	op.flows = nil
}

// Fetch restores (rank, wave) for a process restarting on dstNode,
// searching top-down: the node's own buffer (local-device read), then
// the server group, then the PFS stripes.  needLogs adds the wave's
// message logs, which only the server group holds — a buffer or PFS hit
// still fetches logs from the group.
func (h *Hierarchy) Fetch(rank, wave, dstNode int, needLogs bool, onDone func(*Image, []*mpi.Packet), onFail func(error)) Op {
	op := &hierFetchOp{h: h}
	if h.bufIdx >= 0 {
		if buf := h.buffers[dstNode]; buf != nil && !buf.dead {
			if img := buf.images[imgKey{rank, wave}]; img != nil {
				lvl := &h.spec.Levels[h.bufIdx]
				op.timer = h.k.After(lvl.Latency+bwTime(img.RestoreBytes(), lvl.Bandwidth), func() {
					op.timer = 0
					if buf.dead {
						// Device died during the read; fall down a level.
						h.failovers++
						h.emit(obs.Event{Type: obs.EvReplicaFailover, Rank: rank, Wave: wave,
							Channel: -1, Node: dstNode, Server: -1, Level: h.srvIdx})
						h.fetchLower(op, rank, wave, dstNode, needLogs, onDone, onFail)
						return
					}
					if !needLogs {
						onDone(img.Clone(), nil)
						return
					}
					op.inner = h.group.FetchLogsOnly(rank, wave, dstNode, func(logs []*mpi.Packet) {
						onDone(img.Clone(), logs)
					}, onFail)
				})
				return op
			}
		}
	}
	h.fetchLower(op, rank, wave, dstNode, needLogs, onDone, onFail)
	return op
}

func (h *Hierarchy) fetchLower(op *hierFetchOp, rank, wave, dstNode int, needLogs bool, onDone func(*Image, []*mpi.Packet), onFail func(error)) {
	op.inner = h.group.Fetch(rank, wave, dstNode, needLogs, onDone, func(err error) {
		if h.fetchFromPFS(op, rank, wave, dstNode, needLogs, onDone, onFail) {
			return
		}
		onFail(err)
	})
}

// fetchFromPFS reads the image back from its stripes when every target
// holding one is alive.  Returns false (without side effects) when the
// PFS cannot serve the wave.
func (h *Hierarchy) fetchFromPFS(op *hierFetchOp, rank, wave, dstNode int, needLogs bool, onDone func(*Image, []*mpi.Packet), onFail func(error)) bool {
	if h.pfs == nil {
		return false
	}
	img := h.pfs.readable(imgKey{rank, wave})
	if img == nil {
		return false
	}
	if op.cancelled {
		return true
	}
	ent := h.pfs.images[imgKey{rank, wave}]
	h.failovers++
	h.emit(obs.Event{Type: obs.EvReplicaFailover, Rank: rank, Wave: wave,
		Channel: -1, Node: dstNode, Server: -1, Level: h.pfsIdx})
	restore := img.RestoreBytes()
	stripe := restore / int64(len(ent.targets))
	if stripe < 1 {
		stripe = 1
	}
	remaining := len(ent.targets)
	arrived := func() {
		remaining--
		if remaining > 0 {
			return
		}
		op.flows = nil
		if !needLogs {
			onDone(img.Clone(), nil)
			return
		}
		op.inner = h.group.FetchLogsOnly(rank, wave, dstNode, func(logs []*mpi.Packet) {
			onDone(img.Clone(), logs)
		}, func(err error) {
			// Image recovered but the wave's logs are gone: the caller
			// cannot replay, same as a plain miss.
			onFail(err)
		})
	}
	for i, t := range ent.targets {
		sz := stripe
		if i == len(ent.targets)-1 {
			sz = restore - stripe*int64(len(ent.targets)-1)
			if sz < 1 {
				sz = 1
			}
		}
		op.flows = append(op.flows,
			h.net.StartFlowCapped(h.pfs.nodes[t], dstNode, sz, simnet.Rate(h.pfs.spec.Bandwidth), arrived))
	}
	return true
}

// HasCommitted reports whether any hierarchy level can restore the wave
// for the rank right now (used by restore-planning and tests).
func (h *Hierarchy) HasCommitted(rank, wave, node int) bool {
	if h.bufIdx >= 0 {
		if buf := h.buffers[node]; buf != nil && !buf.dead && buf.images[imgKey{rank, wave}] != nil {
			return true
		}
	}
	if h.group.Has(rank, wave) {
		return true
	}
	if h.pfs != nil && h.pfs.readable(imgKey{rank, wave}) != nil {
		return true
	}
	return false
}

// KillBuffer destroys one node's staging buffer: staged images are
// lost, in-flight drains sourced from it are cancelled.  The node's
// ranks keep running.  Returns false if the node had no live buffer
// (no level configured, never written, or already dead).
func (h *Hierarchy) KillBuffer(node int) bool {
	if h.bufIdx < 0 {
		return false
	}
	buf := h.buffers[node]
	if buf == nil || buf.dead {
		return false
	}
	buf.dead = true
	buf.images = make(map[imgKey]*Image)
	buf.order = nil
	buf.used = 0
	for _, d := range buf.drains {
		d.Cancel()
	}
	buf.drains = nil
	h.emit(obs.Event{Type: obs.EvBufferKilled, Rank: -1, Wave: -1,
		Channel: -1, Node: node, Server: -1, Level: h.bufIdx})
	return true
}

// KillPFSTarget destroys one PFS target: every image with a stripe on
// it becomes unreadable.  Returns false without a PFS level or when the
// target is out of range or already dead.
func (h *Hierarchy) KillPFSTarget(target int) bool {
	if h.pfs == nil || target < 0 || target >= len(h.pfs.dead) || h.pfs.dead[target] {
		return false
	}
	h.pfs.dead[target] = true
	h.emit(obs.Event{Type: obs.EvPFSKilled, Rank: -1, Wave: -1,
		Channel: -1, Node: h.pfs.nodes[target], Server: target, Level: h.pfsIdx})
	return true
}

// StoreLogs ships a wave's message logs to the server group (logs are
// never staged: replay correctness needs them with the replicas).
func (h *Hierarchy) StoreLogs(rank, wave int, pkts []*mpi.Packet, srcNode int, onQuorum, onFailed func()) *StoreOp {
	return h.group.StoreLogs(rank, wave, pkts, srcNode, onQuorum, onFailed)
}

// FetchSince delegates to the group: mlog per-rank recovery reads the
// newest server-side image plus all later logs.
func (h *Hierarchy) FetchSince(rank, wave, dstNode int, onDone func(*Image, []*mpi.Packet), onFail func(error)) *FetchOp {
	return h.group.FetchSince(rank, wave, dstNode, onDone, onFail)
}

// LogsSinceUnion delegates to the group.
func (h *Hierarchy) LogsSinceUnion(rank, wave int) []*mpi.Packet {
	return h.group.LogsSinceUnion(rank, wave)
}

// GC reclaims waves older than wave at every level.
func (h *Hierarchy) GC(wave int) {
	h.group.GC(wave)
	for _, node := range h.bufNodes {
		h.gcBuffer(h.buffers[node], func(k imgKey) bool { return k.wave < wave })
	}
	h.gcPFS(func(k imgKey) bool { return k.wave < wave })
}

// GCRank reclaims one rank's data older than wave at every level.
func (h *Hierarchy) GCRank(rank, wave int) {
	h.group.GCRank(rank, wave)
	for _, node := range h.bufNodes {
		h.gcBuffer(h.buffers[node], func(k imgKey) bool { return k.rank == rank && k.wave < wave })
	}
	h.gcPFS(func(k imgKey) bool { return k.rank == rank && k.wave < wave })
}

func (h *Hierarchy) gcBuffer(buf *nodeBuffer, drop func(imgKey) bool) {
	if buf == nil || buf.dead {
		return
	}
	for i := 0; i < len(buf.order); {
		if drop(buf.order[i]) {
			buf.evictAt(i)
			continue
		}
		i++
	}
}

func (h *Hierarchy) gcPFS(drop func(imgKey) bool) {
	if h.pfs == nil {
		return
	}
	for k := range h.pfs.images {
		if drop(k) {
			delete(h.pfs.images, k)
		}
	}
}
