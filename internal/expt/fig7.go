package expt

import (
	"time"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// Fig7Row is one run of Fig. 7: CG class C on 64 processes over a 32-node
// Myrinet cluster with 2 checkpoint servers; completion time as a
// function of the number of completed checkpoint waves, for the three
// stacks.
type Fig7Row struct {
	Stack    string
	Interval sim.Time
	Waves    int
	Time     sim.Time
}

// fig7Stacks are the three implementations compared on the high-speed
// network: both TCP stacks run over the Myrinet Ethernet emulation, the
// Nemesis stack over native GM.
func fig7Stacks(nodes int) []struct {
	name  string
	proto ftpm.Proto
	topo  simnet.Topology
	prof  mpi.Profile
} {
	return []struct {
		name  string
		proto ftpm.Proto
		topo  simnet.Topology
		prof  mpi.Profile
	}{
		{"pcl-sock", ftpm.ProtoPcl, platformMyriTCP(nodes), pclSockProfile()},
		{"vcl", ftpm.ProtoVcl, platformMyriTCP(nodes), vclProfile()},
		{"pcl-nemesis", ftpm.ProtoPcl, platformMyriGM(nodes), pclNemesisProfile()},
	}
}

// fig7Intervals sweeps the timeout between waves; the x-axis of the
// figure is the number of waves actually completed.
func fig7Intervals(o Options) []sim.Time {
	ivs := []sim.Time{0, 60 * time.Second, 30 * time.Second, 15 * time.Second,
		8 * time.Second, 5 * time.Second, 3 * time.Second, 2 * time.Second}
	if o.Quick {
		ivs = []sim.Time{0, 15 * time.Second, 3 * time.Second}
	}
	return ivs
}

// Fig7 reproduces "Impact of the number of checkpoint waves over a high
// speed network".  Expected shape: both Pcl stacks degrade linearly in
// the number of waves; Vcl is nearly flat in the wave count but starts
// from a much higher base (daemon copies and TCP emulation on a
// latency-bound benchmark), so Vcl only wins at extreme checkpoint
// frequencies.
func Fig7(o Options) ([]Fig7Row, error) {
	const np = 64
	class := o.cgClass()
	nodes := np/2 + 2 + 1
	var rows []Fig7Row
	for _, st := range fig7Stacks(nodes) {
		for _, iv := range fig7Intervals(o) {
			cfg := ftpm.Config{
				NP:           np,
				ProcsPerNode: 2,
				Servers:      2,
				Topology:     st.topo,
				Profile:      st.prof,
				NewProgram:   newCG(class),
				Seed:         o.Seed,
			}
			if iv > 0 {
				cfg.Protocol = st.proto
				cfg.Interval = o.scaleInterval(iv)
			}
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig7Row{Stack: st.name, Interval: iv, Waves: res.WavesCommitted, Time: res.Completion})
			o.tracef("fig7 %s interval=%v waves=%d time=%v", st.name, iv, res.WavesCommitted, res.Completion)
		}
	}
	return rows, nil
}

// Fig8Row is one run of Fig. 8: CG class C at varying process counts on
// the Myrinet cluster, Pcl/Nemesis only.
type Fig8Row struct {
	NP       int
	PPN      int
	Interval sim.Time
	Waves    int
	Time     sim.Time
}

// Fig8 reproduces "Impact of the size of the system for varying number of
// checkpoint waves over high speed network".  Expected shape: completion
// time grows linearly with the wave count at every size with roughly the
// same slope — the checkpoint frequency matters, the process count does
// not; 32 and 64 processes perform alike because two processes share each
// NIC.
func Fig8(o Options) ([]Fig8Row, error) {
	class := o.cgClass()
	sizes := []int{4, 8, 16, 32, 64}
	if o.Quick {
		sizes = []int{4, 16, 64}
	}
	var rows []Fig8Row
	for _, np := range sizes {
		ppn := 1
		if np >= 32 {
			ppn = 2 // dual-processor deployments share the NIC
		}
		for _, iv := range fig7Intervals(o) {
			cfg := ftpm.Config{
				NP:           np,
				ProcsPerNode: ppn,
				Servers:      2,
				Topology:     platformMyriGM((np+ppn-1)/ppn + 3),
				Profile:      pclNemesisProfile(),
				NewProgram:   newCG(class),
				Seed:         o.Seed,
			}
			if iv > 0 {
				cfg.Protocol = ftpm.ProtoPcl
				cfg.Interval = o.scaleInterval(iv)
			}
			res, err := o.run(cfg)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig8Row{NP: np, PPN: ppn, Interval: iv, Waves: res.WavesCommitted, Time: res.Completion})
			o.tracef("fig8 np=%d interval=%v waves=%d time=%v", np, iv, res.WavesCommitted, res.Completion)
		}
	}
	return rows, nil
}
