package expt

import (
	"fmt"
	"time"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// Fig7Row is one run of Fig. 7: CG class C on 64 processes over a 32-node
// Myrinet cluster with 2 checkpoint servers; completion time as a
// function of the number of completed checkpoint waves, for the three
// stacks.
type Fig7Row struct {
	Stack    string
	Interval sim.Time
	Waves    int
	Time     sim.Time
}

// fig7Stack is one of the implementations compared on the high-speed
// network.
type fig7Stack struct {
	name  string
	proto ftpm.Proto
	topo  simnet.Topology
	prof  mpi.Profile
}

// fig7Stacks are the three implementations compared on the high-speed
// network: both TCP stacks run over the Myrinet Ethernet emulation, the
// Nemesis stack over native GM.
func fig7Stacks(nodes int) []fig7Stack {
	return []fig7Stack{
		{"pcl-sock", ftpm.ProtoPcl, platformMyriTCP(nodes), pclSockProfile()},
		{"vcl", ftpm.ProtoVcl, platformMyriTCP(nodes), vclProfile()},
		{"pcl-nemesis", ftpm.ProtoPcl, platformMyriGM(nodes), pclNemesisProfile()},
	}
}

// fig7Intervals sweeps the timeout between waves; the x-axis of the
// figure is the number of waves actually completed.
func fig7Intervals(o Options) []sim.Time {
	ivs := []sim.Time{0, 60 * time.Second, 30 * time.Second, 15 * time.Second,
		8 * time.Second, 5 * time.Second, 3 * time.Second, 2 * time.Second}
	if o.Quick {
		ivs = []sim.Time{0, 15 * time.Second, 3 * time.Second}
	}
	return ivs
}

// Fig7 reproduces "Impact of the number of checkpoint waves over a high
// speed network".  Expected shape: both Pcl stacks degrade linearly in
// the number of waves; Vcl is nearly flat in the wave count but starts
// from a much higher base (daemon copies and TCP emulation on a
// latency-bound benchmark), so Vcl only wins at extreme checkpoint
// frequencies.
func Fig7(o Options) ([]Fig7Row, error) {
	const np = 64
	class := o.cgClass()
	nodes := np/2 + 2 + 1
	type point struct {
		st fig7Stack
		iv sim.Time
	}
	var points []point
	for _, st := range fig7Stacks(nodes) {
		for _, iv := range fig7Intervals(o) {
			points = append(points, point{st, iv})
		}
	}
	return runSweep(o, points,
		func(p point) string { return fmt.Sprintf("fig7 %s np=%d interval=%v", p.st.name, np, p.iv) },
		func(o Options, p point) (Fig7Row, error) {
			cfg := ftpm.Config{
				NP:           np,
				ProcsPerNode: 2,
				Servers:      2,
				Topology:     p.st.topo,
				Profile:      p.st.prof,
				NewProgram:   newCG(class),
				Seed:         o.Seed,
			}
			if p.iv > 0 {
				cfg.Protocol = p.st.proto
				cfg.Interval = o.scaleInterval(p.iv)
			}
			res, err := o.run(cfg)
			if err != nil {
				return Fig7Row{}, err
			}
			o.tracef("fig7 %s interval=%v waves=%d time=%v", p.st.name, p.iv, res.WavesCommitted, res.Completion)
			return Fig7Row{Stack: p.st.name, Interval: p.iv, Waves: res.WavesCommitted, Time: res.Completion}, nil
		})
}
