package expt

import (
	"fmt"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/sim"
)

// Fig8Row is one run of Fig. 8: CG class C at varying process counts on
// the Myrinet cluster, Pcl/Nemesis only.
type Fig8Row struct {
	NP       int
	PPN      int
	Interval sim.Time
	Waves    int
	Time     sim.Time
}

// Fig8 reproduces "Impact of the size of the system for varying number of
// checkpoint waves over high speed network".  Expected shape: completion
// time grows linearly with the wave count at every size with roughly the
// same slope — the checkpoint frequency matters, the process count does
// not; 32 and 64 processes perform alike because two processes share each
// NIC.  The interval sweep is fig7's (the figures share an x-axis).
func Fig8(o Options) ([]Fig8Row, error) {
	class := o.cgClass()
	sizes := []int{4, 8, 16, 32, 64}
	if o.Quick {
		sizes = []int{4, 16, 64}
	}
	type point struct {
		np int
		iv sim.Time
	}
	var points []point
	for _, np := range sizes {
		for _, iv := range fig7Intervals(o) {
			points = append(points, point{np, iv})
		}
	}
	return runSweep(o, points,
		func(p point) string { return fmt.Sprintf("fig8 np=%d interval=%v", p.np, p.iv) },
		func(o Options, p point) (Fig8Row, error) {
			np, iv := p.np, p.iv
			ppn := 1
			if np >= 32 {
				ppn = 2 // dual-processor deployments share the NIC
			}
			cfg := ftpm.Config{
				NP:           np,
				ProcsPerNode: ppn,
				Servers:      2,
				Topology:     platformMyriGM((np+ppn-1)/ppn + 3),
				Profile:      pclNemesisProfile(),
				NewProgram:   newCG(class),
				Seed:         o.Seed,
			}
			if iv > 0 {
				cfg.Protocol = ftpm.ProtoPcl
				cfg.Interval = o.scaleInterval(iv)
			}
			res, err := o.run(cfg)
			if err != nil {
				return Fig8Row{}, err
			}
			o.tracef("fig8 np=%d interval=%v waves=%d time=%v", np, iv, res.WavesCommitted, res.Completion)
			return Fig8Row{NP: np, PPN: ppn, Interval: iv, Waves: res.WavesCommitted, Time: res.Completion}, nil
		})
}
