package expt

import (
	"fmt"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
	"ftckpt/internal/sim"
)

// RecoveryRow is one failure count of the recovery-mode comparison:
// the same scripted rank kills run once under the paper's
// rollback-restart and once under ULFM-style in-job repair, on the
// Jacobi kernel with partner snapshots.
type RecoveryRow struct {
	Kills int
	// RestartTime and Restarts are the rollback-restart run's completion
	// and rollback episodes (one per kill).
	RestartTime sim.Time
	Restarts    int
	// UlfmTime is the in-job recovery run's completion; Repairs counts
	// failures survived without a restart, UlfmRestarts any fallbacks.
	UlfmTime     sim.Time
	Repairs      int
	UlfmRestarts int
	// LostWork is the total virtual compute time the repairs redid;
	// RecoveredWork the fraction of total rank-time not redone.
	LostWork      sim.Time
	RecoveredWork float64
}

// Recovery compares the two recovery modes under identical seeded kill
// schedules: Jacobi on 16 processes under Pcl, kills spread across the
// middle of the run.  Expected shape: in-job repair completes faster at
// every kill count (survivors redo one snapshot interval instead of the
// whole stretch since the last committed wave, and no relaunch delay is
// paid), with zero restarts while spares and partner snapshots hold.
func Recovery(o Options) ([]RecoveryRow, error) {
	const np = 16
	iters := 1200
	if o.Quick {
		iters = 300
	}
	grid := np * 8
	base := func() ftpm.Config {
		return ftpm.Config{
			NP:       np,
			Protocol: ftpm.ProtoPcl,
			Interval: o.scaleInterval(100 * time.Millisecond),
			Servers:  2,
			Topology: platformEthernet(np + 3),
			Profile:  pclSockProfile(),
			NewProgram: func(rank, size int) mpi.Program {
				return nas.NewJacobi(rank, size, grid, iters)
			},
			FTEvery: 10,
			Seed:    o.Seed,
		}
	}
	// The failure-free completion anchors the kill schedule, so kills land
	// mid-run at every -quick setting.
	po := o
	po.point = "recovery probe"
	probe, err := po.run(base())
	if err != nil {
		return nil, err
	}
	total := probe.Completion

	return runSweep(o, []int{1, 2, 3},
		func(kills int) string { return fmt.Sprintf("recovery kills=%d", kills) },
		func(o Options, kills int) (RecoveryRow, error) {
			row := RecoveryRow{Kills: kills}
			var plan failure.Plan
			for i := 0; i < kills; i++ {
				plan = append(plan, failure.Event{
					At:   total / sim.Time(kills+1) * sim.Time(i+1),
					Rank: (3*i + 1) % np,
				})
			}

			cfg := base()
			cfg.Failures = plan
			res, err := o.run(cfg)
			if err != nil {
				return row, err
			}
			row.RestartTime, row.Restarts = res.Completion, res.Restarts

			cfg = base()
			cfg.Failures = plan
			cfg.Recovery = ftpm.RecoveryULFM
			res, err = o.run(cfg)
			if err != nil {
				return row, err
			}
			row.UlfmTime, row.Repairs, row.UlfmRestarts = res.Completion, res.Repairs, res.Restarts
			row.LostWork = res.LostWork
			if res.Completion > 0 {
				row.RecoveredWork = 1 - float64(res.LostWork)/(float64(np)*float64(res.Completion))
			}

			o.tracef("recovery kills=%d restart=%v/%dr ulfm=%v/%drep+%dr recovered=%.4f",
				kills, row.RestartTime, row.Restarts, row.UlfmTime, row.Repairs,
				row.UlfmRestarts, row.RecoveredWork)
			return row, nil
		})
}
