package expt

import (
	"fmt"

	"ftckpt/internal/mpi"
	"ftckpt/internal/platform"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// NetpipeRow characterizes one message size: half round-trip time and
// stream throughput for an intra-cluster and an inter-cluster node pair
// of the grid.
type NetpipeRow struct {
	Size     int64
	IntraRTT sim.Time // half round trip
	InterRTT sim.Time
	IntraBW  float64 // MB/s
	InterBW  float64
}

// NetpipeSizes is the sweep of the characterization.
var NetpipeSizes = []int64{1, 1 << 10, 32 << 10, 1 << 20, 8 << 20}

// Netpipe reproduces the §5.4 platform measurement: "the network is up to
// 20 times faster between two nodes of the same cluster than between two
// nodes of two distinct clusters; the latency is up to two orders of
// magnitude greater between clusters".
func Netpipe(o Options) ([]NetpipeRow, error) {
	return runSweep(o, NetpipeSizes,
		func(size int64) string { return fmt.Sprintf("netpipe size=%d", size) },
		func(o Options, size int64) (NetpipeRow, error) {
			intra, err := pingpong(o, size, 0, 1) // two Bordeaux nodes
			if err != nil {
				return NetpipeRow{}, err
			}
			inter, err := pingpong(o, size, 0, 60) // Bordeaux ↔ Lille
			if err != nil {
				return NetpipeRow{}, err
			}
			o.tracef("netpipe size=%d intra=%v inter=%v", size, intra/2, inter/2)
			return NetpipeRow{
				Size:     size,
				IntraRTT: intra / 2,
				InterRTT: inter / 2,
				IntraBW:  bwMBs(size, intra),
				InterBW:  bwMBs(size, inter),
			}, nil
		})
}

func bwMBs(size int64, rtt sim.Time) float64 {
	if rtt <= 0 {
		return 0
	}
	return 2 * float64(size) / rtt.Seconds() / 1e6
}

// pingpong measures the mean round trip of `reps` exchanges of size bytes
// between two nodes of the grid topology.
func pingpong(o Options, size int64, nodeA, nodeB int) (sim.Time, error) {
	const reps = 5
	k := sim.New(o.Seed)
	net := simnet.New(k, platform.Grid5000())
	fab := mpi.NewFabric(net)
	fab.Place(0, nodeA)
	fab.Place(1, nodeB)
	var rtt sim.Time
	prof := pclSockProfile()
	engines := make([]*mpi.Engine, 2)
	for r := 0; r < 2; r++ {
		r := r
		k.Go(fmt.Sprintf("pp%d", r), func(p *sim.Proc) {
			engines[r] = mpi.NewEngine(r, 2, p, prof, fab)
			p.Yield()
			e := engines[r]
			if r == 0 {
				start := e.Now()
				for i := 0; i < reps; i++ {
					e.Send(1, 1, nil, size)
					e.Recv(1, 2)
				}
				rtt = (e.Now() - start) / reps
			} else {
				for i := 0; i < reps; i++ {
					e.Recv(0, 1)
					e.Send(0, 2, nil, size)
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		return 0, err
	}
	return rtt, nil
}
