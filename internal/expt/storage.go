package expt

import (
	"fmt"
	"math"

	"ftckpt/internal/ckpt"
	"ftckpt/internal/ftpm"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// Storage-hierarchy study (beyond the paper's figures): how the optimal
// checkpoint interval moves as the commit gate descends the storage
// hierarchy, and which level saturates first.
//
// For each hierarchy variant the harness measures the per-wave commit
// cost C from a failure-free probe, derives the Young and Daly optimal
// intervals from C and the chosen system MTBF, then sweeps intervals
// around the Young point under memoryless rank failures and reports the
// simulated optimum next to the analytic ones.  Expected shape: staging
// through a node-local buffer shrinks C by orders of magnitude, pulling
// the optimal interval down and the completion time with it — the
// argument multi-level checkpointing systems (FTI, SCR) rest on.

// StorageOptRow is one hierarchy variant of the interval study.
type StorageOptRow struct {
	Config string
	// Cost is the measured mean wave cycle (first snapshot → commit) of
	// the failure-free probe — the C of the Young/Daly formulas.
	Cost sim.Time
	// MTTF is the system MTBF the analytic optima assume (the per-rank
	// MTTF divided by NP).
	MTTF sim.Time
	// Young = sqrt(2·C·MTTF); Daly is the higher-order refinement.
	Young sim.Time
	Daly  sim.Time
	// Best is the interval with the lowest completion time on the
	// simulated sweep grid; BestTime that completion.
	Best     sim.Time
	BestTime sim.Time
}

// StorageSatRow is one level of one variant's saturation accounting, at
// the variant's simulated-optimal interval.
type StorageSatRow struct {
	Config string
	Level  string
	// MB is the data the level absorbed (stores and drains landing on
	// it); Capacity the level's aggregate bandwidth in MB/s.
	MB       float64
	Capacity float64
	// Util is the level's busy fraction: MB / (Capacity × completion).
	// The level closest to 1.0 saturates first as waves come faster.
	Util float64
	// Evictions counts capacity/retention evictions (buffer levels).
	Evictions int64
}

// StorageStudy is the full output of the storage harness.
type StorageStudy struct {
	Opt []StorageOptRow
	Sat []StorageSatRow
}

// storageVariant is one hierarchy shape under study.
type storageVariant struct {
	name    string
	servers int
	pfs     int // PFS target count, 0 without a PFS level
	spec    func() *ckpt.Spec
}

func storageVariants() []storageVariant {
	const servers = 2
	return []storageVariant{
		{name: "servers", servers: servers, spec: func() *ckpt.Spec { return nil }},
		{name: "buffer+servers", servers: servers, spec: func() *ckpt.Spec {
			return &ckpt.Spec{Levels: []ckpt.LevelSpec{
				{Kind: ckpt.LevelBuffer},
				{Kind: ckpt.LevelServers, Servers: servers},
			}}
		}},
		{name: "buffer+servers+pfs", servers: servers, pfs: 4, spec: func() *ckpt.Spec {
			return &ckpt.Spec{
				Levels: []ckpt.LevelSpec{
					{Kind: ckpt.LevelBuffer},
					{Kind: ckpt.LevelServers, Servers: servers},
					{Kind: ckpt.LevelPFS, Targets: 4, Stripes: 2},
				},
				Incremental: true,
				Compress:    true,
			}
		}},
	}
}

// storageConfig assembles one variant's job.
func (o Options) storageConfig(v storageVariant, np int) ftpm.Config {
	var spec *ckpt.Spec
	if v.spec != nil {
		spec = v.spec()
	}
	return ftpm.Config{
		NP:           np,
		ProcsPerNode: 2,
		Servers:      v.servers,
		Storage:      spec,
		Topology:     platformEthernet(np/2 + v.servers + 1 + v.pfs),
		Profile:      pclSockProfile(),
		NewProgram:   newCG(o.cgClass()),
		Seed:         o.Seed,
	}
}

// youngDaly computes the analytic optimal intervals for commit cost c
// and system MTBF m: Young's W = sqrt(2·c·m) and Daly's higher-order
// refinement W = sqrt(2·c·m)·[1 + sqrt(c/2m)/3 + (c/2m)/9] − c (valid
// for c < 2m, else the interval degenerates to m).
func youngDaly(c, m sim.Time) (young, daly sim.Time) {
	if c <= 0 || m <= 0 {
		return 0, 0
	}
	cf, mf := float64(c), float64(m)
	w := math.Sqrt(2 * cf * mf)
	young = sim.Time(w)
	if cf >= 2*mf {
		return young, m
	}
	x := math.Sqrt(cf / (2 * mf))
	daly = sim.Time(w*(1+x/3+x*x/9) - cf)
	if daly <= 0 {
		daly = young
	}
	return young, daly
}

// Storage runs the hierarchy study: a no-checkpoint baseline, one
// failure-free probe per variant to measure C, an interval sweep under
// rank failures per variant, and a per-level saturation accounting at
// each variant's best interval.
func Storage(o Options) (StorageStudy, error) {
	const np = 16
	variants := storageVariants()

	// Baseline: the workload without checkpointing fixes the time scale
	// every derived quantity hangs off.
	base := o.storageConfig(storageVariant{name: "none", servers: 1}, np)
	o.point = "storage baseline"
	res, err := o.run(base)
	if err != nil {
		return StorageStudy{}, err
	}
	t0 := res.Completion
	// System MTBF for the analytic optima and the failure sweeps: a
	// third of the baseline run, so every sweep point sees a few kills.
	mttf := t0 / 3

	// Probe each variant failure-free at a fixed interval to measure the
	// commit cost C (mean first-snapshot→commit cycle).
	type probe struct {
		cost sim.Time
	}
	probes, err := runSweep(o, variants,
		func(v storageVariant) string { return fmt.Sprintf("storage probe %s", v.name) },
		func(o Options, v storageVariant) (probe, error) {
			cfg := o.storageConfig(v, np)
			cfg.Protocol = ftpm.ProtoPcl
			cfg.Interval = t0 / 6
			res, err := o.run(cfg)
			if err != nil {
				return probe{}, err
			}
			if res.WavesCommitted == 0 {
				return probe{}, fmt.Errorf("storage probe %s: no wave committed at interval %v", v.name, cfg.Interval)
			}
			cost := res.WaveBreakdown.MeanCycle
			if cost <= 0 {
				cost = 1
			}
			o.tracef("storage probe %s: waves=%d cost=%v", v.name, res.WavesCommitted, cost)
			return probe{cost: cost}, nil
		})
	if err != nil {
		return StorageStudy{}, err
	}

	// Interval sweep under memoryless rank failures, around each
	// variant's Young point.  The grid floor keeps buffered variants —
	// whose Young interval can be milliseconds — from running hundreds
	// of waves per point.
	fracs := []float64{0.5, 0.75, 1, 1.5, 2.5}
	if o.Quick {
		fracs = []float64{0.5, 1, 2}
	}
	floor := t0 / 40
	study := StorageStudy{}
	type gridPoint struct {
		variant  int
		interval sim.Time
	}
	var points []gridPoint
	for i, p := range probes {
		young, _ := youngDaly(p.cost, mttf)
		for _, f := range fracs {
			iv := sim.Time(float64(young) * f)
			if iv < floor {
				iv = floor
			}
			points = append(points, gridPoint{variant: i, interval: iv})
		}
	}
	type gridRes struct {
		completion sim.Time
	}
	grid, err := runSweep(o, points,
		func(p gridPoint) string {
			return fmt.Sprintf("storage sweep %s interval=%v", variants[p.variant].name, p.interval)
		},
		func(o Options, p gridPoint) (gridRes, error) {
			cfg := o.storageConfig(variants[p.variant], np)
			cfg.Protocol = ftpm.ProtoPcl
			cfg.Interval = p.interval
			cfg.MTTF = mttf * sim.Time(np)
			res, err := o.run(cfg)
			if err != nil {
				return gridRes{}, err
			}
			o.tracef("storage sweep %s interval=%v time=%v restarts=%d",
				variants[p.variant].name, p.interval, res.Completion, res.Restarts)
			return gridRes{completion: res.Completion}, nil
		})
	if err != nil {
		return StorageStudy{}, err
	}
	for i, p := range probes {
		young, daly := youngDaly(p.cost, mttf)
		row := StorageOptRow{
			Config: variants[i].name, Cost: p.cost, MTTF: mttf,
			Young: young, Daly: daly,
		}
		for j, gp := range points {
			if gp.variant != i {
				continue
			}
			if row.BestTime == 0 || grid[j].completion < row.BestTime {
				row.Best, row.BestTime = gp.interval, grid[j].completion
			}
		}
		study.Opt = append(study.Opt, row)
	}

	// Saturation accounting: run each variant failure-free at its best
	// interval against a private registry and charge every level with
	// the bytes that landed on it.
	for i, v := range variants {
		cfg := o.storageConfig(v, np)
		cfg.Protocol = ftpm.ProtoPcl
		cfg.Interval = study.Opt[i].Best
		reg := obs.NewMetrics()
		po := o
		po.Metrics = reg
		po.point = fmt.Sprintf("storage saturation %s", v.name)
		res, err := po.run(cfg)
		if err != nil {
			return StorageStudy{}, err
		}
		o.Metrics.Merge(reg)
		secs := res.Completion.Seconds()
		if secs <= 0 {
			secs = 1
		}
		nicMBps := cfg.Topology.Clusters[0].NICBW / (1 << 20)
		addRow := func(level string, bytes int64, capMBps float64, evict int64) {
			mb := float64(bytes) / (1 << 20)
			util := 0.0
			if capMBps > 0 {
				util = mb / (capMBps * secs)
			}
			study.Sat = append(study.Sat, StorageSatRow{
				Config: v.name, Level: level,
				MB: mb, Capacity: capMBps, Util: util, Evictions: evict,
			})
		}
		if sp := cfg.Storage; sp != nil {
			computeNodes := (np + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
			for k := range sp.Levels {
				l := &sp.Levels[k]
				bytes := reg.Counter(fmt.Sprintf("%s.l%d", obs.MLevelBytes, k))
				switch l.Kind {
				case ckpt.LevelBuffer:
					addRow("buffer", bytes, l.Bandwidth*float64(computeNodes)/(1<<20),
						reg.Counter(obs.MEvictions))
				case ckpt.LevelServers:
					addRow("servers", bytes, nicMBps*float64(l.Servers), 0)
				case ckpt.LevelPFS:
					addRow("pfs", bytes, l.Bandwidth*float64(l.Targets)/(1<<20), 0)
				}
			}
		} else {
			addRow("servers", reg.Counter(obs.MImageBytes), nicMBps*float64(v.servers), 0)
		}
		o.tracef("storage saturation %s: time=%v", v.name, res.Completion)
	}
	return study, nil
}
