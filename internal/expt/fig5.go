package expt

import (
	"fmt"
	"time"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/sim"
)

// Fig5Row is one checkpoint-server count of Fig. 5: BT class B on 64
// processes (32 dual-processor Ethernet nodes), 30 s between checkpoint
// waves; completion time and completed waves for both implementations.
type Fig5Row struct {
	Servers  int
	PclTime  sim.Time
	PclWaves int
	VclTime  sim.Time
	VclWaves int
}

// Fig5 reproduces "Impact of the number of checkpoint servers on BT class
// B for 64 processes with a given period of time between checkpoints".
// Expected shape: Pcl's completion time decreases as servers are added
// (the image transfer competes with the resumed communication for
// bandwidth), while Vcl's stays nearly constant and converts the faster
// transfers into additional waves.
func Fig5(o Options) ([]Fig5Row, error) {
	const np = 64
	class := o.btClass()
	if o.Quick {
		// Keep images big enough that server count still governs the
		// transfer time (the effect under study).
		class.BytesPerCell = 333
	}
	interval := o.scaleInterval(30 * time.Second)
	topo := func(servers int) ftpm.Config {
		return ftpm.Config{
			NP:           np,
			ProcsPerNode: 2,
			Interval:     interval,
			Servers:      servers,
			Topology:     platformEthernet(np/2 + servers + 1),
			NewProgram:   newBT(class),
			Seed:         o.Seed,
		}
	}
	return runSweep(o, []int{1, 2, 4, 8},
		func(servers int) string { return fmt.Sprintf("fig5 servers=%d", servers) },
		func(o Options, servers int) (Fig5Row, error) {
			row := Fig5Row{Servers: servers}

			cfg := topo(servers)
			cfg.Protocol = ftpm.ProtoPcl
			cfg.Profile = pclSockProfile()
			res, err := o.run(cfg)
			if err != nil {
				return row, err
			}
			row.PclTime, row.PclWaves = res.Completion, res.WavesCommitted

			cfg = topo(servers)
			cfg.Protocol = ftpm.ProtoVcl
			cfg.Profile = vclProfile()
			res, err = o.run(cfg)
			if err != nil {
				return row, err
			}
			row.VclTime, row.VclWaves = res.Completion, res.WavesCommitted

			o.tracef("fig5 servers=%d pcl=%v/%dw vcl=%v/%dw",
				servers, row.PclTime, row.PclWaves, row.VclTime, row.VclWaves)
			return row, nil
		})
}
