package expt

import (
	"testing"
)

// quick returns fast harness options for smoke tests.
func quick() Options { return Options{Quick: true, Seed: 1} }

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	// Pcl completion time decreases as checkpoint servers are added.
	if first.PclTime <= last.PclTime {
		t.Errorf("Pcl time did not decrease with servers: 1→%v, 8→%v", first.PclTime, last.PclTime)
	}
	// Vcl converts faster transfers into waves at near-constant time:
	// its relative spread stays well below Pcl's.
	pclSpread := float64(first.PclTime-last.PclTime) / float64(last.PclTime)
	vclSpread := float64(first.VclTime-last.VclTime) / float64(last.VclTime)
	if vclSpread < 0 {
		vclSpread = -vclSpread
	}
	if vclSpread >= pclSpread {
		t.Errorf("Vcl spread %.3f not below Pcl spread %.3f", vclSpread, pclSpread)
	}
	if last.VclWaves < first.VclWaves {
		t.Errorf("Vcl waves decreased with servers: %d→%d", first.VclWaves, last.VclWaves)
	}
	for _, r := range rows {
		if r.PclWaves == 0 || r.VclWaves == 0 {
			t.Errorf("no waves at %d servers: %+v", r.Servers, r)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(quick())
	if err != nil {
		t.Fatal(err)
	}
	// Index rows by (interval, np).
	type key struct {
		iv int64
		np int
	}
	m := map[key]Fig6Row{}
	for _, r := range rows {
		m[key{int64(r.Interval), r.NP}] = r
	}
	fast, slow := int64(Fig6Intervals[0]), int64(Fig6Intervals[2])
	for _, np := range fig6Sizes(true) {
		f, s := m[key{fast, np}], m[key{slow, np}]
		if f.Pcl < f.None || s.Pcl < s.None {
			t.Errorf("np=%d: checkpointed run faster than baseline", np)
		}
		// High checkpoint frequency costs the blocking protocol more.
		fastOv := float64(f.Pcl-f.None) / float64(f.None)
		slowOv := float64(s.Pcl-s.None) / float64(s.None)
		if fastOv < slowOv {
			t.Errorf("np=%d: pcl overhead at 10s (%.3f) below 60s (%.3f)", np, fastOv, slowOv)
		}
	}
	// Process count has no blow-up effect on relative overhead at the low
	// frequency (paper: "increasing the number of nodes has no measurable
	// impact"): compare smallest and largest np at the slow interval.
	smallest := m[key{slow, 4}]
	largest := m[key{slow, 64}]
	ovS := float64(smallest.Pcl-smallest.None) / float64(smallest.None)
	ovL := float64(largest.Pcl-largest.None) / float64(largest.None)
	if ovL > 8*ovS+0.15 {
		t.Errorf("pcl overhead grows strongly with np: %.3f (np=4) vs %.3f (np=64)", ovS, ovL)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(quick())
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]Fig7Row{} // interval == 0
	most := map[string]Fig7Row{} // most frequent checkpointing
	for _, r := range rows {
		if r.Interval == 0 {
			base[r.Stack] = r
		}
		if prev, ok := most[r.Stack]; !ok || r.Waves > prev.Waves {
			most[r.Stack] = r
		}
	}
	// CG is latency-bound: the daemon architecture makes Vcl's base run
	// far slower than Pcl over Nemesis/GM, and slower than Pcl over TCP.
	if base["vcl"].Time <= base["pcl-nemesis"].Time {
		t.Errorf("vcl base %v not above pcl-nemesis base %v", base["vcl"].Time, base["pcl-nemesis"].Time)
	}
	if base["vcl"].Time <= base["pcl-sock"].Time {
		t.Errorf("vcl base %v not above pcl-sock base %v", base["vcl"].Time, base["pcl-sock"].Time)
	}
	// Pcl completion grows with the number of waves.
	for _, st := range []string{"pcl-sock", "pcl-nemesis"} {
		if most[st].Waves > 0 && most[st].Time <= base[st].Time {
			t.Errorf("%s: %d waves did not increase completion (%v vs %v)",
				st, most[st].Waves, most[st].Time, base[st].Time)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(quick())
	if err != nil {
		t.Fatal(err)
	}
	// For every size, completion grows with waves; the per-wave slope is
	// of the same order across sizes (paper: impact of checkpoints is not
	// sensitive to process count).
	slopes := map[int]float64{}
	base := map[int]Fig8Row{}
	for _, r := range rows {
		if r.Interval == 0 {
			base[r.NP] = r
		}
	}
	for _, r := range rows {
		if r.Interval != 0 && r.Waves > 0 {
			s := (r.Time - base[r.NP].Time).Seconds() / float64(r.Waves)
			if cur, ok := slopes[r.NP]; !ok || s > cur {
				slopes[r.NP] = s
			}
		}
	}
	if len(slopes) < 2 {
		t.Fatalf("not enough checkpointed points: %v", slopes)
	}
	var mn, mx float64
	first := true
	for _, s := range slopes {
		if s < 0 {
			t.Fatalf("negative slope: %v", slopes)
		}
		if first {
			mn, mx, first = s, s, false
			continue
		}
		if s < mn {
			mn = s
		}
		if s > mx {
			mx = s
		}
	}
	if mx > 25*mn {
		t.Errorf("per-wave cost varies wildly across sizes: %v", slopes)
	}
}

func TestFig9Shape(t *testing.T) {
	rows, err := Fig9(quick())
	if err != nil {
		t.Fatal(err)
	}
	var base Fig9Row
	for _, r := range rows {
		if r.Interval == 0 {
			base = r
		}
	}
	for _, r := range rows {
		if r.Interval == 0 {
			continue
		}
		if r.Waves == 0 {
			t.Errorf("no waves at interval %v", r.Interval)
			continue
		}
		if r.Time <= base.Time {
			t.Errorf("checkpointed grid run not slower: %+v vs base %v", r, base.Time)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := Fig10(quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Waves == 0 {
			t.Errorf("np=%d: no waves", r.NP)
		}
		if r.Ckpt60 <= r.NoCkpt {
			t.Errorf("np=%d: checkpointing free (%v vs %v)", r.NP, r.Ckpt60, r.NoCkpt)
		}
	}
}

func TestNetpipeGap(t *testing.T) {
	rows, err := Netpipe(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	small := rows[0]
	// Latency two orders of magnitude apart between clusters.
	if small.InterRTT < 50*small.IntraRTT {
		t.Errorf("WAN latency gap too small: %v vs %v", small.InterRTT, small.IntraRTT)
	}
	big := rows[len(rows)-1]
	if big.IntraBW < 10*big.InterBW {
		t.Errorf("WAN bandwidth gap too small: %.1f vs %.1f MB/s", big.IntraBW, big.InterBW)
	}
	if big.IntraBW < 80 || big.IntraBW > 120 {
		t.Errorf("intra-cluster stream bandwidth %.1f MB/s outside GigE range", big.IntraBW)
	}
}
