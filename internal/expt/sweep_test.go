package expt

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"ftckpt/internal/obs"
)

// fig6Capture runs the quick Fig. 6 sweep at the given job count,
// returning rows, the trace transcript and the exported metrics bytes.
func fig6Capture(t *testing.T, jobs int) ([]Fig6Row, []string, string) {
	t.Helper()
	o := quick()
	o.Jobs = jobs
	o.Metrics = obs.NewMetrics()
	var lines []string
	o.Trace = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	rows, err := Fig6(o)
	if err != nil {
		t.Fatalf("jobs=%d: %v", jobs, err)
	}
	var b strings.Builder
	if err := o.Metrics.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	return rows, lines, b.String()
}

// TestFig6ParallelMatchesSequential is the acceptance check for the
// parallel sweep executor: a Jobs=8 run must reproduce a Jobs=1 run
// byte for byte — same rows, same trace transcript, same exported
// metrics.
func TestFig6ParallelMatchesSequential(t *testing.T) {
	seqRows, seqTrace, seqMetrics := fig6Capture(t, 1)
	parRows, parTrace, parMetrics := fig6Capture(t, 8)
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Errorf("rows differ:\nseq: %+v\npar: %+v", seqRows, parRows)
	}
	if !reflect.DeepEqual(seqTrace, parTrace) {
		t.Errorf("trace transcripts differ:\nseq: %q\npar: %q", seqTrace, parTrace)
	}
	if seqMetrics != parMetrics {
		t.Errorf("exported metrics differ:\nseq: %s\npar: %s", seqMetrics, parMetrics)
	}
}

// TestDeadlineErrorNamesPoint forces every run over its virtual-time
// budget (maxTime test hook) and checks the failure is a descriptive
// error naming the offending sweep point — not a hang, not a bare
// deadline message.
func TestDeadlineErrorNamesPoint(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		o := quick()
		o.Jobs = jobs
		o.maxTime = 1 // one virtual nanosecond: nothing finishes
		_, err := Fig6(o)
		if err == nil {
			t.Fatalf("jobs=%d: sweep succeeded under a 1ns deadline", jobs)
		}
		for _, want := range []string{"fig6", "np=", "interval=", "proto=", "deadline"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("jobs=%d: error %q does not mention %q", jobs, err, want)
			}
		}
	}
}
