package expt

import (
	"fmt"
	"time"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/sim"
)

// Fig6Row is one (interval, process-count) point of Fig. 6: BT class B
// completion time for a checkpoint-free run and for both protocols, with
// 9 checkpoint servers.
type Fig6Row struct {
	Interval sim.Time
	NP       int
	PPN      int
	None     sim.Time
	Pcl      sim.Time
	PclWaves int
	Vcl      sim.Time
	VclWaves int
}

// Fig6Intervals are the four checkpoint frequencies of the figure.
var Fig6Intervals = []sim.Time{10 * time.Second, 30 * time.Second, 60 * time.Second, 120 * time.Second}

// fig6Sizes returns the square process counts of the figure; the paper
// had 150 machines, so deployments beyond 144 processes use both
// processors of a node (shared NIC — the visible performance dip).
func fig6Sizes(quick bool) []int {
	if quick {
		return []int{4, 16, 64}
	}
	return []int{4, 9, 16, 25, 36, 49, 64, 81, 100, 121, 144, 169, 196, 225, 256}
}

// Fig6PPN reproduces the paper's deployment rule for a process count.
func Fig6PPN(np int) int {
	if np > 144 {
		return 2
	}
	return 1
}

// Fig6 reproduces "Execution time as function of the number of processes
// for four checkpoint frequencies".  Expected shape: at 10 s between
// checkpoints the blocking protocol degrades badly; at lower frequencies
// both protocols converge to a constant overhead; the process count
// itself has no measurable impact on checkpoint overhead.
func Fig6(o Options) ([]Fig6Row, error) {
	const servers = 9
	class := o.btClass()
	intervals := Fig6Intervals
	if o.Quick {
		intervals = []sim.Time{10 * time.Second, 60 * time.Second}
	}
	type point struct {
		iv sim.Time
		np int
	}
	var points []point
	for _, iv := range intervals {
		for _, np := range fig6Sizes(o.Quick) {
			points = append(points, point{iv, np})
		}
	}
	return runSweep(o, points,
		func(p point) string { return fmt.Sprintf("fig6 interval=%v np=%d", p.iv, p.np) },
		func(o Options, p point) (Fig6Row, error) {
			iv, np := p.iv, p.np
			ppn := Fig6PPN(np)
			base := ftpm.Config{
				NP:           np,
				ProcsPerNode: ppn,
				Servers:      servers,
				Topology:     platformEthernet((np+ppn-1)/ppn + servers + 1),
				NewProgram:   newBT(class),
				Seed:         o.Seed,
			}
			row := Fig6Row{Interval: iv, NP: np, PPN: ppn}

			cfg := base
			cfg.Profile = pclSockProfile()
			res, err := o.run(cfg)
			if err != nil {
				return row, err
			}
			row.None = res.Completion

			cfg = base
			cfg.Protocol = ftpm.ProtoPcl
			cfg.Profile = pclSockProfile()
			cfg.Interval = o.scaleInterval(iv)
			if res, err = o.run(cfg); err != nil {
				return row, err
			}
			row.Pcl, row.PclWaves = res.Completion, res.WavesCommitted

			cfg = base
			cfg.Protocol = ftpm.ProtoVcl
			cfg.Profile = vclProfile()
			cfg.Interval = o.scaleInterval(iv)
			if res, err = o.run(cfg); err != nil {
				return row, err
			}
			row.Vcl, row.VclWaves = res.Completion, res.WavesCommitted

			o.tracef("fig6 interval=%v np=%d none=%v pcl=%v(%dw) vcl=%v(%dw)",
				iv, np, row.None, row.Pcl, row.PclWaves, row.Vcl, row.VclWaves)
			return row, nil
		})
}
