// Package expt contains one harness per figure of the paper's evaluation
// (§5, Figs. 5–10) plus the NetPIPE platform characterization (§5.4).
// Each harness builds the figure's platform, workload and protocol
// configuration, runs the simulation, and returns the rows/series the
// paper plots.  cmd/figures prints them; bench_test.go wraps them in
// testing.B benchmarks; EXPERIMENTS.md records paper-vs-measured shapes.
package expt

import (
	"fmt"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
	"ftckpt/internal/obs"
	"ftckpt/internal/platform"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// Options tunes a harness run.
type Options struct {
	// Quick shrinks workloads (~10x fewer iterations, fewer sweep points)
	// so the full suite smoke-tests in seconds.  Figure shapes survive;
	// absolute values do not.
	Quick bool
	// Trace receives progress lines (nil = silent).
	Trace func(format string, args ...any)
	// Seed feeds the deterministic kernels.
	Seed int64
	// Metrics, when set, aggregates every run of the harness into one
	// observability registry (cmd/figures dumps it next to each figure).
	Metrics *obs.Metrics
}

func (o Options) tracef(format string, args ...any) {
	if o.Trace != nil {
		o.Trace(format, args...)
	}
}

// btClass returns the BT class for a harness, shortened in Quick mode.
func (o Options) btClass() nas.BTClassSpec {
	c := nas.BTClassB
	if o.Quick {
		c.Iters = 20
		c.Flops /= 10
		c.BytesPerCell /= 20 // keep image transfers proportional to the shrunken run
	}
	return c
}

// cgClass returns the CG class for a harness, shortened in Quick mode.
func (o Options) cgClass() nas.CGClassSpec {
	c := nas.CGClassC
	if o.Quick {
		c.Iters = 8
		c.Flops /= 9.375
		c.BytesN /= 20
	}
	return c
}

// scaleInterval shrinks wave intervals in Quick mode so runs still
// checkpoint.
func (o Options) scaleInterval(d sim.Time) sim.Time {
	if o.Quick {
		return d / 10
	}
	return d
}

// Platform and profile shorthands (see internal/platform).
func platformEthernet(nodes int) simnet.Topology { return platform.EthernetCluster(nodes) }
func platformMyriGM(nodes int) simnet.Topology   { return platform.MyrinetGM(nodes) }
func platformMyriTCP(nodes int) simnet.Topology  { return platform.MyrinetTCP(nodes) }
func pclSockProfile() mpi.Profile                { return platform.PclSock }
func pclNemesisProfile() mpi.Profile             { return platform.PclNemesis }
func vclProfile() mpi.Profile                    { return platform.Vcl }

// newBT builds a BT-model program factory.
func newBT(class nas.BTClassSpec) func(rank, size int) mpi.Program {
	return func(rank, size int) mpi.Program { return nas.NewBTModel(class, rank, size) }
}

// newCG builds a CG-model program factory.
func newCG(class nas.CGClassSpec) func(rank, size int) mpi.Program {
	return func(rank, size int) mpi.Program { return nas.NewCGModel(class, rank, size) }
}

// run executes one configured job, folding its metrics into the harness
// registry when one is attached.
func (o Options) run(cfg ftpm.Config) (ftpm.Result, error) {
	cfg.Deadline = 0
	cfg.Metrics = o.Metrics
	return ftpm.Run(cfg)
}

// FmtTime renders a virtual duration in seconds for table output.
func FmtTime(t sim.Time) string { return fmt.Sprintf("%.1fs", t.Seconds()) }
