// Package expt contains one harness per figure of the paper's evaluation
// (§5, Figs. 5–10) plus the NetPIPE platform characterization (§5.4).
// Each harness builds the figure's platform, workload and protocol
// configuration, runs the simulation, and returns the rows/series the
// paper plots.  cmd/figures prints them; bench_test.go wraps them in
// testing.B benchmarks; EXPERIMENTS.md records paper-vs-measured shapes.
package expt

import (
	"context"
	"fmt"
	"time"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
	"ftckpt/internal/obs"
	"ftckpt/internal/platform"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
	"ftckpt/internal/span"
	"ftckpt/internal/sweep"
)

// Options tunes a harness run.
type Options struct {
	// Quick shrinks workloads (~10x fewer iterations, fewer sweep points)
	// so the full suite smoke-tests in seconds.  Figure shapes survive;
	// absolute values do not.
	Quick bool
	// Trace receives progress lines (nil = silent).
	Trace func(format string, args ...any)
	// Seed feeds the deterministic kernels.
	Seed int64
	// Metrics, when set, aggregates every run of the harness into one
	// observability registry (cmd/figures dumps it next to each figure).
	Metrics *obs.Metrics
	// Jobs caps how many sweep points run concurrently (each point is one
	// or more full simulations); 0 or 1 runs the classic sequential sweep.
	// Rows, trace output and exported metrics are byte-identical for any
	// Jobs value with the same seed.
	Jobs int
	// Attrib, when set, attaches the causal span tracer to every run of
	// the harness and folds each run's per-phase overhead attribution into
	// this accumulator — deterministically in point order, like Metrics,
	// so the merged breakdown is byte-identical for any Jobs value.
	Attrib *span.Attribution
	// Shards runs every simulation on a sharded kernel (ftpm
	// Config.Shards); 0 or 1 keeps the sequential kernel.  Outputs are
	// byte-identical either way.
	Shards int

	// point labels the sweep point a run belongs to ("fig6 interval=10s
	// np=64"), for deadline/error reporting; set by runSweep.
	point string
	// maxTime overrides the derived per-run deadline (test hook).
	maxTime sim.Time
}

func (o Options) tracef(format string, args ...any) {
	if o.Trace != nil {
		o.Trace(format, args...)
	}
}

// btClass returns the BT class for a harness, shortened in Quick mode.
func (o Options) btClass() nas.BTClassSpec {
	c := nas.BTClassB
	if o.Quick {
		c.Iters = 20
		c.Flops /= 10
		c.BytesPerCell /= 20 // keep image transfers proportional to the shrunken run
	}
	return c
}

// cgClass returns the CG class for a harness, shortened in Quick mode.
func (o Options) cgClass() nas.CGClassSpec {
	c := nas.CGClassC
	if o.Quick {
		c.Iters = 8
		c.Flops /= 9.375
		c.BytesN /= 20
	}
	return c
}

// scaleInterval shrinks wave intervals in Quick mode so runs still
// checkpoint.
func (o Options) scaleInterval(d sim.Time) sim.Time {
	if o.Quick {
		return d / 10
	}
	return d
}

// Platform and profile shorthands (see internal/platform).
func platformEthernet(nodes int) simnet.Topology { return platform.EthernetCluster(nodes) }
func platformMyriGM(nodes int) simnet.Topology   { return platform.MyrinetGM(nodes) }
func platformMyriTCP(nodes int) simnet.Topology  { return platform.MyrinetTCP(nodes) }
func pclSockProfile() mpi.Profile                { return platform.PclSock }
func pclNemesisProfile() mpi.Profile             { return platform.PclNemesis }
func vclProfile() mpi.Profile                    { return platform.Vcl }

// newBT builds a BT-model program factory.
func newBT(class nas.BTClassSpec) func(rank, size int) mpi.Program {
	return func(rank, size int) mpi.Program { return nas.NewBTModel(class, rank, size) }
}

// newCG builds a CG-model program factory.
func newCG(class nas.CGClassSpec) func(rank, size int) mpi.Program {
	return func(rank, size int) mpi.Program { return nas.NewCGModel(class, rank, size) }
}

// deadline bounds one run's virtual time.  A regressed protocol deadlock
// does not exhaust the event heap — wave timers keep re-arming — so
// without a bound a deadlocked run advances virtual time forever and
// hangs cmd/figures silently.  The budget is derived from the workload
// class: the serial compute estimate of the heavier class a harness may
// run (worst case np=1), with an 8x slack factor covering checkpoint
// overhead, restart episodes and grid WAN synchronization.  No healthy
// run gets anywhere near it.
func (o Options) deadline() sim.Time {
	if o.maxTime != 0 {
		return o.maxTime
	}
	serialFlops := o.btClass().Flops
	if f := o.cgClass().Flops; f > serialFlops {
		serialFlops = f
	}
	d := sim.Time(serialFlops / nas.EffectiveFlopRate * float64(time.Second))
	if d < time.Minute {
		d = time.Minute
	}
	return 8 * d
}

// run executes one configured job under the harness deadline, folding its
// metrics into the harness registry when one is attached.  A run that
// exceeds the deadline returns an error naming the sweep point (figure,
// np, interval) instead of hanging the harness.
func (o Options) run(cfg ftpm.Config) (ftpm.Result, error) {
	cfg.Deadline = o.deadline()
	cfg.Metrics = o.Metrics
	cfg.Attrib = o.Attrib != nil
	if cfg.Shards == 0 {
		cfg.Shards = o.Shards
	}
	res, err := ftpm.Run(cfg)
	if o.Attrib != nil && res.Attribution != nil {
		o.Attrib.Merge(res.Attribution)
	}
	if err != nil {
		point := o.point
		if point == "" {
			point = "run"
		}
		proto := cfg.Protocol
		if proto == "" {
			proto = ftpm.ProtoNone
		}
		// The effective shard count is part of the point's identity: a
		// deadline hit only at Shards>1 is a sharded-kernel bug (window
		// or lookahead), not a protocol regression.
		shards := cfg.Shards
		if shards < 1 {
			shards = 1
		}
		return res, fmt.Errorf("%s (np=%d proto=%s interval=%v shards=%d): %w",
			point, cfg.NP, proto, cfg.Interval, shards, err)
	}
	return res, nil
}

// runSweep fans a harness's independent sweep points over o.Jobs workers
// (each point runs one or more full simulations).  The sequential
// contract is preserved: results come back in input order, each point
// runs against a private metrics registry merged deterministically into
// o.Metrics after the barrier, and per-point trace lines are serialized
// in input order — so rows, -v output and exported metrics are
// byte-identical to a Jobs=1 run with the same seed.
func runSweep[P, R any](o Options, points []P, label func(P) string, fn func(Options, P) (R, error)) ([]R, error) {
	regs := make([]*obs.Metrics, len(points))
	attribs := make([]*span.Attribution, len(points))
	out, err := sweep.Run(context.Background(), points,
		func(_ context.Context, i int, p P, trace sweep.Tracef) (R, error) {
			po := o
			po.Trace = trace
			po.point = label(p)
			if o.Metrics != nil {
				regs[i] = obs.NewMetrics()
				po.Metrics = regs[i]
			}
			if o.Attrib != nil {
				attribs[i] = &span.Attribution{}
				po.Attrib = attribs[i]
			}
			return fn(po, p)
		}, sweep.Opts{Jobs: o.Jobs, Trace: sweep.Tracef(o.Trace)})
	if err != nil {
		return nil, err
	}
	for _, reg := range regs {
		o.Metrics.Merge(reg)
	}
	for _, at := range attribs {
		o.Attrib.Merge(at)
	}
	return out, nil
}

// FmtTime renders a virtual duration in seconds for table output.
func FmtTime(t sim.Time) string { return fmt.Sprintf("%.1fs", t.Seconds()) }
