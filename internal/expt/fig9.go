package expt

import (
	"fmt"
	"time"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/platform"
	"ftckpt/internal/sim"
)

// gridConfig assembles a grid job with same-cluster checkpoint servers.
func gridConfig(np int, o Options) (ftpm.Config, error) {
	lay, err := platform.Grid5000Layout(np, 2, 1)
	if err != nil {
		return ftpm.Config{}, err
	}
	return ftpm.Config{
		NP:           np,
		ProcsPerNode: 2,
		Servers:      lay.Servers,
		ServerOf:     lay.ServerOf,
		ServerNodes:  lay.ServerNodes,
		ServiceNode:  lay.ServiceNode,
		Placement:    lay.Placement,
		Topology:     lay.Topo,
		Profile:      pclSockProfile(),
		NewProgram:   newBT(o.btClass()),
		Seed:         o.Seed,
	}, nil
}

// Fig9Row is one interval point of Fig. 9: BT class B with 400 processes
// distributed over the grid, blocking protocol.
type Fig9Row struct {
	Interval sim.Time
	Waves    int
	Time     sim.Time
}

// Fig9 reproduces "Impact of checkpoint frequency on blocking
// checkpointing at large scale (400 processes)".  Expected shape: the
// number of waves is proportional to the checkpoint frequency, and the
// completion time remains linear in the number of waves even on a grid.
func Fig9(o Options) ([]Fig9Row, error) {
	const np = 400
	// Calibration: our grid BT model completes ~10x faster than the
	// paper's testbed (the flow model under-penalizes BT's WAN
	// synchronization), so the interval sweep is the paper's divided by
	// ten — preserving the 1–6 waves-per-run regime the figure studies.
	// See EXPERIMENTS.md.
	intervals := []sim.Time{0, 18 * time.Second, 12 * time.Second, 9 * time.Second,
		6 * time.Second, 4500 * time.Millisecond, 3 * time.Second}
	if o.Quick {
		// Quick grid runs last a few virtual seconds; pick intervals that
		// still fit several waves after scaleInterval's /10.
		intervals = []sim.Time{0, 8 * time.Second, 4 * time.Second}
	}
	return runSweep(o, intervals,
		func(iv sim.Time) string { return fmt.Sprintf("fig9 np=%d interval=%v", np, iv) },
		func(o Options, iv sim.Time) (Fig9Row, error) {
			cfg, err := gridConfig(np, o)
			if err != nil {
				return Fig9Row{}, err
			}
			if iv > 0 {
				cfg.Protocol = ftpm.ProtoPcl
				cfg.Interval = o.scaleInterval(iv)
			}
			res, err := o.run(cfg)
			if err != nil {
				return Fig9Row{}, err
			}
			o.tracef("fig9 interval=%v waves=%d time=%v", iv, res.WavesCommitted, res.Completion)
			return Fig9Row{Interval: iv, Waves: res.WavesCommitted, Time: res.Completion}, nil
		})
}

// Fig10Row is one process count of Fig. 10: BT class B over the grid,
// without checkpointing and with a wave every 60 s.
type Fig10Row struct {
	NP     int
	NoCkpt sim.Time
	Ckpt60 sim.Time
	Waves  int
}

// Fig10 reproduces "Impact of large scale on blocking checkpointing".
// Expected shape: the no-checkpoint execution slows at the largest scale
// (remote clusters join), giving the checkpointed execution time for more
// waves, whose cost stays proportional to the wave count.  Vcl cannot be
// run at this scale (its dispatcher's select() limit — enforced by
// ftpm.Config.Validate).
func Fig10(o Options) ([]Fig10Row, error) {
	sizes := []int{100, 169, 256, 324, 400, 529}
	if o.Quick {
		sizes = []int{100, 256}
	}
	return runSweep(o, sizes,
		func(np int) string { return fmt.Sprintf("fig10 np=%d", np) },
		func(o Options, np int) (Fig10Row, error) {
			cfg, err := gridConfig(np, o)
			if err != nil {
				return Fig10Row{}, err
			}
			res, err := o.run(cfg)
			if err != nil {
				return Fig10Row{}, err
			}
			row := Fig10Row{NP: np, NoCkpt: res.Completion}

			cfg, err = gridConfig(np, o)
			if err != nil {
				return row, err
			}
			cfg.Protocol = ftpm.ProtoPcl
			// The paper's 60 s interval, divided by the grid calibration
			// factor of ten (see Fig9).
			iv := 6 * time.Second
			if o.Quick {
				iv = 8 * time.Second // scaleInterval divides by ten again
			}
			cfg.Interval = o.scaleInterval(iv)
			if res, err = o.run(cfg); err != nil {
				return row, err
			}
			row.Ckpt60, row.Waves = res.Completion, res.WavesCommitted
			o.tracef("fig10 np=%d none=%v ckpt=%v waves=%d", np, row.NoCkpt, row.Ckpt60, row.Waves)
			return row, nil
		})
}
