package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape flags pooled object pointers escaping into storage that
// outlives the release back to the pool.  Types marked //ftlint:pooled
// (the sim event slab's slots, simnet's small-message records, mpi's
// admit records and CollState) are recycled: after release, the same
// object is handed out again with new contents, so a retained pointer is
// the ABA / use-after-release class of bug the PR 4 slab work made
// possible.  The analyzer approximates "outlives the release" as any
// store into a struct field or package variable; sanctioned holders — the
// pool's own free list or the one in-use slot — carry a //ftlint:pool
// marker on the field or var declaration.  Storing the result of a
// clone/Clone call is allowed: a clone is a fresh object, not the pooled
// instance.
var PoolEscape = &Analyzer{
	Name: "poolescape",
	Doc:  "flag pooled (//ftlint:pooled) pointers stored into fields or globals not marked //ftlint:pool",
	Run:  runPoolEscape,
}

func runPoolEscape(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkPoolAssign(pass, n)
			case *ast.ValueSpec:
				checkPoolValueSpec(pass, n)
			}
			return true
		})
	}
	return nil
}

// pooledTypeName returns the "pkgpath.Type" key when t is a pointer to a
// pooled type or a slice/array of such pointers, "" otherwise.
func pooledTypeName(markers *Markers, t types.Type) string {
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return pooledElemName(markers, u.Elem())
	case *types.Array:
		return pooledElemName(markers, u.Elem())
	default:
		return pooledElemName(markers, t)
	}
}

func pooledElemName(markers *Markers, t types.Type) string {
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		return ""
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if markers.PooledTypes[key] {
		return key
	}
	return ""
}

// isCloneCall reports whether the expression is a call to a method or
// function named clone/Clone — the sanctioned way to persist a pooled
// object's contents.
func isCloneCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name == "clone" || fun.Sel.Name == "Clone"
	case *ast.Ident:
		return fun.Name == "clone" || fun.Name == "Clone"
	}
	return false
}

func checkPoolAssign(pass *Pass, n *ast.AssignStmt) {
	// a, b = x, y pairs up; a, b = f() (len mismatch) is skipped — the
	// pools in this repository never multi-return pooled pointers.
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		t := pass.TypesInfo.TypeOf(rhs)
		if t == nil {
			continue
		}
		key := pooledTypeName(pass.Markers, t)
		if key == "" || isCloneCall(rhs) {
			continue
		}
		checkPoolStore(pass, n.Lhs[i], rhs, key)
	}
}

// checkPoolValueSpec catches `var retained = pool.get()` at package or
// function scope with a pooled initializer bound to a package-level var.
func checkPoolValueSpec(pass *Pass, n *ast.ValueSpec) {
	if len(n.Values) != len(n.Names) {
		return
	}
	for i, value := range n.Values {
		t := pass.TypesInfo.TypeOf(value)
		if t == nil {
			continue
		}
		key := pooledTypeName(pass.Markers, t)
		if key == "" || isCloneCall(value) {
			continue
		}
		obj := pass.TypesInfo.Defs[n.Names[i]]
		if obj == nil || obj.Parent() != pass.Pkg.Scope() {
			continue
		}
		reportPoolVar(pass, n.Names[i].Pos(), obj, key)
	}
}

func checkPoolStore(pass *Pass, lhs ast.Expr, rhs ast.Expr, key string) {
	switch lhs := lhs.(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[lhs]
		if obj == nil {
			obj = pass.TypesInfo.Defs[lhs]
		}
		// Only package-level variables outlive the release; locals and
		// parameters die with the frame that must finish before release.
		if obj != nil && obj.Parent() == pass.Pkg.Scope() {
			reportPoolVar(pass, lhs.Pos(), obj, key)
		}
	case *ast.SelectorExpr:
		sel := pass.TypesInfo.Selections[lhs]
		if sel == nil || sel.Kind() != types.FieldVal {
			return
		}
		owner := ownerNamed(sel.Recv())
		if owner == nil || owner.Obj().Pkg() == nil {
			return
		}
		fieldKey := owner.Obj().Pkg().Path() + "." + owner.Obj().Name() + "." + sel.Obj().Name()
		if pass.Markers.PoolFields[fieldKey] {
			return
		}
		pass.Reportf(lhs.Pos(),
			"pooled %s pointer stored into field %s.%s, which outlives the release back to the pool; mark the field //ftlint:pool if it is the pool's own storage, or store a clone",
			key, owner.Obj().Name(), sel.Obj().Name())
	case *ast.IndexExpr:
		// Storing into an element of a field-held slice (pool[i] = p):
		// attribute to the indexed expression recursively.
		checkPoolStore(pass, lhs.X, rhs, key)
	}
}

func reportPoolVar(pass *Pass, pos token.Pos, obj types.Object, key string) {
	if pass.Markers.PoolVars[pass.Pkg.Path()+"."+obj.Name()] {
		return
	}
	pass.Reportf(pos,
		"pooled %s pointer stored into package variable %q, which outlives the release back to the pool; mark the var //ftlint:pool if it is the pool's own storage, or store a clone",
		key, obj.Name())
}

// ownerNamed unwraps the receiver type of a field selection to its named
// struct type.
func ownerNamed(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
