package analysis

import "path"

// Per-analyzer package scopes for the v2 analyzers.  The v1 analyzers
// share the simPackages set (nodeterm.go) — everything that executes
// inside the simulation.  The v2 analyzers are narrower or differently
// shaped, so each declares its own set of package base names:
//
//   - shardconfine guards the sharded kernel's staging path: the kernel
//     itself, the placement that assigns LPs to shards, and the two
//     layers that schedule work onto shards (simnet delivery, the mpi
//     engine).  Protocol code above the engine never sees a shard.
//   - spanbalance covers every package that emits Begin/End span events:
//     the protocols, the checkpoint store hierarchy, the process manager
//     (repair and restart windows), the mpi engine, the NAS kernels'
//     FT hooks, and simnet's drain spans.
//   - errtype covers the layers that produce or classify typed FT errors
//     and the checkpoint-commit paths whose errors must not be dropped.
//     The expt harnesses are included for error discipline even though
//     they are exempt from nodeterm (they time the simulator from the
//     outside, so they may read the wall clock).
//
// Fixture packages opt in the same way the v1 fixtures do: the loader
// assigns them synthetic import paths ("shardconfine.test/kernel") whose
// base name matches a scoped package.
var analyzerScopes = map[string]map[string]bool{
	"shardconfine": {
		"sim":       true,
		"placement": true,
		"simnet":    true,
		"mpi":       true,
		"kernel":    true, // fixture base name
	},
	"spanbalance": {
		"ftpm":   true,
		"ckpt":   true,
		"pcl":    true,
		"vcl":    true,
		"mlog":   true,
		"mpi":    true,
		"nas":    true,
		"simnet": true,
		"spans":  true, // fixture base name
	},
	"errtype": {
		"mpi":    true,
		"ftpm":   true,
		"ckpt":   true,
		"chaos":  true,
		"nas":    true,
		"expt":   true,
		"errs":   true, // fixture base name
	},
}

// inScope reports whether the named analyzer runs over the package.
func inScope(analyzer, pkgPath string) bool {
	return analyzerScopes[analyzer][path.Base(pkgPath)]
}
