package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
)

// This file is the v2 dataflow layer: a small intra-procedural alias
// engine over the typed AST plus a cross-package function summary table.
// Both are deliberately modest — flow-insensitive tag propagation and
// one-level syntactic summaries — because the invariants they serve
// (shard confinement, span balance, error discipline) live in code that
// is already written defensively; the engine's job is to catch the alias
// one hop away from the marker, not to be a points-to analysis.

// flowKind classifies where a tracked value originally came from.
type flowKind int

const (
	// flowRecover: the value is the result of recover() — errtype uses
	// this to demand mpi.AsFTError instead of raw type assertions.
	flowRecover flowKind = iota
	// flowShardLocal: the value aliases state marked //ftlint:shardlocal;
	// key is the marker key ("pkg.Type.Field" or "pkg.var").
	flowShardLocal
	// flowSpan: the value is the result of a NextSpan() call — spanbalance
	// uses this to see a span handle escape into a struct field.
	flowSpan
)

// flowTag is one provenance fact about a local value.
type flowTag struct {
	kind flowKind
	key  string // marker key for flowShardLocal, "" otherwise
}

// funcFlow holds the alias facts for one function (or function literal)
// body: for each local object, the set of sources it may alias.  The
// analysis is flow-insensitive (an alias established anywhere in the body
// holds everywhere) and intra-procedural; calls other than recover() and
// NextSpan() are opaque.
type funcFlow struct {
	info *types.Info
	tags map[types.Object]map[flowTag]bool
	// spanFieldStore records that a span handle (flowSpan-tagged value)
	// was assigned into a struct field somewhere in the body.
	spanFieldStore bool
}

// analyzeFlow runs the alias engine over one function body.  markers may
// be nil when the caller only needs recover/span tracking.
func analyzeFlow(info *types.Info, body *ast.BlockStmt, markers *Markers) *funcFlow {
	ff := &funcFlow{info: info, tags: make(map[types.Object]map[flowTag]bool)}
	if body == nil {
		return ff
	}
	// Collect assignment edges lhs <- rhs (including := and var decls),
	// then iterate to a fixpoint so chains resolve regardless of source
	// order: `y := x` before `x := sh.heap` still tags y.
	type edge struct {
		lhs types.Object
		rhs ast.Expr
	}
	var edges []edge
	addAssign := func(lhs []ast.Expr, rhs []ast.Expr) {
		if len(lhs) != len(rhs) {
			return // multi-value call form: opaque
		}
		for i, l := range lhs {
			ident, ok := l.(*ast.Ident)
			if !ok {
				continue
			}
			obj := ff.info.Defs[ident]
			if obj == nil {
				obj = ff.info.Uses[ident]
			}
			if obj == nil {
				continue
			}
			edges = append(edges, edge{obj, rhs[i]})
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			addAssign(n.Lhs, n.Rhs)
			// A span handle stored through a selector is a field handoff.
			if len(n.Lhs) == len(n.Rhs) {
				for i, l := range n.Lhs {
					if _, ok := l.(*ast.SelectorExpr); ok {
						if ff.exprTags(n.Rhs[i], markers)[flowTag{kind: flowSpan}] {
							ff.spanFieldStore = true
						}
					}
				}
			}
		case *ast.GenDecl:
			if n.Tok == token.VAR {
				for _, spec := range n.Specs {
					vs := spec.(*ast.ValueSpec)
					if len(vs.Values) == 0 {
						continue
					}
					lhs := make([]ast.Expr, len(vs.Names))
					for i, name := range vs.Names {
						lhs[i] = name
					}
					addAssign(lhs, vs.Values)
				}
			}
		case *ast.RangeStmt:
			// `for _, v := range tagged` propagates the container's tags
			// to the element: an element of a shardlocal slice is still
			// shardlocal storage when it is a pointer.
			if n.Value != nil {
				addAssign([]ast.Expr{n.Value}, []ast.Expr{n.X})
			}
		}
		return true
	})
	for changed := true; changed; {
		changed = false
		for _, e := range edges {
			for tag := range ff.exprTags(e.rhs, markers) {
				set := ff.tags[e.lhs]
				if set == nil {
					set = make(map[flowTag]bool)
					ff.tags[e.lhs] = set
				}
				if !set[tag] {
					set[tag] = true
					changed = true
					if tag.kind == flowSpan {
						// Re-scan is avoided by checking stores lazily in
						// spanEscapes; nothing more to do here.
						_ = tag
					}
				}
			}
		}
	}
	// Second pass for field stores of span handles that flowed through a
	// local: `s := hub.NextSpan(); job.span = s`.
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, l := range as.Lhs {
			if _, ok := l.(*ast.SelectorExpr); ok {
				if ff.exprTags(as.Rhs[i], markers)[flowTag{kind: flowSpan}] {
					ff.spanFieldStore = true
				}
			}
		}
		return true
	})
	return ff
}

// exprTags resolves the provenance tags of an expression under the
// current fact table.
func (ff *funcFlow) exprTags(e ast.Expr, markers *Markers) map[flowTag]bool {
	out := make(map[flowTag]bool)
	ff.collectTags(e, markers, out)
	return out
}

func (ff *funcFlow) collectTags(e ast.Expr, markers *Markers, out map[flowTag]bool) {
	switch e := e.(type) {
	case *ast.Ident:
		for tag := range ff.tags[identObj(ff.info, e)] {
			out[tag] = true
		}
		if markers != nil {
			if key := globalVarKey(ff.info, e); key != "" && markers.ShardLocalVars[key] {
				out[flowTag{kind: flowShardLocal, key: key}] = true
			}
		}
	case *ast.SelectorExpr:
		if markers != nil {
			if key := fieldSelKey(ff.info, e); key != "" && markers.ShardLocalFields[key] {
				out[flowTag{kind: flowShardLocal, key: key}] = true
			}
		}
	case *ast.IndexExpr:
		// An element of a tagged container carries the container's tags:
		// writing through it still lands in the marked storage.
		ff.collectTags(e.X, markers, out)
	case *ast.ParenExpr:
		ff.collectTags(e.X, markers, out)
	case *ast.StarExpr:
		ff.collectTags(e.X, markers, out)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			ff.collectTags(e.X, markers, out)
		}
	case *ast.SliceExpr:
		ff.collectTags(e.X, markers, out)
	case *ast.CallExpr:
		switch fn := e.Fun.(type) {
		case *ast.Ident:
			// The builtin resolves to *types.Builtin (or is absent from
			// Uses); a local function shadowing the name resolves to
			// *types.Func and must not tag.
			if fn.Name == "recover" {
				if obj := ff.info.Uses[fn]; obj == nil || isBuiltin(obj) {
					out[flowTag{kind: flowRecover}] = true
				}
			}
		case *ast.SelectorExpr:
			if fn.Sel.Name == "NextSpan" {
				out[flowTag{kind: flowSpan}] = true
			}
		}
	}
}

// isBuiltin reports whether obj is a predeclared builtin function.
func isBuiltin(obj types.Object) bool {
	_, ok := obj.(*types.Builtin)
	return ok
}

// identObj resolves an identifier to its object via Uses or Defs.
func identObj(info *types.Info, ident *ast.Ident) types.Object {
	if obj := info.Uses[ident]; obj != nil {
		return obj
	}
	return info.Defs[ident]
}

// fieldSelKey returns the marker key "pkgpath.Type.Field" for a selector
// that resolves to a struct field, or "".
func fieldSelKey(info *types.Info, sel *ast.SelectorExpr) string {
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return ""
	}
	field, ok := selection.Obj().(*types.Var)
	if !ok || field.Pkg() == nil {
		return ""
	}
	owner := ownerNamed(selection.Recv())
	if owner == nil {
		return ""
	}
	return field.Pkg().Path() + "." + owner.Obj().Name() + "." + field.Name()
}

// globalVarKey returns "pkgpath.name" when ident resolves to a
// package-scope variable, or "".
func globalVarKey(info *types.Info, ident *ast.Ident) string {
	v, ok := identObj(info, ident).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Pkg().Path() + "." + v.Name()
}

// ---------------------------------------------------------------------
// Cross-package function summaries.

// spanConstRe splits a span event constant name into its family and role.
var spanConstRe = regexp.MustCompile(`^Ev([A-Za-z0-9]+?)(Begin|End|Abort)$`)

// FuncSummary is the one-level syntactic summary of a function the
// analyzers consult at call sites.  It deliberately excludes function
// literals nested in the body: a close inside a completion callback does
// not happen when the function is called, so it must not count as a
// closer at the call site.
type FuncSummary struct {
	// Opens / Closes are the span families whose Begin (resp. End/Abort)
	// constants the body references directly.
	Opens  map[string]bool
	Closes map[string]bool
	// WritesShardLocal lists the //ftlint:shardlocal marker keys the body
	// writes directly (assignment, IncDec, or element store).
	WritesShardLocal []string
	// CrossShard / BestEffort mirror the function's own markers.
	CrossShard bool
	BestEffort bool
	// ErrorResult reports that the last result is of type error.
	ErrorResult bool
}

// Summaries is the cross-package summary table, keyed like Markers:
// "pkgpath.Func" or "pkgpath.Type.Method".
type Summaries struct {
	byKey map[string]*FuncSummary
}

// Lookup returns the summary for a types.Func, or nil when the function
// was not part of the load (stdlib, interface method with no static
// callee).
func (s *Summaries) Lookup(fn *types.Func) *FuncSummary {
	if s == nil || fn == nil {
		return nil
	}
	return s.byKey[funcKey(fn)]
}

// LookupKey returns the summary under an explicit marker-style key.
func (s *Summaries) LookupKey(key string) *FuncSummary {
	if s == nil {
		return nil
	}
	return s.byKey[key]
}

// buildSummaries scans every loaded package once and produces the table.
func buildSummaries(pkgs []*Package, markers *Markers) *Summaries {
	table := &Summaries{byKey: make(map[string]*FuncSummary)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				key := funcDeclKey(pkg.Path, fd)
				sum := summarize(pkg.Info, fd.Body, markers)
				sum.CrossShard = markers.CrossShardFuncs[key]
				sum.BestEffort = markers.BestEffortFuncs[key]
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					sig := fn.Type().(*types.Signature)
					if n := sig.Results().Len(); n > 0 {
						sum.ErrorResult = isErrorType(sig.Results().At(n - 1).Type())
					}
				}
				table.byKey[key] = sum
			}
		}
	}
	return table
}

func summarize(info *types.Info, body *ast.BlockStmt, markers *Markers) *FuncSummary {
	sum := &FuncSummary{Opens: make(map[string]bool), Closes: make(map[string]bool)}
	writes := make(map[string]bool)
	walkOwnStmts(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.Ident:
			if family, role := spanConst(info, n); family != "" {
				if role == "Begin" {
					sum.Opens[family] = true
				} else {
					sum.Closes[family] = true
				}
			}
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				for _, key := range writeTargets(info, l, markers) {
					writes[key] = true
				}
			}
		case *ast.IncDecStmt:
			for _, key := range writeTargets(info, n.X, markers) {
				writes[key] = true
			}
		}
	})
	for key := range writes {
		sum.WritesShardLocal = append(sum.WritesShardLocal, key)
	}
	return sum
}

// walkOwnStmts visits every node of body except those inside nested
// function literals.
func walkOwnStmts(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// spanConst reports the span family ("Repair") and role ("Begin", "End",
// "Abort") when ident resolves to an obs event-type constant of the
// EvXxxBegin family, or ("", "").
func spanConst(info *types.Info, ident *ast.Ident) (family, role string) {
	c, ok := identObj(info, ident).(*types.Const)
	if !ok || c.Pkg() == nil {
		return "", ""
	}
	m := spanConstRe.FindStringSubmatch(c.Name())
	if m == nil {
		return "", ""
	}
	return m[1], m[2]
}

// writeTargets resolves an assignment target to the //ftlint:shardlocal
// marker keys it writes into: a marked field, a marked package var, or an
// element/deref of either.  No aliasing here — summaries stay one level.
func writeTargets(info *types.Info, target ast.Expr, markers *Markers) []string {
	switch target := target.(type) {
	case *ast.Ident:
		if key := globalVarKey(info, target); key != "" && markers.ShardLocalVars[key] {
			return []string{key}
		}
	case *ast.SelectorExpr:
		if key := fieldSelKey(info, target); key != "" && markers.ShardLocalFields[key] {
			return []string{key}
		}
	case *ast.IndexExpr:
		return writeTargets(info, target.X, markers)
	case *ast.StarExpr:
		return writeTargets(info, target.X, markers)
	case *ast.ParenExpr:
		return writeTargets(info, target.X, markers)
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
