package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanBalance turns the span.Builder conservation invariant into a
// compile-time check: every obs.EvXxxBegin emit must be matched by the
// family's End or Abort on every return and panic path.  The runtime
// tolerates an unbalanced span by closing it at the horizon — which
// silently misattributes the dangling interval to the wrong phase, so
// the checker demands static balance instead.
//
// A Begin is considered balanced when one of these holds, checked in
// order (the sanctions mirror the handoff idioms the codebase actually
// uses — see DESIGN §5.13 for the soundness caveats):
//
//  1. a defer in the function closes the family (directly or via a
//     callee whose summary closes it) — covers every exit at once;
//  2. a function literal nested in the function closes the family — the
//     completion-callback pattern (ckpt store/drain callbacks, restart
//     fetch joins);
//  3. the Begin line carries //ftlint:handoff — the marker is validated:
//     some other function in the package must close the family, or the
//     marker itself is reported;
//  4. the function stores a NextSpan() handle into a struct field (seen
//     through the alias engine) and another function in the package
//     closes the family — the field-handoff pattern (pcl/vcl ckptSpan,
//     ftpm repairSpan/restartSpan);
//  5. the function itself closes the family: then every CFG path from
//     the Begin must reach a close — a direct End/Abort reference or a
//     call to a summarized closer — before a return, panic, or the end
//     of the function.
var SpanBalance = &Analyzer{
	Name: "spanbalance",
	Doc:  "every span Begin emit must be closed on all return and panic paths",
	Run:  runSpanBalance,
}

func runSpanBalance(pass *Pass) error {
	if !inScope("spanbalance", pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanUnit(pass, fd.Body)
			// Each nested function literal is its own unit: it runs at a
			// different time than its parent, so its Begins balance (or
			// hand off) independently.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkSpanUnit(pass, lit.Body)
				}
				return true
			})
		}
	}
	return nil
}

// spanRef is one reference to an EvXxx{Begin,End,Abort} constant.
type spanRef struct {
	pos    token.Pos
	family string
	role   string
}

func checkSpanUnit(pass *Pass, body *ast.BlockStmt) {
	opens := spanRefs(pass.TypesInfo, body, "Begin")
	if len(opens) == 0 {
		return
	}
	closes := spanRefs(pass.TypesInfo, body, "")
	deferred := deferredCloserFamilies(pass, body)
	nested := nestedCloserFamilies(pass, body)
	unitCloses := make(map[string]bool)
	for _, ref := range closes {
		if ref.role != "Begin" {
			unitCloses[ref.family] = true
		}
	}
	for _, key := range ownCloserCalls(pass, body) {
		unitCloses[key] = true
	}
	var cfg *funcCFG
	flow := analyzeFlow(pass.TypesInfo, body, pass.Markers)
	for _, open := range opens {
		if deferred[open.family] || nested[open.family] {
			continue
		}
		if pass.Handoff(open.pos) {
			if !packageCloses(pass, open.family) {
				pass.Reportf(open.pos,
					"Ev%sBegin marked //ftlint:handoff but no function in this package closes the span (Ev%sEnd/Ev%sAbort)",
					open.family, open.family, open.family)
			}
			continue
		}
		if flow.spanFieldStore && packageCloses(pass, open.family) {
			// Field handoff: the span handle escaped into a struct field
			// and a later closer in the package owns it (pcl/vcl
			// ckptSpan, ftpm repairSpan/restartSpan).
			continue
		}
		if !unitCloses[open.family] {
			pass.Reportf(open.pos,
				"Ev%sBegin is never closed: no Ev%sEnd/Ev%sAbort in this function, no handoff (field store, callback, or //ftlint:handoff)",
				open.family, open.family, open.family)
			continue
		}
		if cfg == nil {
			cfg = buildCFG(body)
		}
		if kind, leak := unbalancedExit(pass, cfg, open); leak {
			pass.Reportf(open.pos,
				"Ev%sBegin is not closed on %s (missing Ev%sEnd/Ev%sAbort)",
				open.family, exitDesc(kind), open.family, open.family)
		}
	}
}

func exitDesc(kind exitKind) string {
	switch kind {
	case exitReturn:
		return "a return path"
	case exitPanic:
		return "a panic path"
	default:
		return "the fall-through path"
	}
}

// spanRefs collects span-constant references at the unit's own level
// (excluding nested function literals).  role "" collects every role.
func spanRefs(info *types.Info, body *ast.BlockStmt, role string) []spanRef {
	var out []spanRef
	walkOwnStmts(body, func(n ast.Node) {
		ident, ok := n.(*ast.Ident)
		if !ok {
			return
		}
		if family, r := spanConst(info, ident); family != "" && (role == "" || r == role) {
			out = append(out, spanRef{pos: ident.Pos(), family: family, role: r})
		}
	})
	return out
}

// ownCloserCalls returns the families closed by calls (at the unit's own
// level) to functions whose summaries close a span family.
func ownCloserCalls(pass *Pass, body *ast.BlockStmt) []string {
	var out []string
	walkOwnStmts(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		for family := range calleeCloses(pass, call) {
			out = append(out, family)
		}
	})
	return out
}

// calleeCloses resolves a call's static callee and returns the span
// families its summary closes.
func calleeCloses(pass *Pass, call *ast.CallExpr) map[string]bool {
	fn := staticCallee(pass.TypesInfo, call)
	if fn == nil {
		return nil
	}
	sum := pass.Summaries.Lookup(fn)
	if sum == nil {
		return nil
	}
	return sum.Closes
}

// staticCallee returns the *types.Func a call resolves to, or nil for
// calls through function values, interfaces, or builtins.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = identObj(info, fun)
	case *ast.SelectorExpr:
		obj = identObj(info, fun.Sel)
	default:
		return nil
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// deferredCloserFamilies collects the families closed by defer
// statements anywhere in the unit's own statements.
func deferredCloserFamilies(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	walkOwnStmts(body, func(n ast.Node) {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		// Anything in the deferred call subtree counts: a closure body
		// that references the close constant, a close constant passed as
		// an argument (`defer emit(EvDrainEnd)`), or a deferred call to a
		// summarized closer.
		for family := range closerRefsDeep(pass, def.Call) {
			out[family] = true
		}
	})
	return out
}

// nestedCloserFamilies collects the families closed inside function
// literals nested anywhere in the unit (at any depth): a completion
// callback that emits the End, or that calls a summarized closer.
func nestedCloserFamilies(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		for family := range closerRefsDeep(pass, lit.Body) {
			out[family] = true
		}
		return false // closerRefsDeep already descended
	})
	return out
}

// closerRefsDeep scans a whole subtree (nested literals included) for
// close references and closer calls.
func closerRefsDeep(pass *Pass, root ast.Node) map[string]bool {
	out := make(map[string]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if family, role := spanConst(pass.TypesInfo, n); family != "" && role != "Begin" {
				out[family] = true
			}
		case *ast.CallExpr:
			for family := range calleeCloses(pass, n) {
				out[family] = true
			}
		}
		return true
	})
	return out
}

// packageCloses reports whether any function in the pass's package
// closes the family, per the summary table.
func packageCloses(pass *Pass, family string) bool {
	prefix := pass.Pkg.Path() + "."
	for key, sum := range pass.Summaries.byKey {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix && sum.Closes[family] {
			return true
		}
	}
	return false
}

// unbalancedExit walks the CFG from the Begin's statement and reports
// the first exit kind reachable without passing a close of the family.
func unbalancedExit(pass *Pass, cfg *funcCFG, open spanRef) (exitKind, bool) {
	start := cfg.nodeAt(open.pos)
	if start == nil {
		return exitNone, false
	}
	// A close in the same statement after the Begin (mlog's adjacent
	// emit pattern collapses here when both live in one statement).
	if nodeClosesAfter(pass, start, open.family, open.pos) {
		return exitNone, false
	}
	visited := make(map[*cfgNode]bool)
	var dfs func(n *cfgNode) (exitKind, bool)
	dfs = func(n *cfgNode) (exitKind, bool) {
		if n.exit != exitNone {
			return n.exit, true
		}
		if visited[n] {
			return exitNone, false
		}
		visited[n] = true
		if nodeClosesAfter(pass, n, open.family, token.NoPos) {
			return exitNone, false
		}
		for _, succ := range n.succs {
			if kind, leak := dfs(succ); leak {
				return kind, true
			}
		}
		return exitNone, false
	}
	for _, succ := range start.succs {
		if kind, leak := dfs(succ); leak {
			return kind, true
		}
	}
	return exitNone, false
}

// nodeClosesAfter reports whether the node's own expressions contain a
// close of the family positioned after `after` (NoPos accepts any
// position).  Nested function literals do not count: their code runs
// later, if at all.
func nodeClosesAfter(pass *Pass, n *cfgNode, family string, after token.Pos) bool {
	if n.stmt == nil {
		return false
	}
	found := false
	for _, owned := range ownedExprs(n.stmt) {
		ast.Inspect(owned, func(node ast.Node) bool {
			if _, ok := node.(*ast.FuncLit); ok {
				return false
			}
			switch node := node.(type) {
			case *ast.Ident:
				if fam, role := spanConst(pass.TypesInfo, node); fam == family && role != "Begin" {
					if after == token.NoPos || node.Pos() > after {
						found = true
					}
				}
			case *ast.CallExpr:
				if calleeCloses(pass, node)[family] {
					if after == token.NoPos || node.Pos() > after {
						found = true
					}
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
