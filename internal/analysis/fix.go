package analysis

import (
	"fmt"
	"go/token"
	"os"
	"sort"
)

// ApplyFixes applies every suggested fix attached to diags to the files
// on disk and returns the paths it rewrote, sorted.  Edits are applied
// per file in descending offset order so earlier offsets stay valid;
// overlapping edits keep the first (by diagnostic order) and drop the
// rest — a second `-fix` run picks up whatever remains, and the
// idempotency test pins that a clean tree stays byte-identical.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic) ([]string, error) {
	type edit struct {
		off, end int
		text     string
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		for _, fix := range d.Fixes {
			if !fix.Pos.IsValid() || !fix.End.IsValid() {
				continue
			}
			pos := fset.Position(fix.Pos)
			end := fset.Position(fix.End)
			if pos.Filename == "" || pos.Filename != end.Filename {
				continue
			}
			perFile[pos.Filename] = append(perFile[pos.Filename],
				edit{off: pos.Offset, end: end.Offset, text: fix.New})
		}
	}
	var files []string
	for name := range perFile {
		files = append(files, name)
	}
	sort.Strings(files)
	for _, name := range files {
		edits := perFile[name]
		sort.SliceStable(edits, func(i, j int) bool { return edits[i].off > edits[j].off })
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		lastStart := len(src) + 1
		out := src
		for _, e := range edits {
			if e.off < 0 || e.end > len(src) || e.off > e.end || e.end > lastStart {
				continue // out of bounds or overlapping a later-offset edit
			}
			out = append(out[:e.off], append([]byte(e.text), out[e.end:]...)...)
			lastStart = e.off
		}
		if err := os.WriteFile(name, out, 0o644); err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %w", err)
		}
	}
	return files, nil
}

// FixCount returns how many of the diagnostics carry at least one
// applicable fix.
func FixCount(diags []Diagnostic) int {
	n := 0
	for _, d := range diags {
		for _, fix := range d.Fixes {
			if fix.Pos.IsValid() {
				n++
				break
			}
		}
	}
	return n
}
