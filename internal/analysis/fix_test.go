package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// copyFixture copies every .go file of a fixture dir into a temp dir so
// ApplyFixes can rewrite them without touching the checked-in sources.
func copyFixture(t *testing.T, dir string) string {
	t.Helper()
	tmp := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tmp, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return tmp
}

// readAll concatenates the .go files of a dir in name order.
func readAll(t *testing.T, dir string) []byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".go" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, data...)
	}
	return out
}

// TestFixIdempotent pins the -fix contract: applying the suggested fixes
// once resolves every fixable diagnostic, and a second -fix run changes
// nothing — for the mapiter sort-wrapper insertion, the errtype %w
// rewrite, and the dead-waiver comment removal.
func TestFixIdempotent(t *testing.T) {
	cases := []struct {
		name     string
		dir      string
		path     string
		analyzer *Analyzer
	}{
		{"mapiter-sort-insert", "testdata/src/mapiter/sweep", "mapiter.test/sweep", MapIter},
		{"errtype-wrap", "testdata/src/errtype/errs", "errtype.test/errs", ErrType},
		{"deadwaiver-removal", "testdata/src/deadwaiver/sweep", "deadwaiver.test/sweep", MapIter},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tmp := copyFixture(t, tc.dir)
			before := readAll(t, tmp)

			load := func() (*Package, []Diagnostic) {
				t.Helper()
				pkg, err := NewLoader().LoadDir(tmp, tc.path)
				if err != nil {
					t.Fatal(err)
				}
				diags, err := Run([]*Package{pkg}, []*Analyzer{tc.analyzer})
				if err != nil {
					t.Fatal(err)
				}
				return pkg, diags
			}

			pkg, diags := load()
			if FixCount(diags) == 0 {
				t.Fatal("fixture carries no fixable diagnostics; the test is vacuous")
			}
			changed, err := ApplyFixes(pkg.Fset, diags)
			if err != nil {
				t.Fatal(err)
			}
			if len(changed) == 0 {
				t.Fatal("first -fix pass rewrote no files")
			}
			after1 := readAll(t, tmp)
			if bytes.Equal(before, after1) {
				t.Fatal("first -fix pass left sources byte-identical")
			}

			// Second pass: every fixable diagnostic must be gone, and
			// applying again must not move a byte.
			pkg2, diags2 := load()
			if n := FixCount(diags2); n != 0 {
				t.Fatalf("after -fix, %d fixable diagnostic(s) remain: %v", n, diags2)
			}
			if _, err := ApplyFixes(pkg2.Fset, diags2); err != nil {
				t.Fatal(err)
			}
			after2 := readAll(t, tmp)
			if !bytes.Equal(after1, after2) {
				t.Fatal("second -fix pass changed the sources")
			}
		})
	}
}
