// Fixture: mapiter must flag map ranges feeding order-sensitive sinks in
// a simulation package (import path base "sweep"), recognize the
// sort-after idiom, and honor the //ftlint:ordered waiver.
package sweep

import (
	"sort"

	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// collectBad appends map values to the returned slice without restoring
// a total order.
func collectBad(m map[string]int) []int {
	var out []int
	for _, v := range m { // want "map iteration appends to returned slice .out. in random order"
		out = append(out, v)
	}
	return out
}

// collectSorted restores a total order after the loop — allowed.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectWaived documents that the caller ignores order.
func collectWaived(m map[string]int) []int {
	var sum []int
	//ftlint:ordered
	for _, v := range m {
		sum = append(sum, v)
	}
	return sum
}

// localOnly accumulates into a slice that never escapes — allowed.
func localOnly(m map[string]int) int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	total := 0
	for _, v := range vals {
		total += v
	}
	return total
}

// emitBad mutates the observability registry in map-permutation order.
func emitBad(m map[string]int, met *obs.Metrics) {
	for range m { // want "map iteration emits obs Inc calls in random order"
		met.Inc("sweep.points")
	}
}

// scheduleBad schedules kernel events in map-permutation order, which
// assigns their tie-breaking sequence numbers by the permutation.
func scheduleBad(k *sim.Kernel, waits map[int]sim.Time) {
	for _, d := range waits { // want "map iteration calls sim.After, ordering kernel events"
		k.After(d, func() {})
	}
}
