// Fixture: errtype must flag raw classification of recover() payloads,
// sentinel == comparisons, error type assertions, fmt.Errorf flattening
// an error through %s/%v, and discarded commit-path error results
// (import path base "errs"), while honoring the Is-method exemption, the
// //ftlint:besteffort marker and //ftlint:allow.
package errs

import (
	"errors"
	"fmt"
)

// ErrStale is a sentinel in the mpi.ErrProcFailed mold.
var ErrStale = errors.New("stale image")

// cfgError mirrors ftpm.ConfigError.
type cfgError struct{ field string }

func (e *cfgError) Error() string { return e.field }

// Is implements the errors.Is protocol; the == against the sentinel here
// IS the match errors.Is dispatches to — exempt.
func (e *cfgError) Is(target error) bool {
	return target == ErrStale
}

// classifyRaw asserts on a recover() payload directly instead of going
// through mpi.AsFTError.
func classifyRaw() (err error) {
	defer func() {
		r := recover()
		if e, ok := r.(error); ok { // want "type assertion on a recover\\(\\) result; classify FT panics with mpi.AsFTError"
			err = e
		}
	}()
	return nil
}

// classifySwitch launders the payload through a local before the type
// switch; the alias engine still traces it to recover().
func classifySwitch() {
	defer func() {
		r := recover()
		v := r
		switch v.(type) { // want "type assertion on a recover\\(\\) result"
		case error:
		}
	}()
}

// compareSentinel breaks as soon as a wrap layer appears.
func compareSentinel(err error) bool {
	return err == ErrStale // want "comparing against sentinel error ErrStale with ==; use errors.Is"
}

// compareIs is the correct form.
func compareIs(err error) bool {
	return errors.Is(err, ErrStale)
}

// assertConcrete breaks under wrapping too.
func assertConcrete(err error) string {
	if ce, ok := err.(*cfgError); ok { // want "type assertion on an error value; use errors.As"
		return ce.field
	}
	return ""
}

// wrapFlattened severs the chain errors.As needs; -fix rewrites the verb.
func wrapFlattened(err error) error {
	return fmt.Errorf("commit wave: %v", err) // want "fmt.Errorf flattens an error through %v; wrap with %w"
}

// wrapProper keeps the chain intact.
func wrapProper(err error) error {
	return fmt.Errorf("commit wave: %w", err)
}

// commit is a commit-path callee: its error must not be dropped.
func commit(wave int) error {
	if wave < 0 {
		return ErrStale
	}
	return nil
}

// bestEffortFlush may be fire-and-forget by contract.
//
//ftlint:besteffort
func bestEffortFlush() error { return nil }

// dropBare discards the commit error in a bare call statement.
func dropBare() {
	commit(1) // want "result of commit includes an error that is silently discarded"
}

// dropBlank discards it through the blank identifier.
func dropBlank() {
	_ = commit(2) // want "error result of commit assigned to _"
}

// dropSanctioned discards a //ftlint:besteffort callee's error — allowed.
func dropSanctioned() {
	bestEffortFlush()
}

// dropWaived is excused at the call site instead of the callee.
func dropWaived() {
	//ftlint:allow errtype
	commit(3)
}

// handled is the normal form.
func handled() error {
	if err := commit(4); err != nil {
		return fmt.Errorf("checkpoint commit: %w", err)
	}
	return nil
}
