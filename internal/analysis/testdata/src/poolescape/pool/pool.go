// Fixture: poolescape must flag pooled pointers stored into fields or
// package variables that outlive the release back to the pool, honor
// //ftlint:pool sanctioned holders, exempt clone results, and honor the
// //ftlint:allow waiver.
package pool

// rec is a pool-recycled record: after release the same object is handed
// out again with new contents.
//
//ftlint:pooled
type rec struct{ n int }

// clone returns a fresh copy safe to retain.
func (r *rec) clone() *rec { c := *r; return &c }

// owner holds the pool.
type owner struct {
	//ftlint:pool
	free []*rec

	held *rec // not sanctioned storage
}

//ftlint:pool
var freeList []*rec

var leaked *rec

// get recycles through the sanctioned free list — no diagnostics.
func (o *owner) get() *rec {
	if n := len(o.free); n > 0 {
		r := o.free[n-1]
		o.free = o.free[:n-1]
		return r
	}
	return &rec{}
}

// put returns records to the sanctioned holders — no diagnostics.
func (o *owner) put(r *rec) {
	o.free = append(o.free, r)
	freeList = append(freeList, r)
}

// retain stores a pooled pointer past its release.
func (o *owner) retain(r *rec) {
	o.held = r // want "pooled poolescape.test/pool.rec pointer stored into field owner.held"
	leaked = r // want "stored into package variable .leaked."
}

// retainClone stores a fresh copy — allowed.
func (o *owner) retainClone(r *rec) {
	o.held = r.clone()
}

// retainWaived documents why the store is safe.
func (o *owner) retainWaived(r *rec) {
	o.held = r //ftlint:allow poolescape
}
