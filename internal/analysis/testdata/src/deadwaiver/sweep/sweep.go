// Fixture: the driver's dead-waiver check (run here under mapiter, in a
// simulation package by import path base "sweep") must flag waivers that
// suppress nothing, keep live waivers, and leave waivers naming analyzers
// outside the enabled set alone — a partial -only run cannot judge them.
package sweep

// collectWaived needs its waiver: the map range feeds the returned slice.
func collectWaived(m map[string]int) []int {
	var out []int
	//ftlint:ordered
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// countOnly triggers no mapiter diagnostic, so its waiver is dead.
func countOnly(m map[string]int) int {
	n := 0
	//ftlint:ordered // want "//ftlint:ordered suppresses no diagnostic; remove dead waiver"
	for range m {
		n++
	}
	return n
}

// allowDead names an enabled analyzer but suppresses nothing.
func allowDead(m map[string]int) int {
	//ftlint:allow mapiter // want "//ftlint:allow mapiter suppresses no diagnostic; remove dead waiver"
	n := len(m)
	return n
}

// allowOtherAnalyzer names an analyzer this run did not enable; only a
// full run may judge it, so it is not reported here.
func allowOtherAnalyzer(m map[string]int) int {
	//ftlint:allow nodeterm
	return len(m)
}
