// Fixture: nodeterm must flag every wall-clock and ambient-randomness
// reference in a simulation package (import path base "sim"), and honor
// the //ftlint:allow waiver.
package sim

import (
	crand "crypto/rand"
	"math/rand"
	"os"
	"time"
)

// stamp reads the wall clock three ways.
func stamp() (time.Time, time.Duration) {
	t := time.Now()              // want "time.Now reads the wall clock"
	d := time.Since(t)           // want "time.Since reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep blocks on host time"
	return t, d
}

// draw uses ambient entropy sources.
func draw(buf []byte) int {
	n := rand.Intn(8) // want "rand.Intn draws from the global math/rand source"
	crand.Read(buf)   // want "crypto/rand.Read is hardware entropy"
	n += os.Getpid()  // want "os.Getpid is per-process entropy"
	return n
}

// seeded shows the sanctioned form: an explicitly seeded local source.
func seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.ExpFloat64()
}

// waived shows the escape hatch for host-side instrumentation.
func waived() time.Time {
	return time.Now() //ftlint:allow nodeterm
}
