// Fixture: reproduction of the exact mistake nodeterm exists to catch —
// a failure-model helper drawing exponential variates from the global
// math/rand source instead of a seeded generator.  One such call makes
// every fault-injection schedule vary across runs of the same seed.
package failure

import "math/rand"

// badExponential is the broken form: rand.ExpFloat64 reads the
// per-process global source.
func badExponential(mtbf float64) float64 {
	return rand.ExpFloat64() * mtbf // want "rand.ExpFloat64 draws from the global math/rand source"
}

// goodExponential is the repository's real shape (failure.Exponential):
// the generator is constructed from the run's seed.
func goodExponential(seed int64, mtbf float64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.ExpFloat64() * mtbf
}
