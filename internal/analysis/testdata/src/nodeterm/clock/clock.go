// Fixture: packages outside the simulation set (import path base
// "clock") may read the wall clock — they time the simulator, they do
// not run inside it.  No diagnostics expected.
package clock

import (
	"math/rand"
	"time"
)

func elapsed(start time.Time) time.Duration {
	return time.Since(start)
}

func jitter() int {
	return rand.Intn(100)
}
