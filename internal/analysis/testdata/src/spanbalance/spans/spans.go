// Fixture: spanbalance must demand an End/Abort for every Begin on all
// return and panic paths (import path base "spans"), recognize the
// handoff sanctions (defer, completion callback, field store,
// //ftlint:handoff), validate handoff markers against the package's
// closers, and honor //ftlint:allow.
package spans

// ev mirrors obs.EventType; spanbalance keys on the constant names.
type ev int

const (
	EvRepairBegin ev = iota
	EvRepairEnd
	EvRepairAbort
	EvDrainBegin
	EvDrainEnd
	EvFlushBegin // no closer anywhere in this package
)

func emit(ev) {}

// repairFallback is the known-hard case from internal/ftpm: the repair
// window opens, then a fallback path returns early before the End.
func repairFallback(ok bool) {
	emit(EvRepairBegin) // want "EvRepairBegin is not closed on a return path"
	if !ok {
		return // fallback to classic restart leaks the window
	}
	emit(EvRepairEnd)
}

// repairBalanced closes the window on both paths: Abort on the fallback,
// End on the success path.
func repairBalanced(ok bool) {
	emit(EvRepairBegin)
	if !ok {
		emit(EvRepairAbort)
		return
	}
	emit(EvRepairEnd)
}

// drainPanics leaks the span when validation panics.
func drainPanics(n int) {
	emit(EvDrainBegin) // want "EvDrainBegin is not closed on a panic path"
	if n < 0 {
		panic("negative drain")
	}
	emit(EvDrainEnd)
}

// drainDeferred closes via defer — covers every exit, panics included.
func drainDeferred(n int) {
	emit(EvDrainBegin)
	defer emit(EvDrainEnd)
	if n < 0 {
		panic("negative drain")
	}
}

// drainCallback hands the close to a completion callback, the ckpt
// store/drain idiom: the span closes when the flow completes, not when
// this function returns.
func drainCallback(onDone func(func())) {
	emit(EvDrainBegin)
	onDone(func() { emit(EvDrainEnd) })
}

// hub and job model the ftpm field-handoff idiom.
type hub struct{ next int }

func (h *hub) NextSpan() int { h.next++; return h.next }

type job struct {
	span int
	hub  *hub
}

// beginRepair stores the span handle into a field; finishRepair closes
// the family later.  The alias engine sees the store, the summary table
// finds the closer.
func (j *job) beginRepair() {
	j.span = j.hub.NextSpan()
	emit(EvRepairBegin)
}

func (j *job) finishRepair() {
	emit(EvRepairEnd)
	j.span = 0
}

// repairHandoff documents a closer outside this function; the marker is
// accepted because this package does close the Repair family.
func repairHandoff() {
	//ftlint:handoff
	emit(EvRepairBegin)
}

// flushHandoffInvalid claims a handoff, but nothing in the package emits
// EvFlushEnd or EvFlushAbort — the marker itself is reported.
func flushHandoffInvalid() {
	//ftlint:handoff
	emit(EvFlushBegin) // want "EvFlushBegin marked //ftlint:handoff but no function in this package closes the span"
}

// repairWaived is unbalanced but explicitly excused.
func repairWaived(ok bool) {
	//ftlint:allow spanbalance
	emit(EvRepairBegin)
	if ok {
		emit(EvRepairEnd)
	}
}

// drainFallthrough closes on one branch but falls off the end of the
// function on the other.
func drainFallthrough(ok bool) {
	emit(EvDrainBegin) // want "EvDrainBegin is not closed on the fall-through path"
	if ok {
		emit(EvDrainEnd)
	}
}

// drainNeverClosed has no End in the function and no handoff at all.
func drainNeverClosed() {
	emit(EvDrainBegin) // want "EvDrainBegin is never closed"
}
