// Fixture: metricowner must flag a metric name literal mutated both from
// a spawned goroutine and elsewhere, allow single-scope and
// private-registry-plus-Merge patterns, and honor //ftlint:allow.
package met

import "ftckpt/internal/obs"

// record writes from the declaration's own goroutine.
func record(m *obs.Metrics) {
	m.Inc("points.done")
}

// spawnBad writes the same name from a bare goroutine: two scopes, one
// spawned.
func spawnBad(m *obs.Metrics) {
	go func() {
		m.Inc("points.done") // want "metric .points.done. is written from 2 scopes"
	}()
}

// spawnPrivate is the sanctioned pattern: the goroutine owns a private
// registry, folded in with Merge (exempt) afterwards.
func spawnPrivate(m *obs.Metrics) {
	priv := obs.NewMetrics()
	go func() {
		priv.Inc("points.private")
	}()
	m.Merge(priv)
}

// spawnWaived documents that the two writers are phase-separated.
func spawnWaived(m *obs.Metrics) {
	m.Inc("points.waived")
	go func() {
		m.Inc("points.waived") //ftlint:allow metricowner
	}()
}
