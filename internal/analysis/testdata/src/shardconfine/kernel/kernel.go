// Fixture: shardconfine must confine writes to //ftlint:shardlocal state
// (import path base "kernel") to the owner type's methods and
// //ftlint:crossshard functions, track aliases across assignment chains,
// hold call sites to the callee's summary, and honor //ftlint:allow.
package kernel

// queue is one partition's staging state, mirroring sim.shard.
type queue struct {
	id int
	//ftlint:shardlocal
	heap []int32
	//ftlint:shardlocal
	dead int
}

// pending mirrors a package-level staging buffer.
//
//ftlint:shardlocal
var pending []int32

// push is the owner mutating itself — a shard's own staging context.
func (q *queue) push(v int32) {
	q.heap = append(q.heap, v)
}

// drop is an owner method too; calling it from elsewhere is what the
// call-site rule polices.
func (q *queue) drop() {
	q.dead++
}

// route is the sanctioned cross-shard mutation point.
//
//ftlint:crossshard
func route(q *queue, v int32) {
	q.heap = append(q.heap, v)
	pending = append(pending, v)
}

// steal writes a shard's counter from outside any sanction.
func steal(q *queue) {
	q.dead++ // want "write to shard-local queue.dead outside its owner's methods"
}

// stealElem writes through an element of marked state.
func stealElem(q *queue) {
	q.heap[0] = 7 // want "write to shard-local queue.heap outside its owner's methods"
}

// alias launders the heap through a local chain; the dataflow engine
// still resolves the write back to the marker.
func alias(q *queue) {
	h := q.heap
	g := h
	g[0] = 9 // want "write to shard-local queue.heap outside its owner's methods"
}

// launder calls an owner method from an unsanctioned context: the callee
// summary says drop writes queue.dead, so the call site is held to the
// same rule.
func launder(q *queue) {
	q.drop() // want "call to drop writes shard-local queue.dead"
}

// relay calls the crossshard API — the summary's CrossShard bit clears
// the call site.
func relay(q *queue, v int32) {
	route(q, v)
}

// globalSteal writes the package-level marked buffer.
func globalSteal(v int32) {
	pending = append(pending, v) // want "write to shard-local pending outside its owner's methods"
}

// waived documents a known-benign write during teardown.
func waived(q *queue) {
	//ftlint:allow shardconfine
	q.dead = 0
}
