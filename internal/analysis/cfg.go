package analysis

import (
	"go/ast"
	"go/token"
)

// This file builds a statement-level control-flow graph over a function
// body, precise enough for "does every path from this statement reach a
// closer before an exit" queries.  Nodes are statements; compound
// statements (if/for/switch/select) get one header node owning their
// init/cond expressions, with edges into the branch bodies.  Three
// synthetic exit nodes distinguish how a path leaves the function:
// return, panic, or falling off the end.
//
// Approximations, chosen to stay small and biased toward extra edges
// (extra paths can only cause false positives, which the fixtures pin):
// labeled break/continue bind to the innermost loop, goto and
// fallthrough fall through to the next statement, and a select with no
// clauses falls through.

type exitKind int

const (
	exitNone exitKind = iota
	exitReturn
	exitPanic
	exitFall
)

type cfgNode struct {
	stmt  ast.Stmt // nil for the synthetic exits
	succs []*cfgNode
	exit  exitKind
}

type funcCFG struct {
	entry  *cfgNode
	byStmt map[ast.Stmt]*cfgNode
	defers []*ast.DeferStmt

	retExit, panicExit, fallExit *cfgNode
}

type cfgBuilder struct {
	cfg       *funcCFG
	breaks    []*cfgNode
	continues []*cfgNode
}

// buildCFG constructs the graph for one function (or function literal)
// body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	cfg := &funcCFG{
		byStmt:    make(map[ast.Stmt]*cfgNode),
		retExit:   &cfgNode{exit: exitReturn},
		panicExit: &cfgNode{exit: exitPanic},
		fallExit:  &cfgNode{exit: exitFall},
	}
	b := &cfgBuilder{cfg: cfg}
	cfg.entry = b.stmts(body.List, cfg.fallExit)
	return cfg
}

func (b *cfgBuilder) node(s ast.Stmt) *cfgNode {
	n := &cfgNode{stmt: s}
	b.cfg.byStmt[s] = n
	return n
}

// stmts wires a statement list so each statement flows to the next, the
// last to follow, and returns the entry node of the list.
func (b *cfgBuilder) stmts(list []ast.Stmt, follow *cfgNode) *cfgNode {
	next := follow
	for i := len(list) - 1; i >= 0; i-- {
		next = b.stmt(list[i], next)
	}
	return next
}

func (b *cfgBuilder) stmt(s ast.Stmt, follow *cfgNode) *cfgNode {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, follow)
	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, follow)
	case *ast.ReturnStmt:
		n := b.node(s)
		n.succs = []*cfgNode{b.cfg.retExit}
		return n
	case *ast.ExprStmt:
		n := b.node(s)
		if isPanicCall(s.X) {
			n.succs = []*cfgNode{b.cfg.panicExit}
		} else {
			n.succs = []*cfgNode{follow}
		}
		return n
	case *ast.IfStmt:
		n := b.node(s)
		n.succs = append(n.succs, b.stmts(s.Body.List, follow))
		if s.Else != nil {
			n.succs = append(n.succs, b.stmt(s.Else, follow))
		} else {
			n.succs = append(n.succs, follow)
		}
		return n
	case *ast.ForStmt:
		n := b.node(s)
		b.breaks = append(b.breaks, follow)
		b.continues = append(b.continues, n)
		bodyEntry := b.stmts(s.Body.List, n)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		n.succs = append(n.succs, bodyEntry)
		if s.Cond != nil {
			// `for {}` only leaves via break/return; adding the fall
			// edge there would invent a path that cannot happen.
			n.succs = append(n.succs, follow)
		}
		return n
	case *ast.RangeStmt:
		n := b.node(s)
		b.breaks = append(b.breaks, follow)
		b.continues = append(b.continues, n)
		bodyEntry := b.stmts(s.Body.List, n)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.continues = b.continues[:len(b.continues)-1]
		n.succs = append(n.succs, bodyEntry, follow)
		return n
	case *ast.SwitchStmt:
		return b.switchNode(s, s.Body, follow)
	case *ast.TypeSwitchStmt:
		return b.switchNode(s, s.Body, follow)
	case *ast.SelectStmt:
		n := b.node(s)
		b.breaks = append(b.breaks, follow)
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			n.succs = append(n.succs, b.stmts(cc.Body, follow))
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		if len(n.succs) == 0 {
			n.succs = []*cfgNode{follow}
		}
		return n
	case *ast.BranchStmt:
		n := b.node(s)
		target := follow
		switch s.Tok {
		case token.BREAK:
			if len(b.breaks) > 0 {
				target = b.breaks[len(b.breaks)-1]
			}
		case token.CONTINUE:
			if len(b.continues) > 0 {
				target = b.continues[len(b.continues)-1]
			}
		}
		n.succs = []*cfgNode{target}
		return n
	case *ast.DeferStmt:
		n := b.node(s)
		b.cfg.defers = append(b.cfg.defers, s)
		n.succs = []*cfgNode{follow}
		return n
	default:
		n := b.node(s)
		n.succs = []*cfgNode{follow}
		return n
	}
}

// switchNode handles switch and type-switch: an edge into every clause
// body, plus a skip edge unless a default clause exists.
func (b *cfgBuilder) switchNode(s ast.Stmt, body *ast.BlockStmt, follow *cfgNode) *cfgNode {
	n := b.node(s)
	b.breaks = append(b.breaks, follow)
	hasDefault := false
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		n.succs = append(n.succs, b.stmts(cc.Body, follow))
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	if !hasDefault {
		n.succs = append(n.succs, follow)
	}
	return n
}

// isPanicCall matches a direct call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	ident, ok := call.Fun.(*ast.Ident)
	return ok && ident.Name == "panic"
}

// nodeAt returns the innermost CFG node whose statement span contains
// pos.  References inside an if/for/switch header resolve to the header
// node; references inside a branch body resolve to the body statement.
func (c *funcCFG) nodeAt(pos token.Pos) *cfgNode {
	var best *cfgNode
	for s, n := range c.byStmt {
		if pos < s.Pos() || pos >= s.End() {
			continue
		}
		if best == nil || (s.Pos() >= best.stmt.Pos() && s.End() <= best.stmt.End()) {
			best = n
		}
	}
	return best
}

// ownedExprs returns the expression subtrees a node's statement itself
// evaluates — excluding nested statements that have their own CFG nodes,
// so an if-header does not absorb its body.  Deferred calls are excluded
// too: they run at function exit, not at the statement.
func ownedExprs(s ast.Stmt) []ast.Node {
	switch s := s.(type) {
	case *ast.IfStmt:
		out := ownedInit(s.Init)
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
		return out
	case *ast.ForStmt:
		out := ownedInit(s.Init)
		if s.Cond != nil {
			out = append(out, s.Cond)
		}
		out = append(out, ownedInit(s.Post)...)
		return out
	case *ast.RangeStmt:
		var out []ast.Node
		for _, e := range []ast.Expr{s.Key, s.Value, s.X} {
			if e != nil {
				out = append(out, e)
			}
		}
		return out
	case *ast.SwitchStmt:
		out := ownedInit(s.Init)
		if s.Tag != nil {
			out = append(out, s.Tag)
		}
		return out
	case *ast.TypeSwitchStmt:
		out := ownedInit(s.Init)
		return append(out, ownedInit(s.Assign)...)
	case *ast.SelectStmt, *ast.DeferStmt:
		return nil
	case *ast.ReturnStmt:
		var out []ast.Node
		for _, e := range s.Results {
			out = append(out, e)
		}
		return out
	case *ast.ExprStmt:
		return []ast.Node{s.X}
	case *ast.SendStmt:
		return []ast.Node{s.Chan, s.Value}
	case *ast.IncDecStmt:
		return []ast.Node{s.X}
	case *ast.GoStmt:
		return []ast.Node{s.Call}
	case *ast.AssignStmt:
		var out []ast.Node
		for _, e := range s.Lhs {
			out = append(out, e)
		}
		for _, e := range s.Rhs {
			out = append(out, e)
		}
		return out
	case *ast.DeclStmt:
		return []ast.Node{s.Decl}
	case *ast.LabeledStmt, *ast.BlockStmt:
		return nil
	default:
		return []ast.Node{s}
	}
}

func ownedInit(s ast.Stmt) []ast.Node {
	if s == nil {
		return nil
	}
	return []ast.Node{s}
}
