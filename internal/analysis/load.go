package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of the enclosing module.  All
// packages of one Loader share a FileSet and an importer, so the standard
// library and common internal dependencies are type-checked once.
//
// Import resolution uses the standard library's source importer, which
// falls back to `go list` for module paths — the process must therefore
// run with its working directory inside the module (cmd/ftlint and `go
// test` both do).  This keeps the loader free of external dependencies;
// see the package comment for why golang.org/x/tools is not used.
type Loader struct {
	Fset *token.FileSet
	// IncludeTests adds in-package _test.go files to each package (files
	// declaring an external <pkg>_test package are always skipped — they
	// would need a second type-check universe and hold no simulation
	// code).
	IncludeTests bool

	imp types.Importer
}

// NewLoader returns a loader with a fresh FileSet and importer.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil),
	}
}

// moduleRoot walks up from dir to the directory containing go.mod and
// returns that directory and the module path declared in it.
func moduleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// Load resolves the patterns ("./...", package directories, or import
// paths relative to the module root) against the module containing the
// current working directory and returns the type-checked packages in
// deterministic (path) order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	root, modPath, err := moduleRoot(cwd)
	if err != nil {
		return nil, err
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			if err := walkPackages(root, add); err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := resolveDir(root, modPath, cwd, strings.TrimSuffix(pat, "/..."))
			if err := walkPackages(base, add); err != nil {
				return nil, err
			}
		default:
			add(resolveDir(root, modPath, cwd, pat))
		}
	}
	sort.Strings(dirs)
	pkgs := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// resolveDir maps a pattern to a directory: import paths under the module
// path map relative to the module root, everything else is a file path
// relative to the working directory.
func resolveDir(root, modPath, cwd, pat string) string {
	if rest, ok := strings.CutPrefix(pat, modPath); ok {
		return filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(rest, "/")))
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(cwd, filepath.FromSlash(pat))
}

// walkPackages calls add for every directory under base holding Go files,
// skipping testdata, vendor and hidden/underscore directories — the same
// pruning the go tool applies to "./..." patterns.
func walkPackages(base string, add func(string)) error {
	return filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			add(filepath.Dir(path))
		}
		return nil
	})
}

// LoadDir parses and type-checks the single package in dir under the
// given import path.  Directories with no eligible Go files return
// (nil, nil).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if strings.HasSuffix(name, "_test.go") && !l.IncludeTests {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	var pkgName string
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// Skip external test packages; they cannot share the base
		// package's type-check universe.
		if strings.HasSuffix(f.Name.Name, "_test") && strings.HasSuffix(name, "_test.go") {
			continue
		}
		if pkgName == "" || !strings.HasSuffix(name, "_test.go") {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}, nil
}
