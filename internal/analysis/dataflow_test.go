package analysis

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSrc type-checks one in-memory source file as a package under the
// given import path, through the same loader the driver uses.
func loadSrc(t *testing.T, path, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "src.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg, err := NewLoader().LoadDir(dir, path)
	if err != nil {
		t.Fatal(err)
	}
	if pkg == nil {
		t.Fatal("no package loaded")
	}
	return pkg
}

// findFunc returns the declaration of the named function.
func findFunc(t *testing.T, pkg *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

// findLocal returns the object of a local variable by name.
func findLocal(t *testing.T, pkg *Package, name string) types.Object {
	t.Helper()
	for ident, obj := range pkg.Info.Defs {
		if obj != nil && ident.Name == name {
			if _, isVar := obj.(*types.Var); isVar {
				return obj
			}
		}
	}
	t.Fatalf("local %s not found", name)
	return nil
}

// TestAliasChainPropagation pins the engine's fixpoint: a shardlocal tag
// reaches a local through a two-hop assignment chain whose hops appear in
// the "wrong" source order (g = h before h = q.heap, inside a loop).
func TestAliasChainPropagation(t *testing.T) {
	pkg := loadSrc(t, "flow.test/kernel", `package kernel

type queue struct {
	//ftlint:shardlocal
	heap []int32
}

func f(q *queue) {
	var h []int32
	var g []int32
	for i := 0; i < 2; i++ {
		g = h
		h = q.heap
	}
	g[0] = 1
}
`)
	markers := newMarkers()
	markers.collect(pkg.Path, pkg.Files)
	flow := analyzeFlow(pkg.Info, findFunc(t, pkg, "f").Body, markers)

	g := findLocal(t, pkg, "g")
	wantKey := "flow.test/kernel.queue.heap"
	if !flow.tags[g][flowTag{kind: flowShardLocal, key: wantKey}] {
		t.Errorf("local g not tagged shardlocal %q; tags: %v", wantKey, flow.tags[g])
	}
	// The loop index never aliases the marked state.
	i := findLocal(t, pkg, "i")
	if len(flow.tags[i]) != 0 {
		t.Errorf("loop index unexpectedly tagged: %v", flow.tags[i])
	}
}

// TestRecoverTagThroughLocal pins that recover()'s result keeps its tag
// across an assignment, and that a shadowing function named recover does
// not tag.
func TestRecoverTagThroughLocal(t *testing.T) {
	pkg := loadSrc(t, "flow.test/errs", `package errs

func shadowed() any { return nil }

func f() {
	r := recover()
	v := r
	_ = v
}

func g(recover func() any) {
	s := recover()
	_ = s
}
`)
	flow := analyzeFlow(pkg.Info, findFunc(t, pkg, "f").Body, nil)
	if !flow.tags[findLocal(t, pkg, "v")][flowTag{kind: flowRecover}] {
		t.Error("v not tagged as a recover() result")
	}
	flowG := analyzeFlow(pkg.Info, findFunc(t, pkg, "g").Body, nil)
	if len(flowG.tags[findLocal(t, pkg, "s")]) != 0 {
		t.Error("shadowed recover incorrectly tagged")
	}
}

// TestSpanFieldStore pins the field-handoff detector: a NextSpan() handle
// flowing through a local into a struct field sets spanFieldStore.
func TestSpanFieldStore(t *testing.T) {
	pkg := loadSrc(t, "flow.test/spans", `package spans

type hub struct{ n int }

func (h *hub) NextSpan() int { h.n++; return h.n }

type job struct {
	span int
	hub  *hub
}

func (j *job) direct() { j.span = j.hub.NextSpan() }

func (j *job) viaLocal() {
	s := j.hub.NextSpan()
	j.span = s
}

func (j *job) unrelated() { j.span = 7 }
`)
	for _, name := range []string{"direct", "viaLocal"} {
		flow := analyzeFlow(pkg.Info, findFunc(t, pkg, name).Body, nil)
		if !flow.spanFieldStore {
			t.Errorf("%s: span field store not detected", name)
		}
	}
	flow := analyzeFlow(pkg.Info, findFunc(t, pkg, "unrelated").Body, nil)
	if flow.spanFieldStore {
		t.Error("unrelated: constant store misread as span handoff")
	}
}

// TestSummaryTable pins the cross-package summary computation: span
// opens/closes at the unit's own level only, shardlocal write sets,
// marker bits, error results — and lookup through a *types.Func.
func TestSummaryTable(t *testing.T) {
	pkg := loadSrc(t, "sum.test/spans", `package spans

type ev int

const (
	EvRepairBegin ev = iota
	EvRepairEnd
)

func emit(ev) {}

type queue struct {
	//ftlint:shardlocal
	dead int
}

func open() { emit(EvRepairBegin) }

func close_() { emit(EvRepairEnd) }

// closeInCallback must NOT summarize as a closer: the literal runs when
// the callback fires, not when the function is called.
func closeInCallback(run func(func())) {
	run(func() { emit(EvRepairEnd) })
}

//ftlint:crossshard
func route(q *queue) { q.dead++ }

func commit() error { return nil }
`)
	markers := newMarkers()
	markers.collect(pkg.Path, pkg.Files)
	sums := buildSummaries([]*Package{pkg}, markers)

	check := func(key string) *FuncSummary {
		t.Helper()
		sum := sums.LookupKey(key)
		if sum == nil {
			t.Fatalf("no summary for %s", key)
		}
		return sum
	}
	if sum := check("sum.test/spans.open"); !sum.Opens["Repair"] || len(sum.Closes) != 0 {
		t.Errorf("open: Opens=%v Closes=%v", sum.Opens, sum.Closes)
	}
	if sum := check("sum.test/spans.close_"); !sum.Closes["Repair"] {
		t.Errorf("close_: Closes=%v", sum.Closes)
	}
	if sum := check("sum.test/spans.closeInCallback"); len(sum.Closes) != 0 {
		t.Errorf("closeInCallback leaked nested closer: Closes=%v", sum.Closes)
	}
	route := check("sum.test/spans.route")
	if !route.CrossShard {
		t.Error("route: CrossShard marker not summarized")
	}
	if len(route.WritesShardLocal) != 1 || route.WritesShardLocal[0] != "sum.test/spans.queue.dead" {
		t.Errorf("route: WritesShardLocal=%v", route.WritesShardLocal)
	}
	if sum := check("sum.test/spans.commit"); !sum.ErrorResult {
		t.Error("commit: error result not summarized")
	}
	if sum := check("sum.test/spans.open"); sum.ErrorResult {
		t.Error("open: spurious error result")
	}

	// Lookup through the typed object, as analyzers do at call sites.
	for ident, obj := range pkg.Info.Defs {
		if fn, ok := obj.(*types.Func); ok && ident.Name == "close_" {
			if sum := sums.Lookup(fn); sum == nil || !sum.Closes["Repair"] {
				t.Error("Lookup(*types.Func) missed close_'s summary")
			}
		}
	}
}

// TestCFGExitKinds pins the control-flow graph's exit classification:
// which of return/panic/fall-through are reachable from the entry.
func TestCFGExitKinds(t *testing.T) {
	pkg := loadSrc(t, "cfg.test/spans", `package spans

func retOrPanic(x bool) {
	if x {
		return
	}
	panic("boom")
}

func infinite() {
	for {
	}
}

func fallsThrough(xs []int) {
	for range xs {
	}
}

func breaksOut() {
	for {
		break
	}
}
`)
	reachable := func(name string) map[exitKind]bool {
		cfg := buildCFG(findFunc(t, pkg, name).Body)
		seen := make(map[*cfgNode]bool)
		out := make(map[exitKind]bool)
		var dfs func(*cfgNode)
		dfs = func(n *cfgNode) {
			if seen[n] {
				return
			}
			seen[n] = true
			if n.exit != exitNone {
				out[n.exit] = true
			}
			for _, s := range n.succs {
				dfs(s)
			}
		}
		dfs(cfg.entry)
		return out
	}

	if got := reachable("retOrPanic"); !got[exitReturn] || !got[exitPanic] || got[exitFall] {
		t.Errorf("retOrPanic exits = %v", got)
	}
	if got := reachable("infinite"); len(got) != 0 {
		t.Errorf("infinite loop must reach no exit, got %v", got)
	}
	if got := reachable("fallsThrough"); !got[exitFall] || got[exitReturn] {
		t.Errorf("fallsThrough exits = %v", got)
	}
	if got := reachable("breaksOut"); !got[exitFall] {
		t.Errorf("breaksOut exits = %v", got)
	}
}

// TestSpanBalancePanicPath runs the full driver over an in-memory
// package and pins the panic-path traversal end to end: the Begin is
// closed on the return path but leaks when validation panics.
func TestSpanBalancePanicPath(t *testing.T) {
	pkg := loadSrc(t, "cfg.test/spans", `package spans

type ev int

const (
	EvDrainBegin ev = iota
	EvDrainEnd
)

func emit(ev) {}

func drain(n int) {
	emit(EvDrainBegin)
	if n < 0 {
		panic("negative drain")
	}
	emit(EvDrainEnd)
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{SpanBalance})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "panic path") {
		t.Errorf("diagnostic does not name the panic path: %s", diags[0].Message)
	}
}
