package analysis

import "testing"

// TestFixtures runs each analyzer over its testdata fixture packages and
// compares diagnostics against the // want comments, analysistest-style.
// Fixture import paths are synthetic; their last segment is what opts a
// fixture into the simulation-package rules.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir      string
		path     string
		analyzer *Analyzer
	}{
		{"testdata/src/nodeterm/sim", "nodeterm.test/sim", NoDeterm},
		{"testdata/src/nodeterm/failure", "nodeterm.test/failure", NoDeterm},
		{"testdata/src/nodeterm/clock", "nodeterm.test/clock", NoDeterm},
		{"testdata/src/mapiter/sweep", "mapiter.test/sweep", MapIter},
		{"testdata/src/poolescape/pool", "poolescape.test/pool", PoolEscape},
		{"testdata/src/metricowner/met", "metricowner.test/met", MetricOwner},
		{"testdata/src/shardconfine/kernel", "shardconfine.test/kernel", ShardConfine},
		{"testdata/src/spanbalance/spans", "spanbalance.test/spans", SpanBalance},
		{"testdata/src/errtype/errs", "errtype.test/errs", ErrType},
		{"testdata/src/deadwaiver/sweep", "deadwaiver.test/sweep", MapIter},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.analyzer.Name+"/"+tc.path, func(t *testing.T) {
			for _, err := range CheckFixture(tc.dir, tc.path, tc.analyzer) {
				t.Error(err)
			}
		})
	}
}
