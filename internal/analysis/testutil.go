package analysis

import (
	"fmt"
	"go/ast"
	"regexp"
	"strconv"
	"strings"
)

// wantRe matches one expectation inside a `// want "..." "..."` comment:
// each quoted string is a regexp one diagnostic on that line must match.
var wantRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// CheckFixture loads the fixture package rooted at dir under the given
// import path, runs the analyzer, and compares the diagnostics against
// the `// want "regexp"` comments in the fixture sources — the
// analysistest contract, reimplemented on the stdlib driver.  It returns
// one error per mismatch (unexpected diagnostic, or an expectation no
// diagnostic matched).
func CheckFixture(dir, path string, analyzer *Analyzer) []error {
	loader := NewLoader()
	pkg, err := loader.LoadDir(dir, path)
	if err != nil {
		return []error{err}
	}
	if pkg == nil {
		return []error{fmt.Errorf("analysis: no Go files in fixture %s", dir)}
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{analyzer})
	if err != nil {
		return []error{err}
	}
	return matchWants(pkg, diags)
}

type wantExpect struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func matchWants(pkg *Package, diags []Diagnostic) []error {
	var wants []*wantExpect
	var errs []error
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				wants = append(wants, parseWants(pkg, c, &errs)...)
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			errs = append(errs, fmt.Errorf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.hit {
			errs = append(errs, fmt.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw))
		}
	}
	return errs
}

func parseWants(pkg *Package, c *ast.Comment, errs *[]error) []*wantExpect {
	text := c.Text
	idx := strings.Index(text, "// want ")
	if idx < 0 {
		idx = strings.Index(text, "//want ")
	}
	if idx < 0 {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*wantExpect
	for _, m := range wantRe.FindAllStringSubmatch(text[idx:], -1) {
		raw, err := strconv.Unquote(`"` + m[1] + `"`)
		if err != nil {
			*errs = append(*errs, fmt.Errorf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, m[0], err))
			continue
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			*errs = append(*errs, fmt.Errorf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err))
			continue
		}
		out = append(out, &wantExpect{file: pos.Filename, line: pos.Line, re: re, raw: raw})
	}
	return out
}
