package analysis

import (
	"go/ast"
	"go/types"
	"path"
	"strings"
)

// simPackages are the package base names whose code must be bit-
// reproducible for a fixed seed: everything that executes inside (or
// feeds) the discrete-event simulation.  cmd/ and the experiment
// harnesses may read the wall clock — they time the simulator, they do
// not run inside it.
var simPackages = map[string]bool{
	"sim":       true,
	"placement": true, // shard placement feeds the sharded kernel's staging
	"simnet":    true,
	"mpi":       true,
	"ftpm":      true,
	"ckpt":      true,
	"chaos":     true,
	"failure":   true,
	"trace":     true,
	"obs":       true,
	"sweep":     true,
	"span":      true,
	"nas":       true, // application kernels run inside the simulation, FT snapshots included
}

// isSimPackage reports whether an import path names a simulation package.
func isSimPackage(pkgPath string) bool {
	return simPackages[path.Base(pkgPath)]
}

// nodetermBan maps import path -> function name -> why it is banned.  An
// empty function-name key bans every reference to the package.
var nodetermBan = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock; simulation code must use the kernel's virtual clock (sim.Kernel.Now / Proc.Now)",
		"Since":     "reads the wall clock; derive durations from sim.Kernel.Now instead",
		"Until":     "reads the wall clock; derive durations from sim.Kernel.Now instead",
		"Sleep":     "blocks on host time; model delays with Proc.Advance or Kernel.After",
		"After":     "fires on host time; schedule with sim.Kernel.After",
		"Tick":      "fires on host time; schedule with sim.Kernel.After",
		"NewTimer":  "fires on host time; schedule with sim.Kernel.After",
		"NewTicker": "fires on host time; schedule with sim.Kernel.After",
		"AfterFunc": "fires on host time; schedule with sim.Kernel.After",
	},
	"math/rand": {
		"Int": "", "Intn": "", "Int31": "", "Int31n": "", "Int63": "", "Int63n": "",
		"Uint32": "", "Uint64": "", "Float32": "", "Float64": "",
		"ExpFloat64": "", "NormFloat64": "", "Perm": "", "Shuffle": "",
		"Seed": "", "Read": "",
	},
	"math/rand/v2": {
		"Int": "", "IntN": "", "Int32": "", "Int32N": "", "Int64": "", "Int64N": "",
		"Uint32": "", "Uint32N": "", "Uint64": "", "Uint64N": "", "UintN": "", "Uint": "",
		"Float32": "", "Float64": "", "ExpFloat64": "", "NormFloat64": "",
		"Perm": "", "Shuffle": "", "N": "",
	},
	"crypto/rand": {"": "is hardware entropy and can never be seeded"},
	"os": {
		"Getpid":  "is per-process entropy that varies across runs",
		"Getppid": "is per-process entropy that varies across runs",
	},
}

const globalRandWhy = "draws from the global math/rand source, which is seeded per-process; use sim.Kernel.Rand() or an explicitly seeded rand.New"

// NoDeterm forbids wall-clock time and ambient randomness in simulation
// packages.  Every result the reproduction publishes rests on runs being
// a pure function of the seed; one time.Now or global rand.Intn breaks
// the golden byte-identity contract silently on the next workload.
var NoDeterm = &Analyzer{
	Name: "nodeterm",
	Doc:  "forbid wall-clock and ambient randomness in simulation packages",
	Run:  runNoDeterm,
}

func runNoDeterm(pass *Pass) error {
	if !isSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			imported := pkgName.Imported().Path()
			bans, ok := nodetermBan[imported]
			if !ok {
				return true
			}
			why, banned := bans[sel.Sel.Name]
			if !banned {
				if why, banned = bans[""]; !banned {
					return true
				}
			}
			if why == "" && strings.HasPrefix(imported, "math/rand") {
				why = globalRandWhy
			}
			pass.Reportf(sel.Pos(), "%s.%s %s", pathBase(imported), sel.Sel.Name, why)
			return true
		})
	}
	return nil
}

func pathBase(p string) string {
	switch p {
	case "math/rand/v2":
		return "rand/v2"
	case "crypto/rand":
		return "crypto/rand"
	}
	return path.Base(p)
}
