package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// MetricOwner enforces the obs.Metrics single-writer rule: the registry
// has no internal synchronization, so all writes to one registry must
// come from the goroutine that owns it.  Kernel LPs are serialized by the
// simulation scheduler and are fine; the hazard is bare `go` statements
// (sweep workers, background flushers) mutating a metric name that other
// code also writes.  The analyzer groups mutation sites per metric name
// literal by their goroutine-spawning scope — the innermost function
// literal launched by a `go` statement, else the enclosing declaration —
// and flags a name written both inside a spawned goroutine and anywhere
// else (or in two distinct spawned goroutines) in the same package.  The
// sanctioned pattern is a private registry per goroutine folded with
// Merge afterwards (Merge is therefore exempt).
var MetricOwner = &Analyzer{
	Name: "metricowner",
	Doc:  "enforce the obs.Metrics single-writer rule per metric name literal",
	Run:  runMetricOwner,
}

// metricMutators are the obs.Metrics methods that write the registry.
// Merge is the sanctioned cross-goroutine aggregation; reads are free.
var metricMutators = map[string]bool{
	"Add": true, "Inc": true, "Set": true,
	"Observe": true, "Touch": true, "TouchHist": true,
}

// metricSite is one mutation of a metric name literal.
type metricSite struct {
	pos     token.Pos
	scope   string // "go@file:line" or enclosing declaration name
	spawned bool   // inside a go-launched function literal
}

func runMetricOwner(pass *Pass) error {
	sites := make(map[string][]metricSite) // metric name -> sites
	for _, file := range pass.Files {
		collectMetricSites(pass, file, sites)
	}
	names := make([]string, 0, len(sites))
	for name := range sites {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		scopes := make(map[string]bool)
		anySpawned := false
		for _, s := range sites[name] {
			scopes[s.scope] = true
			anySpawned = anySpawned || s.spawned
		}
		if !anySpawned || len(scopes) < 2 {
			continue
		}
		for _, s := range sites[name] {
			if s.spawned {
				pass.Reportf(s.pos,
					"metric %q is written from %d scopes including this spawned goroutine; obs.Metrics is single-writer — give the goroutine a private registry and Merge it afterwards",
					name, len(scopes))
			}
		}
	}
	return nil
}

// collectMetricSites walks one file tracking the ancestor chain so each
// mutator call can be attributed to its goroutine-spawning scope.
func collectMetricSites(pass *Pass, file *ast.File, sites map[string][]metricSite) {
	info := pass.TypesInfo
	// spawned records function literals that are the immediate callee of
	// a `go` statement.
	spawned := make(map[*ast.FuncLit]bool)
	ast.Inspect(file, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
				spawned[lit] = true
			}
		}
		return true
	})

	// ast.Inspect calls the visitor with nil after a node's children,
	// which maintains the ancestor stack.
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if name, ok := metricMutation(info, call); ok {
				scope, isSpawned := scopeOf(pass, stack, spawned)
				sites[name] = append(sites[name], metricSite{
					pos: call.Pos(), scope: scope, spawned: isSpawned,
				})
			}
		}
		stack = append(stack, n)
		return true
	})
}

// metricMutation returns the metric name when the call is an obs.Metrics
// mutator with a string-literal first argument.
func metricMutation(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || pkgBase(fn.Pkg().Path()) != "obs" || !metricMutators[fn.Name()] {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	if owner := ownerNamed(recv.Type()); owner == nil || owner.Obj().Name() != "Metrics" {
		return "", false
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	name, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return name, true
}

// scopeOf names the goroutine-spawning scope of the node at the top of
// the ancestor stack: the innermost go-launched function literal, else
// the enclosing function declaration (or file scope for initializers).
func scopeOf(pass *Pass, stack []ast.Node, spawned map[*ast.FuncLit]bool) (string, bool) {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			if spawned[n] {
				p := pass.Fset.Position(n.Pos())
				return fmt.Sprintf("go@%s:%d", p.Filename, p.Line), true
			}
			// A plain literal runs on its caller's goroutine; keep
			// walking out.
		case *ast.FuncDecl:
			return pass.Pkg.Path() + "." + n.Name.Name, false
		}
	}
	return pass.Pkg.Path() + ".<init>", false
}
