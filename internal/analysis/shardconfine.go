package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ShardConfine guards the invariant the parallel-callback roadmap item
// rests on: state reachable from a Proc/LP assigned to a shard must not
// be written from another shard's staging code, except through the
// inbox/merge APIs.  The mutable staging state (a shard's heap, inbox,
// run queue, free list, dead counter) is marked //ftlint:shardlocal;
// the sanctioned mutation points (SetShards, routeSlot, mergeNext, the
// single-threaded dispatch window) are marked //ftlint:crossshard.
//
// A write to marked state — directly, through an element or deref, or
// through an alias the dataflow engine tracked across assignment chains
// — is allowed only from (a) a method of the type that owns the marked
// field (the shard mutating itself is its own staging context), or
// (b) a //ftlint:crossshard function.  Calling a function whose summary
// writes marked state is held to the same rule, so an unsanctioned
// function cannot launder the write through a one-line helper.
//
// Soundness caveats (DESIGN §5.13): the alias engine is intra-
// procedural, so an alias returned from a helper is not tracked; writes
// through the shared event slab (indexed by slot, not by shard) are
// outside the marker vocabulary; and summaries record direct writes
// only, so a two-hop laundering helper needs the middle hop marked.
var ShardConfine = &Analyzer{
	Name: "shardconfine",
	Doc:  "shard-local state is written only by its owner or //ftlint:crossshard functions",
	Run:  runShardConfine,
}

func runShardConfine(pass *Pass) error {
	if !inScope("shardconfine", pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkShardWrites(pass, fd)
		}
	}
	return nil
}

func checkShardWrites(pass *Pass, fd *ast.FuncDecl) {
	key := funcDeclKey(pass.Pkg.Path(), fd)
	crossShard := pass.Markers.CrossShardFuncs[key]
	recvKey := receiverTypeKey(pass, fd)
	// Function literals inside fd run in fd's context (the staging
	// worker bodies, dispatch closures), so the whole body shares fd's
	// sanction — the alias engine also descends into them.
	flow := analyzeFlow(pass.TypesInfo, fd.Body, pass.Markers)

	sanctioned := func(markerKey string) bool {
		if crossShard {
			return true
		}
		owner := markerOwner(markerKey)
		return owner != "" && owner == recvKey
	}
	reportWrite := func(n ast.Node, markerKey string) {
		pass.Reportf(n.Pos(),
			"write to shard-local %s outside its owner's methods or a //ftlint:crossshard function",
			shortKey(pass, markerKey))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				for _, markerKey := range shardWriteTargets(pass, flow, lhs) {
					if !sanctioned(markerKey) {
						reportWrite(lhs, markerKey)
					}
				}
			}
		case *ast.IncDecStmt:
			for _, markerKey := range shardWriteTargets(pass, flow, n.X) {
				if !sanctioned(markerKey) {
					reportWrite(n.X, markerKey)
				}
			}
		case *ast.CallExpr:
			callee := staticCallee(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			sum := pass.Summaries.Lookup(callee)
			if sum == nil || sum.CrossShard {
				return true
			}
			for _, markerKey := range sum.WritesShardLocal {
				if !sanctioned(markerKey) {
					pass.Reportf(n.Pos(),
						"call to %s writes shard-local %s from outside its owner or a //ftlint:crossshard function",
						callee.Name(), shortKey(pass, markerKey))
				}
			}
		}
		return true
	})
	return
}

// shardWriteTargets resolves an assignment target to the shardlocal
// marker keys it writes: a marked field or var directly, an element or
// deref of one, or an element/deref of a local the alias engine tagged.
func shardWriteTargets(pass *Pass, flow *funcFlow, target ast.Expr) []string {
	if keys := writeTargets(pass.TypesInfo, target, pass.Markers); len(keys) > 0 {
		return keys
	}
	// Element and deref writes through aliases: `h := sh.heap; h[i] = v`.
	switch target := target.(type) {
	case *ast.IndexExpr:
		return shardAliasKeys(pass, flow, target.X)
	case *ast.StarExpr:
		return shardAliasKeys(pass, flow, target.X)
	case *ast.ParenExpr:
		return shardWriteTargets(pass, flow, target.X)
	}
	return nil
}

func shardAliasKeys(pass *Pass, flow *funcFlow, e ast.Expr) []string {
	var out []string
	for tag := range flow.exprTags(e, pass.Markers) {
		if tag.kind == flowShardLocal {
			out = append(out, tag.key)
		}
	}
	return out
}

// receiverTypeKey returns "pkgpath.Type" for a method declaration, "".
func receiverTypeKey(pass *Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	ident, ok := t.(*ast.Ident)
	if !ok {
		return ""
	}
	if obj, ok := identObj(pass.TypesInfo, ident).(*types.TypeName); ok && obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return pass.Pkg.Path() + "." + ident.Name
}

// markerOwner strips the field name off a "pkg.Type.Field" key; package
// vars ("pkg.name") have no owner type, so only crossshard may write.
func markerOwner(markerKey string) string {
	i := strings.LastIndex(markerKey, ".")
	if i < 0 {
		return ""
	}
	owner := markerKey[:i]
	// "pkgpath.var" leaves a bare package path with no type segment
	// after the import path; owner must contain a dot past the slash.
	if j := strings.LastIndex(owner, "/"); strings.LastIndex(owner[j+1:], ".") < 0 {
		return ""
	}
	return owner
}

// shortKey trims the package path off a marker key for the message.
func shortKey(pass *Pass, markerKey string) string {
	prefix := pass.Pkg.Path() + "."
	if strings.HasPrefix(markerKey, prefix) {
		return markerKey[len(prefix):]
	}
	if i := strings.LastIndex(markerKey, "/"); i >= 0 {
		return markerKey[i+1:]
	}
	return markerKey
}
