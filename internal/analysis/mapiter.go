package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// MapIter flags `for range` over a map whose body feeds an
// order-sensitive sink: appending to a slice the enclosing function
// returns, emitting an obs event or metric, or scheduling kernel/network
// work.  Go randomizes map iteration order, so each of these leaks the
// per-run permutation into observable output.  Two escapes are
// recognized: sorting the populated slice with a total key after the loop
// (the sort.Slice / sort.SliceStable / slices.Sort idiom — totality of
// the key is the author's contract, the stable forms tie-break equal keys
// by insertion order which is itself map-ordered, so prefer a full key),
// and the //ftlint:ordered waiver on the range statement.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "flag map iteration feeding order-sensitive sinks (returned slices, obs emission, kernel scheduling)",
	Run:  runMapIter,
}

// obsMutators are the obs-package calls whose invocation order is (or
// feeds) observable output: the event stream is ordered, and histogram /
// counter writes interleave with it in exports of event-derived state.
var obsMutators = map[string]bool{
	"Emit": true, "Add": true, "Inc": true, "Set": true,
	"Observe": true, "Touch": true, "TouchHist": true,
}

// schedCalls are sim/simnet calls that mutate kernel scheduling state:
// the kernel assigns each event a sequence number at schedule time and
// equal-timestamp events fire in sequence order, so making these calls in
// map order reorders the simulation itself.
var schedCalls = map[string]bool{
	"At": true, "After": true, "AtArg": true, "AfterArg": true,
	"Go": true, "Kill": true, "Stop": true, "Cancel": true,
	"Close": true, "Send": true, "StartFlow": true, "StartFlowCapped": true,
}

// sortCalls recognize the order-restoring idiom after the loop.
var sortCalls = map[string]map[string]bool{
	"sort":   {"Slice": true, "SliceStable": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

func runMapIter(pass *Pass) error {
	if !isSimPackage(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFuncMapRanges(pass, fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				checkFuncMapRanges(pass, fn.Type, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFuncMapRanges analyzes the map ranges belonging directly to one
// function (nested function literals are visited separately by the outer
// walk, with their own return contracts).
func checkFuncMapRanges(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	var ranges []*ast.RangeStmt
	inspectOwn(body, func(n ast.Node) {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if _, isMap := pass.TypesInfo.TypeOf(rs.X).Underlying().(*types.Map); isMap {
				ranges = append(ranges, rs)
			}
		}
	})
	// No early waiver prune here: suppression happens in Reportf, so the
	// dead-waiver check sees whether an //ftlint:ordered actually earned
	// its keep (every sink diagnostic is positioned at the range
	// statement, where the waiver lives).
	for _, rs := range ranges {
		checkMapRange(pass, ftype, body, rs)
	}
}

// inspectOwn walks the statements of one function body without descending
// into nested function literals.
func inspectOwn(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

func checkMapRange(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	// Objects of slices the function returns: named results plus any
	// identifier appearing in a return statement.
	returned := make(map[types.Object]bool)
	if ftype.Results != nil {
		for _, field := range ftype.Results.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					returned[obj] = true
				}
			}
		}
	}
	inspectOwn(body, func(n ast.Node) {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return
		}
		for _, res := range ret.Results {
			if ident, ok := res.(*ast.Ident); ok {
				if obj := info.Uses[ident]; obj != nil {
					returned[obj] = true
				}
			}
		}
	})

	// appended collects `x = append(x, ...)` targets inside the range
	// body that the function returns.  The scan does not descend into
	// nested function literals: code there runs when the literal is
	// called, and the call that registers it is itself visible here.
	appended := make(map[types.Object]ast.Node)
	var obsSink, schedSink string
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || i >= len(n.Lhs) {
					continue
				}
				ident, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Uses[ident]
				if obj == nil {
					obj = info.Defs[ident]
				}
				if obj != nil && returned[obj] {
					appended[obj] = n
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil {
				base := pkgBase(fn.Pkg().Path())
				name := fn.Name()
				switch {
				case obsSink == "" && base == "obs" && obsMutators[name]:
					obsSink = name
				case schedSink == "" && (base == "sim" || base == "simnet") && schedCalls[name]:
					schedSink = base + "." + name
				}
			}
		}
		return true
	})

	if obsSink != "" {
		pass.Reportf(rs.Pos(), "map iteration emits obs %s calls in random order; iterate a sorted key slice or waive with //ftlint:ordered", obsSink)
	}
	if schedSink != "" {
		pass.Reportf(rs.Pos(), "map iteration calls %s, ordering kernel events by map permutation; iterate a sorted key slice or waive with //ftlint:ordered", schedSink)
	}
	// Report in deterministic object order (at most a handful).
	var names []string
	objs := make(map[string]types.Object)
	for obj := range appended {
		names = append(names, obj.Name())
		objs[obj.Name()] = obj
	}
	sort.Strings(names)
	for _, name := range names {
		if !sortedAfter(pass, body, rs, objs[name]) {
			pass.ReportfFix(rs.Pos(), sortInsertFix(pass, rs, objs[name]),
				"map iteration appends to returned slice %q in random order; sort it with a total key after the loop or waive with //ftlint:ordered", name)
		}
	}
}

// sortInsertFix builds the mechanical rewrite for the returned-slice
// diagnostic: insert the element-typed sort call right after the range
// loop.  Only offered when the element type has a stdlib sorter and the
// file already imports "sort" (the fixer does not edit import blocks).
func sortInsertFix(pass *Pass, rs *ast.RangeStmt, obj types.Object) []TextEdit {
	slice, ok := obj.Type().Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	basic, ok := slice.Elem().Underlying().(*types.Basic)
	if !ok {
		return nil
	}
	var sorter string
	switch basic.Kind() {
	case types.String:
		sorter = "sort.Strings"
	case types.Int:
		sorter = "sort.Ints"
	case types.Float64:
		sorter = "sort.Float64s"
	default:
		return nil
	}
	if !importsSort(pass, rs.Pos()) {
		return nil
	}
	indent := strings.Repeat("\t", pass.Fset.Position(rs.Pos()).Column-1)
	return []TextEdit{{
		Pos: rs.End(),
		End: rs.End(),
		New: "\n" + indent + sorter + "(" + obj.Name() + ")",
	}}
}

// importsSort reports whether the file containing pos imports "sort".
func importsSort(pass *Pass, pos token.Pos) bool {
	for _, file := range pass.Files {
		if pos < file.Pos() || pos >= file.End() {
			continue
		}
		for _, imp := range file.Imports {
			if imp.Path.Value == `"sort"` {
				return true
			}
		}
	}
	return false
}

// isBuiltinAppend reports whether the call is the append builtin.
func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[ident].(*types.Builtin)
	return isBuiltin
}

// calleeFunc resolves a call's target function or method, nil when it is
// not a named function (builtin, func value, conversion).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

func pkgBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return p[i+1:]
		}
	}
	return p
}

// sortedAfter reports whether obj is passed to a recognized sort call at
// some statement after the range loop in the same function body.
func sortedAfter(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, obj types.Object) bool {
	info := pass.TypesInfo
	found := false
	inspectOwn(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found || len(call.Args) == 0 {
			return
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return
		}
		pkgName, ok := info.Uses[pkgIdent].(*types.PkgName)
		if !ok || !sortCalls[pkgName.Imported().Path()][sel.Sel.Name] {
			return
		}
		arg := call.Args[0]
		if unary, ok := arg.(*ast.UnaryExpr); ok {
			arg = unary.X
		}
		if ident, ok := arg.(*ast.Ident); ok && info.Uses[ident] == obj {
			found = true
		}
	})
	return found
}
