// Package analysis implements ftlint, the repository's static-analysis
// suite.  Four analyzers encode the house invariants that the golden
// byte-identity tests can only check dynamically:
//
//   - nodeterm: simulation packages must not read wall-clock time or
//     ambient randomness — all time comes from the sim kernel's virtual
//     clock and all randomness from sim.Kernel.Rand() or an explicitly
//     seeded rand.New.
//   - mapiter: a `for range` over a map must not feed order-sensitive
//     sinks (returned slices, obs events/metrics, kernel scheduling)
//     unless the result is totally ordered afterwards or the site is
//     waived with //ftlint:ordered.
//   - poolescape: pointers to //ftlint:pooled types (recycled slab and
//     record objects) must not be stored into struct fields or package
//     variables that outlive the release back to the pool, except into
//     fields marked //ftlint:pool (the pool's own storage).
//   - metricowner: the obs.Metrics registry is single-writer; a metric
//     name literal must not be mutated from more than one
//     goroutine-spawning scope.
//
// The driver deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Reportf, analysistest-style fixtures with // want
// comments) but is built on the standard library's go/ast, go/parser and
// go/types only: the container this repository builds in has no module
// proxy access, so the x/tools dependency is gated out.  Migrating to the
// real multichecker later is a mechanical substitution — the analyzer
// bodies already speak its vocabulary.
//
// Waiver directives, checked at the diagnostic's line or the line above:
//
//	//ftlint:allow <analyzer>[,<analyzer>...]   suppress named analyzers
//	//ftlint:ordered                            mapiter: order proven total
//
// Marker directives, attached to declarations:
//
//	//ftlint:pooled   (type doc)   values of this type are pool-recycled
//	//ftlint:pool     (field/var)  sanctioned holder of pooled pointers
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.  Run inspects a single package
// through its Pass and reports diagnostics; it returns an error only for
// infrastructure failures, never for findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Diagnostic is one finding, positioned for file:line:col rendering.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Markers is the directive table collected over every package in the
	// load, so pooled types declared in internal/sim are known when
	// analyzing internal/ckpt.
	Markers *Markers

	// waivers maps file name -> line -> comma-joined directive payloads
	// ("allow nodeterm", "ordered") present on that line.
	waivers map[string]map[int][]string

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a waiver directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.waivedAt(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Waived reports whether a directive suppresses this analyzer at pos —
// for analyzers that want to prune work early (mapiter checks the range
// statement once instead of each sink inside it).
func (p *Pass) Waived(pos token.Pos) bool {
	return p.waivedAt(p.Fset.Position(pos), p.Analyzer.Name)
}

func (p *Pass) waivedAt(position token.Position, analyzer string) bool {
	lines := p.waivers[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, payload := range lines[line] {
			if payload == "ordered" && analyzer == "mapiter" {
				return true
			}
			rest, ok := strings.CutPrefix(payload, "allow")
			if !ok {
				continue
			}
			for _, name := range strings.Split(rest, ",") {
				if strings.TrimSpace(name) == analyzer {
					return true
				}
			}
		}
	}
	return false
}

// directivePrefix introduces every ftlint comment directive.
const directivePrefix = "//ftlint:"

// collectWaivers builds the file/line directive index for one package.
func collectWaivers(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	out := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				payload, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				payload = strings.TrimSpace(payload)
				position := fset.Position(c.Pos())
				lines := out[position.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					out[position.Filename] = lines
				}
				lines[position.Line] = append(lines[position.Line], payload)
			}
		}
	}
	return out
}

// Markers is the cross-package table of //ftlint:pooled and //ftlint:pool
// declarations.  Keys are position-independent so that the same type is
// recognized whether it was type-checked by the driver or re-checked as a
// dependency: "pkgpath.Type" for pooled types, "pkgpath.Type.Field" for
// sanctioned pool fields and "pkgpath.var" for sanctioned pool variables.
type Markers struct {
	PooledTypes map[string]bool
	PoolFields  map[string]bool
	PoolVars    map[string]bool
}

func newMarkers() *Markers {
	return &Markers{
		PooledTypes: make(map[string]bool),
		PoolFields:  make(map[string]bool),
		PoolVars:    make(map[string]bool),
	}
}

// hasDirective reports whether any comment line of any given group is the
// exact directive (e.g. "pooled", "pool").
func hasDirective(want string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if payload, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
				if strings.TrimSpace(payload) == want {
					return true
				}
			}
		}
	}
	return false
}

// collect scans one parsed package for marker directives.
func (m *Markers) collect(pkgPath string, files []*ast.File) {
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.TYPE:
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					if hasDirective("pooled", gd.Doc, ts.Doc, ts.Comment) {
						m.PooledTypes[pkgPath+"."+ts.Name.Name] = true
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if !hasDirective("pool", field.Doc, field.Comment) {
							continue
						}
						for _, name := range field.Names {
							m.PoolFields[pkgPath+"."+ts.Name.Name+"."+name.Name] = true
						}
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					if !hasDirective("pool", gd.Doc, vs.Doc, vs.Comment) {
						continue
					}
					for _, name := range vs.Names {
						m.PoolVars[pkgPath+"."+name.Name] = true
					}
				}
			}
		}
	}
}

// All returns every registered analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{NoDeterm, MapIter, PoolEscape, MetricOwner}
}

// Run executes the analyzers over the loaded packages and returns the
// diagnostics sorted by position then analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	markers := newMarkers()
	for _, pkg := range pkgs {
		markers.collect(pkg.Path, pkg.Files)
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		waivers := collectWaivers(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Markers:   markers,
				waivers:   waivers,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
