// Package analysis implements ftlint, the repository's static-analysis
// suite.  Seven analyzers encode the house invariants that the golden
// byte-identity tests can only check dynamically:
//
//   - nodeterm: simulation packages must not read wall-clock time or
//     ambient randomness — all time comes from the sim kernel's virtual
//     clock and all randomness from sim.Kernel.Rand() or an explicitly
//     seeded rand.New.
//   - mapiter: a `for range` over a map must not feed order-sensitive
//     sinks (returned slices, obs events/metrics, kernel scheduling)
//     unless the result is totally ordered afterwards or the site is
//     waived with //ftlint:ordered.
//   - poolescape: pointers to //ftlint:pooled types (recycled slab and
//     record objects) must not be stored into struct fields or package
//     variables that outlive the release back to the pool, except into
//     fields marked //ftlint:pool (the pool's own storage).
//   - metricowner: the obs.Metrics registry is single-writer; a metric
//     name literal must not be mutated from more than one
//     goroutine-spawning scope.
//   - shardconfine: state marked //ftlint:shardlocal (a shard's staging
//     heap, inbox, run queue, free list and dead counter) may only be
//     written through its owner or through functions marked
//     //ftlint:crossshard — the inbox/merge APIs of the sharded kernel.
//     Aliases are tracked by the dataflow engine, so a heap slice copied
//     into a local and mutated elsewhere is still caught.
//   - spanbalance: an EvXxxBegin-family emit must be matched by its End
//     (or Abort) on every return and panic path of the function, unless
//     the span handle demonstrably hands off to a later closer (stored
//     into a field, captured by a completion callback that closes it, or
//     declared with //ftlint:handoff, which in turn requires a closer to
//     exist in the package).
//   - errtype: typed-error discipline — FT panics classified only via
//     mpi.AsFTError, FT/Config error values matched with errors.Is or
//     errors.As (never == or direct type assertion), fmt.Errorf wrapping
//     errors with %w (never %s/%v), and no discarded error results from
//     the checkpoint-commit layer unless the callee is marked
//     //ftlint:besteffort.
//
// The driver deliberately mirrors the golang.org/x/tools/go/analysis API
// (Analyzer, Pass, Reportf, analysistest-style fixtures with // want
// comments) but is built on the standard library's go/ast, go/parser and
// go/types only: the container this repository builds in has no module
// proxy access, so the x/tools dependency is gated out.  Migrating to the
// real multichecker later is a mechanical substitution — the analyzer
// bodies already speak its vocabulary.
//
// On top of the analyzers the driver enforces waiver hygiene: an
// //ftlint:allow or //ftlint:ordered comment that no longer suppresses
// any diagnostic of an enabled analyzer is itself reported (analyzer
// name "deadwaiver"), so waivers cannot outlive the code they excused.
//
// Waiver directives, checked at the diagnostic's line or the line above:
//
//	//ftlint:allow <analyzer>[,<analyzer>...]   suppress named analyzers
//	//ftlint:ordered                            mapiter: order proven total
//	//ftlint:handoff                            spanbalance: closer elsewhere
//
// Marker directives, attached to declarations:
//
//	//ftlint:pooled      (type doc)   values of this type are pool-recycled
//	//ftlint:pool        (field/var)  sanctioned holder of pooled pointers
//	//ftlint:shardlocal  (field/var)  state confined to one shard's staging
//	//ftlint:crossshard  (func doc)   sanctioned cross-shard mutation point
//	//ftlint:besteffort  (func doc)   callers may discard the error result
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one static check.  Run inspects a single package
// through its Pass and reports diagnostics; it returns an error only for
// infrastructure failures, never for findings.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A TextEdit is one span of source to replace — the unit of a suggested
// fix.  Pos == End inserts.
type TextEdit struct {
	Pos token.Pos
	End token.Pos
	New string
}

// A Diagnostic is one finding, positioned for file:line:col rendering.
// Fixes, when non-empty, are mechanical rewrites `ftlint -fix` applies.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	Fixes    []TextEdit
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Markers is the directive table collected over every package in the
	// load, so pooled types declared in internal/sim are known when
	// analyzing internal/ckpt.
	Markers *Markers
	// Summaries is the cross-package function summary table built by the
	// dataflow engine over every package in the load.
	Summaries *Summaries

	// waivers maps file name -> line -> directive records present on that
	// line.  Shared across analyzers so usage accumulates for the
	// dead-waiver check.
	waivers waiverIndex

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless a waiver directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, nil, format, args...)
}

// ReportfFix is Reportf with a suggested mechanical rewrite attached.
func (p *Pass) ReportfFix(pos token.Pos, fixes []TextEdit, format string, args ...any) {
	p.report(pos, fixes, format, args...)
}

func (p *Pass) report(pos token.Pos, fixes []TextEdit, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.waivers.waivedAt(position, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fixes:    fixes,
	})
}

// Handoff reports whether an //ftlint:handoff directive marks pos (the
// line or the line above).  Consulting it counts as use, like a waiver.
func (p *Pass) Handoff(pos token.Pos) bool {
	return p.waivers.directiveAt(p.Fset.Position(pos), "handoff")
}

// directivePrefix introduces every ftlint comment directive.
const directivePrefix = "//ftlint:"

// waiverRec is one line directive occurrence, tracking whether it ever
// suppressed (or sanctioned) a diagnostic.
type waiverRec struct {
	payload    string // "allow nodeterm,mapiter", "ordered", "handoff"
	pos        token.Position
	cPos, cEnd token.Pos // the comment's extent, for the removal fix
	used       bool
}

// analyzers returns the analyzer names the waiver speaks for: the names
// listed by an allow directive, mapiter for ordered, spanbalance for
// handoff, nil for marker payloads that are not line waivers.
func (w *waiverRec) analyzers() []string {
	switch {
	case w.payload == "ordered":
		return []string{"mapiter"}
	case w.payload == "handoff":
		return []string{"spanbalance"}
	default:
		rest, ok := strings.CutPrefix(w.payload, "allow")
		if !ok {
			return nil
		}
		var names []string
		for _, name := range strings.Split(rest, ",") {
			if name = strings.TrimSpace(name); name != "" {
				names = append(names, name)
			}
		}
		return names
	}
}

// waiverIndex maps file name -> line -> directive records on that line.
type waiverIndex map[string]map[int][]*waiverRec

// waivedAt reports whether a waiver suppresses analyzer at position,
// marking any matching record used.  Handoff is not a waiver: it
// sanctions a validated pattern, and its own validation diagnostic must
// not be self-suppressed — it participates only through directiveAt and
// the dead-waiver check.
func (idx waiverIndex) waivedAt(position token.Position, analyzer string) bool {
	hit := false
	lines := idx[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, rec := range lines[line] {
			if rec.payload == "handoff" {
				continue
			}
			for _, name := range rec.analyzers() {
				if name == analyzer {
					rec.used = true
					hit = true
				}
			}
		}
	}
	return hit
}

// directiveAt reports whether the exact directive payload appears at the
// position's line or the line above, marking matches used.
func (idx waiverIndex) directiveAt(position token.Position, payload string) bool {
	hit := false
	lines := idx[position.Filename]
	for _, line := range []int{position.Line, position.Line - 1} {
		for _, rec := range lines[line] {
			if rec.payload == payload {
				rec.used = true
				hit = true
			}
		}
	}
	return hit
}

// collectWaivers builds the file/line directive index for one package.
// Marker payloads (pooled, pool, shardlocal, ...) are excluded — they
// attach to declarations, not diagnostic lines, and must not show up as
// dead waivers.
func collectWaivers(fset *token.FileSet, files []*ast.File) waiverIndex {
	out := make(waiverIndex)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				payload, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				// Trailing commentary after the directive ("//ftlint:ordered
				// // keys sorted above") is not part of the payload.
				if i := strings.Index(payload, "//"); i >= 0 {
					payload = payload[:i]
				}
				payload = strings.TrimSpace(payload)
				if !isLineDirective(payload) {
					continue
				}
				position := fset.Position(c.Pos())
				lines := out[position.Filename]
				if lines == nil {
					lines = make(map[int][]*waiverRec)
					out[position.Filename] = lines
				}
				lines[position.Line] = append(lines[position.Line],
					&waiverRec{payload: payload, pos: position, cPos: c.Pos(), cEnd: c.End()})
			}
		}
	}
	return out
}

// isLineDirective distinguishes line waivers from declaration markers.
func isLineDirective(payload string) bool {
	return payload == "ordered" || payload == "handoff" || strings.HasPrefix(payload, "allow")
}

// Markers is the cross-package table of declaration directives.  Keys are
// position-independent so that the same declaration is recognized whether
// it was type-checked by the driver or re-checked as a dependency:
// "pkgpath.Type" for types, "pkgpath.Type.Field" for fields,
// "pkgpath.var" for package variables and "pkgpath.Func" /
// "pkgpath.Type.Method" for functions.
type Markers struct {
	PooledTypes map[string]bool
	PoolFields  map[string]bool
	PoolVars    map[string]bool

	// ShardLocalFields / ShardLocalVars hold state confined to one
	// shard's staging context (//ftlint:shardlocal).
	ShardLocalFields map[string]bool
	ShardLocalVars   map[string]bool
	// CrossShardFuncs are the sanctioned cross-shard mutation points
	// (//ftlint:crossshard): the inbox/merge APIs and the executor code
	// that runs while every shard worker is parked.
	CrossShardFuncs map[string]bool
	// BestEffortFuncs may have their error result discarded by callers
	// (//ftlint:besteffort).
	BestEffortFuncs map[string]bool
}

func newMarkers() *Markers {
	return &Markers{
		PooledTypes:      make(map[string]bool),
		PoolFields:       make(map[string]bool),
		PoolVars:         make(map[string]bool),
		ShardLocalFields: make(map[string]bool),
		ShardLocalVars:   make(map[string]bool),
		CrossShardFuncs:  make(map[string]bool),
		BestEffortFuncs:  make(map[string]bool),
	}
}

// hasDirective reports whether any comment line of any given group is the
// exact directive (e.g. "pooled", "pool").
func hasDirective(want string, groups ...*ast.CommentGroup) bool {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if payload, ok := strings.CutPrefix(c.Text, directivePrefix); ok {
				if strings.TrimSpace(payload) == want {
					return true
				}
			}
		}
	}
	return false
}

// collect scans one parsed package for marker directives.
func (m *Markers) collect(pkgPath string, files []*ast.File) {
	for _, f := range files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.FuncDecl:
				key := funcDeclKey(pkgPath, decl)
				if hasDirective("crossshard", decl.Doc) {
					m.CrossShardFuncs[key] = true
				}
				if hasDirective("besteffort", decl.Doc) {
					m.BestEffortFuncs[key] = true
				}
			case *ast.GenDecl:
				m.collectGen(pkgPath, decl)
			}
		}
	}
}

func (m *Markers) collectGen(pkgPath string, gd *ast.GenDecl) {
	switch gd.Tok {
	case token.TYPE:
		for _, spec := range gd.Specs {
			ts := spec.(*ast.TypeSpec)
			if hasDirective("pooled", gd.Doc, ts.Doc, ts.Comment) {
				m.PooledTypes[pkgPath+"."+ts.Name.Name] = true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				continue
			}
			for _, field := range st.Fields.List {
				pool := hasDirective("pool", field.Doc, field.Comment)
				local := hasDirective("shardlocal", field.Doc, field.Comment)
				if !pool && !local {
					continue
				}
				for _, name := range field.Names {
					key := pkgPath + "." + ts.Name.Name + "." + name.Name
					if pool {
						m.PoolFields[key] = true
					}
					if local {
						m.ShardLocalFields[key] = true
					}
				}
			}
		}
	case token.VAR:
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			pool := hasDirective("pool", gd.Doc, vs.Doc, vs.Comment)
			local := hasDirective("shardlocal", gd.Doc, vs.Doc, vs.Comment)
			if !pool && !local {
				continue
			}
			for _, name := range vs.Names {
				if pool {
					m.PoolVars[pkgPath+"."+name.Name] = true
				}
				if local {
					m.ShardLocalVars[pkgPath+"."+name.Name] = true
				}
			}
		}
	}
}

// funcDeclKey builds the marker/summary key for a function declaration:
// "pkgpath.Name" or "pkgpath.Recv.Name" for methods.
func funcDeclKey(pkgPath string, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkgPath + "." + fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Generic receivers (T[P]) do not occur in this repository; plain
	// identifiers cover every method here.
	if ident, ok := t.(*ast.Ident); ok {
		return pkgPath + "." + ident.Name + "." + fd.Name.Name
	}
	return pkgPath + "." + fd.Name.Name
}

// funcKey builds the same key from a types.Func object.
func funcKey(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if owner := ownerNamed(sig.Recv().Type()); owner != nil {
			return fn.Pkg().Path() + "." + owner.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// All returns every registered analyzer, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{NoDeterm, MapIter, PoolEscape, MetricOwner, ShardConfine, SpanBalance, ErrType}
}

// Run executes the analyzers over the loaded packages and returns the
// diagnostics sorted by position then analyzer.  After the analyzers it
// runs the driver's own dead-waiver check: a waiver whose named
// analyzers all ran yet suppressed nothing is reported under the
// pseudo-analyzer name "deadwaiver".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	markers := newMarkers()
	for _, pkg := range pkgs {
		markers.collect(pkg.Path, pkg.Files)
	}
	summaries := buildSummaries(pkgs, markers)
	enabled := make(map[string]bool)
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	var diags []Diagnostic
	var allWaivers []*waiverRec
	for _, pkg := range pkgs {
		waivers := collectWaivers(pkg.Fset, pkg.Files)
		for _, lines := range waivers {
			for _, recs := range lines {
				allWaivers = append(allWaivers, recs...)
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Markers:   markers,
				Summaries: summaries,
				waivers:   waivers,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	diags = append(diags, deadWaivers(allWaivers, enabled)...)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// deadWaivers flags every waiver that (a) names only analyzers that were
// enabled for this run — a partial `-only` run cannot judge the others —
// and (b) never suppressed a diagnostic.  The fix deletes the comment.
func deadWaivers(recs []*waiverRec, enabled map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, rec := range recs {
		if rec.used {
			continue
		}
		names := rec.analyzers()
		if len(names) == 0 {
			continue
		}
		covered := true
		for _, name := range names {
			if !enabled[name] {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		out = append(out, Diagnostic{
			Pos:      rec.pos,
			Analyzer: "deadwaiver",
			Message: fmt.Sprintf("//ftlint:%s suppresses no diagnostic; remove dead waiver",
				rec.payload),
			Fixes: []TextEdit{{Pos: rec.cPos, End: rec.cEnd, New: ""}},
		})
	}
	return out
}
