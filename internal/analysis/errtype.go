package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrType enforces the typed-error discipline the ULFM layer (PR 8) and
// the typed StorageSpec validation (PR 9) introduced:
//
//  1. a recovered panic value must be classified through mpi.AsFTError,
//     never by asserting the payload type directly — the ftSignal
//     carrier is private to mpi on purpose, and a raw assertion
//     swallows genuine programming-error panics;
//  2. sentinel errors (mpi.ErrProcFailed, mpi.ErrRevoked, ...) must be
//     matched with errors.Is, and concrete error types extracted with
//     errors.As — == and type assertions break as soon as a wrap layer
//     appears;
//  3. fmt.Errorf must wrap an error-typed argument with %w, not flatten
//     it through %s/%v/%q — flattening a *ftpm.ConfigError (or any
//     typed error) severs the chain errors.As needs (fixed by -fix);
//  4. an error result from the checkpoint-commit layers must not be
//     silently discarded (a bare call statement or `_ =`), unless the
//     callee is marked //ftlint:besteffort.
var ErrType = &Analyzer{
	Name: "errtype",
	Doc:  "typed-error discipline: AsFTError, errors.Is/As, %w wrapping, no dropped commit errors",
	Run:  runErrType,
}

// errDropPkgs are the package base names whose error results must not
// be discarded by in-scope callers: the checkpoint-commit path and the
// protocol layer beneath it.
var errDropPkgs = map[string]bool{
	"ckpt": true,
	"mpi":  true,
	"ftpm": true,
	"pcl":  true,
	"vcl":  true,
	"mlog": true,
	"errs": true, // fixture base name
}

func runErrType(pass *Pass) error {
	if !inScope("errtype", pass.Pkg.Path()) {
		return nil
	}
	inMPI := strings.HasSuffix(pass.Pkg.Path(), "/mpi") || pass.Pkg.Path() == "mpi"
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			flow := analyzeFlow(pass.TypesInfo, fd.Body, nil)
			// An `Is(target error) bool` method IS the sentinel match:
			// `target == ErrX` there is the implementation errors.Is
			// dispatches to, not a call site to rewrite.
			isMethod := fd.Name.Name == "Is" && fd.Recv != nil
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.TypeAssertExpr:
					// Covers type-switch guards too: Inspect reaches the
					// x.(type) expression inside the switch header.
					checkRecoverAssert(pass, flow, n, inMPI)
					checkErrorAssert(pass, n)
				case *ast.BinaryExpr:
					if !isMethod {
						checkSentinelCompare(pass, n)
					}
				case *ast.CallExpr:
					checkErrorfWrap(pass, n)
				case *ast.ExprStmt:
					checkDroppedError(pass, n.X, n.Pos())
				case *ast.AssignStmt:
					checkBlankError(pass, n)
				}
				return true
			})
		}
	}
	return nil
}

// checkRecoverAssert flags type assertions and type switches on a value
// the alias engine traced back to recover().  Package mpi is exempt: it
// owns the ftSignal carrier AsFTError unwraps.
func checkRecoverAssert(pass *Pass, flow *funcFlow, assert *ast.TypeAssertExpr, inMPI bool) {
	if inMPI {
		return
	}
	if !flow.exprTags(assert.X, nil)[flowTag{kind: flowRecover}] {
		return
	}
	pass.Reportf(assert.Pos(),
		"type assertion on a recover() result; classify FT panics with mpi.AsFTError")
}

// checkErrorAssert flags `x.(SomeError)` where x's static type is the
// error interface: wrap layers break it, errors.As does not.
func checkErrorAssert(pass *Pass, assert *ast.TypeAssertExpr) {
	if assert.Type == nil {
		return // type switch handled separately (recover rule only)
	}
	xt := pass.TypesInfo.Types[assert.X].Type
	if xt == nil || !isErrorType(xt) {
		return
	}
	tt := pass.TypesInfo.Types[assert.Type].Type
	if tt == nil || !implementsError(tt) {
		return
	}
	pass.Reportf(assert.Pos(),
		"type assertion on an error value; use errors.As so wrapped errors still match")
}

// checkSentinelCompare flags `err == ErrSentinel` / `!=` where one side
// is a package-level error variable named Err*.
func checkSentinelCompare(pass *Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{bin.X, bin.Y} {
		if name := sentinelErrName(pass.TypesInfo, side); name != "" {
			pass.Reportf(bin.Pos(),
				"comparing against sentinel error %s with %s; use errors.Is so wrapped errors still match",
				name, bin.Op)
			return
		}
	}
}

func sentinelErrName(info *types.Info, e ast.Expr) string {
	var ident *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		ident = e
	case *ast.SelectorExpr:
		ident = e.Sel
	default:
		return ""
	}
	v, ok := identObj(info, ident).(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !strings.HasPrefix(v.Name(), "Err") || !implementsError(v.Type()) {
		return ""
	}
	return v.Name()
}

// checkErrorfWrap flags fmt.Errorf calls that flatten an error-typed
// argument through %s/%v/%q instead of wrapping with %w, and attaches
// the mechanical rewrite for -fix.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if pkg, ok := identObj(pass.TypesInfo, recv).(*types.PkgName); !ok || pkg.Imported().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok || len(verbs) != len(call.Args)-1 {
		return // indexed or mismatched format: out of this rule's depth
	}
	fixed := []byte(format)
	var badVerb string
	var badType types.Type
	for i, v := range verbs {
		if v.letter != 's' && v.letter != 'v' && v.letter != 'q' {
			continue
		}
		argType := pass.TypesInfo.Types[call.Args[1+i]].Type
		if argType == nil || !implementsError(argType) {
			continue
		}
		badVerb = "%" + string(v.letter)
		badType = argType
		fixed[v.letterOff] = 'w'
	}
	if badVerb == "" {
		return
	}
	what := "an error"
	if named, ok := badType.(*types.Pointer); ok {
		badType = named.Elem()
	}
	if named, ok := badType.(*types.Named); ok && strings.HasSuffix(named.Obj().Name(), "ConfigError") {
		what = named.Obj().Name()
	}
	pass.ReportfFix(lit.Pos(), []TextEdit{{
		Pos: lit.Pos(),
		End: lit.End(),
		New: strconv.Quote(string(fixed)),
	}}, "fmt.Errorf flattens %s through %s; wrap with %%w so errors.Is/As still match", what, badVerb)
}

type fmtVerb struct {
	letter    byte
	letterOff int // offset of the verb letter within the unquoted format
}

// formatVerbs extracts the verbs of a printf format string.  Returns
// ok=false for explicit argument indexes or *-width forms, which this
// rule does not model.
func formatVerbs(format string) ([]fmtVerb, bool) {
	var out []fmtVerb
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			return nil, false
		}
		if format[i] == '%' {
			continue
		}
		for i < len(format) && strings.IndexByte("+-# 0123456789.", format[i]) >= 0 {
			i++
		}
		if i >= len(format) || format[i] == '[' || format[i] == '*' {
			return nil, false
		}
		out = append(out, fmtVerb{letter: format[i], letterOff: i})
	}
	return out, true
}

// checkDroppedError flags a bare call statement that discards an error
// result from a commit-path package.
func checkDroppedError(pass *Pass, e ast.Expr, pos token.Pos) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	callee := staticCallee(pass.TypesInfo, call)
	if callee == nil || !droppableError(pass, callee) {
		return
	}
	pass.Reportf(pos,
		"result of %s includes an error that is silently discarded; handle it or mark the callee //ftlint:besteffort",
		callee.Name())
}

// checkBlankError flags `_ = call()` / `x, _ := call()` discarding the
// error result of a commit-path callee.
func checkBlankError(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	callee := staticCallee(pass.TypesInfo, call)
	if callee == nil || !droppableError(pass, callee) {
		return
	}
	// The error is the last result; it is discarded when the last LHS
	// is the blank identifier.
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Reportf(as.Pos(),
		"error result of %s assigned to _; handle it or mark the callee //ftlint:besteffort",
		callee.Name())
}

// droppableError reports whether discarding the callee's error result is
// in this rule's scope: the callee returns an error, lives in a
// commit-path package, and is not marked //ftlint:besteffort.
func droppableError(pass *Pass, callee *types.Func) bool {
	if callee.Pkg() == nil || !errDropPkgs[pkgBaseName(callee.Pkg().Path())] {
		return false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	if !isErrorType(sig.Results().At(sig.Results().Len() - 1).Type()) {
		return false
	}
	if pass.Markers.BestEffortFuncs[funcKey(callee)] {
		return false
	}
	if sum := pass.Summaries.Lookup(callee); sum != nil && sum.BestEffort {
		return false
	}
	return true
}

func pkgBaseName(p string) string {
	if i := strings.LastIndex(p, "/"); i >= 0 {
		return p[i+1:]
	}
	return p
}

// implementsError reports whether t (or *t) satisfies the error
// interface.
func implementsError(t types.Type) bool {
	if isErrorType(t) {
		return true
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	if types.Implements(t, errType) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), errType)
	}
	return false
}
