// Package chaos is the fault-injection harness: it derives seeded random
// failure schedules — rank, node and checkpoint-server kills, landing mid
// wave and mid restart — runs a job under them, and checks the recovery
// invariants that the protocol papers promise: the recovered computation
// matches the failure-free reference, no wave commits without a full
// quorum-stored image set, and logged messages are replayed exactly once.
//
// A schedule is a pure function of (Spec, Config): the same seed always
// produces the same kills against the same job, so a chaos run is as
// reproducible as any other simulation — CI can pin seeds, and a failing
// seed is a complete bug report.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"

	"ftckpt/internal/ckpt"
	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// Spec describes a random kill schedule.
type Spec struct {
	// Seed drives the schedule; the same seed against the same job
	// config always produces the same plan.
	Seed int64
	// Kills is the number of kill events to schedule.
	Kills int
	// ServerFrac and NodeFrac are the expected fractions of kills
	// aimed at checkpoint servers and at whole compute nodes; BufferFrac
	// and PFSFrac aim kills at node-local staging buffers and PFS
	// targets (storage-hierarchy jobs only); the rest kill single ranks.
	// All default to 0.
	ServerFrac float64
	NodeFrac   float64
	BufferFrac float64
	PFSFrac    float64
	// Kills are drawn uniformly in [From, Until).  Spreading the window
	// across several checkpoint intervals lands kills mid-wave and — once
	// a recovery is in progress — mid-restart.
	From, Until sim.Time
}

func (sp Spec) validate(cfg *ftpm.Config) error {
	if sp.Kills <= 0 {
		return errors.New("chaos: Kills must be positive")
	}
	if sp.Until <= sp.From || sp.From < 0 {
		return fmt.Errorf("chaos: kill window [%v, %v) is empty", sp.From, sp.Until)
	}
	if sp.ServerFrac < 0 || sp.NodeFrac < 0 || sp.BufferFrac < 0 || sp.PFSFrac < 0 ||
		sp.ServerFrac+sp.NodeFrac+sp.BufferFrac+sp.PFSFrac > 1 {
		return fmt.Errorf("chaos: kill fractions server=%v node=%v buffer=%v pfs=%v outside [0,1]",
			sp.ServerFrac, sp.NodeFrac, sp.BufferFrac, sp.PFSFrac)
	}
	if sp.ServerFrac > 0 && cfg.Servers == 0 {
		return errors.New("chaos: ServerFrac > 0 but the job has no checkpoint servers")
	}
	if sp.BufferFrac > 0 && (cfg.Storage == nil || cfg.Storage.Level(ckpt.LevelBuffer) < 0) {
		return errors.New("chaos: BufferFrac > 0 but the job's storage hierarchy has no buffer level")
	}
	if sp.PFSFrac > 0 && (cfg.Storage == nil || cfg.Storage.Level(ckpt.LevelPFS) < 0) {
		return errors.New("chaos: PFSFrac > 0 but the job's storage hierarchy has no PFS level")
	}
	return nil
}

// Schedule derives the deterministic kill plan for a job.  Victims are
// drawn from the job's components only — ranks, checkpoint servers and
// compute nodes; the service node is never killed (the dispatcher is the
// model's reliable coordinator, as the paper's mpiexec is).
func Schedule(sp Spec, cfg ftpm.Config) (failure.Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := sp.validate(&cfg); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(sp.Seed))
	computeNodes := (cfg.NP + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	plan := make(failure.Plan, 0, sp.Kills)
	for i := 0; i < sp.Kills; i++ {
		at := sp.From + sim.Time(rng.Int63n(int64(sp.Until-sp.From)))
		ev := failure.Event{At: at}
		switch x := rng.Float64(); {
		case x < sp.ServerFrac:
			ev.Kind = failure.KindServer
			ev.Server = rng.Intn(cfg.Servers)
		case x < sp.ServerFrac+sp.NodeFrac:
			ev.Kind = failure.KindNode
			ev.Node = rng.Intn(computeNodes)
		case x < sp.ServerFrac+sp.NodeFrac+sp.BufferFrac:
			ev.Kind = failure.KindBuffer
			ev.Node = rng.Intn(computeNodes)
		case x < sp.ServerFrac+sp.NodeFrac+sp.BufferFrac+sp.PFSFrac:
			ev.Kind = failure.KindPFS
			ev.Server = rng.Intn(pfsTargets(&cfg))
		default:
			ev.Rank = rng.Intn(cfg.NP)
		}
		plan = append(plan, ev)
	}
	return plan.Sorted(), nil
}

// pfsTargets returns the PFS target count of a validated config's
// storage spec (validate guarantees it is > 0 when PFSFrac > 0).
func pfsTargets(cfg *ftpm.Config) int {
	if cfg.Storage == nil {
		return 0
	}
	if i := cfg.Storage.Level(ckpt.LevelPFS); i >= 0 {
		return cfg.Storage.Levels[i].Targets
	}
	return 0
}

// Config describes one chaos experiment.
type Config struct {
	// Job is the base job; its Failures field is replaced by the
	// generated schedule.
	Job ftpm.Config
	// Spec generates the schedule.
	Spec Spec
	// Checksum extracts a rank's scalar verification value; the chaos
	// run's values must equal the failure-free reference's.  Nil skips
	// the reference comparison (the event invariants still run).
	Checksum func(p mpi.Program) float64
}

// Outcome reports a chaos run.
type Outcome struct {
	// Plan is the schedule the run executed.
	Plan failure.Plan
	// Result is the run's summary; after a degraded stop it carries only
	// the metrics registry.
	Result ftpm.Result
	// Degraded is set when the job stopped with an unrecoverable loss —
	// a legitimate outcome (expected without replication), never a panic.
	Degraded *ftpm.DegradedError
	// Checksums and Reference are the per-rank verification values of
	// the chaos run and of the failure-free reference (nil when the run
	// degraded or Checksum is nil).
	Checksums []float64
	Reference []float64
	// Violations lists every invariant breach; empty means the run was
	// correct.
	Violations []string
}

// OK reports whether every invariant held.
func (o *Outcome) OK() bool { return len(o.Violations) == 0 }

// Run executes the chaos experiment: generate the schedule, run the
// failure-free reference, run the job under the schedule, and check the
// recovery invariants.  A degraded stop is reported in the Outcome; any
// other job error is returned.
func Run(c Config) (Outcome, error) {
	plan, err := Schedule(c.Spec, c.Job)
	if err != nil {
		return Outcome{}, err
	}
	out := Outcome{Plan: plan}

	if c.Checksum != nil {
		ref := c.Job
		ref.Failures = nil
		ref.MTTF, ref.ServerMTTF, ref.NodeMTTF = 0, 0, 0
		ref.Sink, ref.Trace, ref.Metrics = nil, nil, nil
		job, err := ftpm.NewJob(ref)
		if err != nil {
			return Outcome{}, err
		}
		if _, err := job.Run(); err != nil {
			return Outcome{}, fmt.Errorf("chaos: failure-free reference failed: %w", err)
		}
		for _, p := range job.Programs() {
			out.Reference = append(out.Reference, c.Checksum(p))
		}
	}

	cfg := c.Job
	cfg.Failures = plan
	col := obs.NewCollector()
	cfg.Sink = obs.NewHub(col, c.Job.Sink)
	if err := cfg.Validate(); err != nil {
		return Outcome{}, err
	}
	job, err := ftpm.NewJob(cfg)
	if err != nil {
		return Outcome{}, err
	}
	res, err := job.Run()
	out.Result = res
	if err != nil {
		var deg *ftpm.DegradedError
		if !errors.As(err, &deg) {
			return out, err
		}
		out.Degraded = deg
	}

	// With a staging buffer the commit gate is the node-local write (one
	// store-end event), not the server write quorum; mlog strips the
	// staging levels and keeps the quorum gate.
	quorum := cfg.WriteQuorum
	if cfg.Storage != nil && cfg.Storage.Level(ckpt.LevelBuffer) >= 0 && cfg.Protocol != ftpm.ProtoMlog {
		quorum = 1
	}
	out.Violations = checkInvariants(col.Events(), cfg.NP, quorum, cfg.Protocol)
	// When the job carried a span tracer (Config.Job.Attrib), its overhead
	// attribution must conserve virtual time even under this chaos
	// schedule — a broken partition is an invariant breach like any other.
	if out.Result.Attribution != nil {
		if err := out.Result.Attribution.Check(); err != nil {
			out.Violations = append(out.Violations, fmt.Sprintf(
				"attribution conservation: %v", err))
		}
	}
	if out.Degraded == nil && c.Checksum != nil {
		for _, p := range job.Programs() {
			out.Checksums = append(out.Checksums, c.Checksum(p))
		}
		for r := range out.Reference {
			if out.Checksums[r] != out.Reference[r] {
				out.Violations = append(out.Violations, fmt.Sprintf(
					"rank %d recovered to checksum %v, failure-free reference is %v",
					r, out.Checksums[r], out.Reference[r]))
			}
		}
	}
	return out, nil
}
