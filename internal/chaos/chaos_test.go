package chaos

import (
	"encoding/gob"
	"strings"
	"testing"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// ringProg mirrors the ftpm test workload: compute, neighbour exchange
// and periodic collectives, with a checksum the harness can verify.
type ringProg struct {
	Rank, Size int
	Iters      int
	It         int
	Phase      int
	Val        float64
	Sum        float64
}

func init() { gob.Register(&ringProg{}) }

func (g *ringProg) Step(e *mpi.Engine) bool {
	switch g.Phase {
	case 0:
		e.Compute(time.Millisecond)
		g.Phase = 1
	case 1:
		right := (g.Rank + 1) % g.Size
		left := (g.Rank - 1 + g.Size) % g.Size
		p := e.Sendrecv(right, 10, mpi.EncodeF64(g.Val), 0, left, 10)
		g.Val = 0.5*g.Val + 0.5*mpi.DecodeF64(p.Data) + 1
		g.It++
		switch {
		case g.It == g.Iters:
			g.Phase = 3
		case g.It%5 == 0:
			g.Phase = 2
		default:
			g.Phase = 0
		}
	case 2:
		g.Sum = e.AllreduceF64(mpi.OpSum, []float64{g.Val})[0]
		g.Phase = 0
	case 3:
		g.Sum = e.AllreduceF64(mpi.OpSum, []float64{g.Val})[0]
		return true
	}
	return false
}

func (g *ringProg) Footprint() int64 { return 256 << 10 }

func chaosCfg(np int, proto ftpm.Proto) ftpm.Config {
	return ftpm.Config{
		NP: np,
		Topology: simnet.Topology{Clusters: []simnet.ClusterSpec{{
			Name: "c", Nodes: np + 7, NICBW: 100e6, Latency: 50 * time.Microsecond,
		}}},
		Profile: mpi.Profile{Name: "test"},
		NewProgram: func(rank, size int) mpi.Program {
			return &ringProg{Rank: rank, Size: size, Iters: 150, Val: float64(rank + 1)}
		},
		Protocol:     proto,
		Interval:     12 * time.Millisecond,
		Servers:      2,
		Replicas:     2,
		WriteQuorum:  1,
		StoreRetries: 3,
		RetryBackoff: 2 * time.Millisecond,
		RestartDelay: 2 * time.Millisecond,
		SpareNodes:   2,
		Deadline:     time.Hour,
		Seed:         1,
	}
}

func ringSum(p mpi.Program) float64 { return p.(*ringProg).Sum }

func TestScheduleDeterministicAndInRange(t *testing.T) {
	cfg := chaosCfg(6, ftpm.ProtoPcl)
	sp := Spec{Seed: 42, Kills: 40, ServerFrac: 0.25, NodeFrac: 0.25,
		From: 10 * time.Millisecond, Until: 200 * time.Millisecond}
	a, err := Schedule(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Schedule(sp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 40 || len(b) != 40 {
		t.Fatalf("plan sizes %d %d", len(a), len(b))
	}
	kinds := map[failure.Kind]int{}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], b[i])
		}
		ev := a[i]
		kinds[ev.Kind]++
		if ev.At < sp.From || ev.At >= sp.Until {
			t.Fatalf("kill outside window: %v", ev)
		}
		if i > 0 && ev.At < a[i-1].At {
			t.Fatalf("plan not sorted at %d", i)
		}
		switch ev.Kind {
		case failure.KindRank:
			if ev.Rank < 0 || ev.Rank >= cfg.NP {
				t.Fatalf("rank victim out of range: %v", ev)
			}
		case failure.KindServer:
			if ev.Server < 0 || ev.Server >= cfg.Servers {
				t.Fatalf("server victim out of range: %v", ev)
			}
		case failure.KindNode:
			// Compute nodes only — the service node is never a victim.
			if ev.Node < 0 || ev.Node >= cfg.NP {
				t.Fatalf("node victim out of range: %v", ev)
			}
		}
	}
	for _, k := range []failure.Kind{failure.KindRank, failure.KindNode, failure.KindServer} {
		if kinds[k] == 0 {
			t.Fatalf("40 draws at 50/25/25 produced no %v kill: %v", k, kinds)
		}
	}
	if c, err := Schedule(Spec{Seed: 43, Kills: 40, ServerFrac: 0.25, NodeFrac: 0.25,
		From: sp.From, Until: sp.Until}, cfg); err != nil || len(c) != 40 {
		t.Fatal("reseeded schedule failed")
	} else {
		same := 0
		for i := range c {
			if c[i] == a[i] {
				same++
			}
		}
		if same == 40 {
			t.Fatal("different seeds produced identical plans")
		}
	}
}

func TestScheduleRejectsBadSpecs(t *testing.T) {
	cfg := chaosCfg(4, ftpm.ProtoPcl)
	bad := []Spec{
		{Seed: 1, Kills: 0, From: 0, Until: time.Second},
		{Seed: 1, Kills: 1, From: time.Second, Until: time.Second},
		{Seed: 1, Kills: 1, From: 0, Until: time.Second, ServerFrac: 0.8, NodeFrac: 0.5},
	}
	for i, sp := range bad {
		if _, err := Schedule(sp, cfg); err == nil {
			t.Fatalf("spec %d validated", i)
		}
	}
}

// findSeed scans seeds deterministically for a plan with at least one
// server kill and at least one later rank or node kill — the scenario
// the replication layer exists for.
func findSeed(t *testing.T, cfg ftpm.Config, sp Spec) Spec {
	t.Helper()
	for seed := int64(1); seed <= 200; seed++ {
		sp.Seed = seed
		plan, err := Schedule(sp, cfg)
		if err != nil {
			t.Fatal(err)
		}
		servers, laterKills := 0, 0
		var srvAt sim.Time
		for _, ev := range plan {
			if ev.Kind == failure.KindServer {
				servers++
				if servers == 1 {
					srvAt = ev.At
				}
			}
		}
		for _, ev := range plan {
			if ev.Kind != failure.KindServer && ev.At > srvAt {
				laterKills++
			}
		}
		if servers == 1 && laterKills >= 1 {
			return sp
		}
	}
	t.Fatal("no seed in 1..200 produced one server kill followed by a process kill")
	return sp
}

// TestChaosRecoversWithReplication is the harness's headline assertion:
// under a schedule that kills a checkpoint server mid-run plus processes
// and nodes, every protocol recovers to the failure-free checksum with
// Replicas=2, and every event-stream invariant holds.
func TestChaosRecoversWithReplication(t *testing.T) {
	for _, proto := range []ftpm.Proto{ftpm.ProtoPcl, ftpm.ProtoVcl, ftpm.ProtoMlog} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := chaosCfg(6, proto)
			sp := findSeed(t, cfg, Spec{Kills: 3, ServerFrac: 0.34, NodeFrac: 0.2,
				From: 25 * time.Millisecond, Until: 150 * time.Millisecond})
			out, err := Run(Config{Job: cfg, Spec: sp, Checksum: ringSum})
			if err != nil {
				t.Fatalf("seed %d: %v", sp.Seed, err)
			}
			if out.Degraded != nil {
				t.Fatalf("seed %d degraded despite replication: %v (plan %v)", sp.Seed, out.Degraded, out.Plan)
			}
			if !out.OK() {
				t.Fatalf("seed %d violated invariants:\n%s\nplan %v",
					sp.Seed, strings.Join(out.Violations, "\n"), out.Plan)
			}
			if out.Result.ServerFailures != 1 {
				t.Fatalf("seed %d: %d server failures, plan %v", sp.Seed, out.Result.ServerFailures, out.Plan)
			}
			if out.Result.Restarts == 0 {
				t.Fatalf("seed %d: no recovery exercised, plan %v", sp.Seed, out.Plan)
			}
		})
	}
}

// TestChaosDegradesWithoutReplication: the same family of schedules with
// Replicas=1 loses committed images with the killed server; the job must
// stop with a structured DegradedError — never panic — and the commits
// that did happen must still satisfy the (now size-1) quorum.
func TestChaosDegradesWithoutReplication(t *testing.T) {
	cfg := chaosCfg(6, ftpm.ProtoPcl)
	cfg.Replicas = 1
	cfg.WriteQuorum = 1
	cfg.StoreRetries = 0
	// A server kill after the first commits, then at least one process
	// kill to force a recovery that needs the lost images.
	sp := findSeed(t, cfg, Spec{Kills: 3, ServerFrac: 0.34, NodeFrac: 0.2,
		From: 30 * time.Millisecond, Until: 150 * time.Millisecond})
	out, err := Run(Config{Job: cfg, Spec: sp, Checksum: ringSum})
	if err != nil {
		t.Fatalf("seed %d: %v", sp.Seed, err)
	}
	if out.Degraded == nil {
		t.Fatalf("seed %d recovered with a single replica of each image lost (plan %v)", sp.Seed, out.Plan)
	}
	if out.Degraded.Err == nil || out.Degraded.Wave < 1 {
		t.Fatalf("degraded error lacks context: %+v", out.Degraded)
	}
	if !out.OK() {
		t.Fatalf("seed %d violated invariants:\n%s", sp.Seed, strings.Join(out.Violations, "\n"))
	}
}

// TestChaosDeterministic: the whole harness — schedule, run, invariant
// checking, metrics — is byte-identical across repeats of one seed.
func TestChaosDeterministic(t *testing.T) {
	run := func() (Outcome, string) {
		cfg := chaosCfg(6, ftpm.ProtoVcl)
		sp := Spec{Seed: 11, Kills: 3, ServerFrac: 0.34, NodeFrac: 0.2,
			From: 25 * time.Millisecond, Until: 150 * time.Millisecond}
		out, err := Run(Config{Job: cfg, Spec: sp, Checksum: ringSum})
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := out.Result.Metrics.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return out, sb.String()
	}
	a, am := run()
	b, bm := run()
	if len(a.Plan) != len(b.Plan) {
		t.Fatal("plans differ")
	}
	for i := range a.Plan {
		if a.Plan[i] != b.Plan[i] {
			t.Fatalf("plan event %d differs: %v vs %v", i, a.Plan[i], b.Plan[i])
		}
	}
	ra, rb := a.Result, b.Result
	ra.Metrics, rb.Metrics = nil, nil
	if ra != rb {
		t.Fatalf("results differ:\n%+v\n%+v", ra, rb)
	}
	if am != bm {
		t.Fatalf("metrics differ:\n%s\n%s", am, bm)
	}
	if strings.Join(a.Violations, ";") != strings.Join(b.Violations, ";") {
		t.Fatal("violations differ")
	}
	for i := range a.Checksums {
		if a.Checksums[i] != b.Checksums[i] {
			t.Fatalf("checksum %d differs", i)
		}
	}
}

// TestChaosULFMSparesExhausted is the in-job recovery campaign: under
// node-loss semantics with a single spare, the first random kill must be
// repaired in place, and a later kill — pool empty — must degrade
// cleanly into the classic rollback-restart with no hang, no invariant
// breach, and the failure-free numerics.
func TestChaosULFMSparesExhausted(t *testing.T) {
	mkCfg := func() ftpm.Config {
		cfg := chaosCfg(8, ftpm.ProtoPcl)
		cfg.NewProgram = func(rank, size int) mpi.Program {
			return nas.NewJacobi(rank, size, 64, 400)
		}
		cfg.Interval = 25 * time.Millisecond
		cfg.Recovery = ftpm.RecoveryULFM
		cfg.FTEvery = 10
		cfg.NodeLoss = true
		cfg.SpareNodes = 1
		return cfg
	}
	// Two rank kills, both after the first snapshot exchanges, on distinct
	// victims and far enough apart that the second cannot land inside the
	// first's (sub-millisecond) repair window.
	sp := Spec{Kills: 2, From: 30 * time.Millisecond, Until: 65 * time.Millisecond}
	for seed := int64(1); ; seed++ {
		if seed > 200 {
			t.Fatal("no seed in 1..200 produced two spread-out rank kills on distinct victims")
		}
		sp.Seed = seed
		plan, err := Schedule(sp, mkCfg())
		if err != nil {
			t.Fatal(err)
		}
		if plan[0].Rank != plan[1].Rank && plan[1].At-plan[0].At >= 5*time.Millisecond {
			break
		}
	}
	out, err := Run(Config{Job: mkCfg(), Spec: sp,
		Checksum: func(p mpi.Program) float64 { return p.(*nas.Jacobi).Residual }})
	if err != nil {
		t.Fatalf("seed %d: %v", sp.Seed, err)
	}
	if out.Degraded != nil {
		t.Fatalf("seed %d degraded: %v (plan %v)", sp.Seed, out.Degraded, out.Plan)
	}
	if !out.OK() {
		t.Fatalf("seed %d violated invariants:\n%s\nplan %v",
			sp.Seed, strings.Join(out.Violations, "\n"), out.Plan)
	}
	if out.Result.Repairs != 1 {
		t.Fatalf("seed %d: Repairs = %d, want 1 (first kill repairs onto the spare; plan %v)",
			sp.Seed, out.Result.Repairs, out.Plan)
	}
	if out.Result.Restarts < 1 {
		t.Fatalf("seed %d: Restarts = %d, want >= 1 (pool exhausted; plan %v)",
			sp.Seed, out.Result.Restarts, out.Plan)
	}
}

// TestInvariantCheckerCatchesBreaches feeds the checker hand-built event
// streams that violate each invariant — the harness must not be a rubber
// stamp.
func TestInvariantCheckerCatchesBreaches(t *testing.T) {
	t.Run("commit without quorum", func(t *testing.T) {
		evs := []obs.Event{
			{Type: obs.EvImageStoreEnd, Rank: 0, Wave: 1},
			// rank 1's image never finished storing
			{Type: obs.EvWaveCommit, Rank: -1, Wave: 1},
		}
		v := checkInvariants(evs, 2, 1, ftpm.ProtoPcl)
		if len(v) == 0 {
			t.Fatal("missing image at commit not flagged")
		}
	})
	t.Run("stale store across rollback does not count", func(t *testing.T) {
		evs := []obs.Event{
			{Type: obs.EvImageStoreEnd, Rank: 0, Wave: 1},
			{Type: obs.EvRankKilled, Rank: 0, Wave: 0}, // rollback to scratch
			{Type: obs.EvWaveCommit, Rank: -1, Wave: 1},
		}
		v := checkInvariants(evs, 1, 1, ftpm.ProtoPcl)
		if len(v) == 0 {
			t.Fatal("commit backed only by a pre-rollback store not flagged")
		}
	})
	t.Run("double replay", func(t *testing.T) {
		evs := []obs.Event{
			{Type: obs.EvMessageReplayed, Rank: 0, Channel: 1, Seq: 7},
			{Type: obs.EvMessageReplayed, Rank: 0, Channel: 1, Seq: 7},
		}
		v := checkInvariants(evs, 2, 1, ftpm.ProtoMlog)
		if len(v) == 0 {
			t.Fatal("duplicate replay not flagged")
		}
	})
	t.Run("replay after new incarnation is fine", func(t *testing.T) {
		evs := []obs.Event{
			{Type: obs.EvMessageReplayed, Rank: 0, Channel: 1, Seq: 7},
			{Type: obs.EvRankKilled, Rank: 0, Wave: 1},
			{Type: obs.EvMessageReplayed, Rank: 0, Channel: 1, Seq: 7},
		}
		if v := checkInvariants(evs, 2, 1, ftpm.ProtoMlog); len(v) != 0 {
			t.Fatalf("legitimate re-replay flagged: %v", v)
		}
	})
	t.Run("vcl replay shortfall", func(t *testing.T) {
		evs := []obs.Event{
			{Type: obs.EvImageStoreEnd, Rank: 0, Wave: 1},
			{Type: obs.EvImageStoreEnd, Rank: 1, Wave: 1},
			{Type: obs.EvMessageLogged, Rank: 0, Wave: 1, Channel: 1},
			{Type: obs.EvWaveCommit, Rank: -1, Wave: 1},
			{Type: obs.EvRankKilled, Rank: 1, Wave: 1},
			{Type: obs.EvRestartBegin, Rank: -1, Wave: 1},
			// the logged message is never replayed
			{Type: obs.EvRestartEnd, Rank: -1, Wave: 1},
		}
		v := checkInvariants(evs, 2, 1, ftpm.ProtoVcl)
		if len(v) == 0 {
			t.Fatal("missing replay not flagged")
		}
	})
	t.Run("pcl must not replay", func(t *testing.T) {
		evs := []obs.Event{{Type: obs.EvMessageReplayed, Rank: 0, Channel: 1, Seq: 1}}
		if v := checkInvariants(evs, 1, 1, ftpm.ProtoPcl); len(v) == 0 {
			t.Fatal("pcl replay not flagged")
		}
	})
	t.Run("clean repair lifecycle passes", func(t *testing.T) {
		evs := []obs.Event{
			{Type: obs.EvProcFailed, Rank: 3},
			{Type: obs.EvRepairBegin, Rank: -1, Channel: 3},
			{Type: obs.EvRevoked, Rank: -1, Channel: 3},
			{Type: obs.EvRepairEnd, Rank: -1, Channel: 3},
		}
		if v := checkInvariants(evs, 4, 1, ftpm.ProtoPcl); len(v) != 0 {
			t.Fatalf("clean repair flagged: %v", v)
		}
	})
	t.Run("kill inside repair window", func(t *testing.T) {
		evs := []obs.Event{
			{Type: obs.EvProcFailed, Rank: 3},
			{Type: obs.EvRepairBegin, Rank: -1, Channel: 3},
			{Type: obs.EvRankKilled, Rank: 1, Wave: 0},
			{Type: obs.EvRepairEnd, Rank: -1, Channel: 3},
		}
		if v := checkInvariants(evs, 4, 1, ftpm.ProtoPcl); len(v) == 0 {
			t.Fatal("kill inside an open repair window not flagged")
		}
	})
	t.Run("unmatched repair end", func(t *testing.T) {
		evs := []obs.Event{{Type: obs.EvRepairEnd, Rank: -1, Channel: 3}}
		if v := checkInvariants(evs, 4, 1, ftpm.ProtoPcl); len(v) == 0 {
			t.Fatal("repair-end without a begin not flagged")
		}
	})
	t.Run("repair window never closed", func(t *testing.T) {
		evs := []obs.Event{
			{Type: obs.EvProcFailed, Rank: 3},
			{Type: obs.EvRepairBegin, Rank: -1, Channel: 3},
		}
		if v := checkInvariants(evs, 4, 1, ftpm.ProtoPcl); len(v) == 0 {
			t.Fatal("dangling repair window not flagged")
		}
	})
	t.Run("aborted repair resolves into restart", func(t *testing.T) {
		evs := []obs.Event{
			{Type: obs.EvProcFailed, Rank: 3},
			{Type: obs.EvRepairBegin, Rank: -1, Channel: 3},
			{Type: obs.EvRepairAbort, Rank: -1, Channel: 3},
			{Type: obs.EvRankKilled, Rank: 3, Wave: 0},
		}
		if v := checkInvariants(evs, 4, 1, ftpm.ProtoPcl); len(v) != 0 {
			t.Fatalf("abort-then-restart flagged: %v", v)
		}
		if v := checkInvariants(evs[:3], 4, 1, ftpm.ProtoPcl); len(v) == 0 {
			t.Fatal("abort without the fallback restart not flagged")
		}
	})
	t.Run("failure report without repair attempt", func(t *testing.T) {
		evs := []obs.Event{{Type: obs.EvProcFailed, Rank: 3}}
		if v := checkInvariants(evs, 4, 1, ftpm.ProtoPcl); len(v) == 0 {
			t.Fatal("orphan process-failure report not flagged")
		}
	})
}
