package chaos

import (
	"fmt"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/obs"
)

// checkInvariants replays the run's event stream and verifies the
// recovery guarantees that survive fault injection:
//
//  1. Durability: when a wave commits, every rank it covers has at least
//     WriteQuorum completed image stores for that wave.  Store counts for
//     waves newer than a rollback target are discarded when a kill forces
//     the rollback — wave numbers are reused after it.
//  2. Exactly-once replay (mlog): within one incarnation of a rank, no
//     logged message — identified by (channel, protocol sequence) — is
//     replayed twice.
//  3. Replay completeness (vcl): a completed global restart from wave w
//     re-delivers, per rank, exactly the messages that were logged during
//     wave w.  A restart aborted by another kill is exempt (it never
//     completed).
//  4. Pcl replays nothing: any EvMessageReplayed under the blocking
//     protocol is a protocol error.
//  5. Repair lifecycle (ULFM recovery): repair windows never nest, every
//     EvRepairBegin is closed by exactly one EvRepairEnd or EvRepairAbort
//     naming the same victim (or the job degrades inside the window), no
//     rank is killed while a window is open (kills must no-op while the
//     world is parked), every failure report pairs with a repair attempt,
//     and an aborted repair's victim falls back to the classic
//     rollback-restart — its next event is the EvRankKilled of that path.
func checkInvariants(events []obs.Event, np, quorum int, proto ftpm.Proto) []string {
	type rw struct{ rank, wave int }
	type chseq struct {
		ch  int
		seq uint64
	}
	var violations []string
	stores := map[rw]int{}           // completed image stores per (rank, wave)
	logged := map[rw]int{}           // vcl messages logged per (rank, wave)
	seen := map[int]map[chseq]bool{} // mlog replays in the rank's current incarnation

	// One vcl global-restart window at a time: opened by EvRestartBegin,
	// marked complete by EvRestartEnd, abandoned by a kill that lands
	// before the end.  Replays are emitted by the respawned process
	// bodies, which the kernel runs after the restart-end event at the
	// same virtual instant — so the window is validated only at the next
	// kill, the next restart, or the end of the stream.
	var win struct {
		open     bool
		ended    bool
		wave     int
		replayed map[int]int
	}
	settle := func() {
		if !win.open || !win.ended {
			win.open = false
			return
		}
		for r := 0; r < np; r++ {
			want := logged[rw{r, win.wave}]
			if got := win.replayed[r]; got != want {
				violations = append(violations, fmt.Sprintf(
					"restart from wave %d replayed %d messages for rank %d, %d were logged",
					win.wave, got, r, want))
			}
		}
		win.open = false
	}

	// Repair-lifecycle bookkeeping: rep tracks the open window (victim is
	// carried in Channel on the dispatcher-scoped repair events), failed
	// counts EvProcFailed reports awaiting their repair attempt, and
	// abortedVictim is the rank whose abandoned repair must resolve into a
	// classic restart.
	var rep struct {
		open   bool
		victim int
	}
	failedReports, repairAttempts := 0, 0
	abortedVictim := -1
	degraded := false

	coordinated := proto == ftpm.ProtoPcl || proto == ftpm.ProtoVcl
	for _, ev := range events {
		switch ev.Type {
		case obs.EvProcFailed:
			failedReports++

		case obs.EvRepairBegin:
			repairAttempts++
			if rep.open {
				violations = append(violations, fmt.Sprintf(
					"repair of rank %d began at %v inside the open repair window of rank %d",
					ev.Channel, ev.T, rep.victim))
			}
			rep.open = true
			rep.victim = ev.Channel

		case obs.EvRepairEnd:
			if !rep.open || ev.Channel != rep.victim {
				violations = append(violations, fmt.Sprintf(
					"repair of rank %d ended at %v without a matching begin (open window: %v)",
					ev.Channel, ev.T, rep.open))
			}
			rep.open = false

		case obs.EvRepairAbort:
			if !rep.open || ev.Channel != rep.victim {
				violations = append(violations, fmt.Sprintf(
					"repair of rank %d aborted at %v without a matching begin (open window: %v)",
					ev.Channel, ev.T, rep.open))
			}
			rep.open = false
			abortedVictim = ev.Channel

		case obs.EvDegraded:
			degraded = true
		}
		switch ev.Type {
		case obs.EvImageStoreEnd:
			stores[rw{ev.Rank, ev.Wave}]++

		case obs.EvMessageLogged:
			if proto == ftpm.ProtoVcl {
				logged[rw{ev.Rank, ev.Wave}]++
			}

		case obs.EvWaveCommit:
			ranks := []int{ev.Rank}
			if ev.Rank < 0 { // coordinated commit covers every rank
				ranks = ranks[:0]
				for r := 0; r < np; r++ {
					ranks = append(ranks, r)
				}
			}
			for _, r := range ranks {
				if n := stores[rw{r, ev.Wave}]; n < quorum {
					violations = append(violations, fmt.Sprintf(
						"wave %d committed at %v with %d stored copies of rank %d's image, quorum is %d",
						ev.Wave, ev.T, n, r, quorum))
				}
			}

		case obs.EvRankKilled:
			if rep.open {
				violations = append(violations, fmt.Sprintf(
					"rank %d killed at %v inside the open repair window of rank %d — kills must no-op while the world is parked",
					ev.Rank, ev.T, rep.victim))
			}
			if abortedVictim >= 0 {
				if ev.Rank != abortedVictim {
					violations = append(violations, fmt.Sprintf(
						"rank %d killed at %v before the aborted repair of rank %d resolved into its rollback-restart",
						ev.Rank, ev.T, abortedVictim))
				}
				abortedVictim = -1
			}
			if coordinated {
				// A completed restart's replays are all in; an aborted
				// one (no end event yet) is exempt.
				settle()
			}
			// ev.Wave is the rollback target; stores and logs recorded for
			// newer waves belong to aborted attempts whose numbers will be
			// reused.
			for k := range stores {
				if k.wave > ev.Wave && (!coordinated && k.rank == ev.Rank || coordinated) {
					delete(stores, k)
				}
			}
			for k := range logged {
				if coordinated && k.wave > ev.Wave {
					delete(logged, k)
				}
			}
			delete(seen, ev.Rank) // next incarnation replays afresh

		case obs.EvRestartBegin:
			if proto == ftpm.ProtoVcl && ev.Rank < 0 && ev.Wave >= 1 {
				settle()
				win.open = true
				win.ended = false
				win.wave = ev.Wave
				win.replayed = map[int]int{}
			}

		case obs.EvMessageReplayed:
			if proto == ftpm.ProtoPcl {
				violations = append(violations, fmt.Sprintf(
					"pcl replayed a message at %v (rank %d, channel %d) — the blocking protocol logs nothing",
					ev.T, ev.Rank, ev.Channel))
			}
			if proto == ftpm.ProtoMlog && ev.Seq > 0 {
				if seen[ev.Rank] == nil {
					seen[ev.Rank] = map[chseq]bool{}
				}
				key := chseq{ev.Channel, ev.Seq}
				if seen[ev.Rank][key] {
					violations = append(violations, fmt.Sprintf(
						"rank %d replayed message (src %d, pseq %d) twice in one incarnation at %v",
						ev.Rank, ev.Channel, ev.Seq, ev.T))
				}
				seen[ev.Rank][key] = true
			}
			if win.open {
				win.replayed[ev.Rank]++
			}

		case obs.EvRestartEnd:
			if win.open && ev.Rank < 0 && ev.Wave == win.wave {
				win.ended = true
			}
		}
	}
	settle()
	if rep.open && !degraded {
		violations = append(violations, fmt.Sprintf(
			"repair window of rank %d never closed (no repair-end, repair-abort or degraded stop)", rep.victim))
	}
	if abortedVictim >= 0 && !degraded {
		violations = append(violations, fmt.Sprintf(
			"aborted repair of rank %d never fell back to a rollback-restart", abortedVictim))
	}
	if failedReports != repairAttempts {
		violations = append(violations, fmt.Sprintf(
			"%d process-failure reports but %d repair attempts — repair must be exactly-once per reported failure",
			failedReports, repairAttempts))
	}
	return violations
}
