package simnet

import "ftckpt/internal/sim"

// smallCutoff is the size below which a message takes the fast path: its
// transfer time is charged against a per-node transmit horizon (so bursts
// of control messages still serialize on the NIC) instead of joining the
// fluid bandwidth-sharing machinery.  Without this, an n-process marker
// flood creates O(n²) simultaneous flows whose every arrival reschedules
// every flow on the shared NICs — quadratic simulation cost for messages
// whose bandwidth footprint is negligible.  Messages at or above the
// cutoff (application payloads, checkpoint images) use fluid flows and
// contend normally.
const smallCutoff = 4 << 10

// A Channel is a FIFO, reliable, unidirectional message stream between two
// nodes — the simulated analogue of one TCP connection between two MPI
// peers.  Messages on a channel are transmitted one at a time in order
// (back-to-back messages pipeline: the next transmission starts as soon as
// the previous one leaves the bottleneck, not after its delivery), so the
// FIFO property both checkpointing protocols assume holds by construction.
// Distinct channels between the same pair of nodes compete for bandwidth
// like distinct connections.
type Channel struct {
	net     *Network
	src     int
	dst     int
	deliver func(payload any)
	queue   []message
	busy    bool
	inFly   *Flow
	closed  bool

	// MsgsSent and BytesSent accumulate per-channel statistics.
	MsgsSent  int
	BytesSent Bytes
}

type message struct {
	payload any
	size    Bytes
}

// NewChannel opens a FIFO message channel from node src to node dst.
// deliver runs as an event callback when each message arrives; it must not
// block (hand off to an LP through a sim.Cond if needed).
func (n *Network) NewChannel(src, dst int, deliver func(payload any)) *Channel {
	return &Channel{net: n, src: src, dst: dst, deliver: deliver}
}

// Src returns the source node.
func (c *Channel) Src() int { return c.src }

// Dst returns the destination node.
func (c *Channel) Dst() int { return c.dst }

// Send enqueues a message.  It never blocks; the sender-side cost of
// copying into the transmit path is modelled by the caller (device service
// profiles), not here.
func (c *Channel) Send(payload any, size Bytes) {
	if c.closed {
		return // messages to/from a dead node vanish, like a broken socket
	}
	c.MsgsSent++
	c.BytesSent += size
	c.queue = append(c.queue, message{payload, size})
	if !c.busy {
		c.startNext()
	}
}

func (c *Channel) startNext() {
	if c.closed || len(c.queue) == 0 {
		c.busy = false
		return
	}
	m := c.queue[0]
	c.queue = c.queue[1:]
	c.busy = true
	if m.size < smallCutoff {
		c.startSmall(m)
		return
	}
	c.net.flowSeq++
	f := &Flow{
		net:       c.net,
		seq:       c.net.flowSeq,
		remaining: float64(m.size),
		last:      c.net.k.Now(),
		latency:   c.net.Latency(c.src, c.dst),
	}
	f.onDone = func() {
		if c.closed {
			return
		}
		c.net.BytesMoved += m.size
		c.net.FlowsDone++
		c.deliver(m.payload)
	}
	// The next message may start transmitting as soon as this one clears
	// the bottleneck.
	f.onXfer = func() { c.startNext() }
	c.inFly = f
	if c.src == c.dst {
		f.doneEv = c.net.k.After(0, f.transferComplete)
		return
	}
	f.res = c.net.pathResources(c.src, c.dst)
	if c.net.Cluster(c.src) != c.net.Cluster(c.dst) {
		f.cap = c.net.topo.WanFlowCap
	}
	c.net.reschedule(f.attach())
}

// startSmall transmits a message on the fast path: the unloaded path
// bandwidth, serialized against the sender node's transmit horizon.
func (c *Channel) startSmall(m message) {
	c.inFly = nil
	k := c.net.k
	now := k.Now()
	var svc sim.Time
	if c.src != c.dst {
		svc = sim.Time(float64(m.size) / c.net.Bandwidth(c.src, c.dst) * 1e9)
	}
	node := c.net.nodes[c.src]
	ready := node.smallTxBusy
	if ready < now {
		ready = now
	}
	ready += svc
	node.smallTxBusy = ready
	lat := c.net.Latency(c.src, c.dst)
	k.At(ready, func() {
		if c.closed {
			return
		}
		c.startNext()
	})
	k.At(ready+lat, func() {
		if c.closed {
			return
		}
		c.net.BytesMoved += m.size
		c.net.FlowsDone++
		c.deliver(m.payload)
	})
}

// Close tears the channel down, dropping queued and in-flight messages —
// the simulated analogue of a socket reset when a process dies.
func (c *Channel) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.queue = nil
	c.busy = false
	if c.inFly != nil {
		c.inFly.Cancel()
		c.inFly = nil
	}
}

// Closed reports whether Close was called.
func (c *Channel) Closed() bool { return c.closed }
