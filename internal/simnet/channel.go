package simnet

import "ftckpt/internal/sim"

// smallCutoff is the size below which a message takes the fast path: its
// transfer time is charged against a per-node transmit horizon (so bursts
// of control messages still serialize on the NIC) instead of joining the
// fluid bandwidth-sharing machinery.  Without this, an n-process marker
// flood creates O(n²) simultaneous flows whose every arrival reschedules
// every flow on the shared NICs — quadratic simulation cost for messages
// whose bandwidth footprint is negligible.  Messages at or above the
// cutoff (application payloads, checkpoint images) use fluid flows and
// contend normally.
const smallCutoff = 4 << 10

// A Channel is a FIFO, reliable, unidirectional message stream between two
// nodes — the simulated analogue of one TCP connection between two MPI
// peers.  Messages on a channel are transmitted one at a time in order
// (back-to-back messages pipeline: the next transmission starts as soon as
// the previous one leaves the bottleneck, not after its delivery), so the
// FIFO property both checkpointing protocols assume holds by construction.
// Distinct channels between the same pair of nodes compete for bandwidth
// like distinct connections.
type Channel struct {
	net     *Network
	src     int
	dst     int
	deliver func(payload any)
	// queue is a sliding-window ring: startNext advances qhead and the
	// array is reset once drained, so a steady send/transmit cadence
	// reuses the same backing array instead of reallocating per message.
	queue  []message
	qhead  int
	busy   bool
	inFly  *Flow
	closed bool

	// MsgsSent and BytesSent accumulate per-channel statistics.
	MsgsSent  int
	BytesSent Bytes
}

type message struct {
	payload any
	size    Bytes
}

// smallMsg is a pooled fast-path delivery record (see startSmall): it
// carries the payload to the delivery event without a per-message closure
// and returns to the network's pool as it is consumed.
//
// Lifetime rule (enforced by ftlint's poolescape analyzer): a *smallMsg
// is valid from getSmall until smallDeliver recycles it — the delivery
// event is the sole reference; storing the pointer anywhere that
// survives delivery aliases the next message's record.
//
//ftlint:pooled
type smallMsg struct {
	c       *Channel
	payload any
	size    Bytes
}

func (n *Network) getSmall() *smallMsg {
	if last := len(n.smallPool) - 1; last >= 0 {
		sm := n.smallPool[last]
		n.smallPool = n.smallPool[:last]
		return sm
	}
	return &smallMsg{}
}

// NewChannel opens a FIFO message channel from node src to node dst.
// deliver runs as an event callback when each message arrives; it must not
// block (hand off to an LP through a sim.Cond if needed).
func (n *Network) NewChannel(src, dst int, deliver func(payload any)) *Channel {
	return &Channel{net: n, src: src, dst: dst, deliver: deliver}
}

// Src returns the source node.
func (c *Channel) Src() int { return c.src }

// Dst returns the destination node.
func (c *Channel) Dst() int { return c.dst }

// Send enqueues a message.  It never blocks; the sender-side cost of
// copying into the transmit path is modelled by the caller (device service
// profiles), not here.
func (c *Channel) Send(payload any, size Bytes) {
	if c.closed {
		return // messages to/from a dead node vanish, like a broken socket
	}
	c.MsgsSent++
	c.BytesSent += size
	c.queue = append(c.queue, message{payload, size})
	if !c.busy {
		c.startNext()
	}
}

func (c *Channel) startNext() {
	if c.closed || c.qhead == len(c.queue) {
		c.busy = false
		if c.qhead > 0 {
			c.queue = c.queue[:0]
			c.qhead = 0
		}
		return
	}
	m := c.queue[c.qhead]
	c.queue[c.qhead] = message{} // drop the payload reference
	c.qhead++
	if c.qhead == len(c.queue) {
		c.queue = c.queue[:0]
		c.qhead = 0
	}
	c.busy = true
	if m.size < smallCutoff {
		c.startSmall(m)
		return
	}
	n := c.net
	n.flowSeq++
	f := &Flow{
		net:       n,
		seq:       n.flowSeq,
		dst:       c.dst,
		remaining: float64(m.size),
		size:      m.size,
		last:      n.k.Now(),
		latency:   n.Latency(c.src, c.dst),
		ch:        c,
		payload:   m.payload,
	}
	c.inFly = f
	if c.src == c.dst {
		f.doneEv = n.k.AfterArg(0, flowXferComplete, f)
		return
	}
	n.pathInto(f, c.src, c.dst)
	if n.Cluster(c.src) != n.Cluster(c.dst) {
		f.cap = n.topo.WanFlowCap
	}
	n.attach(f)
	n.reschedule()
}

// startSmall transmits a message on the fast path: the unloaded path
// bandwidth, serialized against the sender node's transmit horizon.
func (c *Channel) startSmall(m message) {
	c.inFly = nil
	n := c.net
	k := n.k
	now := k.Now()
	var svc sim.Time
	if c.src != c.dst {
		svc = sim.Time(float64(m.size) / n.Bandwidth(c.src, c.dst) * 1e9)
	}
	node := n.nodes[c.src]
	ready := node.smallTxBusy
	if ready < now {
		ready = now
	}
	ready += svc
	node.smallTxBusy = ready
	lat := n.Latency(c.src, c.dst)
	k.AtArg(ready, smallNext, c)
	sm := n.getSmall()
	sm.c, sm.payload, sm.size = c, m.payload, m.size
	n.deliverAt(c.dst, ready+lat, smallDeliver, sm)
}

// smallNext fires when a fast-path message clears the transmit horizon:
// the channel may start its next message.
func smallNext(x any) {
	c := x.(*Channel)
	if !c.closed {
		c.startNext()
	}
}

// smallDeliver fires one path latency later and hands the payload to the
// receiver, recycling the record.
func smallDeliver(x any) {
	sm := x.(*smallMsg)
	c, payload, size := sm.c, sm.payload, sm.size
	sm.c, sm.payload = nil, nil
	n := c.net
	n.smallPool = append(n.smallPool, sm)
	if c.closed {
		return
	}
	n.BytesMoved += size
	n.FlowsDone++
	c.deliver(payload)
}

// Close tears the channel down, dropping queued and in-flight messages —
// the simulated analogue of a socket reset when a process dies.
func (c *Channel) Close() {
	if c.closed {
		return
	}
	c.closed = true
	c.queue = nil
	c.qhead = 0
	c.busy = false
	if c.inFly != nil {
		c.inFly.Cancel()
		c.inFly = nil
	}
}

// Closed reports whether Close was called.
func (c *Channel) Closed() bool { return c.closed }
