// Package simnet is a flow-level network model on top of the sim kernel.
//
// The model is the one used by flow-level grid simulators: every transfer
// (a point-to-point message or a bulk checkpoint-image stream) is a fluid
// flow that crosses a set of capacity resources — the sender's NIC transmit
// side, the receiver's NIC receive side and, between clusters, each
// cluster's WAN uplink.  Each resource divides its bandwidth equally among
// the flows crossing it and a flow progresses at the minimum of its shares
// (a min-share approximation of max-min fairness).  Whenever a flow starts
// or finishes, the remaining bytes of every flow sharing a resource with it
// are settled at the old rate and their completion events are rescheduled
// at the new rate.  Delivery happens one path latency after the last byte
// is transmitted.
//
// This reproduces the effects the paper measures: checkpoint-image
// transfers competing with application traffic for the NIC, two processes
// sharing one NIC on dual-processor nodes, and the ~20x bandwidth / two
// orders of magnitude latency gap between intra- and inter-cluster links.
//
// Channels (channel.go) add FIFO ordering on top of flows: a Channel
// serializes its messages (one in flight at a time), so per-channel FIFO —
// which both checkpointing protocols require — holds by construction.
package simnet

import (
	"fmt"
	"math"
	"sort"
	"time"

	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// Bytes counts payload sizes.
type Bytes = int64

// Rate is a bandwidth in bytes per second.
type Rate = float64

// Common size units.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
)

// ClusterSpec describes one homogeneous cluster.
type ClusterSpec struct {
	Name    string
	Nodes   int
	NICBW   Rate     // per-node NIC bandwidth, each direction
	Latency sim.Time // one-way intra-cluster message latency
}

// Topology describes the whole platform.
type Topology struct {
	Clusters   []ClusterSpec
	WanLatency sim.Time // one-way latency between any two clusters
	WanBW      Rate     // capacity of each cluster's WAN uplink
	// WanFlowCap caps each individual inter-cluster flow's throughput
	// (TCP window / RTT limiting on high-latency paths) independently of
	// the shared uplink capacity; 0 disables.  This is what makes a
	// single stream ~20x slower between clusters than inside one, as the
	// paper measures with NetPIPE, without starving aggregate traffic.
	WanFlowCap Rate
}

// TotalNodes returns the number of nodes across all clusters.
func (t Topology) TotalNodes() int {
	n := 0
	for _, c := range t.Clusters {
		n += c.Nodes
	}
	return n
}

// resource is a capacity shared equally by the flows crossing it.
type resource struct {
	name  string
	bw    Rate
	flows map[*Flow]struct{}
}

func (r *resource) share() Rate {
	if len(r.flows) == 0 {
		return r.bw
	}
	return r.bw / Rate(len(r.flows))
}

// node is one machine with two independent NIC directions.
type node struct {
	id      int
	cluster int
	tx, rx  *resource
	// smallTxBusy is the fast-path transmit horizon: small messages
	// serialize against it instead of joining the fluid flow machinery.
	smallTxBusy sim.Time
}

// Flow is an in-progress bulk transfer.
type Flow struct {
	net       *Network
	seq       uint64 // creation order, for deterministic rescheduling
	res       []*resource
	cap       Rate    // per-flow rate ceiling (WAN), 0 = none
	remaining float64 // bytes
	rate      Rate
	last      sim.Time
	latency   sim.Time
	doneEv    sim.EventID
	onDone    func()
	onXfer    func() // optional: runs when the last byte clears the bottleneck
	done      bool
	cancelled bool
}

// Network is the simulated platform.
type Network struct {
	k     *sim.Kernel
	topo  Topology
	nodes []*node
	// wanUp[i] is cluster i's uplink, nil for single-cluster topologies.
	wanUp   []*resource
	flowSeq uint64

	// met, when set, mirrors delivery statistics into the observability
	// registry ("net.flows", "net.bytes_moved"); nil-safe.
	met *obs.Metrics

	// BytesMoved and FlowsDone accumulate delivery statistics.
	BytesMoved Bytes
	FlowsDone  int
}

// New builds the platform described by topo on kernel k.
func New(k *sim.Kernel, topo Topology) *Network {
	n := &Network{k: k, topo: topo}
	for ci, c := range topo.Clusters {
		if c.Nodes <= 0 {
			panic(fmt.Sprintf("simnet: cluster %q has %d nodes", c.Name, c.Nodes))
		}
		if c.NICBW <= 0 {
			panic(fmt.Sprintf("simnet: cluster %q has non-positive NIC bandwidth", c.Name))
		}
		for i := 0; i < c.Nodes; i++ {
			id := len(n.nodes)
			n.nodes = append(n.nodes, &node{
				id:      id,
				cluster: ci,
				tx:      &resource{name: fmt.Sprintf("n%d.tx", id), bw: c.NICBW, flows: map[*Flow]struct{}{}},
				rx:      &resource{name: fmt.Sprintf("n%d.rx", id), bw: c.NICBW, flows: map[*Flow]struct{}{}},
			})
		}
	}
	if len(topo.Clusters) > 1 {
		if topo.WanBW <= 0 {
			panic("simnet: multi-cluster topology needs WanBW > 0")
		}
		n.wanUp = make([]*resource, len(topo.Clusters))
		for ci := range topo.Clusters {
			n.wanUp[ci] = &resource{name: fmt.Sprintf("wan%d", ci), bw: topo.WanBW, flows: map[*Flow]struct{}{}}
		}
	}
	return n
}

// Kernel returns the simulation kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// SetMetrics attaches the observability registry delivery statistics are
// mirrored into (nil disables).
func (n *Network) SetMetrics(m *obs.Metrics) { n.met = m }

// NumNodes returns the number of nodes in the platform.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Cluster returns the cluster index of a node.
func (n *Network) Cluster(nodeID int) int { return n.nodes[nodeID].cluster }

// Latency returns the one-way latency between two nodes.
func (n *Network) Latency(src, dst int) sim.Time {
	a, b := n.nodes[src], n.nodes[dst]
	if a.cluster == b.cluster {
		return n.topo.Clusters[a.cluster].Latency
	}
	return n.topo.WanLatency
}

// Bandwidth returns the unloaded bottleneck bandwidth of one src→dst flow.
func (n *Network) Bandwidth(src, dst int) Rate {
	bw := math.Inf(1)
	for _, r := range n.pathResources(src, dst) {
		if r.bw < bw {
			bw = r.bw
		}
	}
	if n.Cluster(src) != n.Cluster(dst) && n.topo.WanFlowCap > 0 && n.topo.WanFlowCap < bw {
		bw = n.topo.WanFlowCap
	}
	return bw
}

// pathResources returns the capacity resources a src→dst flow crosses.
func (n *Network) pathResources(src, dst int) []*resource {
	a, b := n.nodes[src], n.nodes[dst]
	res := []*resource{a.tx, b.rx}
	if a.cluster != b.cluster {
		res = append(res, n.wanUp[a.cluster], n.wanUp[b.cluster])
	}
	return res
}

// StartFlow begins a bulk transfer of size bytes from node src to node dst.
// onDone runs as an event one path latency after the last byte is
// transmitted.  A zero-size flow pays only the latency.  Must be called
// from an LP or event callback.
func (n *Network) StartFlow(src, dst int, size Bytes, onDone func()) *Flow {
	return n.StartFlowCapped(src, dst, size, 0, onDone)
}

// StartFlowCapped is StartFlow with a per-flow rate ceiling (0 = none) —
// used for transfers paced at the sender, like MPICH-V's daemon
// interleaving image shipping with message handling.
func (n *Network) StartFlowCapped(src, dst int, size Bytes, cap Rate, onDone func()) *Flow {
	n.flowSeq++
	f := &Flow{
		net:       n,
		seq:       n.flowSeq,
		cap:       cap,
		remaining: float64(size),
		last:      n.k.Now(),
		latency:   n.Latency(src, dst),
		onDone: func() {
			n.BytesMoved += size
			n.FlowsDone++
			n.met.Inc("net.flows")
			n.met.Add("net.bytes_moved", size)
			if onDone != nil {
				onDone()
			}
		},
	}
	if src == dst {
		// Loopback: latency only (applied by transferComplete); intra-node
		// copies are not network flows.
		f.doneEv = n.k.After(0, f.transferComplete)
		return f
	}
	f.res = n.pathResources(src, dst)
	if n.Cluster(src) != n.Cluster(dst) {
		if wc := n.topo.WanFlowCap; wc > 0 && (f.cap == 0 || wc < f.cap) {
			f.cap = wc
		}
	}
	affected := f.attach()
	n.reschedule(affected)
	return f
}

// attach inserts the flow into its resources and returns every flow whose
// rate may have changed (including f itself).
func (f *Flow) attach() map[*Flow]struct{} {
	affected := map[*Flow]struct{}{f: {}}
	for _, r := range f.res {
		for g := range r.flows {
			affected[g] = struct{}{}
		}
		r.flows[f] = struct{}{}
	}
	return affected
}

// detach removes the flow from its resources and returns the remaining
// flows whose rate may have changed.
func (f *Flow) detach() map[*Flow]struct{} {
	affected := map[*Flow]struct{}{}
	for _, r := range f.res {
		delete(r.flows, f)
		for g := range r.flows {
			affected[g] = struct{}{}
		}
	}
	f.res = nil
	return affected
}

// reschedule settles progress and recomputes rate and completion time for
// every affected live flow.  In the min-share model a flow's rate depends
// only on the population counts of its own resources, so a single pass is
// exact for the resources whose membership changed.
func (n *Network) reschedule(affected map[*Flow]struct{}) {
	now := n.k.Now()
	// Iterate in flow-creation order: map iteration order would make
	// equal-time completions fire nondeterministically.
	ordered := make([]*Flow, 0, len(affected))
	for g := range affected {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].seq < ordered[j].seq })
	for _, g := range ordered {
		if g.done || g.cancelled {
			continue
		}
		if g.rate > 0 {
			g.remaining -= g.rate * (now - g.last).Seconds()
			if g.remaining < 0 {
				g.remaining = 0
			}
		}
		g.last = now
		rate := math.Inf(1)
		for _, r := range g.res {
			if s := r.share(); s < rate {
				rate = s
			}
		}
		if g.cap > 0 && rate > g.cap {
			rate = g.cap
		}
		g.rate = rate
		if g.doneEv != 0 {
			n.k.Cancel(g.doneEv)
			g.doneEv = 0
		}
		var dt sim.Time
		if g.remaining > 0 && !math.IsInf(g.rate, 1) {
			dt = sim.Time(g.remaining / g.rate * float64(time.Second))
			if dt < 0 {
				dt = 0
			}
		}
		g.doneEv = n.k.After(dt, g.transferComplete)
	}
}

// transferComplete fires when the last byte leaves the bottleneck; the
// delivery callback runs one path latency later.
func (f *Flow) transferComplete() {
	if f.done || f.cancelled {
		return
	}
	f.done = true
	f.doneEv = 0
	f.remaining = 0
	if f.res != nil {
		affected := f.detach()
		f.net.reschedule(affected)
	}
	f.net.k.After(f.latency, func() {
		if !f.cancelled {
			f.onDone()
		}
	})
	if f.onXfer != nil {
		f.onXfer()
	}
}

// Cancel aborts the flow; onDone will not run.  Safe to call at any point,
// including after completion (then it only suppresses a pending delivery).
func (f *Flow) Cancel() {
	f.cancelled = true
	if f.doneEv != 0 {
		f.net.k.Cancel(f.doneEv)
		f.doneEv = 0
	}
	if !f.done && f.res != nil {
		affected := f.detach()
		f.net.reschedule(affected)
	}
	f.done = true
}
