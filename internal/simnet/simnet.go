// Package simnet is a flow-level network model on top of the sim kernel.
//
// The model is the one used by flow-level grid simulators: every transfer
// (a point-to-point message or a bulk checkpoint-image stream) is a fluid
// flow that crosses a set of capacity resources — the sender's NIC transmit
// side, the receiver's NIC receive side and, between clusters, each
// cluster's WAN uplink.  Each resource divides its bandwidth equally among
// the flows crossing it and a flow progresses at the minimum of its shares
// (a min-share approximation of max-min fairness).  Whenever a flow starts
// or finishes, the remaining bytes of every flow sharing a resource with it
// are settled at the old rate and their completion events are rescheduled
// at the new rate.  Delivery happens one path latency after the last byte
// is transmitted.
//
// This reproduces the effects the paper measures: checkpoint-image
// transfers competing with application traffic for the NIC, two processes
// sharing one NIC on dual-processor nodes, and the ~20x bandwidth / two
// orders of magnitude latency gap between intra- and inter-cluster links.
//
// Channels (channel.go) add FIFO ordering on top of flows: a Channel
// serializes its messages (one in flight at a time), so per-channel FIFO —
// which both checkpointing protocols require — holds by construction.
//
// The implementation keeps the per-event hot path allocation-free: flow
// membership lives in seq-ordered slices (not maps), the affected set of a
// reschedule is an epoch-marked scratch slice reused across calls, a
// flow's resource path is a fixed-size array, and completion/delivery
// events are scheduled through the kernel's closure-free AfterArg form.
package simnet

import (
	"fmt"
	"math"
	"time"

	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// Bytes counts payload sizes.
type Bytes = int64

// Rate is a bandwidth in bytes per second.
type Rate = float64

// Common size units.
const (
	KB Bytes = 1 << 10
	MB Bytes = 1 << 20
	GB Bytes = 1 << 30
)

// ClusterSpec describes one homogeneous cluster.
type ClusterSpec struct {
	Name    string
	Nodes   int
	NICBW   Rate     // per-node NIC bandwidth, each direction
	Latency sim.Time // one-way intra-cluster message latency
}

// Topology describes the whole platform.
type Topology struct {
	Clusters   []ClusterSpec
	WanLatency sim.Time // one-way latency between any two clusters
	WanBW      Rate     // capacity of each cluster's WAN uplink
	// WanFlowCap caps each individual inter-cluster flow's throughput
	// (TCP window / RTT limiting on high-latency paths) independently of
	// the shared uplink capacity; 0 disables.  This is what makes a
	// single stream ~20x slower between clusters than inside one, as the
	// paper measures with NetPIPE, without starving aggregate traffic.
	WanFlowCap Rate
}

// TotalNodes returns the number of nodes across all clusters.
func (t Topology) TotalNodes() int {
	n := 0
	for _, c := range t.Clusters {
		n += c.Nodes
	}
	return n
}

// resource is a capacity shared equally by the flows crossing it.  The
// member list is kept in flow-creation (seq) order: flows attach at
// creation and seq is monotonic, so plain appends preserve it and ordered
// removal keeps it — which makes the affected set of a reschedule
// near-sorted for free.
type resource struct {
	name  string
	bw    Rate
	flows []*Flow
}

func (r *resource) share() Rate {
	if len(r.flows) == 0 {
		return r.bw
	}
	return r.bw / Rate(len(r.flows))
}

// node is one machine with two independent NIC directions.
type node struct {
	id      int
	cluster int
	tx, rx  *resource
	// smallTxBusy is the fast-path transmit horizon: small messages
	// serialize against it instead of joining the fluid flow machinery.
	smallTxBusy sim.Time
}

// maxPathRes is the most resources a flow can cross: src NIC tx, dst NIC
// rx, and (between clusters) each side's WAN uplink.
const maxPathRes = 4

// Flow is an in-progress bulk transfer.
type Flow struct {
	net       *Network
	seq       uint64 // creation order, for deterministic rescheduling
	dst       int    // destination node, for delivery-event shard placement
	res       [maxPathRes]*resource
	nres      int
	cap       Rate    // per-flow rate ceiling (WAN), 0 = none
	remaining float64 // bytes
	size      Bytes
	rate      Rate
	last      sim.Time
	latency   sim.Time
	doneEv    sim.EventID
	onDone    func()   // StartFlow API callback; nil for channel flows
	ch        *Channel // owning channel for bulk channel messages
	payload   any      // delivered payload for channel flows
	done      bool
	cancelled bool
	mark      uint64 // affected-set epoch (see Network.addAffected)
}

// Network is the simulated platform.
type Network struct {
	k     *sim.Kernel
	topo  Topology
	nodes []*node
	// wanUp[i] is cluster i's uplink, nil for single-cluster topologies.
	wanUp   []*resource
	flowSeq uint64

	// affected is the scratch set of flows whose rate may have changed in
	// the current attach/detach; epoch-marking makes membership tests O(1)
	// without clearing per-flow state between calls.
	affected []*Flow
	epoch    uint64

	// smallPool recycles the fast-path delivery records of channel.go.
	//
	//ftlint:pool
	smallPool []*smallMsg

	// met, when set, mirrors delivery statistics into the observability
	// registry ("net.flows", "net.bytes_moved"); nil-safe.
	met *obs.Metrics

	// shardOf, when set, maps a node to its kernel shard so delivery
	// events can be staged by the receiver's shard worker (see
	// SetShardOf); nil schedules deliveries in the sender's context.
	shardOf func(node int) int

	// BytesMoved and FlowsDone accumulate delivery statistics.
	BytesMoved Bytes
	FlowsDone  int
}

// New builds the platform described by topo on kernel k.
func New(k *sim.Kernel, topo Topology) *Network {
	n := &Network{k: k, topo: topo}
	for ci, c := range topo.Clusters {
		if c.Nodes <= 0 {
			panic(fmt.Sprintf("simnet: cluster %q has %d nodes", c.Name, c.Nodes))
		}
		if c.NICBW <= 0 {
			panic(fmt.Sprintf("simnet: cluster %q has non-positive NIC bandwidth", c.Name))
		}
		for i := 0; i < c.Nodes; i++ {
			id := len(n.nodes)
			n.nodes = append(n.nodes, &node{
				id:      id,
				cluster: ci,
				tx:      &resource{name: fmt.Sprintf("n%d.tx", id), bw: c.NICBW},
				rx:      &resource{name: fmt.Sprintf("n%d.rx", id), bw: c.NICBW},
			})
		}
	}
	if len(topo.Clusters) > 1 {
		if topo.WanBW <= 0 {
			panic("simnet: multi-cluster topology needs WanBW > 0")
		}
		n.wanUp = make([]*resource, len(topo.Clusters))
		for ci := range topo.Clusters {
			n.wanUp[ci] = &resource{name: fmt.Sprintf("wan%d", ci), bw: topo.WanBW}
		}
	}
	return n
}

// Kernel returns the simulation kernel the network runs on.
func (n *Network) Kernel() *sim.Kernel { return n.k }

// SetMetrics attaches the observability registry delivery statistics are
// mirrored into (nil disables).
func (n *Network) SetMetrics(m *obs.Metrics) { n.met = m }

// SetShardOf installs the node→shard placement used to stage delivery
// events on the receiving node's shard when the kernel is sharded.  Like
// every ownership hint, it tunes staging locality only — dispatch follows
// the global (time, seq) order — so the mapping can never change
// simulation output.  nil (the default) leaves deliveries in the sender's
// scheduling context.
func (n *Network) SetShardOf(f func(node int) int) { n.shardOf = f }

// deliverAt schedules a delivery callback at t, staged on the destination
// node's shard when a placement is installed.
func (n *Network) deliverAt(dst int, t sim.Time, fn func(any), arg any) {
	if n.shardOf != nil {
		n.k.AtArgOn(n.shardOf(dst), t, fn, arg)
		return
	}
	n.k.AtArg(t, fn, arg)
}

// Lookahead returns the platform's conservative-parallel lookahead: the
// minimum one-way link latency, which bounds how far apart in virtual
// time two nodes can causally affect each other.  The sharded kernel uses
// it to size its synchronization windows (sim.Kernel.SetLookahead); the
// value affects staging batch sizes only, never simulation output.
func (n *Network) Lookahead() sim.Time {
	la := sim.Time(math.MaxInt64)
	for _, c := range n.topo.Clusters {
		if c.Latency < la {
			la = c.Latency
		}
	}
	if len(n.topo.Clusters) > 1 && n.topo.WanLatency < la {
		la = n.topo.WanLatency
	}
	if la == sim.Time(math.MaxInt64) || la < 0 {
		la = 0
	}
	return la
}

// NumNodes returns the number of nodes in the platform.
func (n *Network) NumNodes() int { return len(n.nodes) }

// Cluster returns the cluster index of a node.
func (n *Network) Cluster(nodeID int) int { return n.nodes[nodeID].cluster }

// Latency returns the one-way latency between two nodes.
func (n *Network) Latency(src, dst int) sim.Time {
	a, b := n.nodes[src], n.nodes[dst]
	if a.cluster == b.cluster {
		return n.topo.Clusters[a.cluster].Latency
	}
	return n.topo.WanLatency
}

// Bandwidth returns the unloaded bottleneck bandwidth of one src→dst flow.
func (n *Network) Bandwidth(src, dst int) Rate {
	a, b := n.nodes[src], n.nodes[dst]
	bw := a.tx.bw
	if b.rx.bw < bw {
		bw = b.rx.bw
	}
	if a.cluster != b.cluster {
		if u := n.wanUp[a.cluster].bw; u < bw {
			bw = u
		}
		if u := n.wanUp[b.cluster].bw; u < bw {
			bw = u
		}
		if wc := n.topo.WanFlowCap; wc > 0 && wc < bw {
			bw = wc
		}
	}
	return bw
}

// pathInto fills the flow's resource array with the capacities a src→dst
// transfer crosses.
func (n *Network) pathInto(f *Flow, src, dst int) {
	a, b := n.nodes[src], n.nodes[dst]
	f.res[0], f.res[1] = a.tx, b.rx
	f.nres = 2
	if a.cluster != b.cluster {
		f.res[2], f.res[3] = n.wanUp[a.cluster], n.wanUp[b.cluster]
		f.nres = 4
	}
}

// StartFlow begins a bulk transfer of size bytes from node src to node dst.
// onDone runs as an event one path latency after the last byte is
// transmitted.  A zero-size flow pays only the latency.  Must be called
// from an LP or event callback.
func (n *Network) StartFlow(src, dst int, size Bytes, onDone func()) *Flow {
	return n.StartFlowCapped(src, dst, size, 0, onDone)
}

// StartFlowCapped is StartFlow with a per-flow rate ceiling (0 = none) —
// used for transfers paced at the sender, like MPICH-V's daemon
// interleaving image shipping with message handling.
func (n *Network) StartFlowCapped(src, dst int, size Bytes, cap Rate, onDone func()) *Flow {
	n.flowSeq++
	f := &Flow{
		net:       n,
		seq:       n.flowSeq,
		dst:       dst,
		cap:       cap,
		remaining: float64(size),
		size:      size,
		last:      n.k.Now(),
		latency:   n.Latency(src, dst),
		onDone:    onDone,
	}
	if src == dst {
		// Loopback: latency only (applied by transferComplete); intra-node
		// copies are not network flows.
		f.doneEv = n.k.AfterArg(0, flowXferComplete, f)
		return f
	}
	n.pathInto(f, src, dst)
	if n.Cluster(src) != n.Cluster(dst) {
		if wc := n.topo.WanFlowCap; wc > 0 && (f.cap == 0 || wc < f.cap) {
			f.cap = wc
		}
	}
	n.attach(f)
	n.reschedule()
	return f
}

// beginAffected starts a new affected-set collection.
func (n *Network) beginAffected() {
	n.epoch++
	n.affected = n.affected[:0]
}

// addAffected inserts a flow into the current affected set once.
func (n *Network) addAffected(g *Flow) {
	if g.mark == n.epoch {
		return
	}
	g.mark = n.epoch
	n.affected = append(n.affected, g)
}

// attach inserts the flow into its resources, collecting every flow whose
// rate may have changed (including f itself) into the affected set.
func (n *Network) attach(f *Flow) {
	n.beginAffected()
	n.addAffected(f)
	for i := 0; i < f.nres; i++ {
		r := f.res[i]
		for _, g := range r.flows {
			n.addAffected(g)
		}
		r.flows = append(r.flows, f)
	}
}

// detach removes the flow from its resources, collecting the remaining
// flows whose rate may have changed into the affected set.
func (n *Network) detach(f *Flow) {
	n.beginAffected()
	for i := 0; i < f.nres; i++ {
		r := f.res[i]
		for j, g := range r.flows {
			if g == f {
				r.flows = append(r.flows[:j], r.flows[j+1:]...)
				break
			}
		}
		for _, g := range r.flows {
			n.addAffected(g)
		}
		f.res[i] = nil
	}
	f.nres = 0
}

// reschedule settles progress and recomputes rate and completion time for
// every live flow in the affected set.  In the min-share model a flow's
// rate depends only on the population counts of its own resources, so a
// single pass is exact for the resources whose membership changed.
func (n *Network) reschedule() {
	now := n.k.Now()
	// Iterate in flow-creation order — the per-resource lists are already
	// seq-ordered, so the concatenated set is near-sorted and an insertion
	// sort settles it without allocating.  (Collection order would make
	// equal-time completions fire in attach order, not creation order.)
	aff := n.affected
	for i := 1; i < len(aff); i++ {
		g := aff[i]
		j := i - 1
		for j >= 0 && aff[j].seq > g.seq {
			aff[j+1] = aff[j]
			j--
		}
		aff[j+1] = g
	}
	for _, g := range aff {
		if g.done || g.cancelled {
			continue
		}
		if g.rate > 0 {
			g.remaining -= g.rate * (now - g.last).Seconds()
			if g.remaining < 0 {
				g.remaining = 0
			}
		}
		g.last = now
		rate := math.Inf(1)
		for i := 0; i < g.nres; i++ {
			if s := g.res[i].share(); s < rate {
				rate = s
			}
		}
		if g.cap > 0 && rate > g.cap {
			rate = g.cap
		}
		g.rate = rate
		if g.doneEv != 0 {
			n.k.Cancel(g.doneEv)
			g.doneEv = 0
		}
		var dt sim.Time
		if g.remaining > 0 && !math.IsInf(g.rate, 1) {
			dt = sim.Time(g.remaining / g.rate * float64(time.Second))
			if dt < 0 {
				dt = 0
			}
		}
		g.doneEv = n.k.AfterArg(dt, flowXferComplete, g)
	}
}

// flowXferComplete is the shared completion callback: scheduling it through
// AfterArg avoids binding a method-value closure per reschedule.
func flowXferComplete(x any) { x.(*Flow).transferComplete() }

// transferComplete fires when the last byte leaves the bottleneck; the
// delivery callback runs one path latency later.
func (f *Flow) transferComplete() {
	if f.done || f.cancelled {
		return
	}
	f.done = true
	f.doneEv = 0
	f.remaining = 0
	if f.nres > 0 {
		f.net.detach(f)
		f.net.reschedule()
	}
	f.net.deliverAt(f.dst, f.net.k.Now()+f.latency, deliverFlow, f)
	if f.ch != nil {
		// The channel's next message may start transmitting as soon as
		// this one clears the bottleneck.
		f.ch.startNext()
	}
}

// deliverFlow runs one path latency after the last byte cleared the
// bottleneck: it settles the delivery statistics and hands the result to
// the receiver (channel delivery callback or StartFlow onDone).
func deliverFlow(x any) {
	f := x.(*Flow)
	if f.cancelled {
		return
	}
	n := f.net
	if c := f.ch; c != nil {
		if c.closed {
			return
		}
		n.BytesMoved += f.size
		n.FlowsDone++
		c.deliver(f.payload)
		return
	}
	n.BytesMoved += f.size
	n.FlowsDone++
	n.met.Inc("net.flows")
	n.met.Add("net.bytes_moved", f.size)
	if f.onDone != nil {
		f.onDone()
	}
}

// Cancel aborts the flow; onDone will not run.  Safe to call at any point,
// including after completion (then it only suppresses a pending delivery).
func (f *Flow) Cancel() {
	f.cancelled = true
	if f.doneEv != 0 {
		f.net.k.Cancel(f.doneEv)
		f.doneEv = 0
	}
	if !f.done && f.nres > 0 {
		f.net.detach(f)
		f.net.reschedule()
	}
	f.done = true
}
