package simnet

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ftckpt/internal/sim"
)

// lan builds a single 8-node cluster: 100 MB/s NICs, 50µs latency.
func lan(k *sim.Kernel) *Network {
	return New(k, Topology{Clusters: []ClusterSpec{{
		Name: "lan", Nodes: 8, NICBW: 100e6, Latency: 50 * time.Microsecond,
	}}})
}

// grid builds two 4-node clusters joined by a 5ms / 50 MB/s WAN.
func grid(k *sim.Kernel) *Network {
	return New(k, Topology{
		Clusters: []ClusterSpec{
			{Name: "a", Nodes: 4, NICBW: 100e6, Latency: 50 * time.Microsecond},
			{Name: "b", Nodes: 4, NICBW: 100e6, Latency: 50 * time.Microsecond},
		},
		WanLatency: 5 * time.Millisecond,
		WanBW:      50e6,
	})
}

func within(t *testing.T, got, want, tol time.Duration, what string) {
	t.Helper()
	d := got - want
	if d < 0 {
		d = -d
	}
	if d > tol {
		t.Fatalf("%s: got %v, want %v (±%v)", what, got, want, tol)
	}
}

func TestSingleFlowTime(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	var done sim.Time
	// 100 MB at 100 MB/s = 1s + 50µs latency.
	n.StartFlow(0, 1, 100e6, func() { done = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, done, time.Second+50*time.Microsecond, time.Millisecond, "flow completion")
}

func TestTwoFlowsShareTxNIC(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	var d1, d2 sim.Time
	n.StartFlow(0, 1, 50e6, func() { d1 = k.Now() })
	n.StartFlow(0, 2, 50e6, func() { d2 = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Both share node 0's tx: each runs at 50 MB/s, finishing ~1s.
	within(t, d1, time.Second, 2*time.Millisecond, "flow 1")
	within(t, d2, time.Second, 2*time.Millisecond, "flow 2")
}

func TestFlowDepartureSpeedsUpSurvivor(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	var dBig sim.Time
	n.StartFlow(0, 1, 100e6, func() { dBig = k.Now() })
	n.StartFlow(0, 2, 25e6, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Phase 1: both at 50 MB/s until the small one moves 25MB (0.5s).
	// Phase 2: big one has 75MB left at 100 MB/s = 0.75s.  Total 1.25s.
	within(t, dBig, 1250*time.Millisecond, 3*time.Millisecond, "big flow")
}

func TestCancelFreesBandwidth(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	var dBig sim.Time
	n.StartFlow(0, 1, 100e6, func() { dBig = k.Now() })
	f2 := n.StartFlow(0, 2, 1e9, func() { t.Error("cancelled flow delivered") })
	k.After(500*time.Millisecond, f2.Cancel)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 0.5s at 50 MB/s moves 25MB; remaining 75MB at 100 MB/s = 0.75s.
	within(t, dBig, 1250*time.Millisecond, 3*time.Millisecond, "big flow after cancel")
}

func TestRxNICContention(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	var d1 sim.Time
	// Two senders into one receiver: rx NIC is the bottleneck.
	n.StartFlow(0, 2, 50e6, func() { d1 = k.Now() })
	n.StartFlow(1, 2, 50e6, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, d1, time.Second, 2*time.Millisecond, "rx-shared flow")
}

func TestWanLatencyAndBandwidth(t *testing.T) {
	k := sim.New(1)
	n := grid(k)
	if got := n.Latency(0, 5); got != 5*time.Millisecond {
		t.Fatalf("inter-cluster latency %v", got)
	}
	if got := n.Latency(0, 1); got != 50*time.Microsecond {
		t.Fatalf("intra-cluster latency %v", got)
	}
	var done sim.Time
	n.StartFlow(0, 5, 50e6, func() { done = k.Now() }) // 50MB over 50MB/s WAN
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, done, time.Second+5*time.Millisecond, 2*time.Millisecond, "wan flow")
}

func TestWanUplinkShared(t *testing.T) {
	k := sim.New(1)
	n := grid(k)
	var d1 sim.Time
	// Two flows from different cluster-a nodes share cluster a's uplink.
	n.StartFlow(0, 4, 25e6, func() { d1 = k.Now() })
	n.StartFlow(1, 5, 25e6, func() {})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, d1, time.Second+5*time.Millisecond, 3*time.Millisecond, "shared uplink")
}

func TestWanFlowCapLimitsSingleStream(t *testing.T) {
	k := sim.New(1)
	topo := Topology{
		Clusters: []ClusterSpec{
			{Name: "a", Nodes: 2, NICBW: 100e6, Latency: 50 * time.Microsecond},
			{Name: "b", Nodes: 2, NICBW: 100e6, Latency: 50 * time.Microsecond},
		},
		WanLatency: 5 * time.Millisecond,
		WanBW:      50e6,
		WanFlowCap: 5e6,
	}
	n := New(k, topo)
	var one, agg sim.Time
	// A single capped stream crawls at the flow cap...
	n.StartFlow(0, 2, 5e6, func() { one = k.Now() })
	// ...while many parallel streams share the uplink capacity.
	remaining := 8
	for i := 0; i < 8; i++ {
		n.StartFlow(1, 3, 5e6, func() {
			remaining--
			if remaining == 0 {
				agg = k.Now()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, one, time.Second+5*time.Millisecond, 10*time.Millisecond, "capped single stream")
	// 8×5MB over a 50MB/s uplink: capacity-bound at ~0.9s (the first
	// stream holds 5MB/s of it), far better than 8 serial capped streams.
	if agg > 1200*time.Millisecond {
		t.Fatalf("aggregate took %v; uplink capacity unused", agg)
	}
}

func TestCappedChannelMessage(t *testing.T) {
	k := sim.New(1)
	topo := Topology{
		Clusters: []ClusterSpec{
			{Name: "a", Nodes: 1, NICBW: 100e6, Latency: 50 * time.Microsecond},
			{Name: "b", Nodes: 1, NICBW: 100e6, Latency: 50 * time.Microsecond},
		},
		WanLatency: 5 * time.Millisecond,
		WanBW:      50e6,
		WanFlowCap: 5e6,
	}
	n := New(k, topo)
	var at sim.Time
	ch := n.NewChannel(0, 1, func(any) { at = k.Now() })
	ch.Send("big", 5e6) // above smallCutoff → fluid, capped
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, at, time.Second+5*time.Millisecond, 10*time.Millisecond, "capped channel message")
}

func TestLoopbackLatencyOnly(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	var done sim.Time
	n.StartFlow(3, 3, 1e9, func() { done = k.Now() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	within(t, done, 50*time.Microsecond, time.Microsecond, "loopback")
}

func TestChannelFIFO(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	var got []int
	ch := n.NewChannel(0, 1, func(p any) { got = append(got, p.(int)) })
	// A large message followed by small ones: without serialization the
	// small ones would overtake.
	ch.Send(0, 50e6)
	ch.Send(1, 1)
	ch.Send(2, 1)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery order %v", got)
		}
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d, want 3", len(got))
	}
}

func TestChannelPipelines(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	count := 0
	var last sim.Time
	ch := n.NewChannel(0, 1, func(p any) { count++; last = k.Now() })
	for i := 0; i < 10; i++ {
		ch.Send(i, 10e6) // 10 × 10MB = 1s of transmission
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 10 {
		t.Fatalf("delivered %d", count)
	}
	// Back-to-back: total ≈ N·size/bw + one latency, NOT N·(transfer+latency).
	within(t, last, time.Second+50*time.Microsecond, 5*time.Millisecond, "pipelined channel")
}

func TestChannelClose(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	delivered := 0
	ch := n.NewChannel(0, 1, func(p any) { delivered++ })
	ch.Send("a", 50e6)
	ch.Send("b", 1)
	k.After(time.Millisecond, ch.Close)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d messages on closed channel", delivered)
	}
	ch.Send("c", 1) // send after close is a silent drop
	if ch.MsgsSent != 2 {
		t.Fatalf("MsgsSent = %d, want 2 (post-close send not counted)", ch.MsgsSent)
	}
}

func TestCrossChannelsIndependent(t *testing.T) {
	k := sim.New(1)
	n := lan(k)
	var dSmall sim.Time
	chBig := n.NewChannel(0, 1, func(p any) {})
	chSmall := n.NewChannel(2, 3, func(p any) { dSmall = k.Now() })
	chBig.Send("big", 100e6)
	chSmall.Send("small", 1000)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if dSmall > time.Millisecond {
		t.Fatalf("independent channel delayed: %v", dSmall)
	}
}

// TestConservation: all bytes sent over random flow sets are delivered, and
// every flow's completion time is at least its unloaded lower bound.
func TestConservation(t *testing.T) {
	f := func(seed int64) bool {
		k := sim.New(seed)
		n := lan(k)
		rng := rand.New(rand.NewSource(seed))
		var want Bytes
		nf := 2 + rng.Intn(10)
		ok := true
		for i := 0; i < nf; i++ {
			src := rng.Intn(8)
			dst := rng.Intn(8)
			size := Bytes(1 + rng.Intn(20e6))
			want += size
			lower := k.Now() + n.Latency(src, dst) +
				sim.Time(float64(size)/n.Bandwidth(src, dst)*float64(time.Second))
			if src == dst {
				lower = k.Now() + n.Latency(src, dst)
			}
			n.StartFlow(src, dst, size, func() {
				if k.Now() < lower-time.Microsecond {
					ok = false
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok && n.BytesMoved == want && n.FlowsDone == nf
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestChannelFIFOProperty: arbitrary message size sequences are always
// delivered in order.
func TestChannelFIFOProperty(t *testing.T) {
	f := func(seed int64) bool {
		k := sim.New(seed)
		n := lan(k)
		rng := rand.New(rand.NewSource(seed))
		var got []int
		ch := n.NewChannel(0, 1, func(p any) { got = append(got, p.(int)) })
		nm := 1 + rng.Intn(30)
		for i := 0; i < nm; i++ {
			ch.Send(i, Bytes(rng.Intn(5e6)))
		}
		if err := k.Run(); err != nil {
			return false
		}
		if len(got) != nm {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestTopologyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for invalid topology")
		}
	}()
	New(sim.New(1), Topology{Clusters: []ClusterSpec{{Name: "x", Nodes: 0}}})
}

func TestTotalNodes(t *testing.T) {
	topo := Topology{Clusters: []ClusterSpec{{Nodes: 3, NICBW: 1, Latency: 1}, {Nodes: 5, NICBW: 1, Latency: 1}}}
	if topo.TotalNodes() != 8 {
		t.Fatalf("TotalNodes = %d", topo.TotalNodes())
	}
}

func ExampleNetwork_StartFlow() {
	k := sim.New(0)
	n := New(k, Topology{Clusters: []ClusterSpec{{Name: "c", Nodes: 2, NICBW: 1e6, Latency: time.Millisecond}}})
	n.StartFlow(0, 1, 1e6, func() {
		fmt.Println("delivered at", k.Now())
	})
	_ = k.Run()
	// Output: delivered at 1.001s
}
