package simnet

import (
	"testing"
	"time"

	"ftckpt/internal/sim"
)

func benchTopo() Topology {
	return Topology{Clusters: []ClusterSpec{{
		Name: "bench", Nodes: 4, NICBW: 100 * float64(MB), Latency: 50 * time.Microsecond,
	}}}
}

// BenchmarkChannelSmall measures the small-message fast path: b.N
// back-to-back sub-cutoff messages through one FIFO channel, including
// their delivery events.
func BenchmarkChannelSmall(b *testing.B) {
	b.ReportAllocs()
	k := sim.New(1)
	n := New(k, benchTopo())
	got := 0
	ch := n.NewChannel(0, 1, func(payload any) { got++ })
	k.After(0, func() {
		for i := 0; i < b.N; i++ {
			ch.Send(i, 512)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkChannelBulk measures the fluid-flow path: b.N above-cutoff
// messages on one channel while a competing channel keeps the shared NIC
// busy, so every completion reschedules a neighbour.
func BenchmarkChannelBulk(b *testing.B) {
	b.ReportAllocs()
	k := sim.New(1)
	n := New(k, benchTopo())
	got := 0
	ch := n.NewChannel(0, 1, func(payload any) { got++ })
	rival := n.NewChannel(0, 2, func(payload any) {})
	k.After(0, func() {
		for i := 0; i < b.N; i++ {
			ch.Send(i, 64*KB)
			rival.Send(i, 64*KB)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
	if got != b.N {
		b.Fatalf("delivered %d of %d", got, b.N)
	}
}

// BenchmarkFlows measures raw StartFlow churn: pairs of competing bulk
// flows started back-to-back, exercising attach/detach/reschedule.
func BenchmarkFlows(b *testing.B) {
	b.ReportAllocs()
	k := sim.New(1)
	n := New(k, benchTopo())
	done := 0
	var start func()
	start = func() {
		n.StartFlow(0, 1, 256*KB, func() {
			done++
			if done < b.N {
				start()
			}
		})
		n.StartFlow(2, 1, 128*KB, nil)
	}
	k.After(0, start)
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
