package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"ftckpt/internal/sim"
)

func TestEventTypeNames(t *testing.T) {
	for ty := EventType(0); ty < numEventTypes; ty++ {
		name := ty.String()
		if name == "" || name == "unknown" {
			t.Fatalf("event type %d has no name", ty)
		}
		if name != strings.ToLower(name) || strings.Contains(name, " ") {
			t.Fatalf("event type %d name %q is not kebab-case", ty, name)
		}
	}
	if numEventTypes.String() != "unknown" {
		t.Fatal("out-of-range type must stringify as unknown")
	}
}

func TestNilHubAndMetricsAreNoOps(t *testing.T) {
	var h *Hub
	h.Emit(Event{Type: EvWaveCommit}) // must not panic
	if h.Active() {
		t.Fatal("nil hub active")
	}
	var m *Metrics
	m.Inc("x")
	m.Add("x", 3)
	m.Set("g", 1.5)
	m.Observe("h", time.Second)
	m.Touch("x")
	m.TouchHist("h")
	if m.Counter("x") != 0 || m.Gauge("g") != 0 || m.Hist("h") != nil {
		t.Fatal("nil metrics returned values")
	}
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatalf("nil metrics JSON invalid: %q", buf.String())
	}
}

func TestHubFanout(t *testing.T) {
	a, b := NewCollector(), NewCollector()
	h := NewHub(a, nil, b) // nils are skipped
	if !h.Active() {
		t.Fatal("hub with sinks inactive")
	}
	h.Emit(Event{Type: EvMarkerSent, Rank: 3})
	h.Emit(Event{Type: EvMarkerRecv, Rank: 4})
	for _, c := range []*Collector{a, b} {
		if len(c.Events()) != 2 || c.Count(EvMarkerSent) != 1 {
			t.Fatalf("fanout missed a sink: %v", c.Events())
		}
	}
	if got := a.Filter(EvMarkerRecv); len(got) != 1 || got[0].Rank != 4 {
		t.Fatalf("filter %v", got)
	}
}

func TestHistogram(t *testing.T) {
	m := NewMetrics()
	m.Observe("d", 5*time.Microsecond) // bucket 1 (< 10µs)
	m.Observe("d", 2*time.Millisecond) // bucket 4 (< 10ms)
	m.Observe("d", 500*time.Second)    // overflow
	h := m.Hist("d")
	if h.Count != 3 || h.Min != 5*time.Microsecond || h.Max != 500*time.Second {
		t.Fatalf("hist %+v", h)
	}
	if h.Buckets[1] != 1 || h.Buckets[4] != 1 || h.Buckets[len(HistBounds)] != 1 {
		t.Fatalf("buckets %v", h.Buckets)
	}
	want := (5*time.Microsecond + 2*time.Millisecond + 500*time.Second) / 3
	if h.Mean() != want {
		t.Fatalf("mean %v want %v", h.Mean(), want)
	}
}

func TestMetricsExportsDeterministic(t *testing.T) {
	build := func() *Metrics {
		m := NewMetrics()
		m.Add("z.last", 9)
		m.Inc("a.first")
		m.Set("gauge.x", 0.25)
		m.Observe("spread", 3*time.Millisecond)
		return m
	}
	var j1, j2, c1, c2 bytes.Buffer
	if err := build().WriteJSON(&j1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&j2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Fatal("JSON export nondeterministic")
	}
	var doc struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
	}
	if err := json.Unmarshal(j1.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Counters["z.last"] != 9 || doc.Counters["a.first"] != 1 {
		t.Fatalf("counters %v", doc.Counters)
	}
	if doc.Histograms["spread"]["count"].(float64) != 1 {
		t.Fatalf("hist %v", doc.Histograms["spread"])
	}
	if err := build().WriteCSV(&c1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteCSV(&c2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Fatal("CSV export nondeterministic")
	}
	lines := strings.Split(strings.TrimSpace(c1.String()), "\n")
	if lines[0] != "kind,name,field,value" {
		t.Fatalf("csv header %q", lines[0])
	}
	if len(lines) != 1+2+1+5 { // header, 2 counters, 1 gauge, 5 hist fields
		t.Fatalf("csv rows:\n%s", c1.String())
	}
}

func TestTextSinkRendersOnlyDetail(t *testing.T) {
	var got []string
	s := NewTextSink(func(format string, args ...any) {
		got = append(got, fmt.Sprintf(format, args...))
	})
	s.Emit(Event{Type: EvMarkerSent, T: time.Second}) // no Detail: silent
	s.Emit(Event{Type: EvWaveCommit, T: 90 * time.Millisecond, Detail: "wave 3 committed"})
	if len(got) != 1 {
		t.Fatalf("rendered %d lines: %v", len(got), got)
	}
	// The legacy tracef format: "[%12v] <message>".
	if got[0] != fmt.Sprintf("[%12v] wave 3 committed", 90*time.Millisecond) {
		t.Fatalf("line %q", got[0])
	}
}

func TestMetricsSinkPairsSpans(t *testing.T) {
	m := NewMetrics()
	s := NewMetricsSink(m)
	at := func(ty EventType, t0 sim.Time, ev Event) {
		ev.Type, ev.T = ty, t0
		s.Emit(ev)
	}
	at(EvChannelBlocked, 10*time.Millisecond, Event{Rank: 2, Wave: 1})
	at(EvChannelUnblocked, 14*time.Millisecond, Event{Rank: 2, Wave: 1})
	at(EvImageStoreBegin, 14*time.Millisecond, Event{Rank: 2, Wave: 1, Server: 0, Bytes: 1 << 20})
	at(EvImageStoreEnd, 20*time.Millisecond, Event{Rank: 2, Wave: 1, Server: 0, Bytes: 1 << 20})
	at(EvRestartBegin, 30*time.Millisecond, Event{Rank: -1, Wave: 1})
	at(EvRestartEnd, 42*time.Millisecond, Event{Rank: -1, Wave: 1})
	at(EvMessageLogged, 5*time.Millisecond, Event{Rank: 1, Channel: 0, Bytes: 256})

	if h := m.Hist(MBlockedTime); h.Count != 1 || h.Sum != 4*time.Millisecond {
		t.Fatalf("blocked %+v", h)
	}
	if m.Counter(MBlockedTime+".rank2") != int64(4*time.Millisecond) {
		t.Fatal("per-rank blocked counter missing")
	}
	if h := m.Hist(MImageStoreTime); h.Count != 1 || h.Sum != 6*time.Millisecond {
		t.Fatalf("store %+v", h)
	}
	if m.Counter(MImageBytes) != 1<<20 || m.Counter(MImageBytes+".server0") != 1<<20 {
		t.Fatal("image bytes not attributed")
	}
	if h := m.Hist(MRestartTime); h.Count != 1 || h.Sum != 12*time.Millisecond {
		t.Fatalf("restart %+v", h)
	}
	if m.Counter(MLoggedMsgs) != 1 || m.Counter(MLoggedBytes) != 256 ||
		m.Counter(MLoggedBytes+".ch0-1") != 256 {
		t.Fatal("logged-message accounting wrong")
	}
	// An end without a begin must not observe a bogus span.
	at(EvChannelUnblocked, 50*time.Millisecond, Event{Rank: 9})
	if h := m.Hist(MBlockedTime); h.Count != 1 {
		t.Fatal("unpaired unblock observed")
	}
	// Schema pre-registration: a key this run never touched still exports.
	if _, ok := m.counters[MDelayedSends]; !ok {
		t.Fatal("standard counters not pre-registered")
	}
}

func chromeDoc(t *testing.T, events []Event) (raw []byte, evs []map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", doc.DisplayTimeUnit)
	}
	return buf.Bytes(), doc.TraceEvents
}

func TestChromeTraceWellFormed(t *testing.T) {
	events := []Event{
		{Type: EvChannelBlocked, T: 10 * time.Millisecond, Rank: 0, Wave: 1, Channel: -1, Node: -1, Server: -1},
		{Type: EvMarkerSent, T: 10 * time.Millisecond, Rank: 0, Wave: 1, Channel: 1, Node: -1, Server: -1},
		{Type: EvChannelUnblocked, T: 12 * time.Millisecond, Rank: 0, Wave: 1, Channel: -1, Node: -1, Server: -1},
		{Type: EvImageStoreBegin, T: 12 * time.Millisecond, Rank: 0, Wave: 1, Channel: -1, Node: -1, Server: 0, Bytes: 4096},
		// The store never ends: aborted by a failure; must close at horizon.
		{Type: EvRankKilled, T: 30 * time.Millisecond, Rank: 1, Wave: 0, Channel: -1, Node: -1, Server: -1},
	}
	raw1, evs := chromeDoc(t, events)
	raw2, _ := chromeDoc(t, events)
	if !bytes.Equal(raw1, raw2) {
		t.Fatal("chrome export nondeterministic")
	}

	var spans, instants, metas int
	var aborted *map[string]any
	for i := range evs {
		switch evs[i]["ph"] {
		case "X":
			spans++
			if strings.Contains(evs[i]["name"].(string), "aborted") {
				aborted = &evs[i]
			}
		case "i":
			instants++
		case "M":
			metas++
		}
	}
	if spans != 2 { // blocked-send + aborted store
		t.Fatalf("%d spans", spans)
	}
	if instants != 2 { // marker-sent + rank killed
		t.Fatalf("%d instants", instants)
	}
	if metas < 4 { // 3 process names + at least rank 0's thread name
		t.Fatalf("%d metadata records", metas)
	}
	if aborted == nil {
		t.Fatal("unclosed store span not closed at horizon")
	}
	// Horizon is the last event (30ms); store began at 12ms → 18ms span.
	if dur := (*aborted)["dur"].(float64); dur != 18000 {
		t.Fatalf("aborted span dur %v µs", dur)
	}
}
