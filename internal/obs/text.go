package obs

// TextSink renders runtime events to a printf-style function — the compat
// adapter for the legacy Config.Trace / Options.Verbose stream.  Only
// events carrying Detail (the process manager's job-level lines: failures,
// restarts, commits, node loss, completion) are rendered, with the exact
// "[<virtual time>] <message>" wording of the old unstructured tracer, so
// -v output stays readable instead of drowning in per-marker events.
type TextSink struct {
	fn func(format string, args ...any)
}

// NewTextSink wraps a printf-style function (e.g. log.Printf).
func NewTextSink(fn func(format string, args ...any)) *TextSink {
	return &TextSink{fn: fn}
}

// Emit renders the event if it carries a human-readable Detail line.
// Counter samples carry the metric name in Detail and are skipped: they
// are timeline data, not job-level progress.
func (s *TextSink) Emit(ev Event) {
	if ev.Detail == "" || ev.Type == EvCounterSample {
		return
	}
	s.fn("[%12v] %s", ev.T, ev.Detail)
}
