// Package obs is the observability layer of the runtime: a typed,
// allocation-light event bus carrying protocol-level events stamped with
// virtual time, a metrics registry (counters, gauges, virtual-time
// histograms), and exporters — a Chrome trace_event timeline loadable in
// chrome://tracing / Perfetto, and flat JSON/CSV metrics dumps.
//
// The paper's contribution is a measurement: decomposing checkpoint cost
// into synchronization/flush straggle, in-transit message logging and
// image-transfer contention.  Every layer of the stack (protocols, the
// checkpoint servers, the MPI engine and fabric, the network, the process
// manager) emits structured events into a Hub; sinks consume them — the
// Collector for timelines, the MetricsSink for aggregates, the TextSink
// for the human-readable -v stream.  Everything is deterministic: a fixed
// seed produces byte-identical exports.
package obs

import "ftckpt/internal/sim"

// EventType identifies a structured trace event.
type EventType uint8

// Event types, covering all three protocol families plus the runtime.
const (
	// EvMarkerSent: a checkpoint-wave marker left Rank towards Channel
	// (the destination rank; the Vcl scheduler emits with Rank = -2).
	EvMarkerSent EventType = iota
	// EvMarkerRecv: Rank received the marker Channel (source rank) sent.
	EvMarkerRecv
	// EvChannelBlocked: Rank froze its sends for a wave (Pcl's delayed-send
	// gate closed; Channel is -1: all channels block together).
	EvChannelBlocked
	// EvChannelUnblocked: the local checkpoint is taken and Rank released
	// its delayed sends; the blocked-send span ends.
	EvChannelUnblocked
	// EvSendDelayed: one payload to Channel was queued behind the gate.
	EvSendDelayed
	// EvRecvDelayed: one payload from the flushed channel Channel was moved
	// to the delayed-receive queue instead of being matched.
	EvRecvDelayed
	// EvMessageLogged: one in-transit payload from Channel was captured as
	// channel state (Vcl) or logged before delivery (mlog); Bytes is its
	// payload size.
	EvMessageLogged
	// EvLocalCkptBegin: Rank entered wave Wave (Pcl: the flush/freeze
	// begins; Vcl/mlog: the snapshot is immediate).
	EvLocalCkptBegin
	// EvLocalCkptEnd: Rank captured its local image for wave Wave.
	EvLocalCkptEnd
	// EvImageStoreBegin: the image transfer of (Rank, Wave) started towards
	// checkpoint server Server; Bytes is the image size.
	EvImageStoreBegin
	// EvImageStoreEnd: the image of (Rank, Wave) is on stable storage.
	EvImageStoreEnd
	// EvLogShipBegin: a channel-state/log transfer of (Rank, Wave) started
	// towards Server; Bytes is the wire size.
	EvLogShipBegin
	// EvLogShipEnd: the log transfer completed.
	EvLogShipEnd
	// EvWaveCommit: the recovery line advanced to Wave (Rank is the
	// committing rank for uncoordinated protocols, -1 for a global commit).
	EvWaveCommit
	// EvRankKilled: Rank failed (injected or MTTF); Wave is the recovery
	// line it will restart from.
	EvRankKilled
	// EvNodeLost: machine Node left the pool; Detail names the remapping.
	EvNodeLost
	// EvRestartBegin: recovery began fetching images for wave Wave (Rank is
	// -1 for a global rollback, the restarting rank for mlog).
	EvRestartBegin
	// EvRestartEnd: the restarted process(es) resumed execution.
	EvRestartEnd
	// EvJobComplete: every rank finalized; Detail is the result summary.
	EvJobComplete
	// EvServerKilled: checkpoint server Server (on machine Node) was lost;
	// every image and log it stored is gone.
	EvServerKilled
	// EvHeartbeatTimeout: the dispatcher's heartbeat detector declared a
	// component dead — Rank ≥ 0 names a rank, else Server ≥ 0 names a
	// checkpoint server.  Detail says whether the suspicion was true
	// (detection, with its latency) or false (a live component exceeded
	// the timeout).
	EvHeartbeatTimeout
	// EvReplicaFailover: a fetch fell over from a dead or incomplete
	// replica to checkpoint server Server for (Rank, Wave).
	EvReplicaFailover
	// EvStoreRetry: a store attempt to replica Server for (Rank, Wave)
	// found it dead (or lost its transfer) and was re-scheduled.
	EvStoreRetry
	// EvQuorumLost: a store for (Rank, Wave) can no longer reach its write
	// quorum — too many replicas lost; the wave cannot commit.
	EvQuorumLost
	// EvMessageReplayed: recovery re-delivered one logged in-transit
	// message from Channel to Rank (Seq is the per-pair protocol sequence
	// number when the protocol stamps one; Bytes the payload size).
	EvMessageReplayed
	// EvDegraded: the job stopped in degraded mode — unrecoverable loss;
	// Detail carries the structured error text.
	EvDegraded
	// EvComponentDead: the simulator's omniscient record of a silent death
	// under heartbeat detection — Rank (or Server) stopped at T, but the
	// dispatcher does not know yet.  Opens the detection-latency span that
	// the matching EvHeartbeatTimeout closes.
	EvComponentDead
	// EvRankDone: Rank finalized (reached the end of its program).  The
	// last EvRankDone anchors the critical path of the run.
	EvRankDone
	// EvCounterSample: a periodic metrics snapshot — Detail is the metric
	// name, Bytes its current value.  Rendered as a counter track in the
	// Chrome trace exporters.
	EvCounterSample
	// EvProcFailed: a process failure the job survives in place (ULFM
	// in-job recovery): Rank died but the world is repaired rather than
	// rolled back.  Opens the repair pipeline the matching EvRepairEnd
	// closes.
	EvProcFailed
	// EvRevoked: the communicator was revoked — every survivor's pending
	// and future operations against the failed incarnation abort with
	// ErrRevoked.  Rank is the revoking runtime (-1).
	EvRevoked
	// EvRepairBegin: the shrink/spare-splice/rebind repair of the world
	// began (Rank is -1: all survivors participate; Wave is the committed
	// wave the fresh protocol instances continue from).
	EvRepairBegin
	// EvRepairEnd: the repaired world resumed execution; the span opened
	// by EvRepairBegin closes (detection → revoke → repair → resume).
	EvRepairEnd
	// EvRepairAbort: an open repair window was abandoned (no common
	// snapshot level, or a rank finished while the world was parked) and
	// the failure falls back to a classic rollback-restart; the span
	// opened by EvRepairBegin closes here and the matching EvRankKilled
	// documents the fallback.
	EvRepairAbort
	// EvAppCkpt: Rank captured an application-level in-memory checkpoint
	// and exchanged it with its partner rank (Channel); Bytes is the
	// snapshot size.
	EvAppCkpt
	// EvAppRestore: Rank restored application state after a repair —
	// Detail says from which source (own snapshot, partner copy, or a
	// fresh start when no snapshot existed yet).
	EvAppRestore
	// EvDrainBegin: the asynchronous copy of (Rank, Wave)'s image from
	// storage level Level-1 down to Level started; Bytes is the stored
	// (possibly incremental/compressed) size.
	EvDrainBegin
	// EvDrainEnd: the drain completed; the image is resident at Level.
	EvDrainEnd
	// EvBufferKilled: the node-local checkpoint buffer on machine Node was
	// lost (buffer failure class, or the node itself died); staged images
	// not yet drained are gone.
	EvBufferKilled
	// EvPFSKilled: parallel-file-system target Server was lost; every
	// image with a stripe on it is unreadable.
	EvPFSKilled
	// EvLevelEvict: storage level Level evicted (Rank, Wave)'s image to
	// respect its capacity or retention bound; Bytes is the freed size.
	EvLevelEvict

	numEventTypes
)

var eventNames = [numEventTypes]string{
	"marker-sent", "marker-recv", "channel-blocked", "channel-unblocked",
	"send-delayed", "recv-delayed", "message-logged",
	"local-ckpt-begin", "local-ckpt-end",
	"image-store-begin", "image-store-end", "log-ship-begin", "log-ship-end",
	"wave-commit", "rank-killed", "node-lost",
	"restart-begin", "restart-end", "job-complete",
	"server-killed", "heartbeat-timeout", "replica-failover", "store-retry",
	"quorum-lost", "message-replayed", "degraded",
	"component-dead", "rank-done", "counter-sample",
	"proc-failed", "revoked", "repair-begin", "repair-end", "repair-abort",
	"app-ckpt", "app-restore",
	"drain-begin", "drain-end", "buffer-killed", "pfs-killed", "level-evict",
}

// String returns the event type's kebab-case name.
func (t EventType) String() string {
	if int(t) < len(eventNames) {
		return eventNames[t]
	}
	return "unknown"
}

// Event is one structured trace record.  It is a plain value — emitting
// one allocates nothing beyond what the sink retains.  Fields that do not
// apply to a type are -1 (ints) or 0 (Bytes); see the EventType docs for
// which fields each type carries.
type Event struct {
	Type EventType
	// T is the virtual timestamp.
	T sim.Time
	// Rank is the emitting process, -1 for the runtime, -2 for the Vcl
	// scheduler (mpi.SchedulerID).
	Rank int
	// Wave is the checkpoint wave, -1 when not wave-scoped.
	Wave int
	// Channel is the peer rank of the channel involved, -1 when not
	// channel-scoped.
	Channel int
	// Node is the machine involved (EvNodeLost), -1 otherwise.
	Node int
	// Server is the checkpoint server index, -1 otherwise.  For
	// EvPFSKilled it is the PFS target index.
	Server int
	// Level is the storage-hierarchy level the event concerns (0 = the
	// topmost configured level).  0 also for events that predate the
	// hierarchy; level-scoped events (drain, evict, buffer/pfs kills)
	// always carry it explicitly.
	Level int
	// Bytes is the payload/image/log size when the event moves data.
	Bytes int64
	// Seq is the per-pair protocol sequence number for logged/replayed
	// messages under protocols that stamp one (mlog), 0 otherwise.
	Seq uint64
	// Span is the causal-span identifier this event belongs to (allocated
	// with Hub.NextSpan), 0 when the event is not span-scoped.  Begin/end
	// event pairs share one Span; a marker's send and receipt share the
	// marker's flight span.
	Span uint64
	// Cause is the Span of the event that causally triggered this one
	// (marker flight → wave entry, snapshot → freeze, kill → detection →
	// restart), 0 when there is no recorded cause.  The exporters render
	// cause edges as Perfetto flow arrows; internal/span rebuilds the DAG.
	Cause uint64
	// Detail carries free-text context for runtime events.
	Detail string
}

// Sink consumes events.  Emit runs in simulation (single-threaded)
// context; implementations need no locking.
type Sink interface {
	Emit(Event)
}

// Hub fans events out to its sinks.  A nil *Hub is a valid no-op emitter,
// so instrumented layers never branch on "is observability on".  The hub
// also allocates span identifiers: one counter per hub, incremented in
// emission order, so IDs are deterministic per run and independent of how
// many runs execute concurrently (each run owns its hub).
type Hub struct {
	sinks    []Sink
	nextSpan uint64
}

// NewHub builds a hub over the given sinks (nils are skipped).
func NewHub(sinks ...Sink) *Hub {
	h := &Hub{}
	for _, s := range sinks {
		if s != nil {
			h.sinks = append(h.sinks, s)
		}
	}
	return h
}

// Emit forwards the event to every sink.  Safe on a nil hub.
func (h *Hub) Emit(ev Event) {
	if h == nil {
		return
	}
	for _, s := range h.sinks {
		s.Emit(ev)
	}
}

// Active reports whether any sink is attached (lets hot paths skip
// assembling expensive Detail strings).
func (h *Hub) Active() bool { return h != nil && len(h.sinks) > 0 }

// NextSpan allocates a fresh span identifier.  Runs in simulation
// (single-threaded) context; IDs start at 1 so 0 always means "no span".
// Safe on a nil hub, which returns 0 (events stay unstamped).
func (h *Hub) NextSpan() uint64 {
	if h == nil {
		return 0
	}
	h.nextSpan++
	return h.nextSpan
}

// Collector is a sink retaining every event in emission order — the
// input of the timeline exporter and of event-level assertions in tests.
type Collector struct {
	events []Event
}

// NewCollector returns an empty collector.
func NewCollector() *Collector { return &Collector{} }

// Emit appends the event.
func (c *Collector) Emit(ev Event) { c.events = append(c.events, ev) }

// Events returns the collected events in emission order (shared slice;
// callers must not mutate).
func (c *Collector) Events() []Event { return c.events }

// Filter returns the collected events of one type, in emission order.
func (c *Collector) Filter(t EventType) []Event {
	var out []Event
	for _, ev := range c.events {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

// Count returns how many events of one type were collected.
func (c *Collector) Count(t EventType) int {
	n := 0
	for _, ev := range c.events {
		if ev.Type == t {
			n++
		}
	}
	return n
}
