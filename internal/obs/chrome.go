package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace_event pids: one "process" per track family, one "thread"
// per rank / server.
const (
	pidRuntime = 0 // global events: commits, restarts, failures
	pidRanks   = 1 // tid = MPI rank
	pidServers = 2 // tid = checkpoint server index
)

// chromeEvent is one trace_event record.  Field order (fixed by the
// struct) plus sorted Args maps make the marshalled output deterministic.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds of virtual time
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Id   uint64         `json:"id,omitempty"`
	Bp   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(t int64) float64 { return float64(t) / 1e3 }

// openSpan is a begin event waiting for its end.
type openSpan struct {
	name     string
	pid, tid int
	ts       float64
	args     map[string]any
}

// WriteChromeTrace exports events as a Chrome trace_event JSON document —
// loadable in chrome://tracing or Perfetto — with one track per MPI rank,
// one per checkpoint server, and a runtime track for global events
// (commits, rollbacks, failures).  Spans are virtual-time intervals:
// Pcl's per-rank blocked-send windows, per-image store transfers on the
// server tracks, log shipments, restarts.  Point events (markers, logged
// messages, delayed packets, snapshots, commits) render as instants.
// Output is deterministic: identical event streams produce identical
// bytes.
func WriteChromeTrace(w io.Writer, events []Event) error {
	var out []chromeEvent
	var maxTs float64
	for _, ev := range events {
		if ts := usec(int64(ev.T)); ts > maxTs {
			maxTs = ts
		}
	}

	// Track naming metadata, emitted for every tid seen.
	ranks := map[int]bool{}
	servers := map[int]bool{}

	spans := map[string]openSpan{} // key → open begin
	var spanOrder []string         // deterministic sweep of unclosed spans
	open := func(key string, s openSpan) {
		if _, dup := spans[key]; !dup {
			spanOrder = append(spanOrder, key)
		}
		spans[key] = s
	}
	closeSpan := func(key string, ts float64) {
		s, ok := spans[key]
		if !ok {
			return
		}
		delete(spans, key)
		out = append(out, chromeEvent{
			Name: s.name, Ph: "X", Ts: s.ts, Dur: ts - s.ts,
			Pid: s.pid, Tid: s.tid, Args: s.args,
		})
	}
	instant := func(name string, pid, tid int, ev Event, args map[string]any) {
		out = append(out, chromeEvent{
			Name: name, Ph: "i", Ts: usec(int64(ev.T)), Pid: pid, Tid: tid,
			S: "t", Args: args,
		})
	}

	// Causality: the first event carrying each span id anchors the span's
	// origin; every event naming that span as its Cause becomes a flow
	// arrow from the origin in Perfetto ("s" at origin, "f" at consumer).
	type flowPoint struct {
		ts       float64
		pid, tid int
	}
	spanOrigin := map[uint64]flowPoint{}
	type flowRef struct {
		cause uint64
		at    flowPoint
	}
	var flowRefs []flowRef
	pointOf := func(ev Event) flowPoint {
		pid, tid := trackOf(ev.Rank)
		if ev.Server >= 0 {
			pid, tid = pidServers, ev.Server
		}
		return flowPoint{ts: usec(int64(ev.T)), pid: pid, tid: tid}
	}

	for _, ev := range events {
		if ev.Rank >= 0 {
			ranks[ev.Rank] = true
		}
		if ev.Server >= 0 {
			servers[ev.Server] = true
		}
		if ev.Span != 0 {
			if _, seen := spanOrigin[ev.Span]; !seen {
				spanOrigin[ev.Span] = pointOf(ev)
			}
		}
		if ev.Cause != 0 {
			flowRefs = append(flowRefs, flowRef{cause: ev.Cause, at: pointOf(ev)})
		}
		switch ev.Type {
		case EvMarkerSent:
			pid, tid := trackOf(ev.Rank)
			instant("marker-sent", pid, tid, ev, map[string]any{"wave": ev.Wave, "to": ev.Channel})
		case EvMarkerRecv:
			pid, tid := trackOf(ev.Rank)
			instant("marker-recv", pid, tid, ev, map[string]any{"wave": ev.Wave, "from": ev.Channel})
		case EvChannelBlocked:
			open(fmt.Sprintf("blk:%d", ev.Rank), openSpan{
				name: fmt.Sprintf("blocked send (wave %d)", ev.Wave),
				pid:  pidRanks, tid: ev.Rank, ts: usec(int64(ev.T)),
				args: map[string]any{"wave": ev.Wave},
			})
		case EvChannelUnblocked:
			closeSpan(fmt.Sprintf("blk:%d", ev.Rank), usec(int64(ev.T)))
		case EvSendDelayed:
			instant("send-delayed", pidRanks, ev.Rank, ev, map[string]any{"to": ev.Channel})
		case EvRecvDelayed:
			instant("recv-delayed", pidRanks, ev.Rank, ev, map[string]any{"from": ev.Channel})
		case EvMessageLogged:
			instant("message-logged", pidRanks, ev.Rank, ev,
				map[string]any{"from": ev.Channel, "bytes": ev.Bytes, "wave": ev.Wave})
		case EvLocalCkptEnd:
			instant(fmt.Sprintf("snapshot (wave %d)", ev.Wave), pidRanks, ev.Rank, ev, nil)
		case EvImageStoreBegin:
			pid, tid := pidServers, ev.Server
			name := fmt.Sprintf("store r%d w%d", ev.Rank, ev.Wave)
			if ev.Server < 0 { // node-local buffer store: render on the rank
				pid, tid = pidRanks, ev.Rank
				name = fmt.Sprintf("buffer store w%d", ev.Wave)
			}
			open(fmt.Sprintf("img:%d:%d:%d", ev.Rank, ev.Wave, ev.Server), openSpan{
				name: name,
				pid:  pid, tid: tid, ts: usec(int64(ev.T)),
				args: map[string]any{"bytes": ev.Bytes},
			})
		case EvImageStoreEnd:
			closeSpan(fmt.Sprintf("img:%d:%d:%d", ev.Rank, ev.Wave, ev.Server), usec(int64(ev.T)))
		case EvLogShipBegin:
			open(fmt.Sprintf("log:%d:%d:%d", ev.Rank, ev.Wave, ev.Server), openSpan{
				name: fmt.Sprintf("logs r%d w%d", ev.Rank, ev.Wave),
				pid:  pidServers, tid: ev.Server, ts: usec(int64(ev.T)),
				args: map[string]any{"bytes": ev.Bytes},
			})
		case EvLogShipEnd:
			closeSpan(fmt.Sprintf("log:%d:%d:%d", ev.Rank, ev.Wave, ev.Server), usec(int64(ev.T)))
		case EvWaveCommit:
			pid, tid := trackOf(ev.Rank)
			instant(fmt.Sprintf("wave %d committed", ev.Wave), pid, tid, ev, nil)
		case EvRankKilled:
			instant(fmt.Sprintf("rank %d killed", ev.Rank), pidRuntime, 0, ev,
				map[string]any{"restart_wave": ev.Wave})
		case EvNodeLost:
			instant(fmt.Sprintf("node %d lost", ev.Node), pidRuntime, 0, ev, nil)
		case EvRestartBegin:
			pid, tid := trackOf(ev.Rank)
			open(fmt.Sprintf("rst:%d", ev.Rank), openSpan{
				name: fmt.Sprintf("restart (wave %d)", ev.Wave),
				pid:  pid, tid: tid, ts: usec(int64(ev.T)),
				args: map[string]any{"wave": ev.Wave},
			})
		case EvRestartEnd:
			closeSpan(fmt.Sprintf("rst:%d", ev.Rank), usec(int64(ev.T)))
		case EvComponentDead:
			pid, tid := trackOf(ev.Rank)
			instant(fmt.Sprintf("rank %d dead (silent)", ev.Rank), pid, tid, ev, nil)
		case EvProcFailed:
			instant(fmt.Sprintf("rank %d failed", ev.Rank), pidRuntime, 0, ev,
				map[string]any{"wave": ev.Wave})
		case EvRevoked:
			instant("revoked", pidRuntime, 0, ev, map[string]any{"victim": ev.Channel})
		case EvRepairBegin:
			open("rep", openSpan{
				name: fmt.Sprintf("repair (rank %d)", ev.Channel),
				pid:  pidRuntime, tid: 0, ts: usec(int64(ev.T)),
				args: map[string]any{"victim": ev.Channel, "wave": ev.Wave},
			})
		case EvRepairEnd:
			closeSpan("rep", usec(int64(ev.T)))
		case EvRepairAbort:
			if s, ok := spans["rep"]; ok {
				s.name += " (aborted)"
				spans["rep"] = s
			}
			closeSpan("rep", usec(int64(ev.T)))
		case EvAppCkpt:
			instant(fmt.Sprintf("app snapshot (iter %d)", ev.Wave), pidRanks, ev.Rank, ev,
				map[string]any{"partner": ev.Channel, "bytes": ev.Bytes})
		case EvAppRestore:
			instant(fmt.Sprintf("app restore (iter %d)", ev.Wave), pidRanks, ev.Rank, ev, nil)
		case EvRankDone:
			pid, tid := trackOf(ev.Rank)
			instant(fmt.Sprintf("rank %d done", ev.Rank), pid, tid, ev, nil)
		case EvCounterSample:
			out = append(out, chromeEvent{
				Name: ev.Detail, Ph: "C", Ts: usec(int64(ev.T)),
				Pid: pidRuntime, Tid: 0,
				Args: map[string]any{"value": ev.Bytes},
			})
		case EvJobComplete:
			instant("job complete", pidRuntime, 0, ev, nil)
		case EvDrainBegin:
			open(fmt.Sprintf("drn:%d:%d:%d", ev.Rank, ev.Wave, ev.Level), openSpan{
				name: fmt.Sprintf("drain r%d w%d → L%d", ev.Rank, ev.Wave, ev.Level),
				pid:  pidRuntime, tid: 0, ts: usec(int64(ev.T)),
				args: map[string]any{"bytes": ev.Bytes, "level": ev.Level},
			})
		case EvDrainEnd:
			closeSpan(fmt.Sprintf("drn:%d:%d:%d", ev.Rank, ev.Wave, ev.Level), usec(int64(ev.T)))
		case EvBufferKilled:
			instant(fmt.Sprintf("buffer on node %d lost", ev.Node), pidRuntime, 0, ev, nil)
		case EvPFSKilled:
			instant(fmt.Sprintf("pfs target %d lost", ev.Server), pidRuntime, 0, ev, nil)
		case EvLevelEvict:
			instant(fmt.Sprintf("evict r%d w%d (L%d)", ev.Rank, ev.Wave, ev.Level),
				pidRuntime, 0, ev, map[string]any{"bytes": ev.Bytes})
		}
	}

	// Flow arrows: one "s" per referenced span origin (first reference
	// wins), one "f" per consumer, in stream order — deterministic.
	started := map[uint64]bool{}
	for _, fr := range flowRefs {
		org, ok := spanOrigin[fr.cause]
		if !ok {
			continue
		}
		if !started[fr.cause] {
			started[fr.cause] = true
			out = append(out, chromeEvent{
				Name: "cause", Cat: "flow", Ph: "s", Ts: org.ts,
				Pid: org.pid, Tid: org.tid, Id: fr.cause,
			})
		}
		out = append(out, chromeEvent{
			Name: "cause", Cat: "flow", Ph: "f", Bp: "e", Ts: fr.at.ts,
			Pid: fr.at.pid, Tid: fr.at.tid, Id: fr.cause,
		})
	}

	// Close spans left open (transfers aborted by a failure) at the trace
	// horizon, in the order they were opened.
	for _, key := range spanOrder {
		if s, ok := spans[key]; ok {
			s.name += " (aborted)"
			spans[key] = s
			closeSpan(key, maxTs)
		}
	}

	// Track metadata, sorted for determinism.
	meta := []chromeEvent{
		metaName("process_name", pidRuntime, 0, "runtime"),
		metaName("process_name", pidRanks, 0, "mpi ranks"),
		metaName("process_name", pidServers, 0, "ckpt servers"),
	}
	for _, r := range sortedKeys(ranks) {
		meta = append(meta, metaName("thread_name", pidRanks, r, fmt.Sprintf("rank %d", r)))
	}
	for _, s := range sortedKeys(servers) {
		meta = append(meta, metaName("thread_name", pidServers, s, fmt.Sprintf("server %d", s)))
	}

	doc := struct {
		TraceEvents     []chromeEvent `json:"traceEvents"`
		DisplayTimeUnit string        `json:"displayTimeUnit"`
	}{append(meta, out...), "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// trackOf maps an emitter to a (pid, tid): MPI ranks to the rank tracks,
// the runtime (-1) and the Vcl scheduler (-2) to the runtime track.
func trackOf(rank int) (pid, tid int) {
	if rank >= 0 {
		return pidRanks, rank
	}
	return pidRuntime, 0
}

func metaName(kind string, pid, tid int, name string) chromeEvent {
	return chromeEvent{Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}}
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// WriteChromeTrace is also available on the Collector directly.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, c.events)
}
