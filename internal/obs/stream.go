package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// ChromeStreamSink writes a Chrome trace_event JSON document incrementally
// as events arrive, so a trace can be exported without retaining the run's
// event history in memory (a Collector at NP=1024 holds every event just
// to serialize them at the end; this sink holds O(NP) track-name state).
//
// Differences from WriteChromeTrace, forced by statelessness:
//
//   - Intervals are async begin/end pairs ("b"/"e") instead of complete
//     "X" events — Perfetto pairs them by (cat, id, name), all of which
//     are reconstructible from the end event's fields alone.
//   - No flow arrows: rendering a cause edge needs the coordinates of the
//     origin event, which a streaming writer has already forgotten.  Use
//     the collector-based exporter when causality arrows matter.
//   - Intervals still open at Close (transfers aborted by a failure) are
//     ended at the last timestamp seen, mirroring the batch exporter's
//     close-at-horizon for aborted spans.  Only the open set is retained,
//     so memory stays bounded.
//
// Output is deterministic: identical event streams produce identical
// bytes.  Close writes the closing bracket; the sink is unusable after.
type ChromeStreamSink struct {
	w      io.Writer
	err    error
	first  bool // next record is the first (no leading comma)
	closed bool // document terminated; late emits are dropped

	namedRank map[int]bool
	namedSrv  map[int]bool
	open      map[string]streamEvent // async spans begun but not yet ended
	lastTs    float64                // horizon for spans still open at Close
}

// NewChromeStreamSink starts a streaming trace document on w.  The caller
// owns w (buffering, closing the file); call Close to finish the JSON.
func NewChromeStreamSink(w io.Writer) *ChromeStreamSink {
	s := &ChromeStreamSink{w: w, first: true,
		namedRank: map[int]bool{}, namedSrv: map[int]bool{},
		open: map[string]streamEvent{}}
	s.raw(`{"displayTimeUnit":"ms","traceEvents":[`)
	s.record(metaName("process_name", pidRuntime, 0, "runtime"))
	s.record(metaName("process_name", pidRanks, 0, "mpi ranks"))
	s.record(metaName("process_name", pidServers, 0, "ckpt servers"))
	return s
}

func (s *ChromeStreamSink) raw(text string) {
	if s.err != nil {
		return
	}
	_, s.err = io.WriteString(s.w, text)
}

// streamEvent mirrors chromeEvent but with a string id, letting async
// intervals be keyed by the same composite keys the batch exporter uses.
type streamEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Id   string         `json:"id,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func (s *ChromeStreamSink) record(ev chromeEvent) {
	s.recordStream(streamEvent{Name: ev.Name, Cat: ev.Cat, Ph: ev.Ph, Ts: ev.Ts,
		Pid: ev.Pid, Tid: ev.Tid, S: ev.S, Args: ev.Args})
}

func (s *ChromeStreamSink) recordStream(ev streamEvent) {
	if s.err != nil {
		return
	}
	if !s.first {
		s.raw(",\n")
	}
	s.first = false
	b, err := json.Marshal(ev)
	if err != nil {
		s.err = err
		return
	}
	_, s.err = s.w.Write(b)
}

// nameTracks lazily emits thread-name metadata the first time a rank or
// server track appears, since a streaming writer cannot front-load them.
func (s *ChromeStreamSink) nameTracks(ev Event) {
	if ev.Rank >= 0 && !s.namedRank[ev.Rank] {
		s.namedRank[ev.Rank] = true
		s.record(metaName("thread_name", pidRanks, ev.Rank, fmt.Sprintf("rank %d", ev.Rank)))
	}
	if ev.Server >= 0 && !s.namedSrv[ev.Server] {
		s.namedSrv[ev.Server] = true
		s.record(metaName("thread_name", pidServers, ev.Server, fmt.Sprintf("server %d", ev.Server)))
	}
}

func (s *ChromeStreamSink) instant(name string, pid, tid int, ev Event, args map[string]any) {
	s.recordStream(streamEvent{Name: name, Ph: "i", Ts: usec(int64(ev.T)),
		Pid: pid, Tid: tid, S: "t", Args: args})
}

func (s *ChromeStreamSink) async(ph, name, id string, pid, tid int, ev Event, args map[string]any) {
	// The composite (rank, wave, server) id repeats when a wave aborted by
	// a failure re-runs after the restart; the event's span id is unique
	// per attempt, so prefer it whenever the emitter stamped one.
	if ev.Span != 0 {
		id = fmt.Sprintf("sp:%d", ev.Span)
	}
	rec := streamEvent{Name: name, Cat: "span", Ph: ph,
		Ts: usec(int64(ev.T)), Pid: pid, Tid: tid, Id: id, Args: args}
	if ph == "b" {
		s.open[id] = rec
	} else {
		delete(s.open, id)
	}
	s.recordStream(rec)
}

// Emit translates one event to trace records.  Implements Sink.  Events
// arriving after Close — possible when an aborted run's teardown races a
// caller flushing artifacts — are dropped rather than appended past the
// document terminator.
func (s *ChromeStreamSink) Emit(ev Event) {
	if s.err != nil || s.closed {
		return
	}
	if ts := usec(int64(ev.T)); ts > s.lastTs {
		s.lastTs = ts
	}
	s.nameTracks(ev)
	switch ev.Type {
	case EvMarkerSent:
		pid, tid := trackOf(ev.Rank)
		s.instant("marker-sent", pid, tid, ev, map[string]any{"wave": ev.Wave, "to": ev.Channel})
	case EvMarkerRecv:
		pid, tid := trackOf(ev.Rank)
		s.instant("marker-recv", pid, tid, ev, map[string]any{"wave": ev.Wave, "from": ev.Channel})
	case EvChannelBlocked:
		s.async("b", fmt.Sprintf("blocked send (wave %d)", ev.Wave),
			fmt.Sprintf("blk:%d", ev.Rank), pidRanks, ev.Rank, ev,
			map[string]any{"wave": ev.Wave})
	case EvChannelUnblocked:
		s.async("e", fmt.Sprintf("blocked send (wave %d)", ev.Wave),
			fmt.Sprintf("blk:%d", ev.Rank), pidRanks, ev.Rank, ev, nil)
	case EvSendDelayed:
		s.instant("send-delayed", pidRanks, ev.Rank, ev, map[string]any{"to": ev.Channel})
	case EvRecvDelayed:
		s.instant("recv-delayed", pidRanks, ev.Rank, ev, map[string]any{"from": ev.Channel})
	case EvMessageLogged:
		s.instant("message-logged", pidRanks, ev.Rank, ev,
			map[string]any{"from": ev.Channel, "bytes": ev.Bytes, "wave": ev.Wave})
	case EvLocalCkptEnd:
		s.instant(fmt.Sprintf("snapshot (wave %d)", ev.Wave), pidRanks, ev.Rank, ev, nil)
	case EvImageStoreBegin:
		pid, tid, name := pidServers, ev.Server, fmt.Sprintf("store r%d w%d", ev.Rank, ev.Wave)
		if ev.Server < 0 { // node-local buffer store: render on the rank
			pid, tid, name = pidRanks, ev.Rank, fmt.Sprintf("buffer store w%d", ev.Wave)
		}
		s.async("b", name,
			fmt.Sprintf("img:%d:%d:%d", ev.Rank, ev.Wave, ev.Server),
			pid, tid, ev, map[string]any{"bytes": ev.Bytes})
	case EvImageStoreEnd:
		pid, tid, name := pidServers, ev.Server, fmt.Sprintf("store r%d w%d", ev.Rank, ev.Wave)
		if ev.Server < 0 {
			pid, tid, name = pidRanks, ev.Rank, fmt.Sprintf("buffer store w%d", ev.Wave)
		}
		s.async("e", name,
			fmt.Sprintf("img:%d:%d:%d", ev.Rank, ev.Wave, ev.Server),
			pid, tid, ev, nil)
	case EvLogShipBegin:
		s.async("b", fmt.Sprintf("logs r%d w%d", ev.Rank, ev.Wave),
			fmt.Sprintf("log:%d:%d:%d", ev.Rank, ev.Wave, ev.Server),
			pidServers, ev.Server, ev, map[string]any{"bytes": ev.Bytes})
	case EvLogShipEnd:
		s.async("e", fmt.Sprintf("logs r%d w%d", ev.Rank, ev.Wave),
			fmt.Sprintf("log:%d:%d:%d", ev.Rank, ev.Wave, ev.Server),
			pidServers, ev.Server, ev, nil)
	case EvWaveCommit:
		pid, tid := trackOf(ev.Rank)
		s.instant(fmt.Sprintf("wave %d committed", ev.Wave), pid, tid, ev, nil)
	case EvRankKilled:
		s.instant(fmt.Sprintf("rank %d killed", ev.Rank), pidRuntime, 0, ev,
			map[string]any{"restart_wave": ev.Wave})
	case EvNodeLost:
		s.instant(fmt.Sprintf("node %d lost", ev.Node), pidRuntime, 0, ev, nil)
	case EvRestartBegin:
		pid, tid := trackOf(ev.Rank)
		s.async("b", fmt.Sprintf("restart (wave %d)", ev.Wave),
			fmt.Sprintf("rst:%d", ev.Rank), pid, tid, ev,
			map[string]any{"wave": ev.Wave})
	case EvRestartEnd:
		pid, tid := trackOf(ev.Rank)
		s.async("e", fmt.Sprintf("restart (wave %d)", ev.Wave),
			fmt.Sprintf("rst:%d", ev.Rank), pid, tid, ev, nil)
	case EvComponentDead:
		pid, tid := trackOf(ev.Rank)
		s.instant(fmt.Sprintf("rank %d dead (silent)", ev.Rank), pid, tid, ev, nil)
	case EvProcFailed:
		s.instant(fmt.Sprintf("rank %d failed", ev.Rank), pidRuntime, 0, ev,
			map[string]any{"wave": ev.Wave})
	case EvRevoked:
		s.instant("revoked", pidRuntime, 0, ev, map[string]any{"victim": ev.Channel})
	case EvRepairBegin:
		s.async("b", fmt.Sprintf("repair (rank %d)", ev.Channel), "rep",
			pidRuntime, 0, ev, map[string]any{"victim": ev.Channel, "wave": ev.Wave})
	case EvRepairEnd:
		s.async("e", fmt.Sprintf("repair (rank %d)", ev.Channel), "rep",
			pidRuntime, 0, ev, nil)
	case EvRepairAbort:
		s.async("e", fmt.Sprintf("repair (rank %d) (aborted)", ev.Channel), "rep",
			pidRuntime, 0, ev, nil)
	case EvAppCkpt:
		s.instant(fmt.Sprintf("app snapshot (iter %d)", ev.Wave), pidRanks, ev.Rank, ev,
			map[string]any{"partner": ev.Channel, "bytes": ev.Bytes})
	case EvAppRestore:
		s.instant(fmt.Sprintf("app restore (iter %d)", ev.Wave), pidRanks, ev.Rank, ev, nil)
	case EvRankDone:
		pid, tid := trackOf(ev.Rank)
		s.instant(fmt.Sprintf("rank %d done", ev.Rank), pid, tid, ev, nil)
	case EvCounterSample:
		s.recordStream(streamEvent{Name: ev.Detail, Ph: "C", Ts: usec(int64(ev.T)),
			Pid: pidRuntime, Tid: 0, Args: map[string]any{"value": ev.Bytes}})
	case EvJobComplete:
		s.instant("job complete", pidRuntime, 0, ev, nil)
	case EvDrainBegin:
		s.async("b", fmt.Sprintf("drain r%d w%d → L%d", ev.Rank, ev.Wave, ev.Level),
			fmt.Sprintf("drn:%d:%d:%d", ev.Rank, ev.Wave, ev.Level),
			pidRuntime, 0, ev, map[string]any{"bytes": ev.Bytes, "level": ev.Level})
	case EvDrainEnd:
		s.async("e", fmt.Sprintf("drain r%d w%d → L%d", ev.Rank, ev.Wave, ev.Level),
			fmt.Sprintf("drn:%d:%d:%d", ev.Rank, ev.Wave, ev.Level),
			pidRuntime, 0, ev, nil)
	case EvBufferKilled:
		s.instant(fmt.Sprintf("buffer on node %d lost", ev.Node), pidRuntime, 0, ev, nil)
	case EvPFSKilled:
		s.instant(fmt.Sprintf("pfs target %d lost", ev.Server), pidRuntime, 0, ev, nil)
	case EvLevelEvict:
		s.instant(fmt.Sprintf("evict r%d w%d (L%d)", ev.Rank, ev.Wave, ev.Level),
			pidRuntime, 0, ev, map[string]any{"bytes": ev.Bytes})
	}
}

// Close ends any still-open interval at the horizon, terminates the JSON
// document, and reports any write error seen during the stream.  It runs
// on every exit path — normal completion, DegradedError, deadline — so an
// aborted run still leaves a valid, importable trace.  Closing twice is
// a no-op.
func (s *ChromeStreamSink) Close() error {
	if s.closed {
		return s.err
	}
	s.closed = true
	ids := make([]string, 0, len(s.open))
	for id := range s.open {
		ids = append(ids, id)
	}
	sort.Strings(ids) // deterministic close order for aborted spans
	for _, id := range ids {
		b := s.open[id]
		s.recordStream(streamEvent{Name: b.Name, Cat: b.Cat, Ph: "e",
			Ts: s.lastTs, Pid: b.Pid, Tid: b.Tid, Id: id})
	}
	s.open = nil
	s.raw("]}\n")
	return s.err
}
