package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// abortedStream emits a run that dies mid-flight: intervals opened (image
// store, blocked send, restart) with no matching end events, the way a
// DegradedError or deadline stop abandons a stream.
func abortedStream(s *ChromeStreamSink) {
	s.Emit(Event{Type: EvMarkerSent, T: 5 * time.Millisecond, Rank: 0, Wave: 1, Channel: 1})
	s.Emit(Event{Type: EvChannelBlocked, T: 8 * time.Millisecond, Rank: 2, Wave: 1})
	s.Emit(Event{Type: EvImageStoreBegin, T: 10 * time.Millisecond, Rank: 1, Wave: 1, Server: 0, Bytes: 1 << 20})
	s.Emit(Event{Type: EvRestartBegin, T: 12 * time.Millisecond, Rank: 3, Wave: 1})
	s.Emit(Event{Type: EvRankKilled, T: 14 * time.Millisecond, Rank: 3, Wave: 1})
}

// TestStreamSinkAbortedRunFlushes pins the failure-abort contract: when a
// run ends early, Close must still terminate the JSON document and end
// every open interval at the horizon — a truncated or dangling trace
// would break Perfetto imports of exactly the runs one most wants to see.
func TestStreamSinkAbortedRunFlushes(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeStreamSink(&buf)
	abortedStream(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("aborted stream is not valid JSON: %v\n%s", err, buf.String())
	}
	open := map[string]float64{}
	var horizon float64
	for _, ev := range doc.TraceEvents {
		if ts, ok := ev["ts"].(float64); ok && ts > horizon {
			horizon = ts
		}
		id, _ := ev["id"].(string)
		switch ev["ph"] {
		case "b":
			open[id] = 0
		case "e":
			ts, _ := ev["ts"].(float64)
			open[id] = ts
			delete(open, id)
		}
	}
	if len(open) != 0 {
		t.Fatalf("intervals left open after Close: %v", open)
	}
	// The three synthesized ends must sit at the horizon (the last
	// timestamp seen), mirroring the batch exporter's close-at-horizon.
	closes := 0
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "e" {
			closes++
			if ts, _ := ev["ts"].(float64); ts != horizon {
				t.Fatalf("aborted span closed at %v, want horizon %v", ts, horizon)
			}
		}
	}
	if closes != 3 {
		t.Fatalf("synthesized %d interval ends, want 3", closes)
	}
}

// TestStreamSinkAbortDeterministic pins byte-determinism of the aborted
// flush: the close order of abandoned spans must not depend on map order.
func TestStreamSinkAbortDeterministic(t *testing.T) {
	render := func() []byte {
		var buf bytes.Buffer
		s := NewChromeStreamSink(&buf)
		abortedStream(s)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	for i := 0; i < 10; i++ {
		if b := render(); !bytes.Equal(a, b) {
			t.Fatal("aborted stream rendering is nondeterministic")
		}
	}
}

// TestStreamSinkUseAfterCloseIsInert guards the error path that flushes a
// stream after the run already stopped: late events must not corrupt the
// closed document.
func TestStreamSinkUseAfterCloseIsInert(t *testing.T) {
	var buf bytes.Buffer
	s := NewChromeStreamSink(&buf)
	abortedStream(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	s.Emit(Event{Type: EvMarkerSent, T: time.Second, Rank: 1})
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("document corrupted by post-Close emit: %v", err)
	}
	_ = n
}
