package obs

import (
	"strings"
	"testing"
	"time"
)

// TestMergeMatchesSharedRegistry proves the determinism contract: merging
// per-run registries in run order produces byte-for-byte the registry a
// sequential sweep sharing one registry would have accumulated.
func TestMergeMatchesSharedRegistry(t *testing.T) {
	type op func(m *Metrics)
	runs := [][]op{
		{
			func(m *Metrics) { m.Add("msgs", 3) },
			func(m *Metrics) { m.Observe("span", 5*time.Microsecond) },
			func(m *Metrics) { m.Observe("span", 90*time.Second) }, // overflow bucket
			func(m *Metrics) { m.Set("done", 1) },
			func(m *Metrics) { m.Touch("idle") },
		},
		{
			func(m *Metrics) { m.Add("msgs", 4) },
			func(m *Metrics) { m.Observe("span", 2*time.Microsecond) }, // new global min
			func(m *Metrics) { m.Observe("other", 3*time.Millisecond) },
			func(m *Metrics) { m.Set("done", 2) },
			func(m *Metrics) { m.TouchHist("empty") },
		},
		{
			func(m *Metrics) { m.Observe("span", 200*time.Second) }, // new global max
			func(m *Metrics) { m.Set("done", 3) },
		},
	}

	shared := NewMetrics()
	for _, run := range runs {
		for _, o := range run {
			o(shared)
		}
	}

	merged := NewMetrics()
	for _, run := range runs {
		private := NewMetrics()
		for _, o := range run {
			o(private)
		}
		merged.Merge(private)
	}

	var a, b strings.Builder
	if err := shared.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("merged registry differs from shared registry:\nshared: %s\nmerged: %s", a.String(), b.String())
	}
}

func TestMergeHistExactExtremaAndBuckets(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Observe("h", 10*time.Millisecond)
	a.Observe("h", 20*time.Millisecond)
	b.Observe("h", time.Microsecond) // min lives in the second registry
	b.Observe("h", time.Minute)      // so does the max

	m := NewMetrics()
	m.Merge(a)
	m.Merge(b)
	h := m.Hist("h")
	if h.Count != 4 {
		t.Fatalf("count = %d", h.Count)
	}
	if h.Min != time.Microsecond || h.Max != time.Minute {
		t.Fatalf("extrema not combined exactly: min=%v max=%v", h.Min, h.Max)
	}
	if h.Sum != 10*time.Millisecond+20*time.Millisecond+time.Microsecond+time.Minute {
		t.Fatalf("sum = %v", h.Sum)
	}
	var n int64
	for _, c := range h.Buckets {
		n += c
	}
	if n != 4 {
		t.Fatalf("bucket counts not merged: %v", h.Buckets)
	}
}

func TestMergeIntoEmptyPreservesSchema(t *testing.T) {
	src := NewMetrics()
	src.Touch("zero.counter")
	src.TouchHist("zero.hist")
	dst := NewMetrics()
	dst.Merge(src)
	if dst.Hist("zero.hist") == nil {
		t.Fatal("touched histogram lost in merge")
	}
	var out strings.Builder
	if err := dst.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"zero.counter", "zero.hist"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("export lost %q: %s", want, out.String())
		}
	}
}

// TestMergeEmptyRegistries pins the degenerate folds: empty into empty
// stays empty, and empty into populated leaves the populated registry
// byte-identical.
func TestMergeEmptyRegistries(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Merge(b)
	var out strings.Builder
	if err := a.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var fresh strings.Builder
	if err := NewMetrics().WriteJSON(&fresh); err != nil {
		t.Fatal(err)
	}
	if out.String() != fresh.String() {
		t.Fatalf("empty-into-empty merge changed the registry: %s", out.String())
	}

	pop := NewMetrics()
	pop.Add("c", 7)
	pop.Observe("h", 3*time.Millisecond)
	pop.Set("g", 2.5)
	var before strings.Builder
	if err := pop.WriteJSON(&before); err != nil {
		t.Fatal(err)
	}
	pop.Merge(NewMetrics())
	var after strings.Builder
	if err := pop.WriteJSON(&after); err != nil {
		t.Fatal(err)
	}
	if before.String() != after.String() {
		t.Fatalf("empty merge mutated a populated registry:\nbefore: %s\nafter: %s",
			before.String(), after.String())
	}
}

// TestMergeSingleSampleExtrema covers the Count==1 histograms where
// Min==Max, and the touched-but-empty histogram whose zero Min must never
// clobber a real minimum.
func TestMergeSingleSampleExtrema(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Observe("h", 5*time.Millisecond)
	b.Observe("h", 2*time.Millisecond)
	m := NewMetrics()
	m.Merge(a)
	if h := m.Hist("h"); h.Min != h.Max || h.Min != 5*time.Millisecond {
		t.Fatalf("single sample: min=%v max=%v, want both 5ms", h.Min, h.Max)
	}
	m.Merge(b)
	if h := m.Hist("h"); h.Min != 2*time.Millisecond || h.Max != 5*time.Millisecond {
		t.Fatalf("two singletons: min=%v max=%v", h.Min, h.Max)
	}

	// A touched histogram has Count==0 and zero extrema; folding it in
	// either direction must not invent a 0ns minimum.
	empty := NewMetrics()
	empty.TouchHist("h")
	m.Merge(empty)
	if h := m.Hist("h"); h.Min != 2*time.Millisecond {
		t.Fatalf("empty hist clobbered min: %v", h.Min)
	}
	adopt := NewMetrics()
	adopt.TouchHist("h")
	adopt.Merge(m)
	if h := adopt.Hist("h"); h.Min != 2*time.Millisecond || h.Max != 5*time.Millisecond {
		t.Fatalf("touched registry did not adopt extrema: min=%v max=%v", h.Min, h.Max)
	}
}

// TestMergeOverflowBucket sends durations past the last HistBound (100s)
// on both sides and requires them to land in — and add across — the
// overflow bucket.
func TestMergeOverflowBucket(t *testing.T) {
	a, b := NewMetrics(), NewMetrics()
	a.Observe("h", 150*time.Second)
	a.Observe("h", time.Millisecond)
	b.Observe("h", 100*time.Second) // exactly the last bound: overflow by convention
	b.Observe("h", 3600*time.Second)
	m := NewMetrics()
	m.Merge(a)
	m.Merge(b)
	h := m.Hist("h")
	if len(h.Buckets) != len(HistBounds)+1 {
		t.Fatalf("bucket layout: %d buckets for %d bounds", len(h.Buckets), len(HistBounds))
	}
	if got := h.Buckets[len(h.Buckets)-1]; got != 3 {
		t.Fatalf("overflow bucket = %d, want 3 (150s, 100s, 3600s): %v", got, h.Buckets)
	}
	if h.Max != 3600*time.Second {
		t.Fatalf("max = %v", h.Max)
	}
}

func TestMergeNilSafety(t *testing.T) {
	var nilM *Metrics
	nilM.Merge(NewMetrics()) // must not panic
	m := NewMetrics()
	m.Merge(nil)
	m.Add("c", 1)
	if m.Counter("c") != 1 {
		t.Fatal("registry corrupted by nil merge")
	}
}
