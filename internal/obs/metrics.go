package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"ftckpt/internal/sim"
)

// HistBounds are the upper bounds (exclusive) of the virtual-time
// histogram buckets: decades from 1µs to 100s, plus an overflow bucket.
var HistBounds = []sim.Time{
	1000,           // 1µs
	10_000,         // 10µs
	100_000,        // 100µs
	1_000_000,      // 1ms
	10_000_000,     // 10ms
	100_000_000,    // 100ms
	1_000_000_000,  // 1s
	10_000_000_000, // 10s
	100_000_000_000,
}

// Hist is a virtual-time histogram with fixed decade buckets.
type Hist struct {
	Count    int64
	Sum      sim.Time
	Min, Max sim.Time
	Buckets  []int64 // len(HistBounds)+1, last = overflow
}

func newHist() *Hist { return &Hist{Buckets: make([]int64, len(HistBounds)+1)} }

// Observe records one duration.
func (h *Hist) Observe(d sim.Time) {
	if h.Count == 0 || d < h.Min {
		h.Min = d
	}
	if d > h.Max {
		h.Max = d
	}
	h.Count++
	h.Sum += d
	for i, b := range HistBounds {
		if d < b {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[len(HistBounds)]++
}

// Mean returns the average observed duration (0 when empty).
func (h *Hist) Mean() sim.Time {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / sim.Time(h.Count)
}

// merge folds other into h exactly: counts, sums and per-bucket tallies
// add, and the extrema are combined (never recomputed from means), so
// merging the histograms of several runs reproduces the histogram one
// shared registry would have accumulated observing the same durations.
func (h *Hist) merge(other *Hist) {
	if other.Count > 0 {
		if h.Count == 0 {
			h.Min, h.Max = other.Min, other.Max
		} else {
			if other.Min < h.Min {
				h.Min = other.Min
			}
			if other.Max > h.Max {
				h.Max = other.Max
			}
		}
	}
	h.Count += other.Count
	h.Sum += other.Sum
	for i, n := range other.Buckets {
		h.Buckets[i] += n
	}
}

// Metrics is the registry: counters, gauges and virtual-time histograms
// keyed by dotted names (e.g. "vcl.logged_bytes", "wave.spread").  All
// methods are safe on a nil receiver (no-ops), so optional instrumentation
// costs one nil check.  Exports are deterministic (keys sorted).
//
// A registry is single-writer: it has no internal synchronization, so all
// writes must come from the one simulation (or goroutine) that owns it.
// To aggregate across concurrent runs — the sweep harnesses, ftckpt.Sweep
// — give every run a private registry and fold the per-run registries
// into the aggregate with Merge after each run has completed; merging in
// run order reproduces exactly the registry a sequential sweep sharing
// one registry would have produced.
type Metrics struct {
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*Hist
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*Hist),
	}
}

// Add increments a counter by v (creating it at 0).
func (m *Metrics) Add(name string, v int64) {
	if m == nil {
		return
	}
	m.counters[name] += v
}

// Inc increments a counter by one.
func (m *Metrics) Inc(name string) { m.Add(name, 1) }

// Counter returns a counter's value (0 if absent or m is nil).
func (m *Metrics) Counter(name string) int64 {
	if m == nil {
		return 0
	}
	return m.counters[name]
}

// Touch ensures a counter exists (so exports include its zero).
func (m *Metrics) Touch(name string) { m.Add(name, 0) }

// Set stores a gauge value.
func (m *Metrics) Set(name string, v float64) {
	if m == nil {
		return
	}
	m.gauges[name] = v
}

// Gauge returns a gauge's value (0 if absent or m is nil).
func (m *Metrics) Gauge(name string) float64 {
	if m == nil {
		return 0
	}
	return m.gauges[name]
}

// Observe records a duration into a histogram (creating it).
func (m *Metrics) Observe(name string, d sim.Time) {
	if m == nil {
		return
	}
	h, ok := m.hists[name]
	if !ok {
		h = newHist()
		m.hists[name] = h
	}
	h.Observe(d)
}

// TouchHist ensures a histogram exists (so exports include it empty).
func (m *Metrics) TouchHist(name string) {
	if m == nil {
		return
	}
	if _, ok := m.hists[name]; !ok {
		m.hists[name] = newHist()
	}
}

// Hist returns a histogram, or nil if absent.
func (m *Metrics) Hist(name string) *Hist {
	if m == nil {
		return nil
	}
	return m.hists[name]
}

// Merge folds every counter, gauge and histogram of other into m.
// Counters and histogram tallies combine exactly (sums add; histogram
// min/max and bucket counts merge, never recomputed from means); gauges
// take other's value, so merging per-run registries in run order matches
// the last-write-wins outcome of sequential runs sharing one registry.
// Merge must only be called after the run owning other has completed (see
// the single-writer note on Metrics).  A nil m or other is a no-op.
func (m *Metrics) Merge(other *Metrics) {
	if m == nil || other == nil {
		return
	}
	for name, v := range other.counters {
		m.counters[name] += v
	}
	for name, v := range other.gauges {
		m.gauges[name] = v
	}
	for name, oh := range other.hists {
		h, ok := m.hists[name]
		if !ok {
			h = newHist()
			m.hists[name] = h
		}
		h.merge(oh)
	}
}

// histJSON is the export shape of one histogram.
type histJSON struct {
	Count   int64   `json:"count"`
	SumNs   int64   `json:"sum_ns"`
	MinNs   int64   `json:"min_ns"`
	MaxNs   int64   `json:"max_ns"`
	MeanNs  int64   `json:"mean_ns"`
	Bounds  []int64 `json:"bounds_ns"`
	Buckets []int64 `json:"buckets"`
}

func (h *Hist) export() histJSON {
	bounds := make([]int64, len(HistBounds))
	for i, b := range HistBounds {
		bounds[i] = int64(b)
	}
	return histJSON{
		Count: h.Count, SumNs: int64(h.Sum),
		MinNs: int64(h.Min), MaxNs: int64(h.Max), MeanNs: int64(h.Mean()),
		Bounds: bounds, Buckets: h.Buckets,
	}
}

// WriteJSON dumps the registry as indented JSON with sorted keys
// (encoding/json sorts map keys, so the output is deterministic).
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	hists := make(map[string]histJSON, len(m.hists))
	for name, h := range m.hists {
		hists[name] = h.export()
	}
	doc := struct {
		Counters   map[string]int64    `json:"counters"`
		Gauges     map[string]float64  `json:"gauges"`
		Histograms map[string]histJSON `json:"histograms"`
	}{m.counters, m.gauges, hists}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteCSV dumps the registry as "kind,name,field,value" rows, sorted.
func (m *Metrics) WriteCSV(w io.Writer) error {
	if m == nil {
		return nil
	}
	var rows []string
	for name, v := range m.counters {
		rows = append(rows, fmt.Sprintf("counter,%s,value,%d", name, v))
	}
	for name, v := range m.gauges {
		rows = append(rows, fmt.Sprintf("gauge,%s,value,%g", name, v))
	}
	for name, h := range m.hists {
		rows = append(rows,
			fmt.Sprintf("hist,%s,count,%d", name, h.Count),
			fmt.Sprintf("hist,%s,sum_ns,%d", name, int64(h.Sum)),
			fmt.Sprintf("hist,%s,min_ns,%d", name, int64(h.Min)),
			fmt.Sprintf("hist,%s,max_ns,%d", name, int64(h.Max)),
			fmt.Sprintf("hist,%s,mean_ns,%d", name, int64(h.Mean())),
		)
	}
	sort.Strings(rows)
	if _, err := io.WriteString(w, "kind,name,field,value\n"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := io.WriteString(w, r+"\n"); err != nil {
			return err
		}
	}
	return nil
}
