package obs

import (
	"fmt"

	"ftckpt/internal/sim"
)

// Standard metric names derived from the event stream.  Per-rank,
// per-channel and per-server variants append ".rank<r>", ".ch<src>-<dst>"
// and ".server<s>" suffixes.
const (
	MMarkersSent    = "markers.sent"
	MMarkersRecv    = "markers.recv"
	MDelayedSends   = "pcl.delayed_sends"
	MDelayedRecvs   = "pcl.delayed_recvs"
	MBlockedTime    = "pcl.blocked_time" // hist: per-rank blocked-send span per wave
	MLoggedMsgs     = "log.msgs"         // Vcl channel state + mlog pessimistic logs
	MLoggedBytes    = "log.bytes"
	MLocalCkpts     = "ckpt.local"
	MImageBytes     = "ckpt.image_bytes"
	MImageStoreTime = "ckpt.store_time" // hist: per-image transfer duration
	MLogShipBytes   = "ckpt.log_bytes"
	MWavesCommitted = "waves.committed"
	MFailures       = "failures"
	MRestartTime    = "restart.time" // hist: failure-detection to resumed execution
	// Wave-phase histograms, observed by the process manager at commit
	// (the paper's cost decomposition: flush straggle / transfer / cycle).
	MWaveSpread   = "wave.spread"
	MWaveTransfer = "wave.transfer"
	MWaveCycle    = "wave.cycle"
	// Robustness metrics: checkpoint-server losses, heartbeat detections
	// (with the detection-latency histogram observed by the process
	// manager, which knows the true death time), false suspicions, fetch
	// failovers, store retries, waves whose write quorum became
	// unreachable, replayed log messages, and degraded stops.
	MServerFailures  = "failures.server"
	MDetectTimeouts  = "detect.timeouts"
	MDetectLatency   = "detect.latency" // hist: component death → detection
	MFalseSuspicions = "detect.false_suspicions"
	MFailovers       = "ckpt.failover"
	MStoreRetries    = "ckpt.store_retry"
	MQuorumLost      = "ckpt.quorum_lost"
	MReplayedMsgs    = "log.replayed"
	MDegradedStops   = "degraded.stops"
	// In-job (ULFM-style) recovery: process failures the job survived in
	// place, completed repairs, and the detection→resume repair latency.
	MProcFailures  = "failures.survived"
	MRepairs       = "repairs"
	MRepairLatency = "repair.latency" // hist: proc-failed → repaired world resumed
	MAppCkpts      = "app.ckpts"
	MAppRestores   = "app.restores"
	// Storage-hierarchy metrics.  Per-level variants append ".l<k>": bytes
	// resident per level (stores and drains landing there), the async
	// drain-duration histogram, capacity/retention evictions, and the two
	// level failure classes (node-local buffers, PFS targets).
	MLevelBytes     = "ckpt.level_bytes"
	MDrainBytes     = "ckpt.drain_bytes"
	MDrainTime      = "ckpt.drain_time" // hist: per-image inter-level drain duration
	MEvictions      = "ckpt.evictions"
	MEvictedBytes   = "ckpt.evicted_bytes"
	MBufferFailures = "failures.buffer"
	MPFSFailures    = "failures.pfs"
)

// MetricsSink folds the event stream into a Metrics registry: counters
// for every discrete event, histograms for the spans it can pair
// (blocked-send windows, image-store transfers, restarts).
type MetricsSink struct {
	m *Metrics

	blockedSince map[int]sim.Time    // rank → EvChannelBlocked time
	storeSince   map[[3]int]sim.Time // (rank, wave, server) → EvImageStoreBegin time
	restartSince map[int]sim.Time    // rank (-1 global) → EvRestartBegin time
	repairSince  map[int]sim.Time    // failed rank → EvProcFailed time
	drainSince   map[[3]int]sim.Time // (rank, wave, level) → EvDrainBegin time
}

// NewMetricsSink builds a sink folding into m, pre-registering the
// standard keys so every export carries the full schema (a Pcl run still
// shows log.bytes = 0, a Vcl run still shows pcl.delayed_sends = 0).
func NewMetricsSink(m *Metrics) *MetricsSink {
	for _, c := range []string{
		MMarkersSent, MMarkersRecv, MDelayedSends, MDelayedRecvs,
		MLoggedMsgs, MLoggedBytes, MLocalCkpts, MImageBytes, MLogShipBytes,
		MWavesCommitted, MFailures,
		MServerFailures, MDetectTimeouts, MFalseSuspicions,
		MFailovers, MStoreRetries, MQuorumLost, MReplayedMsgs, MDegradedStops,
		MProcFailures, MRepairs, MAppCkpts, MAppRestores,
		MLevelBytes, MDrainBytes, MEvictions, MEvictedBytes,
		MBufferFailures, MPFSFailures,
	} {
		m.Touch(c)
	}
	for _, h := range []string{
		MBlockedTime, MImageStoreTime, MRestartTime,
		MWaveSpread, MWaveTransfer, MWaveCycle, MDetectLatency,
		MRepairLatency, MDrainTime,
	} {
		m.TouchHist(h)
	}
	return &MetricsSink{
		m:            m,
		blockedSince: make(map[int]sim.Time),
		storeSince:   make(map[[3]int]sim.Time),
		restartSince: make(map[int]sim.Time),
		repairSince:  make(map[int]sim.Time),
		drainSince:   make(map[[3]int]sim.Time),
	}
}

// Metrics returns the registry the sink folds into.
func (s *MetricsSink) Metrics() *Metrics { return s.m }

// Emit folds one event.
func (s *MetricsSink) Emit(ev Event) {
	switch ev.Type {
	case EvMarkerSent:
		s.m.Inc(MMarkersSent)
	case EvMarkerRecv:
		s.m.Inc(MMarkersRecv)
	case EvChannelBlocked:
		s.blockedSince[ev.Rank] = ev.T
	case EvChannelUnblocked:
		if t0, ok := s.blockedSince[ev.Rank]; ok {
			delete(s.blockedSince, ev.Rank)
			s.m.Observe(MBlockedTime, ev.T-t0)
			s.m.Add(fmt.Sprintf("%s.rank%d", MBlockedTime, ev.Rank), int64(ev.T-t0))
		}
	case EvSendDelayed:
		s.m.Inc(MDelayedSends)
	case EvRecvDelayed:
		s.m.Inc(MDelayedRecvs)
	case EvMessageLogged:
		s.m.Inc(MLoggedMsgs)
		s.m.Add(MLoggedBytes, ev.Bytes)
		s.m.Add(fmt.Sprintf("%s.ch%d-%d", MLoggedBytes, ev.Channel, ev.Rank), ev.Bytes)
	case EvLocalCkptEnd:
		s.m.Inc(MLocalCkpts)
	case EvImageStoreBegin:
		s.storeSince[[3]int{ev.Rank, ev.Wave, ev.Server}] = ev.T
	case EvImageStoreEnd:
		s.m.Add(MImageBytes, ev.Bytes)
		if ev.Server >= 0 {
			s.m.Add(fmt.Sprintf("%s.server%d", MImageBytes, ev.Server), ev.Bytes)
		} else {
			// A node-local buffer store (no server index): account it to
			// its hierarchy level instead.
			s.m.Add(fmt.Sprintf("%s.l%d", MLevelBytes, ev.Level), ev.Bytes)
		}
		if t0, ok := s.storeSince[[3]int{ev.Rank, ev.Wave, ev.Server}]; ok {
			delete(s.storeSince, [3]int{ev.Rank, ev.Wave, ev.Server})
			s.m.Observe(MImageStoreTime, ev.T-t0)
			if ev.Server >= 0 {
				s.m.Add(fmt.Sprintf("%s.server%d", "ckpt.store_ns", ev.Server), int64(ev.T-t0))
			}
		}
	case EvLogShipEnd:
		s.m.Add(MLogShipBytes, ev.Bytes)
	case EvWaveCommit:
		s.m.Inc(MWavesCommitted)
	case EvRankKilled:
		s.m.Inc(MFailures)
	case EvServerKilled:
		s.m.Inc(MServerFailures)
	case EvHeartbeatTimeout:
		s.m.Inc(MDetectTimeouts)
	case EvReplicaFailover:
		s.m.Inc(MFailovers)
	case EvStoreRetry:
		s.m.Inc(MStoreRetries)
	case EvQuorumLost:
		s.m.Inc(MQuorumLost)
	case EvMessageReplayed:
		s.m.Inc(MReplayedMsgs)
	case EvDegraded:
		s.m.Inc(MDegradedStops)
	case EvRestartBegin:
		s.restartSince[ev.Rank] = ev.T
	case EvRestartEnd:
		if t0, ok := s.restartSince[ev.Rank]; ok {
			delete(s.restartSince, ev.Rank)
			s.m.Observe(MRestartTime, ev.T-t0)
		}
	case EvProcFailed:
		s.m.Inc(MProcFailures)
		s.repairSince[ev.Rank] = ev.T
	case EvRepairEnd:
		s.m.Inc(MRepairs)
		if t0, ok := s.repairSince[ev.Channel]; ok {
			delete(s.repairSince, ev.Channel)
			s.m.Observe(MRepairLatency, ev.T-t0)
		}
	case EvAppCkpt:
		s.m.Inc(MAppCkpts)
	case EvAppRestore:
		s.m.Inc(MAppRestores)
	case EvDrainBegin:
		s.drainSince[[3]int{ev.Rank, ev.Wave, ev.Level}] = ev.T
	case EvDrainEnd:
		s.m.Add(MDrainBytes, ev.Bytes)
		s.m.Add(fmt.Sprintf("%s.l%d", MLevelBytes, ev.Level), ev.Bytes)
		if t0, ok := s.drainSince[[3]int{ev.Rank, ev.Wave, ev.Level}]; ok {
			delete(s.drainSince, [3]int{ev.Rank, ev.Wave, ev.Level})
			s.m.Observe(MDrainTime, ev.T-t0)
		}
	case EvLevelEvict:
		s.m.Inc(MEvictions)
		s.m.Add(MEvictedBytes, ev.Bytes)
		s.m.Add(fmt.Sprintf("%s.l%d", MEvictedBytes, ev.Level), ev.Bytes)
	case EvBufferKilled:
		s.m.Inc(MBufferFailures)
	case EvPFSKilled:
		s.m.Inc(MPFSFailures)
	}
}
