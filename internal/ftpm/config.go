// Package ftpm is the fault tolerant process manager: the runtime that
// launches an MPI job on the simulated platform, wires each process to its
// checkpointing protocol and checkpoint server, monitors for failures,
// and restarts every process from the last committed wave when one occurs.
//
// It replaces MPICH2's MPD with the paper's FTPM (§4.2): an mpiexec-like
// dispatcher plus per-process managers, a machinefile mapping compute
// nodes to checkpoint servers, and a database recording each process's
// business card, the last successful wave and which server holds which
// local checkpoint.
package ftpm

import (
	"fmt"

	"ftckpt/internal/ckpt"
	"ftckpt/internal/failure"
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
	"ftckpt/internal/span"
	"ftckpt/internal/trace"
)

// Proto selects the checkpointing protocol of a run.
type Proto string

// Protocols.
const (
	// ProtoNone disables checkpointing (baseline runs).
	ProtoNone Proto = "none"
	// ProtoPcl is the blocking protocol (MPICH2 implementation).
	ProtoPcl Proto = "pcl"
	// ProtoVcl is the non-blocking protocol (MPICH-V implementation).
	ProtoVcl Proto = "vcl"
	// ProtoMlog is uncoordinated checkpointing with pessimistic
	// receiver-based message logging — the §2 alternative family: no
	// marker waves, single-process recovery, higher failure-free cost.
	ProtoMlog Proto = "mlog"
)

// DefaultVclProcessLimit reproduces the paper's Vcl dispatcher limit: it
// multiplexes with select(), whose fd-set caps the job at roughly 300
// processes (§5.4).
const DefaultVclProcessLimit = 300

// Recovery selects how the runtime reacts to a process failure.
type Recovery string

// Recovery modes.
const (
	// RecoveryRestart is the paper's rollback recovery: the whole job is
	// killed and relaunched from the last committed wave (the default).
	RecoveryRestart Recovery = "restart"
	// RecoveryULFM repairs the job in place, ULFM-style: the communicator
	// is revoked, survivors shrink and agree on the failure set, a
	// replacement process is spliced in (onto a spare node when the
	// machine died), and the application restores from in-memory partner
	// checkpoints — no full restart.  Falls back to RecoveryRestart when
	// no application snapshot exists yet, spares are exhausted on a node
	// loss, ranks already finished, or a second failure interrupts a
	// repair.  Message-logging (mlog) keeps its native single-process
	// recovery, which is already in-job.
	RecoveryULFM Recovery = "ulfm"
)

// Config describes one job.
type Config struct {
	// NP is the number of MPI processes.
	NP int
	// ProcsPerNode co-locates processes on nodes (the paper's
	// bi-processor deployments: 2 processes share one NIC).
	ProcsPerNode int
	// Protocol and Interval select checkpointing; Interval is the time
	// between checkpoint waves (re-armed when a wave's images are all
	// stored, as in the paper).  Interval 0 with a protocol set means
	// protocol infrastructure without periodic waves.
	Protocol Proto
	Interval sim.Time
	// Servers is the number of checkpoint servers; processes are assigned
	// round-robin (rank mod Servers) unless ServerOf is set.
	Servers  int
	ServerOf func(rank int) int
	// Replicas is how many copies of each image and log set are kept
	// across checkpoint servers (k-way replication, ServerOf picking the
	// primary); 0 or 1 keeps the paper's single-copy model.  WriteQuorum
	// is how many replicas must acknowledge before a store counts as
	// durable (0 means all Replicas).
	Replicas    int
	WriteQuorum int
	// StoreRetries bounds per-replica re-ship attempts after a replica
	// dies mid-store; RetryBackoff is the delay before each retry (also
	// the delay between recovery-fetch attempts while copies may still be
	// in flight to surviving replicas).
	StoreRetries int
	RetryBackoff sim.Time
	// Storage configures the multi-level checkpoint storage hierarchy
	// (node-local staging buffer, replicated servers, striped PFS, plus
	// incremental/compressed images).  When set, the flat Servers/
	// Replicas/WriteQuorum/StoreRetries/RetryBackoff fields above must be
	// zero: Validate copies the servers-level values into them, so
	// exactly one of the two forms describes the server tier.  Nil keeps
	// the flat single-level model.
	Storage *ckpt.Spec
	// HeartbeatPeriod > 0 replaces the paper's instant failure detection
	// (the dying task's TCP connection breaks immediately) with a
	// heartbeat detector: the dispatcher pings every rank and checkpoint
	// server on the simulated network each period and declares a
	// component dead after HeartbeatTimeout of silence — detection
	// latency and false suspicions become measurable model parameters.
	HeartbeatPeriod  sim.Time
	HeartbeatTimeout sim.Time
	// Placement overrides the default rank→node mapping
	// (rank/ProcsPerNode); ServerNodes the default server placement
	// (after the compute nodes); ServiceNode the scheduler/dispatcher
	// node.  Platform presets use these to keep each process's checkpoint
	// server inside its own cluster, as the paper's grid machinefile does.
	Placement   func(rank int) int
	ServerNodes []int
	ServiceNode int
	// Topology is the platform; Profile the communication service profile.
	Topology simnet.Topology
	Profile  mpi.Profile
	// NewProgram builds rank's application (fresh start).
	NewProgram func(rank, size int) mpi.Program
	// Failures is a scripted fault-injection plan (rank, node and
	// checkpoint-server kills); MTTF adds memoryless rank failures on top
	// (0 disables).  ServerMTTF and NodeMTTF do the same for the other
	// component classes, each with its own independent failure process.
	Failures   failure.Plan
	MTTF       sim.Time
	ServerMTTF sim.Time
	NodeMTTF   sim.Time
	// RestartDelay models the runtime's respawn cost before image
	// fetches begin.
	RestartDelay sim.Time
	// NodeLoss makes a failure take down the whole node (every process on
	// it) and remove the machine from the pool, as when a machine — not
	// just a task — dies.  The dispatcher remaps the victims to spare
	// nodes while any remain, then overbooks surviving compute nodes (the
	// paper: "this may lead to overloading of some processors ... one has
	// to overbook processors to have available spare nodes").
	NodeLoss bool
	// SpareNodes reserves that many extra nodes after the service node.
	SpareNodes int
	// Recovery selects rollback-restart (default) or ULFM-style in-job
	// repair; FTEvery is the application snapshot cadence in iterations
	// for programs that support in-memory partner checkpoints (0 leaves
	// application-level FT off, which makes every ULFM repair fall back
	// to a restart).
	Recovery Recovery
	FTEvery  int
	// Deadline aborts the simulation (protocol-deadlock guard in tests);
	// 0 means none.
	Deadline sim.Time
	// VclProcessLimit overrides the Vcl dispatcher's select() limit;
	// -1 removes it (what-if studies), 0 means the default.
	VclProcessLimit int
	// Shards partitions the event kernel into that many conservatively
	// synchronized shards (sim.Kernel.SetShards), each staging its ranks'
	// events on its own goroutine with the platform's minimum link
	// latency as lookahead.  0 or 1 runs the sequential kernel (the
	// default).  Output is byte-identical for every shard count.
	Shards int
	// Seed feeds the deterministic kernel.
	Seed int64
	// Trace, when set, receives runtime progress lines (the legacy
	// unstructured stream, rendered through an obs.TextSink).
	Trace func(format string, args ...any)
	// Sink, when set, receives every structured observability event of
	// the run (markers, block/unblock spans, logged messages, image
	// transfers, commits, failures, restarts).
	Sink obs.Sink
	// Metrics, when set, is the registry the run folds its metrics into —
	// shared across runs to aggregate (cmd/figures); nil gives the job a
	// private registry, exposed through Result.Metrics either way.
	Metrics *obs.Metrics
	// Attrib attaches the causal span tracer (internal/span) to the run
	// and computes the per-phase overhead attribution into
	// Result.Attribution when the job completes.
	Attrib bool
	// SnapshotPeriod > 0 emits a periodic metrics snapshot (counter-sample
	// events) every period, rendered as counter tracks by the Chrome trace
	// exporters.
	SnapshotPeriod sim.Time
}

// Result summarizes a completed run.
type Result struct {
	// Completion is the job's virtual completion time.
	Completion sim.Time
	// WavesCommitted counts committed checkpoint waves; LastWave is the
	// final recovery line.
	WavesCommitted int
	LastWave       int
	// LocalCkpts sums local checkpoints across processes and restarts.
	LocalCkpts int
	// Restarts counts rollback/recovery episodes.
	Restarts int
	// Repairs counts in-job (ULFM) repairs: failures survived without a
	// rollback-restart.  LostWork is the virtual compute time those
	// repairs discarded (progress past the restored application
	// snapshot, summed over ranks) — the numerator of the recovered-work
	// metric.
	Repairs  int
	LostWork sim.Time
	// Messages and PayloadBytes count application traffic; CkptBytes the
	// data received by checkpoint servers; LoggedMsgs/LoggedBytes the
	// Vcl channel state.
	Messages     int64
	PayloadBytes int64
	CkptBytes    int64
	LoggedMsgs   int
	LoggedBytes  int64
	// ServerFailures counts checkpoint servers lost; Failovers counts
	// recovery fetches that fell over to a surviving replica.
	ServerFailures int
	Failovers      int
	// WaveBreakdown separates per-wave snapshot-straggle and transfer
	// durations (committed waves only).
	WaveBreakdown trace.Summary
	// Metrics is the run's metrics registry: counters (markers, logged
	// bytes per channel, image bytes per server), and virtual-time
	// histograms (blocked-send spans, store transfers, wave phases).
	Metrics *obs.Metrics
	// Attribution is the conservation-checked per-phase overhead
	// breakdown, computed when Config.Attrib is set (nil otherwise, and on
	// degraded runs).
	Attribution *span.Attribution
}

func (r Result) String() string {
	return fmt.Sprintf("completion=%v waves=%d restarts=%d ckptMB=%.1f",
		r.Completion, r.WavesCommitted, r.Restarts, float64(r.CkptBytes)/float64(1<<20))
}

// ConfigError is the single rejection shape Validate reports: the
// Config field at fault plus the reason, so callers (and flag parsers
// layered on top) can name the offending knob mechanically.
type ConfigError struct {
	// Field is the Config field (dotted for storage levels, e.g.
	// "Storage.Levels[0].Kind") that made the configuration invalid.
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("ftpm: %s: %s", e.Field, e.Reason)
}

func cfgErr(field, format string, args ...any) error {
	return &ConfigError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// Validate checks a configuration, applying defaults in place.  Every
// rejection is a *ConfigError naming the offending field.
func (c *Config) Validate() error {
	if c.NP <= 0 {
		return cfgErr("NP", "must be positive, got %d", c.NP)
	}
	if c.ProcsPerNode <= 0 {
		c.ProcsPerNode = 1
	}
	if c.Protocol == "" {
		c.Protocol = ProtoNone
	}
	switch c.Protocol {
	case ProtoNone, ProtoPcl, ProtoVcl, ProtoMlog:
	default:
		return cfgErr("Protocol", "unknown protocol %q", c.Protocol)
	}
	if err := c.validateStorage(); err != nil {
		return err
	}
	if c.Protocol != ProtoNone {
		if c.Servers <= 0 {
			return cfgErr("Servers", "checkpointing requires at least one server")
		}
	}
	if c.NewProgram == nil {
		return cfgErr("NewProgram", "is required")
	}
	if c.RestartDelay < 0 {
		return cfgErr("RestartDelay", "must be non-negative, got %v", c.RestartDelay)
	}
	if c.MTTF < 0 {
		return cfgErr("MTTF", "must be non-negative, got %v", c.MTTF)
	}
	if c.ServerMTTF < 0 {
		return cfgErr("ServerMTTF", "must be non-negative, got %v", c.ServerMTTF)
	}
	if c.NodeMTTF < 0 {
		return cfgErr("NodeMTTF", "must be non-negative, got %v", c.NodeMTTF)
	}
	if c.Replicas < 0 {
		return cfgErr("Replicas", "must be non-negative, got %d", c.Replicas)
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Replicas > c.Servers && c.Protocol != ProtoNone {
		return cfgErr("Replicas", "%d replicas exceed the number of servers (%d)", c.Replicas, c.Servers)
	}
	if c.WriteQuorum < 0 {
		return cfgErr("WriteQuorum", "must be non-negative, got %d", c.WriteQuorum)
	}
	if c.WriteQuorum == 0 {
		c.WriteQuorum = c.Replicas
	}
	if c.WriteQuorum > c.Replicas {
		return cfgErr("WriteQuorum", "quorum %d exceeds Replicas (%d)", c.WriteQuorum, c.Replicas)
	}
	if c.StoreRetries < 0 {
		return cfgErr("StoreRetries", "must be non-negative, got %d", c.StoreRetries)
	}
	if c.RetryBackoff < 0 {
		return cfgErr("RetryBackoff", "must be non-negative, got %v", c.RetryBackoff)
	}
	if c.HeartbeatPeriod < 0 {
		return cfgErr("HeartbeatPeriod", "must be non-negative, got %v", c.HeartbeatPeriod)
	}
	if c.HeartbeatTimeout < 0 {
		return cfgErr("HeartbeatTimeout", "must be non-negative, got %v", c.HeartbeatTimeout)
	}
	if c.HeartbeatTimeout > 0 && c.HeartbeatPeriod == 0 {
		return cfgErr("HeartbeatTimeout", "is set but HeartbeatPeriod is zero (no detector to time out)")
	}
	if c.HeartbeatPeriod > 0 {
		if c.HeartbeatTimeout == 0 {
			c.HeartbeatTimeout = 4 * c.HeartbeatPeriod
		}
		if c.HeartbeatPeriod >= c.HeartbeatTimeout {
			return cfgErr("HeartbeatPeriod", "%v must be shorter than HeartbeatTimeout (%v), or every component is suspected between pings",
				c.HeartbeatPeriod, c.HeartbeatTimeout)
		}
	}
	if c.Protocol == ProtoVcl {
		limit := c.VclProcessLimit
		if limit == 0 {
			limit = DefaultVclProcessLimit
		}
		if limit > 0 && c.NP > limit {
			return cfgErr("NP", "Vcl dispatcher multiplexes with select(): %d processes exceed the ~%d socket limit (paper §5.4); set VclProcessLimit=-1 to override", c.NP, limit)
		}
	}
	if c.ServerNodes != nil && len(c.ServerNodes) != c.Servers {
		return cfgErr("ServerNodes", "has %d entries for %d servers", len(c.ServerNodes), c.Servers)
	}
	if c.SpareNodes < 0 {
		return cfgErr("SpareNodes", "must be non-negative, got %d", c.SpareNodes)
	}
	switch c.Recovery {
	case "":
		c.Recovery = RecoveryRestart
	case RecoveryRestart, RecoveryULFM:
	default:
		return cfgErr("Recovery", "unknown recovery mode %q (want %q or %q)",
			c.Recovery, RecoveryRestart, RecoveryULFM)
	}
	if c.FTEvery < 0 {
		return cfgErr("FTEvery", "must be non-negative, got %d", c.FTEvery)
	}
	if c.Shards < 0 {
		return cfgErr("Shards", "must be non-negative, got %d", c.Shards)
	}
	if c.Placement == nil {
		computeNodes := (c.NP + c.ProcsPerNode - 1) / c.ProcsPerNode
		need := computeNodes + c.Servers + 1 + c.SpareNodes // +1 service node
		if c.ServerNodes != nil {
			need = computeNodes + c.SpareNodes
		}
		need += c.pfsTargets()
		if c.Topology.TotalNodes() < need {
			return cfgErr("Topology", "has %d nodes, need %d (%d compute + %d servers + 1 service + %d spares + %d pfs targets)",
				c.Topology.TotalNodes(), need, computeNodes, c.Servers, c.SpareNodes, c.pfsTargets())
		}
	}
	return nil
}

// pfsTargets returns the PFS target-node count of the storage spec, 0
// without one.  Valid only after validateStorage normalized the spec.
func (c *Config) pfsTargets() int {
	if c.Storage == nil {
		return 0
	}
	if i := c.Storage.Level(ckpt.LevelPFS); i >= 0 {
		return c.Storage.Levels[i].Targets
	}
	return 0
}

// validateStorage checks the typed storage hierarchy and, when present,
// folds its servers-level values into the flat fields the runtime
// reads, rejecting configs that set both forms.
func (c *Config) validateStorage() error {
	if c.Storage == nil {
		return nil
	}
	sp := c.Storage
	if len(sp.Levels) == 0 {
		return cfgErr("Storage.Levels", "a storage spec needs at least the servers level")
	}
	// The flat server fields must be unset — or exactly the values a
	// previous Validate folded out of this same spec, so validation is
	// idempotent (harnesses validate before handing the config to Run).
	srvLevel := sp.ServersLevel()
	folded := func(flat int, spec func(*ckpt.LevelSpec) int) bool {
		return flat == 0 || (srvLevel != nil && flat == spec(srvLevel))
	}
	if !folded(c.Servers, func(l *ckpt.LevelSpec) int { return l.Servers }) {
		return cfgErr("Servers", "conflicts with Storage (set the servers level's Servers instead)")
	}
	if !folded(c.Replicas, func(l *ckpt.LevelSpec) int { return l.Replicas }) {
		return cfgErr("Replicas", "conflicts with Storage (set the servers level's Replicas instead)")
	}
	if !folded(c.WriteQuorum, func(l *ckpt.LevelSpec) int { return l.WriteQuorum }) {
		return cfgErr("WriteQuorum", "conflicts with Storage (set the servers level's WriteQuorum instead)")
	}
	if !folded(c.StoreRetries, func(l *ckpt.LevelSpec) int { return l.StoreRetries }) {
		return cfgErr("StoreRetries", "conflicts with Storage (set the servers level's StoreRetries instead)")
	}
	if !folded(int(c.RetryBackoff), func(l *ckpt.LevelSpec) int { return int(l.RetryBackoff) }) {
		return cfgErr("RetryBackoff", "conflicts with Storage (set the servers level's RetryBackoff instead)")
	}
	if c.ServerNodes != nil {
		return cfgErr("ServerNodes", "explicit server placement (grid platforms) keeps the flat server model; Storage is not supported there")
	}
	srvSeen := -1
	for i := range sp.Levels {
		l := &sp.Levels[i]
		field := func(name string) string { return fmt.Sprintf("Storage.Levels[%d].%s", i, name) }
		switch l.Kind {
		case ckpt.LevelBuffer:
			if i != 0 {
				return cfgErr(field("Kind"), "the buffer is the staging level and must come first")
			}
			if l.Bandwidth < 0 {
				return cfgErr(field("Bandwidth"), "must be non-negative, got %g", l.Bandwidth)
			}
			if l.Latency < 0 {
				return cfgErr(field("Latency"), "must be non-negative, got %v", l.Latency)
			}
			if l.Capacity < 0 {
				return cfgErr(field("Capacity"), "must be non-negative, got %d", l.Capacity)
			}
			if l.Retention < 0 {
				return cfgErr(field("Retention"), "must be non-negative, got %d", l.Retention)
			}
		case ckpt.LevelServers:
			if srvSeen >= 0 {
				return cfgErr(field("Kind"), "exactly one servers level is allowed (already at index %d)", srvSeen)
			}
			srvSeen = i
			if l.Servers <= 0 {
				return cfgErr(field("Servers"), "the servers level needs at least one server, got %d", l.Servers)
			}
			if l.Replicas < 0 {
				return cfgErr(field("Replicas"), "must be non-negative, got %d", l.Replicas)
			}
			if l.WriteQuorum < 0 {
				return cfgErr(field("WriteQuorum"), "must be non-negative, got %d", l.WriteQuorum)
			}
			if l.StoreRetries < 0 {
				return cfgErr(field("StoreRetries"), "must be non-negative, got %d", l.StoreRetries)
			}
			if l.RetryBackoff < 0 {
				return cfgErr(field("RetryBackoff"), "must be non-negative, got %v", l.RetryBackoff)
			}
		case ckpt.LevelPFS:
			if i != len(sp.Levels)-1 {
				return cfgErr(field("Kind"), "the PFS is the bottom level and must come last")
			}
			if l.Targets < 0 {
				return cfgErr(field("Targets"), "must be non-negative, got %d", l.Targets)
			}
			if l.Stripes < 0 {
				return cfgErr(field("Stripes"), "must be non-negative, got %d", l.Stripes)
			}
			if l.Bandwidth < 0 {
				return cfgErr(field("Bandwidth"), "must be non-negative, got %g", l.Bandwidth)
			}
		default:
			return cfgErr(field("Kind"), "unknown level kind %q (want %q, %q or %q)",
				l.Kind, ckpt.LevelBuffer, ckpt.LevelServers, ckpt.LevelPFS)
		}
	}
	if srvSeen < 0 {
		return cfgErr("Storage.Levels", "a servers level is mandatory (it is the paper's checkpoint-server tier)")
	}
	if sp.FullEvery < 0 {
		return cfgErr("Storage.FullEvery", "must be non-negative, got %d", sp.FullEvery)
	}
	if sp.DirtyFraction < 0 || sp.DirtyFraction > 1 {
		return cfgErr("Storage.DirtyFraction", "must be in [0, 1], got %g", sp.DirtyFraction)
	}
	if sp.CompressRatio < 0 || sp.CompressRatio > 1 {
		return cfgErr("Storage.CompressRatio", "must be in [0, 1], got %g", sp.CompressRatio)
	}
	sp.Normalize()
	// Fold the servers level into the flat fields: the launch and retry
	// paths read those, so one source of truth feeds both forms.  The
	// flat defaults are applied inside the spec first, keeping the two
	// forms equal so a re-validation stays a no-op.
	srv := &sp.Levels[srvSeen]
	if srv.Replicas == 0 {
		srv.Replicas = 1
	}
	if srv.WriteQuorum == 0 {
		srv.WriteQuorum = srv.Replicas
	}
	c.Servers = srv.Servers
	c.Replicas = srv.Replicas
	c.WriteQuorum = srv.WriteQuorum
	c.StoreRetries = srv.StoreRetries
	c.RetryBackoff = srv.RetryBackoff
	return nil
}
