// Package ftpm is the fault tolerant process manager: the runtime that
// launches an MPI job on the simulated platform, wires each process to its
// checkpointing protocol and checkpoint server, monitors for failures,
// and restarts every process from the last committed wave when one occurs.
//
// It replaces MPICH2's MPD with the paper's FTPM (§4.2): an mpiexec-like
// dispatcher plus per-process managers, a machinefile mapping compute
// nodes to checkpoint servers, and a database recording each process's
// business card, the last successful wave and which server holds which
// local checkpoint.
package ftpm

import (
	"errors"
	"fmt"

	"ftckpt/internal/failure"
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
	"ftckpt/internal/span"
	"ftckpt/internal/trace"
)

// Proto selects the checkpointing protocol of a run.
type Proto string

// Protocols.
const (
	// ProtoNone disables checkpointing (baseline runs).
	ProtoNone Proto = "none"
	// ProtoPcl is the blocking protocol (MPICH2 implementation).
	ProtoPcl Proto = "pcl"
	// ProtoVcl is the non-blocking protocol (MPICH-V implementation).
	ProtoVcl Proto = "vcl"
	// ProtoMlog is uncoordinated checkpointing with pessimistic
	// receiver-based message logging — the §2 alternative family: no
	// marker waves, single-process recovery, higher failure-free cost.
	ProtoMlog Proto = "mlog"
)

// DefaultVclProcessLimit reproduces the paper's Vcl dispatcher limit: it
// multiplexes with select(), whose fd-set caps the job at roughly 300
// processes (§5.4).
const DefaultVclProcessLimit = 300

// Recovery selects how the runtime reacts to a process failure.
type Recovery string

// Recovery modes.
const (
	// RecoveryRestart is the paper's rollback recovery: the whole job is
	// killed and relaunched from the last committed wave (the default).
	RecoveryRestart Recovery = "restart"
	// RecoveryULFM repairs the job in place, ULFM-style: the communicator
	// is revoked, survivors shrink and agree on the failure set, a
	// replacement process is spliced in (onto a spare node when the
	// machine died), and the application restores from in-memory partner
	// checkpoints — no full restart.  Falls back to RecoveryRestart when
	// no application snapshot exists yet, spares are exhausted on a node
	// loss, ranks already finished, or a second failure interrupts a
	// repair.  Message-logging (mlog) keeps its native single-process
	// recovery, which is already in-job.
	RecoveryULFM Recovery = "ulfm"
)

// Config describes one job.
type Config struct {
	// NP is the number of MPI processes.
	NP int
	// ProcsPerNode co-locates processes on nodes (the paper's
	// bi-processor deployments: 2 processes share one NIC).
	ProcsPerNode int
	// Protocol and Interval select checkpointing; Interval is the time
	// between checkpoint waves (re-armed when a wave's images are all
	// stored, as in the paper).  Interval 0 with a protocol set means
	// protocol infrastructure without periodic waves.
	Protocol Proto
	Interval sim.Time
	// Servers is the number of checkpoint servers; processes are assigned
	// round-robin (rank mod Servers) unless ServerOf is set.
	Servers  int
	ServerOf func(rank int) int
	// Replicas is how many copies of each image and log set are kept
	// across checkpoint servers (k-way replication, ServerOf picking the
	// primary); 0 or 1 keeps the paper's single-copy model.  WriteQuorum
	// is how many replicas must acknowledge before a store counts as
	// durable (0 means all Replicas).
	Replicas    int
	WriteQuorum int
	// StoreRetries bounds per-replica re-ship attempts after a replica
	// dies mid-store; RetryBackoff is the delay before each retry (also
	// the delay between recovery-fetch attempts while copies may still be
	// in flight to surviving replicas).
	StoreRetries int
	RetryBackoff sim.Time
	// HeartbeatPeriod > 0 replaces the paper's instant failure detection
	// (the dying task's TCP connection breaks immediately) with a
	// heartbeat detector: the dispatcher pings every rank and checkpoint
	// server on the simulated network each period and declares a
	// component dead after HeartbeatTimeout of silence — detection
	// latency and false suspicions become measurable model parameters.
	HeartbeatPeriod  sim.Time
	HeartbeatTimeout sim.Time
	// Placement overrides the default rank→node mapping
	// (rank/ProcsPerNode); ServerNodes the default server placement
	// (after the compute nodes); ServiceNode the scheduler/dispatcher
	// node.  Platform presets use these to keep each process's checkpoint
	// server inside its own cluster, as the paper's grid machinefile does.
	Placement   func(rank int) int
	ServerNodes []int
	ServiceNode int
	// Topology is the platform; Profile the communication service profile.
	Topology simnet.Topology
	Profile  mpi.Profile
	// NewProgram builds rank's application (fresh start).
	NewProgram func(rank, size int) mpi.Program
	// Failures is a scripted fault-injection plan (rank, node and
	// checkpoint-server kills); MTTF adds memoryless rank failures on top
	// (0 disables).  ServerMTTF and NodeMTTF do the same for the other
	// component classes, each with its own independent failure process.
	Failures   failure.Plan
	MTTF       sim.Time
	ServerMTTF sim.Time
	NodeMTTF   sim.Time
	// RestartDelay models the runtime's respawn cost before image
	// fetches begin.
	RestartDelay sim.Time
	// NodeLoss makes a failure take down the whole node (every process on
	// it) and remove the machine from the pool, as when a machine — not
	// just a task — dies.  The dispatcher remaps the victims to spare
	// nodes while any remain, then overbooks surviving compute nodes (the
	// paper: "this may lead to overloading of some processors ... one has
	// to overbook processors to have available spare nodes").
	NodeLoss bool
	// SpareNodes reserves that many extra nodes after the service node.
	SpareNodes int
	// Recovery selects rollback-restart (default) or ULFM-style in-job
	// repair; FTEvery is the application snapshot cadence in iterations
	// for programs that support in-memory partner checkpoints (0 leaves
	// application-level FT off, which makes every ULFM repair fall back
	// to a restart).
	Recovery Recovery
	FTEvery  int
	// Deadline aborts the simulation (protocol-deadlock guard in tests);
	// 0 means none.
	Deadline sim.Time
	// VclProcessLimit overrides the Vcl dispatcher's select() limit;
	// -1 removes it (what-if studies), 0 means the default.
	VclProcessLimit int
	// Shards partitions the event kernel into that many conservatively
	// synchronized shards (sim.Kernel.SetShards), each staging its ranks'
	// events on its own goroutine with the platform's minimum link
	// latency as lookahead.  0 or 1 runs the sequential kernel (the
	// default).  Output is byte-identical for every shard count.
	Shards int
	// Seed feeds the deterministic kernel.
	Seed int64
	// Trace, when set, receives runtime progress lines (the legacy
	// unstructured stream, rendered through an obs.TextSink).
	Trace func(format string, args ...any)
	// Sink, when set, receives every structured observability event of
	// the run (markers, block/unblock spans, logged messages, image
	// transfers, commits, failures, restarts).
	Sink obs.Sink
	// Metrics, when set, is the registry the run folds its metrics into —
	// shared across runs to aggregate (cmd/figures); nil gives the job a
	// private registry, exposed through Result.Metrics either way.
	Metrics *obs.Metrics
	// Attrib attaches the causal span tracer (internal/span) to the run
	// and computes the per-phase overhead attribution into
	// Result.Attribution when the job completes.
	Attrib bool
	// SnapshotPeriod > 0 emits a periodic metrics snapshot (counter-sample
	// events) every period, rendered as counter tracks by the Chrome trace
	// exporters.
	SnapshotPeriod sim.Time
}

// Result summarizes a completed run.
type Result struct {
	// Completion is the job's virtual completion time.
	Completion sim.Time
	// WavesCommitted counts committed checkpoint waves; LastWave is the
	// final recovery line.
	WavesCommitted int
	LastWave       int
	// LocalCkpts sums local checkpoints across processes and restarts.
	LocalCkpts int
	// Restarts counts rollback/recovery episodes.
	Restarts int
	// Repairs counts in-job (ULFM) repairs: failures survived without a
	// rollback-restart.  LostWork is the virtual compute time those
	// repairs discarded (progress past the restored application
	// snapshot, summed over ranks) — the numerator of the recovered-work
	// metric.
	Repairs  int
	LostWork sim.Time
	// Messages and PayloadBytes count application traffic; CkptBytes the
	// data received by checkpoint servers; LoggedMsgs/LoggedBytes the
	// Vcl channel state.
	Messages     int64
	PayloadBytes int64
	CkptBytes    int64
	LoggedMsgs   int
	LoggedBytes  int64
	// ServerFailures counts checkpoint servers lost; Failovers counts
	// recovery fetches that fell over to a surviving replica.
	ServerFailures int
	Failovers      int
	// WaveBreakdown separates per-wave snapshot-straggle and transfer
	// durations (committed waves only).
	WaveBreakdown trace.Summary
	// Metrics is the run's metrics registry: counters (markers, logged
	// bytes per channel, image bytes per server), and virtual-time
	// histograms (blocked-send spans, store transfers, wave phases).
	Metrics *obs.Metrics
	// Attribution is the conservation-checked per-phase overhead
	// breakdown, computed when Config.Attrib is set (nil otherwise, and on
	// degraded runs).
	Attribution *span.Attribution
}

func (r Result) String() string {
	return fmt.Sprintf("completion=%v waves=%d restarts=%d ckptMB=%.1f",
		r.Completion, r.WavesCommitted, r.Restarts, float64(r.CkptBytes)/float64(1<<20))
}

// Validate checks a configuration, applying defaults in place.
func (c *Config) Validate() error {
	if c.NP <= 0 {
		return errors.New("ftpm: NP must be positive")
	}
	if c.ProcsPerNode <= 0 {
		c.ProcsPerNode = 1
	}
	if c.Protocol == "" {
		c.Protocol = ProtoNone
	}
	switch c.Protocol {
	case ProtoNone, ProtoPcl, ProtoVcl, ProtoMlog:
	default:
		return fmt.Errorf("ftpm: unknown protocol %q", c.Protocol)
	}
	if c.Protocol != ProtoNone {
		if c.Servers <= 0 {
			return errors.New("ftpm: checkpointing requires at least one server")
		}
	}
	if c.NewProgram == nil {
		return errors.New("ftpm: NewProgram is required")
	}
	if c.RestartDelay < 0 {
		return fmt.Errorf("ftpm: RestartDelay must be non-negative, got %v", c.RestartDelay)
	}
	if c.MTTF < 0 || c.ServerMTTF < 0 || c.NodeMTTF < 0 {
		return errors.New("ftpm: MTTF, ServerMTTF and NodeMTTF must be non-negative")
	}
	if c.Replicas < 0 {
		return fmt.Errorf("ftpm: Replicas must be non-negative, got %d", c.Replicas)
	}
	if c.Replicas == 0 {
		c.Replicas = 1
	}
	if c.Replicas > c.Servers && c.Protocol != ProtoNone {
		return fmt.Errorf("ftpm: Replicas (%d) exceeds the number of servers (%d)", c.Replicas, c.Servers)
	}
	if c.WriteQuorum < 0 {
		return fmt.Errorf("ftpm: WriteQuorum must be non-negative, got %d", c.WriteQuorum)
	}
	if c.WriteQuorum == 0 {
		c.WriteQuorum = c.Replicas
	}
	if c.WriteQuorum > c.Replicas {
		return fmt.Errorf("ftpm: WriteQuorum (%d) exceeds Replicas (%d)", c.WriteQuorum, c.Replicas)
	}
	if c.StoreRetries < 0 {
		return fmt.Errorf("ftpm: StoreRetries must be non-negative, got %d", c.StoreRetries)
	}
	if c.RetryBackoff < 0 {
		return fmt.Errorf("ftpm: RetryBackoff must be non-negative, got %v", c.RetryBackoff)
	}
	if c.HeartbeatPeriod < 0 || c.HeartbeatTimeout < 0 {
		return errors.New("ftpm: HeartbeatPeriod and HeartbeatTimeout must be non-negative")
	}
	if c.HeartbeatTimeout > 0 && c.HeartbeatPeriod == 0 {
		return errors.New("ftpm: HeartbeatTimeout is set but HeartbeatPeriod is zero (no detector to time out)")
	}
	if c.HeartbeatPeriod > 0 {
		if c.HeartbeatTimeout == 0 {
			c.HeartbeatTimeout = 4 * c.HeartbeatPeriod
		}
		if c.HeartbeatPeriod >= c.HeartbeatTimeout {
			return fmt.Errorf("ftpm: HeartbeatPeriod (%v) must be shorter than HeartbeatTimeout (%v), or every component is suspected between pings",
				c.HeartbeatPeriod, c.HeartbeatTimeout)
		}
	}
	if c.Protocol == ProtoVcl {
		limit := c.VclProcessLimit
		if limit == 0 {
			limit = DefaultVclProcessLimit
		}
		if limit > 0 && c.NP > limit {
			return fmt.Errorf("ftpm: Vcl dispatcher multiplexes with select(): %d processes exceed the ~%d socket limit (paper §5.4); set VclProcessLimit=-1 to override", c.NP, limit)
		}
	}
	if c.ServerNodes != nil && len(c.ServerNodes) != c.Servers {
		return fmt.Errorf("ftpm: ServerNodes has %d entries for %d servers", len(c.ServerNodes), c.Servers)
	}
	if c.SpareNodes < 0 {
		return errors.New("ftpm: SpareNodes must be non-negative")
	}
	switch c.Recovery {
	case "":
		c.Recovery = RecoveryRestart
	case RecoveryRestart, RecoveryULFM:
	default:
		return fmt.Errorf("ftpm: unknown recovery mode %q (want %q or %q)",
			c.Recovery, RecoveryRestart, RecoveryULFM)
	}
	if c.FTEvery < 0 {
		return fmt.Errorf("ftpm: FTEvery must be non-negative, got %d", c.FTEvery)
	}
	if c.Shards < 0 {
		return fmt.Errorf("ftpm: Shards must be non-negative, got %d", c.Shards)
	}
	if c.Placement == nil {
		computeNodes := (c.NP + c.ProcsPerNode - 1) / c.ProcsPerNode
		need := computeNodes + c.Servers + 1 + c.SpareNodes // +1 service node
		if c.ServerNodes != nil {
			need = computeNodes + c.SpareNodes
		}
		if c.Topology.TotalNodes() < need {
			return fmt.Errorf("ftpm: topology has %d nodes, need %d (%d compute + %d servers + 1 service)",
				c.Topology.TotalNodes(), need, computeNodes, c.Servers)
		}
	}
	return nil
}
