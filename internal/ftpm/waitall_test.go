package ftpm

import (
	"encoding/gob"
	"testing"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
)

// haloProg exchanges halos with both neighbours using nonblocking
// receives completed by Waitall — the classic stencil idiom — to exercise
// checkpointing through the resumable Waitall path.
type haloProg struct {
	Rank, Size int
	Iters      int
	It         int
	Phase      int
	Val        float64
	Sum        float64
	Work       sim.Time
}

func init() { gob.Register(&haloProg{}) }

func (g *haloProg) Step(e *mpi.Engine) bool {
	left := (g.Rank - 1 + g.Size) % g.Size
	right := (g.Rank + 1) % g.Size
	switch g.Phase {
	case 0:
		e.Compute(g.Work)
		g.Phase = 1
	case 1:
		// Post both sends eagerly, then complete both receives; a
		// checkpoint can land inside the Waitall with one receive done.
		e.Isend(left, 11, mpi.EncodeF64(g.Val), 0)
		e.Isend(right, 12, mpi.EncodeF64(g.Val), 0)
		g.Phase = 2
	case 2:
		rl := e.Irecv(left, 12)
		rr := e.Irecv(right, 11)
		e.Waitall([]*mpi.Request{rl, rr})
		g.Val = 0.25*mpi.DecodeF64(rl.Packet.Data) + 0.25*mpi.DecodeF64(rr.Packet.Data) + 0.5*g.Val + 1
		g.It++
		if g.It >= g.Iters {
			g.Phase = 3
		} else {
			g.Phase = 0
		}
	case 3:
		s := e.AllreduceF64(mpi.OpSum, []float64{g.Val})
		g.Sum = s[0]
		return true
	}
	return false
}

func (g *haloProg) Footprint() int64 { return 256 << 10 }

// The Isends in phase 1 violate no contract: Isend never parks (it is
// eager and the engine charges no overhead under the test profile), so
// phase 1 is atomic; with per-call overheads a SentA-style flag would be
// required, as nas.LUModel demonstrates.

func TestWaitallSurvivesRecovery(t *testing.T) {
	mk := func(rank, size int) mpi.Program {
		return &haloProg{Rank: rank, Size: size, Iters: 120, Work: time.Millisecond}
	}
	ref := baseCfg(6)
	ref.NewProgram = mk
	refJob, err := NewJob(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refJob.Run(); err != nil {
		t.Fatal(err)
	}
	want := refJob.Programs()[0].(*haloProg).Sum
	if want == 0 {
		t.Fatal("degenerate reference")
	}

	for _, proto := range []Proto{ProtoPcl, ProtoVcl, ProtoMlog} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := baseCfg(6)
			cfg.NewProgram = mk
			cfg.Protocol = proto
			cfg.Interval = 12 * time.Millisecond
			cfg.RestartDelay = time.Millisecond
			cfg.Failures = failure.KillAt(55*time.Millisecond, 2)
			job, err := NewJob(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := job.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Restarts != 1 {
				t.Fatalf("restarts = %d", res.Restarts)
			}
			for r, p := range job.Programs() {
				if got := p.(*haloProg).Sum; got != want {
					t.Fatalf("rank %d sum %v, want %v", r, got, want)
				}
			}
		})
	}
}
