package ftpm

import (
	"testing"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
)

// ulfmCfg is a small Jacobi job with in-job recovery enabled: partner
// snapshots every 10 iterations, coordinated blocking checkpoints.
func ulfmCfg(np int) Config {
	cfg := baseCfg(np)
	cfg.NewProgram = func(rank, size int) mpi.Program {
		return nas.NewJacobi(rank, size, np*8, 400)
	}
	cfg.Protocol = ProtoPcl
	cfg.Interval = 25 * time.Millisecond
	cfg.Recovery = RecoveryULFM
	cfg.FTEvery = 10
	return cfg
}

func jacobiResidual(t *testing.T, progs []mpi.Program) float64 {
	t.Helper()
	j, ok := progs[0].(*nas.Jacobi)
	if !ok {
		t.Fatalf("rank 0 is %T, want *nas.Jacobi", progs[0])
	}
	return j.Residual
}

// TestULFMRepairSurvivesKill is the tentpole acceptance: under a scripted
// kill, ULFM recovery completes with zero rollback-restarts, exactly one
// repair, positive lost work, and the same numerical answer as the
// failure-free run.
func TestULFMRepairSurvivesKill(t *testing.T) {
	ref, refProgs := runOK(t, ulfmCfg(8))
	want := jacobiResidual(t, refProgs)
	t.Logf("failure-free completion %v", ref.Completion)

	cfg := ulfmCfg(8)
	cfg.Failures = failure.KillAt(60*time.Millisecond, 3)
	res, progs := runOK(t, cfg)
	if res.Restarts != 0 {
		t.Fatalf("ULFM recovery fell back to %d restarts", res.Restarts)
	}
	if res.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1", res.Repairs)
	}
	if res.LostWork <= 0 {
		t.Fatalf("LostWork = %v, want > 0", res.LostWork)
	}
	if got := jacobiResidual(t, progs); got != want {
		t.Fatalf("residual after repair %v, failure-free %v", got, want)
	}
	if res.Completion <= ref.Completion {
		t.Fatalf("repaired run completed at %v, not after the failure-free %v",
			res.Completion, ref.Completion)
	}
}

// TestULFMRepairVcl runs the same scenario under the non-blocking
// protocol: the repair swaps scheduler-driven protocol instances.
func TestULFMRepairVcl(t *testing.T) {
	cfg := ulfmCfg(8)
	cfg.Protocol = ProtoVcl
	ref, refProgs := runOK(t, cfg)
	want := jacobiResidual(t, refProgs)

	cfg = ulfmCfg(8)
	cfg.Protocol = ProtoVcl
	cfg.Failures = failure.KillAt(60*time.Millisecond, 3)
	res, progs := runOK(t, cfg)
	if res.Restarts != 0 || res.Repairs != 1 {
		t.Fatalf("Restarts = %d, Repairs = %d, want 0/1", res.Restarts, res.Repairs)
	}
	if got := jacobiResidual(t, progs); got != want {
		t.Fatalf("residual after repair %v, failure-free %v", got, want)
	}
	_ = ref
}

// TestULFMFallbackBeforeFirstSnapshot: a kill before the first partner
// exchange cannot be repaired in place (no snapshot anywhere) and must
// fall back to the classic rollback-restart.
func TestULFMFallbackBeforeFirstSnapshot(t *testing.T) {
	cfg := ulfmCfg(8)
	cfg.Failures = failure.KillAt(200*time.Microsecond, 3)
	res, _ := runOK(t, cfg)
	if res.Repairs != 0 {
		t.Fatalf("Repairs = %d, want 0 (no snapshot existed yet)", res.Repairs)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", res.Restarts)
	}
}

// TestULFMDeterminism: the repaired run is reproducible — identical
// completion time, repair count and numerics across repeats.
func TestULFMDeterminism(t *testing.T) {
	run := func() (Result, float64) {
		cfg := ulfmCfg(8)
		cfg.Failures = failure.KillAt(60*time.Millisecond, 3)
		res, progs := runOK(t, cfg)
		return res, jacobiResidual(t, progs)
	}
	r1, s1 := run()
	r2, s2 := run()
	if r1.Completion != r2.Completion || r1.Repairs != r2.Repairs || r1.LostWork != r2.LostWork || s1 != s2 {
		t.Fatalf("repair not deterministic:\n%v %v\n%v %v", r1, s1, r2, s2)
	}
}

// TestULFMSparesExhausted: with node-loss semantics and one spare, the
// first failure repairs onto the spare and the second — pool empty —
// degrades cleanly into the classic overbooked rollback-restart.
func TestULFMSparesExhausted(t *testing.T) {
	cfg := ulfmCfg(8)
	cfg.NodeLoss = true
	cfg.SpareNodes = 1
	cfg.Failures = failure.Plan{
		{At: 40 * time.Millisecond, Rank: 3},
		{At: 60 * time.Millisecond, Rank: 5},
	}
	res, _ := runOK(t, cfg)
	if res.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1 (first kill repairs onto the spare)", res.Repairs)
	}
	if res.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1 (second kill exhausts the pool)", res.Restarts)
	}
}

// TestULFMHeartbeatRepair: in-job recovery composes with the heartbeat
// detector — the silent death is declared by timeout, then repaired.
func TestULFMHeartbeatRepair(t *testing.T) {
	cfg := ulfmCfg(8)
	cfg.HeartbeatPeriod = 2 * time.Millisecond
	cfg.HeartbeatTimeout = 8 * time.Millisecond
	cfg.Failures = failure.KillAt(60*time.Millisecond, 3)
	res, _ := runOK(t, cfg)
	if res.Restarts != 0 || res.Repairs != 1 {
		t.Fatalf("Restarts = %d, Repairs = %d, want 0/1", res.Restarts, res.Repairs)
	}
}
