package ftpm

import (
	"encoding/gob"
	"testing"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
)

// skewProg makes rank 0 compute long before each allreduce while everyone
// else arrives immediately — so a checkpoint wave triggered mid-step is
// guaranteed to catch ranks parked inside the collective.
type skewProg struct {
	Rank, Size int
	Rounds     int
	R          int
	Phase      int
	Val        float64
	Skew       sim.Time
}

func init() { gob.Register(&skewProg{}) }

func (s *skewProg) Step(e *mpi.Engine) bool {
	switch s.Phase {
	case 0:
		if s.Rank == 0 {
			e.Compute(s.Skew)
		}
		s.Phase = 1
	case 1:
		out := e.AllreduceF64(mpi.OpSum, []float64{s.Val + float64(s.R)})
		s.Val = out[0] / float64(s.Size)
		s.R++
		if s.R >= s.Rounds {
			return true
		}
		s.Phase = 0
	}
	return false
}

func (s *skewProg) Footprint() int64 { return 64 << 10 }

// TestCheckpointInsideCollective verifies the serialized-engine-state
// design (DESIGN.md §5.2): a wave lands while most ranks are blocked
// inside an allreduce, the images carry the in-flight collective state,
// and a rollback restores and resumes mid-collective with the exact
// failure-free result.
func TestCheckpointInsideCollective(t *testing.T) {
	mk := func(rank, size int) mpi.Program {
		return &skewProg{Rank: rank, Size: size, Rounds: 40, Skew: 10 * time.Millisecond}
	}

	ref := baseCfg(6)
	ref.NewProgram = mk
	job, err := NewJob(ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	want := job.Programs()[1].(*skewProg).Val

	for _, proto := range []Proto{ProtoPcl, ProtoVcl} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := baseCfg(6)
			cfg.NewProgram = mk
			cfg.Protocol = proto
			// Waves land ~mid-step, while ranks 1..5 sit inside the
			// allreduce waiting for rank 0's skewed arrival.
			cfg.Interval = 25 * time.Millisecond
			cfg.RestartDelay = time.Millisecond
			cfg.Failures = failure.KillAt(130*time.Millisecond, 4)
			job, err := NewJob(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := job.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Restarts != 1 || res.WavesCommitted == 0 {
				t.Fatalf("restarts=%d waves=%d", res.Restarts, res.WavesCommitted)
			}
			// At least one committed image must have captured an
			// in-flight collective — the point of this scenario.
			caught := 0
			for _, srv := range job.servers {
				for r := 0; r < cfg.NP; r++ {
					for w := 1; w <= res.LastWave; w++ {
						if img, err := srv.Image(r, w); err == nil && img.Engine.Coll != nil {
							caught++
						}
					}
				}
			}
			if caught == 0 {
				t.Fatal("no image captured a mid-collective process; scenario did not exercise the path")
			}
			for r, p := range job.Programs() {
				if got := p.(*skewProg).Val; got != want {
					t.Fatalf("rank %d value %v after mid-collective recovery, want %v", r, got, want)
				}
			}
			t.Logf("%s: %d images captured mid-collective state", proto, caught)
		})
	}
}
