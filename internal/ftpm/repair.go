package ftpm

import (
	"fmt"

	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/sim/placement"
)

// In-job (ULFM-style) recovery: instead of killing the whole job and
// relaunching it from the last committed wave, a detected rank failure is
// repaired in place —
//
//	detect → revoke → park → agree → splice → resume
//
// The dispatcher revokes the communicator (every survivor's blocked
// operation aborts with a typed error and the process parks in
// AwaitRepair), runs a failure agreement over the service network once
// everyone has parked, picks the newest application snapshot level every
// survivor holds, splices a replacement process in (onto a spare node
// when the machine died), rebinds the fabric, swaps in fresh protocol
// instances restored to the still-committed wave, and resumes.  The
// application restores from in-memory partner checkpoints (nas.ftState),
// so no image is fetched and the committed recovery line never moves.
//
// Every decision that cannot be honoured — no application snapshot yet,
// spares exhausted on a node loss, several ranks lost at once, a rank
// finishing while the world is parked — falls back to the classic
// rollback-restart path, which is always correct.
//
// Determinism: the whole state machine runs in kernel event context
// (detection callbacks, flow completions, the After(0) abort hook), every
// loop over ranks is ascending, and the agreement rounds are plain simnet
// flows — so repair, like restart, is a pure function of the seed.

// repairAgreeBytes is the per-survivor payload of one agreement round: a
// small header plus the failure bitmap.
const repairAgreeBytes = 64

// ulfm reports whether this job repairs failures in place.  Message
// logging keeps its native single-process recovery, which is already
// in-job and strictly better than a world repair.
func (job *Job) ulfm() bool {
	return job.cfg.Recovery == RecoveryULFM && job.cfg.Protocol != ProtoMlog
}

// tryRepair decides whether the failure of rank can be repaired in place
// and, if so, starts the repair.  It returns false when the caller must
// run the classic rollback-restart instead, true when it took ownership
// (repair underway, or the job already degraded during node loss).
func (job *Job) tryRepair(rank, node int, nodeDown bool) bool {
	if !job.ulfm() || job.repairing || job.repairSkip || job.finished > 0 {
		return false
	}
	pr := job.procs[rank]
	if pr == nil {
		return false
	}
	// Every other rank must be live: a second, silently dead rank
	// (heartbeat mode, not yet detected) could never reach the repair
	// barrier — and detection is suspended while the world is parked.
	for r, other := range job.procs {
		if r == rank {
			continue
		}
		if other == nil || other.down || other.eng == nil {
			return false
		}
	}
	takeNode := nodeDown || job.cfg.NodeLoss
	if takeNode {
		// A machine died with the rank.  Repair needs a spare to splice
		// the replacement onto (overbooking would double up a survivor's
		// node mid-run), and exactly one victim — losing several ranks at
		// once is the multi-failure case the fallback handles.
		if len(job.spares) == 0 {
			return false
		}
		n := 0
		for _, nd := range job.nodeMap {
			if nd == node {
				n++
			}
		}
		if n > 1 {
			return false
		}
	}
	// The victim's right neighbour must hold a copy of its state; without
	// one (failure before the first snapshot exchange) only a restart can
	// bring the rank back.
	partner := (rank + 1) % job.cfg.NP
	pp := job.procs[partner]
	if pp == nil || pp.down || pp.prog == nil {
		return false
	}
	fp, ok := pp.prog.(mpi.FTProgram)
	if !ok || fp.FTPeerLatest(rank) < 0 {
		return false
	}
	if takeNode {
		if _, ok := job.loseNode(node); !ok {
			return true // degraded; nothing left to repair or restart
		}
	}
	job.beginRepair(rank)
	return true
}

// beginRepair opens the repair window: the victim's incarnation is torn
// down for good, wave scheduling pauses, and the world is revoked so
// every survivor unwinds into the repair barrier.
func (job *Job) beginRepair(victim int) {
	job.repairing = true
	job.repGen++
	job.repairVictim = victim
	job.repairParkedN = 0
	job.repairT0 = job.k.Now()
	job.running = false // new kills during the window no-op, as mid-restart

	ds := job.detectSpan[victim]
	job.detectSpan[victim] = 0
	ps := job.hub.NextSpan()
	job.emit(obs.Event{Type: obs.EvProcFailed, Rank: victim, Wave: job.lastWave, Channel: -1,
		Node: job.nodeMap[victim], Server: -1, Span: ps, Cause: ds},
		"rank %d failed; repairing the world in place (wave %d stays committed)", victim, job.lastWave)
	job.repairSpan = job.hub.NextSpan()
	job.emit(obs.Event{Type: obs.EvRepairBegin, Rank: -1, Wave: job.lastWave, Channel: victim,
		Node: -1, Server: -1, Span: job.repairSpan, Cause: ps}, "")

	pr := job.procs[victim]
	job.harvest(pr)
	pr.teardown() // idempotent: heartbeat mode tore it down at death

	if job.scheduler != nil {
		job.scheduler.Stop()
	}
	// Revoke the world.  Survivors' protocol timers are cancelled first:
	// a pending wave-start closure from the revoked incarnation must not
	// inject markers into the parked world.
	for r := 0; r < job.cfg.NP; r++ {
		if r == victim {
			continue
		}
		o := job.procs[r]
		for _, id := range o.timers {
			job.k.Cancel(id)
		}
		o.timers = o.timers[:0]
		o.eng.NotifyFailed(victim)
		o.eng.Revoke()
	}
	job.emit(obs.Event{Type: obs.EvRevoked, Rank: -1, Wave: job.lastWave, Channel: victim,
		Node: -1, Server: -1, Cause: ps}, "")
}

// repairParked is called by each survivor once it has unwound out of its
// aborted operation; when the last one parks, the agreement rounds start.
func (job *Job) repairParked(pr *procRun) {
	if !job.repairing {
		return
	}
	job.repairParkedN++
	if job.repairParkedN == job.cfg.NP-1 {
		job.repairAgreement(job.repGen)
	}
}

// repairAgreement runs the failure agreement over the service network
// (compare MPIX_Comm_agree): one flow per survivor to the dispatcher
// gathering local failure knowledge, then one back redistributing the
// union and the agreed restore level.  Both rounds are plain simnet
// flows, so their cost scales with the platform like everything else.
func (job *Job) repairAgreement(repGen int) {
	size := int64(repairAgreeBytes + job.cfg.NP/8)
	var survivors []int
	for r := 0; r < job.cfg.NP; r++ {
		if r != job.repairVictim {
			survivors = append(survivors, r)
		}
	}
	pending := len(survivors)
	for _, r := range survivors {
		job.net.StartFlow(job.nodeOfRank(r), job.serviceNode, size, func() {
			if job.repGen != repGen || !job.repairing {
				return // repair aborted while the round was in flight
			}
			pending--
			if pending > 0 {
				return
			}
			down := len(survivors)
			for _, q := range survivors {
				job.net.StartFlow(job.serviceNode, job.nodeOfRank(q), size, func() {
					if job.repGen != repGen || !job.repairing {
						return
					}
					down--
					if down == 0 {
						job.repairSplice(repGen)
					}
				})
			}
		})
	}
}

// repairSplice completes the repair once the agreement has settled: pick
// the restore level, account the lost work, advance the generation, flush
// the fabric, spawn the replacement and swap fresh protocol instances in.
func (job *Job) repairSplice(repGen int) {
	victim := job.repairVictim
	partner := (victim + 1) % job.cfg.NP

	// The restore level is the newest snapshot level every survivor
	// holds, capped by the level the partner holds for the victim.  Live
	// ranks park at most one exchange apart and each keeps the two most
	// recent levels, so whenever a level exists at all, the minimum is
	// held by everyone.
	level := -1
	ok := true
	for r := 0; r < job.cfg.NP && ok; r++ {
		if r == victim {
			continue
		}
		fp, isFT := job.procs[r].prog.(mpi.FTProgram)
		if !isFT || fp.FTLatest() < 0 {
			ok = false
			break
		}
		if l := fp.FTLatest(); level < 0 || l < level {
			level = l
		}
	}
	var blob []byte
	if ok {
		fp := job.procs[partner].prog.(mpi.FTProgram)
		if pl := fp.FTPeerLatest(victim); pl < 0 {
			ok = false
		} else {
			if pl < level {
				level = pl
			}
			blob, ok = fp.FTPeerSnapshot(victim, level)
		}
	}
	if !ok {
		job.abortRepair("no common application snapshot level")
		return
	}

	// Recovered-work accounting: everything computed after the restored
	// snapshot is redone, so it counts as lost.  The victim's own capture
	// time is approximated by its partner's (same level, same global
	// phase); a zero capture time marks a freshly installed blob whose
	// true time is unknown and is skipped.
	var lost, partnerT sim.Time
	for r := 0; r < job.cfg.NP; r++ {
		if r == victim {
			continue
		}
		fp := job.procs[r].prog.(mpi.FTProgram)
		t, held := fp.FTSnapshotTime(level)
		if held && t > 0 {
			lost += job.repairT0 - t
			if r == partner {
				partnerT = t
			}
		}
	}
	if partnerT > 0 {
		lost += job.repairT0 - partnerT
	}

	// The repaired world is a new generation: stale store completions,
	// heartbeat pongs and in-flight packets of the revoked incarnation
	// are dropped at the gen and epoch gates, exactly as across a full
	// restart — but the committed recovery line does not move.
	job.gen++
	job.rec.Rollback(job.lastWave)
	for r := 0; r < job.cfg.NP; r++ {
		if r == victim {
			continue
		}
		pr := job.procs[r]
		job.harvest(pr)
		pr.gen = job.gen
		for _, f := range pr.flows {
			f.Cancel()
		}
		pr.flows = nil
		job.fab.Unbind(r) // closing the channels drops in-flight packets
	}
	job.repairLevel = level
	// The replacement spawns before the survivors are released: its LP
	// start precedes their wakeups in the event order, so its engine is
	// bound before the first post-repair message to the repaired rank.
	job.spawnRepair(victim, blob)
	for r := 0; r < job.cfg.NP; r++ {
		if r == victim {
			continue
		}
		pr := job.procs[r]
		job.fab.Bind(r, pr.eng.HandleWire)
		pr.eng.FTReset()
		pr.proto = job.newProtocol(pr)
		pr.harvested = false
		pr.eng.SetFilter(pr.proto)
		pr.proto.Restore(nil, nil, job.lastWave)
		pr.proto.Start()
	}
	job.repairs++
	job.lostWork += lost
	job.repairing = false
	job.running = true
	if job.det != nil {
		job.det.resetRanks()
	}
	if job.scheduler != nil {
		job.scheduler.Start(job.lastWave)
	}
	job.emit(obs.Event{Type: obs.EvRepairEnd, Rank: -1, Wave: level, Channel: victim,
		Node: -1, Server: -1, Span: job.repairSpan},
		"world repaired: rank %d restored at app level %d (%d spare nodes left)",
		victim, level, len(job.spares))
	job.repairSpan = 0
}

// spawnRepair starts the replacement incarnation for the repaired rank,
// seeded with the partner-held application snapshot.
func (job *Job) spawnRepair(rank int, blob []byte) {
	pr := &procRun{job: job, rank: rank, node: job.nodeOfRank(rank), gen: job.gen, ftBlob: blob}
	job.procs[rank] = pr
	p := job.k.Go(fmt.Sprintf("g%d.rank%d", job.gen, rank), pr.body)
	if job.cfg.Shards > 1 {
		p.SetShard(placement.Block(pr.node, job.cfg.Topology.TotalNodes(), job.cfg.Shards))
	}
}

// abortRepair abandons an open repair window and falls back to the
// classic rollback-restart for the same victim.  Bumping repGen
// invalidates any agreement-round callback still in flight; the restart
// path then tears every survivor down (parked LPs die through the
// kernel's unwind, like any mid-restart kill).
func (job *Job) abortRepair(reason string) {
	if !job.repairing {
		return
	}
	job.repGen++
	job.repairing = false
	job.running = true // detectedRank requires a running job
	victim := job.repairVictim
	job.emit(obs.Event{Type: obs.EvRepairAbort, Rank: -1, Wave: job.lastWave, Channel: victim,
		Node: -1, Server: -1, Span: job.repairSpan},
		"repair of rank %d abandoned (%s); falling back to rollback-restart", victim, reason)
	job.repairSpan = 0
	// The fallback must not re-enter the repair it just abandoned: the
	// condition that broke it (e.g. no common snapshot level) is not
	// visible to tryRepair's gates, so an unguarded re-entry could loop at
	// the same virtual instant.
	job.repairSkip = true
	job.detectedRank(victim)
	job.repairSkip = false
}

// ftRepairWait parks a survivor for the duration of the repair window
// and rolls its application back to the agreed snapshot level once the
// world is repaired.  Runs on the process LP.
func (pr *procRun) ftRepairWait() {
	job := pr.job
	// LPs run exclusively under the kernel, so mutating job state from
	// process context is safe (procFinished relies on the same).
	job.repairParked(pr)
	pr.eng.AwaitRepair()
	fp, ok := pr.prog.(mpi.FTProgram)
	if !ok || !fp.FTRollback(job.repairLevel) {
		// The splice agreed on a level every survivor holds; a miss here
		// is a broken invariant, not a recoverable condition.
		panic(fmt.Sprintf("ftpm: rank %d cannot roll back to agreed app level %d",
			pr.rank, job.repairLevel))
	}
	pr.eng.EmitFT(obs.Event{Type: obs.EvAppRestore, Rank: pr.rank, Wave: job.repairLevel,
		Channel: -1, Node: -1, Server: -1})
}
