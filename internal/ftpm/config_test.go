package ftpm

// Validation tests for the typed storage hierarchy: every rejection must
// surface as a *ConfigError naming the offending (possibly nested) field,
// and a valid spec must fold its servers level onto the flat runtime
// fields idempotently.

import (
	"errors"
	"testing"
	"time"

	"ftckpt/internal/ckpt"
)

// storageCfg returns a valid three-level config the rejection cases
// mutate: 4 ranks, buffer + 2 replicated servers + 2 PFS targets.
func storageCfg() Config {
	cfg := baseCfg(4)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 10 * time.Millisecond
	cfg.Servers = 0
	cfg.Storage = &ckpt.Spec{Levels: []ckpt.LevelSpec{
		{Kind: ckpt.LevelBuffer},
		{Kind: ckpt.LevelServers, Servers: 2},
		{Kind: ckpt.LevelPFS, Targets: 2, Stripes: 2},
	}}
	cfg.Topology = topoN(12) // 4 compute + 2 servers + 1 service + 2 PFS
	return cfg
}

func TestValidateStorageRejections(t *testing.T) {
	cases := []struct {
		name  string
		mut   func(*Config)
		field string
	}{
		{"empty levels", func(c *Config) { c.Storage.Levels = nil }, "Storage.Levels"},
		{"flat servers", func(c *Config) { c.Servers = 3 }, "Servers"},
		{"flat replicas", func(c *Config) { c.Replicas = 2 }, "Replicas"},
		{"flat quorum", func(c *Config) { c.WriteQuorum = 1 }, "WriteQuorum"},
		{"flat retries", func(c *Config) { c.StoreRetries = 1 }, "StoreRetries"},
		{"flat backoff", func(c *Config) { c.RetryBackoff = time.Millisecond }, "RetryBackoff"},
		{"server nodes", func(c *Config) { c.ServerNodes = []int{1, 2} }, "ServerNodes"},
		{"buffer not first", func(c *Config) {
			c.Storage.Levels[0], c.Storage.Levels[1] = c.Storage.Levels[1], c.Storage.Levels[0]
		}, "Storage.Levels[1].Kind"},
		{"buffer bandwidth", func(c *Config) { c.Storage.Levels[0].Bandwidth = -1 }, "Storage.Levels[0].Bandwidth"},
		{"buffer latency", func(c *Config) { c.Storage.Levels[0].Latency = -1 }, "Storage.Levels[0].Latency"},
		{"buffer capacity", func(c *Config) { c.Storage.Levels[0].Capacity = -1 }, "Storage.Levels[0].Capacity"},
		{"buffer retention", func(c *Config) { c.Storage.Levels[0].Retention = -1 }, "Storage.Levels[0].Retention"},
		{"duplicate servers", func(c *Config) {
			c.Storage.Levels = []ckpt.LevelSpec{
				{Kind: ckpt.LevelBuffer},
				{Kind: ckpt.LevelServers, Servers: 2},
				{Kind: ckpt.LevelServers, Servers: 1},
			}
		}, "Storage.Levels[2].Kind"},
		{"servers zero", func(c *Config) { c.Storage.Levels[1].Servers = 0 }, "Storage.Levels[1].Servers"},
		{"servers replicas", func(c *Config) { c.Storage.Levels[1].Replicas = -1 }, "Storage.Levels[1].Replicas"},
		{"servers quorum", func(c *Config) { c.Storage.Levels[1].WriteQuorum = -1 }, "Storage.Levels[1].WriteQuorum"},
		{"servers retries", func(c *Config) { c.Storage.Levels[1].StoreRetries = -1 }, "Storage.Levels[1].StoreRetries"},
		{"servers backoff", func(c *Config) { c.Storage.Levels[1].RetryBackoff = -1 }, "Storage.Levels[1].RetryBackoff"},
		{"pfs not last", func(c *Config) {
			c.Storage.Levels = []ckpt.LevelSpec{
				{Kind: ckpt.LevelBuffer},
				{Kind: ckpt.LevelPFS, Targets: 2, Stripes: 2},
				{Kind: ckpt.LevelServers, Servers: 2},
			}
		}, "Storage.Levels[1].Kind"},
		{"pfs targets", func(c *Config) { c.Storage.Levels[2].Targets = -1 }, "Storage.Levels[2].Targets"},
		{"pfs stripes", func(c *Config) { c.Storage.Levels[2].Stripes = -1 }, "Storage.Levels[2].Stripes"},
		{"pfs bandwidth", func(c *Config) { c.Storage.Levels[2].Bandwidth = -1 }, "Storage.Levels[2].Bandwidth"},
		{"unknown kind", func(c *Config) {
			c.Storage.Levels = []ckpt.LevelSpec{
				{Kind: ckpt.LevelBuffer},
				{Kind: ckpt.LevelServers, Servers: 2},
				{Kind: "tape"},
			}
		}, "Storage.Levels[2].Kind"},
		{"missing servers level", func(c *Config) {
			c.Storage.Levels = []ckpt.LevelSpec{{Kind: ckpt.LevelBuffer}}
		}, "Storage.Levels"},
		{"full every", func(c *Config) { c.Storage.FullEvery = -1 }, "Storage.FullEvery"},
		{"dirty fraction", func(c *Config) { c.Storage.DirtyFraction = 1.5 }, "Storage.DirtyFraction"},
		{"compress ratio", func(c *Config) { c.Storage.CompressRatio = -0.1 }, "Storage.CompressRatio"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			cfg := storageCfg()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("expected *ConfigError on field %q, got nil", tc.field)
			}
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("rejection is %T, want *ConfigError: %v", err, err)
			}
			if ce.Field != tc.field {
				t.Errorf("Field = %q, want %q (reason %q)", ce.Field, tc.field, ce.Reason)
			}
		})
	}
}

// TestValidateStorageFold pins the fold contract: a valid spec pushes its
// servers level (with replication defaults applied) onto the flat runtime
// fields, normalizes the model defaults, and a second Validate is a
// no-op — harnesses validate before handing the config to a job.
func TestValidateStorageFold(t *testing.T) {
	cfg := storageCfg()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.Servers != 2 || cfg.Replicas != 1 || cfg.WriteQuorum != 1 {
		t.Errorf("fold: Servers=%d Replicas=%d WriteQuorum=%d, want 2/1/1",
			cfg.Servers, cfg.Replicas, cfg.WriteQuorum)
	}
	sp := cfg.Storage
	if sp.FullEvery != 4 || sp.DirtyFraction != 0.35 || sp.CompressRatio != 0.6 {
		t.Errorf("planner defaults not normalized: %+v", sp)
	}
	if l := sp.Levels[0]; l.Bandwidth <= 0 || l.Latency <= 0 {
		t.Errorf("buffer defaults not normalized: %+v", l)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("re-validation not idempotent: %v", err)
	}
}

// TestValidateConfigErrorType checks that the pre-existing non-storage
// rejections share the single typed shape.
func TestValidateConfigErrorType(t *testing.T) {
	bad := []Config{
		{},
		{NP: 4, NewProgram: newRing(1, 0, 0), Protocol: "weird", Topology: topoN(10)},
		{NP: 4, NewProgram: newRing(1, 0, 0), Protocol: ProtoPcl, Topology: topoN(10)},
		{NP: 40, NewProgram: newRing(1, 0, 0), Topology: topoN(4)},
		{NP: 4, NewProgram: newRing(1, 0, 0), Replicas: -1, Topology: topoN(10)},
		{NP: 4, NewProgram: newRing(1, 0, 0), HeartbeatTimeout: time.Second, Topology: topoN(10)},
	}
	for i, cfg := range bad {
		err := cfg.Validate()
		if err == nil {
			t.Errorf("config %d validated", i)
			continue
		}
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Errorf("config %d: rejection is %T, want *ConfigError: %v", i, err, err)
		} else if ce.Field == "" {
			t.Errorf("config %d: empty Field in %v", i, err)
		}
	}
}
