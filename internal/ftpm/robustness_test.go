package ftpm

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/obs"
)

// TestServerFailoverRecovery is the headline replication scenario: a
// checkpoint server dies mid-wave, the write quorum of 1 keeps waves
// committing on the surviving replica, and when a rank later dies its
// recovery fetch fails over to that replica.  The recovered result must
// match the failure-free reference for every protocol family.
func TestServerFailoverRecovery(t *testing.T) {
	want := reference(t, 8)
	for _, proto := range []Proto{ProtoPcl, ProtoVcl, ProtoMlog} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := baseCfg(8)
			cfg.Protocol = proto
			cfg.Interval = 15 * time.Millisecond
			cfg.RestartDelay = 2 * time.Millisecond
			cfg.Replicas = 2
			cfg.WriteQuorum = 1
			cfg.Failures = failure.Plan{
				// Server 0 dies while wave transfers are typically in
				// flight; server 0 is the primary for even ranks.
				failure.KillServerAt(35*time.Millisecond, 0)[0],
				// Rank 2's primary is the dead server: its recovery
				// fetch must fail over to the surviving replica.
				{At: 80 * time.Millisecond, Rank: 2},
			}
			res, progs := runOK(t, cfg)
			if res.ServerFailures != 1 {
				t.Fatalf("server failures = %d, want 1", res.ServerFailures)
			}
			if res.Restarts == 0 {
				t.Fatal("rank kill caused no recovery")
			}
			if res.Failovers == 0 {
				t.Fatal("no fetch fell over to the surviving replica")
			}
			if res.Metrics.Counter(obs.MFailovers) != int64(res.Failovers) {
				t.Fatalf("metrics failovers %d, result %d",
					res.Metrics.Counter(obs.MFailovers), res.Failovers)
			}
			for r, s := range sums(progs) {
				if s != want {
					t.Fatalf("rank %d checksum %v after failover recovery, want %v", r, s, want)
				}
			}
		})
	}
}

// TestServerFailoverDeterministic reruns the failover scenario and
// requires bit-identical results and metric exports — replication,
// retries and failovers must not introduce nondeterminism.
func TestServerFailoverDeterministic(t *testing.T) {
	run := func() (Result, string) {
		cfg := baseCfg(8)
		cfg.Protocol = ProtoPcl
		cfg.Interval = 15 * time.Millisecond
		cfg.RestartDelay = 2 * time.Millisecond
		cfg.Replicas = 2
		cfg.WriteQuorum = 1
		cfg.StoreRetries = 1
		cfg.RetryBackoff = time.Millisecond
		cfg.Failures = failure.Plan{
			failure.KillServerAt(35*time.Millisecond, 0)[0],
			{At: 80 * time.Millisecond, Rank: 2},
		}
		res, _ := runOK(t, cfg)
		var sb strings.Builder
		if err := res.Metrics.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return res, sb.String()
	}
	a, am := run()
	b, bm := run()
	a.Metrics, b.Metrics = nil, nil
	if a != b {
		t.Fatalf("failover run nondeterministic:\n%+v\n%+v", a, b)
	}
	if am != bm {
		t.Fatalf("failover metrics nondeterministic:\n%s\n%s", am, bm)
	}
}

// TestDegradedStopWithoutReplication kills the only holder of a
// committed image: the restart's fetch exhausts every replica and the
// job must stop with a structured DegradedError — not a panic.
func TestDegradedStopWithoutReplication(t *testing.T) {
	cfg := baseCfg(8)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 15 * time.Millisecond
	cfg.RestartDelay = 2 * time.Millisecond
	cfg.Replicas = 1
	cfg.Failures = failure.Plan{
		// Server 0 dies between waves, after at least one commit; rank
		// 2's only image copy dies with it.
		failure.KillServerAt(40*time.Millisecond, 0)[0],
		{At: 80 * time.Millisecond, Rank: 2},
	}
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err == nil {
		t.Fatal("job completed despite losing the only copy of a committed image")
	}
	var deg *DegradedError
	if !errors.As(err, &deg) {
		t.Fatalf("want DegradedError, got %T: %v", err, err)
	}
	if deg.Wave < 1 {
		t.Fatalf("degraded at wave %d, want a committed wave", deg.Wave)
	}
	if deg.Err == nil {
		t.Fatal("DegradedError carries no cause")
	}
	if res.Metrics.Counter(obs.MDegradedStops) != 1 {
		t.Fatalf("degraded stops counter = %d", res.Metrics.Counter(obs.MDegradedStops))
	}
}

// TestHeartbeatDetection replaces instant failure detection with the
// ping/timeout detector: a rank dies silently, the dispatcher declares
// it dead only after HeartbeatTimeout of silence, and recovery still
// converges to the failure-free result.  Detection latency lands in the
// metrics histogram.
func TestHeartbeatDetection(t *testing.T) {
	want := reference(t, 6)
	cfg := baseCfg(6)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 15 * time.Millisecond
	cfg.RestartDelay = 2 * time.Millisecond
	cfg.HeartbeatPeriod = 2 * time.Millisecond
	cfg.HeartbeatTimeout = 8 * time.Millisecond
	cfg.Failures = failure.KillAt(60*time.Millisecond, 3)
	res, progs := runOK(t, cfg)
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if res.Metrics.Counter(obs.MDetectTimeouts) < 1 {
		t.Fatal("no heartbeat timeout recorded")
	}
	h := res.Metrics.Hist(obs.MDetectLatency)
	if h.Count < 1 {
		t.Fatal("no detection latency observed")
	}
	// Silence is declared between timeout and timeout+period (plus the
	// sweep granularity); far outside that window the detector is wrong.
	if h.Min < cfg.HeartbeatTimeout || h.Max > 3*cfg.HeartbeatTimeout {
		t.Fatalf("detection latency [%v, %v] outside the plausible window for timeout %v",
			h.Min, h.Max, cfg.HeartbeatTimeout)
	}
	for r, s := range sums(progs) {
		if s != want {
			t.Fatalf("rank %d checksum %v after heartbeat-detected recovery, want %v", r, s, want)
		}
	}
}

// TestHeartbeatDetectsServerDeath: a killed checkpoint server stops
// answering pings and is declared dead by the detector; the job itself
// keeps running on the surviving replica.
func TestHeartbeatDetectsServerDeath(t *testing.T) {
	cfg := baseCfg(8)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 15 * time.Millisecond
	cfg.Replicas = 2
	cfg.WriteQuorum = 1
	cfg.HeartbeatPeriod = 2 * time.Millisecond
	cfg.HeartbeatTimeout = 8 * time.Millisecond
	cfg.Failures = failure.KillServerAt(35*time.Millisecond, 1)
	res, _ := runOK(t, cfg)
	if res.ServerFailures != 1 {
		t.Fatalf("server failures = %d", res.ServerFailures)
	}
	if res.Metrics.Counter(obs.MDetectTimeouts) < 1 {
		t.Fatal("server death not detected by heartbeat")
	}
	if res.WavesCommitted < 2 {
		t.Fatalf("only %d waves committed after server loss", res.WavesCommitted)
	}
}

// TestRobustnessConfigValidation covers the new rejection rules with
// configurations that are valid except for the field under test.
func TestRobustnessConfigValidation(t *testing.T) {
	good := func() Config {
		cfg := baseCfg(4)
		cfg.Protocol = ProtoPcl
		cfg.Interval = 20 * time.Millisecond
		return cfg
	}
	base := good()
	if err := base.Validate(); err != nil {
		t.Fatalf("base config invalid: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"negative restart delay", func(c *Config) { c.RestartDelay = -time.Second }, "RestartDelay"},
		{"replicas exceed servers", func(c *Config) { c.Replicas = 3 }, "Replicas"},
		{"quorum exceeds replicas", func(c *Config) { c.Replicas = 2; c.WriteQuorum = 3 }, "WriteQuorum"},
		{"negative store retries", func(c *Config) { c.StoreRetries = -1 }, "StoreRetries"},
		{"period not below timeout", func(c *Config) {
			c.HeartbeatPeriod = 10 * time.Millisecond
			c.HeartbeatTimeout = 10 * time.Millisecond
		}, "HeartbeatPeriod"},
		{"timeout without period", func(c *Config) { c.HeartbeatTimeout = 10 * time.Millisecond }, "HeartbeatPeriod"},
		{"negative server mttf", func(c *Config) { c.ServerMTTF = -time.Second }, "ServerMTTF"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good()
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatal("config validated")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
	// Defaults: WriteQuorum 0 means all replicas, timeout 0 means 4×period.
	cfg := good()
	cfg.Replicas = 2
	cfg.HeartbeatPeriod = 3 * time.Millisecond
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.WriteQuorum != 2 {
		t.Fatalf("WriteQuorum defaulted to %d, want 2", cfg.WriteQuorum)
	}
	if cfg.HeartbeatTimeout != 12*time.Millisecond {
		t.Fatalf("HeartbeatTimeout defaulted to %v, want 12ms", cfg.HeartbeatTimeout)
	}
}
