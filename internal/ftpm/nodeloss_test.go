package ftpm

import (
	"testing"
	"time"

	"ftckpt/internal/failure"
)

func nodeLossCfg(np int) Config {
	cfg := baseCfg(np)
	cfg.ProcsPerNode = 2
	cfg.NodeLoss = true
	cfg.SpareNodes = 2
	cfg.Topology = topoN(np/2 + 2 + 1 + 2 + 2) // compute + servers + service + spares + slack
	cfg.RestartDelay = 2 * time.Millisecond
	return cfg
}

// TestNodeLossRemapsToSpare: losing a machine kills both of its processes
// and the restart places them on a spare node; the result is unchanged.
func TestNodeLossRemapsToSpare(t *testing.T) {
	want := reference(t, 8)
	cfg := nodeLossCfg(8)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 15 * time.Millisecond
	cfg.Failures = failure.KillAt(60*time.Millisecond, 2) // node 1 hosts ranks 2,3
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if job.nodeMap[2] == 1 || job.nodeMap[3] == 1 {
		t.Fatalf("victims not remapped: %v", job.nodeMap)
	}
	if job.nodeMap[2] != job.nodeMap[3] {
		t.Fatalf("co-located ranks split: %v", job.nodeMap)
	}
	if !job.deadNodes[1] {
		t.Fatal("lost node not recorded")
	}
	if len(job.spares) != 1 {
		t.Fatalf("spares remaining %d, want 1", len(job.spares))
	}
	for _, s := range sums(job.Programs()) {
		if s != want {
			t.Fatalf("checksum %v, want %v", s, want)
		}
	}
}

// TestNodeLossOverbooking: with no spares left, victims double up on a
// surviving compute node.
func TestNodeLossOverbooking(t *testing.T) {
	want := reference(t, 8)
	cfg := nodeLossCfg(8)
	cfg.SpareNodes = 0
	cfg.Protocol = ProtoPcl
	cfg.Interval = 15 * time.Millisecond
	cfg.Failures = failure.Plan{
		{At: 50 * time.Millisecond, Rank: 4},
		{At: 120 * time.Millisecond, Rank: 6},
	}
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 2 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	// Ranks 4,5 and 6,7 landed on surviving node 0 alongside ranks 0,1.
	if job.nodeMap[4] != 0 || job.nodeMap[6] != 0 {
		t.Fatalf("overbooking map %v", job.nodeMap)
	}
	for _, s := range sums(job.Programs()) {
		if s != want {
			t.Fatalf("checksum %v, want %v", s, want)
		}
	}
}

// TestNodeLossLocalRecovery: under message logging, losing a node rolls
// back exactly its two processes, nobody else.
func TestNodeLossLocalRecovery(t *testing.T) {
	want := reference(t, 8)
	cfg := nodeLossCfg(8)
	cfg.Protocol = ProtoMlog
	cfg.Interval = 25 * time.Millisecond
	cfg.Failures = failure.KillAt(80*time.Millisecond, 5) // node 2: ranks 4,5
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 2 { // both victims of the node, and only them
		t.Fatalf("restarts = %d", res.Restarts)
	}
	if job.nodeMap[4] == 2 || job.nodeMap[5] == 2 {
		t.Fatalf("victims not remapped: %v", job.nodeMap)
	}
	for _, s := range sums(job.Programs()) {
		if s != want {
			t.Fatalf("checksum %v, want %v", s, want)
		}
	}
}

// TestOverbookingSlowsCompute: two extra processes sharing an overbooked
// node contend for its NIC; the job still completes correctly.
func TestOverbookingSpareExhaustion(t *testing.T) {
	cfg := nodeLossCfg(8)
	cfg.SpareNodes = 1
	cfg.Protocol = ProtoPcl
	cfg.Interval = 15 * time.Millisecond
	cfg.Failures = failure.Plan{
		{At: 40 * time.Millisecond, Rank: 0},
		{At: 110 * time.Millisecond, Rank: 2},
	}
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	if len(job.spares) != 0 {
		t.Fatalf("spares %v", job.spares)
	}
}
