package ftpm

import "fmt"

// DegradedError is the structured "job stopped in degraded mode" error:
// the runtime hit an unrecoverable loss — every replica of a committed
// image gone, or every compute node lost with no spare left — and shut
// the job down cleanly through sim.Kernel.Stop instead of panicking.
// Callers get it from Run as the Result-level error and can match it
// with errors.As; fields that do not apply are -1 (or empty).
type DegradedError struct {
	// Reason says what was lost.
	Reason string
	// Rank and Wave name the checkpoint that became unrecoverable (image
	// fetches); -1 when the loss is not checkpoint-scoped.
	Rank int
	Wave int
	// Server is the checkpoint server involved, Node the machine, -1
	// when not applicable.
	Server int
	Node   int
	// Collective names the operation the surviving processes were blocked
	// inside when the job degraded ("allreduce", "barrier", …), with
	// Ranks the participants caught mid-operation — the paper's
	// mid-collective failure scenario made diagnosable.  Empty when no
	// process was inside a collective.
	Collective string
	Ranks      []int
	// Err is the underlying cause (e.g. a ckpt.ErrNoImage chain).
	Err error
}

// Error renders the reason with whatever context fields apply.
func (e *DegradedError) Error() string {
	msg := "ftpm: degraded: " + e.Reason
	if e.Rank >= 0 {
		msg += fmt.Sprintf(" (rank %d", e.Rank)
		if e.Wave >= 0 {
			msg += fmt.Sprintf(", wave %d", e.Wave)
		}
		msg += ")"
	} else if e.Node >= 0 {
		msg += fmt.Sprintf(" (node %d)", e.Node)
	}
	if e.Collective != "" {
		msg += fmt.Sprintf("; ranks %v blocked in %s", e.Ranks, e.Collective)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *DegradedError) Unwrap() error { return e.Err }
