package ftpm

import "ftckpt/internal/sim"

// heartbeatBytes is the wire size of one ping or pong.
const heartbeatBytes = 64

// detector is the dispatcher's heartbeat failure detector, replacing the
// paper's instant detection (the killed task's TCP connection breaks
// immediately) with a measurable model: every period the service node
// pings each rank and checkpoint server over the simulated network; live
// components pong back, and a component whose last pong is older than
// the timeout is declared dead.  Detection latency (death → declaration)
// and false suspicions (a live component's round trip exceeding the
// timeout under congestion) become observable model parameters.
type detector struct {
	job     *Job
	period  sim.Time
	timeout sim.Time

	lastRank []sim.Time // last pong per rank
	lastSrv  []sim.Time // last pong per server
	suspRank []bool     // declared dead (until the next relaunch)
	suspSrv  []bool     // declared dead (one-shot per server)
}

func newDetector(job *Job) *detector {
	return &detector{
		job:     job,
		period:  job.cfg.HeartbeatPeriod,
		timeout: job.cfg.HeartbeatTimeout,

		lastRank: make([]sim.Time, job.cfg.NP),
		lastSrv:  make([]sim.Time, len(job.servers)),
		suspRank: make([]bool, job.cfg.NP),
		suspSrv:  make([]bool, len(job.servers)),
	}
}

// start arms the periodic tick; every component gets a fresh grace
// period from now.
func (d *detector) start() {
	now := d.job.k.Now()
	for i := range d.lastRank {
		d.lastRank[i] = now
	}
	for i := range d.lastSrv {
		d.lastSrv[i] = now
	}
	d.job.k.After(d.period, d.tick)
}

// resetRanks re-arms rank monitoring after a global relaunch (ranks are
// not monitored while the job is down, so each restart grants a fresh
// grace period).
func (d *detector) resetRanks() {
	now := d.job.k.Now()
	for i := range d.lastRank {
		d.lastRank[i] = now
		d.suspRank[i] = false
	}
}

// resetRank re-arms one rank after a local (message-logging) respawn.
func (d *detector) resetRank(r int) {
	d.lastRank[r] = d.job.k.Now()
	d.suspRank[r] = false
}

// tick is one detector round: sweep for silence, then ping everything
// still believed alive.
func (d *detector) tick() {
	job := d.job
	if job.doneRes {
		return
	}
	now := job.k.Now()
	if job.running {
		for r := range d.lastRank {
			if d.suspRank[r] || job.recovering[r] {
				continue
			}
			if now-d.lastRank[r] > d.timeout {
				d.suspRank[r] = true
				job.suspectRank(r, now-d.lastRank[r])
				if !job.running {
					break // a global restart began; monitoring is suspended
				}
			}
		}
	}
	for s := range d.lastSrv {
		if !d.suspSrv[s] && now-d.lastSrv[s] > d.timeout {
			d.suspSrv[s] = true
			job.suspectServer(s, now-d.lastSrv[s])
		}
	}
	if job.running {
		for r := 0; r < job.cfg.NP; r++ {
			if !d.suspRank[r] && !job.recovering[r] {
				d.pingRank(r)
			}
		}
	}
	for s := range d.lastSrv {
		if !d.suspSrv[s] {
			d.pingServer(s)
		}
	}
	job.k.After(d.period, d.tick)
}

// pingRank round-trips service node → rank's node → service node; only a
// live incarnation pongs.
func (d *detector) pingRank(r int) {
	job := d.job
	gen := job.gen
	node := job.nodeOfRank(r)
	job.net.StartFlow(job.serviceNode, node, heartbeatBytes, func() {
		pr := job.procs[r]
		if job.gen != gen || pr == nil || pr.down || job.recovering[r] {
			return // died (or was torn down) before the ping arrived
		}
		job.net.StartFlow(node, job.serviceNode, heartbeatBytes, func() {
			if job.gen == gen {
				d.lastRank[r] = job.k.Now()
			}
		})
	})
}

// pingServer is pingRank for a checkpoint server.
func (d *detector) pingServer(s int) {
	job := d.job
	srv := job.servers[s]
	job.net.StartFlow(job.serviceNode, srv.Node, heartbeatBytes, func() {
		if !srv.Alive() {
			return
		}
		job.net.StartFlow(srv.Node, job.serviceNode, heartbeatBytes, func() {
			d.lastSrv[s] = job.k.Now()
		})
	})
}
