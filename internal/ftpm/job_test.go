package ftpm

import (
	"encoding/gob"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// ringProg is a deterministic SPMD workload exercising compute, neighbour
// exchange and collectives, written to the resumable-Program contract.
type ringProg struct {
	Rank, Size int
	Iters      int
	It         int
	Phase      int
	Val        float64
	Sum        float64
	Mem        int64
	Work       sim.Time
}

func init() { gob.Register(&ringProg{}) }

func newRing(iters int, work sim.Time, mem int64) func(rank, size int) mpi.Program {
	return func(rank, size int) mpi.Program {
		return &ringProg{
			Rank: rank, Size: size, Iters: iters,
			Val: float64(rank + 1), Mem: mem, Work: work,
		}
	}
}

const (
	phCompute = iota
	phExchange
	phReduce
	phFinal
)

func (g *ringProg) Step(e *mpi.Engine) bool {
	switch g.Phase {
	case phCompute:
		e.Compute(g.Work)
		g.Phase = phExchange
	case phExchange:
		right := (g.Rank + 1) % g.Size
		left := (g.Rank - 1 + g.Size) % g.Size
		p := e.Sendrecv(right, 10, mpi.EncodeF64(g.Val), 0, left, 10)
		g.Val = 0.5*g.Val + 0.5*mpi.DecodeF64(p.Data) + 1
		g.It++
		switch {
		case g.It == g.Iters:
			g.Phase = phFinal
		case g.It%5 == 0:
			g.Phase = phReduce
		default:
			g.Phase = phCompute
		}
	case phReduce:
		s := e.AllreduceF64(mpi.OpSum, []float64{g.Val})
		g.Sum = s[0]
		g.Phase = phCompute
	case phFinal:
		s := e.AllreduceF64(mpi.OpSum, []float64{g.Val})
		g.Sum = s[0]
		return true
	}
	return false
}

func (g *ringProg) Footprint() int64 { return g.Mem }

func topoN(nodes int) simnet.Topology {
	return simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "c", Nodes: nodes, NICBW: 100e6, Latency: 50 * time.Microsecond,
	}}}
}

func baseCfg(np int) Config {
	return Config{
		NP:         np,
		Topology:   topoN(np + 4),
		Profile:    mpi.Profile{Name: "test"},
		NewProgram: newRing(150, time.Millisecond, 256<<10),
		Servers:    2,
		Deadline:   time.Hour,
		Seed:       1,
	}
}

// runOK runs a config and fails the test on error.
func runOK(t *testing.T, cfg Config) (Result, []mpi.Program) {
	t.Helper()
	job, err := NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, job.Programs()
}

// sums extracts the final checksum of each rank.
func sums(progs []mpi.Program) []float64 {
	out := make([]float64, len(progs))
	for i, p := range progs {
		out[i] = p.(*ringProg).Sum
	}
	return out
}

func TestBaselineCompletes(t *testing.T) {
	cfg := baseCfg(8)
	res, progs := runOK(t, cfg)
	if res.WavesCommitted != 0 || res.CkptBytes != 0 {
		t.Fatalf("baseline checkpointed: %+v", res)
	}
	s := sums(progs)
	for _, v := range s[1:] {
		if v != s[0] {
			t.Fatalf("ranks disagree: %v", s)
		}
	}
	if s[0] == 0 {
		t.Fatal("zero checksum")
	}
}

func TestDeterminism(t *testing.T) {
	for _, proto := range []Proto{ProtoNone, ProtoPcl, ProtoVcl} {
		cfg := baseCfg(6)
		cfg.Protocol = proto
		cfg.Interval = 15 * time.Millisecond
		if proto == ProtoNone {
			cfg.Interval = 0
			cfg.Servers = 2
		}
		a, _ := runOK(t, cfg)
		b, _ := runOK(t, cfg)
		var am, bm strings.Builder
		if err := a.Metrics.WriteJSON(&am); err != nil {
			t.Fatal(err)
		}
		if err := b.Metrics.WriteJSON(&bm); err != nil {
			t.Fatal(err)
		}
		a.Metrics, b.Metrics = nil, nil
		if a != b {
			t.Fatalf("%s nondeterministic:\n%+v\n%+v", proto, a, b)
		}
		if am.String() != bm.String() {
			t.Fatalf("%s metrics nondeterministic:\n%s\n%s", proto, am.String(), bm.String())
		}
	}
}

func TestPclFailureFreeWavesAndOverhead(t *testing.T) {
	base, _ := runOK(t, baseCfg(8))

	cfg := baseCfg(8)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 20 * time.Millisecond
	res, progs := runOK(t, cfg)
	if res.WavesCommitted < 2 {
		t.Fatalf("only %d waves committed", res.WavesCommitted)
	}
	if res.LocalCkpts != res.WavesCommitted*8 {
		t.Fatalf("local ckpts %d, waves %d × 8", res.LocalCkpts, res.WavesCommitted)
	}
	if res.Completion <= base.Completion {
		t.Fatalf("pcl (%v) not slower than baseline (%v)", res.Completion, base.Completion)
	}
	if res.CkptBytes < int64(res.WavesCommitted)*8*(256<<10) {
		t.Fatalf("ckpt bytes %d too small", res.CkptBytes)
	}
	s := sums(progs)
	for _, v := range s[1:] {
		if v != s[0] {
			t.Fatalf("ranks disagree: %v", s)
		}
	}
}

func TestVclFailureFreeWaves(t *testing.T) {
	cfg := baseCfg(8)
	cfg.Protocol = ProtoVcl
	cfg.Interval = 20 * time.Millisecond
	res, progs := runOK(t, cfg)
	if res.WavesCommitted < 2 {
		t.Fatalf("only %d waves committed", res.WavesCommitted)
	}
	s := sums(progs)
	for _, v := range s[1:] {
		if v != s[0] {
			t.Fatalf("ranks disagree: %v", s)
		}
	}
}

// reference computes the failure-free checksum for a workload setup.
func reference(t *testing.T, np int) float64 {
	t.Helper()
	_, progs := runOK(t, baseCfg(np))
	return sums(progs)[0]
}

func TestPclRecovery(t *testing.T) {
	want := reference(t, 8)
	cfg := baseCfg(8)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 15 * time.Millisecond
	cfg.RestartDelay = 5 * time.Millisecond
	cfg.Failures = failure.KillAt(60*time.Millisecond, 3)
	res, progs := runOK(t, cfg)
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	for r, s := range sums(progs) {
		if s != want {
			t.Fatalf("rank %d checksum %v after recovery, want %v", r, s, want)
		}
	}
}

func TestVclRecoveryReplaysChannelState(t *testing.T) {
	want := reference(t, 8)
	cfg := baseCfg(8)
	cfg.Protocol = ProtoVcl
	cfg.Interval = 15 * time.Millisecond
	cfg.RestartDelay = 5 * time.Millisecond
	cfg.Failures = failure.KillAt(60*time.Millisecond, 5)
	res, progs := runOK(t, cfg)
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	for r, s := range sums(progs) {
		if s != want {
			t.Fatalf("rank %d checksum %v after recovery, want %v", r, s, want)
		}
	}
}

func TestFailureBeforeFirstCommitRestartsFromScratch(t *testing.T) {
	want := reference(t, 6)
	cfg := baseCfg(6)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 10 * time.Second // no wave before the failure
	cfg.Failures = failure.KillAt(10*time.Millisecond, 0)
	res, progs := runOK(t, cfg)
	if res.Restarts != 1 || res.LastWave != 0 {
		t.Fatalf("restarts=%d lastWave=%d", res.Restarts, res.LastWave)
	}
	for _, s := range sums(progs) {
		if s != want {
			t.Fatalf("checksum %v, want %v", s, want)
		}
	}
}

func TestMultipleFailures(t *testing.T) {
	want := reference(t, 8)
	for _, proto := range []Proto{ProtoPcl, ProtoVcl} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := baseCfg(8)
			cfg.Protocol = proto
			cfg.Interval = 12 * time.Millisecond
			cfg.RestartDelay = 2 * time.Millisecond
			cfg.Failures = failure.Plan{
				{At: 40 * time.Millisecond, Rank: 1},
				{At: 110 * time.Millisecond, Rank: 6},
				{At: 180 * time.Millisecond, Rank: 1},
			}
			res, progs := runOK(t, cfg)
			if res.Restarts == 0 {
				t.Fatal("no restarts recorded")
			}
			for _, s := range sums(progs) {
				if s != want {
					t.Fatalf("checksum %v, want %v (restarts %d)", s, want, res.Restarts)
				}
			}
		})
	}
}

func TestMTTFFailures(t *testing.T) {
	want := reference(t, 6)
	cfg := baseCfg(6)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 15 * time.Millisecond
	cfg.MTTF = 70 * time.Millisecond
	cfg.RestartDelay = 2 * time.Millisecond
	res, progs := runOK(t, cfg)
	for _, s := range sums(progs) {
		if s != want {
			t.Fatalf("checksum %v, want %v (restarts=%d)", s, want, res.Restarts)
		}
	}
}

func TestVclSelectLimit(t *testing.T) {
	cfg := baseCfg(301)
	cfg.Topology = topoN(310)
	cfg.Protocol = ProtoVcl
	cfg.Interval = time.Second
	_, err := NewJob(cfg)
	if err == nil || !strings.Contains(err.Error(), "select") {
		t.Fatalf("err = %v, want select() limit error", err)
	}
	cfg.VclProcessLimit = -1
	if _, err := NewJob(cfg); err != nil {
		t.Fatalf("override failed: %v", err)
	}
}

// TestBlockingCostGrowsWithFrequency is the paper's core qualitative
// claim in miniature: shrinking the checkpoint interval hurts the
// blocking protocol much more than the non-blocking one.
func TestBlockingCostGrowsWithFrequency(t *testing.T) {
	run := func(proto Proto, interval sim.Time) Result {
		cfg := baseCfg(8)
		cfg.NewProgram = newRing(200, time.Millisecond, 2<<20)
		cfg.Protocol = proto
		cfg.Interval = interval
		res, _ := runOK(t, cfg)
		return res
	}
	pclFast := run(ProtoPcl, 8*time.Millisecond)
	pclSlow := run(ProtoPcl, 50*time.Millisecond)
	vclFast := run(ProtoVcl, 8*time.Millisecond)
	vclSlow := run(ProtoVcl, 50*time.Millisecond)

	pclPenalty := float64(pclFast.Completion-pclSlow.Completion) / float64(pclSlow.Completion)
	vclPenalty := float64(vclFast.Completion-vclSlow.Completion) / float64(vclSlow.Completion)
	if pclFast.WavesCommitted <= pclSlow.WavesCommitted {
		t.Fatalf("frequency knob inert: %d vs %d waves", pclFast.WavesCommitted, pclSlow.WavesCommitted)
	}
	if pclPenalty <= vclPenalty {
		t.Fatalf("blocking penalty %.3f not above non-blocking %.3f", pclPenalty, vclPenalty)
	}
}

// TestRecoveryProperty: for random seeds, failure times and intervals, the
// recovered run produces the failure-free checksum.
func TestRecoveryProperty(t *testing.T) {
	want := reference(t, 5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		proto := ProtoPcl
		if rng.Intn(2) == 1 {
			proto = ProtoVcl
		}
		cfg := baseCfg(5)
		cfg.Seed = seed
		cfg.Protocol = proto
		cfg.Interval = sim.Time(5+rng.Intn(30)) * time.Millisecond
		cfg.RestartDelay = sim.Time(rng.Intn(5)) * time.Millisecond
		cfg.Failures = failure.Plan{{
			At:   sim.Time(10+rng.Intn(150)) * time.Millisecond,
			Rank: rng.Intn(5),
		}}
		job, err := NewJob(cfg)
		if err != nil {
			return false
		}
		if _, err := job.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, p := range job.Programs() {
			if math.Abs(p.(*ringProg).Sum-want) > 1e-9 {
				t.Logf("seed %d: checksum %v want %v", seed, p.(*ringProg).Sum, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{NP: 4},
		{NP: 4, NewProgram: newRing(1, 0, 0), Protocol: ProtoPcl, Topology: topoN(10)},
		{NP: 4, NewProgram: newRing(1, 0, 0), Protocol: "weird", Topology: topoN(10)},
		{NP: 40, NewProgram: newRing(1, 0, 0), Topology: topoN(4)},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d validated", i)
		}
	}
}
