package ftpm

import (
	"errors"
	"fmt"

	"ftckpt/internal/ckpt"
	"ftckpt/internal/core"
	"ftckpt/internal/core/mlog"
	"ftckpt/internal/core/pcl"
	"ftckpt/internal/core/vcl"
	"ftckpt/internal/failure"
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/sim/placement"
	"ftckpt/internal/simnet"
	"ftckpt/internal/span"
	"ftckpt/internal/trace"
)

// Job is one running MPI job under the fault tolerant process manager.
type Job struct {
	cfg Config
	k   *sim.Kernel
	net *simnet.Network
	fab *mpi.Fabric

	computeNodes int
	serviceNode  int
	servers      []*ckpt.Server
	group        *ckpt.Group
	store        *ckpt.Hierarchy
	det          *detector
	scheduler    *vcl.Scheduler
	procs        []*procRun
	nodeMap      []int // current rank→node mapping (changes on node loss)
	spares       []int
	deadNodes    map[int]bool
	nodeKilled   map[int]bool // machines killed by node-kill events

	gen          int
	running      bool
	finished     int
	finishedRank []bool

	lastWave   int
	rankWave   []int // per-rank recovery lines (uncoordinated protocols)
	recovering []bool
	commits    int
	restarts   int
	localCkpts int
	loggedMsgs int
	loggedByte int64

	// In-job (ULFM) repair window state; see repair.go.
	repairing     bool
	repGen        int      // invalidates in-flight agreement rounds
	repairVictim  int      // rank being repaired
	repairParkedN int      // survivors parked in AwaitRepair
	repairLevel   int      // agreed application snapshot level
	repairT0      sim.Time // window open time (lost-work baseline)
	repairSpan    uint64   // EvRepairBegin span, closed by End/Abort
	repairSkip    bool     // an aborted repair's fallback must not re-enter
	repairs       int
	lostWork      sim.Time

	expFail     *failure.Exponential
	expSrvFail  *failure.Exponential
	expNodeFail *failure.Exponential
	rankDiedAt  []sim.Time // actual death times (heartbeat mode)
	srvDiedAt   []sim.Time
	serverFails int
	degraded    bool

	rec     *trace.Recorder
	hub     *obs.Hub
	met     *obs.Metrics
	spans   *span.Builder
	res     Result
	doneRes bool

	// Causal-span bookkeeping for the failure → detection → rollback →
	// replay cause chain.
	deathSpan    []uint64 // per-rank EvComponentDead span (heartbeat mode)
	detectSpan   []uint64 // per-rank EvHeartbeatTimeout span, consumed by detectedRank
	restartSpan  []uint64 // per-rank local-restart span (mlog)
	srvKillSpan  []uint64 // per-server EvServerKilled span
	lastKillSpan uint64   // most recent global EvRankKilled span
}

// Run executes the job described by cfg and returns its result.
func Run(cfg Config) (Result, error) {
	job, err := NewJob(cfg)
	if err != nil {
		return Result{}, err
	}
	return job.Run()
}

// NewJob validates cfg and builds the platform, servers and scheduler.
func NewJob(cfg Config) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	job := &Job{cfg: cfg, k: sim.New(cfg.Seed), rec: trace.New()}
	job.met = cfg.Metrics
	if job.met == nil {
		job.met = obs.NewMetrics()
	}
	var text obs.Sink
	if cfg.Trace != nil {
		text = obs.NewTextSink(cfg.Trace)
	}
	sinks := []obs.Sink{obs.NewMetricsSink(job.met)}
	if cfg.Attrib {
		job.spans = span.NewBuilder(cfg.NP, string(cfg.Protocol))
		sinks = append(sinks, job.spans)
	}
	job.hub = obs.NewHub(append(sinks, cfg.Sink, text)...)
	job.net = simnet.New(job.k, cfg.Topology)
	job.net.SetMetrics(job.met)
	if cfg.Shards > 1 {
		// Shard the kernel before anything schedules events or spawns
		// LPs: node-blocked placement keeps a rank's timers and inbound
		// deliveries staged by the same worker, and the platform's
		// minimum link latency bounds the conservative window.  None of
		// this changes output — dispatch stays in (time, seq) order.
		job.k.SetShards(cfg.Shards)
		job.k.SetLookahead(job.net.Lookahead())
		totalNodes := cfg.Topology.TotalNodes()
		job.net.SetShardOf(func(node int) int {
			return placement.Block(node, totalNodes, cfg.Shards)
		})
	}
	job.fab = mpi.NewFabric(job.net)
	job.fab.SetMetrics(job.met)
	job.computeNodes = (cfg.NP + cfg.ProcsPerNode - 1) / cfg.ProcsPerNode
	switch {
	case cfg.ServiceNode > 0:
		job.serviceNode = cfg.ServiceNode
	case cfg.Placement != nil:
		job.serviceNode = cfg.Topology.TotalNodes() - 1
	default:
		job.serviceNode = job.computeNodes + cfg.Servers
	}
	for i := 0; i < cfg.Servers; i++ {
		node := job.computeNodes + i
		if cfg.ServerNodes != nil {
			node = cfg.ServerNodes[i]
		}
		s := ckpt.NewServer(job.net, i, node)
		s.SetObs(job.hub)
		job.servers = append(job.servers, s)
	}
	if cfg.Servers > 0 {
		job.group = ckpt.NewGroup(job.net, job.servers, cfg.Replicas, cfg.WriteQuorum, cfg.ServerOf)
		job.group.MaxRetries = cfg.StoreRetries
		job.group.Backoff = cfg.RetryBackoff
		// Every job writes through a storage hierarchy; without a typed
		// spec it degenerates to the bare server group (byte-identical to
		// the flat model).  Mlog drops the staging levels: its per-rank
		// recovery fetches image+log unions from the group the moment a
		// failure is detected, which an asynchronous drain cannot honor.
		spec := ckpt.Spec{Levels: []ckpt.LevelSpec{{Kind: ckpt.LevelServers, Servers: cfg.Servers}}}
		if cfg.Storage != nil {
			spec = *cfg.Storage
			if cfg.Protocol == ProtoMlog {
				spec = *spec.WithoutStaging()
			}
		}
		var pfsNodes []int
		if i := spec.Level(ckpt.LevelPFS); i >= 0 {
			// PFS targets live on the last nodes, after compute, servers,
			// the service node and the spares.
			for t := 0; t < spec.Levels[i].Targets; t++ {
				pfsNodes = append(pfsNodes, job.serviceNode+cfg.SpareNodes+1+t)
			}
		}
		job.store = ckpt.NewHierarchy(job.net, spec, job.group, pfsNodes)
		job.store.SetObs(job.hub)
	}
	job.nodeMap = make([]int, cfg.NP)
	job.deadNodes = map[int]bool{}
	job.nodeKilled = map[int]bool{}
	job.rankDiedAt = make([]sim.Time, cfg.NP)
	job.srvDiedAt = make([]sim.Time, cfg.Servers)
	job.deathSpan = make([]uint64, cfg.NP)
	job.detectSpan = make([]uint64, cfg.NP)
	job.restartSpan = make([]uint64, cfg.NP)
	job.srvKillSpan = make([]uint64, cfg.Servers)
	for r := 0; r < cfg.NP; r++ {
		if cfg.Placement != nil {
			job.nodeMap[r] = cfg.Placement(r)
		} else {
			job.nodeMap[r] = r / cfg.ProcsPerNode
		}
		job.fab.Place(r, job.nodeMap[r])
	}
	for i := 0; i < cfg.SpareNodes; i++ {
		job.spares = append(job.spares, job.serviceNode+1+i)
	}
	job.procs = make([]*procRun, cfg.NP)
	job.rankWave = make([]int, cfg.NP)
	job.recovering = make([]bool, cfg.NP)
	if cfg.Protocol == ProtoVcl {
		job.scheduler = vcl.NewScheduler(job.k, job.fab, cfg.NP, job.serviceNode, cfg.Interval)
		job.scheduler.OnCommit = job.commitWave
		job.scheduler.Obs = job.hub
	}
	return job, nil
}

// Kernel exposes the simulation kernel (for tests injecting extra events).
func (job *Job) Kernel() *sim.Kernel { return job.k }

// Programs returns the final program state of every rank (valid after Run
// returns successfully) — the analogue of inspecting each process's result
// after MPI_Finalize.
func (job *Job) Programs() []mpi.Program {
	out := make([]mpi.Program, job.cfg.NP)
	for r, pr := range job.procs {
		if pr != nil {
			out[r] = pr.prog
		}
	}
	return out
}

// Run launches the job and runs the simulation to completion.
func (job *Job) Run() (Result, error) {
	for _, ev := range job.cfg.Failures.Sorted() {
		ev := ev
		job.k.At(ev.At, func() { job.inject(ev) })
	}
	if job.cfg.MTTF > 0 {
		job.expFail = failure.NewExponential(job.cfg.MTTF, job.cfg.Seed+1)
		job.scheduleMTTF()
	}
	if job.cfg.ServerMTTF > 0 {
		job.expSrvFail = failure.NewExponential(job.cfg.ServerMTTF, job.cfg.Seed+2)
		job.scheduleServerMTTF()
	}
	if job.cfg.NodeMTTF > 0 {
		job.expNodeFail = failure.NewExponential(job.cfg.NodeMTTF, job.cfg.Seed+3)
		job.scheduleNodeMTTF()
	}
	if job.cfg.Deadline > 0 {
		job.k.At(job.cfg.Deadline, func() {
			// Naming the effective shard count distinguishes a sharded-
			// kernel deadlock (a lookahead/window bug) from a protocol
			// regression when a sweep times out in CI logs.
			job.k.Stop(fmt.Errorf("ftpm: deadline %v exceeded (shards=%d)",
				job.cfg.Deadline, job.k.NumShards()))
		})
	}
	if job.cfg.HeartbeatPeriod > 0 {
		job.det = newDetector(job)
	}
	if job.cfg.SnapshotPeriod > 0 {
		job.scheduleSnapshot()
	}
	job.launch(0)
	if job.det != nil {
		job.det.start()
	}
	err := job.k.Run()
	if err != nil {
		// Even a failed run keeps its metrics reachable: degraded stops,
		// detection latencies and failover counts are exactly what the
		// caller wants to inspect after an unrecoverable loss.
		return Result{Metrics: job.met}, err
	}
	if !job.doneRes {
		return Result{Metrics: job.met}, errors.New("ftpm: simulation ended before job completion")
	}
	return job.res, nil
}

func (job *Job) nodeOfRank(r int) int { return job.nodeMap[r] }

// loseNode removes a machine from the pool and remaps its ranks onto a
// spare node, or overbooks surviving compute nodes when no spare remains.
// It returns the ranks that were running on the lost node; ok is false
// when there is nothing left to remap onto — the job has already stopped
// in degraded mode and the caller must not restart anything.
func (job *Job) loseNode(node int) (victims []int, ok bool) {
	job.deadNodes[node] = true
	for r, n := range job.nodeMap {
		if n == node {
			victims = append(victims, r)
		}
	}
	var target int
	if len(job.spares) > 0 {
		target = job.spares[0]
		job.spares = job.spares[1:]
		job.emit(obs.Event{Type: obs.EvNodeLost, Rank: -1, Wave: -1, Channel: -1, Node: node, Server: -1},
			"node %d lost; remapping ranks %v to spare node %d", node, victims, target)
	} else {
		// Overbook: reuse the next surviving compute node.
		target = -1
		for n := 0; n < job.computeNodes; n++ {
			if !job.deadNodes[n] {
				target = n
				break
			}
		}
		if target < 0 {
			job.degrade(&DegradedError{
				Reason: "every compute node lost and no spare remains",
				Rank:   -1, Wave: job.lastWave, Server: -1, Node: node,
			})
			return victims, false
		}
		job.emit(obs.Event{Type: obs.EvNodeLost, Rank: -1, Wave: -1, Channel: -1, Node: node, Server: -1},
			"node %d lost, no spares; overbooking ranks %v onto node %d", node, victims, target)
	}
	for _, r := range victims {
		job.nodeMap[r] = target
		job.fab.Place(r, target)
	}
	return victims, true
}

// degrade stops the job in degraded mode: the loss is unrecoverable, so
// the runtime shuts down cleanly through the kernel with a structured
// error instead of panicking.
func (job *Job) degrade(err *DegradedError) {
	if job.degraded {
		return // the first unrecoverable loss already stopped the job
	}
	job.degraded = true
	if err.Collective == "" {
		// Name the collective the survivors are blocked inside (the
		// paper's mid-collective failure scenario): the first in-flight
		// operation kind found, with every rank caught in that kind.
		var kind mpi.CollKind
		for _, pr := range job.procs {
			if pr == nil || pr.down || pr.eng == nil {
				continue
			}
			k := pr.eng.InFlightColl()
			if k == mpi.CollNone {
				continue
			}
			if kind == mpi.CollNone {
				kind = k
			}
			if k == kind {
				err.Ranks = append(err.Ranks, pr.rank)
			}
		}
		if kind != mpi.CollNone {
			err.Collective = kind.String()
		}
	}
	job.emit(obs.Event{Type: obs.EvDegraded, Rank: err.Rank, Wave: err.Wave,
		Channel: -1, Node: err.Node, Server: err.Server}, "%v", err)
	job.running = false
	job.k.Stop(err)
}

// emit stamps ev with the current virtual time, formats the optional
// legacy progress line into Detail (rendered by the -v text sink), and
// publishes the event to the job's hub.
func (job *Job) emit(ev obs.Event, format string, args ...any) {
	ev.T = job.k.Now()
	if format != "" {
		ev.Detail = fmt.Sprintf(format, args...)
	}
	job.hub.Emit(ev)
}

func (job *Job) scheduleMTTF() {
	d, r := job.expFail.Next(job.cfg.NP)
	job.k.After(d, func() {
		if job.doneRes {
			return
		}
		job.injectRankKill(r)
		job.scheduleMTTF()
	})
}

func (job *Job) scheduleServerMTTF() {
	d, s := job.expSrvFail.Next(len(job.servers))
	job.k.After(d, func() {
		if job.doneRes {
			return
		}
		job.injectServerKill(s)
		job.scheduleServerMTTF()
	})
}

func (job *Job) scheduleNodeMTTF() {
	d, n := job.expNodeFail.Next(job.computeNodes)
	job.k.After(d, func() {
		if job.doneRes {
			return
		}
		job.injectNodeKill(n)
		job.scheduleNodeMTTF()
	})
}

// inject routes one scripted failure event to its kill path.
func (job *Job) inject(ev failure.Event) {
	if job.doneRes {
		return
	}
	switch ev.Kind {
	case failure.KindServer:
		if ev.Server >= 0 && ev.Server < len(job.servers) {
			job.injectServerKill(ev.Server)
		}
	case failure.KindNode:
		if ev.Node >= 0 {
			job.injectNodeKill(ev.Node)
		}
	case failure.KindBuffer:
		if ev.Node >= 0 && job.store != nil {
			job.store.KillBuffer(ev.Node)
		}
	case failure.KindPFS:
		if ev.Server >= 0 && job.store != nil {
			job.store.KillPFSTarget(ev.Server)
		}
	default:
		if ev.Rank >= 0 && ev.Rank < job.cfg.NP {
			job.injectRankKill(ev.Rank)
		}
	}
}

// injectRankKill kills one MPI task.  With instant detection (the
// paper's model) recovery begins immediately; in heartbeat mode the task
// just goes silent and the detector finds it.  Kills while the job is
// already down (mid-restart) are no-ops, as before.
func (job *Job) injectRankKill(rank int) {
	if !job.running {
		return
	}
	if job.det != nil {
		job.silentKill(rank)
		return
	}
	job.onFailure(rank)
}

// injectServerKill fails a checkpoint server: its data is lost, every
// transfer touching it aborts (stores retry elsewhere, fetches fail
// over).  The dispatcher needs no immediate action — consequences
// surface through the abort callbacks, and in heartbeat mode the
// detector additionally measures how long the silence takes to notice.
func (job *Job) injectServerKill(s int) {
	srv := job.servers[s]
	if !srv.Alive() {
		return
	}
	job.srvDiedAt[s] = job.k.Now()
	job.serverFails++
	job.srvKillSpan[s] = job.hub.NextSpan()
	job.emit(obs.Event{Type: obs.EvServerKilled, Rank: -1, Wave: -1, Channel: -1,
		Node: srv.Node, Server: s, Span: job.srvKillSpan[s]},
		"checkpoint server %d (node %d) lost", s, srv.Node)
	srv.Kill()
}

// injectNodeKill fails a whole machine: any checkpoint server it hosts
// dies with it, a spare slot it provided is gone, and every rank on it
// is killed (instant mode: one node-loss recovery; heartbeat mode: they
// go silent and detection triggers the node-loss path).
func (job *Job) injectNodeKill(node int) {
	if job.nodeKilled[node] {
		return
	}
	job.nodeKilled[node] = true
	for i, sp := range job.spares {
		if sp == node {
			job.spares = append(job.spares[:i], job.spares[i+1:]...)
			break
		}
	}
	for _, srv := range job.servers {
		if srv.Node == node {
			job.injectServerKill(srv.Index)
		}
	}
	if job.store != nil {
		// The machine's staging buffer (and anything draining out of it)
		// dies with the machine.
		job.store.KillBuffer(node)
	}
	var victims []int
	for r, n := range job.nodeMap {
		if n == node {
			victims = append(victims, r)
		}
	}
	if len(victims) == 0 {
		job.deadNodes[node] = true // spare or server-only machine
		return
	}
	if !job.running {
		// Mid-restart: the procs are already down; just remap so the
		// pending relaunch lands on live machines.
		job.loseNode(node)
		return
	}
	if job.det != nil {
		for _, v := range victims {
			job.silentKill(v)
		}
		return
	}
	job.detectedRank(victims[0])
}

// silentKill tears the rank down without telling the dispatcher —
// heartbeat mode's death model.  The process stops computing and
// communicating; peers' packets to it are dropped like a dead host's,
// and recovery starts only when the detector declares the silence.
func (job *Job) silentKill(rank int) {
	pr := job.procs[rank]
	if pr == nil || pr.down || job.recovering[rank] {
		return
	}
	job.rankDiedAt[rank] = job.k.Now()
	job.deathSpan[rank] = job.hub.NextSpan()
	job.emit(obs.Event{Type: obs.EvComponentDead, Rank: rank, Wave: job.lastWave, Channel: -1,
		Node: job.nodeMap[rank], Server: -1, Span: job.deathSpan[rank]}, "")
	job.harvest(pr)
	pr.teardown()
}

// suspectRank handles the detector declaring a rank dead: observe the
// detection latency (or count the false suspicion — the dispatcher
// kills and restarts either way, which is what a real one does when it
// closes a live task's connection), then run the recovery path.
func (job *Job) suspectRank(r int, silence sim.Time) {
	pr := job.procs[r]
	now := job.k.Now()
	job.detectSpan[r] = job.hub.NextSpan()
	if pr == nil || pr.down {
		job.met.Observe(obs.MDetectLatency, now-job.rankDiedAt[r])
		job.emit(obs.Event{Type: obs.EvHeartbeatTimeout, Rank: r, Wave: -1, Channel: -1,
			Node: job.nodeMap[r], Server: -1, Span: job.detectSpan[r], Cause: job.deathSpan[r]},
			"rank %d silent %v; declared dead (detection latency %v)", r, silence, now-job.rankDiedAt[r])
	} else {
		job.met.Inc(obs.MFalseSuspicions)
		job.emit(obs.Event{Type: obs.EvHeartbeatTimeout, Rank: r, Wave: -1, Channel: -1,
			Node: job.nodeMap[r], Server: -1, Span: job.detectSpan[r]},
			"rank %d silent %v; false suspicion, restarting it anyway", r, silence)
	}
	job.detectedRank(r)
}

// suspectServer handles the detector declaring a checkpoint server
// dead.  Detection is observational for servers: stores and fetches
// already discovered the death through their aborted transfers.
func (job *Job) suspectServer(s int, silence sim.Time) {
	srv := job.servers[s]
	now := job.k.Now()
	if !srv.Alive() {
		job.met.Observe(obs.MDetectLatency, now-job.srvDiedAt[s])
		job.emit(obs.Event{Type: obs.EvHeartbeatTimeout, Rank: -1, Wave: -1, Channel: -1,
			Node: srv.Node, Server: s, Span: job.hub.NextSpan(), Cause: job.srvKillSpan[s]},
			"server %d silent %v; declared dead (detection latency %v)", s, silence, now-job.srvDiedAt[s])
	} else {
		job.met.Inc(obs.MFalseSuspicions)
		job.emit(obs.Event{Type: obs.EvHeartbeatTimeout, Rank: -1, Wave: -1, Channel: -1,
			Node: srv.Node, Server: s, Span: job.hub.NextSpan()},
			"server %d silent %v; false suspicion", s, silence)
	}
}

// snapshotCounters is the fixed set of cumulative counters sampled by
// the periodic metrics snapshot (Config.SnapshotPeriod).  The list and
// its order are frozen so snapshot streams are byte-deterministic.
var snapshotCounters = []string{
	obs.MMarkersSent,
	obs.MDelayedSends,
	obs.MLoggedMsgs,
	obs.MLoggedBytes,
	obs.MLocalCkpts,
	obs.MImageBytes,
	obs.MWavesCommitted,
	obs.MFailures,
	obs.MReplayedMsgs,
}

// scheduleSnapshot arms the recurring metrics-snapshot timer: every
// SnapshotPeriod it emits one EvCounterSample per tracked counter, which
// trace exporters render as Perfetto counter tracks.
func (job *Job) scheduleSnapshot() {
	job.k.After(job.cfg.SnapshotPeriod, func() {
		if job.doneRes {
			return
		}
		for _, name := range snapshotCounters {
			job.emit(obs.Event{Type: obs.EvCounterSample, Rank: -1, Wave: -1, Channel: -1,
				Node: -1, Server: -1, Bytes: job.met.Counter(name), Detail: name}, "")
		}
		job.scheduleSnapshot()
	})
}

// launch starts every process, fresh (wave 0) or restored from wave.
func (job *Job) launch(wave int) {
	job.finished = 0
	job.finishedRank = make([]bool, job.cfg.NP)
	restarting := job.gen > 0
	if restarting && job.store != nil {
		// The restored address spaces diverge from the pre-failure run,
		// so every rank's next image must be full again.
		job.store.ResetChains()
	}
	if wave == 0 {
		var rs uint64
		if restarting {
			rs = job.hub.NextSpan()
			job.emit(obs.Event{Type: obs.EvRestartBegin, Rank: -1, Wave: 0, Channel: -1, Node: -1, Server: -1,
				Span: rs, Cause: job.lastKillSpan}, "")
		}
		for r := 0; r < job.cfg.NP; r++ {
			job.spawn(r, nil, nil)
		}
		job.startSchedulers()
		if restarting {
			job.emit(obs.Event{Type: obs.EvRestartEnd, Rank: -1, Wave: 0, Channel: -1, Node: -1, Server: -1, Span: rs}, "")
		}
		return
	}
	// Restart: fetch every image (in parallel, contending for server
	// NICs), then start all processes together so every engine is bound
	// before the first re-execution message flies.
	rs := job.hub.NextSpan()
	job.emit(obs.Event{Type: obs.EvRestartBegin, Rank: -1, Wave: wave, Channel: -1, Node: -1, Server: -1,
		Span: rs, Cause: job.lastKillSpan},
		"restart: fetching %d images for wave %d", job.cfg.NP, wave)
	type restored struct {
		img  *ckpt.Image
		logs []*mpi.Packet
	}
	pending := make([]restored, job.cfg.NP)
	remaining := job.cfg.NP
	gen := job.gen
	needLogs := job.cfg.Protocol == ProtoVcl
	var fetchOne func(r, attempt int)
	fetchOne = func(r, attempt int) {
		job.store.Fetch(r, wave, job.nodeOfRank(r), needLogs, func(img *ckpt.Image, logs []*mpi.Packet) {
			if job.gen != gen {
				return
			}
			pending[r] = restored{img, logs}
			remaining--
			if remaining == 0 {
				for q := 0; q < job.cfg.NP; q++ {
					job.spawn(q, pending[q].img, pending[q].logs)
				}
				job.startSchedulers()
				job.emit(obs.Event{Type: obs.EvRestartEnd, Rank: -1, Wave: wave, Channel: -1, Node: -1, Server: -1, Span: rs}, "")
			}
		}, func(err error) {
			if job.gen != gen || job.doneRes {
				return
			}
			if attempt < job.cfg.StoreRetries {
				// Copies may still be in flight towards surviving
				// replicas; back off and retry before giving up.
				job.k.After(job.cfg.RetryBackoff, func() {
					if job.gen == gen && !job.doneRes {
						fetchOne(r, attempt+1)
					}
				})
				return
			}
			job.degrade(&DegradedError{
				Reason: "committed checkpoint unrecoverable: every replica of the image is gone",
				Rank:   r, Wave: wave, Server: -1, Node: -1, Err: err,
			})
		})
	}
	for r := 0; r < job.cfg.NP; r++ {
		fetchOne(r, 0)
	}
}

func (job *Job) startSchedulers() {
	job.running = true
	if job.det != nil {
		job.det.resetRanks()
	}
	if job.scheduler != nil {
		job.scheduler.Start(job.lastWave)
	}
}

func (job *Job) spawn(rank int, img *ckpt.Image, logs []*mpi.Packet) {
	pr := &procRun{job: job, rank: rank, node: job.nodeOfRank(rank), gen: job.gen, img: img, replay: logs}
	job.procs[rank] = pr
	p := job.k.Go(fmt.Sprintf("g%d.rank%d", job.gen, rank), pr.body)
	if job.cfg.Shards > 1 {
		p.SetShard(placement.Block(pr.node, job.cfg.Topology.TotalNodes(), job.cfg.Shards))
	}
}

func (job *Job) newProtocol(pr *procRun) core.Protocol {
	switch job.cfg.Protocol {
	case ProtoPcl:
		return pcl.New(pr, job.cfg.Interval)
	case ProtoVcl:
		return vcl.New(pr)
	case ProtoMlog:
		return mlog.New(pr, job.cfg.Interval)
	default:
		return core.None{}
	}
}

// onFailure implements the paper's recovery: the dispatcher detects the
// broken connection immediately (tasks are killed, not machines), signals
// every process to exit, and relaunches the application from the last
// committed wave.
func (job *Job) onFailure(rank int) {
	if !job.running {
		return
	}
	job.detectedRank(rank)
}

// detectedRank is the dispatcher's reaction to a rank failure, however
// it learned of it (instant detection, heartbeat timeout, scripted node
// kill).  Node-loss semantics apply when the rank's machine was killed
// outright or the configuration says rank failures take the machine.
func (job *Job) detectedRank(rank int) {
	if !job.running {
		return
	}
	node := job.nodeMap[rank]
	nodeDown := job.nodeKilled[node] && !job.deadNodes[node]
	if job.cfg.Protocol == ProtoMlog {
		if nodeDown || job.cfg.NodeLoss {
			victims, ok := job.loseNode(node)
			if !ok {
				return
			}
			for _, v := range victims {
				job.onFailureLocal(v)
			}
		} else {
			job.onFailureLocal(rank)
		}
		return
	}
	if job.tryRepair(rank, node, nodeDown) {
		return
	}
	if nodeDown || job.cfg.NodeLoss {
		if _, ok := job.loseNode(node); !ok {
			return
		}
	}
	job.lastKillSpan = job.hub.NextSpan()
	ds := job.detectSpan[rank]
	job.detectSpan[rank] = 0
	job.emit(obs.Event{Type: obs.EvRankKilled, Rank: rank, Wave: job.lastWave, Channel: -1, Node: node, Server: -1,
		Span: job.lastKillSpan, Cause: ds},
		"rank %d failed; killing job, restarting from wave %d", rank, job.lastWave)
	job.running = false
	job.restarts++
	job.gen++
	// Waves past the recovery line are aborted; their numbers will be
	// reused by the relaunched incarnation, so drop their partial stats.
	job.rec.Rollback(job.lastWave)
	for _, pr := range job.procs {
		if pr == nil {
			continue
		}
		job.harvest(pr)
		pr.teardown()
	}
	if job.scheduler != nil {
		job.scheduler.Stop()
	}
	wave := job.lastWave
	job.k.After(job.cfg.RestartDelay, func() {
		if job.doneRes {
			return
		}
		job.launch(wave)
	})
}

// onFailureLocal implements message logging's single-process recovery:
// only the failed rank is torn down and restarted from its own image and
// logs; everyone else keeps computing and is told to retransmit.
func (job *Job) onFailureLocal(rank int) {
	pr := job.procs[rank]
	if pr == nil || job.recovering[rank] {
		return
	}
	ks := job.hub.NextSpan()
	ds := job.detectSpan[rank]
	job.detectSpan[rank] = 0
	job.emit(obs.Event{Type: obs.EvRankKilled, Rank: rank, Wave: job.rankWave[rank], Channel: -1, Node: job.nodeMap[rank], Server: -1,
		Span: ks, Cause: ds},
		"rank %d failed; local recovery from its wave %d", rank, job.rankWave[rank])
	job.restarts++
	job.recovering[rank] = true
	job.harvest(pr)
	pr.teardown()
	wave := job.rankWave[rank]
	job.k.After(job.cfg.RestartDelay, func() {
		if job.doneRes {
			return
		}
		job.restartSpan[rank] = job.hub.NextSpan()
		job.emit(obs.Event{Type: obs.EvRestartBegin, Rank: rank, Wave: wave, Channel: -1, Node: -1, Server: -1,
			Span: job.restartSpan[rank], Cause: ks}, "")
		if wave == 0 {
			// No image yet: restart from scratch and replay the whole
			// reception history recorded since launch — the union across
			// live replicas, in case one of them died.
			job.respawnLocal(rank, nil, job.store.LogsSinceUnion(rank, 0))
			return
		}
		var tryFetch func(attempt int)
		tryFetch = func(attempt int) {
			job.store.FetchSince(rank, wave, job.nodeOfRank(rank), func(img *ckpt.Image, logs []*mpi.Packet) {
				if job.doneRes {
					return
				}
				job.respawnLocal(rank, img, logs)
			}, func(err error) {
				if job.doneRes {
					return
				}
				if attempt < job.cfg.StoreRetries {
					job.k.After(job.cfg.RetryBackoff, func() {
						if !job.doneRes {
							tryFetch(attempt + 1)
						}
					})
					return
				}
				job.degrade(&DegradedError{
					Reason: "committed checkpoint unrecoverable: every replica of the image is gone",
					Rank:   rank, Wave: wave, Server: -1, Node: -1, Err: err,
				})
			})
		}
		tryFetch(0)
	})
}

func (job *Job) respawnLocal(rank int, img *ckpt.Image, logs []*mpi.Packet) {
	job.recovering[rank] = false
	if job.store != nil {
		job.store.ResetChain(rank)
	}
	if job.det != nil {
		job.det.resetRank(rank)
	}
	job.spawn(rank, img, logs)
	job.emit(obs.Event{Type: obs.EvRestartEnd, Rank: rank, Wave: job.rankWave[rank], Channel: -1, Node: -1, Server: -1,
		Span: job.restartSpan[rank]}, "")
	job.restartSpan[rank] = 0
	// Once the fresh engine is bound (the LP runs before queued events),
	// live peers retransmit their unacknowledged messages.
	job.k.After(0, func() {
		for r, other := range job.procs {
			if r == rank || other == nil || other.proto == nil {
				continue
			}
			if pa, ok := other.proto.(core.PeerAware); ok {
				pa.PeerRestarted(rank)
			}
		}
	})
}

// harvest accumulates a process incarnation's statistics.
func (job *Job) harvest(pr *procRun) {
	if pr.harvested || pr.proto == nil {
		return
	}
	pr.harvested = true
	job.localCkpts += pr.proto.Waves()
	if v, ok := pr.proto.(*vcl.Vcl); ok {
		job.loggedMsgs += v.LoggedMsgs
		job.loggedByte += v.LoggedBytes
	}
	if ml, ok := pr.proto.(*mlog.Mlog); ok {
		job.loggedMsgs += ml.LoggedMsgs
	}
}

// commitRank advances one rank's private recovery line (uncoordinated
// checkpointing).
func (job *Job) commitRank(r, w int) {
	if w > job.rankWave[r] {
		job.rankWave[r] = w
	}
	job.commits++
	job.rec.Commit(w, job.k.Now())
	job.emit(obs.Event{Type: obs.EvWaveCommit, Rank: r, Wave: w, Channel: -1, Node: -1, Server: -1,
		Span: job.hub.NextSpan()}, "")
	job.store.GCRank(r, w)
}

func (job *Job) commitWave(w int) {
	job.lastWave = w
	job.commits++
	job.rec.Commit(w, job.k.Now())
	job.emit(obs.Event{Type: obs.EvWaveCommit, Rank: -1, Wave: w, Channel: -1, Node: -1, Server: -1,
		Span: job.hub.NextSpan()},
		"wave %d committed", w)
	if ws, ok := job.rec.Stat(w); ok {
		job.met.Observe(obs.MWaveSpread, ws.SnapshotSpread())
		job.met.Observe(obs.MWaveTransfer, ws.TransferTime())
		job.met.Observe(obs.MWaveCycle, ws.CycleTime())
	}
	job.store.GC(w)
}

func (job *Job) procFinished(pr *procRun) {
	if job.procs[pr.rank] != pr || job.finishedRank[pr.rank] {
		return
	}
	job.finishedRank[pr.rank] = true
	job.finished++
	job.emit(obs.Event{Type: obs.EvRankDone, Rank: pr.rank, Wave: job.lastWave, Channel: -1, Node: -1, Server: -1}, "")
	if job.repairing {
		// A rank finished while the world was parked for a repair: the
		// barrier can never fill, so the repair falls back to a restart.
		// Deferred one event so the finishing LP is not killed mid-body.
		job.k.After(0, func() { job.abortRepair("a rank finished during the repair window") })
		return
	}
	if job.finished < job.cfg.NP {
		return
	}
	// Job complete.
	job.running = false
	for _, p := range job.procs {
		job.harvest(p)
		if p.proto != nil {
			p.proto.Stop()
		}
	}
	if job.scheduler != nil {
		job.scheduler.Stop()
	}
	var ckptBytes int64
	for _, s := range job.servers {
		ckptBytes += s.BytesReceived
	}
	job.res = Result{
		Completion:     job.k.Now(),
		WaveBreakdown:  job.rec.Summarize(),
		WavesCommitted: job.commits,
		LastWave:       job.lastWave,
		LocalCkpts:     job.localCkpts,
		Restarts:       job.restarts,
		Messages:       job.fab.MsgCount,
		PayloadBytes:   job.fab.PayloadBytes,
		CkptBytes:      ckptBytes,
		LoggedMsgs:     job.loggedMsgs,
		LoggedBytes:    job.loggedByte,
		ServerFailures: job.serverFails,
		Repairs:        job.repairs,
		LostWork:       job.lostWork,
		Metrics:        job.met,
	}
	if job.store != nil {
		job.res.Failovers = job.store.Failovers()
	}
	if job.spans != nil {
		job.res.Attribution = job.spans.Finalize(job.k.Now())
	}
	job.doneRes = true
	job.met.Set("job.completion_s", job.k.Now().Seconds())
	job.emit(obs.Event{Type: obs.EvJobComplete, Rank: -1, Wave: job.lastWave, Channel: -1, Node: -1, Server: -1},
		"job complete: %v", job.res)
	job.k.Stop(nil)
}

// canceler is anything teardown can abort: a network flow, a replicated
// store, a replicated fetch.
type canceler interface{ Cancel() }

// procRun is one process incarnation; it implements core.Host.
type procRun struct {
	job    *Job
	rank   int
	node   int
	gen    int
	lp     *sim.Proc
	eng    *mpi.Engine
	prog   mpi.Program
	proto  core.Protocol
	img    *ckpt.Image
	replay []*mpi.Packet
	ftBlob []byte // partner-held app snapshot seeding a repaired rank
	done   bool
	down   bool // torn down (idempotence guard; heartbeat ground truth)
	flows  []canceler
	timers []sim.EventID

	harvested bool
}

// ftTunable is implemented by programs with an application-level
// snapshot cadence (in-memory partner checkpointing).  The cadence is
// soft state outside the protocol images, so it is re-set on every
// incarnation, fresh or restored.
type ftTunable interface{ SetFTEvery(int) }

func (pr *procRun) body(p *sim.Proc) {
	pr.lp = p
	pr.eng = mpi.NewEngine(pr.rank, pr.job.cfg.NP, p, pr.job.cfg.Profile, pr.job.fab)
	pr.eng.SetMetrics(pr.job.met)
	pr.eng.SetObs(pr.job.hub)
	if pr.job.ulfm() {
		pr.eng.EnableFT()
	}
	pr.proto = pr.job.newProtocol(pr)
	pr.eng.SetFilter(pr.proto)
	var dev []byte
	restore := pr.img != nil || pr.replay != nil
	if pr.img != nil {
		prog, err := ckpt.DecodeProgram(pr.img.App)
		if err != nil {
			panic(fmt.Sprintf("ftpm: rank %d: %v", pr.rank, err))
		}
		pr.prog = prog
		pr.eng.RestoreImage(pr.img.Engine)
		pr.done = pr.img.Done
		dev = pr.img.Device
	} else {
		pr.prog = pr.job.cfg.NewProgram(pr.rank, pr.job.cfg.NP)
	}
	if pr.job.cfg.FTEvery > 0 {
		if ft, ok := pr.prog.(ftTunable); ok {
			ft.SetFTEvery(pr.job.cfg.FTEvery)
		}
	}
	if restore {
		pr.proto.Restore(dev, pr.replay, pr.job.lastWave)
	}
	if pr.ftBlob != nil {
		// Replacement for a repaired rank: install the partner-held
		// application snapshot; the protocol resumes past the still-
		// committed wave like any survivor.
		fp, ok := pr.prog.(mpi.FTProgram)
		if !ok || !fp.FTInstall(pr.ftBlob) {
			panic(fmt.Sprintf("ftpm: rank %d cannot install the partner-held snapshot", pr.rank))
		}
		pr.proto.Restore(nil, nil, pr.job.lastWave)
		pr.eng.EmitFT(obs.Event{Type: obs.EvAppRestore, Rank: pr.rank, Wave: pr.job.repairLevel,
			Channel: -1, Node: -1, Server: -1,
			Detail: "installed the partner-held snapshot into the repaired rank"})
		pr.ftBlob = nil
	}
	pr.img, pr.replay = nil, nil
	p.Yield() // every engine binds before any body communicates
	pr.proto.Start()
	for !pr.done {
		if pr.eng.Revoked() {
			pr.ftRepairWait()
			continue
		}
		pr.stepOnce()
	}
	pr.eng.Finalize()
	pr.job.procFinished(pr)
}

// stepOnce advances the program one phase, converting an FT unwind
// (revocation or peer failure mid-operation) back into control flow: the
// in-flight collective state returns to its pool and the step loop
// re-enters through the repair wait.  Non-FT panics (including the
// kernel's kill unwind) propagate.
func (pr *procRun) stepOnce() {
	defer func() {
		if r := recover(); r != nil {
			if mpi.AsFTError(r) == nil {
				panic(r)
			}
			pr.eng.AbortColl()
		}
	}()
	pr.done = pr.prog.Step(pr.eng)
}

// teardown kills an incarnation after a failure.  Idempotent: silent
// (heartbeat-mode) kills tear the process down at death time and the
// recovery path tears everything down again at detection time.
func (pr *procRun) teardown() {
	if pr.down {
		return
	}
	pr.down = true
	if pr.proto != nil {
		pr.proto.Stop()
	}
	if pr.eng != nil {
		pr.eng.Close()
	}
	pr.job.fab.Unbind(pr.rank)
	for _, f := range pr.flows {
		f.Cancel()
	}
	pr.flows = nil
	for _, id := range pr.timers {
		pr.job.k.Cancel(id)
	}
	pr.timers = nil
	if pr.lp != nil {
		pr.job.k.Kill(pr.lp, fmt.Errorf("ftpm: rank %d torn down", pr.rank))
	}
}

// --- core.Host ----------------------------------------------------------

// Rank returns the process rank.
func (pr *procRun) Rank() int { return pr.rank }

// Size returns the job size.
func (pr *procRun) Size() int { return pr.job.cfg.NP }

// Engine returns the process engine.
func (pr *procRun) Engine() *mpi.Engine { return pr.eng }

// Obs returns the runtime's observability hub.
func (pr *procRun) Obs() *obs.Hub { return pr.job.hub }

// Wire sends a raw packet on the FIFO channel to dst.
func (pr *procRun) Wire(dst int, p *mpi.Packet) {
	p.Dst = dst
	pr.job.fab.Send(pr.rank, dst, p)
}

// TakeCheckpoint captures the local image and ships it in the background.
func (pr *procRun) TakeCheckpoint(wave int, dev []byte, onStored func()) {
	app, err := ckpt.EncodeProgram(pr.prog)
	if err != nil {
		panic(fmt.Sprintf("ftpm: rank %d: %v", pr.rank, err))
	}
	img := &ckpt.Image{
		Rank:      pr.rank,
		Wave:      wave,
		App:       app,
		Engine:    pr.eng.CaptureImage(),
		Device:    dev,
		Footprint: pr.prog.Footprint(),
		Done:      pr.done,
	}
	gen := pr.gen
	prof := pr.job.cfg.Profile
	// The hierarchy's image planner prices the image (incremental delta,
	// compression) before any bytes move.
	pr.job.store.PlanImage(img)
	pr.job.rec.LocalCkpt(wave, pr.job.k.Now())
	// The fork'd clone and the pipelined transfer steal CPU and memory
	// bandwidth from the application until the image is stored.
	if prof.CkptSteal > 0 {
		pr.eng.AddSteal(prof.CkptSteal)
	}
	released := false
	release := func() {
		if !released && prof.CkptSteal > 0 {
			pr.eng.SubSteal(prof.CkptSteal)
		}
		released = true
	}
	op := pr.job.store.Store(img, pr.node, prof.ShipBW, func() {
		// Write quorum reached: the checkpoint is durable.
		release()
		pr.job.rec.Stored(wave, pr.job.k.Now())
		if pr.job.gen == gen && onStored != nil {
			onStored()
		}
	}, func() {
		// Quorum unreachable (replicas died): the wave will never
		// commit; stop stealing bandwidth for it.
		release()
	})
	pr.flows = append(pr.flows, op)
}

// ShipLogs replicates logged channel-state packets across the rank's
// replica set, acknowledging at the write quorum.
func (pr *procRun) ShipLogs(wave int, pkts []*mpi.Packet, onStored func()) {
	gen := pr.gen
	op := pr.job.store.StoreLogs(pr.rank, wave, pkts, pr.node, func() {
		if pr.job.gen == gen && onStored != nil {
			onStored()
		}
	}, nil)
	pr.flows = append(pr.flows, op)
}

// CommitWave advances the recovery line: the global one for coordinated
// protocols (coordinator only), this rank's private one for uncoordinated
// protocols.
func (pr *procRun) CommitWave(w int) {
	if pr.job.cfg.Protocol == ProtoMlog {
		pr.job.commitRank(pr.rank, w)
		return
	}
	pr.job.commitWave(w)
}

// Now returns the virtual time.
func (pr *procRun) Now() sim.Time { return pr.job.k.Now() }

// After schedules a protocol timer.
func (pr *procRun) After(d sim.Time, fn func()) sim.EventID {
	id := pr.job.k.After(d, fn)
	pr.timers = append(pr.timers, id)
	return id
}

// CancelTimer cancels a protocol timer.
func (pr *procRun) CancelTimer(id sim.EventID) { pr.job.k.Cancel(id) }

var _ core.Host = (*procRun)(nil)
