package ftpm

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/obs"
)

// collectRun executes cfg with a Collector attached and returns both.
func collectRun(t *testing.T, cfg Config) (Result, *obs.Collector) {
	t.Helper()
	col := obs.NewCollector()
	cfg.Sink = col
	res, _ := runOK(t, cfg)
	return res, col
}

// monotonic fails if the events' virtual timestamps ever step backwards
// (the hub serializes the simulation's single-threaded emission order).
func monotonic(t *testing.T, col *obs.Collector) {
	t.Helper()
	last := time.Duration(-1)
	for i, ev := range col.Events() {
		if ev.T < last {
			t.Fatalf("event %d (%v) at %v after %v", i, ev.Type, ev.T, last)
		}
		last = ev.T
	}
}

func TestObsPclWaveEvents(t *testing.T) {
	cfg := baseCfg(4)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 20 * time.Millisecond
	res, col := collectRun(t, cfg)
	monotonic(t, col)
	if res.WavesCommitted == 0 {
		t.Fatal("no waves committed")
	}

	// Every rank sends a marker to every other rank each wave.
	waves := col.Count(obs.EvWaveCommit)
	np := cfg.NP
	if sent := col.Count(obs.EvMarkerSent); sent < waves*np*(np-1) {
		t.Fatalf("%d marker-sent for %d waves of %d ranks", sent, waves, np)
	}
	if recv := col.Count(obs.EvMarkerRecv); recv > col.Count(obs.EvMarkerSent) {
		t.Fatalf("more markers received (%d) than sent (%d)", recv, col.Count(obs.EvMarkerSent))
	}

	// Pcl blocks sends for the whole wave: every block must be released,
	// strictly later, on the same rank, and bracket that rank's snapshot.
	blocks, unblocks := col.Filter(obs.EvChannelBlocked), col.Filter(obs.EvChannelUnblocked)
	if len(blocks) == 0 || len(blocks) != len(unblocks) {
		t.Fatalf("%d blocks vs %d unblocks", len(blocks), len(unblocks))
	}
	// Pair them in stream order per rank.
	pending := map[int][]obs.Event{}
	for _, ev := range col.Events() {
		switch ev.Type {
		case obs.EvChannelBlocked:
			pending[ev.Rank] = append(pending[ev.Rank], ev)
		case obs.EvChannelUnblocked:
			q := pending[ev.Rank]
			if len(q) == 0 {
				t.Fatalf("rank %d unblocked while not blocked", ev.Rank)
			}
			b := q[len(q)-1]
			pending[ev.Rank] = q[:len(q)-1]
			if ev.T < b.T {
				t.Fatalf("rank %d unblocked at %v before block at %v", ev.Rank, ev.T, b.T)
			}
			if ev.Wave != b.Wave {
				t.Fatalf("rank %d block wave %d released as wave %d", ev.Rank, b.Wave, ev.Wave)
			}
		}
	}
	for r, q := range pending {
		if len(q) != 0 {
			t.Fatalf("rank %d finished blocked (%d spans open)", r, len(q))
		}
	}

	// Snapshots happen inside the blocked window; one LocalCkptEnd per
	// block, and the image stores the server acknowledged match Result.
	if col.Count(obs.EvLocalCkptEnd) != len(blocks) {
		t.Fatalf("%d snapshots for %d blocked windows", col.Count(obs.EvLocalCkptEnd), len(blocks))
	}
	if got := col.Count(obs.EvImageStoreEnd); got != res.LocalCkpts {
		t.Fatalf("%d stored images, Result.LocalCkpts %d", got, res.LocalCkpts)
	}
	// Pcl logs nothing.
	if n := col.Count(obs.EvMessageLogged); n != 0 {
		t.Fatalf("pcl logged %d messages", n)
	}
}

func TestObsVclLoggedMessages(t *testing.T) {
	cfg := baseCfg(4)
	cfg.Protocol = ProtoVcl
	cfg.Interval = 15 * time.Millisecond
	res, col := collectRun(t, cfg)
	monotonic(t, col)
	if res.WavesCommitted == 0 {
		t.Fatal("no waves committed")
	}
	// The event stream's logged-message count and bytes must agree with
	// the protocol's own accounting in Result.
	logged := col.Filter(obs.EvMessageLogged)
	if len(logged) != res.LoggedMsgs {
		t.Fatalf("%d message-logged events, Result.LoggedMsgs %d", len(logged), res.LoggedMsgs)
	}
	var bytes int64
	for _, ev := range logged {
		if ev.Channel < 0 || ev.Channel == ev.Rank {
			t.Fatalf("logged event with bad channel: %+v", ev)
		}
		bytes += ev.Bytes
	}
	if bytes != res.LoggedBytes {
		t.Fatalf("logged %d bytes in events, Result.LoggedBytes %d", bytes, res.LoggedBytes)
	}
	// The scheduler (rank -2) initiates every wave's markers.
	schedSent := 0
	for _, ev := range col.Filter(obs.EvMarkerSent) {
		if ev.Rank == -2 {
			schedSent++
		}
	}
	if schedSent == 0 {
		t.Fatal("no scheduler-initiated markers")
	}
	// Non-blocking: no channel freeze events.
	if col.Count(obs.EvChannelBlocked) != 0 || col.Count(obs.EvSendDelayed) != 0 {
		t.Fatal("vcl emitted blocking events")
	}
}

func TestObsRestartEvents(t *testing.T) {
	cfg := baseCfg(4)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 15 * time.Millisecond
	cfg.RestartDelay = 2 * time.Millisecond
	failAt := 40 * time.Millisecond
	cfg.Failures = failure.Plan{{At: failAt, Rank: 2}}
	res, col := collectRun(t, cfg)
	monotonic(t, col)
	if res.Restarts != 1 {
		t.Fatalf("restarts %d", res.Restarts)
	}

	kills := col.Filter(obs.EvRankKilled)
	if len(kills) != 1 {
		t.Fatalf("%d rank-killed events", len(kills))
	}
	if kills[0].Rank != 2 || kills[0].T != failAt {
		t.Fatalf("kill event %+v, want rank 2 at %v", kills[0], failAt)
	}
	begins, ends := col.Filter(obs.EvRestartBegin), col.Filter(obs.EvRestartEnd)
	if len(begins) != 1 || len(ends) != 1 {
		t.Fatalf("%d restart-begin, %d restart-end", len(begins), len(ends))
	}
	if begins[0].T < failAt+cfg.RestartDelay {
		t.Fatalf("restart began at %v, before the %v respawn delay elapsed", begins[0].T, cfg.RestartDelay)
	}
	if ends[0].T < begins[0].T {
		t.Fatalf("restart ended at %v before it began at %v", ends[0].T, begins[0].T)
	}
	if begins[0].Wave != kills[0].Wave {
		t.Fatalf("restart wave %d != recovery line %d", begins[0].Wave, kills[0].Wave)
	}
	// Aggregates follow the events.
	if res.Metrics.Counter(obs.MFailures) != 1 {
		t.Fatal("failures counter wrong")
	}
	if h := res.Metrics.Hist(obs.MRestartTime); h == nil || h.Count != 1 {
		t.Fatalf("restart histogram %+v", h)
	}
}

func TestObsMlogLocalRecovery(t *testing.T) {
	cfg := baseCfg(4)
	cfg.Protocol = ProtoMlog
	cfg.Interval = 15 * time.Millisecond
	cfg.RestartDelay = time.Millisecond
	cfg.Failures = failure.Plan{{At: 30 * time.Millisecond, Rank: 1}}
	res, col := collectRun(t, cfg)
	monotonic(t, col)
	if res.Restarts != 1 {
		t.Fatalf("restarts %d", res.Restarts)
	}
	// Pessimistic receiver-based logging: every delivered payload logs.
	// Result.LoggedMsgs additionally counts messages the recovery replayed
	// from the server (already logged once), so it bounds the event count
	// from above.
	if n := col.Count(obs.EvMessageLogged); n == 0 || n > res.LoggedMsgs {
		t.Fatalf("%d message-logged events, Result.LoggedMsgs %d", n, res.LoggedMsgs)
	}
	// Single-process recovery: the restart span is on the failed rank, not
	// the runtime track.
	begins := col.Filter(obs.EvRestartBegin)
	if len(begins) != 1 || begins[0].Rank != 1 {
		t.Fatalf("restart-begin %+v, want rank 1", begins)
	}
	// Uncoordinated commits carry the committing rank.
	sawRankCommit := false
	for _, ev := range col.Filter(obs.EvWaveCommit) {
		if ev.Rank >= 0 {
			sawRankCommit = true
		}
	}
	if !sawRankCommit {
		t.Fatal("no per-rank commits")
	}
	// No coordination traffic at all.
	if col.Count(obs.EvMarkerSent) != 0 {
		t.Fatal("mlog sent markers")
	}
}

// TestObsTextSinkCompat checks the -v stream still carries the legacy
// lines, rendered from event Detail, with the legacy "[<time>] " prefix.
func TestObsTextSinkCompat(t *testing.T) {
	var lines []string
	cfg := baseCfg(4)
	cfg.Protocol = ProtoPcl
	cfg.Interval = 20 * time.Millisecond
	cfg.Failures = failure.Plan{{At: 50 * time.Millisecond, Rank: 0}}
	cfg.Trace = func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	runOK(t, cfg)
	joined := strings.Join(lines, "\n")
	for _, frag := range []string{
		"rank 0 failed; killing job, restarting from wave",
		"restart: fetching 4 images for wave",
		"wave 1 committed",
		"job complete:",
	} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("legacy line %q missing from -v stream:\n%s", frag, joined)
		}
	}
	// Every line keeps the legacy "[<12-wide time>] " prefix.
	for _, l := range lines {
		if len(l) < 15 || l[0] != '[' || l[13] != ']' || l[14] != ' ' {
			t.Fatalf("line lost the legacy time prefix: %q", l)
		}
	}
}
