package ftpm

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/sim"
)

func mlogCfg(np int) Config {
	cfg := baseCfg(np)
	cfg.Protocol = ProtoMlog
	cfg.Interval = 25 * time.Millisecond
	return cfg
}

func TestMlogFailureFree(t *testing.T) {
	base, _ := runOK(t, baseCfg(6))
	res, progs := runOK(t, mlogCfg(6))
	// Pessimistic logging pays on every message: visibly slower than the
	// unprotected baseline even without failures.
	if res.Completion <= base.Completion {
		t.Fatalf("mlog (%v) not slower than baseline (%v)", res.Completion, base.Completion)
	}
	if res.LocalCkpts == 0 {
		t.Fatal("no independent checkpoints taken")
	}
	if res.LoggedMsgs == 0 {
		t.Fatal("no messages logged")
	}
	s := sums(progs)
	for _, v := range s[1:] {
		if v != s[0] {
			t.Fatalf("ranks disagree: %v", s)
		}
	}
}

func TestMlogSingleProcessRecovery(t *testing.T) {
	want := reference(t, 6)
	cfg := mlogCfg(6)
	cfg.RestartDelay = 2 * time.Millisecond
	cfg.Failures = failure.KillAt(80*time.Millisecond, 3)
	res, progs := runOK(t, cfg)
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	for r, s := range sums(progs) {
		if s != want {
			t.Fatalf("rank %d checksum %v after local recovery, want %v", r, s, want)
		}
	}
}

func TestMlogRecoveryBeforeFirstCheckpoint(t *testing.T) {
	want := reference(t, 5)
	cfg := mlogCfg(5)
	cfg.Interval = 10 * time.Second // no checkpoint before the failure
	cfg.Failures = failure.KillAt(40*time.Millisecond, 2)
	res, progs := runOK(t, cfg)
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	for _, s := range sums(progs) {
		if s != want {
			t.Fatalf("checksum %v, want %v", s, want)
		}
	}
}

func TestMlogMultipleFailuresDifferentRanks(t *testing.T) {
	want := reference(t, 6)
	cfg := mlogCfg(6)
	cfg.RestartDelay = time.Millisecond
	cfg.Failures = failure.Plan{
		{At: 50 * time.Millisecond, Rank: 1},
		{At: 120 * time.Millisecond, Rank: 4},
		{At: 200 * time.Millisecond, Rank: 1},
	}
	res, progs := runOK(t, cfg)
	if res.Restarts != 3 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	for _, s := range sums(progs) {
		if s != want {
			t.Fatalf("checksum %v, want %v", s, want)
		}
	}
}

// TestMlogNoGlobalRollback is the headline contrast with coordinated
// checkpointing: when one rank fails, the others do not roll back — their
// local checkpoint counters keep their pre-failure values and only one
// restart happens.
func TestMlogNoGlobalRollback(t *testing.T) {
	cfg := mlogCfg(6)
	cfg.RestartDelay = time.Millisecond
	cfg.Failures = failure.KillAt(100*time.Millisecond, 0)
	res, _ := runOK(t, cfg)
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want exactly the failed rank's", res.Restarts)
	}
}

// TestMlogProperty: random failure schedules against random seeds keep
// the checksum identical to the failure-free run.
func TestMlogProperty(t *testing.T) {
	want := reference(t, 5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := mlogCfg(5)
		cfg.Seed = seed
		cfg.Interval = sim.Time(10+rng.Intn(40)) * time.Millisecond
		cfg.RestartDelay = sim.Time(rng.Intn(4)) * time.Millisecond
		n := 1 + rng.Intn(2)
		for i := 0; i < n; i++ {
			cfg.Failures = append(cfg.Failures, failure.Event{
				At:   sim.Time(30+rng.Intn(250)) * time.Millisecond,
				Rank: rng.Intn(5),
			})
		}
		job, err := NewJob(cfg)
		if err != nil {
			return false
		}
		if _, err := job.Run(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for _, p := range job.Programs() {
			if p.(*ringProg).Sum != want {
				t.Logf("seed %d: checksum %v want %v", seed, p.(*ringProg).Sum, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestProtocolCostOrdering reproduces the qualitative comparison of the
// two families (§2 and the group's Cluster'04 study): in a failure-free
// cluster run, coordinated checkpointing costs less than pessimistic
// message logging, which pays a stable-storage round trip per message.
func TestProtocolCostOrdering(t *testing.T) {
	base, _ := runOK(t, baseCfg(6))

	pcl := baseCfg(6)
	pcl.Protocol = ProtoPcl
	pcl.Interval = 25 * time.Millisecond
	resPcl, _ := runOK(t, pcl)

	resMlog, _ := runOK(t, mlogCfg(6))

	if resPcl.Completion <= base.Completion {
		t.Fatalf("pcl (%v) not above baseline (%v)", resPcl.Completion, base.Completion)
	}
	if resMlog.Completion <= resPcl.Completion {
		t.Fatalf("mlog (%v) not above pcl (%v): pessimistic logging should dominate failure-free cost",
			resMlog.Completion, resPcl.Completion)
	}
}
