package failure

import (
	"testing"
	"time"
)

func TestPlanSorted(t *testing.T) {
	p := Plan{{At: 3 * time.Second, Rank: 1}, {At: time.Second, Rank: 2}, {At: 2 * time.Second, Rank: 0}}
	s := p.Sorted()
	if s[0].Rank != 2 || s[1].Rank != 0 || s[2].Rank != 1 {
		t.Fatalf("sorted %v", s)
	}
	// Original untouched.
	if p[0].Rank != 1 {
		t.Fatal("Sorted mutated the input")
	}
}

func TestKillAt(t *testing.T) {
	p := KillAt(5*time.Second, 3)
	if len(p) != 1 || p[0].At != 5*time.Second || p[0].Rank != 3 {
		t.Fatalf("plan %v", p)
	}
}

func TestExponentialStatistics(t *testing.T) {
	e := NewExponential(10*time.Second, 1)
	var sum time.Duration
	const n = 2000
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		d, r := e.Next(8)
		if d < 0 || r < 0 || r >= 8 {
			t.Fatalf("draw %v %d", d, r)
		}
		seen[r] = true
		sum += d
	}
	mean := sum / n
	if mean < 9*time.Second || mean > 11*time.Second {
		t.Fatalf("mean inter-arrival %v, want ≈10s", mean)
	}
	if len(seen) != 8 {
		t.Fatalf("victims %v", seen)
	}
}

func TestExponentialDeterministic(t *testing.T) {
	a, b := NewExponential(time.Second, 7), NewExponential(time.Second, 7)
	for i := 0; i < 10; i++ {
		d1, r1 := a.Next(4)
		d2, r2 := b.Next(4)
		if d1 != d2 || r1 != r2 {
			t.Fatal("same seed diverged")
		}
	}
}
