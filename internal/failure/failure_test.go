package failure

import (
	"testing"
	"time"
)

func TestPlanSorted(t *testing.T) {
	p := Plan{{At: 3 * time.Second, Rank: 1}, {At: time.Second, Rank: 2}, {At: 2 * time.Second, Rank: 0}}
	s := p.Sorted()
	if s[0].Rank != 2 || s[1].Rank != 0 || s[2].Rank != 1 {
		t.Fatalf("sorted %v", s)
	}
	// Original untouched.
	if p[0].Rank != 1 {
		t.Fatal("Sorted mutated the input")
	}
}

func TestPlanSortedStable(t *testing.T) {
	// Events injected at the same instant must fire in plan order —
	// mixed-kind schedules (chaos harness) depend on it.
	p := Plan{
		{At: time.Second, Kind: KindServer, Server: 0},
		{At: time.Second, Rank: 3},
		{At: time.Second, Kind: KindNode, Node: 2},
	}
	s := p.Sorted()
	if s[0].Kind != KindServer || s[1].Kind != KindRank || s[2].Kind != KindNode {
		t.Fatalf("same-instant events reordered: %v", s)
	}
}

func TestKillAt(t *testing.T) {
	p := KillAt(5*time.Second, 3)
	if len(p) != 1 || p[0].At != 5*time.Second || p[0].Rank != 3 {
		t.Fatalf("plan %v", p)
	}
	if p[0].Kind != KindRank || p[0].Victim() != 3 {
		t.Fatalf("kind %v victim %d", p[0].Kind, p[0].Victim())
	}
}

func TestKindRoundTrip(t *testing.T) {
	// Server and node kills keep their kind and victim through a sorted
	// schedule, and the zero value still means a rank kill.
	p := Plan{
		{At: 3 * time.Second, Kind: KindServer, Server: 1},
		{At: time.Second, Kind: KindNode, Node: 4},
		{At: 2 * time.Second, Rank: 2},
	}
	s := p.Sorted()
	want := []struct {
		kind   Kind
		victim int
		name   string
	}{{KindNode, 4, "node"}, {KindRank, 2, "rank"}, {KindServer, 1, "server"}}
	for i, w := range want {
		if s[i].Kind != w.kind || s[i].Victim() != w.victim {
			t.Fatalf("event %d: got kind=%v victim=%d, want %v %d", i, s[i].Kind, s[i].Victim(), w.kind, w.victim)
		}
		if s[i].Kind.String() != w.name {
			t.Fatalf("event %d: kind name %q", i, s[i].Kind.String())
		}
	}
	if got := KillServerAt(time.Second, 2)[0].String(); got != "kill server 2 @ 1s" {
		t.Fatalf("String: %q", got)
	}
	if got := KillNodeAt(time.Second, 5)[0].String(); got != "kill node 5 @ 1s" {
		t.Fatalf("String: %q", got)
	}
}

func TestExponentialStatistics(t *testing.T) {
	e := NewExponential(10*time.Second, 1)
	var sum time.Duration
	const n = 2000
	seen := map[int]bool{}
	for i := 0; i < n; i++ {
		d, r := e.Next(8)
		if d < 0 || r < 0 || r >= 8 {
			t.Fatalf("draw %v %d", d, r)
		}
		seen[r] = true
		sum += d
	}
	mean := sum / n
	if mean < 9*time.Second || mean > 11*time.Second {
		t.Fatalf("mean inter-arrival %v, want ≈10s", mean)
	}
	if len(seen) != 8 {
		t.Fatalf("victims %v", seen)
	}
}

func TestExponentialDeterministic(t *testing.T) {
	a, b := NewExponential(time.Second, 7), NewExponential(time.Second, 7)
	for i := 0; i < 10; i++ {
		d1, r1 := a.Next(4)
		d2, r2 := b.Next(4)
		if d1 != d2 || r1 != r2 {
			t.Fatal("same seed diverged")
		}
	}
}
