// Package failure describes fault-injection plans for fault-tolerance
// experiments.  The paper emulates failures by killing the MPI task, so
// detection is immediate (the TCP connection breaks as soon as the task
// dies); injectors here follow the same model.
package failure

import (
	"math/rand"
	"sort"

	"ftckpt/internal/sim"
)

// Event kills one rank at a virtual time.
type Event struct {
	At   sim.Time
	Rank int
}

// Plan is a scripted failure schedule.
type Plan []Event

// Sorted returns the plan ordered by time.
func (p Plan) Sorted() Plan {
	q := append(Plan(nil), p...)
	sort.Slice(q, func(i, j int) bool { return q[i].At < q[j].At })
	return q
}

// KillAt builds a single-failure plan.
func KillAt(at sim.Time, rank int) Plan { return Plan{{At: at, Rank: rank}} }

// Exponential draws failure inter-arrival times with the given MTTF,
// choosing victim ranks uniformly — the memoryless failure model used for
// MTTF-vs-checkpoint-interval tuning studies (paper §6).
type Exponential struct {
	MTTF sim.Time
	rng  *rand.Rand
}

// NewExponential seeds an exponential failure source.
func NewExponential(mttf sim.Time, seed int64) *Exponential {
	return &Exponential{MTTF: mttf, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay until the next failure and the victim among np
// ranks.
func (e *Exponential) Next(np int) (sim.Time, int) {
	d := sim.Time(e.rng.ExpFloat64() * float64(e.MTTF))
	return d, e.rng.Intn(np)
}
