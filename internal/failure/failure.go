// Package failure describes fault-injection plans for fault-tolerance
// experiments.  The paper emulates failures by killing the MPI task, so
// detection is immediate (the TCP connection breaks as soon as the task
// dies); injectors here follow the same model, extended with whole-node
// and checkpoint-server kills so that the storage side of the system is a
// failure domain too, not just the compute ranks.
package failure

import (
	"fmt"
	"math/rand"
	"sort"

	"ftckpt/internal/sim"
)

// Kind selects what a failure event kills.
type Kind uint8

const (
	// KindRank kills one MPI task (the paper's model).  Zero value, so
	// plans written before node/server kills existed keep their meaning.
	KindRank Kind = iota
	// KindNode kills a whole machine: every rank placed on it and any
	// checkpoint server it hosts.
	KindNode
	// KindServer kills one checkpoint server; the images and logs it
	// stored are lost with it.
	KindServer
	// KindBuffer kills the node-local checkpoint buffer on one machine
	// (the top storage-hierarchy level): images staged there and not yet
	// drained are lost, but the node's ranks keep running — the failure
	// mode of a dying RAM disk or SSD, not of the host.
	KindBuffer
	// KindPFS kills one parallel-file-system target (the bottom
	// storage-hierarchy level): every image with a stripe on it becomes
	// unreadable.
	KindPFS
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindRank:
		return "rank"
	case KindNode:
		return "node"
	case KindServer:
		return "server"
	case KindBuffer:
		return "buffer"
	case KindPFS:
		return "pfs"
	default:
		return "unknown"
	}
}

// Event kills one component at a virtual time.  Kind selects the victim
// space: Rank for KindRank, Node for KindNode (also the victim machine
// for KindBuffer), Server for KindServer (also the victim target for
// KindPFS).
type Event struct {
	At   sim.Time
	Rank int
	Kind Kind
	// Node is the victim machine for KindNode and KindBuffer events.
	Node int
	// Server is the victim checkpoint server for KindServer events and
	// the victim PFS target for KindPFS events.
	Server int
}

// Victim returns the victim index in the event's own space.
func (e Event) Victim() int {
	switch e.Kind {
	case KindNode, KindBuffer:
		return e.Node
	case KindServer, KindPFS:
		return e.Server
	default:
		return e.Rank
	}
}

// String renders "kill <kind> <victim> @ <t>".
func (e Event) String() string {
	return fmt.Sprintf("kill %s %d @ %v", e.Kind, e.Victim(), e.At)
}

// Plan is a scripted failure schedule.
type Plan []Event

// Sorted returns the plan ordered by time without mutating the receiver.
// The sort is stable: events injected at the same instant fire in plan
// order, which keeps mixed-kind schedules deterministic.
func (p Plan) Sorted() Plan {
	q := append(Plan(nil), p...)
	sort.SliceStable(q, func(i, j int) bool { return q[i].At < q[j].At })
	return q
}

// KillAt builds a single-rank-failure plan.
func KillAt(at sim.Time, rank int) Plan { return Plan{{At: at, Rank: rank}} }

// KillNodeAt builds a single-node-failure plan.
func KillNodeAt(at sim.Time, node int) Plan {
	return Plan{{At: at, Kind: KindNode, Node: node}}
}

// KillServerAt builds a single-checkpoint-server-failure plan.
func KillServerAt(at sim.Time, server int) Plan {
	return Plan{{At: at, Kind: KindServer, Server: server}}
}

// KillBufferAt builds a plan losing the node-local checkpoint buffer on
// one machine.
func KillBufferAt(at sim.Time, node int) Plan {
	return Plan{{At: at, Kind: KindBuffer, Node: node}}
}

// KillPFSAt builds a plan losing one parallel-file-system target.
func KillPFSAt(at sim.Time, target int) Plan {
	return Plan{{At: at, Kind: KindPFS, Server: target}}
}

// Exponential draws failure inter-arrival times with the given MTTF,
// choosing victims uniformly — the memoryless failure model used for
// MTTF-vs-checkpoint-interval tuning studies (paper §6).  One instance
// models one component class; give ranks, nodes and checkpoint servers
// their own instances (distinct seeds) for independent per-component
// failure processes.
type Exponential struct {
	MTTF sim.Time
	rng  *rand.Rand
}

// NewExponential seeds an exponential failure source.
func NewExponential(mttf sim.Time, seed int64) *Exponential {
	return &Exponential{MTTF: mttf, rng: rand.New(rand.NewSource(seed))}
}

// Next returns the delay until the next failure and the victim among n
// components.
func (e *Exponential) Next(n int) (sim.Time, int) {
	d := sim.Time(e.rng.ExpFloat64() * float64(e.MTTF))
	return d, e.rng.Intn(n)
}
