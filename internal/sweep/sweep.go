// Package sweep provides a worker-pool executor for embarrassingly
// parallel simulation sweeps.  The paper's evaluation (Figs. 5–10) is a
// grid of independent (protocol, interval, np) points, each a full
// deterministic simulation; sweep.Run fans those points over OS threads
// while preserving the sequential contract:
//
//   - results are returned in input order;
//   - the first point error cancels the remaining unstarted points and is
//     returned (preferring real failures over cancellation fallout);
//   - per-point trace lines are buffered and flushed through one ordered
//     sink in input order, so verbose output never interleaves.
//
// Points must not share mutable state: each point runs its own simulation
// kernel and, when metrics are wanted, its own obs.Metrics registry.  The
// caller folds per-point registries together afterwards with
// obs.Metrics.Merge, in input order, which reproduces a sequential run's
// registry exactly.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Tracef receives formatted progress lines.
type Tracef func(format string, args ...any)

// Opts tunes an executor run.
type Opts struct {
	// Jobs caps how many points run concurrently.  0 (or negative) means
	// runtime.NumCPU(); 1 reproduces a plain sequential loop.
	Jobs int
	// Trace is the ordered sink for per-point trace lines (nil discards
	// them).  Lines a point emits are buffered and replayed in input
	// order, so output is byte-identical to a sequential run.
	Trace Tracef
}

// Func is the per-point work function.  It receives the point's input
// index, the point itself, and a trace function whose lines are
// serialized in input order.  fn for different points runs concurrently,
// so it must not write shared state.
type Func[P, R any] func(ctx context.Context, i int, p P, trace Tracef) (R, error)

// Run executes fn for every point and returns the results in input
// order.  On error it returns the failing point's error (the
// lowest-indexed real failure when several points fail) and cancels the
// points that have not started; points already running finish normally.
func Run[P, R any](ctx context.Context, points []P, fn Func[P, R], o Opts) ([]R, error) {
	if fn == nil {
		return nil, errors.New("sweep: fn is nil")
	}
	jobs := o.Jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if jobs > len(points) {
		jobs = len(points)
	}
	results := make([]R, len(points))

	if jobs <= 1 {
		// Sequential fast path: lines pass straight through to the sink.
		trace := o.Trace
		if trace == nil {
			trace = func(string, ...any) {}
		}
		for i, p := range points {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			r, err := fn(ctx, i, p, trace)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, len(points))

	// The flusher releases buffered trace lines strictly in input order:
	// point i's lines print only once every point before it has completed
	// (or been skipped), exactly as a sequential run would emit them.
	var (
		mu     sync.Mutex
		next   int
		done   = make([]bool, len(points))
		buffed = make([][]string, len(points))
	)
	complete := func(i int, lines []string) {
		mu.Lock()
		defer mu.Unlock()
		buffed[i], done[i] = lines, true
		for next < len(points) && done[next] {
			if o.Trace != nil {
				for _, l := range buffed[next] {
					o.Trace("%s", l)
				}
			}
			buffed[next] = nil
			next++
		}
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					complete(i, nil)
					continue
				}
				var lines []string
				trace := func(format string, args ...any) {
					lines = append(lines, fmt.Sprintf(format, args...))
				}
				r, err := fn(ctx, i, points[i], trace)
				if err != nil {
					errs[i] = err
					cancel()
				}
				results[i] = r
				complete(i, lines)
			}
		}()
	}
	for i := range points {
		idx <- i
	}
	close(idx)
	wg.Wait()

	// Report the lowest-indexed real failure; cancellation errors on
	// skipped points are only fallout (or the caller's own ctx, when no
	// point failed at all).
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if first != nil {
		return nil, first
	}
	return results, nil
}
