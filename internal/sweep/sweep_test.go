package sweep_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ftckpt/internal/obs"
	"ftckpt/internal/sweep"
)

func TestRunPreservesInputOrder(t *testing.T) {
	points := make([]int, 64)
	for i := range points {
		points[i] = i
	}
	for _, jobs := range []int{1, 3, 8} {
		got, err := sweep.Run(context.Background(), points,
			func(_ context.Context, i int, p int, _ sweep.Tracef) (int, error) {
				// Skew completion so later points tend to finish first.
				time.Sleep(time.Duration(len(points)-i) * 10 * time.Microsecond)
				return p * p, nil
			}, sweep.Opts{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("jobs=%d: result[%d] = %d", jobs, i, r)
			}
		}
	}
}

func TestRunTraceLinesStayInInputOrder(t *testing.T) {
	points := make([]int, 32)
	for i := range points {
		points[i] = i
	}
	var lines []string
	_, err := sweep.Run(context.Background(), points,
		func(_ context.Context, i int, p int, trace sweep.Tracef) (int, error) {
			time.Sleep(time.Duration(len(points)-i) * 10 * time.Microsecond)
			trace("point %d begin", p)
			trace("point %d end", p)
			return p, nil
		}, sweep.Opts{Jobs: 8, Trace: func(format string, args ...any) {
			lines = append(lines, fmt.Sprintf(format, args...))
		}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2*len(points) {
		t.Fatalf("%d lines", len(lines))
	}
	for i := range points {
		if lines[2*i] != fmt.Sprintf("point %d begin", i) || lines[2*i+1] != fmt.Sprintf("point %d end", i) {
			t.Fatalf("lines out of order around point %d: %q %q", i, lines[2*i], lines[2*i+1])
		}
	}
}

func TestRunReportsRealErrorNotCancellation(t *testing.T) {
	boom := errors.New("boom")
	points := make([]int, 40)
	var ran atomic.Int32
	_, err := sweep.Run(context.Background(), points,
		func(_ context.Context, i int, _ int, _ sweep.Tracef) (int, error) {
			ran.Add(1)
			if i == 5 {
				return 0, fmt.Errorf("point five: %w", boom)
			}
			time.Sleep(100 * time.Microsecond)
			return 0, nil
		}, sweep.Opts{Jobs: 4})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if !strings.Contains(err.Error(), "point five") {
		t.Fatalf("error lost its point description: %v", err)
	}
	// The failure cancels the unstarted tail of the sweep.
	if n := ran.Load(); n == int32(len(points)) {
		t.Fatalf("cancellation did not skip any point (%d ran)", n)
	}
}

func TestRunHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		_, err := sweep.Run(ctx, []int{1, 2, 3}, func(_ context.Context, _ int, _ int, _ sweep.Tracef) (int, error) {
			t.Fatal("fn ran under a cancelled context")
			return 0, nil
		}, sweep.Opts{Jobs: jobs})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("jobs=%d: err = %v", jobs, err)
		}
	}
}

// TestRunMergedRegistryDeterminism hammers the concurrent-points /
// one-merged-registry pattern the harnesses use: every point writes a
// private obs.Metrics registry from its own worker goroutine, and the
// per-point registries are merged in input order afterwards.  Run under
// -race (CI does) this doubles as the data-race proof for the pattern;
// the assertions prove the merge is exact (counters, extrema, buckets —
// not recomputed from means) and independent of scheduling.
func TestRunMergedRegistryDeterminism(t *testing.T) {
	const n = 48
	points := make([]int, n)
	for i := range points {
		points[i] = i
	}
	merged := func(jobs int) *obs.Metrics {
		regs := make([]*obs.Metrics, n)
		_, err := sweep.Run(context.Background(), points,
			func(_ context.Context, i int, p int, _ sweep.Tracef) (struct{}, error) {
				m := obs.NewMetrics()
				for k := 0; k < 100; k++ {
					m.Inc("runs")
					m.Add("bytes", int64(p))
					m.Observe("span", time.Duration(p*k+1)*time.Microsecond)
				}
				m.Set("last", float64(p))
				regs[i] = m
				return struct{}{}, nil
			}, sweep.Opts{Jobs: jobs})
		if err != nil {
			t.Fatal(err)
		}
		agg := obs.NewMetrics()
		for _, r := range regs {
			agg.Merge(r)
		}
		return agg
	}
	agg := merged(8)
	if got := agg.Counter("runs"); got != n*100 {
		t.Fatalf("runs = %d", got)
	}
	if got := agg.Counter("bytes"); got != 100*n*(n-1)/2 {
		t.Fatalf("bytes = %d", got)
	}
	if got := agg.Gauge("last"); got != n-1 {
		t.Fatalf("last = %v (gauges must keep input-order last-write)", got)
	}
	h := agg.Hist("span")
	if h == nil || h.Count != n*100 {
		t.Fatalf("span hist: %+v", h)
	}
	if h.Min != time.Microsecond {
		t.Fatalf("span min = %v", h.Min)
	}
	if h.Max != time.Duration((n-1)*99+1)*time.Microsecond {
		t.Fatalf("span max = %v", h.Max)
	}
	var bucketed int64
	for _, b := range h.Buckets {
		bucketed += b
	}
	if bucketed != h.Count {
		t.Fatalf("buckets sum %d != count %d", bucketed, h.Count)
	}
	// Identical regardless of parallelism.
	var a, b strings.Builder
	if err := agg.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := merged(1).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("merged registry differs between jobs=8 and jobs=1")
	}
}
