package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelEvents is the canonical kernel event benchmark: it keeps a
// population of 1024 pending timers (a realistic heap depth for an NP=256
// job) and measures the cost of one schedule+dispatch cycle.  The fn is
// shared, so every allocation charged to an op comes from the kernel's own
// bookkeeping — the number BENCH_core.json tracks as allocs/op.
func BenchmarkKernelEvents(b *testing.B) {
	b.ReportAllocs()
	k := New(1)
	const population = 1024
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			k.After(Time(1+k.Rand().Intn(1000))*time.Microsecond, tick)
		}
	}
	for i := 0; i < population && remaining > 0; i++ {
		remaining--
		k.After(Time(1+k.Rand().Intn(1000))*time.Microsecond, tick)
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelCancel measures schedule+cancel (the Advance fast path
// exercises this on every timer that is outlived by its LP).
func BenchmarkKernelCancel(b *testing.B) {
	b.ReportAllocs()
	k := New(1)
	fn := func() {}
	n := b.N
	k.After(0, func() {})
	b.ResetTimer()
	for i := 0; i < n; i++ {
		id := k.At(Time(i)*time.Microsecond, fn)
		if !k.Cancel(id) {
			b.Fatal("cancel failed")
		}
	}
}

// BenchmarkAdvance measures the LP park/wake round trip: one logical
// process advancing virtual time b.N times — two goroutine handoffs plus a
// timer schedule/fire per op.  This is the dominant cost of every compute
// step in a simulated MPI run.
func BenchmarkAdvance(b *testing.B) {
	b.ReportAllocs()
	k := New(1)
	k.Go("bench", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Advance(time.Microsecond)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCondPingPong measures two LPs alternating through a pair of
// condition variables — the blocking-receive hot path of the MPI engine.
func BenchmarkCondPingPong(b *testing.B) {
	b.ReportAllocs()
	k := New(1)
	a, bb := NewCond(k), NewCond(k)
	turn := 0
	k.Go("ping", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for turn != 0 {
				a.Wait(p)
			}
			turn = 1
			bb.Signal()
		}
	})
	k.Go("pong", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			for turn != 1 {
				bb.Wait(p)
			}
			turn = 0
			a.Signal()
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
