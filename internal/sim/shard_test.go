package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// shardTrace runs one randomized mixed workload — LPs with random
// advances, timers (some cancelled), cond chains, spawn-from-LP, explicit
// cross-shard events — and returns the full execution trace.  shards <= 1
// runs the sequential kernel.
func shardTrace(seed int64, shards int, lookahead Time) []string {
	k := New(seed)
	if shards > 1 {
		k.SetShards(shards)
		k.SetLookahead(lookahead)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	var trace []string
	record := func(ev string) { trace = append(trace, fmt.Sprintf("%s@%v", ev, k.Now())) }

	c := NewCond(k)
	done := 0
	const nlp = 6
	for i := 0; i < nlp; i++ {
		i := i
		p := k.Go(fmt.Sprintf("lp%d", i), func(p *Proc) {
			for j := 0; j < 25; j++ {
				p.Advance(Time(rng.Intn(300)) * time.Microsecond)
				record(fmt.Sprintf("lp%d.%d", i, j))
				if j%3 == i%3 {
					tag := i*100 + j
					id := k.AfterArg(Time(rng.Intn(200))*time.Microsecond,
						func(a any) { record(fmt.Sprintf("t%v", a)) }, tag)
					if j%2 == 0 {
						k.Cancel(id)
					}
				}
				if j == 10 {
					k.Go(fmt.Sprintf("lp%d.kid", i), func(kid *Proc) {
						kid.Advance(time.Microsecond)
						record(fmt.Sprintf("kid%d", i))
					})
				}
				if j%11 == 0 {
					c.Broadcast()
				} else if j%5 == 0 {
					c.Signal()
				}
			}
			done++
			c.Broadcast()
		})
		p.SetShard(i % 4)
	}
	k.Go("waiter", func(p *Proc) {
		for done < nlp {
			c.Wait(p)
			record("waiter-woke")
		}
	})
	k.At(0, func() {
		for s := 0; s < 5; s++ {
			k.AtArgOn(s, 50*time.Microsecond,
				func(a any) { record(fmt.Sprintf("x%v", a)) }, s)
		}
	})
	if err := k.Run(); err != nil {
		panic(err)
	}
	return trace
}

// TestShardedMatchesSequential is the kernel-level determinism contract:
// any shard count with any lookahead produces the byte-identical trace of
// the sequential kernel, because sharding parallelizes staging only and
// dispatch follows the global (time, seq) order.
func TestShardedMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		want := shardTrace(seed, 0, 0)
		for _, shards := range []int{2, 4, 7} {
			for _, la := range []Time{0, time.Microsecond, 100 * time.Microsecond, time.Hour} {
				got := shardTrace(seed, shards, la)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed=%d shards=%d lookahead=%v diverged from sequential:\n got %d events\nwant %d events",
						seed, shards, la, len(got), len(want))
				}
			}
		}
	}
}

func TestShardedDeadlockDetected(t *testing.T) {
	k := New(1)
	k.SetShards(3)
	c := NewCond(k)
	k.Go("stuck", func(p *Proc) { c.Wait(p) })
	if err := k.Run(); !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestShardedStop(t *testing.T) {
	k := New(1)
	k.SetShards(2)
	k.SetLookahead(time.Millisecond)
	stopErr := errors.New("enough")
	k.Go("a", func(p *Proc) {
		for i := 0; ; i++ {
			p.Advance(time.Second)
			if i == 4 {
				k.Stop(stopErr)
			}
		}
	})
	if err := k.Run(); err != stopErr {
		t.Fatalf("err = %v, want %v", err, stopErr)
	}
	if k.Now() != 5*time.Second {
		t.Fatalf("stopped at %v, want 5s", k.Now())
	}
}

func TestShardedLPPanicPropagates(t *testing.T) {
	k := New(1)
	k.SetShards(2)
	k.Go("bad", func(p *Proc) {
		p.Advance(time.Millisecond)
		panic("kaboom")
	})
	if err := k.Run(); err == nil {
		t.Fatal("Run returned nil for panicking LP")
	}
}

func TestShardedKillParkedLP(t *testing.T) {
	k := New(1)
	k.SetShards(4)
	boom := errors.New("node crash")
	victim := k.Go("victim", func(p *Proc) {
		p.Advance(time.Hour)
		t.Error("victim survived Advance past kill")
	})
	victim.SetShard(3)
	k.After(time.Second, func() { k.Kill(victim, boom) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if victim.Killed() != boom {
		t.Fatalf("Killed() = %v, want %v", victim.Killed(), boom)
	}
}

// TestSetShardsAdoptsPreScheduledEvents covers events scheduled (and some
// cancelled) before SetShards: the sequential heap hands them to shard 0.
func TestSetShardsAdoptsPreScheduledEvents(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		id := k.At(Time(i)*time.Millisecond, func() { got = append(got, i) })
		if i%3 == 0 {
			k.Cancel(id)
		}
	}
	k.SetShards(2)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 4, 5, 7}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
}

func TestSetShardsValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	k := New(1)
	k.SetShards(2)
	mustPanic("SetShards twice", func() { k.SetShards(3) })

	k2 := New(1)
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	mustPanic("SetShards after Run", func() { k2.SetShards(2) })

	k3 := New(1)
	k3.SetShards(1) // no-op: stays sequential
	if k3.NumShards() != 1 {
		t.Fatalf("NumShards after SetShards(1) = %d, want 1", k3.NumShards())
	}
}

// pendingTotal counts event-queue entries across every structure, for
// bounding heap growth in the churn test.  Executor context only.
func (k *Kernel) pendingTotal() int {
	n := len(k.heap) + len(k.ov)
	for _, sh := range k.shards {
		n += len(sh.heap) + len(sh.inbox) + (len(sh.run) - sh.runHead)
	}
	return n
}

// testCancelChurn schedules/cancels heavy churn over a small slab with the
// corpses concentrated at the heap head: long-lived anchor events hold the
// tail while every round schedules a batch of earlier events and cancels
// them all.  It fails on a stale-EventID double-fire, a cancelled event
// firing, a lost event, or a heap that never compacts.
func testCancelChurn(t *testing.T, shards int) {
	k := New(7)
	k.SetShards(shards)
	k.SetLookahead(time.Millisecond)
	const (
		rounds = 200
		batch  = 64
	)
	fireCount := map[int]int{}
	cancelled := map[int]bool{}
	fire := func(a any) { fireCount[a.(int)]++ }
	next := 0
	maxPending := 0
	k.Go("churn", func(p *Proc) {
		for i := 0; i < batch; i++ {
			k.AfterArg(time.Hour+Time(i)*time.Second, fire, next) // anchors
			next++
		}
		ids := make([]EventID, 0, batch)
		tags := make([]int, 0, batch)
		for r := 0; r < rounds; r++ {
			ids, tags = ids[:0], tags[:0]
			for i := 0; i < batch; i++ {
				ids = append(ids, k.AfterArg(Time(i+1)*time.Millisecond, fire, next))
				tags = append(tags, next)
				next++
			}
			// Cancel most of the batch — all earlier than the anchors, so
			// the dead slots pile up at the heap head.
			for i := 0; i < batch*9/10; i++ {
				if k.Cancel(ids[i]) {
					cancelled[tags[i]] = true
				}
			}
			if n := k.pendingTotal(); n > maxPending {
				maxPending = n
			}
			p.Advance(100 * time.Millisecond)
		}
		p.Advance(2 * time.Hour) // anchors fire
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for tag := 0; tag < next; tag++ {
		switch n := fireCount[tag]; {
		case cancelled[tag] && n != 0:
			t.Fatalf("shards=%d: cancelled event %d fired %d times", shards, tag, n)
		case !cancelled[tag] && n != 1:
			t.Fatalf("shards=%d: event %d fired %d times, want 1", shards, tag, n)
		}
	}
	// Live population never exceeds ~2*batch (anchors + one round), so a
	// compacting heap stays O(batch); a never-compacting one would retain
	// rounds*batch*9/10 ≈ 11k corpses.
	if maxPending > 16*batch {
		t.Fatalf("shards=%d: pending events peaked at %d — compaction never ran", shards, maxPending)
	}
}

func TestCancelChurnSequential(t *testing.T) { testCancelChurn(t, 1) }
func TestCancelChurnSharded(t *testing.T)   { testCancelChurn(t, 4) }

// TestGenWraparoundRetiresSlot pins the ABA fix: when a slot's generation
// counter wraps to zero the slot must be retired, never recycled, so an
// EventID from 2^32 lives ago cannot cancel (or double-fire through) a
// future occupant.
func TestGenWraparoundRetiresSlot(t *testing.T) {
	k := New(1)
	fired := false
	id := k.After(0, func() { fired = true })
	idx, _ := id.split()
	k.slab[idx].gen = ^uint32(0) // as if recycled 2^32-1 times
	stale := makeEventID(idx, ^uint32(0))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Fatal("event did not fire")
	}
	if k.slab[idx].gen != 0 {
		t.Fatalf("gen = %d, want wrapped to 0", k.slab[idx].gen)
	}
	for _, f := range k.free {
		if f == idx {
			t.Fatal("wrapped slot returned to the free list")
		}
	}
	if k.Cancel(stale) {
		t.Fatal("stale EventID cancelled through a generation wrap")
	}
}
