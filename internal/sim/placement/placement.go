// Package placement maps simulation entities (ranks, nodes, servers) to
// kernel shards.  Policies here decide only which shard worker stages an
// entity's events — the kernel dispatches in the global (time, seq) order
// regardless — so placement tunes staging locality and balance, never
// output.  Keeping the arithmetic in one package lets ftpm, simnet and
// the benchmarks agree on the partition without copying formulas.
package placement

// Block partitions n entities into contiguous blocks across shards and
// returns the shard owning entity i.  Contiguity matters for ranks: the
// BT-style neighbour exchanges in the workload models touch adjacent
// ranks, so block placement keeps most traffic staging shard-locally.
// Out-of-range entities clamp into [0, n); shards <= 1 always maps to 0.
func Block(i, n, shards int) int {
	if shards <= 1 || n <= 0 {
		return 0
	}
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	if shards > n {
		shards = n
	}
	return i * shards / n
}

// BlockSpan reports the half-open entity range [lo, hi) owned by shard s
// under Block partitioning — the inverse view, used by diagnostics and
// tests to assert the partition is a cover without gaps or overlap.
func BlockSpan(s, n, shards int) (lo, hi int) {
	if shards <= 1 || n <= 0 {
		if s == 0 {
			return 0, n
		}
		return 0, 0
	}
	if shards > n {
		shards = n
	}
	if s < 0 || s >= shards {
		return 0, 0
	}
	// Block(i) = i*shards/n is nondecreasing, so shard s owns exactly
	// the i with i*shards/n == s, i.e. [ceil(s*n/shards), ceil((s+1)*n/shards)).
	lo = (s*n + shards - 1) / shards
	hi = ((s+1)*n + shards - 1) / shards
	return lo, hi
}
