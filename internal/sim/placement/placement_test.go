package placement

import "testing"

func TestBlockPartition(t *testing.T) {
	for _, n := range []int{1, 3, 7, 16, 100, 1024} {
		for _, shards := range []int{1, 2, 4, 5, 16, 64, 5000} {
			prev := 0
			for i := 0; i < n; i++ {
				s := Block(i, n, shards)
				if s < prev {
					t.Fatalf("n=%d shards=%d: Block(%d)=%d below Block(%d)=%d", n, shards, i, s, i-1, prev)
				}
				if s >= shards && shards > 1 {
					t.Fatalf("n=%d shards=%d: Block(%d)=%d out of range", n, shards, i, s)
				}
				prev = s
			}
			// Spans must tile [0, n) exactly and agree with Block.
			eff := shards
			if eff > n {
				eff = n
			}
			if eff < 1 {
				eff = 1
			}
			next := 0
			for s := 0; s < eff; s++ {
				lo, hi := BlockSpan(s, n, shards)
				if lo != next {
					t.Fatalf("n=%d shards=%d: span %d starts at %d, want %d", n, shards, s, lo, next)
				}
				for i := lo; i < hi; i++ {
					if Block(i, n, shards) != s {
						t.Fatalf("n=%d shards=%d: Block(%d)=%d outside its span %d", n, shards, i, Block(i, n, shards), s)
					}
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d shards=%d: spans cover [0,%d), want [0,%d)", n, shards, next, n)
			}
		}
	}
}

func TestBlockClamps(t *testing.T) {
	if Block(-5, 10, 4) != 0 {
		t.Fatal("negative entity should clamp to shard 0")
	}
	if got := Block(99, 10, 4); got != 3 {
		t.Fatalf("overflow entity mapped to %d, want last shard 3", got)
	}
	if Block(3, 10, 0) != 0 || Block(3, 0, 4) != 0 {
		t.Fatal("degenerate partitions must map to shard 0")
	}
}
