package sim

// Sharded conservative-parallel execution (SetShards > 1).
//
// The event queue is partitioned into shards, each owning a private
// 4-ary min-heap over the shared slot slab plus an inbox of slots routed
// to it since its last activation.  Execution alternates two phases:
//
//	staging   Every shard worker, on its own goroutine, merges its
//	          inbox, compacts away cancelled slots when they dominate,
//	          and pops every event inside the conservative time window
//	          [tmin, tmin+lookahead] into an ordered staging run.  The
//	          window bound is the classic Chandy–Misra guarantee: no
//	          event outside the window can schedule work inside it with
//	          less than the minimum link latency of lookahead, so the
//	          staged runs are jointly complete for the window.
//	dispatch  The executor (the Run goroutine) merges the staged runs —
//	          plus an overflow heap of events scheduled *during* the
//	          window with timestamps inside it — and fires callbacks one
//	          at a time in the global (time, seq) total order.
//
// Because seq is assigned in schedule order and callbacks fire in exactly
// the sequential kernel's order, a sharded run is byte-identical to a
// sequential run of the same seed by construction: shard placement and
// lookahead influence only which goroutine performs the heap work.  The
// phases hand off through the workers' request/done channels, whose
// happens-before edges make the slab sharing race-free: workers touch
// only slots resident in their own heap, and only while the executor is
// parked at the staging barrier.
//
// What parallelizes is therefore the queue maintenance — heap pushes and
// sifts, dead-slot draining, compaction — which the PR 4 profile showed
// dominating large-NP runs alongside the callbacks themselves.  Running
// the callbacks shard-locally too (true parallel LP execution) needs a
// deterministic replacement for the global seq tie-break and is recorded
// in ROADMAP as the follow-up step.

import (
	"fmt"
	"math"
)

// timeMax is a sentinel later than every schedulable timestamp.
const timeMax = Time(math.MaxInt64)

// shard is one partition of the event queue.  All fields are owned by the
// shard's worker during staging and by the executor otherwise; the
// request/done channel pair transfers ownership.  The mutable queue state
// is marked //ftlint:shardlocal: ftlint's shardconfine analyzer proves no
// code outside the shard's own methods or a //ftlint:crossshard function
// ever writes it — the confinement discipline the parallel-callback
// ROADMAP item needs (DESIGN §5.13).
type shard struct {
	k  *Kernel
	id int
	//ftlint:shardlocal
	heap []int32 // 4-ary min-heap of slot indices, keyed by (t, seq)
	//ftlint:shardlocal
	dead int // cancelled slots still in heap or inbox

	//ftlint:shardlocal
	inbox []int32 // slots routed here since the last staging
	//ftlint:shardlocal
	run []int32 // staged events for the open window, (t, seq)-ordered
	//ftlint:shardlocal
	runHead int
	//ftlint:shardlocal
	freed []int32 // dead slots drained during staging; executor recycles

	req  chan Time // window end; closed to retire the worker
	done chan struct{}
}

// noteDead counts a cancelled slot still owned by this shard (heap or
// inbox) so the staging worker knows when to compact.  Cancel calls it
// from outside the shard: safe, because callbacks — the only code that
// cancels during a run — execute on the single-threaded dispatch side of
// the window barrier, while every staging worker is parked.
//
//ftlint:crossshard
func (sh *shard) noteDead() { sh.dead++ }

func (sh *shard) less(a, b int32) bool {
	sa, sb := &sh.k.slab[a], &sh.k.slab[b]
	if sa.t != sb.t {
		return sa.t < sb.t
	}
	return sa.seq < sb.seq
}

func (sh *shard) push(idx int32) {
	sh.heap = append(sh.heap, idx)
	h := sh.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !sh.less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (sh *shard) pop() int32 {
	h := sh.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	sh.heap = h[:last]
	sh.siftDown(0)
	return top
}

func (sh *shard) siftDown(i int) {
	h := sh.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if sh.less(h[j], h[m]) {
				m = j
			}
		}
		if !sh.less(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// compact mirrors Kernel.compactHeap for one shard: drop cancelled slots
// and re-heapify, collecting the corpses for the executor to recycle.
func (sh *shard) compact() {
	h := sh.heap[:0]
	for _, idx := range sh.heap {
		if sh.k.slab[idx].live {
			h = append(h, idx)
		} else {
			sh.freed = append(sh.freed, idx)
		}
	}
	sh.heap = h
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		sh.siftDown(i)
	}
	sh.dead = 0
}

// stage prepares the shard's contribution to the window ending at wend:
// merge the inbox, compact if cancellations dominate, then pop every
// event with t <= wend into the staging run in (t, seq) order.
func (sh *shard) stage(wend Time) {
	slab := sh.k.slab
	for _, idx := range sh.inbox {
		if !slab[idx].live {
			sh.freed = append(sh.freed, idx)
			sh.dead--
			continue
		}
		sh.push(idx)
	}
	sh.inbox = sh.inbox[:0]
	if sh.dead > 64 && sh.dead > len(sh.heap)/2 {
		sh.compact()
	}
	sh.run = sh.run[:0]
	sh.runHead = 0
	for len(sh.heap) > 0 {
		top := sh.heap[0]
		s := &slab[top]
		if !s.live {
			sh.pop()
			sh.freed = append(sh.freed, top)
			sh.dead--
			continue
		}
		if s.t > wend {
			break
		}
		sh.pop()
		s.staged = true
		sh.run = append(sh.run, top)
	}
}

// serve is the worker loop: one staging pass per request, retiring when
// the request channel closes.  Closing done signals the worker has exited
// (and, for -race, publishes all its writes to the joiner).
func (sh *shard) serve() {
	defer close(sh.done)
	for wend := range sh.req {
		sh.stage(wend)
		sh.done <- struct{}{}
	}
}

// head reports the earliest (t, seq) still in the shard's heap.  Executor
// only, between windows.
func (sh *shard) head() (Time, uint64) {
	if len(sh.heap) == 0 {
		return timeMax, 0
	}
	s := &sh.k.slab[sh.heap[0]]
	return s.t, s.seq
}

// SetShards partitions the event queue into n shards, each staged by its
// own worker goroutine during Run.  n <= 1 leaves the kernel sequential
// (the default).  Must be called before Run and at most once; events
// already scheduled are handed to shard 0.  Sharding never changes
// simulation output — it only parallelizes queue maintenance — so any
// shard count is safe for any workload.
func (k *Kernel) SetShards(n int) {
	if k.started {
		panic("sim: SetShards after Run")
	}
	if k.nshards > 1 {
		panic("sim: SetShards called twice")
	}
	if n <= 1 {
		return
	}
	k.nshards = n
	k.shards = make([]*shard, n)
	k.inboxMin = make([]Time, n)
	for i := range k.shards {
		k.shards[i] = &shard{
			k:    k,
			id:   i,
			req:  make(chan Time),
			done: make(chan struct{}),
		}
		k.inboxMin[i] = timeMax
	}
	for _, idx := range k.heap {
		s := &k.slab[idx]
		if !s.live {
			k.freeSlot(idx)
			continue
		}
		k.routeSlot(idx, 0)
	}
	k.heap = k.heap[:0]
	k.dead = 0
}

// NumShards reports the configured shard count (1 when sequential).
func (k *Kernel) NumShards() int {
	if k.nshards > 1 {
		return k.nshards
	}
	return 1
}

// SetLookahead sets the conservative window width: the minimum virtual
// delay between scheduling contexts, typically the minimum link latency
// of the simulated network.  Larger values stage more events per barrier;
// the value never affects correctness or output, only batching.  Zero (the
// default) degenerates to one timestamp cluster per window.
func (k *Kernel) SetLookahead(d Time) {
	if d < 0 {
		d = 0
	}
	k.lookahead = d
}

// Lookahead reports the configured conservative window width.
func (k *Kernel) Lookahead() Time { return k.lookahead }

// routeSlot places a freshly scheduled slot: into the executor's overflow
// heap when it lands inside the open window (it must dispatch this
// window to preserve the total order), otherwise into the owner shard's
// inbox for the next staging pass.  This is the sanctioned cross-shard
// write path: it only ever runs on the executor goroutine, between or
// inside dispatch, while every worker is parked at the barrier.
//
//ftlint:crossshard
func (k *Kernel) routeSlot(idx int32, owner int32) {
	s := &k.slab[idx]
	s.shard = owner
	if k.inWindow && s.t <= k.windowEnd {
		s.staged = true
		k.ovPush(idx)
		return
	}
	s.staged = false
	sh := k.shards[owner]
	sh.inbox = append(sh.inbox, idx)
	if s.t < k.inboxMin[owner] {
		k.inboxMin[owner] = s.t
	}
}

// --- overflow heap (binary, executor-only) ------------------------------

func (k *Kernel) ovPush(idx int32) {
	k.ov = append(k.ov, idx)
	h := k.ov
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !k.slotLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (k *Kernel) ovPop() int32 {
	h := k.ov
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	h = h[:last]
	k.ov = h
	i := 0
	for {
		l := 2*i + 1
		if l >= len(h) {
			break
		}
		m := l
		if r := l + 1; r < len(h) && k.slotLess(h[r], h[l]) {
			m = r
		}
		if !k.slotLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}

// horizonMin finds the earliest pending event across every shard heap and
// inbox.  Executor only, between windows (workers parked).
func (k *Kernel) horizonMin() Time {
	tmin := timeMax
	for i, sh := range k.shards {
		if t, _ := sh.head(); t < tmin {
			tmin = t
		}
		if k.inboxMin[i] < tmin {
			tmin = k.inboxMin[i]
		}
	}
	return tmin
}

// mergeNext pops the globally-least (t, seq) event among the staged runs
// and the overflow heap.  Executor-only, workers parked: advancing a
// shard's staged-run cursor from here is the merge API, hence the
// crossshard sanction.
//
//ftlint:crossshard
func (k *Kernel) mergeNext() (int32, bool) {
	best := int32(-1)
	var src *shard
	for _, sh := range k.shards {
		if sh.runHead < len(sh.run) {
			idx := sh.run[sh.runHead]
			if best < 0 || k.slotLess(idx, best) {
				best, src = idx, sh
			}
		}
	}
	fromOv := false
	if len(k.ov) > 0 && (best < 0 || k.slotLess(k.ov[0], best)) {
		best, fromOv = k.ov[0], true
	}
	if best < 0 {
		return 0, false
	}
	if fromOv {
		k.ovPop()
	} else {
		src.runHead++
	}
	return best, true
}

// dispatchWindow fires the staged window in total order, draining the LP
// run queue between events exactly like the sequential loop.
func (k *Kernel) dispatchWindow() error {
	for !k.stopped {
		if len(k.runq) > k.runqHead {
			p := k.popRunq()
			if p.state == stateDead {
				continue
			}
			k.runLP(p)
			continue
		}
		idx, ok := k.mergeNext()
		if !ok {
			return nil
		}
		s := &k.slab[idx]
		if !s.live {
			k.freeSlot(idx)
			continue
		}
		if s.t < k.now {
			return fmt.Errorf("sim: event time went backwards: %v < %v", s.t, k.now)
		}
		k.now = s.t
		k.curShard = s.shard
		fn, argFn, arg, proc := s.fn, s.argFn, s.arg, s.proc
		k.freeSlot(idx)
		if k.Trace != nil {
			k.Trace(k.now, "event")
		}
		switch {
		case proc != nil:
			k.ready(proc)
		case argFn != nil:
			argFn(arg)
		default:
			fn()
		}
	}
	return nil
}

// runSharded is Run's body when SetShards > 1: alternate parallel staging
// with total-order dispatch until the simulation ends.  It recycles every
// shard's freed list at the barrier — a cross-shard write that is safe
// because the worker just handed ownership back through its done channel.
//
//ftlint:crossshard
func (k *Kernel) runSharded() error {
	for _, sh := range k.shards {
		go sh.serve()
	}
	defer func() {
		for _, sh := range k.shards {
			close(sh.req)
			<-sh.done
		}
	}()
	for !k.stopped {
		if len(k.runq) > k.runqHead {
			p := k.popRunq()
			if p.state == stateDead {
				continue
			}
			k.runLP(p)
			continue
		}
		tmin := k.horizonMin()
		if tmin == timeMax {
			if k.live > 0 {
				return fmt.Errorf("%w at t=%v: %d live LP(s) parked forever: %v",
					ErrDeadlock, k.now, k.live, k.parkedNames())
			}
			return nil
		}
		wend := tmin
		if wend <= timeMax-k.lookahead {
			wend += k.lookahead
		}
		for _, sh := range k.shards {
			sh.req <- wend
		}
		for i, sh := range k.shards {
			<-sh.done
			k.inboxMin[i] = timeMax
		}
		for _, sh := range k.shards {
			for _, idx := range sh.freed {
				k.freeSlot(idx)
			}
			sh.freed = sh.freed[:0]
		}
		k.inWindow, k.windowEnd = true, wend
		err := k.dispatchWindow()
		k.inWindow = false
		if err != nil {
			return err
		}
	}
	return k.stopErr
}
