// Package sim provides a deterministic discrete-event simulation kernel.
//
// A simulation is a set of logical processes (LPs) — ordinary goroutines
// created with Kernel.Go — plus a queue of timed event callbacks.  The
// kernel runs exactly one thing at a time: either a single LP (until it
// parks on a timer or a Cond) or a single event callback.  Events with
// equal timestamps fire in scheduling order, and woken LPs run in wake
// order, so a simulation is bit-reproducible: the same program produces
// the same trace on every run.
//
// Virtual time is a time.Duration measured from the start of the
// simulation.  It only advances when every LP is parked and the earliest
// pending event is popped; an LP that never parks therefore freezes time
// (and eventually the kernel reports it as a livelock through the caller
// hanging — don't do that).  LPs model the passage of computation time
// explicitly with Proc.Advance.
//
// The event queue is built for the hot path: an indexed 4-ary min-heap
// over a pooled slot slab.  Scheduling reuses slots through a free list
// (no per-At allocation in steady state), EventIDs carry a generation
// counter so Cancel is an O(1) mark (the slot drains from the heap
// lazily), and timers that only wake an LP (Advance) carry the *Proc
// directly instead of a closure.
package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Time is a virtual timestamp: the duration elapsed since the start of the
// simulation.  It is an alias so that arithmetic with time.Duration
// constants (sim.Time(30*time.Second), t + 5*time.Millisecond) is direct.
type Time = time.Duration

// procState tracks where an LP is in its lifecycle.
type procState int

const (
	stateNew procState = iota
	stateRunnable
	stateRunning
	stateParked
	stateDead
)

// Proc is a logical process: a goroutine whose execution interleaves with
// the rest of the simulation only at kernel calls (Advance, Cond.Wait,
// Yield).  All Proc methods must be called from the LP's own goroutine
// while it holds the execution token, i.e. from inside the function passed
// to Kernel.Go.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	wake   chan struct{}
	state  procState
	shard  int32 // staging shard for the LP's timers and scheduled events
	daemon bool
	killed error // poison: delivered at the next kernel call
}

// ID returns the process identifier assigned by the kernel (dense,
// starting at 0, in spawn order).
func (p *Proc) ID() int { return p.id }

// Name returns the diagnostic name given at spawn time.
func (p *Proc) Name() string { return p.name }

// eventSlot is one pooled event.  A slot is referenced by at most one
// heap entry; cancelled slots stay in the heap (lazily skipped on pop)
// and are recycled through the free list once popped.
//
// Lifetime rule (enforced by ftlint's poolescape analyzer): a *eventSlot
// obtained from the slab is only valid until the slot is freed — the
// generation counter advances and the same storage is handed to the next
// schedule call.  Never store a slot pointer in a field or global; hold
// the EventID instead, which detects recycling.
//
//ftlint:pooled
type eventSlot struct {
	t    Time
	seq  uint64
	gen  uint32
	live bool
	// Sharded mode only: shard is the staging owner, staged reports that
	// the slot has left its shard's heap/inbox and now lives in a staged
	// run or the executor's overflow heap (so Cancel must not touch the
	// shard's dead counter).
	shard  int32
	staged bool
	// Exactly one of the payload forms is set: fn (closure callback),
	// argFn+arg (closure-free callback), or proc (wake the LP).
	fn    func()
	argFn func(any)
	arg   any
	proc  *Proc
}

// Kernel is a discrete-event scheduler.  Create one with New, add LPs with
// Go and events with At/After, then call Run.
type Kernel struct {
	now  Time
	seq  uint64
	slab []eventSlot
	free []int32 // recycled slot indices (LIFO)
	heap []int32 // 4-ary min-heap of slot indices, keyed by (t, seq)

	dead int // cancelled slots still parked in the heap

	runq     []*Proc
	runqHead int

	procs   []*Proc
	live    int // non-daemon LPs not yet dead
	yield   chan *Proc
	running *Proc
	stopped bool
	stopErr error
	started bool
	rng     *rand.Rand

	// Sharded mode (SetShards > 1).  The sequential fields above stay
	// untouched when sharding is on: events live in per-shard heaps
	// staged by worker goroutines, and the executor dispatches them in
	// the global (t, seq) order.  See shard.go.
	nshards   int
	shards    []*shard
	lookahead Time
	curShard  int32   // shard context of the running event/LP
	inboxMin  []Time  // earliest pending time per shard inbox
	ov        []int32 // overflow heap: events scheduled inside the open window
	inWindow  bool
	windowEnd Time
	// Trace, when non-nil, receives a line for every LP wake and event
	// dispatch.  Intended for debugging; off by default.
	Trace func(t Time, format string, args ...any)
}

// New returns a kernel whose deterministic random source is seeded with
// seed.  The source is available through Rand for workloads that need
// reproducible pseudo-randomness tied to the simulation.
func New(seed int64) *Kernel {
	return &Kernel{
		yield: make(chan *Proc),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Rand returns the kernel's deterministic random source.  It must only be
// used from LPs and event callbacks (never concurrently with Run from
// outside), which is the same discipline as every other kernel facility.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// EventID identifies a scheduled event for cancellation.  It packs the
// slot index and the slot's generation at schedule time; a recycled slot
// has a new generation, so stale IDs can never cancel a later event.  The
// zero EventID never names an event.
type EventID uint64

func makeEventID(idx int32, gen uint32) EventID {
	return EventID(uint64(idx+1)<<32 | uint64(gen))
}

func (id EventID) split() (idx int32, gen uint32) {
	return int32(uint64(id)>>32) - 1, uint32(uint64(id))
}

// --- 4-ary heap over the slot slab --------------------------------------

func (k *Kernel) slotLess(a, b int32) bool {
	sa, sb := &k.slab[a], &k.slab[b]
	if sa.t != sb.t {
		return sa.t < sb.t
	}
	return sa.seq < sb.seq
}

func (k *Kernel) heapPush(idx int32) {
	k.heap = append(k.heap, idx)
	h := k.heap
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !k.slotLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (k *Kernel) heapPop() int32 {
	h := k.heap
	top := h[0]
	last := len(h) - 1
	h[0] = h[last]
	k.heap = h[:last]
	k.siftDown(0)
	return top
}

func (k *Kernel) siftDown(i int) {
	h := k.heap
	n := len(h)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		m := first
		end := first + 4
		if end > n {
			end = n
		}
		for j := first + 1; j < end; j++ {
			if k.slotLess(h[j], h[m]) {
				m = j
			}
		}
		if !k.slotLess(h[m], h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// compactHeap drops cancelled slots and re-heapifies.  Called once more
// than half the heap is dead, it keeps a cancel-heavy workload (rearming
// timeouts, abandoned flows) at amortised O(1) per cancel and bounds the
// queue's memory by twice its live population.
func (k *Kernel) compactHeap() {
	h := k.heap[:0]
	for _, idx := range k.heap {
		if k.slab[idx].live {
			h = append(h, idx)
		} else {
			k.freeSlot(idx)
		}
	}
	k.heap = h
	for i := (len(h) - 2) / 4; i >= 0; i-- {
		k.siftDown(i)
	}
	k.dead = 0
}

// schedule inserts one event, reusing a free slot when available.  owner
// is the explicit staging shard for the event, or -1 to inherit it from
// the scheduling context (the waking proc's shard, else the shard of the
// event/LP currently executing); it is ignored by a sequential kernel.
func (k *Kernel) schedule(t Time, fn func(), argFn func(any), arg any, proc *Proc, owner int32) EventID {
	if t < k.now {
		t = k.now
	}
	k.seq++
	var idx int32
	if n := len(k.free); n > 0 {
		idx = k.free[n-1]
		k.free = k.free[:n-1]
	} else {
		k.slab = append(k.slab, eventSlot{})
		idx = int32(len(k.slab) - 1)
	}
	s := &k.slab[idx]
	s.t, s.seq, s.live = t, k.seq, true
	s.fn, s.argFn, s.arg, s.proc = fn, argFn, arg, proc
	if k.nshards > 1 {
		if owner < 0 {
			owner = k.curShard
			if proc != nil {
				owner = proc.shard
			}
		} else if owner >= int32(k.nshards) {
			owner %= int32(k.nshards)
		}
		k.routeSlot(idx, owner)
	} else {
		k.heapPush(idx)
	}
	return makeEventID(idx, s.gen)
}

// freeSlot recycles a popped slot.  Bumping the generation invalidates
// every EventID issued for the slot's previous lives.
func (k *Kernel) freeSlot(idx int32) {
	s := &k.slab[idx]
	s.gen++
	s.live = false
	s.staged = false
	s.fn, s.argFn, s.arg, s.proc = nil, nil, nil, nil
	if s.gen == 0 {
		// The generation counter wrapped: an EventID issued 2^32 lives
		// ago would now alias a future event in this slot and could
		// cancel it (the ABA problem the generation exists to prevent).
		// Retire the slot instead of recycling it — one leaked slab
		// entry per four billion reuses of a single slot.
		return
	}
	k.free = append(k.free, idx)
}

// At schedules fn to run as an event callback at virtual time t.  If t is
// in the past it runs at the current time, after already-pending work.
func (k *Kernel) At(t Time, fn func()) EventID {
	return k.schedule(t, fn, nil, nil, nil, -1)
}

// After schedules fn to run d from now.
func (k *Kernel) After(d Time, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return k.schedule(k.now+d, fn, nil, nil, nil, -1)
}

// AtArg schedules fn(arg) at virtual time t.  Passing the argument
// explicitly lets hot paths share one callback func instead of allocating
// a closure per event.
func (k *Kernel) AtArg(t Time, fn func(any), arg any) EventID {
	return k.schedule(t, nil, fn, arg, nil, -1)
}

// AfterArg schedules fn(arg) to run d from now.
func (k *Kernel) AfterArg(d Time, fn func(any), arg any) EventID {
	if d < 0 {
		d = 0
	}
	return k.schedule(k.now+d, nil, fn, arg, nil, -1)
}

// AtArgOn schedules fn(arg) at t with an explicit staging shard.  The
// hint only decides which shard worker stages the event — dispatch order
// is the global (time, seq) total order regardless — so a poor hint costs
// locality, never determinism.  Out-of-range shards wrap; a sequential
// kernel ignores the hint entirely.
func (k *Kernel) AtArgOn(shard int, t Time, fn func(any), arg any) EventID {
	if shard < 0 {
		shard = 0
	}
	return k.schedule(t, nil, fn, arg, nil, int32(shard))
}

// Cancel revokes a pending event.  Cancelling an event that already fired
// (or was already cancelled) is a no-op and reports false.  Cancellation
// is O(1): the slot is marked dead and drains from the heap lazily.
func (k *Kernel) Cancel(id EventID) bool {
	idx, gen := id.split()
	if idx < 0 || int(idx) >= len(k.slab) {
		return false
	}
	s := &k.slab[idx]
	if !s.live || s.gen != gen {
		return false
	}
	s.live = false
	s.fn, s.argFn, s.arg, s.proc = nil, nil, nil, nil
	if k.nshards > 1 {
		// Slots still owned by a shard (heap or inbox) count toward that
		// shard's dead total so its worker knows when to compact; staged
		// slots are already en route to dispatch, which skips and frees
		// dead slots itself.
		if !s.staged {
			k.shards[s.shard].noteDead()
		}
		return true
	}
	k.dead++
	if k.dead > 64 && k.dead > len(k.heap)/2 {
		k.compactHeap()
	}
	return true
}

// Go spawns a new LP running fn.  It may be called before Run or from any
// LP or event callback during the simulation; the new LP becomes runnable
// immediately but does not start executing until the scheduler selects it.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:     k,
		id:    len(k.procs),
		name:  name,
		wake:  make(chan struct{}, 1),
		shard: k.curShard, // inherit the spawner's shard; SetShard overrides
	}
	k.procs = append(k.procs, p)
	k.live++
	p.state = stateRunnable
	k.pushRunq(p)
	go func() {
		<-p.wake
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedPanic); !ok {
					// Re-panicking here would crash on the LP's own
					// goroutine without unwinding Run; record and stop.
					k.stopped = true
					k.stopErr = fmt.Errorf("sim: LP %q panicked: %v", p.name, r)
				}
			}
			p.state = stateDead
			if !p.daemon {
				k.live--
			}
			k.yield <- p
		}()
		p.checkKilled()
		fn(p)
	}()
	return p
}

// SetShard pins the LP to a kernel shard: its wake timers and the events
// it schedules are staged by that shard's worker.  Like ownership hints
// generally, placement affects staging locality only, never the dispatch
// order, so the choice cannot change simulation output.  Must be called
// from the LP itself or before the LP has first run; out-of-range shards
// wrap, and a sequential kernel ignores the call.
func (p *Proc) SetShard(s int) {
	n := p.k.nshards
	if n <= 1 {
		return
	}
	if s < 0 {
		s = 0
	}
	p.shard = int32(s % n)
}

// Shard reports the LP's staging shard (0 on a sequential kernel).
func (p *Proc) Shard() int { return int(p.shard) }

// SetDaemon marks the LP as a daemon: the simulation may end while the LP
// is still parked (servers, dispatchers).  Must be called from the LP
// itself or before the LP has first run.
func (p *Proc) SetDaemon(on bool) {
	if p.daemon == on {
		return
	}
	p.daemon = on
	if p.state != stateDead {
		if on {
			p.k.live--
		} else {
			p.k.live++
		}
	}
}

// killedPanic unwinds a killed LP's stack.
type killedPanic struct{ err error }

// ErrKilled is the cause recorded when an LP is removed by Kernel.Kill
// without a more specific reason.
var ErrKilled = errors.New("sim: process killed")

// Kill poisons an LP: the next kernel call it makes (or the pending one it
// is parked in) panics internally and the LP exits.  cause may be nil, in
// which case ErrKilled is used.  Killing a dead LP is a no-op.  An LP may
// not kill itself; it should just return.
func (k *Kernel) Kill(p *Proc, cause error) {
	if p.state == stateDead || p.killed != nil {
		return
	}
	if p == k.running {
		panic("sim: LP cannot Kill itself")
	}
	if cause == nil {
		cause = ErrKilled
	}
	p.killed = cause
	if p.state == stateParked {
		k.ready(p)
	}
}

// Killed reports the poison error set by Kill, or nil.
func (p *Proc) Killed() error { return p.killed }

func (p *Proc) checkKilled() {
	if p.killed != nil {
		panic(killedPanic{p.killed})
	}
}

// pushRunq appends to the run queue (a sliding-window ring: popRunq
// advances runqHead and the array is reset once drained, so steady-state
// scheduling never reallocates).
func (k *Kernel) pushRunq(p *Proc) {
	k.runq = append(k.runq, p)
}

func (k *Kernel) popRunq() *Proc {
	p := k.runq[k.runqHead]
	k.runq[k.runqHead] = nil
	k.runqHead++
	if k.runqHead == len(k.runq) {
		k.runq = k.runq[:0]
		k.runqHead = 0
	}
	return p
}

// ready moves a parked LP to the run queue.  Dead or already-runnable LPs
// are skipped, which lets stale timer callbacks fire harmlessly.
func (k *Kernel) ready(p *Proc) {
	if p.state != stateParked {
		return
	}
	p.state = stateRunnable
	k.pushRunq(p)
}

// park yields the token to the kernel and blocks until woken.
func (p *Proc) park() {
	p.checkKilled()
	p.state = stateParked
	p.k.running = nil
	p.k.yield <- p
	<-p.wake
	p.checkKilled()
}

// Advance blocks the LP for d of virtual time, modelling computation or
// idle waiting.  Negative durations advance by zero.  The timer carries
// the LP directly (no closure); the deferred Cancel only matters when the
// LP is killed while parked — otherwise the event has already fired and
// the cancel is a cheap no-op.
func (p *Proc) Advance(d Time) {
	p.checkKilled()
	if d < 0 {
		d = 0
	}
	id := p.k.schedule(p.k.now+d, nil, nil, nil, p, -1)
	// If the LP is killed while parked, the timer would otherwise fire
	// later and drag virtual time forward for a dead process.
	defer p.k.Cancel(id)
	p.park()
}

// Yield reschedules the LP behind everything already runnable at the
// current instant, without advancing time.
func (p *Proc) Yield() {
	p.checkKilled()
	p.k.ready2(p)
	p.park()
}

// ready2 is ready for a running LP that is about to park (Yield).
func (k *Kernel) ready2(p *Proc) {
	k.pushRunq(p)
	// park() will set stateParked then the queued entry flips it back; to
	// keep the state machine simple we mark it runnable when dequeued.
}

// Now returns the current virtual time (convenience mirror of Kernel.Now).
func (p *Proc) Now() Time { return p.k.now }

// Kernel returns the kernel this LP belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Stop ends the simulation after the currently executing step; Run returns
// err (which may be nil for a normal early stop).
func (k *Kernel) Stop(err error) {
	k.stopped = true
	if k.stopErr == nil {
		k.stopErr = err
	}
}

// ErrDeadlock is returned (wrapped) by Run when non-daemon LPs remain
// parked but no event can ever wake them.
var ErrDeadlock = errors.New("sim: deadlock")

// runLP hands the execution token to a runnable LP and blocks until it
// parks, exits, or yields.
func (k *Kernel) runLP(p *Proc) {
	p.state = stateRunning
	k.running = p
	k.curShard = p.shard
	if k.Trace != nil {
		k.Trace(k.now, "run %s", p.name)
	}
	p.wake <- struct{}{}
	<-k.yield
	k.running = nil
}

// Run executes the simulation until all non-daemon LPs have exited, Stop is
// called, or no progress is possible.  It must be called exactly once, from
// the goroutine that built the kernel.
func (k *Kernel) Run() error {
	if k.started {
		return errors.New("sim: Run called twice")
	}
	k.started = true
	defer k.cleanup()
	if k.nshards > 1 {
		return k.runSharded()
	}
	for !k.stopped {
		switch {
		case len(k.runq) > k.runqHead:
			p := k.popRunq()
			if p.state == stateDead {
				continue
			}
			k.runLP(p)
		case len(k.heap) > 0:
			idx := k.heapPop()
			s := &k.slab[idx]
			if !s.live {
				k.freeSlot(idx)
				k.dead--
				continue
			}
			if s.t < k.now {
				return fmt.Errorf("sim: event time went backwards: %v < %v", s.t, k.now)
			}
			k.now = s.t
			fn, argFn, arg, proc := s.fn, s.argFn, s.arg, s.proc
			k.freeSlot(idx)
			if k.Trace != nil {
				k.Trace(k.now, "event")
			}
			switch {
			case proc != nil:
				k.ready(proc)
			case argFn != nil:
				argFn(arg)
			default:
				fn()
			}
		default:
			if k.live > 0 {
				return fmt.Errorf("%w at t=%v: %d live LP(s) parked forever: %v",
					ErrDeadlock, k.now, k.live, k.parkedNames())
			}
			return nil
		}
	}
	return k.stopErr
}

// cleanup unwinds every LP goroutine still alive when Run returns (parked
// daemons, LPs outliving an early Stop) so that simulations do not leak
// goroutines across tests.
func (k *Kernel) cleanup() {
	for _, p := range k.procs {
		if p.state == stateDead {
			continue
		}
		if p.killed == nil {
			p.killed = ErrKilled
		}
		p.wake <- struct{}{}
		<-k.yield
	}
}

func (k *Kernel) parkedNames() []string {
	var names []string
	for _, p := range k.procs {
		if p.state == stateParked && !p.daemon {
			names = append(names, p.name)
		}
	}
	sort.Strings(names)
	return names
}

// Cond is a condition variable integrated with the scheduler.  The usual
// pattern is
//
//	for !pred() {
//		cond.Wait(p)
//	}
//
// Signal wakes the longest-waiting LP; Broadcast wakes all.  Because the
// kernel is single-threaded there is no lock to hold around the predicate.
type Cond struct {
	k       *Kernel
	waiters []*Proc
}

// NewCond returns a condition variable bound to k.
func NewCond(k *Kernel) *Cond { return &Cond{k: k} }

// Wait parks the LP until Signal or Broadcast (or Kill).  Spurious wakeups
// are possible after a Broadcast race with Kill; always re-check the
// predicate in a loop.
func (c *Cond) Wait(p *Proc) {
	p.checkKilled()
	c.waiters = append(c.waiters, p)
	defer c.remove(p)
	p.park()
}

func (c *Cond) remove(p *Proc) {
	for i, w := range c.waiters {
		if w == p {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			return
		}
	}
}

// Signal wakes the longest-waiting LP, if any.
func (c *Cond) Signal() {
	for _, w := range c.waiters {
		if w.state == stateParked {
			c.k.ready(w)
			return
		}
	}
}

// Broadcast wakes every waiting LP.
func (c *Cond) Broadcast() {
	for _, w := range c.waiters {
		if w.state == stateParked {
			c.k.ready(w)
		}
	}
}
