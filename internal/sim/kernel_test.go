package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestAdvanceOrdering(t *testing.T) {
	k := New(1)
	var log []string
	k.Go("a", func(p *Proc) {
		p.Advance(20 * time.Millisecond)
		log = append(log, fmt.Sprintf("a@%v", p.Now()))
	})
	k.Go("b", func(p *Proc) {
		p.Advance(10 * time.Millisecond)
		log = append(log, fmt.Sprintf("b@%v", p.Now()))
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"b@10ms", "a@20ms"}
	if !reflect.DeepEqual(log, want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
}

func TestEventsEqualTimeFIFO(t *testing.T) {
	k := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5*time.Millisecond, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("events out of order: %v", got)
		}
	}
}

func TestTimeNeverGoesBackwards(t *testing.T) {
	k := New(1)
	last := Time(0)
	n := 0
	var fire func()
	fire = func() {
		if k.Now() < last {
			t.Fatalf("time went backwards: %v < %v", k.Now(), last)
		}
		last = k.Now()
		n++
		if n < 100 {
			k.After(Time(n%7)*time.Millisecond, fire)
		}
	}
	k.After(0, fire)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Fatalf("fired %d times, want 100", n)
	}
}

func TestCancel(t *testing.T) {
	k := New(1)
	fired := false
	id := k.After(time.Second, func() { fired = true })
	k.After(time.Millisecond, func() {
		if !k.Cancel(id) {
			t.Error("Cancel reported false for pending event")
		}
		if k.Cancel(id) {
			t.Error("second Cancel reported true")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if k.Now() != time.Millisecond {
		t.Fatalf("end time %v, want 1ms", k.Now())
	}
}

func TestCondSignalBroadcast(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	stage := 0
	var woke []string
	for _, name := range []string{"w1", "w2", "w3"} {
		name := name
		k.Go(name, func(p *Proc) {
			for stage == 0 {
				c.Wait(p)
			}
			woke = append(woke, name)
			for stage < 2 {
				c.Wait(p)
			}
			woke = append(woke, name+"'")
		})
	}
	k.Go("sig", func(p *Proc) {
		p.Advance(time.Millisecond)
		stage = 1
		c.Broadcast()
		p.Advance(time.Millisecond)
		stage = 2
		c.Signal()
		c.Signal()
		c.Signal()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"w1", "w2", "w3", "w1'", "w2'", "w3'"}
	if !reflect.DeepEqual(woke, want) {
		t.Fatalf("wake order %v, want %v", woke, want)
	}
}

func TestKillParkedLP(t *testing.T) {
	k := New(1)
	boom := errors.New("node crash")
	cleanedUp := false
	victim := k.Go("victim", func(p *Proc) {
		defer func() { cleanedUp = true }()
		p.Advance(time.Hour)
		t.Error("victim survived Advance past kill")
	})
	k.After(time.Second, func() { k.Kill(victim, boom) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !cleanedUp {
		t.Fatal("victim deferred cleanup did not run")
	}
	if victim.Killed() != boom {
		t.Fatalf("Killed() = %v, want %v", victim.Killed(), boom)
	}
	if k.Now() != time.Second {
		t.Fatalf("sim ended at %v, want 1s", k.Now())
	}
}

func TestKillRunnableLPBeforeFirstRun(t *testing.T) {
	k := New(1)
	ran := false
	var victim *Proc
	k.Go("killer", func(p *Proc) {
		k.Kill(victim, nil)
	})
	victim = k.Go("victim", func(p *Proc) { ran = true })
	// The killer LP was spawned first, so it runs first and poisons the
	// victim before the victim's body starts.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Fatal("victim body ran despite pre-run kill")
	}
}

func TestDaemonDoesNotBlockExit(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	k.Go("server", func(p *Proc) {
		p.SetDaemon(true)
		for {
			c.Wait(p) // parked forever
		}
	})
	k.Go("client", func(p *Proc) { p.Advance(time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := New(1)
	c := NewCond(k)
	k.Go("stuck", func(p *Proc) { c.Wait(p) })
	err := k.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestStop(t *testing.T) {
	k := New(1)
	stopErr := errors.New("enough")
	k.Go("a", func(p *Proc) {
		for i := 0; ; i++ {
			p.Advance(time.Second)
			if i == 4 {
				k.Stop(stopErr)
			}
		}
	})
	if err := k.Run(); err != stopErr {
		t.Fatalf("err = %v, want %v", err, stopErr)
	}
	if k.Now() != 5*time.Second {
		t.Fatalf("stopped at %v, want 5s", k.Now())
	}
}

func TestSpawnFromLP(t *testing.T) {
	k := New(1)
	var order []string
	k.Go("parent", func(p *Proc) {
		order = append(order, "parent")
		k.Go("child", func(c *Proc) {
			order = append(order, "child")
			c.Advance(time.Millisecond)
			order = append(order, "child-done")
		})
		p.Advance(2 * time.Millisecond)
		order = append(order, "parent-done")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"parent", "child", "child-done", "parent-done"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestYieldFairness(t *testing.T) {
	k := New(1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		k.Go(fmt.Sprintf("lp%d", i), func(p *Proc) {
			for round := 0; round < 2; round++ {
				order = append(order, i)
				p.Yield()
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("order %v, want %v", order, want)
	}
}

func TestLPPanicPropagates(t *testing.T) {
	k := New(1)
	k.Go("bad", func(p *Proc) { panic("kaboom") })
	err := k.Run()
	if err == nil {
		t.Fatal("Run returned nil for panicking LP")
	}
}

func TestRunTwice(t *testing.T) {
	k := New(1)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if err := k.Run(); err == nil {
		t.Fatal("second Run did not error")
	}
}

// runSchedule runs a randomized simulation derived from seed and returns a
// trace of (time, lp, step) tuples.
func runSchedule(seed int64, lps, steps int) []string {
	k := New(seed)
	rng := rand.New(rand.NewSource(seed))
	delays := make([][]Time, lps)
	for i := range delays {
		delays[i] = make([]Time, steps)
		for j := range delays[i] {
			delays[i][j] = Time(rng.Intn(50)) * time.Millisecond
		}
	}
	var trace []string
	for i := 0; i < lps; i++ {
		i := i
		k.Go(fmt.Sprintf("lp%d", i), func(p *Proc) {
			for j := 0; j < steps; j++ {
				p.Advance(delays[i][j])
				trace = append(trace, fmt.Sprintf("%d/%d@%v", i, j, p.Now()))
			}
		})
	}
	if err := k.Run(); err != nil {
		panic(err)
	}
	return trace
}

// TestDeterminism checks that identical programs produce identical traces —
// the property every experiment in this repository relies on.
func TestDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		a := runSchedule(seed, 5, 8)
		b := runSchedule(seed, 5, 8)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceMonotone checks that the per-LP step order and global time
// monotonicity hold for arbitrary schedules.
func TestTraceMonotone(t *testing.T) {
	f := func(seed int64) bool {
		trace := runSchedule(seed, 4, 6)
		var last Time
		for _, e := range trace {
			var lp, step int
			var at time.Duration
			var rest string
			if _, err := fmt.Sscanf(e, "%d/%d@%s", &lp, &step, &rest); err != nil {
				return false
			}
			at, err := time.ParseDuration(rest)
			if err != nil {
				return false
			}
			if at < last {
				return false
			}
			last = at
		}
		return len(trace) == 4*6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
