package platform

import (
	"testing"
)

func TestGrid5000Shape(t *testing.T) {
	topo := Grid5000()
	if len(topo.Clusters) != 6 {
		t.Fatalf("%d clusters", len(topo.Clusters))
	}
	if topo.TotalNodes() != 48+53+216+64+105+58 {
		t.Fatalf("total nodes %d", topo.TotalNodes())
	}
	if topo.WanLatency <= topo.Clusters[0].Latency*50 {
		t.Fatal("WAN latency not orders of magnitude above LAN")
	}
}

func TestGrid5000LayoutLocality(t *testing.T) {
	lay, err := Grid5000Layout(400, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lay.Servers != 6 {
		t.Fatalf("%d servers", lay.Servers)
	}
	topo := lay.Topo
	// Cluster of a node.
	clusterOf := func(node int) int {
		base := 0
		for ci, c := range topo.Clusters {
			if node < base+c.Nodes {
				return ci
			}
			base += c.Nodes
		}
		t.Fatalf("node %d out of range", node)
		return -1
	}
	seen := map[int]bool{}
	for rank := 0; rank < 400; rank++ {
		node := lay.Placement(rank)
		srv := lay.ServerOf(rank)
		if srv < 0 || srv >= lay.Servers {
			t.Fatalf("rank %d server %d", rank, srv)
		}
		// Locality: the checkpoint server lives in the rank's cluster.
		if clusterOf(lay.ServerNodes[srv]) != clusterOf(node) {
			t.Fatalf("rank %d on cluster %d stores on cluster %d",
				rank, clusterOf(node), clusterOf(lay.ServerNodes[srv]))
		}
		seen[node] = true
		// Compute nodes never collide with server or service nodes.
		for _, sn := range lay.ServerNodes {
			if node == sn {
				t.Fatalf("rank %d placed on server node %d", rank, node)
			}
		}
		if node == lay.ServiceNode {
			t.Fatalf("rank %d placed on the service node", rank)
		}
	}
	if len(seen) != 200 {
		t.Fatalf("%d nodes used for 400 ranks at ppn=2", len(seen))
	}
}

func TestGrid5000LayoutCapacity(t *testing.T) {
	if _, err := Grid5000Layout(2000, 1, 1); err == nil {
		t.Fatal("oversized layout accepted")
	}
	if _, err := Grid5000Layout(529, 2, 1); err != nil {
		t.Fatalf("paper-scale layout rejected: %v", err)
	}
}

func TestProfilesDistinct(t *testing.T) {
	if !Vcl.Async {
		t.Fatal("Vcl daemon must be asynchronous")
	}
	if PclSock.Async || PclNemesis.Async {
		t.Fatal("MPICH2 stacks progress in-call")
	}
	if Vcl.DaemonLatency == 0 {
		t.Fatal("Vcl daemon has no store-and-forward cost")
	}
	if PclNemesis.SendOverhead >= PclSock.SendOverhead {
		t.Fatal("Nemesis should be the thinnest stack")
	}
}

func TestClusterPresets(t *testing.T) {
	for _, tc := range []struct {
		name string
		n    int
	}{{"eth", 10}, {"gm", 20}, {"tcp", 30}} {
		var nodes int
		switch tc.name {
		case "eth":
			nodes = EthernetCluster(tc.n).TotalNodes()
		case "gm":
			nodes = MyrinetGM(tc.n).TotalNodes()
		case "tcp":
			nodes = MyrinetTCP(tc.n).TotalNodes()
		}
		if nodes != tc.n {
			t.Fatalf("%s: %d nodes, want %d", tc.name, nodes, tc.n)
		}
	}
	gm, tcp := MyrinetGM(4), MyrinetTCP(4)
	if gm.Clusters[0].Latency >= tcp.Clusters[0].Latency {
		t.Fatal("GM must have lower latency than the Ethernet emulation")
	}
	if gm.Clusters[0].NICBW <= tcp.Clusters[0].NICBW {
		t.Fatal("GM must have higher bandwidth than the Ethernet emulation")
	}
}
