// Package platform provides Grid'5000-inspired platform presets and the
// service profiles of the paper's three communication stacks.  The
// numbers are fitted to the era's measured characteristics (Gigabit
// Ethernet TCP, Myrinet2000 with GM and with Ethernet emulation, Renater
// inter-cluster links) and are the single place ablation studies tweak.
package platform

import (
	"fmt"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/simnet"
)

// Service profiles of the three stacks compared in the paper.
var (
	// PclSock is MPICH2's ft-sock channel: a thin TCP channel with small
	// per-call costs and an in-call progress engine.
	PclSock = mpi.Profile{
		Name:         "pcl-sock",
		SendOverhead: 2 * time.Microsecond,
		RecvOverhead: 2 * time.Microsecond,
		CopyBW:       800e6, // one user/kernel copy each way
		CkptSteal:    0.45,  // fork'd clone + pipelined send on a fully booked node
	}
	// PclNemesis is MPICH2's Nemesis channel over GM: minimal software
	// overhead (the network speed difference lives in the topology).
	PclNemesis = mpi.Profile{
		Name:         "pcl-nemesis-gm",
		SendOverhead: time.Microsecond,
		RecvOverhead: time.Microsecond,
		CopyBW:       2e9,  // GM does zero-copy transfers for large messages
		CkptSteal:    0.45, // the checkpoint pipeline is the same as ft-sock's
	}
	// Vcl is MPICH-V's ch_v device: every message crosses a separate
	// communication daemon through two Unix sockets — extra per-message
	// latency and copies, but markers are handled asynchronously even
	// while the application computes.
	Vcl = mpi.Profile{
		Name:          "vcl-daemon",
		SendOverhead:  4 * time.Microsecond,
		RecvOverhead:  4 * time.Microsecond,
		CopyBW:        800e6,
		DaemonLatency: 30 * time.Microsecond,
		DaemonCopyBW:  400e6, // two extra Unix-socket copies in the daemon
		CkptSteal:     0.15,  // the daemon owns the pipeline and paces itself
		ShipBW:        60e6,  // single-threaded daemon interleaves shipping with messages
		Async:         true,
	}
)

// Link characteristics.
const (
	gigEBW      = 112e6 // usable TCP throughput on Gigabit Ethernet
	gigELatency = 45 * time.Microsecond

	myriGMBW       = 230e6 // Myrinet2000 with native GM
	myriGMLatency  = 7 * time.Microsecond
	myriTCPBW      = 160e6 // Ethernet emulation over Myri2000 (MX)
	myriTCPLatency = 35 * time.Microsecond

	wanLatency = 4500 * time.Microsecond // two orders above intra-cluster
	// Effective per-site WAN capacity: the 1 Gb/s Renater access link is
	// shared with other traffic; sustained MPI throughput per site is a
	// fraction of line rate, and it is what congests the boundary
	// exchanges of large grid runs (the paper's 529-process slowdown).
	wanBW      = 30e6
	wanFlowCap = 6e6 // single-stream TCP on a high-RTT path (~20x slower)
)

// EthernetCluster is the Orsay-like Gigabit-Ethernet cluster (the paper's
// cluster testbed has 216 nodes; pass a larger count only for what-if
// studies).
func EthernetCluster(nodes int) simnet.Topology {
	return simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "orsay", Nodes: nodes, NICBW: gigEBW, Latency: gigELatency,
	}}}
}

// MyrinetGM is the Bordeaux Myrinet2000 cluster seen through native GM
// (the Nemesis channel).
func MyrinetGM(nodes int) simnet.Topology {
	return simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "bordeaux-gm", Nodes: nodes, NICBW: myriGMBW, Latency: myriGMLatency,
	}}}
}

// MyrinetTCP is the same cluster through the MX Ethernet emulation (the
// TCP stacks: Pcl/sock and Vcl).
func MyrinetTCP(nodes int) simnet.Topology {
	return simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "bordeaux-tcp", Nodes: nodes, NICBW: myriTCPBW, Latency: myriTCPLatency,
	}}}
}

// grid5000Clusters lists the six homogeneous Opteron-248 clusters the
// paper selects (§5.1).
var grid5000Clusters = []simnet.ClusterSpec{
	{Name: "bordeaux", Nodes: 48, NICBW: gigEBW, Latency: gigELatency},
	{Name: "lille", Nodes: 53, NICBW: gigEBW, Latency: gigELatency},
	{Name: "orsay", Nodes: 216, NICBW: gigEBW, Latency: gigELatency},
	{Name: "rennes", Nodes: 64, NICBW: gigEBW, Latency: gigELatency},
	{Name: "sophia", Nodes: 105, NICBW: gigEBW, Latency: gigELatency},
	{Name: "toulouse", Nodes: 58, NICBW: gigEBW, Latency: gigELatency},
}

// Grid5000 is the six-cluster grid topology.
func Grid5000() simnet.Topology {
	return simnet.Topology{
		Clusters:   grid5000Clusters,
		WanLatency: wanLatency,
		WanBW:      wanBW,
		WanFlowCap: wanFlowCap,
	}
}

// GridLayout is a placement over the grid: compute ranks fill clusters in
// order, skipping per-cluster reserved nodes that host the checkpoint
// servers, so every process stores its image on a server in its own
// cluster — the paper's "each node used a local machine as its checkpoint
// server".
type GridLayout struct {
	Topo        simnet.Topology
	Placement   func(rank int) int
	ServerNodes []int
	ServerOf    func(rank int) int
	ServiceNode int
	Servers     int
}

// Grid5000Layout reserves serversPerCluster server nodes in each cluster
// and places np ranks (ppn per node) on the remaining nodes.
func Grid5000Layout(np, ppn, serversPerCluster int) (GridLayout, error) {
	topo := Grid5000()
	if ppn <= 0 {
		ppn = 1
	}
	var (
		computeNodes  []int
		serverNodes   []int
		clusterOfNode = map[int]int{}
		base          int
	)
	for ci, c := range topo.Clusters {
		reserve := serversPerCluster
		if ci == len(topo.Clusters)-1 {
			reserve++ // one extra reserved node hosts the scheduler/dispatcher
		}
		if reserve >= c.Nodes {
			return GridLayout{}, fmt.Errorf("platform: cluster %s too small for %d reserved nodes", c.Name, reserve)
		}
		for i := 0; i < c.Nodes-reserve; i++ {
			computeNodes = append(computeNodes, base+i)
			clusterOfNode[base+i] = ci
		}
		for s := 0; s < serversPerCluster; s++ {
			serverNodes = append(serverNodes, base+c.Nodes-reserve+s)
		}
		base += c.Nodes
	}
	needNodes := (np + ppn - 1) / ppn
	if needNodes > len(computeNodes) {
		return GridLayout{}, fmt.Errorf("platform: %d processes at %d per node need %d nodes, grid has %d compute nodes",
			np, ppn, needNodes, len(computeNodes))
	}
	placement := func(rank int) int { return computeNodes[rank/ppn] }
	serverOf := func(rank int) int {
		ci := clusterOfNode[placement(rank)]
		return ci*serversPerCluster + rank%serversPerCluster
	}
	return GridLayout{
		Topo:        topo,
		Placement:   placement,
		ServerNodes: serverNodes,
		ServerOf:    serverOf,
		ServiceNode: topo.TotalNodes() - 1,
		Servers:     len(serverNodes),
	}, nil
}
