package span

import (
	"encoding/json"
	"fmt"
	"io"

	"ftckpt/internal/sim"
)

// Breakdown splits a stretch of virtual time into the phases of the
// paper's cost decomposition.  All values are integer virtual nanoseconds;
// a rank's breakdown sums exactly to the run's completion time.
type Breakdown struct {
	// Compute is time spent running the application — the remainder once
	// every overhead phase is accounted.
	Compute sim.Time `json:"compute_ns"`
	// Coordination is time waiting on another endpoint's checkpoint
	// marker: the flight of the marker that pulled the rank into a wave.
	Coordination sim.Time `json:"coordination_ns"`
	// Freeze is Pcl's blocked-send window: channels frozen between the
	// flush and the local checkpoint.
	Freeze sim.Time `json:"freeze_ns"`
	// Logging is time shipping logged in-transit payloads (Vcl channel
	// state, mlog pessimistic logs) to the checkpoint servers.
	Logging sim.Time `json:"logging_ns"`
	// ImageTransfer is time a checkpoint image of the rank was in flight
	// to a server (the fork-and-pipeline background store).
	ImageTransfer sim.Time `json:"image_transfer_ns"`
	// QuorumWait is the replication tail: first replica stored, last
	// replica (the write quorum) still outstanding.
	QuorumWait sim.Time `json:"quorum_wait_ns"`
	// Drain is the storage hierarchy's background push: a staged image in
	// flight from the node buffer to the servers or from the servers to
	// the PFS.  Off the commit path, but it contends for the network.
	Drain sim.Time `json:"drain_ns"`
	// Detection is the heartbeat detector's latency: component dead,
	// dispatcher not yet aware.
	Detection sim.Time `json:"detection_ns"`
	// Rollback is recovery up to the image fetch: kill to restart, minus
	// the replay share below.
	Rollback sim.Time `json:"rollback_ns"`
	// Repair is the in-job (ULFM) recovery window: communicator revoked,
	// world shrunk, spare spliced in, endpoints rebound, execution resumed
	// — the survivable alternative to Rollback.
	Repair sim.Time `json:"repair_ns"`
	// Replay is the log-replay share of the restart window, in proportion
	// to replayed-log bytes vs. fetched image bytes.
	Replay sim.Time `json:"replay_ns"`
}

// addPhase adds d to the phase with the given index.
func (b *Breakdown) addPhase(phase int, d sim.Time) {
	switch phase {
	case phaseCompute:
		b.Compute += d
	case phaseCoordination:
		b.Coordination += d
	case phaseFreeze:
		b.Freeze += d
	case phaseLogging:
		b.Logging += d
	case phaseImage:
		b.ImageTransfer += d
	case phaseQuorum:
		b.QuorumWait += d
	case phaseDrain:
		b.Drain += d
	case phaseDetection:
		b.Detection += d
	case phaseRollback:
		b.Rollback += d
	case phaseRepair:
		b.Repair += d
	case phaseReplay:
		b.Replay += d
	}
}

// accum adds another breakdown field-wise.
func (b *Breakdown) accum(o Breakdown) {
	b.Compute += o.Compute
	b.Coordination += o.Coordination
	b.Freeze += o.Freeze
	b.Logging += o.Logging
	b.ImageTransfer += o.ImageTransfer
	b.QuorumWait += o.QuorumWait
	b.Drain += o.Drain
	b.Detection += o.Detection
	b.Rollback += o.Rollback
	b.Repair += o.Repair
	b.Replay += o.Replay
}

// Total sums every phase.
func (b Breakdown) Total() sim.Time {
	return b.Compute + b.Coordination + b.Freeze + b.Logging +
		b.ImageTransfer + b.QuorumWait + b.Drain + b.Detection +
		b.Rollback + b.Repair + b.Replay
}

// Overhead sums every phase except compute.
func (b Breakdown) Overhead() sim.Time { return b.Total() - b.Compute }

// phaseList enumerates (name, value) pairs in display order.
func (b Breakdown) phaseList() []struct {
	Name string
	V    sim.Time
} {
	return []struct {
		Name string
		V    sim.Time
	}{
		{"compute", b.Compute},
		{"coordination", b.Coordination},
		{"freeze", b.Freeze},
		{"logging", b.Logging},
		{"image-transfer", b.ImageTransfer},
		{"quorum-wait", b.QuorumWait},
		{"drain", b.Drain},
		{"detection", b.Detection},
		{"rollback", b.Rollback},
		{"repair", b.Repair},
		{"replay", b.Replay},
	}
}

// Attribution is the per-phase overhead attribution of one finished run.
type Attribution struct {
	Protocol   string   `json:"protocol"`
	NP         int      `json:"np"`
	Completion sim.Time `json:"completion_ns"`
	// Aggregate sums the per-rank breakdowns (NP × Completion in total).
	Aggregate Breakdown `json:"aggregate"`
	// CriticalPath is the breakdown of the longest causal chain ending at
	// the last rank to finish; it sums to Completion exactly.
	CriticalPath Breakdown `json:"critical_path"`
	// CriticalRank is the rank whose finish anchors the critical path;
	// CriticalHops counts marker edges the path crosses between ranks.
	CriticalRank int `json:"critical_rank"`
	CriticalHops int `json:"critical_hops"`
	// Ranks are the per-rank breakdowns, indexed by rank.
	Ranks []Breakdown `json:"ranks"`
}

// Check verifies the conservation invariant: every per-rank breakdown and
// the critical path sum exactly to the completion time, with no negative
// phase.  A nil error is the structural guarantee the attribution rests
// on; a non-nil error means the event stream violated the span model.
func (a *Attribution) Check() error {
	if a == nil {
		return fmt.Errorf("span: nil attribution")
	}
	check := func(who string, b Breakdown) error {
		for _, p := range b.phaseList() {
			if p.V < 0 {
				return fmt.Errorf("span: %s: negative %s phase (%d ns)", who, p.Name, p.V)
			}
		}
		if got := b.Total(); got != a.Completion {
			return fmt.Errorf("span: %s: phases sum to %d ns, completion is %d ns (leak %d ns)",
				who, got, a.Completion, a.Completion-got)
		}
		return nil
	}
	for r, b := range a.Ranks {
		if err := check(fmt.Sprintf("rank %d", r), b); err != nil {
			return err
		}
	}
	// The critical path conserves under Merge too: each run's path sums to
	// its completion, and both sides accumulate.
	return check("critical path", a.CriticalPath)
}

// WriteJSON writes the attribution as an indented JSON document.  Struct
// field order fixes the layout, so identical attributions produce
// byte-identical documents.
func (a *Attribution) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(a)
}

// WriteTable renders the attribution as an aligned text table: aggregate
// and critical-path columns, one row per phase, with percentages of the
// respective totals.
func (a *Attribution) WriteTable(w io.Writer) error {
	agg, cp := a.Aggregate.phaseList(), a.CriticalPath.phaseList()
	aggTotal, cpTotal := a.Aggregate.Total(), a.CriticalPath.Total()
	if _, err := fmt.Fprintf(w, "attribution: protocol=%s np=%d completion=%v critical-rank=%d hops=%d\n",
		a.Protocol, a.NP, a.Completion, a.CriticalRank, a.CriticalHops); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-16s %22s %8s %22s %8s\n",
		"phase", "aggregate", "", "critical path", ""); err != nil {
		return err
	}
	for i := range agg {
		if _, err := fmt.Fprintf(w, "  %-16s %22v %7.2f%% %22v %7.2f%%\n",
			agg[i].Name, agg[i].V, pct(agg[i].V, aggTotal), cp[i].V, pct(cp[i].V, cpTotal)); err != nil {
			return err
		}
	}
	return nil
}

func pct(v, total sim.Time) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(v) / float64(total)
}

// Merge folds another run's attribution into this one field-wise — the
// deterministic sweep reduction: fold per-point attributions in input
// order, like obs.Metrics.Merge.  Completion accumulates; the critical
// path and per-rank breakdowns accumulate when shapes match (same NP).
func (a *Attribution) Merge(o *Attribution) {
	if a == nil || o == nil {
		return
	}
	if a.NP == 0 && a.Completion == 0 {
		// First fold into a zero accumulator adopts the run's shape.
		a.Protocol, a.NP, a.CriticalRank = o.Protocol, o.NP, o.CriticalRank
		a.Ranks = make([]Breakdown, len(o.Ranks))
	} else if a.Protocol != o.Protocol {
		a.Protocol = "mixed"
	}
	a.Completion += o.Completion
	a.Aggregate.accum(o.Aggregate)
	a.CriticalPath.accum(o.CriticalPath)
	a.CriticalHops += o.CriticalHops
	if len(a.Ranks) == len(o.Ranks) {
		for i := range a.Ranks {
			a.Ranks[i].accum(o.Ranks[i])
		}
	} else {
		// Mixed system sizes: per-rank identity is gone, and stale partial
		// rank sums would fake a conservation leak — drop to the aggregate
		// and critical-path views, which conserve under any merge.
		a.Ranks, a.NP = nil, 0
	}
}
