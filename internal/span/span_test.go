package span

import (
	"bytes"
	"testing"

	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

func TestIvalsAdd(t *testing.T) {
	var v ivals
	v.add(10, 20)
	v.add(30, 40)
	if len(v) != 2 || v.total() != 20 {
		t.Fatalf("disjoint adds: %v total %d", v, v.total())
	}
	v.add(15, 35) // bridges both
	if len(v) != 1 || v[0] != (ival{10, 40}) {
		t.Fatalf("bridge merge: %v", v)
	}
	v.add(5, 10) // adjacent on the left
	if len(v) != 1 || v[0] != (ival{5, 40}) {
		t.Fatalf("adjacent merge: %v", v)
	}
	v.add(50, 50) // empty
	v.add(60, 55) // inverted
	if len(v) != 1 {
		t.Fatalf("empty/inverted not dropped: %v", v)
	}
	v.add(1, 2) // out-of-order insert before everything
	if len(v) != 2 || v[0] != (ival{1, 2}) {
		t.Fatalf("out-of-order insert: %v", v)
	}
	if v.total() != 36 {
		t.Fatalf("total: got %d, want 36", v.total())
	}
}

func TestIvalsAddContained(t *testing.T) {
	var v ivals
	v.add(0, 100)
	v.add(10, 20) // fully inside
	if len(v) != 1 || v[0] != (ival{0, 100}) {
		t.Fatalf("contained add changed the set: %v", v)
	}
}

// TestPartitionPrecedence overlaps a freeze window with an image transfer
// and checks the freeze claims the overlap while the rest stays image.
func TestPartitionPrecedence(t *testing.T) {
	rs := &rankState{}
	rs.image.add(10, 50)
	rs.freeze.add(30, 60)
	segs := partition(rs, 100)
	var freeze, image, compute sim.Time
	var sum sim.Time
	for _, sg := range segs {
		d := sg.End - sg.Start
		sum += d
		switch sg.Phase {
		case phaseFreeze:
			freeze += d
		case phaseImage:
			image += d
		case phaseCompute:
			compute += d
		}
	}
	if sum != 100 {
		t.Fatalf("segments do not cover the timeline: %d", sum)
	}
	if freeze != 30 || image != 20 || compute != 50 {
		t.Fatalf("precedence split: freeze=%d image=%d compute=%d", freeze, image, compute)
	}
}

// TestPartitionCoordinationYields checks coordination outranks image
// transfer but yields to freeze.
func TestPartitionCoordinationYields(t *testing.T) {
	rs := &rankState{}
	rs.coord = []coordIval{{Start: 0, End: 40, Src: 2}}
	rs.freeze.add(0, 10)
	rs.image.add(20, 30)
	segs := partition(rs, 40)
	want := []segment{
		{0, 10, phaseFreeze, -1},
		{10, 40, phaseCoordination, 2},
	}
	if len(segs) != len(want) {
		t.Fatalf("segments: got %v, want %v", segs, want)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d: got %v, want %v", i, segs[i], want[i])
		}
	}
}

// synthetic event helper
func ev(typ obs.EventType, at sim.Time, rank int) obs.Event {
	return obs.Event{Type: typ, T: at, Rank: rank, Wave: 1, Channel: -1, Node: -1, Server: -1}
}

// TestBuilderEndToEnd drives a synthetic two-rank pcl-style stream through
// the builder: marker flight, freeze, image store, kill and restart with
// replay, and checks conservation plus the expected phases.
func TestBuilderEndToEnd(t *testing.T) {
	b := NewBuilder(2, "pcl")

	// Rank 0 initiates; its marker (span 7) pulls rank 1 into the wave.
	ms := ev(obs.EvMarkerSent, 100, 0)
	ms.Span = 7
	b.Emit(ms)
	ck := ev(obs.EvLocalCkptBegin, 160, 1)
	ck.Cause = 7
	b.Emit(ck)
	mr := ev(obs.EvMarkerRecv, 160, 1)
	mr.Span = 7
	b.Emit(mr)

	// Rank 1 freezes, stores an image of 1000 bytes, unfreezes.
	b.Emit(ev(obs.EvChannelBlocked, 160, 1))
	st := ev(obs.EvImageStoreBegin, 200, 1)
	st.Server, st.Bytes = 0, 1000
	b.Emit(st)
	se := ev(obs.EvImageStoreEnd, 300, 1)
	se.Server = 0
	b.Emit(se)
	b.Emit(ev(obs.EvChannelUnblocked, 320, 1))

	// A failure: coordinated protocols roll everyone back.  Restart
	// fetches images over [500, 700]; rank 1 replays 1000 bytes of logs
	// (equal to its image bytes, so the split lands mid-window).
	b.Emit(ev(obs.EvRankKilled, 400, 0))
	b.Emit(ev(obs.EvRestartBegin, 500, -1))
	b.Emit(ev(obs.EvRestartEnd, 700, -1))
	rp := ev(obs.EvMessageReplayed, 700, 1)
	rp.Bytes = 1000
	b.Emit(rp)

	done0 := ev(obs.EvRankDone, 950, 0)
	b.Emit(done0)
	done1 := ev(obs.EvRankDone, 1000, 1)
	b.Emit(done1)

	a := b.Finalize(1000)
	if err := a.Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	if a.CriticalRank != 1 {
		t.Fatalf("critical rank: got %d, want 1", a.CriticalRank)
	}
	r1 := a.Ranks[1]
	if r1.Coordination != 60 {
		t.Errorf("rank1 coordination: got %d, want 60", r1.Coordination)
	}
	// Freeze [160,320) minus the rollback overlap: rollback [400,700)
	// does not overlap, so the full 160ns of freeze minus the
	// coordination overlap... coordination ended at 160, so freeze keeps
	// [160,320) entirely.
	if r1.Freeze != 160 {
		t.Errorf("rank1 freeze: got %d, want 160", r1.Freeze)
	}
	// Rollback [400, 600) and replay [600, 700): equal byte shares split
	// the restart window [500, 700) at 600.
	if r1.Rollback != 200 || r1.Replay != 100 {
		t.Errorf("rank1 rollback/replay: got %d/%d, want 200/100", r1.Rollback, r1.Replay)
	}
	// Rank 0 (no replay bytes) carries the whole episode as rollback.
	if r0 := a.Ranks[0]; r0.Rollback != 300 || r0.Replay != 0 {
		t.Errorf("rank0 rollback/replay: got %d/%d, want 300/0", r0.Rollback, r0.Replay)
	}
	// Image transfer was swallowed by the freeze window (freeze takes
	// precedence), so rank 1 reports zero image time here.
	if r1.ImageTransfer != 0 {
		t.Errorf("rank1 image: got %d, want 0 (freeze precedence)", r1.ImageTransfer)
	}
}

// TestBuilderCriticalPathHop builds two ranks where the last finisher
// spent its start waiting on the other's marker, and checks the walker
// hops across the coordination edge.
func TestBuilderCriticalPathHop(t *testing.T) {
	b := NewBuilder(2, "vcl")
	ms := ev(obs.EvMarkerSent, 50, 0)
	ms.Span = 3
	b.Emit(ms)
	ck := ev(obs.EvLocalCkptBegin, 200, 1)
	ck.Cause = 3
	b.Emit(ck)
	b.Emit(ev(obs.EvRankDone, 900, 0))
	b.Emit(ev(obs.EvRankDone, 1000, 1))
	a := b.Finalize(1000)
	if err := a.Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	if a.CriticalRank != 1 || a.CriticalHops != 1 {
		t.Fatalf("critical path: rank=%d hops=%d, want rank=1 hops=1", a.CriticalRank, a.CriticalHops)
	}
	if a.CriticalPath.Coordination != 150 {
		t.Errorf("critical coordination: got %d, want 150", a.CriticalPath.Coordination)
	}
}

// TestBuilderQuorumWindow stores two replicas of one image and checks the
// gap between the replica completions is quorum wait.
func TestBuilderQuorumWindow(t *testing.T) {
	b := NewBuilder(1, "pcl")
	for srv, win := range [][2]sim.Time{{100, 200}, {100, 260}} {
		sb := ev(obs.EvImageStoreBegin, win[0], 0)
		sb.Server, sb.Bytes = srv, 500
		sb.Span = uint64(10 + srv)
		b.Emit(sb)
		se := ev(obs.EvImageStoreEnd, win[1], 0)
		se.Server = srv
		se.Span = uint64(10 + srv)
		b.Emit(se)
	}
	a := b.Finalize(1000)
	if err := a.Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	r := a.Ranks[0]
	// [100,200) is image transfer for both replicas; [200,260) is the
	// second replica's tail — image transfer by interval, but quorum wait
	// outranks nothing here: quorum [200,260) loses to image [100,260).
	// Precedence: quorum(5) < image(6), so quorum claims [200,260).
	if r.ImageTransfer != 100 || r.QuorumWait != 60 {
		t.Errorf("image/quorum: got %d/%d, want 100/60", r.ImageTransfer, r.QuorumWait)
	}
}

// TestBuilderDetectionWindow pairs component death with the heartbeat
// verdict.
func TestBuilderDetectionWindow(t *testing.T) {
	b := NewBuilder(1, "mlog")
	b.Emit(ev(obs.EvComponentDead, 100, 0))
	b.Emit(ev(obs.EvHeartbeatTimeout, 400, 0))
	a := b.Finalize(1000)
	if err := a.Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	if a.Ranks[0].Detection != 300 {
		t.Errorf("detection: got %d, want 300", a.Ranks[0].Detection)
	}
}

// TestBuilderDegradedKill checks a kill with no restart rolls back to the
// horizon without breaking conservation.
func TestBuilderDegradedKill(t *testing.T) {
	b := NewBuilder(2, "pcl")
	b.Emit(ev(obs.EvRankKilled, 600, 1))
	a := b.Finalize(1000)
	if err := a.Check(); err != nil {
		t.Fatalf("conservation: %v", err)
	}
	for r := 0; r < 2; r++ {
		if a.Ranks[r].Rollback != 400 {
			t.Errorf("rank %d rollback: got %d, want 400", r, a.Ranks[r].Rollback)
		}
	}
}

func TestAttributionMergeSameShape(t *testing.T) {
	mk := func(c sim.Time) *Attribution {
		a := &Attribution{Protocol: "pcl", NP: 2, Completion: c, CriticalRank: 0,
			Ranks: make([]Breakdown, 2)}
		for i := range a.Ranks {
			a.Ranks[i].Compute = c
			a.Aggregate.Compute += c
		}
		a.CriticalPath.Compute = c
		return a
	}
	var acc Attribution
	acc.Merge(mk(100))
	acc.Merge(mk(50))
	if err := acc.Check(); err != nil {
		t.Fatalf("merged conservation: %v", err)
	}
	if acc.Completion != 150 || acc.NP != 2 || len(acc.Ranks) != 2 {
		t.Fatalf("merged shape: %+v", acc)
	}
}

func TestAttributionMergeMixedShape(t *testing.T) {
	a := &Attribution{Protocol: "pcl", NP: 2, Completion: 100,
		Ranks: make([]Breakdown, 2)}
	a.Ranks[0].Compute, a.Ranks[1].Compute = 100, 100
	a.CriticalPath.Compute = 100
	b := &Attribution{Protocol: "vcl", NP: 4, Completion: 40,
		Ranks: make([]Breakdown, 4)}
	for i := range b.Ranks {
		b.Ranks[i].Compute = 40
	}
	b.CriticalPath.Compute = 40
	var acc Attribution
	acc.Merge(a)
	acc.Merge(b)
	if acc.Protocol != "mixed" || acc.NP != 0 || acc.Ranks != nil {
		t.Fatalf("mixed merge kept per-rank shape: %+v", acc)
	}
	if err := acc.Check(); err != nil {
		t.Fatalf("mixed merge conservation (critical path): %v", err)
	}
}

// TestWriteJSONDeterministic renders one attribution twice and compares
// bytes.
func TestWriteJSONDeterministic(t *testing.T) {
	b := NewBuilder(2, "vcl")
	ms := ev(obs.EvMarkerSent, 50, 0)
	ms.Span = 3
	b.Emit(ms)
	ck := ev(obs.EvLocalCkptBegin, 200, 1)
	ck.Cause = 3
	b.Emit(ck)
	a := b.Finalize(1000)
	var one, two bytes.Buffer
	if err := a.WriteJSON(&one); err != nil {
		t.Fatal(err)
	}
	if err := a.WriteJSON(&two); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one.Bytes(), two.Bytes()) {
		t.Fatal("attribution JSON not byte-stable")
	}
}
