// Package span is the causal tracer of the runtime: a Sink that links the
// flat obs event stream back into spans (marker flights, freeze windows,
// checkpoint waves, image and log transfers, detection/rollback/replay
// episodes) connected by the cause edges the instrumented layers stamp on
// events (Event.Span / Event.Cause).  On top of the reassembled DAG it
// computes the per-phase overhead attribution the paper's analysis calls
// for: a conservation-checked breakdown of virtual completion time into
// compute, coordination, freeze, logging, image transfer, hierarchy
// drain, quorum wait, detection latency, rollback and replay — per rank,
// aggregated, and along the run's critical path specifically.
//
// The conservation invariant is structural, not statistical: every rank's
// timeline [0, completion] is partitioned exactly once, with overlapping
// phase windows resolved by a fixed precedence (detection > rollback >
// repair > replay > freeze > coordination > drain > quorum wait > image
// transfer > logging) and compute defined as the remainder, so the
// per-rank breakdown
// sums to the completion time by construction, in integer nanoseconds.
// Check re-verifies the invariant on a finished Attribution.
//
// Everything here is deterministic: the builder's output is a pure
// function of the event stream, and the stream itself is a pure function
// of the seed, so repeated runs — and sweeps at any -jobs value, since
// each run owns its hub and builder — produce byte-identical reports.
package span

import (
	"sort"

	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// Phase indices of the attribution breakdown, in precedence order:
// when two phase windows overlap on one rank's timeline, the
// lower-numbered phase claims the overlap.
const (
	phaseDetection = iota
	phaseRollback
	phaseRepair // in-job (ULFM) repair window: revoke → shrink → resume
	phaseReplay
	phaseFreeze
	phaseCoordination
	phaseDrain // storage-hierarchy drain (buffer→servers, servers→PFS)
	phaseQuorum
	phaseImage
	phaseLogging
	phaseCompute // remainder; never carries intervals
	numPhases
)

// ival is one half-open virtual-time interval [Start, End).
type ival struct {
	Start, End sim.Time
}

// ivals is a sorted, disjoint interval set maintained by insert-merge.
type ivals []ival

// add unions [s, e) into the set.  Empty and inverted intervals are
// dropped.  The common case — s at or past the last end — is O(1).
func (v *ivals) add(s, e sim.Time) {
	if e <= s {
		return
	}
	a := *v
	// Fast path: strictly after everything present.
	if n := len(a); n == 0 || s > a[n-1].End {
		*v = append(a, ival{s, e})
		return
	}
	// First interval that could merge with [s, e): End >= s.
	i := sort.Search(len(a), func(k int) bool { return a[k].End >= s })
	if e < a[i].Start { // disjoint: insert before i
		a = append(a, ival{})
		copy(a[i+1:], a[i:])
		a[i] = ival{s, e}
		*v = a
		return
	}
	// Merge [s, e) with a[i..j].
	if s < a[i].Start {
		a[i].Start = s
	}
	if e > a[i].End {
		a[i].End = e
	}
	j := i
	for j+1 < len(a) && a[j+1].Start <= a[i].End {
		j++
		if a[j].End > a[i].End {
			a[i].End = a[j].End
		}
	}
	*v = append(a[:i+1], a[j+1:]...)
}

// total is the summed length of the set.
func (v ivals) total() sim.Time {
	var t sim.Time
	for _, iv := range v {
		t += iv.End - iv.Start
	}
	return t
}

// coordIval is a coordination window: the flight of the marker that pulled
// a rank into a checkpoint wave, [sent, wave entry), tagged with the
// sending endpoint so the critical-path walker can hop along it.
type coordIval struct {
	Start, End sim.Time
	Src        int // marker sender: a rank, or mpi.SchedulerID / -1
}

// markerFlight is an open marker span: sent, not yet resolved to a wave
// entry.
type markerFlight struct {
	Src  int
	Sent sim.Time
}

// xfer is an open image-store or log-ship span.
type xfer struct {
	Rank  int
	Begin sim.Time
}

// xferKey identifies a transfer: by span ID when the server stamped one,
// else by the (rank, wave, server) triple legacy streams carry.
type xferKey struct {
	span               uint64
	rank, wave, server int
}

func keyOf(ev obs.Event) xferKey {
	if ev.Span != 0 {
		return xferKey{span: ev.Span}
	}
	return xferKey{rank: ev.Rank, wave: ev.Wave, server: ev.Server}
}

// rankWave keys per-checkpoint state.
type rankWave struct{ rank, wave int }

// quorumTrack follows the replica stores of one (rank, wave) image: with
// replication, the window from the first replica's completion to the
// last's is quorum wait — the rank's image is somewhere durable but the
// wave cannot commit yet.
type quorumTrack struct {
	count             int
	firstEnd, lastEnd sim.Time
}

// episode is one failure-recovery episode: kill (or first kill, when a
// restart is itself killed), restart fetch window, and the per-rank replay
// bytes that attribute the tail of the fetch window to replay.
type episode struct {
	rank         int // -1: global rollback (coordinated protocols)
	wave         int
	killT        sim.Time
	beginT, endT sim.Time
	replayBytes  map[int]int64
}

// rankState accumulates one rank's phase windows.
type rankState struct {
	freeze    ivals
	logging   ivals
	image     ivals
	drain     ivals
	quorum    ivals
	detection ivals
	rollback  ivals
	repair    ivals
	replay    ivals
	coord     []coordIval

	freezeOpen  bool
	freezeStart sim.Time
	deadSince   sim.Time // EvComponentDead time under heartbeat detection
	deadOpen    bool
	doneT       sim.Time // EvRankDone time
	doneSeen    bool

	segs []segment // filled by Finalize
}

// segment is one elementary slice of a rank's partitioned timeline.
type segment struct {
	Start, End sim.Time
	Phase      int
	Src        int // marker sender for coordination segments, else -1
}

// Builder is a Sink reassembling the event stream into phase windows.
// Attach it to the run's Hub; call Finalize once the run completed.
// All state is bounded: intervals merge on insert, open-span maps shrink
// as spans close, so NP=1024 message-logging runs do not retain one
// record per logged message.
type Builder struct {
	np    int
	proto string
	// coordinated protocols roll every rank back together, so a kill and
	// its restart window apply to all timelines, not just the victim's.
	coordinated bool

	ranks   []rankState
	markers map[uint64]markerFlight
	xfers   map[xferKey]xfer // open image stores
	ships   map[xferKey]xfer // open log shipments
	drains  map[xferKey]xfer // open hierarchy drains
	quorums map[rankWave]*quorumTrack
	imgSize map[rankWave]int64

	episodes    []*episode
	pendingKill map[int]sim.Time // rank (-1 global) → earliest kill time
	lastEp      map[int]*episode // rank (-1 global) → episode replays attach to
	open        map[int]*episode // rank (-1 global) → restart begun, not ended
	repOpen     map[int]sim.Time // rank (-1 global) → EvRepairBegin time
}

// NewBuilder returns a builder for an np-rank run of the named protocol.
func NewBuilder(np int, proto string) *Builder {
	return &Builder{
		np:          np,
		proto:       proto,
		coordinated: proto == "pcl" || proto == "vcl",
		ranks:       make([]rankState, np),
		markers:     make(map[uint64]markerFlight),
		xfers:       make(map[xferKey]xfer),
		ships:       make(map[xferKey]xfer),
		drains:      make(map[xferKey]xfer),
		quorums:     make(map[rankWave]*quorumTrack),
		imgSize:     make(map[rankWave]int64),
		pendingKill: make(map[int]sim.Time),
		lastEp:      make(map[int]*episode),
		open:        make(map[int]*episode),
		repOpen:     make(map[int]sim.Time),
	}
}

func (b *Builder) rank(r int) *rankState {
	if r < 0 || r >= b.np {
		return nil
	}
	return &b.ranks[r]
}

// Emit folds one event.  Runs in simulation context, like every Sink.
func (b *Builder) Emit(ev obs.Event) {
	switch ev.Type {
	case obs.EvMarkerSent:
		if ev.Span != 0 {
			b.markers[ev.Span] = markerFlight{Src: ev.Rank, Sent: ev.T}
		}
	case obs.EvMarkerRecv:
		// The flight span resolved; the wave-entry edge (if any) was
		// already consumed by EvLocalCkptBegin, which precedes the
		// receipt in protocol emission order.
		delete(b.markers, ev.Span)
	case obs.EvLocalCkptBegin:
		if rs := b.rank(ev.Rank); rs != nil && ev.Cause != 0 {
			if m, ok := b.markers[ev.Cause]; ok && ev.T > m.Sent {
				rs.coord = append(rs.coord, coordIval{Start: m.Sent, End: ev.T, Src: m.Src})
			}
		}
	case obs.EvChannelBlocked:
		if rs := b.rank(ev.Rank); rs != nil {
			rs.freezeOpen, rs.freezeStart = true, ev.T
		}
	case obs.EvChannelUnblocked:
		if rs := b.rank(ev.Rank); rs != nil && rs.freezeOpen {
			rs.freezeOpen = false
			rs.freeze.add(rs.freezeStart, ev.T)
		}
	case obs.EvImageStoreBegin:
		if rs := b.rank(ev.Rank); rs != nil {
			b.xfers[keyOf(ev)] = xfer{Rank: ev.Rank, Begin: ev.T}
			b.imgSize[rankWave{ev.Rank, ev.Wave}] = ev.Bytes
		}
	case obs.EvImageStoreEnd:
		if x, ok := b.xfers[keyOf(ev)]; ok {
			delete(b.xfers, keyOf(ev))
			if rs := b.rank(x.Rank); rs != nil {
				rs.image.add(x.Begin, ev.T)
			}
			q := b.quorums[rankWave{x.Rank, ev.Wave}]
			if q == nil {
				q = &quorumTrack{}
				b.quorums[rankWave{x.Rank, ev.Wave}] = q
			}
			q.count++
			if q.count == 1 || ev.T < q.firstEnd {
				q.firstEnd = ev.T
			}
			if ev.T > q.lastEnd {
				q.lastEnd = ev.T
			}
		}
	case obs.EvLogShipBegin:
		if b.rank(ev.Rank) != nil {
			b.ships[keyOf(ev)] = xfer{Rank: ev.Rank, Begin: ev.T}
		}
	case obs.EvDrainBegin:
		if b.rank(ev.Rank) != nil {
			b.drains[keyOf(ev)] = xfer{Rank: ev.Rank, Begin: ev.T}
		}
	case obs.EvDrainEnd:
		if x, ok := b.drains[keyOf(ev)]; ok {
			delete(b.drains, keyOf(ev))
			if rs := b.rank(x.Rank); rs != nil {
				rs.drain.add(x.Begin, ev.T)
			}
		}
	case obs.EvLogShipEnd:
		if x, ok := b.ships[keyOf(ev)]; ok {
			delete(b.ships, keyOf(ev))
			if rs := b.rank(x.Rank); rs != nil {
				rs.logging.add(x.Begin, ev.T)
			}
		}
	case obs.EvComponentDead:
		if rs := b.rank(ev.Rank); rs != nil {
			rs.deadSince, rs.deadOpen = ev.T, true
		}
	case obs.EvHeartbeatTimeout:
		if rs := b.rank(ev.Rank); rs != nil && rs.deadOpen {
			rs.deadOpen = false
			rs.detection.add(rs.deadSince, ev.T)
		}
	case obs.EvRankKilled:
		scope := ev.Rank
		if b.coordinated {
			scope = -1
		}
		if _, already := b.pendingKill[scope]; !already {
			b.pendingKill[scope] = ev.T
		}
		delete(b.open, scope) // a restart in progress was itself aborted
	case obs.EvRestartBegin:
		if kill, ok := b.pendingKill[ev.Rank]; ok {
			b.open[ev.Rank] = &episode{
				rank: ev.Rank, wave: ev.Wave,
				killT: kill, beginT: ev.T,
				replayBytes: make(map[int]int64),
			}
		}
	case obs.EvRestartEnd:
		if ep, ok := b.open[ev.Rank]; ok {
			delete(b.open, ev.Rank)
			delete(b.pendingKill, ev.Rank)
			ep.endT = ev.T
			b.episodes = append(b.episodes, ep)
			b.lastEp[ev.Rank] = ep
		}
	case obs.EvMessageReplayed:
		// Replays are emitted as the restarted process resumes, at the
		// restart's end time; they attach to the rank's episode — the
		// per-rank one (mlog) or the global rollback (coordinated).
		if ep, ok := b.lastEp[ev.Rank]; ok {
			ep.replayBytes[ev.Rank] += ev.Bytes
		} else if ep, ok := b.lastEp[-1]; ok {
			ep.replayBytes[ev.Rank] += ev.Bytes
		}
	case obs.EvRepairBegin:
		b.repOpen[ev.Rank] = ev.T
	case obs.EvRepairEnd, obs.EvRepairAbort:
		// An aborted repair closes its window the same way — the fallback
		// rollback-restart episode takes over from the abort time.
		if t0, ok := b.repOpen[ev.Rank]; ok {
			delete(b.repOpen, ev.Rank)
			b.addRepair(ev.Rank, t0, ev.T)
		}
	case obs.EvRankDone:
		if rs := b.rank(ev.Rank); rs != nil {
			rs.doneT, rs.doneSeen = ev.T, true
		}
	}
}

// addRepair records one in-job repair window on the affected timelines:
// every rank for a global (scope < 0) repair — all survivors park in
// AwaitRepair while the world is revoked — else the one rank being
// respawned locally.
func (b *Builder) addRepair(scope int, s, e sim.Time) {
	if scope < 0 {
		for r := range b.ranks {
			b.ranks[r].repair.add(s, e)
		}
		return
	}
	if rs := b.rank(scope); rs != nil {
		rs.repair.add(s, e)
	}
}

// Finalize partitions every rank's timeline and derives the attribution
// for a run that completed at the given virtual time.  Call once.
func (b *Builder) Finalize(completion sim.Time) *Attribution {
	// Unclosed freeze windows (a rank frozen when the job was torn down)
	// close at the horizon, like the Chrome exporter's aborted spans.
	for r := range b.ranks {
		rs := &b.ranks[r]
		if rs.freezeOpen {
			rs.freezeOpen = false
			rs.freeze.add(rs.freezeStart, completion)
		}
	}
	// A repair still open at the horizon (the job degraded mid-repair)
	// likewise closes there.  Sorted sweep for canonical order.
	rkeys := make([]int, 0, len(b.repOpen))
	for k := range b.repOpen {
		rkeys = append(rkeys, k)
	}
	sort.Ints(rkeys)
	for _, scope := range rkeys {
		b.addRepair(scope, b.repOpen[scope], completion)
	}

	// Quorum-wait windows: with replication, [first replica stored, last
	// replica stored) per image.  Sorted key sweep for determinism (the
	// union is order-independent, but stay canonical anyway).
	qkeys := make([]rankWave, 0, len(b.quorums))
	for k := range b.quorums {
		qkeys = append(qkeys, k)
	}
	sort.Slice(qkeys, func(i, j int) bool {
		if qkeys[i].rank != qkeys[j].rank {
			return qkeys[i].rank < qkeys[j].rank
		}
		return qkeys[i].wave < qkeys[j].wave
	})
	for _, k := range qkeys {
		if q := b.quorums[k]; q.count >= 2 {
			if rs := b.rank(k.rank); rs != nil {
				rs.quorum.add(q.firstEnd, q.lastEnd)
			}
		}
	}

	// Recovery episodes: rollback from the kill to the restart's end,
	// with the tail of the fetch window re-attributed to replay in
	// proportion to the replayed-log bytes vs. the image bytes the same
	// fetch carried (the two share one flow on the wire).
	for _, ep := range b.episodes {
		victims := []int{ep.rank}
		if ep.rank < 0 {
			victims = victims[:0]
			for r := 0; r < b.np; r++ {
				victims = append(victims, r)
			}
		}
		for _, r := range victims {
			rs := b.rank(r)
			if rs == nil {
				continue
			}
			split := ep.endT
			if rep := ep.replayBytes[r]; rep > 0 {
				img := b.imgSize[rankWave{r, ep.wave}]
				if window := ep.endT - ep.beginT; window > 0 {
					split = ep.endT - window*sim.Time(rep)/sim.Time(rep+img)
				}
			}
			rs.rollback.add(ep.killT, split)
			rs.replay.add(split, ep.endT)
		}
	}
	// A kill with no completed restart (degraded end): rollback to the
	// horizon.  Sorted sweep over the scope keys for canonical order.
	pkeys := make([]int, 0, len(b.pendingKill))
	for k := range b.pendingKill {
		pkeys = append(pkeys, k)
	}
	sort.Ints(pkeys)
	for _, scope := range pkeys {
		kill := b.pendingKill[scope]
		victims := []int{scope}
		if scope < 0 {
			victims = victims[:0]
			for r := 0; r < b.np; r++ {
				victims = append(victims, r)
			}
		}
		for _, r := range victims {
			if rs := b.rank(r); rs != nil {
				rs.rollback.add(kill, completion)
			}
		}
	}

	a := &Attribution{
		Protocol:     b.proto,
		NP:           b.np,
		Completion:   completion,
		Ranks:        make([]Breakdown, b.np),
		CriticalRank: -1,
	}
	for r := range b.ranks {
		rs := &b.ranks[r]
		rs.segs = partition(rs, completion)
		bd := &a.Ranks[r]
		for _, sg := range rs.segs {
			bd.addPhase(sg.Phase, sg.End-sg.Start)
		}
		a.Aggregate.accum(*bd)
	}

	// Critical path: start from the last rank to finish (ties: lowest
	// rank), walk its timeline backwards, and on a coordination segment —
	// time spent waiting for another endpoint's marker — hop to the
	// sending rank at the segment's start.
	last, lastT := -1, sim.Time(-1)
	for r := range b.ranks {
		rs := &b.ranks[r]
		if rs.doneSeen && rs.doneT > lastT {
			last, lastT = r, rs.doneT
		}
	}
	if last < 0 && b.np > 0 {
		last = 0
	}
	a.CriticalRank = last
	if last >= 0 {
		cur, t := last, completion
		for t > 0 {
			sg := segAt(b.ranks[cur].segs, t)
			a.CriticalPath.addPhase(sg.Phase, t-sg.Start)
			t = sg.Start
			if sg.Phase == phaseCoordination && sg.Src >= 0 && sg.Src < b.np && sg.Src != cur {
				cur = sg.Src
				a.CriticalHops++
			}
		}
	}
	return a
}

// segAt returns the segment containing (t-1, t].  Segments partition
// [0, completion], so the lookup always succeeds for 0 < t ≤ completion.
func segAt(segs []segment, t sim.Time) segment {
	i := sort.Search(len(segs), func(k int) bool { return segs[k].End >= t })
	return segs[i]
}

// partition slices [0, total] into maximal segments of constant phase,
// resolving overlaps by phase precedence and filling gaps with compute.
func partition(rs *rankState, total sim.Time) []segment {
	type src struct {
		set ivals
		phs int
	}
	sets := []src{
		{rs.detection, phaseDetection},
		{rs.rollback, phaseRollback},
		{rs.repair, phaseRepair},
		{rs.replay, phaseReplay},
		{rs.freeze, phaseFreeze},
		// Drain outranks the quorum/image windows of the server stores it
		// contains: with staging, the background push down the hierarchy
		// is its own cost class, not image-transfer time.
		{rs.drain, phaseDrain},
		{rs.quorum, phaseQuorum},
		{rs.image, phaseImage},
		{rs.logging, phaseLogging},
	}
	// Boundary sweep: every interval edge, clipped to [0, total].
	bounds := []sim.Time{0, total}
	addB := func(t sim.Time) {
		if t > 0 && t < total {
			bounds = append(bounds, t)
		}
	}
	for _, s := range sets {
		for _, iv := range s.set {
			addB(iv.Start)
			addB(iv.End)
		}
	}
	for _, c := range rs.coord {
		addB(c.Start)
		addB(c.End)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })

	covers := func(set ivals, t sim.Time) bool {
		i := sort.Search(len(set), func(k int) bool { return set[k].End > t })
		return i < len(set) && set[i].Start <= t
	}

	var segs []segment
	prev := sim.Time(0)
	for _, bnd := range bounds {
		if bnd <= prev {
			continue
		}
		t := prev // phase is constant on [prev, bnd); probe its start
		phase, msrc := phaseCompute, -1
		for _, s := range sets {
			if covers(s.set, t) {
				phase = s.phs
				break
			}
		}
		if phase == phaseCompute || phase > phaseCoordination {
			// Coordination outranks quorum/image/logging but yields to
			// detection, rollback, replay and freeze.
			for _, c := range rs.coord {
				if c.Start <= t && t < c.End {
					phase, msrc = phaseCoordination, c.Src
					break
				}
			}
		}
		if n := len(segs); n > 0 && segs[n-1].Phase == phase && segs[n-1].Src == msrc && segs[n-1].End == prev {
			segs[n-1].End = bnd
		} else {
			segs = append(segs, segment{Start: prev, End: bnd, Phase: phase, Src: msrc})
		}
		prev = bnd
	}
	if len(segs) == 0 {
		segs = []segment{{Start: 0, End: total, Phase: phaseCompute, Src: -1}}
	}
	return segs
}
