package core

import (
	"testing"

	"ftckpt/internal/mpi"
)

func TestMarkerAndDoneConstructors(t *testing.T) {
	m := Marker(7)
	if m.Kind != mpi.KindMarker || m.Wave != 7 {
		t.Fatalf("marker %+v", m)
	}
	d := Done(3)
	if d.Kind != mpi.KindControl || d.Tag != OpCkptDone || d.Wave != 3 {
		t.Fatalf("done %+v", d)
	}
}

func TestNoneProtocolPassesEverything(t *testing.T) {
	var n None
	if n.Name() != "none" {
		t.Fatalf("name %q", n.Name())
	}
	if !n.OutPayload(&mpi.Packet{}) || !n.InPacket(&mpi.Packet{}) {
		t.Fatal("None filtered a packet")
	}
	if n.DeviceState() != nil || n.Waves() != 0 {
		t.Fatal("None carries state")
	}
	n.Start()
	n.Stop()
	n.Restore(nil, nil, 0)
}
