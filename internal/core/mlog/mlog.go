// Package mlog implements uncoordinated checkpointing with pessimistic,
// receiver-based message logging — the alternative fault-tolerance family
// the paper positions coordinated checkpointing against (§2, and the
// group's own comparison in "Improved message logging versus improved
// coordinated checkpointing for fault tolerant MPI", Cluster 2004).
//
// Under the piecewise-deterministic assumption, receptions are the only
// non-deterministic events, so logging every received message to stable
// storage before delivering it makes a single process recoverable in
// isolation: no marker waves, no global rollback.  The costs are exactly
// the ones the paper cites — every message pays a synchronous round trip
// to the checkpoint server before delivery, which "decreases the
// performance in reliable environments, such as clusters" — and the
// benefit is that a failure rolls back one process, not the world.
//
// Mechanics:
//
//   - Senders stamp every payload with a per-pair protocol sequence
//     number and keep an unacknowledged-send buffer (volatile, hence part
//     of the checkpoint image); receivers acknowledge once the message is
//     safely logged, and retransmit-after-restart plus
//     duplicate-suppression by sequence number give exactly-once
//     delivery over the lossy restart boundary.
//   - Each process checkpoints independently on its own timer; its image
//     plus the logs recorded since that image reconstruct it.
//   - Recovery restarts only the failed rank: it restores its image,
//     re-delivers the held-but-unlogged messages serialized inside the
//     image, replays the logged messages in their original arrival order,
//     and retransmits its unacknowledged sends; live peers are told to
//     retransmit theirs.
package mlog

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ftckpt/internal/core"
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// OpAck is the control opcode acknowledging that a message is logged.
const OpAck = 100

// Mlog is one process's message-logging protocol instance.
type Mlog struct {
	h        core.Host
	interval sim.Time

	wave    int
	sendSeq map[int]uint64 // next PSeq per destination
	delUpTo map[int]uint64 // highest PSeq delivered (logged) per source
	nextSeq map[int]uint64 // highest PSeq accepted into the log pipeline
	unacked map[int][]*mpi.Packet
	pending []*pendingMsg // accepted in order, waiting for the log store
	// ooo holds packets that overtook a gap (organic traffic racing a
	// retransmission after a peer restart); the retransmission fills the
	// gap and releases them in sequence.
	ooo map[int]map[uint64]*mpi.Packet

	timer   sim.EventID
	hasTick bool
	waves   int

	// LoggedMsgs counts messages logged; AcksSent the acknowledgements.
	LoggedMsgs int
	AcksSent   int
}

type pendingMsg struct {
	pkt    *mpi.Packet
	stored bool
}

// New builds an Mlog instance checkpointing every interval.
func New(h core.Host, interval sim.Time) *Mlog {
	return &Mlog{
		h:        h,
		interval: interval,
		sendSeq:  map[int]uint64{},
		delUpTo:  map[int]uint64{},
		nextSeq:  map[int]uint64{},
		unacked:  map[int][]*mpi.Packet{},
		ooo:      map[int]map[uint64]*mpi.Packet{},
	}
}

// Name returns "mlog".
func (m *Mlog) Name() string { return "mlog" }

// Waves returns the number of local (independent) checkpoints taken.
func (m *Mlog) Waves() int { return m.waves }

// Start arms the independent checkpoint timer, staggered by rank so the
// uncoordinated checkpoints do not accidentally synchronize.
func (m *Mlog) Start() {
	if m.interval > 0 {
		stagger := m.interval * sim.Time(m.h.Rank()) / sim.Time(m.h.Size())
		m.hasTick = true
		m.timer = m.h.After(m.interval+stagger, m.tick)
	}
	// Cover anything lost on the wire across our own restart.
	m.retransmitAll()
}

// Stop cancels the timer.
func (m *Mlog) Stop() {
	if m.hasTick {
		m.h.CancelTimer(m.timer)
		m.hasTick = false
	}
}

func (m *Mlog) tick() {
	m.hasTick = false
	m.checkpoint()
	if m.interval > 0 {
		m.hasTick = true
		m.timer = m.h.After(m.interval, m.tick)
	}
}

// checkpoint takes an independent local checkpoint: no coordination, no
// markers — the image alone (with the protocol state inside) plus later
// logs make this process recoverable.
func (m *Mlog) checkpoint() {
	m.wave++
	m.waves++
	w := m.wave
	now := m.h.Now()
	cs := m.h.Obs().NextSpan()
	m.h.Obs().Emit(obs.Event{Type: obs.EvLocalCkptBegin, T: now, Rank: m.h.Rank(), Wave: w, Channel: -1, Node: -1, Server: -1, Span: cs})
	m.h.Obs().Emit(obs.Event{Type: obs.EvLocalCkptEnd, T: now, Rank: m.h.Rank(), Wave: w, Channel: -1, Node: -1, Server: -1, Span: cs})
	m.h.TakeCheckpoint(w, m.DeviceState(), func() {
		// Logs older than this image are no longer needed.
		m.h.CommitWave(w)
	})
}

// OutPayload stamps and buffers every outgoing payload.
func (m *Mlog) OutPayload(p *mpi.Packet) bool {
	m.sendSeq[p.Dst]++
	p.PSeq = m.sendSeq[p.Dst]
	m.unacked[p.Dst] = append(m.unacked[p.Dst], p.Clone())
	return true
}

// InPacket logs payloads before delivery and consumes protocol acks.
func (m *Mlog) InPacket(p *mpi.Packet) bool {
	switch p.Kind {
	case mpi.KindControl:
		if p.Tag != OpAck {
			panic(fmt.Sprintf("mlog: unknown control opcode %d", p.Tag))
		}
		m.onAck(p.Src, p.PSeq)
		return false
	case mpi.KindMarker:
		panic("mlog: unexpected marker (no coordinated waves)")
	default:
		if p.Src < 0 {
			return true // service traffic is not application state
		}
		m.onPayload(p)
		return false
	}
}

// onPayload accepts payloads strictly in per-pair sequence order.
func (m *Mlog) onPayload(p *mpi.Packet) {
	switch {
	case p.PSeq <= m.delUpTo[p.Src]:
		// Duplicate of a logged message (retransmission after the ack
		// was lost): drop, but re-acknowledge.
		m.ack(p.Src, p.PSeq)
	case p.PSeq <= m.nextSeq[p.Src]:
		// Duplicate of a message still in the log pipeline: drop; the
		// ack follows when its log is stored.
	case p.PSeq == m.nextSeq[p.Src]+1:
		m.accept(p)
		// The gap may have released out-of-order successors.
		for {
			q, ok := m.ooo[p.Src][m.nextSeq[p.Src]+1]
			if !ok {
				break
			}
			delete(m.ooo[p.Src], q.PSeq)
			m.accept(q)
		}
	default:
		// Overtook a gap (organic traffic racing a retransmission after
		// a restart): hold until the gap fills.
		if m.ooo[p.Src] == nil {
			m.ooo[p.Src] = map[uint64]*mpi.Packet{}
		}
		m.ooo[p.Src][p.PSeq] = p
	}
}

// accept enqueues an in-sequence payload into the pessimistic log
// pipeline: delivery waits until the log is on stable storage.
func (m *Mlog) accept(p *mpi.Packet) {
	m.nextSeq[p.Src] = p.PSeq
	pm := &pendingMsg{pkt: p}
	m.pending = append(m.pending, pm)
	m.h.ShipLogs(m.wave, []*mpi.Packet{p}, func() {
		pm.stored = true
		m.drain()
	})
}

// drain delivers the stored prefix of the pending queue, preserving the
// original arrival order.
func (m *Mlog) drain() {
	for len(m.pending) > 0 && m.pending[0].stored {
		pm := m.pending[0]
		m.pending = m.pending[1:]
		m.deliver(pm.pkt)
	}
}

func (m *Mlog) deliver(p *mpi.Packet) {
	m.delUpTo[p.Src] = p.PSeq
	m.LoggedMsgs++
	m.h.Obs().Emit(obs.Event{Type: obs.EvMessageLogged, T: m.h.Now(), Rank: m.h.Rank(), Wave: m.wave, Channel: p.Src, Node: -1, Server: -1, Bytes: p.PayloadSize(), Seq: p.PSeq, Span: m.h.Obs().NextSpan()})
	m.h.Engine().Deliver(p)
	m.ack(p.Src, p.PSeq)
}

func (m *Mlog) ack(dst int, seq uint64) {
	m.AcksSent++
	m.h.Wire(dst, &mpi.Packet{Kind: mpi.KindControl, Tag: OpAck, PSeq: seq})
}

// onAck drops acknowledged messages (cumulative: logging is FIFO per
// pair, so acks arrive in sequence order).
func (m *Mlog) onAck(from int, seq uint64) {
	q := m.unacked[from]
	for len(q) > 0 && q[0].PSeq <= seq {
		q = q[1:]
	}
	m.unacked[from] = q
}

// PeerRestarted retransmits the unacknowledged messages to a recovered
// peer — in-flight messages died with its channels.
func (m *Mlog) PeerRestarted(rank int) {
	for _, p := range m.unacked[rank] {
		m.h.Wire(rank, p.Clone())
	}
}

func (m *Mlog) retransmitAll() {
	for dst, q := range m.unacked {
		for _, p := range q {
			m.h.Wire(dst, p.Clone())
		}
	}
}

// devState is the protocol state stored inside images.
type devState struct {
	Wave    int
	SendSeq map[int]uint64
	DelUpTo map[int]uint64
	Unacked map[int][]*mpi.Packet
	Pending []*mpi.Packet // arrived before the snapshot, log not yet stored
}

// DeviceState serializes the protocol state into the image.
func (m *Mlog) DeviceState() []byte {
	ds := devState{
		Wave:    m.wave,
		SendSeq: m.sendSeq,
		DelUpTo: m.delUpTo,
		Unacked: m.unacked,
	}
	for _, pm := range m.pending {
		ds.Pending = append(ds.Pending, pm.pkt)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ds); err != nil {
		panic(fmt.Sprintf("mlog: encoding device state: %v", err))
	}
	return buf.Bytes()
}

// Restore loads the image state and reconstructs the reception history:
// held messages from inside the image first (they arrived before every
// logged message), then the stored logs in arrival order.  Start will
// retransmit the unacknowledged sends.
func (m *Mlog) Restore(dev []byte, logs []*mpi.Packet, lastWave int) {
	var ds devState
	if len(dev) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(dev)).Decode(&ds); err != nil {
			panic(fmt.Sprintf("mlog: decoding device state: %v", err))
		}
	}
	m.wave = ds.Wave
	if m.sendSeq = ds.SendSeq; m.sendSeq == nil {
		m.sendSeq = map[int]uint64{}
	}
	if m.delUpTo = ds.DelUpTo; m.delUpTo == nil {
		m.delUpTo = map[int]uint64{}
	}
	if m.unacked = ds.Unacked; m.unacked == nil {
		m.unacked = map[int][]*mpi.Packet{}
	}
	m.pending = nil
	m.ooo = map[int]map[uint64]*mpi.Packet{}
	for _, p := range ds.Pending {
		// Already persisted by the image itself: deliver directly.
		m.deliver(p.Clone())
	}
	for _, p := range logs {
		if p.PSeq <= m.delUpTo[p.Src] {
			continue // also present in Pending (stored twice across the snapshot)
		}
		m.delUpTo[p.Src] = p.PSeq
		m.LoggedMsgs++
		m.h.Obs().Emit(obs.Event{Type: obs.EvMessageReplayed, T: m.h.Now(), Rank: m.h.Rank(),
			Wave: m.wave, Channel: p.Src, Node: -1, Server: -1, Bytes: p.PayloadSize(), Seq: p.PSeq,
			Span: m.h.Obs().NextSpan()})
		m.h.Engine().Deliver(p.Clone())
	}
	m.nextSeq = map[int]uint64{}
	for src, v := range m.delUpTo {
		m.nextSeq[src] = v
	}
}

var _ core.Protocol = (*Mlog)(nil)
var _ core.PeerAware = (*Mlog)(nil)
