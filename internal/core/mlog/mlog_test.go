package mlog

import (
	"testing"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// fakeHost records effects; log stores complete on demand.
type fakeHost struct {
	rank, size int
	k          *sim.Kernel
	eng        *mpi.Engine
	wired      []*mpi.Packet
	ckpts      []int
	commits    []int
	onLog      []func()
	onImg      []func()
}

func (h *fakeHost) Rank() int           { return h.rank }
func (h *fakeHost) Size() int           { return h.size }
func (h *fakeHost) Engine() *mpi.Engine { return h.eng }
func (h *fakeHost) Obs() *obs.Hub       { return nil }
func (h *fakeHost) Wire(dst int, p *mpi.Packet) {
	p.Dst = dst
	h.wired = append(h.wired, p)
}
func (h *fakeHost) TakeCheckpoint(wave int, dev []byte, onStored func()) {
	h.ckpts = append(h.ckpts, wave)
	h.onImg = append(h.onImg, onStored)
}
func (h *fakeHost) ShipLogs(wave int, pkts []*mpi.Packet, onStored func()) {
	h.onLog = append(h.onLog, onStored)
}
func (h *fakeHost) CommitWave(w int) { h.commits = append(h.commits, w) }
func (h *fakeHost) Now() sim.Time    { return h.k.Now() }
func (h *fakeHost) After(d sim.Time, fn func()) sim.EventID {
	return h.k.After(d, fn)
}
func (h *fakeHost) CancelTimer(id sim.EventID) { h.k.Cancel(id) }

func withEngine(t *testing.T, h *fakeHost, body func()) {
	t.Helper()
	net := simnet.New(h.k, simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "t", Nodes: 1, NICBW: 1e9, Latency: time.Microsecond,
	}}})
	fab := mpi.NewFabric(net)
	fab.Place(h.rank, 0)
	h.k.Go("host", func(lp *sim.Proc) {
		h.eng = mpi.NewEngine(h.rank, h.size, lp, mpi.Profile{}, fab)
		body()
	})
	if err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func pl(src int, seq uint64, tag int) *mpi.Packet {
	return &mpi.Packet{Src: src, Kind: mpi.KindPayload, PSeq: seq, Tag: tag, Data: []byte{byte(seq)}}
}

func acksTo(wired []*mpi.Packet, dst int) []uint64 {
	var out []uint64
	for _, p := range wired {
		if p.Kind == mpi.KindControl && p.Tag == OpAck && p.Dst == dst {
			out = append(out, p.PSeq)
		}
	}
	return out
}

// TestPessimisticDeliveryGating: a message is delivered and acknowledged
// only once its log is on stable storage, in arrival order.
func TestPessimisticDeliveryGating(t *testing.T) {
	k := sim.New(1)
	h := &fakeHost{rank: 1, size: 2, k: k}
	m := New(h, 0)
	withEngine(t, h, func() {
		m.Start()
		if m.InPacket(pl(0, 1, 5)) {
			t.Fatal("payload passed through before logging")
		}
		m.InPacket(pl(0, 2, 5))
		if len(h.onLog) != 2 {
			t.Fatalf("%d log shipments", len(h.onLog))
		}
		if len(acksTo(h.wired, 0)) != 0 {
			t.Fatal("acked before log stored")
		}
		// Second log completes first: nothing delivered (order preserved).
		h.onLog[1]()
		if m.LoggedMsgs != 0 {
			t.Fatal("out-of-order delivery")
		}
		h.onLog[0]()
		if m.LoggedMsgs != 2 {
			t.Fatalf("delivered %d", m.LoggedMsgs)
		}
		if got := acksTo(h.wired, 0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
			t.Fatalf("acks %v", got)
		}
		// Both reached the engine in order.
		if p := h.eng.Recv(0, 5); p.PSeq != 1 {
			t.Fatalf("first delivery %v", p)
		}
		if p := h.eng.Recv(0, 5); p.PSeq != 2 {
			t.Fatalf("second delivery %v", p)
		}
	})
}

// TestDuplicateSuppression: retransmitted logged messages are dropped and
// re-acknowledged; in-pipeline duplicates are dropped silently.
func TestDuplicateSuppression(t *testing.T) {
	k := sim.New(1)
	h := &fakeHost{rank: 1, size: 2, k: k}
	m := New(h, 0)
	withEngine(t, h, func() {
		m.InPacket(pl(0, 1, 5))
		h.onLog[0]() // logged + delivered + acked
		before := len(acksTo(h.wired, 0))
		m.InPacket(pl(0, 1, 5)) // retransmission of a logged message
		if got := len(acksTo(h.wired, 0)); got != before+1 {
			t.Fatalf("dup of logged message not re-acked: %d", got)
		}
		m.InPacket(pl(0, 2, 5))
		m.InPacket(pl(0, 2, 5)) // dup while still in the pipeline
		if len(h.onLog) != 2 {
			t.Fatalf("pipeline dup re-shipped: %d shipments", len(h.onLog))
		}
		if m.LoggedMsgs != 1 {
			t.Fatalf("LoggedMsgs %d", m.LoggedMsgs)
		}
	})
}

// TestOutOfOrderHold: a message that overtakes a gap waits until the gap
// fills, then everything delivers in sequence.
func TestOutOfOrderHold(t *testing.T) {
	k := sim.New(1)
	h := &fakeHost{rank: 1, size: 2, k: k}
	m := New(h, 0)
	withEngine(t, h, func() {
		m.InPacket(pl(0, 3, 5)) // overtook 1 and 2
		if len(h.onLog) != 0 {
			t.Fatal("out-of-order packet entered the pipeline")
		}
		m.InPacket(pl(0, 1, 5))
		m.InPacket(pl(0, 2, 5))
		if len(h.onLog) != 3 {
			t.Fatalf("%d shipments after gap filled", len(h.onLog))
		}
		for _, f := range h.onLog {
			f()
		}
		for want := uint64(1); want <= 3; want++ {
			if p := h.eng.Recv(0, 5); p.PSeq != want {
				t.Fatalf("delivery %v, want seq %d", p, want)
			}
		}
	})
}

// TestSenderBufferAndRetransmit: unacked sends are buffered, cumulative
// acks drop them, and PeerRestarted retransmits the rest.
func TestSenderBufferAndRetransmit(t *testing.T) {
	k := sim.New(1)
	h := &fakeHost{rank: 0, size: 2, k: k}
	m := New(h, 0)
	withEngine(t, h, func() {
		for i := 1; i <= 4; i++ {
			p := &mpi.Packet{Src: 0, Dst: 1, Kind: mpi.KindPayload, Tag: 5}
			if !m.OutPayload(p) {
				t.Fatal("mlog blocked a send")
			}
			if p.PSeq != uint64(i) {
				t.Fatalf("PSeq %d, want %d", p.PSeq, i)
			}
		}
		// Cumulative ack for 1..2.
		m.InPacket(&mpi.Packet{Src: 1, Kind: mpi.KindControl, Tag: OpAck, PSeq: 2})
		h.wired = nil
		m.PeerRestarted(1)
		if len(h.wired) != 2 || h.wired[0].PSeq != 3 || h.wired[1].PSeq != 4 {
			t.Fatalf("retransmitted %v", h.wired)
		}
	})
}

// TestDeviceStateRoundTrip: protocol state survives an image round trip
// and the restored instance replays pending + logs in order.
func TestDeviceStateRoundTrip(t *testing.T) {
	k := sim.New(1)
	h := &fakeHost{rank: 1, size: 3, k: k}
	m := New(h, 0)
	withEngine(t, h, func() {
		// Deliver seq 1; leave seq 2 pending (log store incomplete).
		m.InPacket(pl(0, 1, 5))
		h.onLog[0]()
		m.InPacket(pl(0, 2, 5))
		// Buffer an unacked send to rank 2.
		m.OutPayload(&mpi.Packet{Src: 1, Dst: 2, Kind: mpi.KindPayload, Tag: 6})
		dev := m.DeviceState()

		h2 := &fakeHost{rank: 1, size: 3, k: k}
		h2.eng = h.eng // reuse the live engine for replay delivery
		m2 := New(h2, 0)
		// Logs after the snapshot: seq 3 from rank 0.
		m2.Restore(dev, []*mpi.Packet{pl(0, 3, 5)}, 1)
		// Drain the engine: seq 1 was consumed pre-snapshot (not ours to
		// replay); 2 came from Pending, 3 from the logs.
		h.eng.Recv(0, 5) // seq 1 from the first instance's delivery
		if p := h.eng.Recv(0, 5); p.PSeq != 2 {
			t.Fatalf("pending replay %v", p)
		}
		if p := h.eng.Recv(0, 5); p.PSeq != 3 {
			t.Fatalf("log replay %v", p)
		}
		// The unacked send retransmits on Start.
		h2.wired = nil
		m2.Start()
		found := false
		for _, p := range h2.wired {
			if p.Kind == mpi.KindPayload && p.Dst == 2 && p.PSeq == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("unacked send not retransmitted: %v", h2.wired)
		}
	})
}

// TestIndependentCheckpointTimer: checkpoints fire on the private timer
// and commit the rank's own recovery line when stored.
func TestIndependentCheckpointTimer(t *testing.T) {
	k := sim.New(1)
	h := &fakeHost{rank: 1, size: 4, k: k}
	m := New(h, 10*time.Millisecond)
	withEngine(t, h, func() {
		m.Start()
		h.k.Go("clock", func(p *sim.Proc) {
			p.Advance(40 * time.Millisecond)
			for _, f := range h.onImg {
				f()
			}
			if len(h.ckpts) < 2 {
				t.Errorf("ckpts %v", h.ckpts)
			}
			if len(h.commits) != len(h.ckpts) {
				t.Errorf("commits %v vs ckpts %v", h.commits, h.ckpts)
			}
			if m.Waves() != len(h.ckpts) {
				t.Errorf("Waves %d", m.Waves())
			}
			m.Stop()
		})
	})
}
