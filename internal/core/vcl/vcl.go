// Package vcl implements the paper's non-blocking coordinated
// checkpointing protocol — MPICH-Vcl, a direct implementation of the
// Chandy–Lamport distributed snapshot algorithm (§3, §4.1).
//
// A dedicated checkpoint scheduler regularly sends markers to every MPI
// process.  When a process receives its first marker of a wave (from the
// scheduler or from a peer), it records its local state immediately — the
// fork-and-pipeline checkpoint — sends a marker on every outgoing channel,
// and keeps computing.  Every payload received on a channel after the
// local snapshot and before that channel's marker is logged by the
// communication daemon as the channel's state and shipped to the
// checkpoint server.  The process acknowledges the scheduler once its
// image and logs are stored and every peer marker has arrived; the
// scheduler commits the wave after collecting every acknowledgement.
//
// Computation is never interrupted; in exchange, every message pays the
// daemon path (modelled by the engine's service profile) and a restart
// replays the logged channel state before new traffic.
package vcl

import (
	"fmt"

	"ftckpt/internal/core"
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// Vcl is one process's non-blocking protocol instance.
type Vcl struct {
	h core.Host

	inWave      bool
	wave        int
	markerFrom  []bool
	markers     int
	logs        []*mpi.Packet
	imageStored bool
	logsStored  bool
	waves       int
	ckptSpan    uint64 // causal span of the wave's local snapshot

	// LoggedMsgs and LoggedBytes count channel-state captured across the
	// run (Fig. 1's message m).
	LoggedMsgs  int
	LoggedBytes int64
}

// New builds a Vcl process instance.
func New(h core.Host) *Vcl {
	return &Vcl{h: h, markerFrom: make([]bool, h.Size())}
}

// Name returns "vcl".
func (v *Vcl) Name() string { return "vcl" }

// Waves returns the number of local checkpoints taken.
func (v *Vcl) Waves() int { return v.waves }

// Start is a no-op: waves are driven by the scheduler.
func (v *Vcl) Start() {}

// Stop is a no-op: the process holds no timers.
func (v *Vcl) Stop() {}

// OutPayload never blocks: the non-blocking protocol lets all traffic
// flow during a wave.
func (v *Vcl) OutPayload(*mpi.Packet) bool { return true }

// InPacket consumes markers and logs in-transit payloads.
func (v *Vcl) InPacket(pkt *mpi.Packet) bool {
	switch pkt.Kind {
	case mpi.KindMarker:
		v.onMarker(pkt.Src, pkt.Wave, pkt.SpanID)
		return false
	case mpi.KindControl:
		panic(fmt.Sprintf("vcl: unexpected control packet at process: %v", pkt))
	default:
		if v.inWave && pkt.Src >= 0 && !v.markerFrom[pkt.Src] {
			// Received after the local snapshot, before the sender's
			// marker: this is channel state (message m in Fig. 1).
			v.logs = append(v.logs, pkt.Clone())
			v.LoggedMsgs++
			v.LoggedBytes += pkt.PayloadSize()
			v.h.Obs().Emit(obs.Event{Type: obs.EvMessageLogged, T: v.h.Now(), Rank: v.h.Rank(), Wave: v.wave, Channel: pkt.Src, Node: -1, Server: -1, Bytes: pkt.PayloadSize(), Span: v.h.Obs().NextSpan(), Cause: v.ckptSpan})
		}
		return true
	}
}

func (v *Vcl) onMarker(src, w int, spanID uint64) {
	if !v.inWave {
		if w <= v.wave {
			return // stale
		}
		v.beginWave(w, spanID)
	}
	if w != v.wave {
		panic(fmt.Sprintf("vcl: rank %d in wave %d got marker for wave %d", v.h.Rank(), v.wave, w))
	}
	if src == mpi.SchedulerID || src < 0 {
		return // the scheduler's marker only triggers the wave
	}
	if v.markerFrom[src] {
		return
	}
	v.markerFrom[src] = true
	v.markers++
	v.h.Obs().Emit(obs.Event{Type: obs.EvMarkerRecv, T: v.h.Now(), Rank: v.h.Rank(), Wave: w, Channel: src, Node: -1, Server: -1, Span: spanID})
	if v.markers == v.h.Size()-1 {
		v.shipLogs()
	}
}

// beginWave takes the local snapshot immediately and floods markers —
// computation continues.  cause is the flight span of the marker that
// triggered the wave (scheduler's or a peer's).
func (v *Vcl) beginWave(w int, cause uint64) {
	v.inWave = true
	v.wave = w
	v.markers = 0
	v.imageStored = false
	v.logsStored = false
	v.logs = nil
	for i := range v.markerFrom {
		v.markerFrom[i] = false
	}
	now := v.h.Now()
	hub := v.h.Obs()
	v.ckptSpan = hub.NextSpan()
	hub.Emit(obs.Event{Type: obs.EvLocalCkptBegin, T: now, Rank: v.h.Rank(), Wave: w, Channel: -1, Node: -1, Server: -1, Span: v.ckptSpan, Cause: cause})
	v.h.TakeCheckpoint(w, nil, func() {
		v.imageStored = true
		v.maybeAck(w)
	})
	v.waves++
	// The fork is immediate — computation never stops under Vcl, so the
	// snapshot begin/end collapse to the same virtual instant.
	hub.Emit(obs.Event{Type: obs.EvLocalCkptEnd, T: now, Rank: v.h.Rank(), Wave: w, Channel: -1, Node: -1, Server: -1, Span: v.ckptSpan})
	for dst := 0; dst < v.h.Size(); dst++ {
		if dst != v.h.Rank() {
			ms := hub.NextSpan()
			hub.Emit(obs.Event{Type: obs.EvMarkerSent, T: now, Rank: v.h.Rank(), Wave: w, Channel: dst, Node: -1, Server: -1, Span: ms, Cause: v.ckptSpan})
			mk := core.Marker(w)
			mk.SpanID = ms
			v.h.Wire(dst, mk)
		}
	}
	if v.h.Size() == 1 {
		v.shipLogs()
	}
}

// shipLogs runs once every peer marker has arrived: the channel state is
// complete and goes to the checkpoint server over the message connection.
func (v *Vcl) shipLogs() {
	w := v.wave
	v.h.ShipLogs(w, v.logs, func() {
		v.logsStored = true
		v.maybeAck(w)
	})
}

// maybeAck acknowledges the scheduler once both transfers finished and the
// wave's markers are all in.
func (v *Vcl) maybeAck(w int) {
	if !v.inWave || v.wave != w {
		return // a restart reset the wave meanwhile
	}
	if v.imageStored && v.logsStored && v.markers == v.h.Size()-1 {
		v.inWave = false
		v.h.Wire(mpi.SchedulerID, core.Done(w))
	}
}

// DeviceState is empty: Vcl's channel state lives on the server as logs.
func (v *Vcl) DeviceState() []byte { return nil }

// Restore replays the stored channel-state messages into the fresh engine
// before any new traffic, in stored order (per-channel FIFO preserved).
func (v *Vcl) Restore(dev []byte, logs []*mpi.Packet, lastWave int) {
	v.inWave = false
	v.ckptSpan = 0
	v.wave = lastWave
	v.logs = nil
	v.markers = 0
	for i := range v.markerFrom {
		v.markerFrom[i] = false
	}
	for _, pkt := range logs {
		v.h.Obs().Emit(obs.Event{Type: obs.EvMessageReplayed, T: v.h.Now(), Rank: v.h.Rank(),
			Wave: lastWave, Channel: pkt.Src, Node: -1, Server: -1, Bytes: pkt.PayloadSize(),
			Span: v.h.Obs().NextSpan()})
		v.h.Engine().Deliver(pkt.Clone())
	}
}

var _ core.Protocol = (*Vcl)(nil)

// Scheduler is the dedicated checkpoint scheduler of the MPICH-V runtime:
// the only entity that initiates checkpoint waves.  It is an event-driven
// service bound to the mpi.SchedulerID endpoint.
type Scheduler struct {
	fab      *mpi.Fabric
	size     int
	interval sim.Time
	k        *sim.Kernel

	wave    int
	acks    int
	timer   sim.EventID
	hasTick bool
	active  bool

	// Obs, when set, receives the scheduler's marker-broadcast events
	// (Rank = mpi.SchedulerID).
	Obs *obs.Hub

	// OnCommit is invoked with each committed wave number (wired to the
	// runtime's registry).
	OnCommit func(wave int)

	// Committed counts committed waves.
	Committed int
}

// NewScheduler places the scheduler on a node and binds its endpoint.
func NewScheduler(k *sim.Kernel, fab *mpi.Fabric, size, node int, interval sim.Time) *Scheduler {
	s := &Scheduler{fab: fab, size: size, interval: interval, k: k}
	fab.Place(mpi.SchedulerID, node)
	fab.Bind(mpi.SchedulerID, s.onPacket)
	return s
}

// Start arms the first wave timeout.
func (s *Scheduler) Start(lastWave int) {
	s.wave = lastWave
	s.acks = 0
	s.active = true
	if s.interval > 0 {
		s.arm()
	}
}

// Stop cancels the pending timeout (job end or restart in progress).
func (s *Scheduler) Stop() {
	s.active = false
	if s.hasTick {
		s.k.Cancel(s.timer)
		s.hasTick = false
	}
}

func (s *Scheduler) arm() {
	s.hasTick = true
	s.timer = s.k.After(s.interval, func() {
		s.hasTick = false
		s.initiate()
	})
}

func (s *Scheduler) initiate() {
	if !s.active {
		return
	}
	s.wave++
	s.acks = 0
	for r := 0; r < s.size; r++ {
		ms := s.Obs.NextSpan()
		s.Obs.Emit(obs.Event{Type: obs.EvMarkerSent, T: s.k.Now(), Rank: mpi.SchedulerID, Wave: s.wave, Channel: r, Node: -1, Server: -1, Span: ms})
		mk := core.Marker(s.wave)
		mk.SpanID = ms
		s.fab.Send(mpi.SchedulerID, r, mk)
	}
}

func (s *Scheduler) onPacket(p *mpi.Packet) {
	if !s.active || p.Kind != mpi.KindControl || p.Tag != core.OpCkptDone {
		return
	}
	if p.Wave != s.wave {
		return // late ack from an aborted wave
	}
	s.acks++
	if s.acks == s.size {
		s.Committed++
		if s.OnCommit != nil {
			s.OnCommit(s.wave)
		}
		if s.interval > 0 {
			s.arm()
		}
	}
}
