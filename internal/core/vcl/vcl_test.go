package vcl

import (
	"testing"
	"time"

	"ftckpt/internal/core"
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// fakeHost records protocol effects; checkpoints and log shipments
// complete on demand to exercise the acknowledgement gating.
type fakeHost struct {
	rank, size int
	k          *sim.Kernel
	eng        *mpi.Engine
	wired      []*mpi.Packet
	ckptWaves  []int
	logWaves   []int
	logged     [][]*mpi.Packet
	onImg      []func()
	onLogs     []func()
}

func (h *fakeHost) Rank() int           { return h.rank }
func (h *fakeHost) Size() int           { return h.size }
func (h *fakeHost) Engine() *mpi.Engine { return h.eng }
func (h *fakeHost) Obs() *obs.Hub       { return nil }
func (h *fakeHost) Wire(dst int, p *mpi.Packet) {
	p.Dst = dst
	h.wired = append(h.wired, p)
}
func (h *fakeHost) TakeCheckpoint(wave int, dev []byte, onStored func()) {
	h.ckptWaves = append(h.ckptWaves, wave)
	h.onImg = append(h.onImg, onStored)
}
func (h *fakeHost) ShipLogs(wave int, pkts []*mpi.Packet, onStored func()) {
	h.logWaves = append(h.logWaves, wave)
	h.logged = append(h.logged, pkts)
	h.onLogs = append(h.onLogs, onStored)
}
func (h *fakeHost) CommitWave(int) {}
func (h *fakeHost) Now() sim.Time  { return h.k.Now() }
func (h *fakeHost) After(d sim.Time, fn func()) sim.EventID {
	return h.k.After(d, fn)
}
func (h *fakeHost) CancelTimer(id sim.EventID) { h.k.Cancel(id) }

func acks(pkts []*mpi.Packet) int {
	n := 0
	for _, p := range pkts {
		if p.Kind == mpi.KindControl && p.Tag == core.OpCkptDone && p.Dst == mpi.SchedulerID {
			n++
		}
	}
	return n
}

func payload(src, dst, tag int) *mpi.Packet {
	return &mpi.Packet{Src: src, Dst: dst, Kind: mpi.KindPayload, Tag: tag, Data: []byte{byte(tag)}}
}

func withEngine(t *testing.T, h *fakeHost, body func()) {
	t.Helper()
	net := simnet.New(h.k, simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "t", Nodes: 1, NICBW: 1e9, Latency: time.Microsecond,
	}}})
	fab := mpi.NewFabric(net)
	fab.Place(h.rank, 0)
	h.k.Go("host", func(lp *sim.Proc) {
		h.eng = mpi.NewEngine(h.rank, h.size, lp, mpi.Profile{}, fab)
		body()
	})
	if err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestVclLoggingWindow checks the Chandy–Lamport channel-state rule: a
// payload is logged exactly when it arrives after the local snapshot and
// before the sender's marker — and is still delivered either way.
func TestVclLoggingWindow(t *testing.T) {
	k := sim.New(1)
	h := &fakeHost{rank: 1, size: 3, k: k}
	v := New(h)
	withEngine(t, h, func() {
		v.Start()
		// Pre-wave payload: delivered, not logged.
		if !v.InPacket(payload(0, 1, 10)) {
			t.Fatal("pre-wave payload consumed")
		}
		if v.LoggedMsgs != 0 {
			t.Fatal("pre-wave payload logged")
		}

		// Scheduler marker: snapshot immediately, markers flooded,
		// computation not interrupted.
		v.InPacket(&mpi.Packet{Src: mpi.SchedulerID, Kind: mpi.KindMarker, Wave: 1})
		if len(h.ckptWaves) != 1 || h.ckptWaves[0] != 1 {
			t.Fatalf("ckpts %v", h.ckptWaves)
		}
		markers := 0
		for _, p := range h.wired {
			if p.Kind == mpi.KindMarker {
				markers++
			}
		}
		if markers != 2 {
			t.Fatalf("flooded %d markers, want 2", markers)
		}
		if !v.OutPayload(payload(1, 0, 11)) {
			t.Fatal("non-blocking protocol delayed a send")
		}

		// In-transit message from 0 (no marker from 0 yet): logged AND delivered.
		if !v.InPacket(payload(0, 1, 12)) {
			t.Fatal("in-transit payload withheld")
		}
		if v.LoggedMsgs != 1 {
			t.Fatalf("LoggedMsgs = %d", v.LoggedMsgs)
		}

		// Marker from 0 closes channel 0; later payloads are not logged.
		v.InPacket(&mpi.Packet{Src: 0, Kind: mpi.KindMarker, Wave: 1})
		v.InPacket(payload(0, 1, 13))
		if v.LoggedMsgs != 1 {
			t.Fatal("post-marker payload logged")
		}
		// Channel 2 still open: its payloads are logged.
		v.InPacket(payload(2, 1, 14))
		if v.LoggedMsgs != 2 {
			t.Fatal("open-channel payload not logged")
		}

		// Last marker: logs ship; ack waits for both transfers.
		v.InPacket(&mpi.Packet{Src: 2, Kind: mpi.KindMarker, Wave: 1})
		if len(h.logWaves) != 1 || len(h.logged[0]) != 2 {
			t.Fatalf("logs shipped: %v (%d pkts)", h.logWaves, len(h.logged[0]))
		}
		if acks(h.wired) != 0 {
			t.Fatal("acked before transfers stored")
		}
		h.onImg[0]()
		if acks(h.wired) != 0 {
			t.Fatal("acked before logs stored")
		}
		h.onLogs[0]()
		if acks(h.wired) != 1 {
			t.Fatalf("acks = %d, want 1", acks(h.wired))
		}
		if v.Waves() != 1 {
			t.Fatalf("Waves() = %d", v.Waves())
		}
	})
}

// TestVclPeerMarkerTriggersWave: the wave can reach a process via a peer
// marker before the scheduler's own marker arrives.
func TestVclPeerMarkerTriggersWave(t *testing.T) {
	k := sim.New(1)
	h := &fakeHost{rank: 0, size: 2, k: k}
	v := New(h)
	withEngine(t, h, func() {
		v.Start()
		v.InPacket(&mpi.Packet{Src: 1, Kind: mpi.KindMarker, Wave: 1})
		if len(h.ckptWaves) != 1 {
			t.Fatalf("ckpts %v", h.ckptWaves)
		}
		// Peer marker counted: np=2 needs exactly that one marker, so the
		// (empty) logs ship immediately.
		if len(h.logWaves) != 1 {
			t.Fatalf("logs not shipped: %v", h.logWaves)
		}
		// The scheduler's own marker afterwards is a no-op.
		v.InPacket(&mpi.Packet{Src: mpi.SchedulerID, Kind: mpi.KindMarker, Wave: 1})
		if len(h.ckptWaves) != 1 {
			t.Fatal("scheduler marker re-triggered the wave")
		}
	})
}

// TestVclRestoreReplaysLogs: restored channel state is delivered into the
// fresh engine before any new traffic.
func TestVclRestoreReplaysLogs(t *testing.T) {
	k := sim.New(1)
	h := &fakeHost{rank: 1, size: 2, k: k}
	v := New(h)
	withEngine(t, h, func() {
		logs := []*mpi.Packet{
			payload(0, 1, 21),
			payload(0, 1, 22),
		}
		v.Restore(nil, logs, 5)
		// The replayed messages are in the engine, in order.
		p1 := h.eng.Recv(0, 21)
		p2 := h.eng.Recv(0, 22)
		if p1.Data[0] != 21 || p2.Data[0] != 22 {
			t.Fatalf("replayed %v %v", p1, p2)
		}
		// Wave numbering resumes after the restored wave.
		v.InPacket(&mpi.Packet{Src: mpi.SchedulerID, Kind: mpi.KindMarker, Wave: 5})
		if len(h.ckptWaves) != 0 {
			t.Fatal("stale wave accepted after restore")
		}
		v.InPacket(&mpi.Packet{Src: mpi.SchedulerID, Kind: mpi.KindMarker, Wave: 6})
		if len(h.ckptWaves) != 1 || h.ckptWaves[0] != 6 {
			t.Fatalf("ckpts %v", h.ckptWaves)
		}
	})
}

// TestSchedulerCommitCycle drives the scheduler through two waves.
func TestSchedulerCommitCycle(t *testing.T) {
	k := sim.New(1)
	net := simnet.New(k, simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "t", Nodes: 3, NICBW: 1e9, Latency: time.Microsecond,
	}}})
	fab := mpi.NewFabric(net)
	var markers []*mpi.Packet
	for r := 0; r < 2; r++ {
		r := r
		fab.Place(r, r)
		fab.Bind(r, func(p *mpi.Packet) {
			if p.Kind == mpi.KindMarker {
				markers = append(markers, p)
				// Ack immediately.
				fab.Send(r, mpi.SchedulerID, core.Done(p.Wave))
			}
		})
	}
	s := NewScheduler(k, fab, 2, 2, 10*time.Millisecond)
	var commits []int
	s.OnCommit = func(w int) {
		commits = append(commits, w)
		if len(commits) == 2 {
			s.Stop()
			k.Stop(nil)
		}
	}
	k.Go("clock", func(p *sim.Proc) {
		p.SetDaemon(true)
		s.Start(0)
		for {
			p.Advance(time.Hour)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(commits) != 2 || commits[0] != 1 || commits[1] != 2 {
		t.Fatalf("commits %v", commits)
	}
	if len(markers) != 4 {
		t.Fatalf("markers %d, want 4 (2 waves × 2 ranks)", len(markers))
	}
	if s.Committed != 2 {
		t.Fatalf("Committed = %d", s.Committed)
	}
}
