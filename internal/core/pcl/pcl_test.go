package pcl

import (
	"testing"
	"time"

	"ftckpt/internal/core"
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// fakeHost drives the protocol state machine directly, recording its
// effects — a white-box harness for the wave mechanics that the ftpm
// integration tests exercise end-to-end.
type fakeHost struct {
	rank, size int
	k          *sim.Kernel
	wired      []*mpi.Packet
	ckpts      []int
	commits    []int
	delivered  []*mpi.Packet
	eng        *mpi.Engine
	storeNow   bool // run onStored synchronously
	pending    []func()
}

func newFakeHost(k *sim.Kernel, rank, size int) *fakeHost {
	return &fakeHost{rank: rank, size: size, k: k, storeNow: true}
}

func (h *fakeHost) Rank() int           { return h.rank }
func (h *fakeHost) Size() int           { return h.size }
func (h *fakeHost) Engine() *mpi.Engine { return h.eng }
func (h *fakeHost) Obs() *obs.Hub       { return nil }
func (h *fakeHost) Wire(dst int, p *mpi.Packet) {
	p.Dst = dst
	h.wired = append(h.wired, p)
}
func (h *fakeHost) TakeCheckpoint(wave int, dev []byte, onStored func()) {
	h.ckpts = append(h.ckpts, wave)
	if h.storeNow {
		onStored()
	} else {
		h.pending = append(h.pending, onStored)
	}
}
func (h *fakeHost) ShipLogs(wave int, pkts []*mpi.Packet, onStored func()) {
	if h.storeNow {
		onStored()
	} else {
		h.pending = append(h.pending, onStored)
	}
}
func (h *fakeHost) CommitWave(w int) { h.commits = append(h.commits, w) }
func (h *fakeHost) Now() sim.Time    { return h.k.Now() }
func (h *fakeHost) After(d sim.Time, fn func()) sim.EventID {
	return h.k.After(d, fn)
}
func (h *fakeHost) CancelTimer(id sim.EventID) { h.k.Cancel(id) }

func countKind(pkts []*mpi.Packet, k mpi.Kind) int {
	n := 0
	for _, p := range pkts {
		if p.Kind == k {
			n++
		}
	}
	return n
}

func payload(src, dst int) *mpi.Packet {
	return &mpi.Packet{Src: src, Dst: dst, Kind: mpi.KindPayload, Tag: 1}
}

// withEngine runs body inside an LP that owns a real engine, so protocol
// paths that re-inject packets (Engine.Deliver) work.
func withEngine(t *testing.T, h *fakeHost, body func()) {
	t.Helper()
	net := simnet.New(h.k, simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "t", Nodes: 1, NICBW: 1e9, Latency: time.Microsecond,
	}}})
	fab := mpi.NewFabric(net)
	fab.Place(h.rank, 0)
	h.k.Go("host", func(lp *sim.Proc) {
		h.eng = mpi.NewEngine(h.rank, h.size, lp, mpi.Profile{}, fab)
		body()
	})
	if err := h.k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPclWaveFlushSequence(t *testing.T) {
	k := sim.New(1)
	h := newFakeHost(k, 1, 3) // non-coordinator rank in a 3-process job
	p := New(h, time.Second)
	withEngine(t, h, func() { pclWaveFlushBody(t, h, p) })
}

func pclWaveFlushBody(t *testing.T, h *fakeHost, p *Pcl) {
	p.Start()

	// A payload before any wave passes through both gates.
	if !p.OutPayload(payload(1, 2)) {
		t.Fatal("idle protocol delayed a send")
	}
	if !p.InPacket(payload(0, 1)) {
		t.Fatal("idle protocol held a receive")
	}

	// First marker: enter the wave, flood markers, block sends.
	if p.InPacket(&mpi.Packet{Src: 0, Kind: mpi.KindMarker, Wave: 1}) {
		t.Fatal("marker reached the matching engine")
	}
	if got := countKind(h.wired, mpi.KindMarker); got != 2 {
		t.Fatalf("flooded %d markers, want 2", got)
	}
	if p.OutPayload(payload(1, 2)) {
		t.Fatal("checkpointing protocol did not delay a send")
	}
	// Payload from the flushed channel 0 is held; from channel 2 it is not.
	if p.InPacket(payload(0, 1)) {
		t.Fatal("post-marker payload not delayed")
	}
	if !p.InPacket(payload(2, 1)) {
		t.Fatal("pre-marker payload delayed")
	}
	if len(h.ckpts) != 0 {
		t.Fatal("checkpoint before all markers")
	}

	// Second (last) marker: snapshot, then release queues in order.
	h.wired = nil
	p.InPacket(&mpi.Packet{Src: 2, Kind: mpi.KindMarker, Wave: 1})
	if len(h.ckpts) != 1 || h.ckpts[0] != 1 {
		t.Fatalf("ckpts %v", h.ckpts)
	}
	if got := countKind(h.wired, mpi.KindPayload); got != 1 {
		t.Fatalf("released %d delayed sends, want 1", got)
	}
	// onStored ran synchronously → Done sent to rank 0.
	if got := countKind(h.wired, mpi.KindControl); got != 1 {
		t.Fatalf("sent %d control packets, want 1 Done", got)
	}
	if p.Waves() != 1 {
		t.Fatalf("Waves() = %d", p.Waves())
	}
	// Unfrozen afterwards.
	if !p.OutPayload(payload(1, 2)) || !p.InPacket(payload(0, 1)) {
		t.Fatal("protocol still frozen after checkpoint")
	}
}

func TestPclCoordinatorCommitRearm(t *testing.T) {
	k := sim.New(1)
	h := newFakeHost(k, 0, 2)
	p := New(h, 10*time.Millisecond)

	k.Go("driver", func(lp *sim.Proc) {
		p.Start()
		lp.Advance(11 * time.Millisecond) // let the timer fire
		// Wave 1 is active; feed rank 1's marker.
		p.InPacket(&mpi.Packet{Src: 1, Kind: mpi.KindMarker, Wave: 1})
		// Coordinator's own Done plus rank 1's Done commit the wave.
		for _, pkt := range h.wired {
			if pkt.Kind == mpi.KindControl && pkt.Dst == 0 {
				p.InPacket(pkt)
			}
		}
		p.InPacket(&mpi.Packet{Src: 1, Dst: 0, Kind: mpi.KindControl, Tag: core.OpCkptDone, Wave: 1})
		if len(h.commits) != 1 || h.commits[0] != 1 {
			t.Errorf("commits %v", h.commits)
		}
		// Timer re-armed: a second wave initiates after another interval.
		lp.Advance(11 * time.Millisecond)
		wave2 := 0
		for _, pkt := range h.wired {
			if pkt.Kind == mpi.KindMarker && pkt.Wave == 2 {
				wave2++
			}
		}
		if wave2 == 0 {
			t.Errorf("second wave not initiated")
		}
		p.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPclDeviceStateRoundTrip(t *testing.T) {
	k := sim.New(1)
	h := newFakeHost(k, 1, 2)
	p := New(h, 0)
	p.enterWave(1, 0)
	if p.OutPayload(payload(1, 0)) {
		t.Fatal("send not delayed in wave")
	}
	dev := p.DeviceState()

	h2 := newFakeHost(k, 1, 2)
	q := New(h2, 0)
	q.Restore(dev, nil, 1)
	q.Start()
	// The delayed send is re-emitted on restart (paper §3, segment 7).
	if got := countKind(h2.wired, mpi.KindPayload); got != 1 {
		t.Fatalf("re-emitted %d delayed sends, want 1", got)
	}
	if q.Waves() != 0 {
		t.Fatalf("restored Waves() = %d", q.Waves())
	}
}

func TestPclStaleMarkerIgnored(t *testing.T) {
	k := sim.New(1)
	h := newFakeHost(k, 1, 2)
	p := New(h, 0)
	p.Restore(nil, nil, 3) // restarted from wave 3
	p.Start()
	p.InPacket(&mpi.Packet{Src: 0, Kind: mpi.KindMarker, Wave: 2})
	if len(h.ckpts) != 0 || len(h.wired) != 0 {
		t.Fatal("stale marker triggered protocol activity")
	}
}

func TestPclSingleProcessWave(t *testing.T) {
	k := sim.New(1)
	h := newFakeHost(k, 0, 1)
	p := New(h, 5*time.Millisecond)
	k.Go("driver", func(lp *sim.Proc) {
		p.Start()
		lp.Advance(6 * time.Millisecond)
		// np=1: the wave checkpoints immediately; the Done goes to self.
		if len(h.ckpts) != 1 {
			t.Errorf("ckpts %v", h.ckpts)
		}
		for _, pkt := range h.wired {
			if pkt.Kind == mpi.KindControl {
				p.InPacket(pkt)
			}
		}
		if len(h.commits) != 1 {
			t.Errorf("commits %v", h.commits)
		}
		p.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
