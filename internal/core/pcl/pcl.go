// Package pcl implements the paper's blocking coordinated checkpointing
// protocol — the new MPICH2 implementation the paper introduces (§3, §4.2).
//
// Wave lifecycle, exactly as described:
//
//  1. Rank 0 starts a wave on a timeout, switches to checkpointing and
//     sends markers to every other process.  Any process receiving its
//     first marker of the wave does the same.
//  2. After sending its markers a process sends no payload on any channel
//     until it has taken its checkpoint: posted sends are delayed (the
//     ft-sock request-post hook / the Nemesis "stopper" request).  They
//     remain in process memory and are therefore stored inside the image.
//  3. After receiving a peer's marker, payloads subsequently arriving from
//     that peer are moved to a delayed-receive queue (the Nemesis delayed
//     queue) instead of being matched.
//  4. Once markers from every other process have been received — i.e. all
//     channels are flushed — the process checkpoints (fork), releases the
//     delayed sends and receives, resumes computing, and the image
//     transfer proceeds in the background, competing with the resumed
//     traffic for the network.
//  5. Each process reports to rank 0 when its image is stored; rank 0 then
//     commits the wave and re-arms the timeout ("the timeout for the next
//     checkpoint wave is set as soon as every process has transferred its
//     image").
//
// On restart, delayed sends found in the image are emitted again and the
// delayed-receive queue is discarded (§4.2 Nemesis): its packets were sent
// after their senders' snapshots and will be regenerated.
package pcl

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"ftckpt/internal/core"
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// Pcl is one process's blocking-protocol instance.  Rank 0 additionally
// acts as the wave coordinator — the paper explicitly replaces MPICH-V's
// dedicated checkpoint scheduler with the rank-0 MPI process.
type Pcl struct {
	h        core.Host
	interval sim.Time

	checkpointing bool
	wave          int // current wave while checkpointing, else last entered
	markerFrom    []bool
	markers       int
	delayedSend   []*mpi.Packet
	delayedRecv   []*mpi.Packet
	waves         int

	// Causal spans of the wave in progress: the local-checkpoint span and
	// the freeze (blocked-send) window it causes.
	ckptSpan   uint64
	freezeSpan uint64

	// Coordinator state (rank 0 only).
	timer   sim.EventID
	hasTick bool
	done    int

	// Stats.
	DelayedSends int
	DelayedRecvs int
}

// New builds a Pcl instance with the given time between checkpoint waves.
func New(h core.Host, interval sim.Time) *Pcl {
	return &Pcl{h: h, interval: interval, markerFrom: make([]bool, h.Size())}
}

// Name returns "pcl".
func (p *Pcl) Name() string { return "pcl" }

// Waves returns the number of local checkpoints taken.
func (p *Pcl) Waves() int { return p.waves }

// Start arms the coordinator timer (rank 0) and re-emits delayed sends
// restored from an image.
func (p *Pcl) Start() {
	for _, pkt := range p.delayedSend {
		p.h.Wire(pkt.Dst, pkt)
	}
	p.delayedSend = nil
	if p.h.Rank() == 0 && p.interval > 0 {
		p.arm()
	}
}

// Stop cancels the coordinator timer.
func (p *Pcl) Stop() {
	if p.hasTick {
		p.h.CancelTimer(p.timer)
		p.hasTick = false
	}
}

func (p *Pcl) arm() {
	p.hasTick = true
	p.timer = p.h.After(p.interval, func() {
		p.hasTick = false
		p.initiate()
	})
}

// initiate starts a new wave from the coordinator.
func (p *Pcl) initiate() {
	if p.checkpointing {
		return // previous wave still flushing; should not happen (timer arms at commit)
	}
	p.enterWave(p.wave+1, 0)
}

// enterWave switches the process to checkpointing and floods markers.
// cause is the flight span of the marker that pulled this process into the
// wave (0 for the coordinator's timer-driven entry).
func (p *Pcl) enterWave(w int, cause uint64) {
	p.checkpointing = true
	p.wave = w
	p.markers = 0
	for i := range p.markerFrom {
		p.markerFrom[i] = false
	}
	now := p.h.Now()
	hub := p.h.Obs()
	p.ckptSpan = hub.NextSpan()
	hub.Emit(obs.Event{Type: obs.EvLocalCkptBegin, T: now, Rank: p.h.Rank(), Wave: w, Channel: -1, Node: -1, Server: -1, Span: p.ckptSpan, Cause: cause})
	// The send gate is closed until the local checkpoint: the per-rank
	// blocked-send span the paper's flush-straggle analysis measures.
	p.freezeSpan = hub.NextSpan()
	hub.Emit(obs.Event{Type: obs.EvChannelBlocked, T: now, Rank: p.h.Rank(), Wave: w, Channel: -1, Node: -1, Server: -1, Span: p.freezeSpan, Cause: p.ckptSpan})
	for dst := 0; dst < p.h.Size(); dst++ {
		if dst != p.h.Rank() {
			ms := hub.NextSpan()
			hub.Emit(obs.Event{Type: obs.EvMarkerSent, T: now, Rank: p.h.Rank(), Wave: w, Channel: dst, Node: -1, Server: -1, Span: ms, Cause: p.ckptSpan})
			mk := core.Marker(w)
			mk.SpanID = ms
			p.h.Wire(dst, mk)
		}
	}
	if p.markers == p.h.Size()-1 { // single-process job
		p.takeCheckpoint()
	}
}

// OutPayload delays every payload posted while the process is
// checkpointing: markers were already sent on all channels, so any payload
// must wait for the local checkpoint.
func (p *Pcl) OutPayload(pkt *mpi.Packet) bool {
	if p.checkpointing {
		p.delayedSend = append(p.delayedSend, pkt)
		p.DelayedSends++
		p.h.Obs().Emit(obs.Event{Type: obs.EvSendDelayed, T: p.h.Now(), Rank: p.h.Rank(), Wave: p.wave, Channel: pkt.Dst, Node: -1, Server: -1, Bytes: pkt.PayloadSize(), Cause: p.freezeSpan})
		return false
	}
	return true
}

// InPacket consumes markers and control packets and holds payloads from
// flushed channels.
func (p *Pcl) InPacket(pkt *mpi.Packet) bool {
	switch pkt.Kind {
	case mpi.KindMarker:
		p.onMarker(pkt.Src, pkt.Wave, pkt.SpanID)
		return false
	case mpi.KindControl:
		p.onControl(pkt)
		return false
	default:
		if p.checkpointing && pkt.Src >= 0 && p.markerFrom[pkt.Src] {
			p.delayedRecv = append(p.delayedRecv, pkt)
			p.DelayedRecvs++
			p.h.Obs().Emit(obs.Event{Type: obs.EvRecvDelayed, T: p.h.Now(), Rank: p.h.Rank(), Wave: p.wave, Channel: pkt.Src, Node: -1, Server: -1, Bytes: pkt.PayloadSize(), Cause: p.freezeSpan})
			return false
		}
		return true
	}
}

func (p *Pcl) onMarker(src, w int, spanID uint64) {
	if !p.checkpointing {
		if w <= p.wave {
			return // stale marker from an already-completed wave
		}
		p.enterWave(w, spanID)
	}
	if w != p.wave {
		panic(fmt.Sprintf("pcl: rank %d in wave %d got marker for wave %d", p.h.Rank(), p.wave, w))
	}
	if p.markerFrom[src] {
		return
	}
	p.markerFrom[src] = true
	p.markers++
	p.h.Obs().Emit(obs.Event{Type: obs.EvMarkerRecv, T: p.h.Now(), Rank: p.h.Rank(), Wave: w, Channel: src, Node: -1, Server: -1, Span: spanID})
	if p.markers == p.h.Size()-1 {
		p.takeCheckpoint()
	}
}

// takeCheckpoint runs once all channels are flushed: capture the image
// (with the delayed sends inside), then unfreeze.
func (p *Pcl) takeCheckpoint() {
	w := p.wave
	p.h.TakeCheckpoint(w, p.DeviceState(), func() {
		p.h.Wire(0, core.Done(w))
	})
	p.waves++
	p.checkpointing = false
	now := p.h.Now()
	p.h.Obs().Emit(obs.Event{Type: obs.EvLocalCkptEnd, T: now, Rank: p.h.Rank(), Wave: w, Channel: -1, Node: -1, Server: -1, Span: p.ckptSpan})
	p.h.Obs().Emit(obs.Event{Type: obs.EvChannelUnblocked, T: now, Rank: p.h.Rank(), Wave: w, Channel: -1, Node: -1, Server: -1, Span: p.freezeSpan, Cause: p.ckptSpan})
	// Release delayed sends in posting order.
	sends := p.delayedSend
	p.delayedSend = nil
	for _, pkt := range sends {
		p.h.Wire(pkt.Dst, pkt)
	}
	// Handle the delayed receive queue before any newer packet.
	recvs := p.delayedRecv
	p.delayedRecv = nil
	for _, pkt := range recvs {
		p.h.Engine().Deliver(pkt)
	}
}

// onControl handles OpCkptDone at the coordinator.
func (p *Pcl) onControl(pkt *mpi.Packet) {
	if pkt.Tag != core.OpCkptDone {
		panic(fmt.Sprintf("pcl: unknown control opcode %d", pkt.Tag))
	}
	if p.h.Rank() != 0 {
		panic("pcl: OpCkptDone at non-coordinator")
	}
	if pkt.Wave != p.wave {
		return // from a wave aborted by a restart
	}
	p.done++
	if p.done == p.h.Size() {
		p.done = 0
		p.h.CommitWave(p.wave)
		if p.interval > 0 {
			p.arm()
		}
	}
}

// devState is the gob wrapper for protocol state stored in images.
type devState struct {
	Wave  int
	Sends []*mpi.Packet
}

// DeviceState serializes the delayed send queue (the paper: delayed
// messages "still in the process memory are automatically stored in the
// checkpoint").
func (p *Pcl) DeviceState() []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(devState{Wave: p.wave, Sends: p.delayedSend}); err != nil {
		panic(fmt.Sprintf("pcl: encoding device state: %v", err))
	}
	return buf.Bytes()
}

// Restore loads image state: the delayed sends will be re-emitted by
// Start; the delayed receive queue is discarded by construction (it was
// never serialized).
func (p *Pcl) Restore(dev []byte, logs []*mpi.Packet, lastWave int) {
	if len(logs) != 0 {
		panic("pcl: blocking protocol has no channel state to replay")
	}
	var ds devState
	if len(dev) > 0 {
		if err := gob.NewDecoder(bytes.NewReader(dev)).Decode(&ds); err != nil {
			panic(fmt.Sprintf("pcl: decoding device state: %v", err))
		}
	}
	p.checkpointing = false
	p.ckptSpan, p.freezeSpan = 0, 0
	p.wave = lastWave
	p.delayedSend = ds.Sends
	p.delayedRecv = nil
	p.markers = 0
	p.done = 0
	for i := range p.markerFrom {
		p.markerFrom[i] = false
	}
}

var _ core.Protocol = (*Pcl)(nil)
