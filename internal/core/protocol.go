// Package core defines the coordinated-checkpointing framework shared by
// the two protocols the paper compares: checkpoint waves, markers, commit,
// and the contract between a protocol instance (one per MPI process) and
// the process runtime that hosts it.
//
// The two implementations are:
//
//   - core/pcl — the blocking protocol (paper §3 "Pcl", implemented in
//     MPICH2 as the ft-sock and Nemesis channels): markers flush every
//     channel, sends and receives are frozen per channel until the local
//     checkpoint, and no channel state is ever saved.
//   - core/vcl — the non-blocking protocol (paper §3 "Vcl", the MPICH-V
//     implementation of Chandy–Lamport): a process snapshots on the first
//     marker and keeps computing; in-transit messages are logged as the
//     channel state and replayed on restart.
package core

import (
	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// Control opcodes carried in Packet.Tag of KindControl packets.
const (
	// OpCkptDone: a process tells the wave coordinator (rank 0 for Pcl,
	// the checkpoint scheduler for Vcl) that its local checkpoint for
	// Packet.Wave is fully stored.
	OpCkptDone = 1
)

// Host is what a protocol instance needs from the process runtime.  All
// methods are called from event context or the process LP; the kernel
// serializes execution, so no locking is involved.
type Host interface {
	// Rank and Size identify the process within the job.
	Rank() int
	Size() int
	// Engine returns the process's communication engine (to re-inject
	// held or replayed packets with Deliver).
	Engine() *mpi.Engine
	// Wire sends a packet directly on the FIFO channel to an endpoint
	// (rank, SchedulerID, ...), bypassing the protocol's own send gate —
	// used for markers, control messages and released delayed sends.
	Wire(dst int, p *mpi.Packet)
	// TakeCheckpoint captures the local process image for wave
	// (application + engine + the given protocol device state) right now,
	// then transfers it to this rank's checkpoint server in the
	// background while the process continues (the paper's fork-and-
	// pipeline).  onStored runs when the image is fully stored.
	TakeCheckpoint(wave int, dev []byte, onStored func())
	// ShipLogs transfers logged channel-state packets for wave to the
	// checkpoint server (Vcl's message connection).
	ShipLogs(wave int, pkts []*mpi.Packet, onStored func())
	// CommitWave records that wave is complete on every server: the
	// recovery line advances and older waves are garbage collected.
	// Called by the wave coordinator only.
	CommitWave(wave int)
	// Now, After and CancelTimer expose virtual time to the protocol.
	Now() sim.Time
	After(d sim.Time, fn func()) sim.EventID
	CancelTimer(id sim.EventID)
	// Obs returns the runtime's observability hub (never panics; a nil
	// hub is a valid no-op emitter).  Protocols emit marker, block/
	// unblock, logging and snapshot events through it.
	Obs() *obs.Hub
}

// Protocol is one process's checkpointing protocol instance.  It extends
// the device filter (mpi.Filter) with lifecycle hooks.
type Protocol interface {
	mpi.Filter
	// Name identifies the protocol ("pcl", "vcl", "none").
	Name() string
	// Start runs when the process (fresh or restarted) begins executing:
	// arm timers, flush restored delayed sends.
	Start()
	// Stop runs when the process dies or the job ends: cancel timers.
	Stop()
	// DeviceState serializes protocol-private state into a checkpoint
	// image (Pcl: the delayed send queue).
	DeviceState() []byte
	// Restore loads state from a checkpoint image before Start: dev is
	// the image's DeviceState, logs are the stored channel-state messages
	// to replay (Vcl), lastWave is the committed wave restarted from.
	Restore(dev []byte, logs []*mpi.Packet, lastWave int)
	// Waves reports how many checkpoint waves this instance completed
	// locally (local checkpoints taken).
	Waves() int
}

// PeerAware is implemented by protocols with single-process recovery
// (message logging): the runtime notifies live processes when a peer has
// been restarted so they can retransmit unacknowledged messages.
type PeerAware interface {
	PeerRestarted(rank int)
}

// Marker builds a checkpoint-wave marker packet.
func Marker(wave int) *mpi.Packet {
	return &mpi.Packet{Kind: mpi.KindMarker, Wave: wave}
}

// Done builds an OpCkptDone control packet.
func Done(wave int) *mpi.Packet {
	return &mpi.Packet{Kind: mpi.KindControl, Tag: OpCkptDone, Wave: wave}
}

// None is the checkpoint-free protocol used by baseline runs.
type None struct{ mpi.PassFilter }

// Name returns "none".
func (None) Name() string { return "none" }

// Start is a no-op.
func (None) Start() {}

// Stop is a no-op.
func (None) Stop() {}

// DeviceState returns nil.
func (None) DeviceState() []byte { return nil }

// Restore is a no-op.
func (None) Restore([]byte, []*mpi.Packet, int) {}

// Waves returns zero.
func (None) Waves() int { return 0 }
