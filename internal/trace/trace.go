// Package trace collects per-wave lifecycle statistics of a run: when each
// checkpoint wave took its local checkpoints, when the images finished
// storing, and when the wave committed.  The derived durations separate
// the two cost components the paper's analysis distinguishes — the
// synchronization/snapshot phase and the image-transfer phase — and feed
// the wave-breakdown output of cmd/ftrun and the ablation benchmarks.
package trace

import (
	"fmt"
	"sort"

	"ftckpt/internal/sim"
)

// WaveStat is the lifecycle of one checkpoint wave.
type WaveStat struct {
	Wave int
	// FirstCkpt and LastCkpt bracket the local snapshots: for the
	// blocking protocol the spread is the channel-flush straggle, for the
	// non-blocking one it is marker propagation.
	FirstCkpt sim.Time
	LastCkpt  sim.Time
	// LastStored is when the slowest image finished storing; Committed
	// when the coordinator sealed the wave.
	LastStored sim.Time
	Committed  sim.Time
	// Images counts local checkpoints taken in this wave.
	Images int
}

// SnapshotSpread is the straggle between the first and last local
// checkpoint of the wave.
func (w WaveStat) SnapshotSpread() sim.Time { return w.LastCkpt - w.FirstCkpt }

// TransferTime is the tail from the last snapshot to the last stored
// image (the fork-and-pipeline window).
func (w WaveStat) TransferTime() sim.Time { return w.LastStored - w.LastCkpt }

// CycleTime is the whole wave, first snapshot to commit.
func (w WaveStat) CycleTime() sim.Time { return w.Committed - w.FirstCkpt }

func (w WaveStat) String() string {
	return fmt.Sprintf("wave %d: %d images, spread %v, transfer %v, cycle %v",
		w.Wave, w.Images, w.SnapshotSpread(), w.TransferTime(), w.CycleTime())
}

// Recorder accumulates wave statistics.  The zero value is unusable; use
// New.  All methods run in simulation (single-threaded) context.
type Recorder struct {
	waves map[int]*WaveStat
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{waves: make(map[int]*WaveStat)} }

func (r *Recorder) wave(w int) *WaveStat {
	ws, ok := r.waves[w]
	if !ok {
		ws = &WaveStat{Wave: w, FirstCkpt: -1}
		r.waves[w] = ws
	}
	return ws
}

// LocalCkpt records one process's local snapshot for wave w at time t.
func (r *Recorder) LocalCkpt(w int, t sim.Time) {
	ws := r.wave(w)
	if ws.FirstCkpt < 0 || t < ws.FirstCkpt {
		ws.FirstCkpt = t
	}
	if t > ws.LastCkpt {
		ws.LastCkpt = t
	}
	ws.Images++
}

// Stored records that an image of wave w finished storing at time t.
func (r *Recorder) Stored(w int, t sim.Time) {
	ws := r.wave(w)
	if t > ws.LastStored {
		ws.LastStored = t
	}
}

// Commit records the coordinator sealing wave w at time t.
func (r *Recorder) Commit(w int, t sim.Time) { r.wave(w).Committed = t }

// Stat returns the statistics of wave w, if it has been seen.
func (r *Recorder) Stat(w int) (WaveStat, bool) {
	ws, ok := r.waves[w]
	if !ok {
		return WaveStat{}, false
	}
	return *ws, true
}

// Rollback discards every uncommitted wave beyond lastWave.  A restart
// re-executes from lastWave, so wave numbers past it are reused by the new
// incarnation; without the rollback the re-executed wave's snapshots would
// pile onto the aborted attempt's partial statistics, double-counting
// Images and smearing FirstCkpt across incarnations.
func (r *Recorder) Rollback(lastWave int) {
	for w, ws := range r.waves {
		if w > lastWave && ws.Committed == 0 {
			delete(r.waves, w)
		}
	}
}

// Committed returns the statistics of every committed wave, ordered by
// wave number.  Waves aborted by a restart (never committed) are omitted.
// Wave is the map key, so sorting by it is a total order: the map
// iteration below cannot leak its per-run permutation into the result.
func (r *Recorder) Committed() []WaveStat {
	var out []WaveStat
	for _, ws := range r.waves {
		if ws.Committed > 0 {
			out = append(out, *ws)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Wave < out[j].Wave })
	return out
}

// Summary aggregates committed waves.
type Summary struct {
	Waves          int
	MeanSpread     sim.Time
	MeanTransfer   sim.Time
	MeanCycle      sim.Time
	MaxSpread      sim.Time
	TotalTransfers int
}

// Summarize reduces the committed waves to means and maxima.
func (r *Recorder) Summarize() Summary {
	waves := r.Committed()
	s := Summary{Waves: len(waves)}
	if len(waves) == 0 {
		return s
	}
	for _, w := range waves {
		s.MeanSpread += w.SnapshotSpread()
		s.MeanTransfer += w.TransferTime()
		s.MeanCycle += w.CycleTime()
		if w.SnapshotSpread() > s.MaxSpread {
			s.MaxSpread = w.SnapshotSpread()
		}
		s.TotalTransfers += w.Images
	}
	n := sim.Time(len(waves))
	s.MeanSpread /= n
	s.MeanTransfer /= n
	s.MeanCycle /= n
	return s
}
