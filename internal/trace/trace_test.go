package trace

import (
	"testing"
	"time"
)

func TestWaveLifecycle(t *testing.T) {
	r := New()
	r.LocalCkpt(1, 10*time.Second)
	r.LocalCkpt(1, 12*time.Second)
	r.LocalCkpt(1, 11*time.Second)
	r.Stored(1, 15*time.Second)
	r.Stored(1, 18*time.Second)
	r.Commit(1, 19*time.Second)

	waves := r.Committed()
	if len(waves) != 1 {
		t.Fatalf("%d waves", len(waves))
	}
	w := waves[0]
	if w.Images != 3 {
		t.Fatalf("images %d", w.Images)
	}
	if w.SnapshotSpread() != 2*time.Second {
		t.Fatalf("spread %v", w.SnapshotSpread())
	}
	if w.TransferTime() != 6*time.Second {
		t.Fatalf("transfer %v", w.TransferTime())
	}
	if w.CycleTime() != 9*time.Second {
		t.Fatalf("cycle %v", w.CycleTime())
	}
}

func TestAbortedWaveOmitted(t *testing.T) {
	r := New()
	r.LocalCkpt(1, time.Second)
	r.Stored(1, 2*time.Second)
	r.Commit(1, 3*time.Second)
	r.LocalCkpt(2, 4*time.Second) // wave 2 never commits (restart)
	if got := r.Committed(); len(got) != 1 || got[0].Wave != 1 {
		t.Fatalf("committed %v", got)
	}
}

func TestSummarize(t *testing.T) {
	r := New()
	for w := 1; w <= 3; w++ {
		base := time.Duration(w) * 10 * time.Second
		r.LocalCkpt(w, base)
		r.LocalCkpt(w, base+time.Duration(w)*time.Second)
		r.Stored(w, base+5*time.Second)
		r.Commit(w, base+6*time.Second)
	}
	s := r.Summarize()
	if s.Waves != 3 || s.TotalTransfers != 6 {
		t.Fatalf("summary %+v", s)
	}
	if s.MeanSpread != 2*time.Second { // (1+2+3)/3
		t.Fatalf("mean spread %v", s.MeanSpread)
	}
	if s.MaxSpread != 3*time.Second {
		t.Fatalf("max spread %v", s.MaxSpread)
	}
	if s.MeanCycle != 6*time.Second {
		t.Fatalf("mean cycle %v", s.MeanCycle)
	}
}

func TestEmptySummary(t *testing.T) {
	s := New().Summarize()
	if s.Waves != 0 || s.MeanCycle != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}
