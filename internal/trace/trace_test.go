package trace

import (
	"testing"
	"time"
)

func TestWaveLifecycle(t *testing.T) {
	r := New()
	r.LocalCkpt(1, 10*time.Second)
	r.LocalCkpt(1, 12*time.Second)
	r.LocalCkpt(1, 11*time.Second)
	r.Stored(1, 15*time.Second)
	r.Stored(1, 18*time.Second)
	r.Commit(1, 19*time.Second)

	waves := r.Committed()
	if len(waves) != 1 {
		t.Fatalf("%d waves", len(waves))
	}
	w := waves[0]
	if w.Images != 3 {
		t.Fatalf("images %d", w.Images)
	}
	if w.SnapshotSpread() != 2*time.Second {
		t.Fatalf("spread %v", w.SnapshotSpread())
	}
	if w.TransferTime() != 6*time.Second {
		t.Fatalf("transfer %v", w.TransferTime())
	}
	if w.CycleTime() != 9*time.Second {
		t.Fatalf("cycle %v", w.CycleTime())
	}
}

func TestAbortedWaveOmitted(t *testing.T) {
	r := New()
	r.LocalCkpt(1, time.Second)
	r.Stored(1, 2*time.Second)
	r.Commit(1, 3*time.Second)
	r.LocalCkpt(2, 4*time.Second) // wave 2 never commits (restart)
	if got := r.Committed(); len(got) != 1 || got[0].Wave != 1 {
		t.Fatalf("committed %v", got)
	}
}

func TestSummarize(t *testing.T) {
	r := New()
	for w := 1; w <= 3; w++ {
		base := time.Duration(w) * 10 * time.Second
		r.LocalCkpt(w, base)
		r.LocalCkpt(w, base+time.Duration(w)*time.Second)
		r.Stored(w, base+5*time.Second)
		r.Commit(w, base+6*time.Second)
	}
	s := r.Summarize()
	if s.Waves != 3 || s.TotalTransfers != 6 {
		t.Fatalf("summary %+v", s)
	}
	if s.MeanSpread != 2*time.Second { // (1+2+3)/3
		t.Fatalf("mean spread %v", s.MeanSpread)
	}
	if s.MaxSpread != 3*time.Second {
		t.Fatalf("max spread %v", s.MaxSpread)
	}
	if s.MeanCycle != 6*time.Second {
		t.Fatalf("mean cycle %v", s.MeanCycle)
	}
}

// TestRollbackWaveReuse replays the restart scenario: wave 2 is under way
// (some snapshots taken) when a failure rolls the job back to wave 1, and
// the relaunched incarnation reuses the number 2 for its next wave.
// Without the rollback the aborted attempt's snapshots would pile onto the
// re-executed wave — double-counting Images and dragging FirstCkpt back
// before the restart.
func TestRollbackWaveReuse(t *testing.T) {
	r := New()
	r.LocalCkpt(1, 10*time.Second)
	r.Stored(1, 12*time.Second)
	r.Commit(1, 13*time.Second)

	// Aborted first attempt at wave 2: two snapshots, no commit.
	r.LocalCkpt(2, 20*time.Second)
	r.LocalCkpt(2, 21*time.Second)

	// Failure: roll back to the last committed wave.
	r.Rollback(1)

	// Re-executed wave 2 after recovery.
	r.LocalCkpt(2, 40*time.Second)
	r.LocalCkpt(2, 41*time.Second)
	r.Stored(2, 45*time.Second)
	r.Commit(2, 46*time.Second)

	waves := r.Committed()
	if len(waves) != 2 || waves[0].Wave != 1 || waves[1].Wave != 2 {
		t.Fatalf("committed %v", waves)
	}
	w2 := waves[1]
	if w2.Images != 2 {
		t.Fatalf("wave 2 images %d (aborted attempt double-counted)", w2.Images)
	}
	if w2.FirstCkpt != 40*time.Second {
		t.Fatalf("wave 2 FirstCkpt %v smeared across incarnations", w2.FirstCkpt)
	}
	if w2.CycleTime() != 6*time.Second {
		t.Fatalf("wave 2 cycle %v", w2.CycleTime())
	}
}

// TestRollbackKeepsCommitted checks a rollback never discards committed
// waves, whatever their numbers.
func TestRollbackKeepsCommitted(t *testing.T) {
	r := New()
	r.LocalCkpt(1, time.Second)
	r.Commit(1, 2*time.Second)
	r.LocalCkpt(2, 3*time.Second)
	r.Commit(2, 4*time.Second)
	r.LocalCkpt(3, 5*time.Second) // in flight
	r.Rollback(2)
	if got := r.Committed(); len(got) != 2 {
		t.Fatalf("committed %v", got)
	}
	if _, ok := r.Stat(3); ok {
		t.Fatal("aborted wave 3 survived rollback")
	}
}

func TestEmptySummary(t *testing.T) {
	s := New().Summarize()
	if s.Waves != 0 || s.MeanCycle != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}
