package mpi

// ULFM-style fault reporting: an error-returning mode for the engine,
// mirroring MPIX_ERR_PROC_FAILED / MPIX_ERR_REVOKED and the
// revoke–shrink–agree repair operations of User-Level Failure Mitigation.
//
// In FT mode (EnableFT) an operation against a rank known to have failed
// does not hang forever waiting for a message that will never come — it
// aborts with a typed ProcFailedError; once the runtime revokes the
// communicator (Revoke), every pending and future operation aborts with
// RevokedError.  Blocking operations can be arbitrarily deep inside a
// collective when the revocation lands, so the abort travels as a panic
// of an ftSignal — the same unwinding idiom the kernel uses to kill a
// parked process — and is converted back into an error at the operation
// boundary (TrySendrecv) or the step loop (ftpm's repair wait).
//
// Determinism: revocation and failure knowledge only change inside kernel
// event context (the dispatcher's repair state machine), and the waiters
// they wake resume in the kernel's (time, seq) order, so the unwind order
// is a pure function of the seed like everything else.

import (
	"errors"
	"fmt"
	"sort"

	"ftckpt/internal/sim"
)

// ErrProcFailed is the sentinel for operations aborted because a peer
// process failed (compare MPIX_ERR_PROC_FAILED).  Concrete errors are
// *ProcFailedError values; errors.Is(err, ErrProcFailed) matches them.
var ErrProcFailed = errors.New("mpi: peer process failed")

// ErrRevoked is the sentinel for operations aborted because the
// communicator was revoked (compare MPIX_ERR_REVOKED).  Concrete errors
// are *RevokedError values; errors.Is(err, ErrRevoked) matches them.
var ErrRevoked = errors.New("mpi: communicator revoked")

// ProcFailedError reports which peer's failure aborted an operation.
type ProcFailedError struct{ Rank int }

// Error renders the failed peer.
func (e *ProcFailedError) Error() string {
	return fmt.Sprintf("mpi: process %d failed", e.Rank)
}

// Is matches the ErrProcFailed sentinel.
func (e *ProcFailedError) Is(target error) bool { return target == ErrProcFailed }

// RevokedError reports which communicator incarnation was revoked.
type RevokedError struct{ Epoch int }

// Error renders the revoked epoch.
func (e *RevokedError) Error() string {
	return fmt.Sprintf("mpi: communicator revoked (epoch %d)", e.Epoch)
}

// Is matches the ErrRevoked sentinel.
func (e *RevokedError) Is(target error) bool { return target == ErrRevoked }

// ftSignal is the panic payload that unwinds a blocked operation after a
// revocation or peer failure.  It never escapes the mpi/ftpm layers:
// TrySendrecv and the process runtime's step loop recover it and turn it
// back into the carried error.
type ftSignal struct{ err error }

// AsFTError recovers the typed error from a panic payload if the panic
// is an FT unwind, nil otherwise.  The process runtime uses it to tell a
// revocation unwind apart from a real crash (which must propagate).
func AsFTError(r any) error {
	if s, ok := r.(ftSignal); ok {
		return s.err
	}
	return nil
}

// EnableFT switches the engine into ULFM error-reporting mode: operations
// against failed ranks abort with typed errors instead of blocking
// forever, and the engine honours Revoke/AwaitRepair/FTReset.
func (e *Engine) EnableFT() {
	e.ft = true
	if e.failed == nil {
		e.failed = make([]bool, e.size)
	}
}

// FTEnabled reports whether the engine is in error-reporting mode.
func (e *Engine) FTEnabled() bool { return e.ft }

// Epoch returns the communicator incarnation this engine is in; FTReset
// advances it.  Packets stamped with an older epoch are never delivered.
func (e *Engine) Epoch() int { return e.epoch }

// Revoke marks the communicator revoked (compare MPIX_Comm_revoke): every
// blocked operation wakes and aborts with RevokedError, and new blocking
// operations abort immediately, until FTReset.  Idempotent; callable from
// event context.
func (e *Engine) Revoke() {
	if !e.ft || e.revoked {
		return
	}
	e.revoked = true
	e.cond.Broadcast()
}

// Revoked reports whether the communicator is currently revoked.
func (e *Engine) Revoked() bool { return e.revoked }

// NotifyFailed records that a peer rank failed, waking any operation
// blocked on it so it can abort with ProcFailedError.  Callable from
// event context (the failure detector).
func (e *Engine) NotifyFailed(rank int) {
	if !e.ft || rank < 0 || rank >= e.size || e.failed[rank] {
		return
	}
	e.failed[rank] = true
	e.cond.Broadcast()
}

// AgreeOnFailures returns the agreed set of failed ranks, sorted
// ascending (compare MPIX_Comm_agree over the failure bitmap).  The
// agreement round itself runs over the simulated network: the repair
// coordinator gathers every survivor's local knowledge, redistributes
// the union with NotifyFailed, and only then releases the survivors —
// so by the time a blocked AwaitRepair returns, AgreeOnFailures is
// identical on every rank.
func (e *Engine) AgreeOnFailures() []int {
	var out []int
	for r, dead := range e.failed {
		if dead {
			out = append(out, r)
		}
	}
	sort.Ints(out)
	return out
}

// Shrink returns the surviving ranks, sorted ascending (compare
// MPIX_Comm_shrink — the live membership the repaired communicator is
// rebuilt from).
func (e *Engine) Shrink() []int {
	out := make([]int, 0, e.size)
	for r := 0; r < e.size; r++ {
		if e.failed == nil || !e.failed[r] {
			out = append(out, r)
		}
	}
	return out
}

// AwaitRepair parks the process until the revocation is lifted (FTReset).
// Must be called from the process LP, outside any operation.
func (e *Engine) AwaitRepair() {
	for e.revoked {
		e.cond.Wait(e.lp)
	}
}

// InFlightColl reports the collective operation the process is currently
// inside, CollNone when it is not in one.  The process manager uses it to
// name the aborted operation when a mid-collective failure degrades the
// run.
func (e *Engine) InFlightColl() CollKind {
	if e.coll == nil {
		return CollNone
	}
	return e.coll.Kind
}

// AbortColl discards the in-flight collective state after an FT unwind,
// recycling the CollState exactly as a completed operation would — the
// pooling invariant must survive error paths too.
func (e *Engine) AbortColl() { e.endColl() }

// FTReset rebuilds the engine for the repaired communicator: pending
// messages and in-flight collective state of the revoked incarnation are
// discarded (the CollState returns to its pool), the failure bitmap
// clears, the epoch advances — dropping any packet still in the daemon-
// service pipeline — and parked AwaitRepair callers wake.  Called from
// event context by the repair state machine, after the fabric endpoints
// have been rebound.
func (e *Engine) FTReset() {
	if !e.ft {
		return
	}
	e.AbortColl()
	for i := range e.unexpected {
		e.unexpected[i] = nil
	}
	e.unexpected = e.unexpected[:0]
	for i := range e.inbox {
		e.inbox[i] = nil
	}
	e.inbox = e.inbox[:0]
	e.inboxHead = 0
	for i := range e.failed {
		e.failed[i] = false
	}
	// The repair cancels in-flight checkpoint stores, so their paired
	// SubSteal will never run; the new incarnation starts at full speed.
	e.steal = 0
	// Collective tags derive from the engine-local collective sequence
	// number; the repaired rank's fresh engine starts at zero, so every
	// survivor realigns to zero too.  Stale tags cannot collide: the
	// fabric flush dropped every packet of the revoked incarnation.
	e.collSeq = 0
	e.revoked = false
	e.epoch++
	e.cond.Broadcast()
}

// ftCheck aborts a blocking receive in FT mode when the communicator is
// revoked or the awaited source is known to have failed.  It runs at the
// top of the receive loop, so both a fresh call and a woken waiter pass
// through it before touching the queue.
func (e *Engine) ftCheck(src int) {
	if !e.ft {
		return
	}
	if e.revoked {
		e.waiting = false
		panic(ftSignal{&RevokedError{Epoch: e.epoch}})
	}
	if src >= 0 && src < e.size && e.failed[src] {
		e.waiting = false
		panic(ftSignal{&ProcFailedError{Rank: src}})
	}
}

// TrySendrecv is the error-returning Sendrecv of FT mode: against a
// failed peer it returns ErrProcFailed, under a revocation ErrRevoked,
// in both cases releasing the in-flight operation state back to its
// pool.  Outside FT mode it is exactly Sendrecv.
func (e *Engine) TrySendrecv(dst, sendTag int, data []byte, vsize int64, src, recvTag int) (pkt *Packet, err error) {
	if e.ft {
		if e.revoked {
			return nil, &RevokedError{Epoch: e.epoch}
		}
		if e.failed[dst] {
			return nil, &ProcFailedError{Rank: dst}
		}
		if e.failed[src] {
			return nil, &ProcFailedError{Rank: src}
		}
		defer func() {
			if r := recover(); r != nil {
				ftErr := AsFTError(r)
				if ftErr == nil {
					panic(r)
				}
				e.AbortColl()
				pkt, err = nil, ftErr
			}
		}()
	}
	return e.Sendrecv(dst, sendTag, data, vsize, src, recvTag), nil
}

// FTProgram is implemented by applications that survive failures in
// place (application-level fault tolerance): they keep in-memory
// snapshots of their own state plus a partner rank's copies, exchanged
// during normal execution, and the repair state machine restores from
// them instead of rolling the whole job back.  Snapshots are identified
// by a level (the iteration they capture); programs keep the two most
// recent levels, because live ranks can be one snapshot interval apart
// and the repair agreement picks the minimum level everyone holds.
type FTProgram interface {
	Program
	// FTLatest returns the newest held own-snapshot level, -1 if none —
	// the program's input to the repair agreement.
	FTLatest() int
	// FTSnapshotTime returns the virtual time the own snapshot at level
	// was taken — the baseline for recovered-work accounting.
	FTSnapshotTime(level int) (sim.Time, bool)
	// FTPeerLatest returns the newest held snapshot level for rank, -1
	// when this program holds no copy of rank's state.
	FTPeerLatest(rank int) int
	// FTPeerSnapshot returns the held copy of rank's state at level.
	FTPeerSnapshot(rank, level int) ([]byte, bool)
	// FTRollback restores the program to its own snapshot at level after
	// a repair; false means the level is not held (the caller falls back
	// to a full rollback-restart).
	FTRollback(level int) bool
	// FTInstall loads a snapshot blob into a fresh program instance (the
	// replacement for a failed rank); false means the blob is unusable.
	FTInstall(blob []byte) bool
}
