package mpi

import (
	"errors"
	"testing"
	"time"

	"ftckpt/internal/sim"
)

// TestRevokeRecyclesCollState is the pooling regression for FT error
// paths: a revocation landing mid-collective must unwind the blocked
// ranks AND return the in-flight CollState to the engine's pool, exactly
// as a completed operation would.
func TestRevokeRecyclesCollState(t *testing.T) {
	w := newWorld(t, 4)
	w.K.After(10*time.Millisecond, func() {
		for _, e := range w.Engines {
			e.Revoke()
		}
	})
	err := w.RunRanked(func(rank int) func(e *Engine) {
		return func(e *Engine) {
			e.EnableFT()
			if rank == 3 {
				return // never joins: ranks 0-2 block inside the collective
			}
			defer func() {
				ftErr := AsFTError(recover())
				if ftErr == nil {
					t.Errorf("rank %d: collective did not unwind with an FT error", rank)
					return
				}
				if !errors.Is(ftErr, ErrRevoked) {
					t.Errorf("rank %d: unwound with %v, want ErrRevoked", rank, ftErr)
				}
				if e.coll == nil {
					t.Errorf("rank %d: no in-flight collective state at unwind", rank)
				}
				e.AbortColl()
				if e.coll != nil {
					t.Errorf("rank %d: CollState still in flight after AbortColl", rank)
				}
				if e.collFree == nil {
					t.Errorf("rank %d: CollState leaked instead of returning to the pool", rank)
				}
				e.FTReset()
				if e.Revoked() || e.Epoch() != 1 {
					t.Errorf("rank %d: FTReset left revoked=%v epoch=%d", rank, e.Revoked(), e.Epoch())
				}
				if len(e.unexpected) != 0 || len(e.inbox) != 0 {
					t.Errorf("rank %d: queues not drained by FTReset: %d unexpected, %d inbox",
						rank, len(e.unexpected), len(e.inbox))
				}
			}()
			e.AllreduceF64(OpSum, []float64{float64(rank)})
			t.Errorf("rank %d: Allreduce returned despite revocation", rank)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestNotifyFailedAbortsBlockedRecv: a blocked receive against a peer
// that is declared failed aborts with a typed ProcFailedError naming the
// peer, instead of hanging forever.
func TestNotifyFailedAbortsBlockedRecv(t *testing.T) {
	w := newWorld(t, 2)
	w.K.After(5*time.Millisecond, func() {
		w.Engines[0].NotifyFailed(1)
	})
	err := w.RunRanked(func(rank int) func(e *Engine) {
		return func(e *Engine) {
			e.EnableFT()
			if rank == 1 {
				return // dies silently; never sends
			}
			defer func() {
				ftErr := AsFTError(recover())
				if ftErr == nil {
					t.Error("blocked Recv did not unwind")
					return
				}
				var pf *ProcFailedError
				if !errors.As(ftErr, &pf) || pf.Rank != 1 {
					t.Errorf("unwound with %v, want ProcFailedError{Rank: 1}", ftErr)
				}
				if !errors.Is(ftErr, ErrProcFailed) {
					t.Errorf("%v does not match the ErrProcFailed sentinel", ftErr)
				}
				if e.waiting {
					t.Error("engine still marked waiting after the FT unwind")
				}
			}()
			e.Recv(1, 7)
			t.Error("Recv returned despite the peer failure")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTrySendrecvTypedErrors: the error-returning operation refuses
// immediately — no blocking, no panic — with the right sentinel for each
// FT condition, and recovers cleanly after FTReset.
func TestTrySendrecvTypedErrors(t *testing.T) {
	w := newWorld(t, 2)
	err := w.RunRanked(func(rank int) func(e *Engine) {
		return func(e *Engine) {
			e.EnableFT()
			if rank != 0 {
				return
			}
			e.NotifyFailed(1)
			if _, err := e.TrySendrecv(1, 3, nil, 8, 1, 3); !errors.Is(err, ErrProcFailed) {
				t.Errorf("against a failed peer: err = %v, want ErrProcFailed", err)
			}
			e.Revoke()
			if _, err := e.TrySendrecv(1, 3, nil, 8, 1, 3); !errors.Is(err, ErrRevoked) {
				t.Errorf("under revocation: err = %v, want ErrRevoked", err)
			}
			e.FTReset()
			if e.coll != nil {
				t.Error("CollState in flight after refused operations")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAgreeShrinkFTReset pins the membership bookkeeping: agreement and
// shrink partition the ranks, and FTReset clears the failure knowledge
// while advancing the epoch.
func TestAgreeShrinkFTReset(t *testing.T) {
	w := newWorld(t, 4)
	err := w.RunRanked(func(rank int) func(e *Engine) {
		return func(e *Engine) {
			e.EnableFT()
			if rank != 0 {
				return
			}
			e.NotifyFailed(2)
			e.NotifyFailed(1)
			e.NotifyFailed(1) // idempotent
			if got := e.AgreeOnFailures(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
				t.Errorf("AgreeOnFailures = %v, want [1 2]", got)
			}
			if got := e.Shrink(); len(got) != 2 || got[0] != 0 || got[1] != 3 {
				t.Errorf("Shrink = %v, want [0 3]", got)
			}
			e.FTReset()
			if got := e.AgreeOnFailures(); len(got) != 0 {
				t.Errorf("failure knowledge survived FTReset: %v", got)
			}
			if got := e.Shrink(); len(got) != 4 {
				t.Errorf("Shrink after FTReset = %v, want all 4 ranks", got)
			}
			if e.Epoch() != 1 {
				t.Errorf("Epoch = %d after one FTReset, want 1", e.Epoch())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAdmitRecDroppedPacketRecycled: a packet caught in the daemon-
// service delay when the communicator is repaired must be dropped — it
// belongs to the revoked incarnation — and its admitRec must still
// return to the pool.
func TestAdmitRecDroppedPacketRecycled(t *testing.T) {
	prof := Profile{Name: "daemon", DaemonLatency: 200 * time.Microsecond, Async: true}
	k := sim.New(1)
	w := NewWorld(k, testTopo(2), prof, 2, 1)
	// The packet reaches rank 0's daemon at ~50µs (wire latency) and is
	// admitted at ~250µs; the repair lands in between, so the packet is
	// stamped with the old epoch and must be dropped at admission.
	k.After(150*time.Microsecond, func() { w.Engines[0].FTReset() })
	err := w.RunRanked(func(rank int) func(e *Engine) {
		return func(e *Engine) {
			e.EnableFT()
			if rank == 1 {
				e.Send(0, 9, []byte("stale"), 0)
				return
			}
			e.Compute(1 * time.Millisecond)
			if len(e.unexpected) != 0 {
				t.Errorf("a revoked incarnation's packet reached the matching engine: %v", e.unexpected)
			}
			if n := len(e.admitPool); n != 1 {
				t.Errorf("admitPool holds %d records after the drop, want 1 (record leaked)", n)
			}
			if e.Epoch() != 1 {
				t.Errorf("Epoch = %d, want 1", e.Epoch())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
