package mpi

import (
	"testing"
	"time"

	"ftckpt/internal/sim"
)

func TestIsendIrecvWaitall(t *testing.T) {
	w := newWorld(t, 3)
	var got []string
	err := w.Run(func(e *Engine) {
		switch e.Rank() {
		case 0:
			e.Isend(2, 5, []byte("from0"), 0)
		case 1:
			e.Compute(time.Millisecond)
			e.Isend(2, 6, []byte("from1"), 0)
		case 2:
			r1 := e.Irecv(1, 6)
			r0 := e.Irecv(0, 5)
			e.Waitall([]*Request{r1, r0})
			got = append(got, string(r1.Packet.Data), string(r0.Packet.Data))
			if !r1.Done() || !r0.Done() {
				t.Error("requests not marked done")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "from1" || got[1] != "from0" {
		t.Fatalf("got %v", got)
	}
}

func TestWaitSingle(t *testing.T) {
	w := newWorld(t, 2)
	var data string
	err := w.Run(func(e *Engine) {
		if e.Rank() == 0 {
			e.Send(1, 9, []byte("x"), 0)
		} else {
			p := e.Wait(e.Irecv(0, 9))
			data = string(p.Data)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if data != "x" {
		t.Fatalf("data %q", data)
	}
}

func TestIsendRequestIsComplete(t *testing.T) {
	w := newWorld(t, 2)
	err := w.Run(func(e *Engine) {
		if e.Rank() == 0 {
			r := e.Isend(1, 1, nil, 0)
			if !r.Done() {
				t.Error("Isend request not complete")
			}
			e.Waitall([]*Request{r}) // must not block
		} else {
			e.Recv(0, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWaitallResumeState verifies the checkpoint-resume contract: a
// Waitall interrupted after consuming some packets restores them from the
// serialized state instead of re-receiving.
func TestWaitallResumeState(t *testing.T) {
	// Build an engine image as a snapshot mid-Waitall would: round 1 of 2
	// complete, its packet stored in Blocks.
	done := &Packet{Src: 0, Tag: 7, Kind: KindPayload, Data: []byte("early"), VSize: 99}
	img := &EngineImage{
		Coll: &CollState{
			Kind:   CollWaitall,
			Round:  1,
			Blocks: [][]byte{encodeWaitPacket(done), nil},
		},
	}

	w := newWorld(t, 2)
	var early, late string
	err := w.RunRanked(func(rank int) func(e *Engine) {
		return func(e *Engine) {
			if rank == 0 {
				e.Send(1, 8, []byte("late"), 0)
				return
			}
			e.RestoreImage(img)
			r1 := e.Irecv(0, 7)
			r2 := e.Irecv(0, 8)
			e.Waitall([]*Request{r1, r2})
			early, late = string(r1.Packet.Data), string(r2.Packet.Data)
			if r1.Packet.VSize != 99 {
				t.Errorf("restored packet lost VSize: %v", r1.Packet)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if early != "early" || late != "late" {
		t.Fatalf("early=%q late=%q", early, late)
	}
}

func TestWaitPacketCodec(t *testing.T) {
	for _, p := range []*Packet{
		{Src: 3, Tag: 17, VSize: 1 << 40, Data: []byte{1, 2, 3}, Kind: KindPayload},
		{Src: 0, Tag: 0, Kind: KindPayload},
		{Src: 511, Tag: -42, VSize: -1, Data: make([]byte, 1000), Kind: KindPayload},
	} {
		q := decodeWaitPacket(encodeWaitPacket(p))
		if q.Src != p.Src || q.Tag != p.Tag || q.VSize != p.VSize || string(q.Data) != string(p.Data) {
			t.Fatalf("round trip: %v -> %v", p, q)
		}
	}
}

func TestSteal(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, testTopo(1), Profile{}, 1, 1)
	var t1, t2 sim.Time
	err := w.Run(func(e *Engine) {
		e.Compute(time.Second)
		t1 = e.Now()
		e.AddSteal(0.5)
		e.Compute(time.Second)
		t2 = e.Now() - t1
		e.SubSteal(0.5)
		e.SubSteal(0.5) // extra SubSteal clamps at zero
		e.Compute(time.Second)
	})
	if err != nil {
		t.Fatal(err)
	}
	if t1 != time.Second {
		t.Fatalf("unstolen compute took %v", t1)
	}
	if t2 != 1500*time.Millisecond {
		t.Fatalf("stolen compute took %v, want 1.5s", t2)
	}
	if k.Now() != 3500*time.Millisecond {
		t.Fatalf("end %v, want 3.5s", k.Now())
	}
}
