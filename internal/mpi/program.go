package mpi

// Program is a resumable MPI application: a state machine advanced by
// Step, whose entire state lives in the (gob-serializable) implementing
// struct.  This is the checkpointable execution model of the reproduction
// (DESIGN.md §5.2): a goroutine stack cannot be serialized, so the
// coordinated checkpoint captures the Program struct plus the engine's
// pending-operation state while the process is parked, and a restarted
// process re-enters Step.
//
// Contract for implementations:
//
//   - Step executes one phase and returns true when the program has
//     completed.  A phase performs at most one blocking MPI operation
//     (Recv, Sendrecv, a collective, or Compute), and any code before that
//     operation must be idempotent — re-running the phase from its entry
//     state must not duplicate effects.  Plain Send never blocks, so a
//     phase may Send freely *after* its state no longer needs to be
//     re-entered, or use Sendrecv, whose send half is resume-safe.
//   - The concrete type must be registered with encoding/gob.
//
// Footprint reports the modelled resident memory of the process, which
// sizes the checkpoint image exactly as system-level checkpointing does in
// the paper ("the size of the checkpoint images is directly proportional
// to the memory allocated").
type Program interface {
	Step(e *Engine) bool
	Footprint() int64
}

// Finalize puts the engine in finalized mode: the inbox is drained and
// protocol packets are thereafter processed asynchronously, so a process
// whose program has completed keeps participating in marker exchanges —
// the analogue of the progress engine running inside MPI_Finalize.  Must
// be called from the process LP.
func (e *Engine) Finalize() {
	e.enterOp()
	e.exitOp()
	e.prof.Async = true
}
