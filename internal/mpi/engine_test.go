package mpi

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

func testTopo(nodes int) simnet.Topology {
	return simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "t", Nodes: nodes, NICBW: 100e6, Latency: 50 * time.Microsecond,
	}}}
}

func newWorld(t *testing.T, size int) *World {
	t.Helper()
	return NewWorld(sim.New(1), testTopo(size), Profile{Name: "test"}, size, 1)
}

func TestSendRecvBasic(t *testing.T) {
	w := newWorld(t, 2)
	var got []byte
	err := w.RunRanked(func(r int) func(e *Engine) {
		return func(e *Engine) {
			if e.Rank() == 0 {
				e.Send(1, 7, []byte("hello"), 0)
			} else {
				got = e.Recv(0, 7).Data
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestRecvTagSelectivity(t *testing.T) {
	w := newWorld(t, 2)
	var order []int
	err := w.Run(func(e *Engine) {
		switch e.Rank() {
		case 0:
			e.Send(1, 1, nil, 0)
			e.Send(1, 2, nil, 0)
		case 1:
			order = append(order, e.Recv(0, 2).Tag) // tag 2 first despite FIFO arrival
			order = append(order, e.Recv(0, 1).Tag)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != 2 || order[1] != 1 {
		t.Fatalf("order %v", order)
	}
}

func TestAnySourceAnyTag(t *testing.T) {
	w := newWorld(t, 4)
	var srcs []int
	err := w.Run(func(e *Engine) {
		if e.Rank() == 0 {
			for i := 0; i < 3; i++ {
				p := e.Recv(AnySource, AnyTag)
				srcs = append(srcs, p.Src)
			}
		} else {
			e.Compute(sim.Time(e.Rank()) * time.Millisecond) // stagger arrivals
			e.Send(0, 5, nil, 0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i, s := range srcs {
		if s != want[i] {
			t.Fatalf("srcs %v", srcs)
		}
	}
}

func TestFIFOPerChannel(t *testing.T) {
	w := newWorld(t, 2)
	const n = 50
	var got []int
	err := w.Run(func(e *Engine) {
		if e.Rank() == 0 {
			for i := 0; i < n; i++ {
				e.Send(1, 3, []byte{byte(i)}, int64(1+i%17*1000))
			}
		} else {
			for i := 0; i < n; i++ {
				got = append(got, int(e.Recv(0, 3).Data[0]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: %v", i, got)
		}
	}
}

func TestUnexpectedBeforePost(t *testing.T) {
	w := newWorld(t, 2)
	var got *Packet
	err := w.Run(func(e *Engine) {
		if e.Rank() == 0 {
			e.Send(1, 9, []byte("early"), 0)
		} else {
			e.Compute(time.Second) // message arrives long before the recv
			got = e.Recv(0, 9)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got == nil || string(got.Data) != "early" {
		t.Fatalf("got %v", got)
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := newWorld(t, 2)
	var got [2]string
	err := w.Run(func(e *Engine) {
		peer := 1 - e.Rank()
		p := e.Sendrecv(peer, 4, []byte(fmt.Sprintf("from%d", e.Rank())), 0, peer, 4)
		got[e.Rank()] = string(p.Data)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != "from1" || got[1] != "from0" {
		t.Fatalf("got %v", got)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8, 13} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			w := newWorld(t, p)
			exits := make([]sim.Time, p)
			slowest := sim.Time(0)
			err := w.Run(func(e *Engine) {
				d := sim.Time(e.Rank()) * 10 * time.Millisecond
				if d > slowest {
					slowest = d
				}
				e.Compute(d)
				e.Barrier()
				exits[e.Rank()] = e.Now()
			})
			if err != nil {
				t.Fatal(err)
			}
			for r, at := range exits {
				if at < slowest {
					t.Fatalf("rank %d left barrier at %v before slowest entered (%v)", r, at, slowest)
				}
			}
		})
	}
}

func TestBcastValues(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6, 7, 16} {
		for root := 0; root < p; root += max(1, p/3) {
			p, root := p, root
			t.Run(fmt.Sprintf("p=%d/root=%d", p, root), func(t *testing.T) {
				w := newWorld(t, p)
				payload := []byte{42, 1, 2, 3}
				got := make([][]byte, p)
				err := w.Run(func(e *Engine) {
					var in []byte
					if e.Rank() == root {
						in = payload
					}
					got[e.Rank()] = e.Bcast(root, in)
				})
				if err != nil {
					t.Fatal(err)
				}
				for r := range got {
					if !bytes.Equal(got[r], payload) {
						t.Fatalf("rank %d got %v", r, got[r])
					}
				}
			})
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 5, 9, 16, 17} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			w := newWorld(t, p)
			results := make([][]float64, p)
			err := w.Run(func(e *Engine) {
				x := []float64{float64(e.Rank() + 1), 1}
				results[e.Rank()] = e.AllreduceF64(OpSum, x)
			})
			if err != nil {
				t.Fatal(err)
			}
			wantSum := float64(p*(p+1)) / 2
			for r, res := range results {
				if len(res) != 2 || math.Abs(res[0]-wantSum) > 1e-9 || res[1] != float64(p) {
					t.Fatalf("rank %d got %v, want [%v %v]", r, res, wantSum, p)
				}
			}
		})
	}
}

func TestAllreduceMaxMin(t *testing.T) {
	w := newWorld(t, 6)
	var gotMax, gotMin float64
	err := w.Run(func(e *Engine) {
		mx := e.AllreduceF64(OpMax, []float64{float64(e.Rank() * e.Rank())})
		mn := e.AllreduceF64(OpMin, []float64{float64(e.Rank() * e.Rank())})
		if e.Rank() == 3 {
			gotMax, gotMin = mx[0], mn[0]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotMax != 25 || gotMin != 0 {
		t.Fatalf("max %v min %v", gotMax, gotMin)
	}
}

func TestReduceToRoot(t *testing.T) {
	for _, root := range []int{0, 2} {
		root := root
		t.Run(fmt.Sprintf("root=%d", root), func(t *testing.T) {
			w := newWorld(t, 5)
			var atRoot []float64
			nonRootNil := true
			err := w.Run(func(e *Engine) {
				res := e.ReduceF64(root, OpSum, []float64{1})
				if e.Rank() == root {
					atRoot = res
				} else if res != nil {
					nonRootNil = false
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(atRoot) != 1 || atRoot[0] != 5 {
				t.Fatalf("root got %v", atRoot)
			}
			if !nonRootNil {
				t.Fatal("non-root got a result")
			}
		})
	}
}

func TestAllgather(t *testing.T) {
	for _, p := range []int{1, 2, 3, 7, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			w := newWorld(t, p)
			results := make([][][]byte, p)
			err := w.Run(func(e *Engine) {
				results[e.Rank()] = e.AllgatherB([]byte{byte(e.Rank()), byte(e.Rank() * 2)})
			})
			if err != nil {
				t.Fatal(err)
			}
			for r, blocks := range results {
				if len(blocks) != p {
					t.Fatalf("rank %d: %d blocks", r, len(blocks))
				}
				for i, b := range blocks {
					if len(b) != 2 || b[0] != byte(i) || b[1] != byte(i*2) {
						t.Fatalf("rank %d block %d = %v", r, i, b)
					}
				}
			}
		})
	}
}

func TestAlltoall(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			w := newWorld(t, p)
			results := make([][][]byte, p)
			err := w.Run(func(e *Engine) {
				out := make([][]byte, p)
				for i := range out {
					out[i] = []byte{byte(e.Rank()), byte(i)}
				}
				results[e.Rank()] = e.AlltoallB(out)
			})
			if err != nil {
				t.Fatal(err)
			}
			for r, blocks := range results {
				for i, b := range blocks {
					if len(b) != 2 || b[0] != byte(i) || b[1] != byte(r) {
						t.Fatalf("rank %d block %d = %v", r, i, b)
					}
				}
			}
		})
	}
}

func TestConsecutiveCollectivesDoNotCrossTalk(t *testing.T) {
	w := newWorld(t, 4)
	var bad bool
	err := w.Run(func(e *Engine) {
		for i := 0; i < 20; i++ {
			res := e.AllreduceF64(OpSum, []float64{float64(i)})
			if res[0] != float64(4*i) {
				bad = true
			}
			e.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("cross-talk between consecutive collectives")
	}
}

func TestDaemonProfileAddsLatency(t *testing.T) {
	run := func(prof Profile) sim.Time {
		k := sim.New(1)
		w := NewWorld(k, testTopo(2), prof, 2, 1)
		var done sim.Time
		if err := w.Run(func(e *Engine) {
			if e.Rank() == 0 {
				e.Send(1, 1, nil, 1000)
			} else {
				e.Recv(0, 1)
				done = e.Now()
			}
		}); err != nil {
			t.Fatal(err)
		}
		return done
	}
	thin := run(Profile{Name: "thin"})
	daemon := run(Profile{Name: "daemon", DaemonLatency: 40 * time.Microsecond, Async: true})
	if daemon <= thin {
		t.Fatalf("daemon profile (%v) not slower than thin (%v)", daemon, thin)
	}
	if d := daemon - thin; d < 35*time.Microsecond || d > 45*time.Microsecond {
		t.Fatalf("daemon overhead %v, want ~40µs", d)
	}
}

func TestDaemonPreservesOrder(t *testing.T) {
	k := sim.New(1)
	prof := Profile{Name: "daemon", DaemonLatency: 10 * time.Microsecond, DaemonCopyBW: 200e6, Async: true}
	w := NewWorld(k, testTopo(2), prof, 2, 1)
	const n = 30
	var got []int
	err := w.Run(func(e *Engine) {
		if e.Rank() == 0 {
			for i := 0; i < n; i++ {
				e.Send(1, 2, []byte{byte(i)}, int64(rand.New(rand.NewSource(int64(i))).Intn(100000)))
			}
		} else {
			for i := 0; i < n; i++ {
				got = append(got, int(e.Recv(0, 2).Data[0]))
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("daemon reordered: %v", got)
		}
	}
}

func TestSendOverheadCharged(t *testing.T) {
	k := sim.New(1)
	prof := Profile{Name: "oh", SendOverhead: time.Millisecond}
	w := NewWorld(k, testTopo(2), prof, 2, 1)
	var after sim.Time
	err := w.Run(func(e *Engine) {
		if e.Rank() == 0 {
			for i := 0; i < 5; i++ {
				e.Send(1, 1, nil, 0)
			}
			after = e.Now()
		} else {
			for i := 0; i < 5; i++ {
				e.Recv(0, 1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if after < 5*time.Millisecond {
		t.Fatalf("sender spent %v, want >= 5ms of send overhead", after)
	}
}

func TestEngineImageRoundTrip(t *testing.T) {
	e := &Engine{rank: 0, size: 2}
	e.unexpected = []*Packet{{Src: 1, Dst: 0, Kind: KindPayload, Tag: 3, Data: []byte("x"), VSize: 100}}
	e.collSeq = 9
	e.coll = &CollState{Kind: CollAllreduce, Seq: 9, Stage: 1, Mask: 2, AccF: []float64{1, 2}}
	img := e.CaptureImage()

	// Mutating the engine afterwards must not affect the image.
	e.unexpected[0].Data[0] = 'y'
	e.coll.AccF[0] = 99

	f := &Engine{rank: 0, size: 2}
	f.RestoreImage(img)
	if string(f.unexpected[0].Data) != "x" {
		t.Fatal("image shares packet data with live engine")
	}
	if f.coll == nil || !f.coll.Resumed || f.coll.AccF[0] != 1 {
		t.Fatalf("restored coll %+v", f.coll)
	}
	if f.collSeq != 9 {
		t.Fatalf("collSeq %d", f.collSeq)
	}
	if img.StateBytes() < 100 {
		t.Fatalf("StateBytes %d too small", img.StateBytes())
	}
}

func TestEncodeDecodeF64s(t *testing.T) {
	f := func(x []float64) bool {
		dec := DecodeF64s(EncodeF64s(x))
		if len(dec) != len(x) {
			return false
		}
		for i := range x {
			if dec[i] != x[i] && !(math.IsNaN(dec[i]) && math.IsNaN(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestRandomTrafficProperty: arbitrary point-to-point traffic patterns are
// delivered exactly once, FIFO per ordered pair.
func TestRandomTrafficProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 2 + rng.Intn(5)
		counts := make([][]int, p) // counts[i][j]: messages i -> j
		for i := range counts {
			counts[i] = make([]int, p)
			for j := range counts[i] {
				if i != j {
					counts[i][j] = rng.Intn(8)
				}
			}
		}
		w := NewWorld(sim.New(seed), testTopo(p), Profile{}, p, 1)
		okc := make([]bool, p)
		err := w.Run(func(e *Engine) {
			r := e.Rank()
			// Send phase: tag encodes per-pair sequence.
			for j := 0; j < p; j++ {
				for s := 0; s < counts[r][j]; s++ {
					e.Send(j, 100+s, []byte{byte(s)}, 0)
				}
			}
			// Receive phase: drain expected counts in per-sender order.
			ok := true
			for i := 0; i < p; i++ {
				for s := 0; s < counts[i][r]; s++ {
					pkt := e.Recv(i, 100+s)
					if int(pkt.Data[0]) != s {
						ok = false
					}
				}
			}
			okc[r] = ok
		})
		if err != nil {
			return false
		}
		for _, ok := range okc {
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestCollectiveProperty: allreduce results match a local reduction for
// random sizes and inputs.
func TestCollectiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := 1 + rng.Intn(12)
		vals := make([]float64, p)
		for i := range vals {
			vals[i] = rng.Float64()*100 - 50
		}
		want := 0.0
		for _, v := range vals {
			want += v
		}
		w := NewWorld(sim.New(seed), testTopo(p), Profile{}, p, 1)
		results := make([]float64, p)
		err := w.Run(func(e *Engine) {
			results[e.Rank()] = e.AllreduceF64(OpSum, []float64{vals[e.Rank()]})[0]
		})
		if err != nil {
			return false
		}
		for _, r := range results {
			if math.Abs(r-want) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
