package mpi

import "fmt"

// Nonblocking point-to-point.  Isend is eager (the message is handed to
// the device immediately, like Send, so there is nothing to wait for —
// its Request is always complete).  Irecv posts a receive specification
// without blocking; Wait and Waitall complete them in posting order.
//
// Checkpoint interaction follows the same rule as everything else in the
// engine: a Waitall in progress is a resumable operation whose state
// (which requests already completed, with their packets) lives in the
// serializable CollState, so a snapshot taken while blocked inside
// Waitall restores without re-receiving completed requests.

// Request is a handle for a nonblocking operation.
type Request struct {
	// Src and Tag are the posted receive specification (Isend requests
	// have Src == -2 and are born complete).
	Src, Tag int
	// Packet is the received message once the request completes.
	Packet *Packet
	done   bool
}

// Done reports whether the request has completed.
func (r *Request) Done() bool { return r.done }

// Isend sends eagerly and returns an already-complete request, for
// symmetry with MPI code structure.
func (e *Engine) Isend(dst, tag int, data []byte, vsize int64) *Request {
	e.Send(dst, tag, data, vsize)
	return &Request{Src: -2, Tag: tag, done: true}
}

// Irecv posts a receive without blocking.
func (e *Engine) Irecv(src, tag int) *Request {
	return &Request{Src: src, Tag: tag}
}

// Wait blocks until the request completes.
func (e *Engine) Wait(r *Request) *Packet {
	e.Waitall([]*Request{r})
	return r.Packet
}

// Waitall completes every request, matching posted receives in posting
// order.  It is resumable across a checkpoint: completed requests keep
// their packets, and a restored process re-invoking Waitall with the
// re-posted (identical) requests skips them.
func (e *Engine) Waitall(reqs []*Request) {
	e.enterOp()
	defer e.exitOp()
	cs, fresh := e.beginColl(CollWaitall)
	if fresh {
		cs.Round = 0
		cs.Blocks = make([][]byte, len(reqs))
	}
	if len(cs.Blocks) != len(reqs) {
		panic(fmt.Sprintf("mpi: Waitall resumed with %d requests, had %d", len(reqs), len(cs.Blocks)))
	}
	// Re-deliver packets already consumed before a snapshot.
	for i := 0; i < cs.Round; i++ {
		if reqs[i].Src != -2 && !reqs[i].done {
			reqs[i].Packet = decodeWaitPacket(cs.Blocks[i])
			reqs[i].done = true
		}
	}
	for cs.Round < len(reqs) {
		r := reqs[cs.Round]
		if r.Src == -2 || r.done {
			cs.Round++
			continue
		}
		p := e.recvMatch(r.Src, r.Tag)
		r.Packet = p
		r.done = true
		// Persist the consumed packet inside the resumable state: it has
		// left the unexpected queue, so the checkpoint must carry it.
		cs.Blocks[cs.Round] = encodeWaitPacket(p)
		cs.Round++
	}
	e.endColl()
}

// encodeWaitPacket flattens a packet into the CollState byte store.
func encodeWaitPacket(p *Packet) []byte {
	// src(4) tag(4) vsize(8) data...
	b := make([]byte, 16+len(p.Data))
	putInt32(b[0:], int32(p.Src))
	putInt32(b[4:], int32(p.Tag))
	putInt64(b[8:], p.VSize)
	copy(b[16:], p.Data)
	return b
}

func decodeWaitPacket(b []byte) *Packet {
	if len(b) < 16 {
		panic("mpi: corrupt Waitall state")
	}
	p := &Packet{
		Src:   int(getInt32(b[0:])),
		Tag:   int(getInt32(b[4:])),
		VSize: getInt64(b[8:]),
		Kind:  KindPayload,
	}
	if len(b) > 16 {
		p.Data = append([]byte(nil), b[16:]...)
	}
	return p
}

func putInt32(b []byte, v int32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getInt32(b []byte) int32 {
	return int32(b[0]) | int32(b[1])<<8 | int32(b[2])<<16 | int32(b[3])<<24
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

func getInt64(b []byte) int64 {
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(b[i]) << (8 * i)
	}
	return v
}
