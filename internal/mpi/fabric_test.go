package mpi

import (
	"testing"
	"time"

	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

func TestFabricUnbindDropsInFlight(t *testing.T) {
	k := sim.New(1)
	net := simnet.New(k, testTopo(2))
	fab := NewFabric(net)
	fab.Place(0, 0)
	fab.Place(1, 1)
	delivered := 0
	fab.Bind(1, func(p *Packet) { delivered++ })
	fab.Send(0, 1, &Packet{Kind: KindPayload, Tag: 1, VSize: 50e6}) // ~0.5s in flight
	k.After(time.Millisecond, func() { fab.Unbind(1) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d after unbind", delivered)
	}
}

func TestFabricRebindResetsSequences(t *testing.T) {
	k := sim.New(1)
	net := simnet.New(k, testTopo(2))
	fab := NewFabric(net)
	fab.Place(0, 0)
	fab.Place(1, 1)
	var seqs []uint64
	bind := func() {
		fab.Bind(1, func(p *Packet) { seqs = append(seqs, p.Seq) })
	}
	bind()
	fab.Send(0, 1, &Packet{Kind: KindPayload, Tag: 1})
	fab.Send(0, 1, &Packet{Kind: KindPayload, Tag: 1})
	k.After(time.Millisecond, func() {
		fab.Unbind(1)
		bind()
		fab.Send(0, 1, &Packet{Kind: KindPayload, Tag: 1})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Two deliveries pre-reset (seq 1,2), one post-reset (seq 1 again:
	// the channel was recreated, as after a reconnect).
	if len(seqs) != 3 || seqs[0] != 1 || seqs[1] != 2 || seqs[2] != 1 {
		t.Fatalf("seqs %v", seqs)
	}
}

func TestFabricUnplacedPanics(t *testing.T) {
	k := sim.New(1)
	net := simnet.New(k, testTopo(1))
	fab := NewFabric(net)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unplaced endpoint")
		}
	}()
	fab.Send(0, 1, &Packet{})
}

func TestServiceEndpointIDs(t *testing.T) {
	if ServerID(0) == ServerID(1) {
		t.Fatal("server ids collide")
	}
	if !IsServer(ServerID(3)) || IsServer(SchedulerID) || IsServer(0) {
		t.Fatal("IsServer misclassifies")
	}
}

func TestFinalizeKeepsProgressAlive(t *testing.T) {
	k := sim.New(1)
	w := NewWorld(k, testTopo(2), Profile{Name: "sync"}, 2, 1)
	var lateSeen bool
	err := w.RunRanked(func(rank int) func(e *Engine) {
		return func(e *Engine) {
			if rank == 0 {
				// Finish immediately, then stay responsive: a marker-like
				// packet arriving later must still reach the filter even
				// though this rank makes no more MPI calls.
				e.SetFilter(probeFilter{&lateSeen})
				e.Finalize()
				e.LP().Advance(time.Second)
			} else {
				e.Compute(500 * time.Millisecond)
				e.Fabric().Send(1, 0, &Packet{Kind: KindMarker, Wave: 1})
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lateSeen {
		t.Fatal("finalized engine did not process a late protocol packet")
	}
}

type probeFilter struct{ seen *bool }

func (f probeFilter) OutPayload(*Packet) bool { return true }
func (f probeFilter) InPacket(p *Packet) bool {
	if p.Kind == KindMarker {
		*f.seen = true
		return false
	}
	return true
}
