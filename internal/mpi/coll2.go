package mpi

import "fmt"

// Additional collectives: Gather, Scatter and ReduceScatterBlock, written
// as resumable state machines like the core set in coll.go.  These use
// linear root algorithms (the NAS kernels use them rarely and on small
// payloads; tree variants would only change constants).

// Additional collective kinds.
const (
	CollGather CollKind = 32 + iota
	CollScatter
	CollReduceScatter
)

// GatherB collects one block from every rank on root (indexed by rank);
// other ranks receive nil.
func (e *Engine) GatherB(root int, block []byte) [][]byte {
	e.enterOp()
	defer e.exitOp()
	e.Stats.Collectives++
	cs, fresh := e.beginColl(CollGather)
	p := e.size
	tag := collTag(CollGather, cs.Seq, 0)
	if e.rank != root {
		if fresh {
			cs.Blocks = nil
		}
		if !cs.Sent {
			e.chargeSend(block, 0)
			e.sendPayload(root, tag, block, 0)
			cs.Sent = true
		}
		e.endColl()
		return nil
	}
	if fresh {
		cs.Blocks = make([][]byte, p)
		cs.Blocks[root] = append([]byte(nil), block...)
	}
	for cs.Round < p {
		src := cs.Round
		if src == root {
			cs.Round++
			continue
		}
		pkt := e.recvMatch(src, tag)
		cs.Blocks[src] = pkt.Data
		cs.Round++
	}
	out := cs.Blocks
	e.endColl()
	return out
}

// ScatterB distributes blocks[i] from root to rank i and returns each
// rank's block.  blocks is only read on root.
func (e *Engine) ScatterB(root int, blocks [][]byte) []byte {
	e.enterOp()
	defer e.exitOp()
	e.Stats.Collectives++
	cs, fresh := e.beginColl(CollScatter)
	p := e.size
	tag := collTag(CollScatter, cs.Seq, 0)
	if e.rank == root {
		if len(blocks) != p {
			panic(fmt.Sprintf("mpi: Scatter needs %d blocks, got %d", p, len(blocks)))
		}
		if fresh {
			cs.Data = append([]byte(nil), blocks[root]...)
		}
		for cs.Round < p {
			dst := cs.Round
			if dst == root {
				cs.Round++
				continue
			}
			e.chargeSend(blocks[dst], 0)
			e.sendPayload(dst, tag, blocks[dst], 0)
			cs.Round++
		}
		out := cs.Data
		e.endColl()
		return out
	}
	pkt := e.recvMatch(root, tag)
	out := pkt.Data
	e.endColl()
	return out
}

// ReduceScatterBlock reduces x element-wise with op and returns to each
// rank its own equal block of the result (len(x) must be a multiple of
// the process count).  Implemented as reduce-to-0 plus scatter.
func (e *Engine) ReduceScatterBlock(op ReduceOp, x []float64) []float64 {
	if len(x)%e.size != 0 {
		panic(fmt.Sprintf("mpi: ReduceScatterBlock length %d not divisible by %d", len(x), e.size))
	}
	e.enterOp()
	defer e.exitOp()
	e.Stats.Collectives++
	cs, fresh := e.beginColl(CollReduceScatter)
	p := e.size
	if fresh {
		cs.Op = op
		cs.Mask = 1
		cs.Stage = 0
		cs.AccF = append([]float64(nil), x...)
	}
	if cs.Stage == 0 {
		e.reduceSteps(cs, 0, CollReduceScatter)
		cs.Stage = 1
		cs.Round = 0
	}
	// Scatter the blocks from rank 0 (stage 1).
	blk := len(x) / p
	tag := collTag(CollReduceScatter, cs.Seq, 1)
	if e.rank == 0 {
		for cs.Round < p {
			dst := cs.Round
			if dst != 0 {
				buf := EncodeF64s(cs.AccF[dst*blk : (dst+1)*blk])
				e.chargeSend(buf, 0)
				e.sendPayload(dst, tag, buf, 0)
			}
			cs.Round++
		}
		out := append([]float64(nil), cs.AccF[:blk]...)
		e.endColl()
		return out
	}
	pkt := e.recvMatch(0, tag)
	out := DecodeF64s(pkt.Data)
	e.endColl()
	return out
}

// Probe reports without blocking whether a payload matching (src, tag) is
// already available.
func (e *Engine) Probe(src, tag int) bool {
	e.enterOp()
	defer e.exitOp()
	return e.findMatch(src, tag) >= 0
}
