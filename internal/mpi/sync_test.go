package mpi

import (
	"testing"
	"time"

	"ftckpt/internal/sim"
)

// recordFilter timestamps marker arrivals at the filter.
type recordFilter struct {
	k  *sim.Kernel
	at *[]sim.Time
}

func (f recordFilter) OutPayload(*Packet) bool { return true }
func (f recordFilter) InPacket(p *Packet) bool {
	if p.Kind == KindMarker {
		*f.at = append(*f.at, f.k.Now())
		return false
	}
	return true
}

// TestSyncProfileDefersProtocolPackets reproduces the progress-engine
// asymmetry the protocols live with: with a synchronous profile (MPICH2),
// a marker arriving mid-computation waits for the next MPI call; with an
// asynchronous daemon (MPICH-V), it is handled on arrival.
func TestSyncProfileDefersProtocolPackets(t *testing.T) {
	run := func(async bool) sim.Time {
		k := sim.New(1)
		w := NewWorld(k, testTopo(2), Profile{Name: "p", Async: async}, 2, 1)
		var seen []sim.Time
		err := w.RunRanked(func(rank int) func(e *Engine) {
			return func(e *Engine) {
				if rank == 0 {
					e.SetFilter(recordFilter{k, &seen})
					e.Compute(100 * time.Millisecond) // marker arrives in here
					e.Recv(1, 1)                      // first MPI call drains the inbox
				} else {
					e.Compute(time.Millisecond)
					e.Fabric().Send(1, 0, &Packet{Kind: KindMarker, Wave: 1})
					e.Compute(150 * time.Millisecond)
					e.Send(0, 1, nil, 0)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(seen) != 1 {
			t.Fatalf("filter saw %d markers", len(seen))
		}
		return seen[0]
	}
	syncAt := run(false)
	asyncAt := run(true)
	if asyncAt >= 10*time.Millisecond {
		t.Fatalf("async marker handled at %v, want ~arrival time", asyncAt)
	}
	if syncAt < 100*time.Millisecond {
		t.Fatalf("sync marker handled at %v, before the compute ended", syncAt)
	}
}
