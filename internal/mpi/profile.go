package mpi

import "ftckpt/internal/sim"

// Profile is the service profile of a communication stack: the software
// costs a message pays in addition to the network model.  The paper's three
// stacks differ exactly here:
//
//   - MPICH2 ft-sock (Pcl over TCP): a thin channel; small per-call
//     overheads, no daemon.
//   - MPICH2 Nemesis/GM (Pcl over Myrinet): minimal overheads and the
//     native low latency of the GM network (captured by the topology).
//   - MPICH-V ch_v (Vcl): every message crosses a separate communication
//     daemon through two Unix sockets, adding a per-message
//     store-and-forward latency and copy cost — the reason Vcl's base
//     performance trails on latency-bound benchmarks (paper, Fig. 7).
type Profile struct {
	Name string

	// SendOverhead is CPU time consumed in the sender's send call
	// (marshalling, syscalls).
	SendOverhead sim.Time

	// RecvOverhead is CPU time consumed when a receive completes.
	RecvOverhead sim.Time

	// CopyBW, when non-zero, adds size/CopyBW of CPU time to each send
	// call and receive completion — the user/kernel copy cost of a TCP
	// stack (lower for zero-copy-capable stacks like Nemesis/GM).
	CopyBW float64 // bytes per second

	// DaemonLatency is the per-message store-and-forward service latency
	// added by a communication daemon (total across hops); zero for
	// in-process channels.
	DaemonLatency sim.Time

	// DaemonCopyBW, when non-zero, adds size/DaemonCopyBW to the daemon
	// service time, modelling the extra memory copies.
	DaemonCopyBW float64 // bytes per second

	// CkptSteal is the fraction of the process's compute speed lost while
	// its checkpoint image is being written and transferred: the fork'd
	// clone's copy-on-write faults and the pipelined read-and-send compete
	// for the node's CPU and memory bandwidth (the paper's dual-processor
	// nodes run one MPI process per CPU, so there is no idle core to
	// absorb this).  Compute(d) takes d*(1+CkptSteal) while a transfer is
	// in flight.
	CkptSteal float64

	// ShipBW, when non-zero, caps the rate of the process's own image
	// transfer — MPICH-V's single-threaded daemon interleaves image
	// shipping with message handling, pacing the transfer, while
	// MPICH2's fork'd clone streams at full speed.
	ShipBW float64 // bytes per second

	// Async reports whether protocol packets (markers) are handled
	// asynchronously by a daemon even while the application computes
	// (MPICH-V architecture).  When false, packets are processed only
	// inside MPI calls, as in MPICH2's single-threaded progress engine —
	// so a long computation stalls a Pcl checkpoint wave, as in reality.
	Async bool
}

// daemonService returns the daemon service time for a packet, zero when
// the profile has no daemon.
func (pr *Profile) daemonService(size int64) sim.Time {
	d := pr.DaemonLatency
	if pr.DaemonCopyBW > 0 {
		d += sim.Time(float64(size) / pr.DaemonCopyBW * 1e9)
	}
	return d
}

// sendCost is the CPU time of one send call.
func (pr *Profile) sendCost(size int64) sim.Time {
	c := pr.SendOverhead
	if pr.CopyBW > 0 {
		c += sim.Time(float64(size) / pr.CopyBW * 1e9)
	}
	return c
}

// recvCost is the CPU time of one receive completion.
func (pr *Profile) recvCost(size int64) sim.Time {
	c := pr.RecvOverhead
	if pr.CopyBW > 0 {
		c += sim.Time(float64(size) / pr.CopyBW * 1e9)
	}
	return c
}
