package mpi

import (
	"encoding/binary"
	"math"
)

// EncodeF64s serializes a float64 slice little-endian (8 bytes each).
func EncodeF64s(x []float64) []byte {
	b := make([]byte, 8*len(x))
	for i, v := range x {
		binary.LittleEndian.PutUint64(b[8*i:], math.Float64bits(v))
	}
	return b
}

// DecodeF64s is the inverse of EncodeF64s.
func DecodeF64s(b []byte) []float64 {
	if len(b)%8 != 0 {
		panic("mpi: DecodeF64s: length not a multiple of 8")
	}
	x := make([]float64, len(b)/8)
	for i := range x {
		x[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return x
}

// EncodeF64 serializes a single float64.
func EncodeF64(v float64) []byte { return EncodeF64s([]float64{v}) }

// DecodeF64 deserializes a single float64.
func DecodeF64(b []byte) float64 { return DecodeF64s(b)[0] }
