package mpi

import (
	"fmt"
	"testing"
	"time"
)

func TestGatherScatter(t *testing.T) {
	for _, p := range []int{1, 2, 5, 8} {
		for _, root := range []int{0, p - 1} {
			p, root := p, root
			t.Run(fmt.Sprintf("p=%d root=%d", p, root), func(t *testing.T) {
				w := newWorld(t, p)
				gathered := make([][][]byte, p)
				scattered := make([][]byte, p)
				err := w.Run(func(e *Engine) {
					gathered[e.Rank()] = e.GatherB(root, []byte{byte(e.Rank() + 1)})
					var blocks [][]byte
					if e.Rank() == root {
						blocks = make([][]byte, p)
						for i := range blocks {
							blocks[i] = []byte{byte(100 + i)}
						}
					}
					scattered[e.Rank()] = e.ScatterB(root, blocks)
				})
				if err != nil {
					t.Fatal(err)
				}
				for r := 0; r < p; r++ {
					if r == root {
						for i, b := range gathered[r] {
							if len(b) != 1 || b[0] != byte(i+1) {
								t.Fatalf("root gathered[%d] = %v", i, b)
							}
						}
					} else if gathered[r] != nil {
						t.Fatalf("non-root %d gathered %v", r, gathered[r])
					}
					if len(scattered[r]) != 1 || scattered[r][0] != byte(100+r) {
						t.Fatalf("rank %d scattered %v", r, scattered[r])
					}
				}
			})
		}
	}
}

func TestReduceScatterBlock(t *testing.T) {
	for _, p := range []int{1, 2, 4, 6} {
		p := p
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			w := newWorld(t, p)
			results := make([][]float64, p)
			err := w.Run(func(e *Engine) {
				x := make([]float64, 2*p)
				for i := range x {
					x[i] = float64(e.Rank()*len(x) + i)
				}
				results[e.Rank()] = e.ReduceScatterBlock(OpSum, x)
			})
			if err != nil {
				t.Fatal(err)
			}
			n := 2 * p
			for r, got := range results {
				if len(got) != 2 {
					t.Fatalf("rank %d block %v", r, got)
				}
				for j := 0; j < 2; j++ {
					idx := r*2 + j
					want := 0.0
					for rr := 0; rr < p; rr++ {
						want += float64(rr*n + idx)
					}
					if got[j] != want {
						t.Fatalf("rank %d elem %d = %v, want %v", r, j, got[j], want)
					}
				}
			}
		})
	}
}

func TestProbe(t *testing.T) {
	w := newWorld(t, 2)
	var before, after bool
	err := w.Run(func(e *Engine) {
		if e.Rank() == 0 {
			e.Compute(time.Millisecond)
			e.Send(1, 3, nil, 0)
		} else {
			before = e.Probe(0, 3)
			e.Compute(2 * time.Millisecond)
			after = e.Probe(0, 3)
			e.Recv(0, 3)
			if e.Probe(0, 3) {
				t.Error("Probe true after the message was consumed")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if before {
		t.Fatal("Probe true before the send")
	}
	if !after {
		t.Fatal("Probe false after arrival")
	}
}
