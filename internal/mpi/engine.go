package mpi

import (
	"fmt"

	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// Filter is the fault-tolerance protocol's view of the device, mirroring
// the paper's hook points.  A nil-equivalent pass-through is used when
// checkpointing is disabled.
//
// OutPayload is consulted before a payload packet reaches the wire; the
// protocol returns false to hold it (Pcl's delayed sends) and later emits
// it with Engine.WireSend.  InPacket sees every packet arriving from the
// wire; the protocol returns false to consume it (markers, control) or to
// hold it (Pcl's delayed receive queue — re-injected later with
// Engine.Deliver), and true to let it reach the matching engine (it may
// also copy it first, as Vcl's logging does).
type Filter interface {
	OutPayload(p *Packet) bool
	InPacket(p *Packet) bool
}

// PassFilter is the no-protocol filter: everything passes.
type PassFilter struct{}

// OutPayload always passes.
func (PassFilter) OutPayload(*Packet) bool { return true }

// InPacket always passes.
func (PassFilter) InPacket(*Packet) bool { return true }

// Stats counts an engine's activity.
type Stats struct {
	SendCalls    int64
	RecvCalls    int64
	Collectives  int64
	PayloadBytes int64
	BlockedTime  sim.Time
}

// Engine is one MPI process's communication engine: eager sends, blocking
// receives with (source, tag) matching and wildcards, and resumable
// collectives.  All methods except HandleWire, Deliver, WireSend,
// CaptureImage and RestoreImage must be called from the process's own LP.
type Engine struct {
	rank, size int
	lp         *sim.Proc
	prof       Profile
	fab        *Fabric
	filter     Filter
	cond       *sim.Cond

	// inbox holds wire packets not yet run through the filter: with a
	// synchronous profile (MPICH2-style progress engine) packets arriving
	// while the application computes wait here until the next MPI call.
	// It is a sliding-window ring (inboxHead advances, array reset when
	// drained) so steady traffic reuses one backing array.
	inbox      []*Packet
	inboxHead  int
	daemonBusy sim.Time
	// admitPool recycles the records that carry a packet through a
	// daemon-service delay event without a per-packet closure.
	//
	//ftlint:pool
	admitPool []*admitRec

	unexpected []*Packet
	opDepth    int
	waiting    bool
	waitSrc    int
	waitTag    int

	collSeq uint64
	//ftlint:pool
	coll *CollState
	//ftlint:pool
	collFree *CollState // recycled by endColl, reused by beginColl
	closed   bool
	steal    float64 // background checkpoint work stealing compute speed

	// ULFM error-reporting mode (see ulfm.go): failed marks peers known
	// dead, revoked aborts every blocking operation, epoch counts
	// communicator incarnations so stale in-pipeline packets are dropped.
	ft      bool
	revoked bool
	failed  []bool
	epoch   int

	// met, when set, receives blocked-receive time observations
	// ("mpi.recv_blocked"); nil-safe.
	met *obs.Metrics
	// hub, when set, receives application-layer events (EmitFT); nil-safe.
	hub *obs.Hub

	// Stat counters, exported for experiment harnesses.
	Stats Stats
}

// NewEngine builds the engine for rank running on LP lp over fabric fab.
// The engine binds itself as the fabric handler for rank.
func NewEngine(rank, size int, lp *sim.Proc, prof Profile, fab *Fabric) *Engine {
	if size <= 0 || rank < 0 || rank >= size {
		panic(fmt.Sprintf("mpi: invalid rank %d of %d", rank, size))
	}
	e := &Engine{
		rank: rank, size: size, lp: lp, prof: prof, fab: fab,
		filter: PassFilter{},
		cond:   sim.NewCond(lp.Kernel()),
	}
	fab.Bind(rank, e.HandleWire)
	return e
}

// Rank returns this process's rank.
func (e *Engine) Rank() int { return e.rank }

// Size returns the number of MPI processes.
func (e *Engine) Size() int { return e.size }

// Now returns the current virtual time.
func (e *Engine) Now() sim.Time { return e.lp.Now() }

// LP returns the process's logical process.
func (e *Engine) LP() *sim.Proc { return e.lp }

// Fabric returns the fabric the engine sends through.
func (e *Engine) Fabric() *Fabric { return e.fab }

// Profile returns the engine's service profile.
func (e *Engine) Profile() Profile { return e.prof }

// SetMetrics attaches the observability registry the engine reports
// blocked-receive durations to (nil disables).
func (e *Engine) SetMetrics(m *obs.Metrics) { e.met = m }

// SetObs attaches the observability hub application-layer events are
// published through (nil disables).
func (e *Engine) SetObs(h *obs.Hub) { e.hub = h }

// EmitFT publishes an application-layer event (e.g. an in-memory partner
// checkpoint) through the runtime's hub, stamping the current virtual
// time.  No-op when no hub is attached.
func (e *Engine) EmitFT(ev obs.Event) {
	if e.hub == nil {
		return
	}
	ev.T = e.lp.Now()
	e.hub.Emit(ev)
}

// SetFilter installs the fault-tolerance protocol filter.
func (e *Engine) SetFilter(f Filter) {
	if f == nil {
		f = PassFilter{}
	}
	e.filter = f
}

// Compute consumes d of virtual CPU time.  It is not an MPI call: with a
// synchronous profile, protocol packets arriving meanwhile wait for the
// next MPI call, exactly as with MPICH2's in-call progress engine.  While
// background checkpoint work is in flight (AddSteal), compute runs slower.
func (e *Engine) Compute(d sim.Time) {
	if e.steal > 0 {
		d = sim.Time(float64(d) * (1 + e.steal))
	}
	e.lp.Advance(d)
}

// AddSteal registers background work (an in-flight checkpoint transfer)
// stealing a fraction of the process's compute speed; SubSteal removes it.
func (e *Engine) AddSteal(f float64) { e.steal += f }

// SubSteal removes previously registered background work.
func (e *Engine) SubSteal(f float64) {
	e.steal -= f
	if e.steal < 0 {
		e.steal = 0
	}
}

// --- wire-side path (event context) -----------------------------------

// HandleWire accepts a packet from the fabric.  It applies the daemon
// service time (store-and-forward, preserving order) if the profile has
// one, then either processes the packet immediately (asynchronous daemon,
// or the application is inside an MPI call) or defers it to the inbox.
func (e *Engine) HandleWire(p *Packet) {
	if e.closed {
		return
	}
	if svc := e.prof.daemonService(p.PayloadSize()); svc > 0 {
		k := e.lp.Kernel()
		now := k.Now()
		ready := e.daemonBusy
		if ready < now {
			ready = now
		}
		ready += svc
		e.daemonBusy = ready
		r := e.getAdmit()
		r.e, r.p, r.epoch = e, p, e.epoch
		k.AtArg(ready, admitEvent, r)
		return
	}
	e.admit(p)
}

// admitRec carries a packet through the daemon-service delay; it returns
// to the engine's pool as the event fires.
//
// Lifetime rule (enforced by ftlint's poolescape analyzer): a *admitRec
// is valid from getAdmit until admitEvent recycles it — the scheduled
// event is the sole reference; a pointer retained past the event fire
// aliases a later packet's record.
//
//ftlint:pooled
type admitRec struct {
	e *Engine
	p *Packet
	// epoch is the communicator incarnation the packet arrived in; if the
	// engine was repaired while the packet sat in the daemon-service
	// delay, admitEvent drops it (a revoked incarnation's message must
	// never reach the repaired one) — after recycling the record.
	epoch int
}

func (e *Engine) getAdmit() *admitRec {
	if last := len(e.admitPool) - 1; last >= 0 {
		r := e.admitPool[last]
		e.admitPool = e.admitPool[:last]
		return r
	}
	return &admitRec{}
}

func admitEvent(x any) {
	r := x.(*admitRec)
	e, p, epoch := r.e, r.p, r.epoch
	r.e, r.p = nil, nil
	e.admitPool = append(e.admitPool, r)
	if e.ft && epoch != e.epoch {
		return // sent to a since-revoked incarnation: drop, record recycled
	}
	e.admit(p)
}

// Close marks the engine dead (its process was killed): packets still in
// the pipeline — e.g. scheduled daemon-service events — are discarded
// instead of mutating a defunct process's state.
func (e *Engine) Close() { e.closed = true }

func (e *Engine) admit(p *Packet) {
	if e.closed {
		return
	}
	if e.prof.Async || e.opDepth > 0 {
		e.process(p)
		return
	}
	e.inbox = append(e.inbox, p)
}

func (e *Engine) process(p *Packet) {
	if e.filter.InPacket(p) {
		e.Deliver(p)
	}
}

// Deliver hands a payload packet to the matching engine.  Protocols call
// it to re-inject held or replayed messages.  Delivery to a closed engine
// (a torn-down incarnation) is dropped.
func (e *Engine) Deliver(p *Packet) {
	if e.closed {
		return
	}
	if p.Kind != KindPayload {
		panic(fmt.Sprintf("mpi: %v reached the matching engine", p))
	}
	e.unexpected = append(e.unexpected, p)
	if e.waiting && match(p, e.waitSrc, e.waitTag) {
		e.cond.Signal()
	}
}

// WireSend transmits a packet directly, bypassing the outgoing gate.
// Protocols use it for markers, control messages and released delayed
// sends.  The packet must already carry Dst.
func (e *Engine) WireSend(p *Packet) { e.fab.Send(e.rank, p.Dst, p) }

// --- op bracketing ------------------------------------------------------

func (e *Engine) enterOp() {
	e.opDepth++
	if e.opDepth == 1 {
		e.drainInbox()
	}
}

func (e *Engine) exitOp() { e.opDepth-- }

func (e *Engine) drainInbox() {
	for e.inboxHead < len(e.inbox) {
		p := e.inbox[e.inboxHead]
		e.inbox[e.inboxHead] = nil
		e.inboxHead++
		e.process(p)
	}
	e.inbox = e.inbox[:0]
	e.inboxHead = 0
}

// advanceInOp parks inside an MPI call; packets arriving meanwhile are
// processed immediately (the progress engine is polling).
func (e *Engine) advanceInOp(d sim.Time) { e.lp.Advance(d) }

// --- point-to-point -----------------------------------------------------

// Send transmits data (and/or a modelled vsize) to dst with an application
// tag (tag must be >= 0).  Sends are eager: the call returns once the
// message is handed to the device; it never blocks waiting for the
// receiver, so a checkpoint can never split a send.
func (e *Engine) Send(dst, tag int, data []byte, vsize int64) {
	if tag < 0 {
		panic("mpi: application tags must be >= 0")
	}
	e.enterOp()
	defer e.exitOp()
	e.Stats.SendCalls++
	e.chargeSend(data, vsize)
	e.sendPayload(dst, tag, data, vsize)
}

// chargeSend consumes the CPU cost of a send call.  It runs before the
// packet is built, so a checkpoint taken while parked here restores to a
// state where the send never happened and re-execution emits it once.
func (e *Engine) chargeSend(data []byte, vsize int64) {
	size := int64(len(data))
	if vsize > size {
		size = vsize
	}
	if c := e.prof.sendCost(size); c > 0 {
		e.advanceInOp(c)
	}
}

// sendPayload builds and emits a payload packet through the outgoing gate.
func (e *Engine) sendPayload(dst, tag int, data []byte, vsize int64) {
	var buf []byte
	if len(data) > 0 {
		buf = append([]byte(nil), data...)
	}
	p := &Packet{Src: e.rank, Dst: dst, Kind: KindPayload, Tag: tag, Data: buf, VSize: vsize}
	e.Stats.PayloadBytes += p.PayloadSize()
	if e.filter.OutPayload(p) {
		e.fab.Send(e.rank, dst, p)
	}
}

// Recv blocks until a payload matching (src, tag) is available and returns
// it.  src may be AnySource; tag may be AnyTag (matching only application
// tags >= 0).
func (e *Engine) Recv(src, tag int) *Packet {
	e.enterOp()
	defer e.exitOp()
	e.Stats.RecvCalls++
	return e.recvMatch(src, tag)
}

func (e *Engine) recvMatch(src, tag int) *Packet {
	for {
		// In FT mode a revocation or known peer failure aborts the receive
		// (both on entry and on every wake) instead of blocking forever.
		e.ftCheck(src)
		if i := e.findMatch(src, tag); i >= 0 {
			if c := e.prof.recvCost(e.unexpected[i].PayloadSize()); c > 0 {
				e.advanceInOp(c)
				// The queue may have grown while parked; re-find the
				// first match (never lost: only recvMatch removes).
				i = e.findMatch(src, tag)
			}
			p := e.unexpected[i]
			e.unexpected = append(e.unexpected[:i], e.unexpected[i+1:]...)
			return p
		}
		e.waiting, e.waitSrc, e.waitTag = true, src, tag
		t0 := e.lp.Now()
		e.cond.Wait(e.lp)
		blocked := e.lp.Now() - t0
		e.Stats.BlockedTime += blocked
		e.met.Observe("mpi.recv_blocked", blocked)
		e.waiting = false
	}
}

func (e *Engine) findMatch(src, tag int) int {
	for i, p := range e.unexpected {
		if match(p, src, tag) {
			return i
		}
	}
	return -1
}

func match(p *Packet, src, tag int) bool {
	if src != AnySource && p.Src != src {
		return false
	}
	switch tag {
	case AnyTag:
		return p.Tag >= 0 // wildcards never match internal collective tags
	default:
		return p.Tag == tag
	}
}

// Sendrecv sends to dst and receives from src, resumable across a
// checkpoint: if a snapshot is taken while blocked in the receive, the
// restored process does not send again.
func (e *Engine) Sendrecv(dst, sendTag int, data []byte, vsize int64, src, recvTag int) *Packet {
	e.enterOp()
	defer e.exitOp()
	e.Stats.SendCalls++
	e.Stats.RecvCalls++
	cs, _ := e.beginColl(CollSendrecv)
	if !cs.Sent {
		e.chargeSend(data, vsize)
		e.sendPayload(dst, sendTag, data, vsize)
		cs.Sent = true
	}
	p := e.recvMatch(src, recvTag)
	e.endColl()
	return p
}

// --- checkpoint support --------------------------------------------------

// EngineImage is the engine state stored inside a process checkpoint: the
// received-but-unconsumed messages and the progress of any in-flight
// collective operation.
type EngineImage struct {
	Unexpected []*Packet
	CollSeq    uint64
	Coll       *CollState
}

// CaptureImage snapshots the engine.  It may be called from event context
// while the process LP is parked — the kernel serializes execution, so the
// state is quiescent.
func (e *Engine) CaptureImage() *EngineImage {
	img := &EngineImage{CollSeq: e.collSeq}
	for _, p := range e.unexpected {
		img.Unexpected = append(img.Unexpected, p.Clone())
	}
	if e.coll != nil {
		img.Coll = e.coll.clone()
	}
	return img
}

// RestoreImage loads a captured image into a fresh engine (after restart).
func (e *Engine) RestoreImage(img *EngineImage) {
	e.unexpected = nil
	for _, p := range img.Unexpected {
		e.unexpected = append(e.unexpected, p.Clone())
	}
	e.collSeq = img.CollSeq
	e.coll = nil
	if img.Coll != nil {
		e.coll = img.Coll.clone()
		e.coll.Resumed = true
	}
}

// Clone deep-copies an engine image.
func (img *EngineImage) Clone() *EngineImage {
	c := &EngineImage{CollSeq: img.CollSeq}
	for _, p := range img.Unexpected {
		c.Unexpected = append(c.Unexpected, p.Clone())
	}
	if img.Coll != nil {
		c.Coll = img.Coll.clone()
	}
	return c
}

// Debug renders the engine's blocking state for diagnostics: what the
// process is waiting for and what is queued.
func (e *Engine) Debug() string {
	s := fmt.Sprintf("rank %d", e.rank)
	if e.waiting {
		s += fmt.Sprintf(" waiting(src=%d tag=%d)", e.waitSrc, e.waitTag)
	}
	if e.coll != nil {
		s += fmt.Sprintf(" in %v(seq=%d stage=%d mask=%d round=%d sent=%v)",
			e.coll.Kind, e.coll.Seq, e.coll.Stage, e.coll.Mask, e.coll.Round, e.coll.Sent)
	}
	s += fmt.Sprintf(" unexpected=%d inbox=%d", len(e.unexpected), len(e.inbox)-e.inboxHead)
	for _, p := range e.unexpected {
		s += fmt.Sprintf(" [%d:%d]", p.Src, p.Tag)
	}
	return s
}

// StateBytes estimates the engine's contribution to the checkpoint image
// size (unconsumed messages are part of the process memory).
func (img *EngineImage) StateBytes() int64 {
	var n int64 = 64
	for _, p := range img.Unexpected {
		n += p.PayloadSize() + packetHeader
	}
	return n
}
