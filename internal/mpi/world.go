package mpi

import (
	"fmt"

	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

// World wires a set of MPI engines onto a simulated platform with no fault
// tolerance — the direct way to run an SPMD function, used by tests,
// examples and the no-checkpoint baselines.  Fault-tolerant runs go
// through the ftpm dispatcher instead.
type World struct {
	K       *sim.Kernel
	Net     *simnet.Network
	Fab     *Fabric
	Engines []*Engine

	bodyFn func(rank int) func(e *Engine)
}

// NewWorld builds size processes over topo, placing rank r on node
// r/procsPerNode, all with profile prof.
func NewWorld(k *sim.Kernel, topo simnet.Topology, prof Profile, size, procsPerNode int) *World {
	if procsPerNode <= 0 {
		procsPerNode = 1
	}
	net := simnet.New(k, topo)
	if need := (size + procsPerNode - 1) / procsPerNode; need > net.NumNodes() {
		panic(fmt.Sprintf("mpi: %d processes at %d per node need %d nodes, platform has %d",
			size, procsPerNode, need, net.NumNodes()))
	}
	w := &World{K: k, Net: net, Fab: NewFabric(net)}
	w.Engines = make([]*Engine, size)
	for r := 0; r < size; r++ {
		w.Fab.Place(r, r/procsPerNode)
	}
	for r := 0; r < size; r++ {
		r := r
		k.Go(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
			w.Engines[r] = NewEngine(r, size, p, prof, w.Fab)
			p.Yield() // let every engine bind before any rank's body sends
			w.bodyFn(r)(w.Engines[r])
		})
	}
	return w
}

// Run executes body on every rank and runs the simulation to completion.
func (w *World) Run(body func(e *Engine)) error {
	w.bodyFn = func(int) func(e *Engine) { return body }
	return w.K.Run()
}

// RunRanked executes a per-rank body and runs the simulation.
func (w *World) RunRanked(body func(rank int) func(e *Engine)) error {
	w.bodyFn = body
	return w.K.Run()
}
