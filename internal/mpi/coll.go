package mpi

import "fmt"

// CollKind identifies a collective (or resumable point-to-point) operation.
type CollKind uint8

// Collective kinds.
const (
	CollNone CollKind = iota
	CollBarrier
	CollBcast
	CollReduce
	CollAllreduce
	CollAllgather
	CollAlltoall
	CollSendrecv
	CollWaitall
)

// ReduceOp is a commutative, associative reduction operator.
type ReduceOp uint8

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpMax
	OpMin
)

func applyOp(op ReduceOp, acc, x []float64) {
	if len(acc) != len(x) {
		panic(fmt.Sprintf("mpi: reduce length mismatch %d vs %d", len(acc), len(x)))
	}
	switch op {
	case OpSum:
		for i := range acc {
			acc[i] += x[i]
		}
	case OpMax:
		for i := range acc {
			if x[i] > acc[i] {
				acc[i] = x[i]
			}
		}
	case OpMin:
		for i := range acc {
			if x[i] < acc[i] {
				acc[i] = x[i]
			}
		}
	default:
		panic("mpi: unknown reduce op")
	}
}

// CollState is the serializable progress of an in-flight collective.  It is
// part of the checkpoint image, which is what makes it legal to take a
// coordinated checkpoint while a process is blocked inside a collective:
// after restart the re-invoked operation resumes at the recorded round
// instead of re-executing completed sends.
//
// Lifetime rule (enforced by ftlint's poolescape analyzer): the engine
// recycles its CollState through Engine.collFree, so a *CollState is
// valid only while its collective is in flight; anything that must
// outlive the operation (a checkpoint image) stores clone() instead.
//
//ftlint:pooled
type CollState struct {
	Kind    CollKind
	Seq     uint64
	Stage   int
	Mask    int
	Round   int
	Sent    bool
	Op      ReduceOp
	AccF    []float64
	Data    []byte
	Blocks  [][]byte
	Resumed bool
}

func (cs *CollState) clone() *CollState {
	c := *cs
	if cs.AccF != nil {
		c.AccF = append([]float64(nil), cs.AccF...)
	}
	if cs.Data != nil {
		c.Data = append([]byte(nil), cs.Data...)
	}
	if cs.Blocks != nil {
		c.Blocks = make([][]byte, len(cs.Blocks))
		for i, b := range cs.Blocks {
			if b != nil {
				c.Blocks[i] = append([]byte(nil), b...)
			}
		}
	}
	return &c
}

// beginColl starts or resumes a collective.  fresh is true when the state
// was newly created (initialize buffers), false when resuming after a
// restore (skip initialization and completed rounds).
func (e *Engine) beginColl(kind CollKind) (cs *CollState, fresh bool) {
	if e.coll != nil {
		if !e.coll.Resumed || e.coll.Kind != kind {
			panic(fmt.Sprintf("mpi: rank %d: %v invoked while %v in flight (resumed=%v)",
				e.rank, kind, e.coll.Kind, e.coll.Resumed))
		}
		e.coll.Resumed = false
		return e.coll, false
	}
	if cs = e.collFree; cs != nil {
		e.collFree = nil
	} else {
		cs = &CollState{}
	}
	cs.Kind = kind
	if kind != CollSendrecv && kind != CollWaitall {
		// Point-to-point resumable ops don't consume a collective
		// sequence number: tags stay aligned across ranks that perform
		// different numbers of them.
		e.collSeq++
		cs.Seq = e.collSeq
	}
	e.coll = cs
	return cs, true
}

// endColl retires the in-flight state, recycling the struct.  Nothing may
// retain cs past the operation (images clone it), so reuse is safe; the
// buffer fields are dropped rather than reused because the collectives
// alias caller data into them.
func (e *Engine) endColl() {
	if cs := e.coll; cs != nil {
		*cs = CollState{}
		e.collFree = cs
	}
	e.coll = nil
}

// collTag builds an internal (negative) tag unique per (kind, collective
// sequence mod 64, round): at most two consecutive collectives can have
// packets in flight on one channel, so 64 sequence classes are ample.
func collTag(kind CollKind, seq uint64, round int) int {
	return -(1 + int(kind) + 16*(int(seq%64)+64*round))
}

// Barrier blocks until every process has entered it (dissemination
// algorithm, ceil(log2 p) rounds, any process count).
func (e *Engine) Barrier() {
	e.enterOp()
	defer e.exitOp()
	e.Stats.Collectives++
	cs, fresh := e.beginColl(CollBarrier)
	if fresh {
		cs.Mask = 1
	}
	p := e.size
	for cs.Mask < p {
		dst := (e.rank + cs.Mask) % p
		src := (e.rank - cs.Mask + p) % p
		tag := collTag(CollBarrier, cs.Seq, cs.Round)
		if !cs.Sent {
			e.sendPayload(dst, tag, nil, 0)
			cs.Sent = true
		}
		e.recvMatch(src, tag)
		cs.Mask <<= 1
		cs.Round++
		cs.Sent = false
	}
	e.endColl()
}

// Bcast distributes root's data to every process (binomial tree) and
// returns each process's copy.
func (e *Engine) Bcast(root int, data []byte) []byte {
	e.enterOp()
	defer e.exitOp()
	e.Stats.Collectives++
	cs, fresh := e.beginColl(CollBcast)
	p := e.size
	rel := (e.rank - root + p) % p
	if fresh {
		cs.Mask = 1
		cs.Stage = 0
		if rel == 0 {
			cs.Data = append([]byte(nil), data...)
		}
	}
	tag := collTag(CollBcast, cs.Seq, 0)
	if cs.Stage == 0 {
		if rel == 0 {
			for cs.Mask < p {
				cs.Mask <<= 1
			}
		} else {
			for cs.Mask < p {
				if rel&cs.Mask != 0 {
					src := e.rank - cs.Mask
					if src < 0 {
						src += p
					}
					pkt := e.recvMatch(src, tag)
					cs.Data = pkt.Data
					break
				}
				cs.Mask <<= 1
			}
		}
		cs.Mask >>= 1
		cs.Stage = 1
	}
	for cs.Mask > 0 {
		if rel+cs.Mask < p {
			dst := e.rank + cs.Mask
			if dst >= p {
				dst -= p
			}
			e.chargeSend(cs.Data, 0)
			e.sendPayload(dst, tag, cs.Data, 0)
		}
		cs.Mask >>= 1
	}
	out := cs.Data
	e.endColl()
	return out
}

// ReduceF64 reduces x with op onto root (binomial tree).  Root receives
// the result; other ranks receive nil.
func (e *Engine) ReduceF64(root int, op ReduceOp, x []float64) []float64 {
	e.enterOp()
	defer e.exitOp()
	e.Stats.Collectives++
	cs, fresh := e.beginColl(CollReduce)
	if fresh {
		cs.Op = op
		cs.Mask = 1
		cs.AccF = append([]float64(nil), x...)
	}
	e.reduceSteps(cs, root, CollReduce)
	var out []float64
	if e.rank == root {
		out = cs.AccF
	}
	e.endColl()
	return out
}

// reduceSteps runs the binomial-tree reduction toward root over
// cs.{Mask,AccF}; on return root holds the reduction.
func (e *Engine) reduceSteps(cs *CollState, root int, kind CollKind) {
	p := e.size
	rel := (e.rank - root + p) % p
	tag := collTag(kind, cs.Seq, 0)
	for cs.Mask < p {
		if rel&cs.Mask == 0 {
			srcRel := rel | cs.Mask
			if srcRel < p {
				src := (srcRel + root) % p
				pkt := e.recvMatch(src, tag)
				applyOp(cs.Op, cs.AccF, DecodeF64s(pkt.Data))
			}
		} else {
			dstRel := rel &^ cs.Mask
			dst := (dstRel + root) % p
			buf := EncodeF64s(cs.AccF)
			e.chargeSend(buf, 0)
			e.sendPayload(dst, tag, buf, 0)
			cs.Mask = p // done: contribution handed off
			break
		}
		cs.Mask <<= 1
	}
}

// AllreduceF64 reduces x with op and returns the result on every process
// (reduce to rank 0, then binomial broadcast).
func (e *Engine) AllreduceF64(op ReduceOp, x []float64) []float64 {
	e.enterOp()
	defer e.exitOp()
	e.Stats.Collectives++
	cs, fresh := e.beginColl(CollAllreduce)
	p := e.size
	if fresh {
		cs.Op = op
		cs.Mask = 1
		cs.Stage = 0
		cs.AccF = append([]float64(nil), x...)
	}
	if cs.Stage == 0 {
		e.reduceSteps(cs, 0, CollAllreduce)
		cs.Stage = 1
		cs.Mask = 1
	}
	// Broadcast the result from rank 0 (stages 1: receive, 2: send down).
	tag := collTag(CollAllreduce, cs.Seq, 1)
	if cs.Stage == 1 {
		if e.rank == 0 {
			for cs.Mask < p {
				cs.Mask <<= 1
			}
		} else {
			for cs.Mask < p {
				if e.rank&cs.Mask != 0 {
					src := e.rank - cs.Mask
					pkt := e.recvMatch(src, tag)
					cs.AccF = DecodeF64s(pkt.Data)
					break
				}
				cs.Mask <<= 1
			}
		}
		cs.Mask >>= 1
		cs.Stage = 2
	}
	for cs.Mask > 0 {
		if e.rank+cs.Mask < p {
			buf := EncodeF64s(cs.AccF)
			e.chargeSend(buf, 0)
			e.sendPayload(e.rank+cs.Mask, tag, buf, 0)
		}
		cs.Mask >>= 1
	}
	out := cs.AccF
	e.endColl()
	return out
}

// AllgatherB gathers one block from every process on every process (ring
// algorithm, p-1 rounds).  The result is indexed by rank.
func (e *Engine) AllgatherB(block []byte) [][]byte {
	e.enterOp()
	defer e.exitOp()
	e.Stats.Collectives++
	cs, fresh := e.beginColl(CollAllgather)
	p := e.size
	if fresh {
		cs.Blocks = make([][]byte, p)
		cs.Blocks[e.rank] = append([]byte(nil), block...)
	}
	right := (e.rank + 1) % p
	left := (e.rank - 1 + p) % p
	for cs.Round < p-1 {
		tag := collTag(CollAllgather, cs.Seq, cs.Round)
		sendIdx := ((e.rank-cs.Round)%p + p) % p
		if !cs.Sent {
			e.chargeSend(cs.Blocks[sendIdx], 0)
			e.sendPayload(right, tag, cs.Blocks[sendIdx], 0)
			cs.Sent = true
		}
		pkt := e.recvMatch(left, tag)
		recvIdx := ((e.rank-cs.Round-1)%p + p) % p
		cs.Blocks[recvIdx] = pkt.Data
		cs.Round++
		cs.Sent = false
	}
	out := cs.Blocks
	e.endColl()
	return out
}

// AlltoallB exchanges blocks[i] with every rank i and returns the blocks
// received, indexed by source rank (pairwise exchange, p-1 rounds).
func (e *Engine) AlltoallB(blocks [][]byte) [][]byte {
	if len(blocks) != e.size {
		panic(fmt.Sprintf("mpi: Alltoall needs %d blocks, got %d", e.size, len(blocks)))
	}
	e.enterOp()
	defer e.exitOp()
	e.Stats.Collectives++
	cs, fresh := e.beginColl(CollAlltoall)
	p := e.size
	if fresh {
		cs.Round = 1
		cs.Blocks = make([][]byte, p)
		cs.Blocks[e.rank] = append([]byte(nil), blocks[e.rank]...)
	}
	for cs.Round < p {
		tag := collTag(CollAlltoall, cs.Seq, cs.Round)
		dst := (e.rank + cs.Round) % p
		src := (e.rank - cs.Round + p) % p
		if !cs.Sent {
			e.chargeSend(blocks[dst], 0)
			e.sendPayload(dst, tag, blocks[dst], 0)
			cs.Sent = true
		}
		pkt := e.recvMatch(src, tag)
		cs.Blocks[src] = pkt.Data
		cs.Round++
		cs.Sent = false
	}
	out := cs.Blocks
	e.endColl()
	return out
}

func (k CollKind) String() string {
	switch k {
	case CollNone:
		return "none"
	case CollBarrier:
		return "barrier"
	case CollBcast:
		return "bcast"
	case CollReduce:
		return "reduce"
	case CollAllreduce:
		return "allreduce"
	case CollAllgather:
		return "allgather"
	case CollAlltoall:
		return "alltoall"
	case CollSendrecv:
		return "sendrecv"
	case CollWaitall:
		return "waitall"
	}
	return fmt.Sprintf("coll(%d)", uint8(k))
}
