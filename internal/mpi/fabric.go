package mpi

import (
	"fmt"

	"ftckpt/internal/obs"
	"ftckpt/internal/simnet"
)

// Fabric places endpoints (MPI ranks and runtime services) on simulated
// nodes and provides a FIFO channel per ordered endpoint pair, created
// lazily on first use — as MPICH2 opens TCP connections on the first
// communication between two processes.  Unbinding an endpoint (process
// death) closes every channel touching it, dropping in-flight packets like
// a socket reset; channels are recreated fresh (sequence numbers restart)
// when the endpoint is bound again, modelling the communication-layer
// reinitialization the paper's restart performs.
type Fabric struct {
	net      *simnet.Network
	nodeOf   map[int]int
	handlers map[int]func(*Packet)
	chans    map[[2]int]*simnet.Channel
	seq      map[[2]int]uint64

	// met, when set, mirrors the traffic counters into the observability
	// registry ("fabric.msgs", "fabric.payload_bytes"); nil-safe.
	met *obs.Metrics

	// MsgCount and PayloadBytes accumulate global traffic statistics.
	MsgCount     int64
	PayloadBytes int64
}

// NewFabric wraps a simulated network.
func NewFabric(net *simnet.Network) *Fabric {
	return &Fabric{
		net:      net,
		nodeOf:   make(map[int]int),
		handlers: make(map[int]func(*Packet)),
		chans:    make(map[[2]int]*simnet.Channel),
		seq:      make(map[[2]int]uint64),
	}
}

// Net exposes the underlying network (for bulk image flows).
func (f *Fabric) Net() *simnet.Network { return f.net }

// SetMetrics attaches the observability registry traffic counters are
// mirrored into (nil disables).
func (f *Fabric) SetMetrics(m *obs.Metrics) { f.met = m }

// Place assigns an endpoint to a node.  An endpoint must be placed before
// it sends, receives, or is bound.
func (f *Fabric) Place(id, node int) {
	if node < 0 || node >= f.net.NumNodes() {
		panic(fmt.Sprintf("mpi: endpoint %d placed on invalid node %d", id, node))
	}
	f.nodeOf[id] = node
}

// NodeOf returns the node an endpoint lives on.
func (f *Fabric) NodeOf(id int) int {
	n, ok := f.nodeOf[id]
	if !ok {
		panic(fmt.Sprintf("mpi: endpoint %d not placed", id))
	}
	return n
}

// Placed reports whether the endpoint has been placed on a node.
func (f *Fabric) Placed(id int) bool {
	_, ok := f.nodeOf[id]
	return ok
}

// Bind registers the packet handler for an endpoint.  The handler runs as
// an event callback for every packet addressed to the endpoint.
func (f *Fabric) Bind(id int, h func(*Packet)) {
	f.handlers[id] = h
}

// Unbind removes an endpoint's handler and resets every channel touching
// it.  Queued and in-flight packets are lost.
func (f *Fabric) Unbind(id int) {
	delete(f.handlers, id)
	for key, ch := range f.chans {
		if key[0] == id || key[1] == id {
			ch.Close()
			delete(f.chans, key)
			delete(f.seq, key)
		}
	}
}

// Send transmits a packet from src to dst over their FIFO channel.  The
// packet's Seq is assigned here.  Sending to an unplaced endpoint panics
// (programming error); sending to an unbound one silently drops at
// delivery time (peer died).
func (f *Fabric) Send(src, dst int, p *Packet) {
	p.Src, p.Dst = src, dst
	key := [2]int{src, dst}
	ch, ok := f.chans[key]
	if !ok {
		ch = f.net.NewChannel(f.NodeOf(src), f.NodeOf(dst), func(payload any) {
			pkt := payload.(*Packet)
			if h, bound := f.handlers[pkt.Dst]; bound {
				h(pkt)
			}
		})
		f.chans[key] = ch
	}
	f.seq[key]++
	p.Seq = f.seq[key]
	f.MsgCount++
	f.PayloadBytes += p.PayloadSize()
	f.met.Inc("fabric.msgs")
	f.met.Add("fabric.payload_bytes", p.PayloadSize())
	ch.Send(p, p.WireSize())
}
