package mpi

import (
	"fmt"
	"sort"

	"ftckpt/internal/obs"
	"ftckpt/internal/simnet"
)

// handlerOff maps endpoint ids onto handler-table indices: ranks are
// >= 0 and the runtime service ids are small negatives (currently only
// SchedulerID), so id+handlerOff is a dense non-negative index.
const handlerOff = -SchedulerID

// link is the per-ordered-pair connection state: the FIFO channel and the
// packet sequence counter, held together so the per-packet send path costs
// one map access instead of three.
type link struct {
	ch  *simnet.Channel
	seq uint64
}

// Fabric places endpoints (MPI ranks and runtime services) on simulated
// nodes and provides a FIFO channel per ordered endpoint pair, created
// lazily on first use — as MPICH2 opens TCP connections on the first
// communication between two processes.  Unbinding an endpoint (process
// death) closes every channel touching it, dropping in-flight packets like
// a socket reset; channels are recreated fresh (sequence numbers restart)
// when the endpoint is bound again, modelling the communication-layer
// reinitialization the paper's restart performs.
type Fabric struct {
	net      *simnet.Network
	nodeOf   map[int]int
	handlers []func(*Packet) // indexed by endpoint id + handlerOff
	links    map[[2]int]*link

	// met, when set, mirrors the traffic counters into the observability
	// registry ("fabric.msgs", "fabric.payload_bytes"); nil-safe.
	met *obs.Metrics

	// MsgCount and PayloadBytes accumulate global traffic statistics.
	MsgCount     int64
	PayloadBytes int64
}

// NewFabric wraps a simulated network.
func NewFabric(net *simnet.Network) *Fabric {
	return &Fabric{
		net:    net,
		nodeOf: make(map[int]int),
		links:  make(map[[2]int]*link),
	}
}

// Net exposes the underlying network (for bulk image flows).
func (f *Fabric) Net() *simnet.Network { return f.net }

// SetMetrics attaches the observability registry traffic counters are
// mirrored into (nil disables).
func (f *Fabric) SetMetrics(m *obs.Metrics) { f.met = m }

// Place assigns an endpoint to a node.  An endpoint must be placed before
// it sends, receives, or is bound.
func (f *Fabric) Place(id, node int) {
	if node < 0 || node >= f.net.NumNodes() {
		panic(fmt.Sprintf("mpi: endpoint %d placed on invalid node %d", id, node))
	}
	f.nodeOf[id] = node
}

// NodeOf returns the node an endpoint lives on.
func (f *Fabric) NodeOf(id int) int {
	n, ok := f.nodeOf[id]
	if !ok {
		panic(fmt.Sprintf("mpi: endpoint %d not placed", id))
	}
	return n
}

// Placed reports whether the endpoint has been placed on a node.
func (f *Fabric) Placed(id int) bool {
	_, ok := f.nodeOf[id]
	return ok
}

// Bind registers the packet handler for an endpoint.  The handler runs as
// an event callback for every packet addressed to the endpoint.
func (f *Fabric) Bind(id int, h func(*Packet)) {
	i := id + handlerOff
	if i < 0 {
		panic(fmt.Sprintf("mpi: endpoint id %d below the service id range", id))
	}
	for len(f.handlers) <= i {
		f.handlers = append(f.handlers, nil)
	}
	f.handlers[i] = h
}

// handler returns the bound handler for an endpoint, nil when unbound.
func (f *Fabric) handler(id int) func(*Packet) {
	if i := id + handlerOff; i >= 0 && i < len(f.handlers) {
		return f.handlers[i]
	}
	return nil
}

// Unbind removes an endpoint's handler and resets every channel touching
// it.  Queued and in-flight packets are lost.  Channels close in sorted
// endpoint-pair order: closing cancels in-flight flows and reschedules
// every flow sharing a resource with them, which assigns fresh kernel
// event sequence numbers — doing that in map-iteration order would let
// the per-run map permutation pick which equal-time completions fire
// first.
func (f *Fabric) Unbind(id int) {
	if i := id + handlerOff; i >= 0 && i < len(f.handlers) {
		f.handlers[i] = nil
	}
	var keys [][2]int
	for key := range f.links {
		if key[0] == id || key[1] == id {
			keys = append(keys, key)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		f.links[key].ch.Close()
		delete(f.links, key)
	}
}

// deliverPacket is the arrival callback shared by every channel: it routes
// the packet to its destination handler, silently dropping it when the
// destination is unbound (peer died).
func (f *Fabric) deliverPacket(payload any) {
	pkt := payload.(*Packet)
	if h := f.handler(pkt.Dst); h != nil {
		h(pkt)
	}
}

// Send transmits a packet from src to dst over their FIFO channel.  The
// packet's Seq is assigned here.  Sending to an unplaced endpoint panics
// (programming error); sending to an unbound one silently drops at
// delivery time (peer died).
func (f *Fabric) Send(src, dst int, p *Packet) {
	p.Src, p.Dst = src, dst
	key := [2]int{src, dst}
	l := f.links[key]
	if l == nil {
		l = &link{ch: f.net.NewChannel(f.NodeOf(src), f.NodeOf(dst), f.deliverPacket)}
		f.links[key] = l
	}
	l.seq++
	p.Seq = l.seq
	f.MsgCount++
	f.PayloadBytes += p.PayloadSize()
	f.met.Inc("fabric.msgs")
	f.met.Add("fabric.payload_bytes", p.PayloadSize())
	l.ch.Send(p, p.WireSize())
}
