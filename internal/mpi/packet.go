// Package mpi implements the message-passing layer of the reproduction: a
// compact MPI-like library (point-to-point matching with tags and
// any-source, blocking send/receive, and the collectives the NAS kernels
// need) structured like MPICH's device stack so that fault-tolerance
// protocols can hook the exact points the paper instruments:
//
//   - an outgoing gate consulted before every payload reaches the wire
//     (where MPICH2-Pcl's ft-sock channel delays request posts and Nemesis
//     enqueues its "stopper" request), and
//   - an incoming filter seeing every packet before the matching engine
//     (where MPICH-Vcl's daemon logs in-transit messages and Pcl's delayed
//     receive queue holds post-marker packets).
//
// Engines run as logical processes on the sim kernel; the Fabric maps
// endpoints (MPI ranks and runtime services) onto simulated nodes and
// gives each ordered endpoint pair a FIFO channel, as TCP connections do
// in the paper's implementations.
//
// Every piece of engine state that can exist while a process is blocked —
// the unexpected-message queue, progress within a collective, a pending
// send-receive — is serializable, so a coordinated checkpoint can capture
// a process image at any point inside the progress engine, which is what
// BLCR gives the paper's implementations at the OS level.
package mpi

import "fmt"

// Endpoint identifiers.  MPI processes use their rank (0..size-1); runtime
// services use reserved negative identifiers.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any application tag.
	AnyTag = -1
)

// Service endpoint identifiers (never valid ranks).
const (
	// SchedulerID is the Vcl checkpoint scheduler endpoint.
	SchedulerID = -2
	// DispatcherID is the FTPM dispatcher endpoint.
	DispatcherID = -3
	// serverBase anchors checkpoint-server endpoints.
	serverBase = -10
)

// ServerID returns the endpoint identifier of checkpoint server i.
func ServerID(i int) int { return serverBase - i }

// IsServer reports whether an endpoint identifier names a checkpoint server.
func IsServer(id int) bool { return id <= serverBase }

// Kind discriminates what a packet is.
type Kind uint8

const (
	// KindPayload is application data subject to matching.
	KindPayload Kind = iota
	// KindMarker is a checkpoint-wave marker (Chandy–Lamport / Pcl flush).
	KindMarker
	// KindControl is a protocol or runtime control message, consumed by
	// the protocol filter or a service handler, never by the matching
	// engine.
	KindControl
)

func (k Kind) String() string {
	switch k {
	case KindPayload:
		return "payload"
	case KindMarker:
		return "marker"
	case KindControl:
		return "control"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// packetHeader approximates the per-message envelope bytes on the wire.
const packetHeader = 64

// Packet is one message on a channel.  Payload packets carry either real
// bytes in Data (real kernels) or only a modelled size in VSize (workload
// models); both contribute to transfer time.
type Packet struct {
	Src, Dst int    // endpoint identifiers
	Kind     Kind   // payload / marker / control
	Tag      int    // application tag (payload) or protocol opcode (control)
	Seq      uint64 // per-channel sequence, assigned by the Fabric
	Wave     int    // checkpoint wave number (markers, control)
	PSeq     uint64 // protocol sequence (message logging: per-pair, survives restarts)
	SpanID   uint64 // causal span of the packet's flight (markers), 0 when untraced
	Data     []byte
	VSize    int64 // modelled payload size when Data is empty or symbolic
}

// PayloadSize returns the number of payload bytes the packet represents.
func (p *Packet) PayloadSize() int64 {
	if int64(len(p.Data)) > p.VSize {
		return int64(len(p.Data))
	}
	return p.VSize
}

// WireSize returns the bytes the packet occupies on the wire.
func (p *Packet) WireSize() int64 { return p.PayloadSize() + packetHeader }

func (p *Packet) String() string {
	return fmt.Sprintf("%s %d->%d tag=%d seq=%d wave=%d size=%d",
		p.Kind, p.Src, p.Dst, p.Tag, p.Seq, p.Wave, p.PayloadSize())
}

// Clone returns a deep copy (used when logging channel state).
func (p *Packet) Clone() *Packet {
	q := *p
	if p.Data != nil {
		q.Data = append([]byte(nil), p.Data...)
	}
	return &q
}
