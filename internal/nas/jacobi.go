package nas

import (
	"fmt"
	"math"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
)

// Jacobi is a real 2D heat-diffusion solver (five-point stencil, Jacobi
// iteration) with a 1D row decomposition: each step exchanges halo rows
// with both neighbours and every tenth step reduces the global residual.
// Like CG, it is used at small sizes to verify that rollback recovery
// preserves real numerics — here under the halo-exchange pattern that
// dominates structured-grid MPI codes.
type Jacobi struct {
	ftState // in-memory partner checkpoints (unexported: not in images)

	Rank, Size int
	N          int // global grid side (rows divided evenly across ranks)
	MaxIter    int
	Tol        float64

	Phase    int
	It       int
	Cur      []float64 // local rows, (rows+2)×N with ghost rows
	New      []float64
	GhostsUp bool
	Residual float64
	Iters    int // iterations actually executed (set when done)
}

// NewJacobi builds rank's slab of an N×N grid (N divisible by size), with
// hot top and cold bottom boundary conditions.
func NewJacobi(rank, size, n, maxIter int) *Jacobi {
	if n%size != 0 {
		panic("nas: Jacobi grid side must be divisible by the process count")
	}
	j := &Jacobi{Rank: rank, Size: size, N: n, MaxIter: maxIter, Tol: 1e-6}
	rows := n / size
	j.Cur = make([]float64, (rows+2)*n)
	j.New = make([]float64, (rows+2)*n)
	if rank == 0 {
		for c := 0; c < n; c++ {
			j.Cur[c] = 100 // fixed hot edge stored in the top ghost row
			j.New[c] = 100
		}
	}
	return j
}

func (j *Jacobi) rows() int { return j.N / j.Size }

// Jacobi phases.
const (
	jacExchUp = iota
	jacExchDown
	jacCompute
	jacResidual
	jacDone
	jacFTExch // partner-snapshot ring exchange (in-job recovery)
)

const (
	jacTagUp   = 60 // halo row travelling to the smaller rank
	jacTagDown = 61 // halo row travelling to the larger rank
)

// Step advances one phase.
func (j *Jacobi) Step(e *mpi.Engine) bool {
	n := j.N
	rows := j.rows()
	switch j.Phase {
	case jacExchUp:
		if j.Rank > 0 {
			p := e.Sendrecv(j.Rank-1, jacTagUp, mpi.EncodeF64s(j.Cur[n:2*n]), 0, j.Rank-1, jacTagDown)
			copy(j.Cur[0:n], mpi.DecodeF64s(p.Data))
		}
		j.Phase = jacExchDown
	case jacExchDown:
		if j.Rank < j.Size-1 {
			p := e.Sendrecv(j.Rank+1, jacTagDown, mpi.EncodeF64s(j.Cur[rows*n:(rows+1)*n]), 0, j.Rank+1, jacTagUp)
			copy(j.Cur[(rows+1)*n:], mpi.DecodeF64s(p.Data))
		}
		j.Phase = jacCompute
	case jacCompute:
		e.Compute(sim.Time(float64(rows*n) * 6 / EffectiveFlopRate * float64(time.Second)))
		// Idempotent: recomputes New from Cur; the swap happens after and
		// the phase counter flips with it, without parking in between.
		for r := 1; r <= rows; r++ {
			for c := 0; c < n; c++ {
				up := j.Cur[(r-1)*n+c]
				down := j.Cur[(r+1)*n+c]
				left, right := up, down
				if c > 0 {
					left = j.Cur[r*n+c-1]
				}
				if c < n-1 {
					right = j.Cur[r*n+c+1]
				}
				j.New[r*n+c] = 0.25 * (up + down + left + right)
			}
		}
		// Preserve the fixed boundary ghosts.
		copy(j.New[0:n], j.Cur[0:n])
		copy(j.New[(rows+1)*n:], j.Cur[(rows+1)*n:])
		j.Cur, j.New = j.New, j.Cur
		j.It++
		if j.It%10 == 0 || j.It >= j.MaxIter {
			j.Phase = jacResidual
		} else {
			j.Phase = jacExchUp
		}
	case jacResidual:
		local := 0.0
		for r := 1; r <= rows; r++ {
			for c := 0; c < n; c++ {
				d := j.Cur[r*n+c] - j.New[r*n+c] // New holds the previous iterate
				local += d * d
			}
		}
		res := e.AllreduceF64(mpi.OpSum, []float64{local})
		j.Residual = math.Sqrt(res[0])
		if j.Residual < j.Tol || j.It >= j.MaxIter {
			j.Iters = j.It
			j.Phase = jacDone
			return true
		}
		if j.ftEvery() > 0 && j.It%j.ftEvery() == 0 {
			j.Phase = jacFTExch
		} else {
			j.Phase = jacExchUp
		}
	case jacFTExch:
		// The phase flips only after the exchange completes, so a protocol
		// checkpoint taken while blocked in it restores into the same
		// Sendrecv (ftEncode is a pure function of the solver state).
		j.ftExchange(e, j.Rank, j.Size, j.It, j.ftEncode())
		j.Phase = jacExchUp
	}
	return false
}

// ftEncode captures the solver state at the exchange point (after the
// residual allreduce, about to start the next iteration).
func (j *Jacobi) ftEncode() []byte {
	var w ftEncoder
	w.putInt(int64(j.It))
	w.putF64(j.Residual)
	w.putVec(j.Cur)
	w.putVec(j.New)
	return w.buf
}

func (j *Jacobi) ftDecode(blob []byte) bool {
	r := ftDecoder{buf: blob}
	it, ok := r.int()
	if !ok {
		return false
	}
	res, ok := r.f64()
	if !ok || !r.vec(j.Cur) || !r.vec(j.New) {
		return false
	}
	j.It = int(it)
	j.Residual = res
	j.Phase = jacExchUp
	return true
}

// FTRollback restores the solver to its own snapshot at level.
func (j *Jacobi) FTRollback(level int) bool {
	s, ok := j.ownSnap(level)
	if !ok || !j.ftDecode(s.blob) {
		return false
	}
	j.ftTruncate(level)
	return true
}

// FTInstall loads a peer-held snapshot into a fresh replacement process.
func (j *Jacobi) FTInstall(blob []byte) bool {
	if !j.ftDecode(blob) {
		return false
	}
	j.ftInstall(j.It, 0, blob)
	return true
}

// Footprint is the two slabs.
func (j *Jacobi) Footprint() int64 {
	return int64(len(j.Cur)+len(j.New)) * 8
}

// Temperature returns the local value at (row, col) of this rank's slab
// (for verification).
func (j *Jacobi) Temperature(row, col int) float64 {
	if row < 0 || row >= j.rows() || col < 0 || col >= j.N {
		panic(fmt.Sprintf("nas: Temperature(%d,%d) out of slab", row, col))
	}
	return j.Cur[(row+1)*j.N+col]
}
