package nas

import (
	"math"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
	"time"
)

// CG is a real distributed conjugate-gradient kernel in the style of NAS
// CG: a sparse symmetric positive-definite system solved by CG, with the
// matrix partitioned by rows, the search direction assembled with an
// allgather, and the dot products reduced with allreduces.  It is written
// as a resumable Program: every vector lives in the serializable struct,
// the matrix is regenerated deterministically from the seed after a
// restore, and each phase performs one blocking operation.
//
// The kernel is used at reduced problem sizes to verify numerically exact
// recovery; the large-scale experiments use CGModel.
type CG struct {
	ftState // in-memory partner checkpoints (unexported: not in images)

	Rank, Size int
	N          int   // global matrix order (divisible by Size)
	Seed       int64 // matrix generator seed
	MaxIter    int
	FlopTime   sim.Time // modelled compute charged per matvec (0 = derive)

	// Solver state.
	Phase    int
	It       int
	X        []float64 // local rows of the iterate
	R        []float64 // local residual
	P        []float64 // local search direction
	Q        []float64 // local A·p
	RR       float64   // r·r
	PAp      float64
	PFull    []float64 // assembled search direction (kept across phases)
	Residual float64   // final ‖r‖₂ (set when done)

	// cache: regenerated, never serialized.
	rows   [][]int
	vals   [][]float64
	haveMx bool
}

// NewCG builds the rank-local part of an N×N system (N divisible by size).
func NewCG(rank, size, n int, seed int64, iters int) *CG {
	if n%size != 0 {
		panic("nas: CG order must be divisible by the process count")
	}
	c := &CG{Rank: rank, Size: size, N: n, Seed: seed, MaxIter: iters}
	local := n / size
	c.X = make([]float64, local)
	c.R = make([]float64, local)
	c.P = make([]float64, local)
	c.Q = make([]float64, local)
	return c
}

// cgOffsets is the symmetric band structure: row g couples with g±o
// (cyclically) for each offset, giving a sparse SPD matrix both endpoints
// of a coupling regenerate identically — the image never stores the
// matrix, mirroring how a real restart reloads read-only data.
var cgOffsets = [...]int{1, 7, 101, 1003}

// ensureMatrix regenerates the local rows deterministically from the seed.
func (c *CG) ensureMatrix() {
	if c.haveMx {
		return
	}
	local := c.N / c.Size
	base := c.Rank * local
	c.rows = make([][]int, local)
	c.vals = make([][]float64, local)
	for i := 0; i < local; i++ {
		g := base + i
		idx := []int{g}
		val := []float64{0}
		sum := 0.0
		for _, o := range cgOffsets {
			if o >= c.N {
				continue
			}
			for _, j := range []int{(g + o) % c.N, (g - o + c.N) % c.N} {
				if j == g {
					continue
				}
				lo, hi := g, j
				if lo > hi {
					lo, hi = hi, lo
				}
				w := pairWeight(c.Seed, lo, hi)
				idx = append(idx, j)
				val = append(val, w)
				sum += math.Abs(w)
			}
		}
		val[0] = sum + 1 + float64(g%7) // strict diagonal dominance → SPD
		c.rows[i] = idx
		c.vals[i] = val
	}
	c.haveMx = true
}

// pairWeight is a deterministic symmetric coupling in (-0.5, 0.5).
func pairWeight(seed int64, lo, hi int) float64 {
	h := uint64(seed) * 0x9e3779b97f4a7c15
	h ^= uint64(lo)*0xbf58476d1ce4e5b9 + uint64(hi)*0x94d049bb133111eb
	h ^= h >> 31
	h *= 0xd6e8feb86659fd93
	h ^= h >> 27
	return (float64(h%1_000_000)/1_000_000 - 0.5) * 0.9
}

// cgPhase enumerates the solver's resumable phases.
const (
	cgInit = iota
	cgGatherP
	cgMatvec
	cgDotPAp
	cgUpdate
	cgDotRR
	cgFinish
	cgDone
	cgFTExch // partner-snapshot ring exchange (in-job recovery)
)

// Step advances the solver by one phase.
func (c *CG) Step(e *mpi.Engine) bool {
	c.ensureMatrix()
	local := c.N / c.Size
	switch c.Phase {
	case cgInit:
		// b = 1; x = 0 → r = p = b.
		for i := 0; i < local; i++ {
			c.X[i] = 0
			c.R[i] = 1
			c.P[i] = 1
		}
		rr := e.AllreduceF64(mpi.OpSum, []float64{dot(c.R, c.R)})
		c.RR = rr[0]
		c.Phase = cgGatherP
	case cgGatherP:
		blocks := e.AllgatherB(mpi.EncodeF64s(c.P))
		c.PFull = c.PFull[:0]
		for _, b := range blocks {
			c.PFull = append(c.PFull, mpi.DecodeF64s(b)...)
		}
		c.Phase = cgMatvec
	case cgMatvec:
		// q = A_local · p_full (the real flops, plus modelled time).
		// Idempotent: a rollback caught in Compute just redoes the matvec.
		for i := 0; i < local; i++ {
			s := 0.0
			for k, j := range c.rows[i] {
				s += c.vals[i][k] * c.PFull[j]
			}
			c.Q[i] = s
		}
		e.Compute(c.matvecTime())
		c.Phase = cgDotPAp
	case cgDotPAp:
		pap := e.AllreduceF64(mpi.OpSum, []float64{dot(c.P, c.Q)})
		c.PAp = pap[0]
		c.Phase = cgUpdate
	case cgUpdate:
		alpha := c.RR / c.PAp
		for i := 0; i < local; i++ {
			c.X[i] += alpha * c.P[i]
			c.R[i] -= alpha * c.Q[i]
		}
		c.Phase = cgDotRR
	case cgDotRR:
		rr := e.AllreduceF64(mpi.OpSum, []float64{dot(c.R, c.R)})
		beta := rr[0] / c.RR
		c.RR = rr[0]
		for i := 0; i < local; i++ {
			c.P[i] = c.R[i] + beta*c.P[i]
		}
		c.It++
		switch {
		case c.It >= c.MaxIter || c.RR < 1e-18:
			c.Phase = cgFinish
		case c.ftEvery() > 0 && c.It%c.ftEvery() == 0:
			c.Phase = cgFTExch
		default:
			c.Phase = cgGatherP
		}
	case cgFTExch:
		// The phase flips only after the exchange completes, so a protocol
		// checkpoint taken while blocked in it restores into the same
		// Sendrecv (ftEncode is a pure function of the solver state).
		c.ftExchange(e, c.Rank, c.Size, c.It, c.ftEncode())
		c.Phase = cgGatherP
	case cgFinish:
		rr := e.AllreduceF64(mpi.OpSum, []float64{dot(c.R, c.R)})
		c.Residual = math.Sqrt(rr[0])
		c.Phase = cgDone
		return true
	}
	return false
}

// ftEncode captures the solver state at the exchange point (after the
// r·r allreduce, about to gather the next search direction).
func (c *CG) ftEncode() []byte {
	var w ftEncoder
	w.putInt(int64(c.It))
	w.putF64(c.RR)
	w.putVec(c.X)
	w.putVec(c.R)
	w.putVec(c.P)
	return w.buf
}

func (c *CG) ftDecode(blob []byte) bool {
	r := ftDecoder{buf: blob}
	it, ok := r.int()
	if !ok {
		return false
	}
	rr, ok := r.f64()
	if !ok || !r.vec(c.X) || !r.vec(c.R) || !r.vec(c.P) {
		return false
	}
	c.It = int(it)
	c.RR = rr
	c.Phase = cgGatherP
	return true
}

// FTRollback restores the solver to its own snapshot at level.
func (c *CG) FTRollback(level int) bool {
	s, ok := c.ownSnap(level)
	if !ok || !c.ftDecode(s.blob) {
		return false
	}
	c.ftTruncate(level)
	return true
}

// FTInstall loads a peer-held snapshot into a fresh replacement process.
func (c *CG) FTInstall(blob []byte) bool {
	if !c.ftDecode(blob) {
		return false
	}
	c.ftInstall(c.It, 0, blob)
	return true
}

func (c *CG) matvecTime() sim.Time {
	if c.FlopTime > 0 {
		return c.FlopTime
	}
	// ~10 flops per local row at the effective rate.
	return sim.Time(float64(c.N/c.Size) * 10 / EffectiveFlopRate * float64(time.Second))
}

// Footprint models the process memory: matrix + vectors.
func (c *CG) Footprint() int64 {
	return int64(c.N/c.Size)*120 + int64(c.N)*8
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
