package nas_test

import (
	"math"
	"testing"
	"time"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
)

func TestJacobiPhysics(t *testing.T) {
	progs := runWorld(t, 4, func(rank int) mpi.Program {
		return nas.NewJacobi(rank, 4, 32, 2000)
	})
	top := progs[0].(*nas.Jacobi)
	bottom := progs[3].(*nas.Jacobi)
	// Heat flows from the hot top edge: monotone decreasing temperature.
	hot := top.Temperature(0, 16)
	cold := bottom.Temperature(7, 16)
	if hot <= cold || hot > 100 || cold < 0 {
		t.Fatalf("no gradient: top %v bottom %v", hot, cold)
	}
	if top.Residual >= bottom.Residual+1e-12 && top.Residual != bottom.Residual {
		t.Fatalf("ranks disagree on residual: %v vs %v", top.Residual, bottom.Residual)
	}
}

func TestJacobiProcessCountInvariance(t *testing.T) {
	field := func(np int) []float64 {
		progs := runWorld(t, np, func(rank int) mpi.Program {
			return nas.NewJacobi(rank, np, 16, 300)
		})
		var out []float64
		for _, p := range progs {
			j := p.(*nas.Jacobi)
			for r := 0; r < 16/np; r++ {
				for c := 0; c < 16; c++ {
					out = append(out, j.Temperature(r, c))
				}
			}
		}
		return out
	}
	a, b := field(1), field(4)
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("field differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJacobiRecoveryExact(t *testing.T) {
	mk := func(rank, size int) mpi.Program { return nas.NewJacobi(rank, size, 32, 400) }

	job, err := ftpm.NewJob(recoveryCfg(4, mk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	want := job.Programs()[2].(*nas.Jacobi).Residual
	half := job.Kernel().Now() / 2

	for _, proto := range []ftpm.Proto{ftpm.ProtoVcl, ftpm.ProtoMlog} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := recoveryCfg(4, mk)
			cfg.Protocol = proto
			cfg.Interval = half / 4
			cfg.RestartDelay = time.Millisecond
			cfg.Failures = failureAtHalfTime(half, 1)
			job2, err := ftpm.NewJob(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := job2.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Restarts != 1 {
				t.Fatalf("restarts = %d", res.Restarts)
			}
			if got := job2.Programs()[2].(*nas.Jacobi).Residual; got != want {
				t.Fatalf("residual %v after recovery, want %v", got, want)
			}
		})
	}
}
