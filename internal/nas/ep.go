package nas

import (
	"math"
	"math/rand"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
)

// EP is a real implementation of the NAS EP (embarrassingly parallel)
// kernel at reduced scale: each process generates pseudo-random pairs,
// transforms the uniform deviates into Gaussian pairs by the Marsaglia
// polar method, tallies them into annulus bins, and the bins are summed
// with a final allreduce.  Communication is a single collective, which is
// what makes EP the pure-compute end of the NAS spectrum.
type EP struct {
	Rank, Size int
	Pairs      int   // pairs to generate on this process
	Seed       int64 // base seed; rank offsets it
	ChunkPairs int   // pairs per Step (checkpointable granularity)

	Phase     int
	Generated int
	Counts    [10]float64
	SumX      float64
	SumY      float64
	Totals    [10]float64 // global bins (set when done)
}

// NewEP builds rank's share of an EP run of totalPairs.
func NewEP(rank, size, totalPairs int, seed int64) *EP {
	pairs := totalPairs / size
	return &EP{Rank: rank, Size: size, Pairs: pairs, Seed: seed, ChunkPairs: 4096}
}

// Step generates one chunk or performs the final reduction.
func (e *EP) Step(eng *mpi.Engine) bool {
	const (
		epGen = iota
		epReduce
	)
	switch e.Phase {
	case epGen:
		n := e.ChunkPairs
		if rem := e.Pairs - e.Generated; n > rem {
			n = rem
		}
		// A chunk's RNG is seeded by its position so re-execution after a
		// rollback regenerates identical deviates.
		rng := rand.New(rand.NewSource(e.Seed + int64(e.Rank)*1e9 + int64(e.Generated)))
		for i := 0; i < n; i++ {
			x := 2*rng.Float64() - 1
			y := 2*rng.Float64() - 1
			t := x*x + y*y
			if t > 1 || t == 0 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(t) / t)
			gx, gy := x*f, y*f
			m := math.Max(math.Abs(gx), math.Abs(gy))
			bin := int(m)
			if bin > 9 {
				bin = 9
			}
			e.Counts[bin]++
			e.SumX += gx
			e.SumY += gy
		}
		e.Generated += n
		eng.Compute(sim.Time(float64(n) * 60 / EffectiveFlopRate * float64(time.Second)))
		if e.Generated >= e.Pairs {
			e.Phase = epReduce
		}
	case epReduce:
		in := make([]float64, 12)
		copy(in, e.Counts[:])
		in[10], in[11] = e.SumX, e.SumY
		out := eng.AllreduceF64(mpi.OpSum, in)
		copy(e.Totals[:], out[:10])
		e.SumX, e.SumY = out[10], out[11]
		return true
	}
	return false
}

// Footprint is small: EP is compute-bound with negligible state.
func (e *EP) Footprint() int64 { return 1 << 20 }
