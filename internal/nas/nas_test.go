package nas_test

import (
	"math"
	"testing"
	"time"

	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
	"ftckpt/internal/sim"
	"ftckpt/internal/simnet"
)

func topoN(nodes int) simnet.Topology {
	return simnet.Topology{Clusters: []simnet.ClusterSpec{{
		Name: "c", Nodes: nodes, NICBW: 100e6, Latency: 50 * time.Microsecond,
	}}}
}

// runWorld runs prog constructors on a plain (non-fault-tolerant) world.
func runWorld(t *testing.T, np int, mk func(rank int) mpi.Program) []mpi.Program {
	t.Helper()
	w := mpi.NewWorld(sim.New(1), topoN(np), mpi.Profile{}, np, 1)
	progs := make([]mpi.Program, np)
	err := w.RunRanked(func(rank int) func(e *mpi.Engine) {
		return func(e *mpi.Engine) {
			p := mk(rank)
			progs[rank] = p
			for !p.Step(e) {
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return progs
}

func TestCGConverges(t *testing.T) {
	progs := runWorld(t, 4, func(rank int) mpi.Program {
		return nas.NewCG(rank, 4, 2048, 7, 60)
	})
	var res []float64
	for _, p := range progs {
		res = append(res, p.(*nas.CG).Residual)
	}
	for _, r := range res[1:] {
		if r != res[0] {
			t.Fatalf("ranks disagree on residual: %v", res)
		}
	}
	if res[0] >= 1e-6 || math.IsNaN(res[0]) {
		t.Fatalf("CG did not converge: residual %v", res[0])
	}
}

func TestCGProcessCountInvariance(t *testing.T) {
	residual := func(np int) float64 {
		progs := runWorld(t, np, func(rank int) mpi.Program {
			return nas.NewCG(rank, np, 1024, 7, 40)
		})
		return progs[0].(*nas.CG).Residual
	}
	r1, r4, r8 := residual(1), residual(4), residual(8)
	// Reduction orders differ, so allow floating-point drift only.
	if math.Abs(r1-r4) > 1e-9*(1+math.Abs(r1)) || math.Abs(r1-r8) > 1e-9*(1+math.Abs(r1)) {
		t.Fatalf("residual depends on np: %v %v %v", r1, r4, r8)
	}
}

func TestEPDeterministic(t *testing.T) {
	run := func() [10]float64 {
		progs := runWorld(t, 4, func(rank int) mpi.Program {
			return nas.NewEP(rank, 4, 1<<16, 42)
		})
		return progs[2].(*nas.EP).Totals
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("EP nondeterministic: %v vs %v", a, b)
	}
	var sum float64
	for _, v := range a {
		sum += v
	}
	// Polar method accepts ~π/4 of pairs.
	if sum < 0.7*float64(1<<16)*math.Pi/4 || sum > float64(1<<16) {
		t.Fatalf("implausible accepted-pair count %v", sum)
	}
}

func TestBTModelRuns(t *testing.T) {
	class := nas.BTClassA
	class.Iters = 20 // shorten for the test
	progs := runWorld(t, 9, func(rank int) mpi.Program {
		return nas.NewBTModel(class, rank, 9)
	})
	var sums []float64
	for _, p := range progs {
		sums = append(sums, p.(*nas.BTModel).Checksum)
	}
	for _, s := range sums[1:] {
		if s != sums[0] {
			t.Fatalf("ranks disagree: %v", sums)
		}
	}
}

func TestBTModelRequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-square np")
		}
	}()
	nas.NewBTModel(nas.BTClassA, 0, 6)
}

func TestCGModelRunsPow2AndOdd(t *testing.T) {
	for _, np := range []int{4, 8, 6} {
		np := np
		class := nas.CGClassA
		class.Iters = 3
		progs := runWorld(t, np, func(rank int) mpi.Program {
			return nas.NewCGModel(class, rank, np)
		})
		var sums []float64
		for _, p := range progs {
			sums = append(sums, p.(*nas.CGModel).Checksum)
		}
		for _, s := range sums[1:] {
			if s != sums[0] {
				t.Fatalf("np=%d ranks disagree: %v", np, sums)
			}
		}
	}
}

func TestSquareCounts(t *testing.T) {
	got := nas.SquareCounts(300)
	want := []int{4, 9, 16, 25, 36, 49, 64, 81, 100, 121, 144, 169, 196, 225, 256, 289}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got %v", got)
		}
	}
}

// failureAtHalf kills rank 2 halfway through the reference job's runtime.
func failureAtHalf(t *testing.T, ref *ftpm.Job) failure.Plan {
	t.Helper()
	return failure.KillAt(ref.Kernel().Now()/2, 2)
}

// failureAtHalfTime kills a rank at a precomputed midpoint.
func failureAtHalfTime(half sim.Time, rank int) failure.Plan {
	return failure.KillAt(half, rank)
}

// recoveryCfg builds an ftpm config for a workload factory.
func recoveryCfg(np int, mk func(rank, size int) mpi.Program) ftpm.Config {
	return ftpm.Config{
		NP:         np,
		Topology:   topoN(np + 4),
		Profile:    mpi.Profile{Name: "test"},
		NewProgram: mk,
		Servers:    2,
		Deadline:   2 * time.Hour,
		Seed:       3,
	}
}

// TestCGRecoveryExact: a CG run interrupted by a failure recovers and
// produces the identical residual — the end-to-end numerical-correctness
// check of the whole checkpointing stack on a real kernel.
func TestCGRecoveryExact(t *testing.T) {
	mk := func(rank, size int) mpi.Program { return nas.NewCG(rank, size, 1024, 7, 50) }

	base := recoveryCfg(4, mk)
	job, err := ftpm.NewJob(base)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	want := job.Programs()[0].(*nas.CG).Residual

	for _, proto := range []ftpm.Proto{ftpm.ProtoPcl, ftpm.ProtoVcl} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := recoveryCfg(4, mk)
			cfg.Protocol = proto
			cfg.Interval = 3 * time.Millisecond
			cfg.RestartDelay = time.Millisecond
			cfg.Failures = failure.KillAt(8*time.Millisecond, 2)
			job, err := ftpm.NewJob(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := job.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Restarts != 1 {
				t.Fatalf("restarts = %d (completion %v)", res.Restarts, res.Completion)
			}
			for r, p := range job.Programs() {
				if got := p.(*nas.CG).Residual; got != want {
					t.Fatalf("rank %d residual %v after recovery, want %v", r, got, want)
				}
			}
		})
	}
}

// TestBTModelRecovery: the modelled workload also survives failures with
// an identical checksum.
func TestBTModelRecovery(t *testing.T) {
	class := nas.BTClassA
	class.Iters = 40
	mk := func(rank, size int) mpi.Program { return nas.NewBTModel(class, rank, size) }

	job, err := ftpm.NewJob(recoveryCfg(4, mk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	want := job.Programs()[0].(*nas.BTModel).Checksum

	cfg := recoveryCfg(4, mk)
	cfg.Protocol = ftpm.ProtoPcl
	cfg.Interval = 2 * time.Second
	cfg.RestartDelay = 10 * time.Millisecond
	cfg.Failures = failure.KillAt(5*time.Second, 1)
	job2, err := ftpm.NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	for _, p := range job2.Programs() {
		if got := p.(*nas.BTModel).Checksum; got != want {
			t.Fatalf("checksum %v after recovery, want %v", got, want)
		}
	}
}

// TestEPRecovery: chunked RNG regeneration keeps EP's bins exact across a
// rollback.
func TestEPRecovery(t *testing.T) {
	mk := func(rank, size int) mpi.Program { return nas.NewEP(rank, size, 1<<16, 42) }

	job, err := ftpm.NewJob(recoveryCfg(4, mk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	want := job.Programs()[0].(*nas.EP).Totals

	cfg := recoveryCfg(4, mk)
	cfg.Protocol = ftpm.ProtoVcl
	cfg.Interval = 20 * time.Millisecond
	cfg.Failures = failure.KillAt(50*time.Millisecond, 3)
	job2, err := ftpm.NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job2.Run(); err != nil {
		t.Fatal(err)
	}
	if got := job2.Programs()[1].(*nas.EP).Totals; got != want {
		t.Fatalf("EP bins changed across recovery:\n%v\n%v", got, want)
	}
}
