package nas_test

import (
	"testing"
	"time"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
)

func TestMGModelRuns(t *testing.T) {
	for _, np := range []int{1, 2, 4, 8} {
		np := np
		class := nas.MGClassA
		progs := runWorld(t, np, func(rank int) mpi.Program {
			return nas.NewMGModel(class, rank, np)
		})
		var sums []float64
		for _, p := range progs {
			sums = append(sums, p.(*nas.MGModel).Checksum)
		}
		for _, s := range sums[1:] {
			if s != sums[0] {
				t.Fatalf("np=%d ranks disagree: %v", np, sums)
			}
		}
	}
}

func TestMGModelRequiresPow2(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two np")
		}
	}()
	nas.NewMGModel(nas.MGClassA, 0, 6)
}

func TestMGHaloShrinksWithLevel(t *testing.T) {
	m := nas.NewMGModel(nas.MGClassB, 0, 4)
	if m.Levels < 2 {
		t.Fatalf("levels %d", m.Levels)
	}
	if m.FineBytes <= 0 {
		t.Fatalf("fine halo %d", m.FineBytes)
	}
}

func TestMGModelRecovery(t *testing.T) {
	class := nas.MGClassB
	mk := func(rank, size int) mpi.Program { return nas.NewMGModel(class, rank, size) }

	job, err := ftpm.NewJob(recoveryCfg(4, mk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	want := job.Programs()[0].(*nas.MGModel).Checksum

	cfg := recoveryCfg(4, mk)
	cfg.Protocol = ftpm.ProtoVcl
	cfg.Interval = 500 * time.Millisecond
	cfg.Failures = failureAtHalf(t, job)
	job2, err := ftpm.NewJob(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := job2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
	for _, p := range job2.Programs() {
		if got := p.(*nas.MGModel).Checksum; got != want {
			t.Fatalf("checksum %v after recovery, want %v", got, want)
		}
	}
}
