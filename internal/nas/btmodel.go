package nas

import (
	"fmt"
	"math"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
)

// BTModel reproduces the communication structure of NAS BT on a square
// process grid: per time step, three ADI sweeps, each exchanging
// multipartition faces around the process-grid rows (x, z) or columns (y);
// a residual reduction every 20 steps.  Face sizes (each process owns
// GridP sub-blocks, so a sweep moves ~Grid²·5 doubles/√np per process),
// memory footprint and per-step compute time come from the NPB class.  BT
// is the paper's cluster and grid workload ("a stress test for the fault
// tolerant protocol, since it introduces complex communication schemes
// among all nodes").
type BTModel struct {
	Rank, Size int
	GridP      int // process grid side (Size = GridP²)
	Iters      int
	It         int
	Phase      int
	CompThird  sim.Time // compute time per sweep (one third of a step)
	FaceBytes  int64
	Mem        int64
	Local      float64 // running local pseudo-residual
	Checksum   float64 // global residual (valid when done)
}

// NewBTModel builds rank's BT model for an NPB class.  np must be a
// perfect square (as in the paper's BT runs: 4, 9, 16, 25, ...).
func NewBTModel(class BTClassSpec, rank, np int) *BTModel {
	g := int(math.Round(math.Sqrt(float64(np))))
	if g*g != np {
		panic(fmt.Sprintf("nas: BT needs a square process count, got %d", np))
	}
	perStep := class.Flops / float64(class.Iters) / float64(np) / EffectiveFlopRate
	// Multipartition: each process owns g sub-blocks; one sweep exchanges
	// a face of each, Grid²·5 doubles/g per process per direction.
	face := int64(class.Grid) * int64(class.Grid) * 5 * 8 / int64(g)
	return &BTModel{
		Rank: rank, Size: np, GridP: g,
		Iters:     class.Iters,
		CompThird: sim.Time(perStep / 3 * float64(time.Second)),
		FaceBytes: face,
		Mem:       class.MemPerProc(np),
		Local:     float64(rank + 1),
	}
}

// Grid coordinates and torus neighbours.
func (b *BTModel) row() int { return b.Rank / b.GridP }
func (b *BTModel) col() int { return b.Rank % b.GridP }

func (b *BTModel) rowNeighbor(d int) int {
	c := (b.col() + d + b.GridP) % b.GridP
	return b.row()*b.GridP + c
}

func (b *BTModel) colNeighbor(d int) int {
	r := (b.row() + d + b.GridP) % b.GridP
	return r*b.GridP + b.col()
}

// BT model phases (per time step).
const (
	btXComp = iota
	btXFwd
	btXBwd
	btYComp
	btYFwd
	btYBwd
	btZComp
	btZFwd
	btZBwd
	btNorm
	btFinal
)

const btTag = 20

// Step advances the model by one phase.
func (b *BTModel) Step(e *mpi.Engine) bool {
	exchange := func(dst, src int) {
		p := e.Sendrecv(dst, btTag, mpi.EncodeF64(b.Local), b.FaceBytes, src, btTag)
		b.Local = 0.5*b.Local + 0.25*mpi.DecodeF64(p.Data[:8]) + 1
	}
	switch b.Phase {
	case btXComp, btYComp, btZComp:
		e.Compute(b.CompThird)
		b.Phase++
	case btXFwd:
		exchange(b.rowNeighbor(1), b.rowNeighbor(-1))
		b.Phase = btXBwd
	case btXBwd:
		exchange(b.rowNeighbor(-1), b.rowNeighbor(1))
		b.Phase = btYComp
	case btYFwd:
		exchange(b.colNeighbor(1), b.colNeighbor(-1))
		b.Phase = btYBwd
	case btYBwd:
		exchange(b.colNeighbor(-1), b.colNeighbor(1))
		b.Phase = btZComp
	case btZFwd:
		exchange(b.rowNeighbor(1), b.rowNeighbor(-1))
		b.Phase = btZBwd
	case btZBwd:
		exchange(b.rowNeighbor(-1), b.rowNeighbor(1))
		b.It++
		switch {
		case b.It >= b.Iters:
			b.Phase = btFinal
		case b.It%20 == 0:
			b.Phase = btNorm
		default:
			b.Phase = btXComp
		}
	case btNorm:
		s := e.AllreduceF64(mpi.OpSum, []float64{b.Local})
		b.Checksum = s[0]
		b.Phase = btXComp
	case btFinal:
		s := e.AllreduceF64(mpi.OpSum, []float64{b.Local})
		b.Checksum = s[0]
		return true
	}
	return false
}

// Footprint reports the class resident set per process.
func (b *BTModel) Footprint() int64 { return b.Mem }

// SquareCounts lists the square process counts the paper's BT experiments
// use, capped at limit.
func SquareCounts(limit int) []int {
	var out []int
	for g := 2; g*g <= limit; g++ {
		out = append(out, g*g)
	}
	return out
}
