package nas

import (
	"fmt"
	"math"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
)

// LUClassSpec describes one NPB class of LU.
type LUClassSpec struct {
	Name   string
	Grid   int
	Iters  int
	Flops  float64
	BytesC int64
}

// LU classes (NPB-2.3).
var (
	LUClassA = LUClassSpec{Name: "A", Grid: 64, Iters: 250, Flops: 119.3e9, BytesC: 650}
	LUClassB = LUClassSpec{Name: "B", Grid: 102, Iters: 250, Flops: 554.7e9, BytesC: 650}
	LUClassC = LUClassSpec{Name: "C", Grid: 162, Iters: 250, Flops: 2274e9, BytesC: 650}
)

// LUClass looks an LU class up by name.
func LUClass(name string) (LUClassSpec, error) {
	switch name {
	case "A":
		return LUClassA, nil
	case "B":
		return LUClassB, nil
	case "C":
		return LUClassC, nil
	}
	return LUClassSpec{}, fmt.Errorf("nas: unknown LU class %q", name)
}

// MemPerProc returns the modelled resident set of one LU process.
func (c LUClassSpec) MemPerProc(np int) int64 {
	cells := int64(c.Grid) * int64(c.Grid) * int64(c.Grid)
	return cells * c.BytesC / int64(np)
}

// luStages is the modelled pipeline depth per SSOR sweep (the k-planes
// are aggregated into this many stages; the real code pipelines plane by
// plane — more stages of proportionally smaller messages).
const luStages = 8

// LUModel reproduces the communication structure of NAS LU: an SSOR
// solver whose lower and upper triangular sweeps propagate as wavefronts
// across a 2D process grid — each pipeline stage receives small boundary
// pencils from two upstream neighbours and forwards to two downstream
// ones, making LU fine-grained and latency-sensitive like CG but with a
// strict dependency chain.
type LUModel struct {
	Rank, Size int
	PX, PY     int // process grid (PX*PY = Size)
	Iters      int
	It         int
	Sweep      int // 0 = lower (SW→NE), 1 = upper (NE→SW)
	Stage      int
	Phase      int
	SentA      bool // first downstream pencil of the stage already sent
	CompStage  sim.Time
	PencilB    int64
	Mem        int64
	Local      float64
	Checksum   float64
}

// NewLUModel builds rank's LU model for an NPB class (any np; the process
// grid is the most square factorization).
func NewLUModel(class LUClassSpec, rank, np int) *LUModel {
	px := int(math.Sqrt(float64(np)))
	for np%px != 0 {
		px--
	}
	py := np / px
	stagesPerIter := 2 * luStages
	perStage := class.Flops / float64(class.Iters*stagesPerIter) / float64(np) / EffectiveFlopRate
	// A stage's pencil: one k-slab of a subdomain face, 5 components.
	pencil := int64(class.Grid) / int64(px) * int64(class.Grid) / luStages * 5 * 8
	if pencil < 256 {
		pencil = 256
	}
	return &LUModel{
		Rank: rank, Size: np, PX: px, PY: py,
		Iters:     class.Iters,
		CompStage: sim.Time(perStage * float64(time.Second)),
		PencilB:   pencil,
		Mem:       class.MemPerProc(np),
		Local:     float64(rank + 1),
	}
}

func (l *LUModel) x() int { return l.Rank % l.PX }
func (l *LUModel) y() int { return l.Rank / l.PX }

// upstream neighbours of the current sweep direction (-1 = none).
func (l *LUModel) upstream() (a, b int) {
	a, b = -1, -1
	if l.Sweep == 0 { // lower sweep flows from (0,0)
		if l.x() > 0 {
			a = l.Rank - 1
		}
		if l.y() > 0 {
			b = l.Rank - l.PX
		}
	} else { // upper sweep flows from (PX-1, PY-1)
		if l.x() < l.PX-1 {
			a = l.Rank + 1
		}
		if l.y() < l.PY-1 {
			b = l.Rank + l.PX
		}
	}
	return a, b
}

// downstream neighbours (the mirror of upstream).
func (l *LUModel) downstream() (a, b int) {
	a, b = -1, -1
	if l.Sweep == 0 {
		if l.x() < l.PX-1 {
			a = l.Rank + 1
		}
		if l.y() < l.PY-1 {
			b = l.Rank + l.PX
		}
	} else {
		if l.x() > 0 {
			a = l.Rank - 1
		}
		if l.y() > 0 {
			b = l.Rank - l.PX
		}
	}
	return a, b
}

// LU model phases (per pipeline stage).
const (
	luRecvA = iota
	luRecvB
	luComp
	luSend
	luNorm
	luFinal
)

const luTag = 50

// Step advances one phase.  Each stage: receive the two upstream pencils
// (if any), compute, forward downstream (eager sends — resume-safe
// because they follow the phase's blocking operation in luComp, which
// mutates state only after its Compute).
func (l *LUModel) Step(e *mpi.Engine) bool {
	switch l.Phase {
	case luRecvA:
		if a, _ := l.upstream(); a >= 0 {
			p := e.Recv(a, luTag)
			l.Local = 0.7*l.Local + 0.3*mpi.DecodeF64(p.Data[:8])
		}
		l.Phase = luRecvB
	case luRecvB:
		if _, b := l.upstream(); b >= 0 {
			p := e.Recv(b, luTag)
			l.Local = 0.7*l.Local + 0.3*mpi.DecodeF64(p.Data[:8])
		}
		l.Phase = luComp
	case luComp:
		e.Compute(l.CompStage)
		l.Local++
		l.Phase = luSend
	case luSend:
		// Forward the wavefront.  Each send can park in its software
		// overhead, so the stage tracks which sends completed: a snapshot
		// taken mid-phase restores without duplicating the first pencil.
		a, b := l.downstream()
		if a >= 0 && !l.SentA {
			e.Send(a, luTag, mpi.EncodeF64(l.Local), l.PencilB)
			l.SentA = true
		}
		if b >= 0 {
			e.Send(b, luTag, mpi.EncodeF64(l.Local), l.PencilB)
		}
		l.SentA = false
		l.Stage++
		if l.Stage < luStages {
			l.Phase = luRecvA
			break
		}
		l.Stage = 0
		l.Sweep++
		if l.Sweep < 2 {
			l.Phase = luRecvA
			break
		}
		l.Sweep = 0
		l.It++
		switch {
		case l.It >= l.Iters:
			l.Phase = luFinal
		case l.It%25 == 0:
			l.Phase = luNorm
		default:
			l.Phase = luRecvA
		}
	case luNorm:
		s := e.AllreduceF64(mpi.OpSum, []float64{l.Local})
		l.Checksum = s[0]
		l.Phase = luRecvA
	case luFinal:
		s := e.AllreduceF64(mpi.OpSum, []float64{l.Local})
		l.Checksum = s[0]
		return true
	}
	return false
}

// Footprint reports the class resident set per process.
func (l *LUModel) Footprint() int64 { return l.Mem }
