package nas

// Application-level fault tolerance: in-memory partner checkpointing.
//
// Programs that opt in (SetFTEvery > 0) capture an in-memory snapshot of
// their own state every ftEvery iterations, at a globally consistent
// point (right after an iteration's residual/convergence allreduce), and
// exchange it around a ring: rank r sends its blob to (r+1) mod p and
// holds (r-1) mod p's copy.  When the runtime repairs a failed rank in
// place (ULFM-style recovery), the survivors roll back to an agreed
// snapshot level from their own copies and the replacement installs the
// victim's state from its right neighbour — no checkpoint server, no job
// restart.
//
// The state is deliberately unexported (invisible to the protocol
// checkpoint images): it is soft state that rebuilds within one exchange
// period after any rollback, mirroring how diskless in-memory
// checkpointing keeps its buddy copies outside the protocol's recovery
// line.
//
// Consistency: the exchange point sits after an allreduce, so live ranks
// are never more than one snapshot interval apart; keeping the two most
// recent levels (own and partner) guarantees every rank can restore the
// agreed minimum level.  The exchange channel is FIFO, so the blob
// received at a rank's level-k exchange is always the neighbour's level-k
// blob.

import (
	"encoding/binary"
	"math"

	"ftckpt/internal/mpi"
	"ftckpt/internal/obs"
	"ftckpt/internal/sim"
)

// ftTagSnap is the application tag of the partner-snapshot ring exchange
// (Jacobi halo rows use 60/61).
const ftTagSnap = 62

// ftSnap is one held snapshot: the iteration it captures, the virtual
// time it was taken (the recovered-work baseline) and the encoded state.
type ftSnap struct {
	level int // iteration; -1 = empty
	t     sim.Time
	blob  []byte
}

// ftState is the partner-checkpoint bookkeeping embedded (unexported, so
// never serialized into protocol images) in FT-capable programs.  own and
// peer each keep the two most recent levels, oldest first.
type ftState struct {
	every    int // snapshot cadence in iterations; 0 = disabled
	peerRank int // whose state peer holds; 0 also means none (see peerOK)
	peerOK   bool
	own      [2]ftSnap
	peer     [2]ftSnap
}

// SetFTEvery sets the snapshot cadence (0 disables).  The runtime calls
// it after constructing or restoring a program when in-job recovery is
// enabled.
func (f *ftState) SetFTEvery(n int) { f.every = n }

// ftEvery returns the cadence.
func (f *ftState) ftEvery() int { return f.every }

// FTLatest returns the iteration of the newest held own snapshot, -1
// when none exists.
func (f *ftState) FTLatest() int {
	if f.own[1].blob == nil {
		return -1
	}
	return f.own[1].level
}

// FTSnapshotTime returns the virtual time the own snapshot at level was
// taken.
func (f *ftState) FTSnapshotTime(level int) (sim.Time, bool) {
	if s, ok := f.ownSnap(level); ok {
		return s.t, true
	}
	return 0, false
}

// FTPeerLatest returns the newest held snapshot level for rank, -1 when
// this program holds no copy of rank's state.
func (f *ftState) FTPeerLatest(rank int) int {
	if !f.peerOK || f.peerRank != rank || f.peer[1].blob == nil {
		return -1
	}
	return f.peer[1].level
}

// FTPeerSnapshot returns the held copy of rank's state at level.
func (f *ftState) FTPeerSnapshot(rank, level int) ([]byte, bool) {
	if !f.peerOK || f.peerRank != rank {
		return nil, false
	}
	for _, s := range f.peer {
		if s.blob != nil && s.level == level {
			return s.blob, true
		}
	}
	return nil, false
}

func (f *ftState) ownSnap(level int) (ftSnap, bool) {
	for _, s := range f.own {
		if s.blob != nil && s.level == level {
			return s, true
		}
	}
	return ftSnap{}, false
}

// ftTruncate drops snapshots newer than level after a rollback: a
// future-level copy held by only part of the world must not bias the
// next repair's agreement.
func (f *ftState) ftTruncate(level int) {
	for i := range f.own {
		if f.own[i].blob != nil && f.own[i].level > level {
			f.own[i] = ftSnap{}
		}
	}
	for i := range f.peer {
		if f.peer[i].blob != nil && f.peer[i].level > level {
			f.peer[i] = ftSnap{}
		}
	}
}

// ftInstall seeds a freshly spawned replacement with the victim's blob:
// the installed state becomes the sole own snapshot (the partner copy
// rebuilds at the next exchange).
func (f *ftState) ftInstall(level int, t sim.Time, blob []byte) {
	f.own[0] = ftSnap{}
	f.own[1] = ftSnap{level: level, t: t, blob: blob}
	f.peer = [2]ftSnap{}
	f.peerOK = false
}

// ftExchange records blob as the own snapshot at iteration it and trades
// copies around the ring (send right, receive left).  The call is
// resumable: the phase machine stays in its exchange phase until this
// returns, so a protocol checkpoint taken mid-exchange restores into the
// same Sendrecv.  Under a revoked communicator the exchange aborts
// without recording partner state; the repair machinery handles the rest.
func (f *ftState) ftExchange(e *mpi.Engine, rank, size, it int, blob []byte) {
	f.own[0] = f.own[1]
	f.own[1] = ftSnap{level: it, t: e.Now(), blob: blob}
	if size == 1 {
		return
	}
	right := (rank + 1) % size
	left := (rank - 1 + size) % size
	e.EmitFT(obs.Event{Type: obs.EvAppCkpt, Rank: rank, Wave: it, Channel: right,
		Node: -1, Server: -1, Bytes: int64(len(blob))})
	p, err := e.TrySendrecv(right, ftTagSnap, blob, 0, left, ftTagSnap)
	if err != nil {
		return
	}
	f.peerRank, f.peerOK = left, true
	f.peer[0] = f.peer[1]
	f.peer[1] = ftSnap{level: it, t: e.Now(), blob: p.Data}
}

// --- blob encoding -------------------------------------------------------
//
// Snapshots are flat little-endian buffers (an int64 header word per
// scalar, raw float64 bits per vector element): byte-deterministic, no
// reflection, no gob type descriptors.

type ftEncoder struct{ buf []byte }

func (w *ftEncoder) putInt(v int64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, uint64(v))
}

func (w *ftEncoder) putF64(v float64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(v))
}

func (w *ftEncoder) putVec(v []float64) {
	w.putInt(int64(len(v)))
	for _, x := range v {
		w.putF64(x)
	}
}

type ftDecoder struct{ buf []byte }

func (r *ftDecoder) int() (int64, bool) {
	if len(r.buf) < 8 {
		return 0, false
	}
	v := binary.LittleEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return int64(v), true
}

func (r *ftDecoder) f64() (float64, bool) {
	v, ok := r.int()
	return math.Float64frombits(uint64(v)), ok
}

// The two real kernels implement the full in-job recovery contract.
var (
	_ mpi.FTProgram = (*Jacobi)(nil)
	_ mpi.FTProgram = (*CG)(nil)
)

// vec decodes a vector into dst, which must already have the right
// length — a mismatch means the blob belongs to a different problem
// shape and the install is rejected.
func (r *ftDecoder) vec(dst []float64) bool {
	n, ok := r.int()
	if !ok || int(n) != len(dst) {
		return false
	}
	for i := range dst {
		if dst[i], ok = r.f64(); !ok {
			return false
		}
	}
	return true
}
