package nas

import (
	"math/bits"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
)

// CGModel reproduces the communication structure of NAS CG: an outer loop
// of conjugate-gradient solves whose inner iterations each perform a
// transpose exchange of vector segments and two scalar reductions.  CG "is
// a benchmark with a lot of small communications, and is therefore a
// latency-bound benchmark" (paper §5.3) — which is exactly what exposes
// Vcl's daemon overhead on high-speed networks in Fig. 7.
type CGModel struct {
	Rank, Size int
	Outer      int
	Inner      int
	OIt, IIt   int
	Phase      int
	CompStep   sim.Time
	SegBytes   int64
	Mem        int64
	Local      float64
	Checksum   float64
}

// NewCGModel builds rank's CG model for an NPB class.
func NewCGModel(class CGClassSpec, rank, np int) *CGModel {
	perInner := class.Flops / float64(class.Iters*class.Inner) / float64(np) / EffectiveFlopRate
	return &CGModel{
		Rank: rank, Size: np,
		Outer:    class.Iters,
		Inner:    class.Inner,
		CompStep: sim.Time(perInner * float64(time.Second)),
		SegBytes: int64(class.N) / int64(np) * 8 * 4,
		Mem:      class.MemPerProc(np),
		Local:    float64(rank + 1),
	}
}

// partner picks the inner iteration's exchange peer: a butterfly on
// power-of-two sizes (NAS CG's row/column exchange pattern), a shifting
// ring otherwise.
func (c *CGModel) partner() int {
	if c.Size == 1 {
		return c.Rank
	}
	if c.Size&(c.Size-1) == 0 {
		dim := bits.TrailingZeros(uint(c.Size))
		return c.Rank ^ (1 << (c.IIt % dim))
	}
	shift := 1 + c.IIt%(c.Size-1)
	return (c.Rank + shift) % c.Size
}

// CG model phases (per inner iteration).
const (
	cgmComp = iota
	cgmExchange
	cgmDot1
	cgmDot2
	cgmFinal
)

const cgmTag = 30

// Step advances one phase.
func (c *CGModel) Step(e *mpi.Engine) bool {
	switch c.Phase {
	case cgmComp:
		e.Compute(c.CompStep)
		c.Phase = cgmExchange
	case cgmExchange:
		p := c.partner()
		if p == c.Rank {
			c.Phase = cgmDot1
			break
		}
		if c.Size&(c.Size-1) == 0 {
			// Butterfly partners exchange mutually.
			pkt := e.Sendrecv(p, cgmTag, mpi.EncodeF64(c.Local), c.SegBytes, p, cgmTag)
			c.Local = 0.5*c.Local + 0.5*mpi.DecodeF64(pkt.Data[:8]) + 1
		} else {
			// Ring: send to (rank+s), receive from (rank-s).
			src := (c.Rank - 1 - c.IIt%(c.Size-1) + 2*c.Size) % c.Size
			pkt := e.Sendrecv(p, cgmTag, mpi.EncodeF64(c.Local), c.SegBytes, src, cgmTag)
			c.Local = 0.5*c.Local + 0.5*mpi.DecodeF64(pkt.Data[:8]) + 1
		}
		c.Phase = cgmDot1
	case cgmDot1:
		s := e.AllreduceF64(mpi.OpSum, []float64{c.Local})
		c.Local = c.Local + s[0]/float64(c.Size)*1e-3
		c.Phase = cgmDot2
	case cgmDot2:
		e.AllreduceF64(mpi.OpSum, []float64{c.Local})
		c.IIt++
		if c.IIt >= c.Inner {
			c.IIt = 0
			c.OIt++
			if c.OIt >= c.Outer {
				c.Phase = cgmFinal
				break
			}
		}
		c.Phase = cgmComp
	case cgmFinal:
		s := e.AllreduceF64(mpi.OpSum, []float64{c.Local})
		c.Checksum = s[0]
		return true
	}
	return false
}

// Footprint reports the class resident set per process.
func (c *CGModel) Footprint() int64 { return c.Mem }
