package nas_test

import (
	"testing"
	"time"

	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
)

func shortLU() nas.LUClassSpec {
	c := nas.LUClassA
	c.Iters = 30
	c.Flops /= 8
	return c
}

func TestLUModelRuns(t *testing.T) {
	for _, np := range []int{1, 2, 4, 6, 9} {
		np := np
		class := shortLU()
		progs := runWorld(t, np, func(rank int) mpi.Program {
			return nas.NewLUModel(class, rank, np)
		})
		var sums []float64
		for _, p := range progs {
			sums = append(sums, p.(*nas.LUModel).Checksum)
		}
		for _, s := range sums[1:] {
			if s != sums[0] {
				t.Fatalf("np=%d ranks disagree: %v", np, sums)
			}
		}
	}
}

func TestLUGridFactorization(t *testing.T) {
	for np, want := range map[int][2]int{
		1:  {1, 1},
		6:  {2, 3},
		9:  {3, 3},
		12: {3, 4},
		64: {8, 8},
	} {
		l := nas.NewLUModel(nas.LUClassA, 0, np)
		if l.PX != want[0] || l.PY != want[1] {
			t.Fatalf("np=%d grid %dx%d, want %dx%d", np, l.PX, l.PY, want[0], want[1])
		}
	}
}

// TestLURecovery: the pipeline-dependency workload survives rollback with
// an identical checksum (its wavefront makes it the most
// ordering-sensitive of the models).
func TestLURecovery(t *testing.T) {
	class := shortLU()
	mk := func(rank, size int) mpi.Program { return nas.NewLUModel(class, rank, size) }

	job, err := ftpm.NewJob(recoveryCfg(4, mk))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := job.Run(); err != nil {
		t.Fatal(err)
	}
	want := job.Programs()[0].(*nas.LUModel).Checksum
	half := job.Kernel().Now() / 2

	for _, proto := range []ftpm.Proto{ftpm.ProtoPcl, ftpm.ProtoMlog} {
		proto := proto
		t.Run(string(proto), func(t *testing.T) {
			cfg := recoveryCfg(4, mk)
			cfg.Protocol = proto
			cfg.Interval = half / 3
			cfg.RestartDelay = time.Millisecond
			cfg.Failures = failureAtHalfTime(half, 1)
			job2, err := ftpm.NewJob(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := job2.Run()
			if err != nil {
				t.Fatal(err)
			}
			if res.Restarts != 1 {
				t.Fatalf("restarts = %d", res.Restarts)
			}
			for _, p := range job2.Programs() {
				if got := p.(*nas.LUModel).Checksum; got != want {
					t.Fatalf("checksum %v after recovery, want %v", got, want)
				}
			}
		})
	}
}
