// Package nas provides the workloads of the paper's evaluation — the NAS
// parallel benchmarks of NPB-2.3 — plus supporting real kernels.
//
// Two forms are provided, sharing the same resumable-Program execution
// model:
//
//   - Real kernels (CG, EP, Jacobi) compute actual numerics at reduced
//     problem sizes.  They verify that checkpointing and rollback preserve
//     the numerical result bit-for-bit and serve as library examples.
//   - Class models (BTModel, CGModel, MGModel, LUModel) reproduce the
//     benchmarks' communication structure — iteration counts, message
//     pattern, message sizes and memory footprint for the NPB class —
//     while standing in for the floating-point work with calibrated
//     virtual compute time.  The paper's experiments measure protocol
//     overhead as a function of exactly these properties, so the models
//     regenerate the figures at any scale in seconds of wall-clock time.
//
// Calibration constants (EffectiveFlopRate, bytes-per-cell) are fitted to
// the era's hardware (2 GHz Opteron 248) and documented in EXPERIMENTS.md;
// the claims under reproduction are shapes and orderings, not absolute
// seconds.
package nas

import (
	"encoding/gob"
	"fmt"

	"ftckpt/internal/simnet"
)

func init() {
	gob.Register(&CG{})
	gob.Register(&EP{})
	gob.Register(&BTModel{})
	gob.Register(&CGModel{})
	gob.Register(&MGModel{})
	gob.Register(&LUModel{})
	gob.Register(&Jacobi{})
}

// EffectiveFlopRate is the sustained per-process floating-point rate used
// to convert benchmark operation counts into virtual compute time.  It is
// fitted so the modelled BT.B completion times land in the paper's regime
// (several checkpoint waves fit a run at the tens-of-seconds intervals the
// evaluation uses); see EXPERIMENTS.md for the calibration note.
const EffectiveFlopRate = 120e6 // flop/s

// BTClassSpec describes one NPB class of BT.
type BTClassSpec struct {
	Name  string
	Grid  int     // cubic problem grid (class B: 102³)
	Iters int     // time steps
	Flops float64 // total floating-point operations
	// BytesPerCell sizes the resident set (solution, RHS, block matrices).
	BytesPerCell int64
}

// CGClassSpec describes one NPB class of CG.
type CGClassSpec struct {
	Name   string
	N      int     // matrix order
	NZper  int     // nonzeros per row
	Iters  int     // outer iterations
	Inner  int     // CG iterations per outer step
	Flops  float64 // total floating-point operations
	BytesN int64   // resident bytes per matrix row (values, indices, vectors)
}

// BT classes (NPB-2.3).
var (
	BTClassA = BTClassSpec{Name: "A", Grid: 64, Iters: 200, Flops: 168.3e9, BytesPerCell: 1000}
	BTClassB = BTClassSpec{Name: "B", Grid: 102, Iters: 200, Flops: 721.5e9, BytesPerCell: 1000}
	BTClassC = BTClassSpec{Name: "C", Grid: 162, Iters: 200, Flops: 2892.8e9, BytesPerCell: 1000}
)

// CG classes (NPB-2.3).
var (
	CGClassA = CGClassSpec{Name: "A", N: 14000, NZper: 11, Iters: 15, Inner: 25, Flops: 1.5e9, BytesN: 3000}
	CGClassB = CGClassSpec{Name: "B", N: 75000, NZper: 13, Iters: 75, Inner: 25, Flops: 54.7e9, BytesN: 5000}
	CGClassC = CGClassSpec{Name: "C", N: 150000, NZper: 15, Iters: 75, Inner: 25, Flops: 143.3e9, BytesN: 6000}
)

// BTClass looks a BT class up by name.
func BTClass(name string) (BTClassSpec, error) {
	switch name {
	case "A":
		return BTClassA, nil
	case "B":
		return BTClassB, nil
	case "C":
		return BTClassC, nil
	}
	return BTClassSpec{}, fmt.Errorf("nas: unknown BT class %q", name)
}

// CGClass looks a CG class up by name.
func CGClass(name string) (CGClassSpec, error) {
	switch name {
	case "A":
		return CGClassA, nil
	case "B":
		return CGClassB, nil
	case "C":
		return CGClassC, nil
	}
	return CGClassSpec{}, fmt.Errorf("nas: unknown CG class %q", name)
}

// MemPerProc returns the modelled resident set of one BT process.
func (c BTClassSpec) MemPerProc(np int) int64 {
	cells := int64(c.Grid) * int64(c.Grid) * int64(c.Grid)
	return cells * c.BytesPerCell / int64(np)
}

// MemPerProc returns the modelled resident set of one CG process.
func (c CGClassSpec) MemPerProc(np int) int64 {
	return int64(c.N) * c.BytesN / int64(np)
}

// Bytes re-exports the simnet byte unit for workload sizing.
type Bytes = simnet.Bytes
