package nas

import (
	"fmt"
	"math/bits"
	"time"

	"ftckpt/internal/mpi"
	"ftckpt/internal/sim"
)

// MGClassSpec describes one NPB class of MG.
type MGClassSpec struct {
	Name   string
	Grid   int // cubic fine-grid side
	Iters  int
	Flops  float64
	BytesC int64 // resident bytes per fine-grid cell
}

// MG classes (NPB-2.3).
var (
	MGClassA = MGClassSpec{Name: "A", Grid: 256, Iters: 4, Flops: 3.6e9, BytesC: 60}
	MGClassB = MGClassSpec{Name: "B", Grid: 256, Iters: 20, Flops: 18.1e9, BytesC: 60}
	MGClassC = MGClassSpec{Name: "C", Grid: 512, Iters: 20, Flops: 146.9e9, BytesC: 60}
)

// MGClass looks an MG class up by name.
func MGClass(name string) (MGClassSpec, error) {
	switch name {
	case "A":
		return MGClassA, nil
	case "B":
		return MGClassB, nil
	case "C":
		return MGClassC, nil
	}
	return MGClassSpec{}, fmt.Errorf("nas: unknown MG class %q", name)
}

// MemPerProc returns the modelled resident set of one MG process.
func (c MGClassSpec) MemPerProc(np int) int64 {
	cells := int64(c.Grid) * int64(c.Grid) * int64(c.Grid)
	// The V-cycle hierarchy adds ~1/7 over the fine grid.
	return cells * c.BytesC * 8 / 7 / int64(np)
}

// MGModel reproduces the communication structure of NAS MG: each
// iteration runs a V-cycle down to the coarsest grid and back, exchanging
// halos whose size halves per level (so the coarse levels are pure
// latency), with a residual norm reduction per iteration.  np must be a
// power of two.
type MGModel struct {
	Rank, Size int
	Dim        int // log2(Size)
	Iters      int
	Levels     int
	It         int
	Level      int
	Up         bool
	Phase      int
	CompLevel  sim.Time // compute per level visit
	FineBytes  int64    // halo bytes at the finest level
	Mem        int64
	Local      float64
	Checksum   float64
}

// NewMGModel builds rank's MG model for an NPB class.
func NewMGModel(class MGClassSpec, rank, np int) *MGModel {
	if np&(np-1) != 0 {
		panic(fmt.Sprintf("nas: MG needs a power-of-two process count, got %d", np))
	}
	levels := bits.Len(uint(class.Grid)) - 3 // stop at an 8³ coarse grid
	if levels < 2 {
		levels = 2
	}
	visits := 2*levels - 1
	perVisit := class.Flops / float64(class.Iters*visits) / float64(np) / EffectiveFlopRate
	g := class.Grid
	face := int64(g) * int64(g) * 8 / int64(np) * 4 // 4 halo faces per visit, aggregated
	return &MGModel{
		Rank: rank, Size: np,
		Dim:       bits.TrailingZeros(uint(np)),
		Iters:     class.Iters,
		Levels:    levels,
		CompLevel: sim.Time(perVisit * float64(time.Second)),
		FineBytes: face,
		Mem:       class.MemPerProc(np),
		Local:     float64(rank + 1),
	}
}

// MG model phases (per level visit).
const (
	mgComp = iota
	mgExchange
	mgNorm
	mgFinal
)

const mgTag = 40

// haloBytes at the current level: halves per coarsening.
func (m *MGModel) haloBytes() int64 {
	b := m.FineBytes >> uint(2*m.Level) // area shrinks 4x per level
	if b < 64 {
		b = 64
	}
	return b
}

// partner for the current level's halo exchange.
func (m *MGModel) partner() int {
	if m.Size == 1 {
		return m.Rank
	}
	return m.Rank ^ (1 << (m.Level % m.Dim))
}

// Step advances one phase.
func (m *MGModel) Step(e *mpi.Engine) bool {
	switch m.Phase {
	case mgComp:
		e.Compute(m.CompLevel)
		m.Phase = mgExchange
	case mgExchange:
		if p := m.partner(); p != m.Rank {
			pkt := e.Sendrecv(p, mgTag, mpi.EncodeF64(m.Local), m.haloBytes(), p, mgTag)
			m.Local = 0.5*m.Local + 0.5*mpi.DecodeF64(pkt.Data[:8]) + 1
		}
		// Walk the V: down to the coarsest level, then back up.
		if !m.Up {
			m.Level++
			if m.Level >= m.Levels-1 {
				m.Up = true
			}
		} else {
			m.Level--
			if m.Level <= 0 {
				m.Level = 0
				m.Up = false
				m.Phase = mgNorm
				return false
			}
		}
		m.Phase = mgComp
	case mgNorm:
		s := e.AllreduceF64(mpi.OpSum, []float64{m.Local})
		m.Checksum = s[0]
		m.It++
		if m.It >= m.Iters {
			m.Phase = mgFinal
		} else {
			m.Phase = mgComp
		}
	case mgFinal:
		s := e.AllreduceF64(mpi.OpSum, []float64{m.Local})
		m.Checksum = s[0]
		return true
	}
	return false
}

// Footprint reports the class resident set per process.
func (m *MGModel) Footprint() int64 { return m.Mem }
