package ftckpt

// Core hot-path benchmarks: one full simulated run per iteration, sized to
// track single-run throughput of the sim/simnet/mpi stack (the binding
// constraint on every figure — see BENCH_core.json for the recorded
// trajectory).  Unlike bench_test.go, which regenerates whole figures,
// BenchmarkRun measures exactly one job per protocol and size, so its
// ns/op and allocs/op are directly comparable across kernel rewrites.
//
// Sizes follow the paper's scaling axis: NP=64 is the paper's cluster
// scale, NP=256 the grid scale, NP=1024 the target the event-queue
// overhaul opens up.  Intervals are sized per NP so every run commits a
// couple of checkpoint waves (smaller jobs run longer in virtual time).
// Vcl at NP=1024 exceeds the paper's ~300-process select() limit, so the
// benchmark removes it with VclProcessLimit — explicitly a what-if run.

import (
	"fmt"
	"testing"
	"time"
)

// benchRunIntervals pick checkpoint intervals yielding a few waves per run.
var benchRunIntervals = map[int]time.Duration{
	64:   8 * time.Second,
	256:  2 * time.Second,
	1024: 400 * time.Millisecond,
}

func benchRunOpts(proto string, np int) Options {
	interval := benchRunIntervals[np]
	if proto == "mlog" && np == 1024 {
		// Mlog checkpoints per process (no global waves): 400ms would
		// mean tens of thousands of local images.  8s keeps the image
		// count in the low thousands, so the run fits a CI bench budget.
		interval = 8 * time.Second
	}
	return Options{
		Workload:        "bt",
		Class:           "A",
		NP:              np,
		ProcsPerNode:    2,
		Protocol:        Protocol(proto),
		Interval:        interval,
		Servers:         4,
		Seed:            1,
		VclProcessLimit: -1,
	}
}

// BenchmarkRunSharded is BenchmarkRun's parallel-kernel counterpart: the
// mlog NP=1024 point (the densest event stream, the sharded kernel's
// target) on a 4-shard kernel.  Compare against BenchmarkRun/proto=mlog/
// np=1024 for the staging speedup; the outputs are byte-identical, so
// wall-clock is the only axis that moves.
func BenchmarkRunSharded(b *testing.B) {
	if testing.Short() {
		b.Skip("mlog np=1024 exceeds the -short budget")
	}
	b.Run("proto=mlog/np=1024/shards=4", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			o := benchRunOpts("mlog", 1024)
			o.Shards = 4
			rep, err := Run(o)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(rep.Completion.Seconds(), "virt-s")
				b.ReportMetric(float64(rep.Waves), "waves")
			}
		}
	})
}

// BenchmarkRun is the end-to-end macro benchmark: one complete
// fault-tolerant run (BT model, 4 checkpoint servers) per iteration.
func BenchmarkRun(b *testing.B) {
	for _, proto := range []string{"pcl", "vcl", "mlog"} {
		for _, np := range []int{64, 256, 1024} {
			if testing.Short() && np > 256 {
				continue
			}
			b.Run(fmt.Sprintf("proto=%s/np=%d", proto, np), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					rep, err := Run(benchRunOpts(proto, np))
					if err != nil {
						b.Fatal(err)
					}
					if i == 0 {
						b.ReportMetric(rep.Completion.Seconds(), "virt-s")
						b.ReportMetric(float64(rep.Waves), "waves")
					}
				}
			})
		}
	}
}
