// Package ftckpt is a reproduction, as a Go library, of "Blocking vs.
// non-blocking coordinated checkpointing for large-scale fault tolerant
// MPI" (Buntinas, Coti, Herault, Lemarinier, Pilard, Rezmerita, Rodriguez,
// Cappello — SC 2006 / FGCS 2008).
//
// It bundles a deterministic discrete-event simulation of the paper's
// platforms (Gigabit-Ethernet clusters, Myrinet, the Grid'5000
// multi-cluster grid), an MPI-like message-passing library with the device
// hook points fault-tolerance protocols need, both coordinated
// checkpointing protocols (blocking Pcl and non-blocking Chandy–Lamport
// Vcl), checkpoint servers, a fault tolerant process manager with failure
// injection and rollback recovery, and the NAS-style workloads of the
// paper's evaluation.
//
// This package is the high-level facade: describe a run with Options and
// execute it with Run.  The examples/ directory shows typical use; the
// cmd/ tools and internal/expt regenerate every figure of the paper.
package ftckpt

import (
	"context"
	"fmt"
	"time"

	"ftckpt/internal/ckpt"
	"ftckpt/internal/failure"
	"ftckpt/internal/ftpm"
	"ftckpt/internal/mpi"
	"ftckpt/internal/nas"
	"ftckpt/internal/platform"
	"ftckpt/internal/sim"
	"ftckpt/internal/sweep"
)

// Report summarizes a completed run.
type Report struct {
	// Completion is the job's virtual completion time.
	Completion time.Duration
	// Waves counts committed checkpoint waves; LocalCheckpoints the local
	// snapshots taken; Restarts the rollback episodes.
	Waves            int
	LocalCheckpoints int
	Restarts         int
	// Messages counts packets on the wire; PayloadMB application bytes;
	// CheckpointMB data stored on checkpoint servers; LoggedMessages and
	// LoggedMB the channel state Vcl logged.
	Messages       int64
	PayloadMB      float64
	CheckpointMB   float64
	LoggedMessages int
	LoggedMB       float64
	// Checksum is the workload's verification value — identical across a
	// failure-free run and any recovered run of the same Options.
	Checksum float64
	// Repairs counts in-job (ULFM) repairs: failures survived without a
	// rollback-restart.  LostWork is the total virtual compute time redone
	// because of repairs (each survivor rolls back to the agreed partner
	// snapshot); RecoveredWork is the fraction of the job's total rank-time
	// NOT redone, 1 for a failure-free or repair-free run.
	Repairs       int
	LostWork      time.Duration
	RecoveredWork float64
	// ServerFailures counts checkpoint servers lost during the run;
	// Failovers counts fetches served by a surviving replica after the
	// preferred one was unavailable.
	ServerFailures int
	Failovers      int
	// MeanWaveSpread, MeanWaveTransfer and MeanWaveCycle break a committed
	// wave into the synchronization/snapshot straggle, the image-transfer
	// tail and the whole first-snapshot-to-commit cycle.
	MeanWaveSpread   time.Duration
	MeanWaveTransfer time.Duration
	MeanWaveCycle    time.Duration
	// Metrics is the run's full metrics registry (blocked-time and wave
	// histograms, per-channel logged bytes, per-server image bytes …),
	// exportable with its WriteJSON / WriteCSV methods.
	Metrics *Metrics
	// Attribution is the conservation-checked per-phase overhead
	// breakdown of the run's virtual completion time, present when
	// Options.Attribution was set (nil otherwise).
	Attribution *Attribution
}

// Run executes the described job to completion (recovering from every
// injected failure) and reports the outcome.
func Run(o Options) (Report, error) {
	cfg, err := buildConfig(o)
	if err != nil {
		return Report{}, err
	}
	job, err := ftpm.NewJob(cfg)
	if err != nil {
		return Report{}, err
	}
	res, err := job.Run()
	if err != nil {
		return Report{}, err
	}
	rep := reportFrom(res, cfg.NP)
	if progs := job.Programs(); len(progs) > 0 {
		rep.Checksum = checksum(progs[0])
	}
	return rep, nil
}

func reportFrom(res ftpm.Result, np int) Report {
	recovered := 1.0
	if res.Completion > 0 && np > 0 {
		recovered = 1 - float64(res.LostWork)/(float64(np)*float64(res.Completion))
	}
	return Report{
		Completion:       res.Completion,
		Waves:            res.WavesCommitted,
		LocalCheckpoints: res.LocalCkpts,
		Restarts:         res.Restarts,
		Repairs:          res.Repairs,
		LostWork:         res.LostWork,
		RecoveredWork:    recovered,
		Messages:         res.Messages,
		PayloadMB:        float64(res.PayloadBytes) / (1 << 20),
		CheckpointMB:     float64(res.CkptBytes) / (1 << 20),
		LoggedMessages:   res.LoggedMsgs,
		LoggedMB:         float64(res.LoggedBytes) / (1 << 20),
		ServerFailures:   res.ServerFailures,
		Failovers:        res.Failovers,
		MeanWaveSpread:   res.WaveBreakdown.MeanSpread,
		MeanWaveTransfer: res.WaveBreakdown.MeanTransfer,
		MeanWaveCycle:    res.WaveBreakdown.MeanCycle,
		Metrics:          res.Metrics,
		Attribution:      res.Attribution,
	}
}

// SweepOptions tunes a Sweep.
type SweepOptions struct {
	// Jobs caps how many points run concurrently (each point is one full
	// simulation).  0 means runtime.NumCPU(); 1 reproduces a plain
	// sequential loop of Run calls exactly.
	Jobs int
	// Metrics, when set, receives every point's counters, gauges and
	// histograms, merged deterministically in point order after all
	// points finish — byte-identical to sequential runs sharing one
	// registry.
	Metrics *Metrics
	// Trace, when set, receives the points' Verbose progress lines,
	// serialized in point order so concurrent points never interleave
	// (points with a nil Verbose stay silent).
	Trace func(format string, args ...any)
}

// Sweep runs several independent jobs concurrently and returns their
// reports in input order — the batch counterpart of Run for parameter
// grids (checkpoint interval × MTTF, size sweeps, protocol comparisons).
// Each point runs against a private metrics registry (any Options.Metrics
// on a point is ignored — sharing a registry across concurrent runs is a
// data race), folded into o.Metrics afterwards.  Reports, merged metrics
// and trace output are byte-identical for any Jobs value with the same
// seeds.  The first point error cancels the remaining unstarted points
// and is returned, naming the point.
func Sweep(points []Options, o SweepOptions) ([]Report, error) {
	regs := make([]*Metrics, len(points))
	reps, err := sweep.Run(context.Background(), points,
		func(_ context.Context, i int, p Options, trace sweep.Tracef) (Report, error) {
			if o.Metrics != nil {
				regs[i] = NewMetrics()
			}
			p.Metrics = regs[i]
			if o.Trace != nil && p.Verbose != nil {
				// Route the run's progress lines through the ordered sink
				// instead of calling the point's own func from a worker.
				p.Verbose = trace
			}
			rep, err := Run(p)
			if err != nil {
				return Report{}, fmt.Errorf("ftckpt: sweep point %d (np=%d proto=%q interval=%v): %w",
					i, p.NP, p.Protocol, p.Interval, err)
			}
			return rep, nil
		}, sweep.Opts{Jobs: o.Jobs, Trace: sweep.Tracef(o.Trace)})
	if err != nil {
		return nil, err
	}
	for _, reg := range regs {
		o.Metrics.Merge(reg)
	}
	return reps, nil
}

func checksum(p mpi.Program) float64 {
	switch w := p.(type) {
	case *nas.BTModel:
		return w.Checksum
	case *nas.CGModel:
		return w.Checksum
	case *nas.MGModel:
		return w.Checksum
	case *nas.LUModel:
		return w.Checksum
	case *nas.CG:
		return w.Residual
	case *nas.EP:
		return w.SumX + w.SumY
	case *nas.Jacobi:
		return w.Residual
	default:
		return 0
	}
}

// storageSpec converts the facade storage description into the internal
// spec; ftpm.Config.Validate checks and normalizes it.
func storageSpec(s *StorageSpec) *ckpt.Spec {
	sp := &ckpt.Spec{
		Incremental:   s.Incremental,
		FullEvery:     s.FullEvery,
		DirtyFraction: s.DirtyFraction,
		Compress:      s.Compress,
		CompressRatio: s.CompressRatio,
	}
	for _, l := range s.Levels {
		sp.Levels = append(sp.Levels, ckpt.LevelSpec{
			Kind:         ckpt.LevelKind(l.Kind),
			Servers:      l.Servers,
			Replicas:     l.Replicas,
			WriteQuorum:  l.WriteQuorum,
			StoreRetries: l.StoreRetries,
			RetryBackoff: sim.Time(l.RetryBackoff),
			Bandwidth:    l.Bandwidth,
			Latency:      sim.Time(l.Latency),
			Capacity:     l.Capacity,
			Retention:    l.Retention,
			Targets:      l.Targets,
			Stripes:      l.Stripes,
		})
	}
	return sp
}

func buildConfig(o Options) (ftpm.Config, error) {
	if o.NP <= 0 {
		return ftpm.Config{}, fmt.Errorf("ftckpt: Options.NP must be positive, got %d", o.NP)
	}
	ppn := o.ProcsPerNode
	if ppn <= 0 {
		ppn = 1
	}
	proto := ftpm.ProtoNone
	switch o.Protocol {
	case "", ProtocolNone:
	case Pcl, Vcl, Mlog:
		proto = ftpm.Proto(o.Protocol)
	default:
		return ftpm.Config{}, fmt.Errorf("ftckpt: Options.Protocol: unknown protocol %q (want %q, %q, %q or %q)",
			o.Protocol, ProtocolNone, Pcl, Vcl, Mlog)
	}
	servers := o.Servers
	if servers <= 0 && proto != ftpm.ProtoNone {
		servers = 1
	}
	var storage *ckpt.Spec
	if o.Storage != nil {
		if o.Servers != 0 {
			return ftpm.Config{}, fmt.Errorf("ftckpt: Options.Servers conflicts with Options.Storage (set the servers level's Servers instead)")
		}
		if o.Replication != nil {
			return ftpm.Config{}, fmt.Errorf("ftckpt: Options.Replication conflicts with Options.Storage (set the replication knobs on the servers level instead)")
		}
		storage = storageSpec(o.Storage)
		// The spec's servers level is the server count now; keeping the
		// flat field equal makes the fold in Config.Validate a no-op.
		servers = 0
		if sl := storage.ServersLevel(); sl != nil {
			servers = sl.Servers
		}
	}
	var repl ReplicationSpec
	if o.Replication != nil {
		repl = *o.Replication
	}
	var hb HeartbeatSpec
	if o.Heartbeat != nil {
		hb = *o.Heartbeat
	}
	newProgram, err := workloadFactory(o)
	if err != nil {
		return ftpm.Config{}, err
	}
	recovery := ftpm.RecoveryRestart
	switch o.Recovery {
	case "", RecoveryRestart:
	case RecoveryULFM:
		recovery = ftpm.RecoveryULFM
	default:
		return ftpm.Config{}, fmt.Errorf("ftckpt: Options.Recovery: unknown mode %q (want %q or %q)",
			o.Recovery, RecoveryRestart, RecoveryULFM)
	}
	if o.Spares < 0 {
		return ftpm.Config{}, fmt.Errorf("ftckpt: Options.Spares must be non-negative, got %d", o.Spares)
	}
	ftEvery := 0
	if recovery == ftpm.RecoveryULFM {
		// Application snapshot cadence for the partner-checkpoint scheme;
		// every 10 iterations balances repair cost against lost work for
		// the real kernels.
		ftEvery = 10
	}
	cfg := ftpm.Config{
		NP:               o.NP,
		ProcsPerNode:     ppn,
		Protocol:         proto,
		Interval:         o.Interval,
		Servers:          servers,
		Storage:          storage,
		Replicas:         repl.Replicas,
		WriteQuorum:      repl.WriteQuorum,
		StoreRetries:     repl.StoreRetries,
		RetryBackoff:     repl.RetryBackoff,
		HeartbeatPeriod:  hb.Period,
		HeartbeatTimeout: hb.Timeout,
		VclProcessLimit:  o.VclProcessLimit,
		Recovery:         recovery,
		SpareNodes:       o.Spares,
		FTEvery:          ftEvery,
		NewProgram:       newProgram,
		Seed:             o.Seed,
		Shards:           o.Shards,
		MTTF:             o.MTTF,
		ServerMTTF:       o.ServerMTTF,
		NodeMTTF:         o.NodeMTTF,
		Trace:            o.Verbose,
		Sink:             o.Sink,
		Metrics:          o.Metrics,
		Attrib:           o.Attribution,
		SnapshotPeriod:   sim.Time(o.MetricsSnapshot),
	}
	for _, f := range o.Failures {
		ev := failure.Event{At: f.At}
		switch f.Kind {
		case "", "rank":
			ev.Rank = f.Rank
		case "node":
			ev.Kind = failure.KindNode
			ev.Node = f.Node
		case "server":
			ev.Kind = failure.KindServer
			ev.Server = f.Server
		case "buffer":
			ev.Kind = failure.KindBuffer
			ev.Node = f.Node
		case "pfs":
			ev.Kind = failure.KindPFS
			ev.Server = f.Server
		default:
			return ftpm.Config{}, fmt.Errorf("ftckpt: Options.Failures: unknown failure kind %q (use KillRank, KillNode, KillServer, KillBuffer or KillPFS)", f.Kind)
		}
		cfg.Failures = append(cfg.Failures, ev)
	}
	computeNodes := (o.NP + ppn - 1) / ppn
	pad := computeNodes + servers + 1 + o.Spares
	if storage != nil {
		if i := storage.Level(ckpt.LevelPFS); i >= 0 {
			// Size the topology for the PFS target nodes too; 4 targets is
			// the model default Normalize applies when the spec left it 0.
			if t := storage.Levels[i].Targets; t > 0 {
				pad += t
			} else {
				pad += 4
			}
		}
	}
	switch o.Platform {
	case "", PlatformEthernet:
		cfg.Topology = platform.EthernetCluster(pad)
		cfg.Profile = platform.PclSock
	case PlatformMyrinetGM:
		cfg.Topology = platform.MyrinetGM(pad)
		cfg.Profile = platform.PclNemesis
	case PlatformMyrinetTCP:
		cfg.Topology = platform.MyrinetTCP(pad)
		cfg.Profile = platform.PclSock
	case PlatformGrid:
		if o.Spares > 0 {
			return ftpm.Config{}, fmt.Errorf("ftckpt: Options.Spares: the grid platform's fixed layout has no spare slots")
		}
		if storage != nil {
			return ftpm.Config{}, fmt.Errorf("ftckpt: Options.Storage: the grid platform's per-cluster server placement keeps the flat server model")
		}
		lay, err := platform.Grid5000Layout(o.NP, ppn, 1)
		if err != nil {
			return ftpm.Config{}, err
		}
		cfg.Topology = lay.Topo
		cfg.Placement = lay.Placement
		cfg.ServerNodes = lay.ServerNodes
		cfg.ServerOf = lay.ServerOf
		cfg.ServiceNode = lay.ServiceNode
		cfg.Servers = lay.Servers
		cfg.Profile = platform.PclSock
	default:
		return ftpm.Config{}, fmt.Errorf("ftckpt: Options.Platform: unknown platform %q (want %q, %q, %q or %q)",
			o.Platform, PlatformEthernet, PlatformMyrinetGM, PlatformMyrinetTCP, PlatformGrid)
	}
	if proto == ftpm.ProtoVcl || proto == ftpm.ProtoMlog {
		// Both MPICH-V protocol families run through the daemon device.
		cfg.Profile = platform.Vcl
	}
	return cfg, nil
}

func workloadFactory(o Options) (func(rank, size int) mpi.Program, error) {
	class := string(o.Class)
	if class == "" {
		class = string(ClassB)
	}
	wrapClass := func(err error) error {
		return fmt.Errorf("ftckpt: Options.Class: %w", err)
	}
	switch o.Workload {
	case "", WorkloadBT:
		c, err := nas.BTClass(class)
		if err != nil {
			return nil, wrapClass(err)
		}
		return func(rank, size int) mpi.Program { return nas.NewBTModel(c, rank, size) }, nil
	case WorkloadCG:
		c, err := nas.CGClass(class)
		if err != nil {
			return nil, wrapClass(err)
		}
		return func(rank, size int) mpi.Program { return nas.NewCGModel(c, rank, size) }, nil
	case WorkloadMG:
		c, err := nas.MGClass(class)
		if err != nil {
			return nil, wrapClass(err)
		}
		return func(rank, size int) mpi.Program { return nas.NewMGModel(c, rank, size) }, nil
	case WorkloadLU:
		c, err := nas.LUClass(class)
		if err != nil {
			return nil, wrapClass(err)
		}
		return func(rank, size int) mpi.Program { return nas.NewLUModel(c, rank, size) }, nil
	case WorkloadCGReal:
		n := 256 * o.NP
		return func(rank, size int) mpi.Program { return nas.NewCG(rank, size, n, o.Seed+11, 80) }, nil
	case WorkloadEP:
		return func(rank, size int) mpi.Program { return nas.NewEP(rank, size, 1<<18, o.Seed+13) }, nil
	case WorkloadJacobi:
		n := o.NP * 16
		return func(rank, size int) mpi.Program { return nas.NewJacobi(rank, size, n, 2000) }, nil
	default:
		return nil, fmt.Errorf("ftckpt: Options.Workload: unknown workload %q (want %q, %q, %q, %q, %q, %q or %q)",
			o.Workload, WorkloadBT, WorkloadCG, WorkloadMG, WorkloadLU, WorkloadCGReal, WorkloadEP, WorkloadJacobi)
	}
}
